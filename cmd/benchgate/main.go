// benchgate is the benchmark regression gate: it compares the raw
// output of `go test -bench ... -benchmem` against a checked-in
// baseline and fails when a benchmark regresses.
//
//	go test -run xxx -bench . -benchmem -count 3 ./internal/radix/ | \
//	    go run ./cmd/benchgate -baseline internal/bench/baselines/radix_baseline.txt
//
// Three gates, with very different strictness:
//
//   - allocs/op is deterministic and machine-independent, so it is
//     gated exactly: any benchmark allocating more objects per op than
//     its baseline fails (the -allow-extra-allocs flag relaxes this).
//   - ns/op varies with hardware, so it is gated loosely: a benchmark
//     fails only when it exceeds baseline x (1 + -ns-tol). The default
//     tolerance of 1.0 (2x) is deliberately coarse — it catches
//     order-of-magnitude regressions (an accidental per-op allocation,
//     a modulo reintroduced on a masked hot path) without flaking on a
//     different CPU. Set -ns-tol 0 to disable the time gate entirely.
//   - custom "rows" metrics (b.ReportMetric(n, "rows")) are asserted
//     result cardinalities: a deterministic workload must join to the
//     same row count on every machine, so any difference from the
//     baseline fails exactly. A plan change that alters what a query
//     returns cannot hide behind a fast run.
//
// When the same benchmark appears multiple times (-count N), the best
// (minimum) of each metric is used on both sides — the steady state,
// not the noise. A benchmark present in the baseline but missing from
// the current run fails the gate, so the baseline cannot silently rot.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's best observed metrics.
type result struct {
	ns     float64
	allocs int64
	hasMem bool               // -benchmem columns present
	extra  map[string]float64 // custom units from b.ReportMetric
}

// benchName matches the leading `BenchmarkName-8  123  ` of a result
// line; the metric columns after it are parsed as value/unit pairs.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parse(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchName.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		cur := result{allocs: -1}
		sawNs := false
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad metric value in %q: %v", sc.Text(), err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				cur.ns, sawNs = v, true
			case "allocs/op":
				cur.allocs, cur.hasMem = int64(v), true
			case "B/op", "MB/s":
				// tracked elsewhere (allocs/op) or too noisy to gate
			default:
				if cur.extra == nil {
					cur.extra = make(map[string]float64)
				}
				cur.extra[unit] = v
			}
		}
		if !sawNs {
			continue
		}
		if prev, ok := out[m[1]]; ok {
			if prev.ns < cur.ns {
				cur.ns = prev.ns
			}
			if prev.hasMem && (!cur.hasMem || prev.allocs < cur.allocs) {
				cur.allocs, cur.hasMem = prev.allocs, true
			}
			for unit, v := range prev.extra {
				if cv, ok := cur.extra[unit]; !ok || v < cv {
					if cur.extra == nil {
						cur.extra = make(map[string]float64)
					}
					cur.extra[unit] = v
				}
			}
		}
		out[m[1]] = cur
	}
	return out, sc.Err()
}

func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "checked-in `go test -bench` output to gate against (required)")
		nsTol        = flag.Float64("ns-tol", 1.0, "allowed fractional ns/op regression (1.0 = 2x baseline; 0 disables)")
		extraAllocs  = flag.Int64("allow-extra-allocs", 0, "allocs/op slack above baseline before failing")
	)
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	base, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cur map[string]result
	if flag.NArg() > 0 {
		cur, err = parseFile(flag.Arg(0))
	} else {
		cur, err = parse(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: baseline holds no benchmark lines")
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-40s %14s %14s %10s %10s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "base aop", "cur aop", "verdict")
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok {
			fmt.Printf("%-40s %14.1f %14s %10s %10s  FAIL (missing from current run)\n",
				n, b.ns, "-", allocStr(b), "-")
			failed = true
			continue
		}
		verdict := "ok"
		if v := gateCardinality(b, c); v != "" {
			verdict = v
			failed = true
		} else if b.hasMem && c.hasMem && c.allocs > b.allocs+*extraAllocs {
			verdict = fmt.Sprintf("FAIL (allocs/op %d > baseline %d)", c.allocs, b.allocs)
			failed = true
		} else if *nsTol > 0 && c.ns > b.ns*(1+*nsTol) {
			verdict = fmt.Sprintf("FAIL (ns/op %.1f > %.1f allowed)", c.ns, b.ns*(1+*nsTol))
			failed = true
		}
		fmt.Printf("%-40s %14.1f %14.1f %10s %10s  %s\n",
			n, b.ns, c.ns, allocStr(b), allocStr(c), verdict)
	}
	if failed {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// gateCardinality diffs the baseline's asserted result-cardinality
// metrics ("rows"-unit columns) against the current run, exactly: a
// deterministic workload that joins to a different row count is a
// correctness regression, never noise.
func gateCardinality(b, c result) string {
	units := make([]string, 0, len(b.extra))
	for u := range b.extra {
		if strings.HasSuffix(u, "rows") {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	for _, u := range units {
		cv, ok := c.extra[u]
		if !ok {
			return fmt.Sprintf("FAIL (%s metric missing from current run)", u)
		}
		if cv != b.extra[u] {
			return fmt.Sprintf("FAIL (%s %g != baseline %g)", u, cv, b.extra[u])
		}
	}
	return ""
}

func allocStr(r result) string {
	if !r.hasMem {
		return "-"
	}
	return strconv.FormatInt(r.allocs, 10)
}
