package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/radix
cpu: Intel(R) Xeon(R)
BenchmarkPartition1M-4   	     100	  11000000 ns/op	2104.10 MB/s	     120 B/op	       3 allocs/op
BenchmarkPartition1M-4   	     100	  10500000 ns/op	2187.29 MB/s	     100 B/op	       2 allocs/op
BenchmarkTableProbe-4    	20000000	        55.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlotMask        	50000000	         1.2 ns/op
PASS
ok  	repro/internal/radix	5.0s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	p := got["BenchmarkPartition1M"]
	if p.ns != 10500000 || p.allocs != 2 || !p.hasMem {
		t.Fatalf("duplicate runs not min-folded: %+v", p)
	}
	tp := got["BenchmarkTableProbe"]
	if tp.ns != 55.5 || tp.allocs != 0 || !tp.hasMem {
		t.Fatalf("TableProbe = %+v", tp)
	}
	sm := got["BenchmarkSlotMask"]
	if sm.ns != 1.2 || sm.hasMem {
		t.Fatalf("benchmem-less line mishandled: %+v", sm)
	}
}
