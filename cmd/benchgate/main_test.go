package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/radix
cpu: Intel(R) Xeon(R)
BenchmarkPartition1M-4   	     100	  11000000 ns/op	2104.10 MB/s	     120 B/op	       3 allocs/op
BenchmarkPartition1M-4   	     100	  10500000 ns/op	2187.29 MB/s	     100 B/op	       2 allocs/op
BenchmarkTableProbe-4    	20000000	        55.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlotMask        	50000000	         1.2 ns/op
PASS
ok  	repro/internal/radix	5.0s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	p := got["BenchmarkPartition1M"]
	if p.ns != 10500000 || p.allocs != 2 || !p.hasMem {
		t.Fatalf("duplicate runs not min-folded: %+v", p)
	}
	tp := got["BenchmarkTableProbe"]
	if tp.ns != 55.5 || tp.allocs != 0 || !tp.hasMem {
		t.Fatalf("TableProbe = %+v", tp)
	}
	sm := got["BenchmarkSlotMask"]
	if sm.ns != 1.2 || sm.hasMem {
		t.Fatalf("benchmem-less line mishandled: %+v", sm)
	}
}

const rowsSample = `BenchmarkMultiJoinDP-4   	      10	  11000000 ns/op	       250 rows	     120 B/op	       3 allocs/op
BenchmarkMultiJoinDP-4   	      10	  10500000 ns/op	       250 rows	     100 B/op	       2 allocs/op
`

func TestParseCustomMetrics(t *testing.T) {
	got, err := parse(strings.NewReader(rowsSample))
	if err != nil {
		t.Fatal(err)
	}
	r := got["BenchmarkMultiJoinDP"]
	if r.ns != 10500000 || r.allocs != 2 || r.extra["rows"] != 250 {
		t.Fatalf("custom metric not parsed: %+v", r)
	}
}

func TestGateCardinality(t *testing.T) {
	base := result{ns: 1, extra: map[string]float64{"rows": 250}}
	if v := gateCardinality(base, result{ns: 1, extra: map[string]float64{"rows": 250}}); v != "" {
		t.Fatalf("equal cardinality flagged: %q", v)
	}
	if v := gateCardinality(base, result{ns: 1, extra: map[string]float64{"rows": 240}}); !strings.Contains(v, "240") {
		t.Fatalf("cardinality drift not flagged: %q", v)
	}
	if v := gateCardinality(base, result{ns: 1}); !strings.Contains(v, "missing") {
		t.Fatalf("missing cardinality metric not flagged: %q", v)
	}
	// A faster run must not mask a cardinality regression: rows gates
	// before ns/op and ignores it entirely.
	fast := result{ns: 0.1, extra: map[string]float64{"rows": 0}}
	if v := gateCardinality(base, fast); v == "" {
		t.Fatal("zero-row result passed the gate")
	}
}
