// mmdb-shell is an interactive SQL shell over the mmdb engine.
//
//	go run ./cmd/mmdb-shell [-dir /path/to/diskcopy]
//
// Lines are SQL statements (the engine's dialect — see package
// repro/internal/sqlparser); dot-commands handle metadata:
//
//	.help                 show help
//	.tables               list tables
//	.schema <table>       columns and indexes
//	.stats                engine metrics snapshot (queries, locks, txns, log, §3.1 ops)
//	.analyze <select>     run the statement and print its operator trace
//	.active               list in-flight queries (phase, rows, worker gauges)
//	.slow                 dump the slow-query log (enable with -slow <duration>)
//	.checkpoint           write all partitions to the disk copy
//	.recover              recover declared tables from the disk copy
//	.quit
//
// Backslash spellings (\stats, \analyze, …) are accepted as aliases.
//
// Example session:
//
//	CREATE TABLE dept (name STRING, id INT, PRIMARY KEY id)
//	CREATE TABLE emp (name STRING, id INT, dept REF(dept), PRIMARY KEY id)
//	INSERT INTO dept VALUES ('Toy', 459)
//	INSERT INTO emp VALUES ('Vera', 52, REF(dept, id, 459))
//	SELECT emp.name, dept.name FROM emp JOIN dept ON emp.dept = dept.SELF
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	mmdb "repro"
	"repro/internal/obs"
)

func main() {
	dir := flag.String("dir", "", "disk-copy directory (enables durability)")
	slow := flag.Duration("slow", 0, "slow-query threshold (enables the slow-query log, e.g. -slow 100ms)")
	flag.Parse()

	db, err := mmdb.Open(mmdb.Options{Dir: *dir, SlowQueryThreshold: *slow})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("mmdb-shell — main-memory DBMS (Lehman & Carey, SIGMOD 1986). '.help' for help.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("mmdb> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit" || line == "quit":
			return
		case strings.HasPrefix(line, ".") || strings.HasPrefix(line, `\`):
			if err := dotCommand(db, line); err != nil {
				fmt.Println("error:", err)
			}
		default:
			runSQL(db, line)
		}
	}
}

func dotCommand(db *mmdb.Database, line string) error {
	fields := strings.Fields(line)
	// Accept both ".cmd" and "\cmd" spellings.
	cmd := "." + strings.TrimLeft(fields[0], `.\`)
	switch cmd {
	case ".help":
		fmt.Println("  SQL: CREATE TABLE t (col TYPE..., PRIMARY KEY col [USING kind]) | CREATE [UNIQUE] INDEX ON t (col) [USING kind]")
		fmt.Println("       INSERT INTO t VALUES (...)  — REF(table, col, value) writes a tuple pointer")
		fmt.Println("       [EXPLAIN [ANALYZE]] SELECT [DISTINCT] cols FROM t [JOIN t2 ON a.x = b.y] [WHERE ...] [LIMIT n]")
		fmt.Println("       UPDATE t SET col = v [WHERE ...] | DELETE FROM t [WHERE ...]")
		fmt.Println("  meta: .tables  .schema <t>  .stats  .analyze <select>  .active  .slow  .checkpoint  .recover  .quit")
		return nil
	case ".stats":
		fmt.Println(indent(db.Stats().String()))
		return nil
	case ".active":
		fmt.Print(indent(obs.FormatActive(db.ActiveQueries())))
		fmt.Println()
		return nil
	case ".slow":
		fmt.Print(indent(obs.FormatSlow(db.SlowQueries())))
		fmt.Println()
		return nil
	case ".analyze":
		sql := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		if sql == "" {
			return fmt.Errorf("usage: .analyze SELECT ...")
		}
		r, err := db.Exec("EXPLAIN ANALYZE " + sql)
		if err != nil {
			return err
		}
		fmt.Println(indent(r.Plan))
		return nil
	case ".tables":
		for _, n := range db.Tables() {
			t, _ := db.Table(n)
			fmt.Printf("  %-16s %d rows\n", n, t.Cardinality())
		}
		return nil
	case ".schema":
		if len(fields) != 2 {
			return fmt.Errorf("usage: .schema <table>")
		}
		t, ok := db.Table(fields[1])
		if !ok {
			return fmt.Errorf("no table %q", fields[1])
		}
		for _, f := range t.Schema() {
			fk := ""
			if f.ForeignKey != "" {
				fk = " -> " + f.ForeignKey
			}
			fmt.Printf("  %-14s %s%s\n", f.Name, f.Type, fk)
		}
		for _, ix := range t.Indexes() {
			fmt.Printf("  index %-12s on %-12s (%s, %d entries)\n", ix.Name(), ix.Column(), ix.Kind(), ix.Len())
		}
		return nil
	case ".checkpoint":
		if err := db.Checkpoint(); err != nil {
			return err
		}
		fmt.Println("  checkpoint written")
		return nil
	case ".recover":
		if err := db.Recover(nil); err != nil {
			return err
		}
		fmt.Println("  recovered")
		return nil
	case ".quit", ".exit":
		os.Exit(0)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try .help)", fields[0])
	}
}

// indent prefixes every line with two spaces, matching the shell's output
// style for multi-line blocks (stats, traces).
func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

func runSQL(db *mmdb.Database, sql string) {
	r, err := db.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if r.Plan != "" {
		fmt.Println("  plan:", strings.ReplaceAll(r.Plan, "\n", "; "))
	}
	if r.Result == nil {
		fmt.Printf("  ok (%d rows affected)\n", r.RowsAffected)
		return
	}
	cols := r.Result.Columns()
	fmt.Println(" ", strings.Join(cols, " | "))
	for i := 0; i < r.Result.Len(); i++ {
		parts := make([]string, len(cols))
		for c, v := range r.Result.Row(i) {
			parts[c] = v.String()
		}
		fmt.Println(" ", strings.Join(parts, " | "))
	}
	fmt.Printf("  (%d rows)\n", r.Result.Len())
}
