// mmdb-bench regenerates the paper's tables and figures.
//
//	mmdb-bench -list
//	mmdb-bench -experiment graph4
//	mmdb-bench -experiment all -scale 0.25
//
// At -scale 1 every experiment runs at the paper's cardinalities (30,000
// elements; 20,000-tuple join relations). Smaller scales shrink the
// workloads proportionally for smoke runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	_ "repro/internal/concbench"      // registers the concurrent-query throughput experiment
	_ "repro/internal/joinorderbench" // registers the join-ordering experiment
	_ "repro/internal/obsbench"       // registers the telemetry-overhead experiment
	_ "repro/internal/skewbench"      // registers the memory-budget skew-defense experiment
)

// jsonReport is the machine-readable run record the -json flag writes:
// the environment, and per experiment its series plus the harness's
// runtime snapshot (wall time, allocations, GC cycles).
type jsonReport struct {
	Scale       float64          `json:"scale"`
	Seed        int64            `json:"seed"`
	Parallelism int              `json:"parallelism"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Timestamp   string           `json:"timestamp"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID       string         `json:"id"`
	Exhibit  string         `json:"exhibit"`
	Series   []bench.Series `json:"series"`
	WallSecs float64        `json:"wall_seconds"`
	Allocs   uint64         `json:"allocs"`
	Bytes    uint64         `json:"bytes"`
	GCs      uint32         `json:"gcs"`
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id, comma list, or 'all'")
		scale      = flag.Float64("scale", 1.0, "fraction of the paper's cardinalities")
		seed       = flag.Int64("seed", 1986, "workload seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		csvDir     = flag.String("csv", "", "also write each series as <dir>/<id>.csv for plotting")
		par        = flag.Int("parallelism", 0, "worker cap for the parallel sweep (0 = GOMAXPROCS)")
		jsonPath   = flag.String("json", "", "also write the full run (series + runtime stats) as JSON to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All {
			fmt.Printf("%-20s %s\n", e.ID, e.Exhibit)
		}
		return
	}

	var selected []bench.Experiment
	if *experiment == "all" {
		selected = bench.All
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	env := bench.Env{Scale: *scale, Seed: *seed, Parallelism: *par}
	report := jsonReport{
		Scale: *scale, Seed: *seed, Parallelism: *par,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("mmdb-bench: scale=%.3g seed=%d (%d experiments)\n\n", *scale, *seed, len(selected))
	for _, e := range selected {
		series, stats := bench.Measure(e, env)
		for _, s := range series {
			fmt.Println(s.Format())
			if *csvDir != "" {
				path := filepath.Join(*csvDir, s.ID+".csv")
				if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: e.ID, Exhibit: e.Exhibit, Series: series,
			WallSecs: stats.Wall.Seconds(),
			Allocs:   stats.Allocs, Bytes: stats.Bytes, GCs: stats.GCs,
		})
		fmt.Printf("  [%s completed: %s]\n\n", e.ID, stats)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
