package mmdb

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// The benchgate pair for the memory-budgeted skew defenses: the same
// Zipf-skewed radix join under a budget far below its build tables,
// once with the dynamic-hybrid defenses on and once disabled. Both
// report the joined row count via b.ReportMetric; every generated key
// lies inside the probe relation's unique-key domain, so the
// cardinality equals the build cardinality exactly on every machine
// and benchgate diffs it exactly — a defense that drops or duplicates
// rows fails the gate even if it got faster.

const skewBenchRows = 60000

func openSkewPair(b *testing.B, noDefense bool) *Database {
	b.Helper()
	db, err := Open(Options{
		MemoryBudget:       32 << 10,
		DisableSkewDefense: noDefense,
		// Radix at any build size: the bench measures the budgeted radix
		// path, not the crossover.
		Radix: RadixConfig{MinBuildRows: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	probe, err := db.CreateTable("probe", []Field{
		{Name: "id", Type: TypeInt}, {Name: "k", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < skewBenchRows; i++ {
		if _, err := probe.Insert(Int(int64(i)), Int(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	keys, err := workload.BuildZipf(
		workload.ZipfSpec{Cardinality: skewBenchRows}, rand.New(rand.NewSource(1986)))
	if err != nil {
		b.Fatal(err)
	}
	build, err := db.CreateTable("build", []Field{
		{Name: "id", Type: TypeInt}, {Name: "k", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		b.Fatal(err)
	}
	for i, k := range keys.Values {
		if _, err := build.Insert(Int(int64(i)), Int(k)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func benchSkewJoin(b *testing.B, noDefense bool) {
	db := openSkewPair(b, noDefense)
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := db.Query("probe").Join("build", "k", "k").
			Select("probe.id", "build.id").Parallel(4).Run()
		if err != nil {
			b.Fatal(err)
		}
		rows = res.Len()
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkSkewJoinDefended(b *testing.B) { benchSkewJoin(b, false) }

func BenchmarkSkewJoinNoDefense(b *testing.B) { benchSkewJoin(b, true) }
