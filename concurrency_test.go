package mmdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/lock"
)

// TestConcurrentTransfers runs the classic bank-transfer invariant through
// the public API: many goroutines move money between accounts under
// partition-level two-phase locking; the total balance must never drift
// and deadlock victims must retry cleanly.
func TestConcurrentTransfers(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	accounts, err := db.CreateTable("accounts", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "balance", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	const nAcct = 40
	const initial = 1000
	tx := db.Begin()
	for i := int64(0); i < nAcct; i++ {
		if err := tx.Insert(accounts, Int(i), Int(initial)); err != nil {
			t.Fatal(err)
		}
	}
	tuples, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const transfersPerWorker = 200
	var wg sync.WaitGroup
	deadlocks := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < transfersPerWorker; i++ {
				from := tuples[rng.Intn(nAcct)]
				to := tuples[rng.Intn(nAcct)]
				if from == to {
					continue
				}
				for attempt := 0; ; attempt++ {
					tx := db.Begin()
					// Read both balances under shared→exclusive locks;
					// the deferred updates apply atomically at commit.
					fv, err := tx.Read(from)
					if err == nil {
						var tv []Value
						tv, err = tx.Read(to)
						if err == nil {
							err = tx.Update(accounts, from, "balance", Int(fv[1].Int()-1))
							if err == nil {
								err = tx.Update(accounts, to, "balance", Int(tv[1].Int()+1))
							}
						}
					}
					if err == nil {
						_, err = tx.Commit()
					}
					if err == nil {
						break
					}
					if err == lock.ErrDeadlock {
						deadlocks[w]++
						continue // victim retries
					}
					// Commit may observe a stale read (another txn moved
					// the balance between our read and commit): the
					// deferred-update model makes this a benign retry too.
					tx.Abort()
					if attempt > 100 {
						t.Errorf("worker %d: giving up: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(0)
	res, err := db.Query("accounts").Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		total += res.Row(i)[1].Int()
	}
	if total != nAcct*initial {
		t.Fatalf("balance drift: total %d, want %d", total, nAcct*initial)
	}
	sum := 0
	for _, d := range deadlocks {
		sum += d
	}
	t.Logf("transfers done; %d deadlock retries across %d workers", sum, workers)
}

// TestConcurrentReadersAndWriter checks reader/writer interleaving: a
// writer stream of inserts must never make concurrent indexed readers see
// torn state (the partition locks serialize access).
func TestConcurrentReadersAndWriter(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("events", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "payload", Type: TypeString},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 3000; i++ {
			tx := db.Begin()
			if err := tx.Insert(tbl, Int(i), Str(fmt.Sprintf("event-%d", i))); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if _, err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				if err := tx.LockTableShared(tbl); err != nil {
					tx.Abort()
					continue
				}
				// Under the shared lock, an indexed point read must be
				// internally consistent. The query runs In(tx) — an
				// independent reader would deadlock against writers queued
				// behind tx's own shared lock.
				id := rng.Int63n(3000)
				res, err := db.Query("events").Where("id", Eq, Int(id)).In(tx).Run()
				if err != nil {
					t.Errorf("query: %v", err)
					tx.Abort()
					return
				}
				if res.Len() == 1 {
					row := res.Row(0)
					if row[1].Str() != fmt.Sprintf("event-%d", row[0].Int()) {
						t.Errorf("torn row: %v", row)
						tx.Abort()
						return
					}
				}
				tx.Abort() // release the read locks
			}
		}(r)
	}
	wg.Wait()
	if tbl.Cardinality() != 3000 {
		t.Fatalf("cardinality=%d", tbl.Cardinality())
	}
}
