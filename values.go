package mmdb

import "repro/internal/storage"

// Re-exported storage types: the public API speaks the same Value and
// Tuple vocabulary as the engine, so query results hand back live tuple
// pointers exactly as §2.3 prescribes.
type (
	// Value is a single attribute value.
	Value = storage.Value
	// Tuple is a stable pointer to a stored row.
	Tuple = storage.Tuple
	// FieldType identifies a column's type.
	FieldType = storage.Type
	// Field defines one column of a table schema.
	Field = storage.FieldDef
)

// Column types.
const (
	TypeNull   = storage.Null
	TypeInt    = storage.Int
	TypeFloat  = storage.Float
	TypeString = storage.Str
	TypeBool   = storage.Bool
	TypeRef    = storage.Ref
)

// Null is the null value.
var Null = storage.NullValue

// Int builds an integer value.
func Int(v int64) Value { return storage.IntValue(v) }

// Float builds a float value.
func Float(v float64) Value { return storage.FloatValue(v) }

// Str builds a string value.
func Str(v string) Value { return storage.StringValue(v) }

// Bool builds a boolean value.
func Bool(v bool) Value { return storage.BoolValue(v) }

// Ref builds a tuple-pointer value — the precomputed-join foreign key of
// §2.1.
func Ref(t *Tuple) Value { return storage.RefValue(t) }

// Compare orders two values of the same type (Null sorts first).
func Compare(a, b Value) int { return storage.Compare(a, b) }

// Equal tests two values for equality; mismatched types are unequal.
func Equal(a, b Value) bool { return storage.Equal(a, b) }
