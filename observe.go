package mmdb

import (
	"net/http"

	"repro/internal/obs"
)

// Stats is a point-in-time snapshot of the engine metrics registry:
// queries by plan shape, rows scanned/returned, index probes per
// structure, lock waits, transaction outcomes, log traffic, the query
// latency histogram, and the paper's §3.1 operation counters rolled up
// from internal/meter.
type Stats = obs.Snapshot

// QueryTrace is the per-query execution trace produced by Query.Analyze
// and EXPLAIN ANALYZE: an operator tree where each node records the
// access path the planner chose, rows in/out, wall time, and the §3.1
// operation counters that operator accumulated.
type QueryTrace = obs.QueryTrace

// TraceNode is one operator of a QueryTrace.
type TraceNode = obs.TraceNode

// Decision is one plan-vs-actual audit record from QueryTrace.Decisions:
// what the chooser picked, the estimate it picked on, and the actual the
// execution observed.
type Decision = obs.Decision

// TableStat is one relation's sampled statistics from Stats().Tables:
// exact row count plus per-column distinct-value estimates, refreshed
// lazily as DML accumulates. The join-order planner costs n-way joins
// from these numbers.
type TableStat = obs.TableStat

// Stats snapshots the engine metrics plus per-relation statistics. With
// metrics disabled (Options.DisableMetrics) the registry portion is the
// zero Stats, but Tables is still populated — the planner's statistics
// live in storage, not in the metrics registry.
func (db *Database) Stats() Stats {
	s := db.obs.Snapshot()
	s.Tables = db.tableStats()
	return s
}

// tableStats snapshots every relation's statistics under shared table
// locks, the same protocol queries read under.
func (db *Database) tableStats() []obs.TableStat {
	var stats []obs.TableStat
	for _, name := range db.Tables() {
		t, ok := db.Table(name)
		if !ok {
			continue
		}
		ts, err := t.Stats()
		if err != nil {
			continue
		}
		stats = append(stats, obs.TableStat(ts))
	}
	return stats
}

// Metrics returns the engine metrics registry, or nil when metrics are
// disabled. All registry methods are safe on a nil receiver, so callers
// may use the result unconditionally.
func (db *Database) Metrics() *obs.Registry { return db.obs }

// MetricsHandler returns an HTTP handler exposing the engine metrics:
// Prometheus text format by default, a JSON snapshot with ?format=json.
//
//	mux.Handle("/metrics", db.MetricsHandler())
//	// curl localhost:8080/metrics | grep mmdb_queries_total
//
// With metrics disabled the handler serves a single comment line.
func (db *Database) MetricsHandler() http.Handler { return db.obs.Handler() }

// ActiveQueryInfo is one in-flight query as reported by ActiveQueries:
// its text, phase, start time, and live progress gauges (rows processed,
// busy/peak workers, max rows one worker absorbed).
type ActiveQueryInfo = obs.ActiveQueryInfo

// SlowQuery is one slow-query log entry: the query text, wall time, row
// count, and the full execution trace with the plan-vs-actual decision
// audit.
type SlowQuery = obs.SlowQuery

// ActiveQueries snapshots the queries executing right now, oldest first.
// Live introspection is on whenever metrics are (Options.DisableMetrics
// turns both off); disabled it returns nil.
func (db *Database) ActiveQueries() []ActiveQueryInfo { return db.active.Snapshot() }

// SlowQueries returns the slow-query log, newest first. The log is on
// when Options.SlowQueryThreshold is set; off, this returns nil.
func (db *Database) SlowQueries() []SlowQuery { return db.slow.Snapshot() }

// DebugHandler returns an HTTP handler serving live-query introspection:
// /debug/queries lists in-flight queries, /debug/slow dumps the
// slow-query log (text by default, ?format=json for machines).
//
//	mux.Handle("/debug/", db.DebugHandler())
func (db *Database) DebugHandler() http.Handler { return obs.DebugHandler(db.active, db.slow) }
