package mmdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/index/ttree"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// Op is a predicate operator.
type Op = plan.CmpOp

// Predicate operators.
const (
	Eq = plan.Eq
	Ne = plan.Ne
	Lt = plan.Lt
	Le = plan.Le
	Gt = plan.Gt
	Ge = plan.Ge
)

// Self joins on tuple identity instead of a column — the pointer-compare
// join of §2.1 Query 2 (the other side's column must be a Ref field).
const Self = "__self__"

// Query is a fluent query over one table, optionally joined to a second.
// The planner picks access paths and join methods by the paper's
// preference ordering (§4); Explain on the result shows its choices.
type Query struct {
	db       *Database
	from     *Table
	tx       *Txn
	preds    []qpred
	join     *qjoin
	cols     []string
	distinct bool
	err      error
}

// In runs the query inside an existing transaction: its shared locks are
// acquired (and retained, per two-phase locking) by tx instead of an
// ephemeral reader. Use this whenever the surrounding transaction already
// holds locks — an independent reader could queue behind a writer that
// waits on the transaction, a cross-layer deadlock no lock manager sees.
func (q *Query) In(tx *Txn) *Query {
	q.tx = tx
	return q
}

type qpred struct {
	column string
	field  int
	op     Op
	val    Value
}

type qjoin struct {
	table                 *Table
	leftCol, rightCol     string
	leftField, rightField int
}

// Query starts a query over the named table.
func (db *Database) Query(table string) *Query {
	t, ok := db.Table(table)
	if !ok {
		return &Query{db: db, err: fmt.Errorf("mmdb: no table %q", table)}
	}
	return &Query{db: db, from: t}
}

// Where adds a predicate on a column of the from-table. Multiple
// predicates are conjunctive; the planner serves the most selective
// indexable one through an index and filters the rest during the scan.
func (q *Query) Where(column string, op Op, v Value) *Query {
	if q.err != nil {
		return q
	}
	f := q.from.ColumnIndex(column)
	if f < 0 {
		q.err = fmt.Errorf("mmdb: table %s has no column %q", q.from.Name(), column)
		return q
	}
	q.preds = append(q.preds, qpred{column: column, field: f, op: op, val: v})
	return q
}

// Join equijoins the from-table (left) with another table (right).
// Either column may be Self to join on tuple identity, enabling
// pointer-compare joins against Ref columns.
func (q *Query) Join(table, leftColumn, rightColumn string) *Query {
	if q.err != nil {
		return q
	}
	if q.join != nil {
		q.err = fmt.Errorf("mmdb: only two-way joins are supported")
		return q
	}
	t, ok := q.db.Table(table)
	if !ok {
		q.err = fmt.Errorf("mmdb: no table %q", table)
		return q
	}
	j := &qjoin{table: t, leftCol: leftColumn, rightCol: rightColumn,
		leftField: tupleindex.SelfField, rightField: tupleindex.SelfField}
	if leftColumn != Self {
		if j.leftField = q.from.ColumnIndex(leftColumn); j.leftField < 0 {
			q.err = fmt.Errorf("mmdb: table %s has no column %q", q.from.Name(), leftColumn)
			return q
		}
	}
	if rightColumn != Self {
		if j.rightField = t.ColumnIndex(rightColumn); j.rightField < 0 {
			q.err = fmt.Errorf("mmdb: table %s has no column %q", table, rightColumn)
			return q
		}
	}
	q.join = j
	return q
}

// Select names the output columns: "col" (resolved against the from-table
// first, then the joined table) or "table.col". Without Select, every
// column of every involved table is output.
func (q *Query) Select(columns ...string) *Query {
	q.cols = append(q.cols, columns...)
	return q
}

// Distinct eliminates duplicate output rows (by hashing — the dominant
// method, §3.4).
func (q *Query) Distinct() *Query {
	q.distinct = true
	return q
}

// Result is a query result: a temporary list of tuple pointers plus the
// descriptor naming its output columns. Values are extracted from the
// source tuples on demand — the result holds no copied data.
type Result struct {
	list *storage.TempList
	plan []string
}

// Len returns the number of rows.
func (r *Result) Len() int { return r.list.Len() }

// Columns returns the output column names.
func (r *Result) Columns() []string { return r.list.ColumnNames() }

// Row materializes row i's output values.
func (r *Result) Row(i int) []Value { return r.list.RowValues(i) }

// Tuples returns row i's underlying tuple pointers.
func (r *Result) Tuples(i int) []*Tuple { return r.list.Row(i) }

// Plan describes the planner's choices, one line per decision.
func (r *Result) Plan() string { return strings.Join(r.plan, "\n") }

// truncate returns a result holding only the first n rows.
func (r *Result) truncate(n int) *Result {
	out := storage.MustTempList(r.list.Descriptor())
	r.list.Scan(func(i int, row storage.Row) bool {
		if i >= n {
			return false
		}
		out.Append(row)
		return true
	})
	return &Result{list: out, plan: r.plan}
}

// Run plans and executes the query under shared relation locks, so
// queries are safe against concurrent transactions. Tables are locked in
// name order to keep concurrent multi-table queries deadlock-free among
// themselves.
func (q *Query) Run() (*Result, error) {
	if q.err != nil {
		return nil, q.err
	}
	reader := q.tx
	if reader == nil {
		ephemeral := q.db.Begin()
		defer ephemeral.Abort() // releases the shared locks
		reader = ephemeral
	}
	tables := []*Table{q.from}
	if q.join != nil && q.join.table != q.from {
		tables = append(tables, q.join.table)
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name() < tables[j].Name() })
	for _, t := range tables {
		if err := reader.inner.LockRelationShared(t.rel); err != nil {
			return nil, err
		}
	}
	var planNotes []string

	// Phase 1: selection on the from-table.
	list, note, err := q.runSelection()
	if err != nil {
		return nil, err
	}
	planNotes = append(planNotes, note)

	// Phase 2: join.
	if q.join != nil {
		list, note, err = q.runJoin(list)
		if err != nil {
			return nil, err
		}
		planNotes = append(planNotes, note)
	}

	// Phase 3: projection via the result descriptor; duplicate
	// elimination only if requested (§2.3: projection is implicit).
	list, err = q.project(list)
	if err != nil {
		return nil, err
	}
	if q.distinct {
		list = exec.ProjectHash(list, nil)
		planNotes = append(planNotes, "distinct: hash duplicate elimination")
	}
	return &Result{list: list, plan: planNotes}, nil
}

// Explain plans the query and describes the choices without running it to
// completion (execution is required for planning against live data sizes,
// so Explain simply runs and reports).
func (q *Query) Explain() (string, error) {
	r, err := q.Run()
	if err != nil {
		return "", err
	}
	return r.Plan(), nil
}

// runSelection evaluates the from-table predicates, producing a
// single-source temp list and a plan note.
func (q *Query) runSelection() (*storage.TempList, string, error) {
	t := q.from
	spec := exec.SelectSpec{RelName: t.Name(), Schema: t.rel.Schema()}
	if len(q.preds) == 0 {
		list := storage.MustTempList(storage.Descriptor{Sources: []string{t.Name()}})
		t.scanSource().Scan(func(tp *storage.Tuple) bool {
			list.Append(storage.Row{tp})
			return true
		})
		return list, fmt.Sprintf("access %s: full scan via %s index", t.Name(), t.primary.kind), nil
	}
	// Choose the indexable predicate with the best access path.
	best, bestPath := -1, plan.PathSequentialScan
	for i, p := range q.preds {
		path := plan.ChooseSelection(plan.SelectionInput{
			Op:      p.op,
			HasHash: t.indexOn(p.field, false) != nil,
			HasTree: t.indexOn(p.field, true) != nil,
		})
		if best == -1 || path < bestPath {
			best, bestPath = i, path
		}
	}
	p := q.preds[best]
	var list *storage.TempList
	switch bestPath {
	case plan.PathHashLookup:
		list = exec.SelectEqHash(t.indexOn(p.field, false).hashed, p.field, p.val, spec)
	case plan.PathTreeLookup:
		list = exec.SelectEqTree(t.indexOn(p.field, true).ordered, p.field, p.val, spec)
	case plan.PathTreeRange:
		var lo, hi *Value
		switch p.op {
		case Lt, Le:
			hi = &p.val
		case Gt, Ge:
			lo = &p.val
		}
		list = exec.SelectRange(t.indexOn(p.field, true).ordered, p.field, lo, hi, spec)
		// Range access is inclusive; strict bounds drop the endpoint below.
	default:
		list = exec.SelectScan(t.scanSource(), func(tp *storage.Tuple) bool { return true }, spec)
	}
	// Residual filter: every predicate re-checked (strict bounds, extra
	// conjuncts, Ne).
	out := storage.MustTempList(list.Descriptor())
	list.Scan(func(_ int, row storage.Row) bool {
		tp := row[0]
		for _, pr := range q.preds {
			if !predHolds(tp, pr) {
				return true
			}
		}
		out.Append(row)
		return true
	})
	note := fmt.Sprintf("access %s: %s on %q", t.Name(), bestPath, p.column)
	if len(q.preds) > 1 {
		note += fmt.Sprintf(" + %d residual filter(s)", len(q.preds)-1)
	}
	return out, note, nil
}

func predHolds(tp *storage.Tuple, p qpred) bool {
	v := tp.Field(p.field)
	if v.IsNull() || p.val.IsNull() {
		return false
	}
	c := storage.Compare(v, p.val)
	switch p.op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	default:
		return c >= 0
	}
}

// runJoin joins the selection result (left) with the join table (right).
func (q *Query) runJoin(left *storage.TempList) (*storage.TempList, string, error) {
	j := q.join
	outer := exec.ListColumn{List: left, Column: 0}
	fullOuter := len(q.preds) == 0 // outer is the entire from-table

	// Precomputed: left column is a Ref FK into the join table and the
	// right side is tuple identity.
	hasPre := false
	if j.leftField >= 0 && j.rightCol == Self {
		def := q.from.rel.Schema().Field(j.leftField)
		hasPre = def.Type == storage.Ref && def.ForeignKey == j.table.Name()
	}

	outerTT := (*ttree.Tree[*storage.Tuple])(nil)
	if fullOuter && j.leftField >= 0 {
		if ix := q.from.indexOn(j.leftField, true); ix != nil {
			outerTT, _ = ix.ordered.(*ttree.Tree[*storage.Tuple])
		}
	}
	var innerTT *ttree.Tree[*storage.Tuple]
	var innerOrdered *Index
	if j.rightField >= 0 {
		if ix := j.table.indexOn(j.rightField, true); ix != nil {
			innerOrdered = ix
			innerTT, _ = ix.ordered.(*ttree.Tree[*storage.Tuple])
		}
	}
	var innerHash *Index
	if j.rightField >= 0 {
		innerHash = j.table.indexOn(j.rightField, false)
	}

	choice := plan.ChooseJoin(plan.JoinInput{
		Equijoin:       true,
		HasPrecomputed: hasPre,
		OuterTree:      outerTT != nil,
		InnerTree:      innerTT != nil,
		InnerHash:      innerHash != nil,
		OuterCard:      outer.Len(),
		InnerCard:      j.table.Cardinality(),
		DuplicatePct:   -1,
		SemijoinPct:    -1,
	})

	spec := exec.JoinSpec{
		OuterName: q.from.Name(), InnerName: j.table.Name(),
		OuterField: j.leftField, InnerField: j.rightField,
	}
	var list *storage.TempList
	switch choice {
	case plan.JoinPrecomputed:
		list = exec.PrecomputedJoin(outer, j.leftField, spec)
	case plan.JoinTreeMerge:
		list = exec.TreeMergeJoin(outerTT, innerTT, spec)
	case plan.JoinTree:
		list = exec.TreeJoin(outer, innerOrdered.ordered, spec)
	case plan.JoinHash:
		if innerHash != nil {
			list = exec.HashJoinExisting(outer, innerHash.hashed, spec)
		} else {
			list = exec.HashJoin(outer, j.table.scanSource(), spec)
		}
	case plan.JoinSortMerge:
		list = exec.SortMergeJoin(outer, j.table.scanSource(), spec)
	default:
		list = exec.NestedLoopsJoin(outer, j.table.scanSource(), spec)
	}
	note := fmt.Sprintf("join %s ⋈ %s: %s", q.from.Name(), j.table.Name(), choice)
	return list, note, nil
}

// project rewrites the temp list's descriptor to the selected columns.
func (q *Query) project(list *storage.TempList) (*storage.TempList, error) {
	desc := list.Descriptor()
	var cols []storage.ColRef
	if len(q.cols) == 0 {
		// All columns of all sources.
		tables := []*Table{q.from}
		if q.join != nil {
			tables = append(tables, q.join.table)
		}
		for si, t := range tables {
			for fi, f := range t.Schema() {
				cols = append(cols, storage.ColRef{Source: si, Field: fi, Name: t.Name() + "." + f.Name})
			}
		}
	} else {
		for _, name := range q.cols {
			ref, err := q.resolveColumn(name)
			if err != nil {
				return nil, err
			}
			cols = append(cols, ref)
		}
	}
	out := storage.MustTempList(storage.Descriptor{Sources: desc.Sources, Cols: cols})
	list.Scan(func(_ int, row storage.Row) bool {
		out.Append(row)
		return true
	})
	return out, nil
}

func (q *Query) resolveColumn(name string) (storage.ColRef, error) {
	table, col := "", name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		table, col = name[:i], name[i+1:]
	}
	candidates := []*Table{q.from}
	sources := []int{0}
	if q.join != nil {
		candidates = append(candidates, q.join.table)
		sources = append(sources, 1)
	}
	for i, t := range candidates {
		if table != "" && t.Name() != table {
			continue
		}
		if f := t.ColumnIndex(col); f >= 0 {
			return storage.ColRef{Source: sources[i], Field: f, Name: name}, nil
		}
	}
	return storage.ColRef{}, fmt.Errorf("mmdb: cannot resolve column %q", name)
}
