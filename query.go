package mmdb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/exec"
	"repro/internal/index/ttree"
	"repro/internal/mem"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/radix"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// Op is a predicate operator.
type Op = plan.CmpOp

// Predicate operators.
const (
	Eq = plan.Eq
	Ne = plan.Ne
	Lt = plan.Lt
	Le = plan.Le
	Gt = plan.Gt
	Ge = plan.Ge
)

// Self joins on tuple identity instead of a column — the pointer-compare
// join of §2.1 Query 2 (the other side's column must be a Ref field).
const Self = "__self__"

// Query is a fluent query over one table, optionally joined to further
// tables. Two-way joins run the paper's preference ordering (§4) over
// its join repertoire; three and more relations route through the
// cost-forecasted join-order planner and the pipelined multi-join
// executor. Explain describes the expected choices, Analyze runs the
// query and reports what actually executed.
type Query struct {
	db        *Database
	from      *Table
	tx        *Txn
	rels      []qrel // rels[0] is the from-table; Join/JoinAs append
	joins     []qjoin
	preds     []qpred
	cols      []string
	distinct  bool
	groupBy   []string
	aggs      []qagg
	orderBy   []qorder
	limit     int           // -1 = no limit; 0 is a real (empty-result) limit
	par       int           // requested parallelism; 0 = database default
	strategy  *JoinStrategy // per-query Options.JoinMethod override
	sortStrat *SortStrategy // per-query Options.SortMethod override
	ordStrat  *JoinOrderStrategy // per-query Options.JoinOrder override
	forced    []string           // ForceJoinOrder relation names
	prio      int                // scheduler admission tiebreak (Priority)
	ctx       context.Context    // cancellation scope (WithContext); nil = background
	sq        *sched.Query       // per-execution scheduler handle, set by execute
	res       *mem.Reservation   // per-execution memory reservation; nil = unbudgeted
	clamp     []obs.Decision     // budget-clamp audits pending for this execution
	snap      *storage.Snapshot  // lock-free snapshot this execution reads; nil = locked
	err       error
	// forceJoin overrides the planner's join choice — a testing hook that
	// lets trace tests exercise methods the preference ordering would not
	// pick (sort-merge, nested loops). Never set by public API.
	forceJoin *plan.JoinMethod
}

// In runs the query inside an existing transaction: its shared locks are
// acquired (and retained, per two-phase locking) by tx instead of an
// ephemeral reader. Use this whenever the surrounding transaction already
// holds locks — an independent reader could queue behind a writer that
// waits on the transaction, a cross-layer deadlock no lock manager sees.
func (q *Query) In(tx *Txn) *Query {
	q.tx = tx
	return q
}

type qpred struct {
	column string
	field  int
	op     Op
	val    Value
}

// qrel is one relation in the query's scope: the from-table at index 0,
// then one entry per Join/JoinAs in declaration order. name is the scope
// name — the alias when one was given, else the table name — and is what
// qualified columns, output descriptors, and plan lines use.
type qrel struct {
	t    *Table
	name string
}

// qjoin is one join edge: rels[rightRel] (joined at this step) equi-
// joined to the earlier rels[leftRel]. A field of tupleindex.SelfField
// joins on tuple identity. closing marks an edge added by On between
// two relations already in scope — the cycle-closing predicate of a
// cyclic join graph.
type qjoin struct {
	leftRel, rightRel     int
	leftCol, rightCol     string
	leftField, rightField int
	closing               bool
}

// AggFunc identifies an aggregate function for Query.Agg.
type AggFunc int

// The aggregate functions. AggCount with an empty column (or "*") is
// COUNT(*); every other combination skips NULL inputs, per SQL.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// aggKind maps the public function tag to the operator's kind.
func aggKind(f AggFunc) agg.Kind {
	switch f {
	case AggSum:
		return agg.Sum
	case AggMin:
		return agg.Min
	case AggMax:
		return agg.Max
	case AggAvg:
		return agg.Avg
	default:
		return agg.Count
	}
}

// qagg is one aggregate of a grouped query.
type qagg struct {
	fn   AggFunc
	col  string // input column; "" or "*" = COUNT(*)
	name string // output column name, e.g. "COUNT(*)"
}

// qorder is one ORDER BY term: an output column name or a 1-based output
// ordinal (as digits, SQL's "ORDER BY 2"), plus its direction.
type qorder struct {
	col  string
	desc bool
}

// Query starts a query over the named table.
func (db *Database) Query(table string) *Query {
	t, ok := db.Table(table)
	if !ok {
		return &Query{db: db, err: fmt.Errorf("mmdb: no table %q", table), limit: -1}
	}
	return &Query{db: db, from: t, rels: []qrel{{t: t, name: table}}, limit: -1}
}

// As renames the from-table's scope name (a table alias), so qualified
// columns and join conditions can tell multiple uses of one table
// apart: db.Query("emp").As("a").JoinAs("emp", "b", "a.boss", Self).
// Call it before any Join.
func (q *Query) As(alias string) *Query {
	if q.err != nil {
		return q
	}
	if len(q.rels) > 1 {
		q.err = fmt.Errorf("mmdb: As must be called before Join")
		return q
	}
	q.rels[0].name = alias
	return q
}

// Where adds a predicate on a column of the from-table, named "col" or
// "table.col" (the table part must be the from-table — predicates on the
// joined table are not supported). Multiple predicates are conjunctive;
// the planner serves the most selective indexable one through an index
// and filters the rest during the scan.
func (q *Query) Where(column string, op Op, v Value) *Query {
	if q.err != nil {
		return q
	}
	if tbl, col, ok := strings.Cut(column, "."); ok {
		if tbl != q.rels[0].name {
			q.err = fmt.Errorf("mmdb: WHERE %s: predicates must be on the from-table %s", column, q.rels[0].name)
			return q
		}
		column = col
	}
	f := q.from.ColumnIndex(column)
	if f < 0 {
		q.err = fmt.Errorf("mmdb: table %s has no column %q", q.from.Name(), column)
		return q
	}
	q.preds = append(q.preds, qpred{column: column, field: f, op: op, val: v})
	return q
}

// Join equijoins an already-joined relation (left) with another table
// (right). leftColumn is "col" (resolved against the in-scope relations
// in declaration order) or "name.col" (name = a table or alias already
// in scope); either column may be Self to join on tuple identity,
// enabling pointer-compare joins against Ref columns. Chaining Join
// calls builds an n-way join graph; with three or more relations the
// planner picks the execution order by cost forecast (Options.JoinOrder
// and Query.JoinOrder control this).
func (q *Query) Join(table, leftColumn, rightColumn string) *Query {
	return q.JoinAs(table, "", leftColumn, rightColumn)
}

// JoinAs is Join with an alias for the newly joined table, required
// when the same table participates more than once (self-joins).
func (q *Query) JoinAs(table, alias, leftColumn, rightColumn string) *Query {
	if q.err != nil {
		return q
	}
	t, ok := q.db.Table(table)
	if !ok {
		q.err = fmt.Errorf("mmdb: no table %q", table)
		return q
	}
	name := table
	if alias != "" {
		name = alias
	}
	for _, r := range q.rels {
		if r.name == name {
			q.err = fmt.Errorf("mmdb: relation name %q already in scope; use JoinAs with a distinct alias", name)
			return q
		}
	}
	j := qjoin{rightRel: len(q.rels), leftCol: leftColumn, rightCol: rightColumn,
		leftField: tupleindex.SelfField, rightField: tupleindex.SelfField}
	if rel, field, err := q.resolveJoinLeft(leftColumn); err != nil {
		q.err = err
		return q
	} else {
		j.leftRel, j.leftField = rel, field
	}
	if rightColumn != Self {
		if j.rightField = t.ColumnIndex(rightColumn); j.rightField < 0 {
			q.err = fmt.Errorf("mmdb: table %s has no column %q", table, rightColumn)
			return q
		}
	}
	q.rels = append(q.rels, qrel{t: t, name: name})
	q.joins = append(q.joins, j)
	return q
}

// On adds an extra equijoin edge between two relations already in
// scope — the closing edge of a cyclic join graph. Each side is "col",
// "name.col", or "name.SELF" (resolved like Join's left side); the two
// sides must land on different relations. The pipeline enforces
// closing edges after the hash match of whichever stage binds their
// second relation, whatever order the planner picks.
func (q *Query) On(leftColumn, rightColumn string) *Query {
	if q.err != nil {
		return q
	}
	if len(q.rels) < 2 {
		q.err = fmt.Errorf("mmdb: On needs at least two relations in scope")
		return q
	}
	j := qjoin{leftCol: leftColumn, rightCol: rightColumn, closing: true}
	var err error
	if j.leftRel, j.leftField, err = q.resolveJoinLeft(leftColumn); err != nil {
		q.err = err
		return q
	}
	if j.rightRel, j.rightField, err = q.resolveJoinLeft(rightColumn); err != nil {
		q.err = err
		return q
	}
	if j.leftRel == j.rightRel {
		q.err = fmt.Errorf("mmdb: On must relate two different relations (both sides resolve to %s)",
			q.rels[j.leftRel].name)
		return q
	}
	q.joins = append(q.joins, j)
	return q
}

// resolveJoinLeft resolves a join's left side against the in-scope
// relations: Self and "name.SELF" mean tuple identity (of rels[0] when
// unqualified); "name.col" resolves name as a scope name; a bare column
// matches the first in-scope relation that has it.
func (q *Query) resolveJoinLeft(column string) (rel, field int, err error) {
	relName := ""
	if n, col, ok := strings.Cut(column, "."); ok {
		relName, column = n, col
	}
	rel = -1
	if relName != "" {
		for i, r := range q.rels {
			if r.name == relName {
				rel = i
				break
			}
		}
		if rel < 0 {
			return 0, 0, fmt.Errorf("mmdb: join references %q, which is not in scope", relName)
		}
	}
	if column == Self {
		if rel < 0 {
			rel = 0
		}
		return rel, tupleindex.SelfField, nil
	}
	if rel >= 0 {
		if f := q.rels[rel].t.ColumnIndex(column); f >= 0 {
			return rel, f, nil
		}
		return 0, 0, fmt.Errorf("mmdb: table %s has no column %q", q.rels[rel].name, column)
	}
	for i, r := range q.rels {
		if f := r.t.ColumnIndex(column); f >= 0 {
			return i, f, nil
		}
	}
	return 0, 0, fmt.Errorf("mmdb: no in-scope table has column %q", column)
}

// JoinOrder overrides Options.JoinOrder for this query: JoinOrderAuto
// runs the cost-forecasted enumerator (exact DP up to plan.DPMaxRels
// relations, greedy beyond), JoinOrderLeftDeep executes the joins in
// the order they were written, JoinOrderForced executes the order given
// to ForceJoinOrder. Only queries with three or more relations are
// affected — a two-way join has no order to choose.
func (q *Query) JoinOrder(s JoinOrderStrategy) *Query {
	q.ordStrat = &s
	return q
}

// ForceJoinOrder pins the multi-join execution order to the named
// relations (scope names — aliases where given), driver first. The list
// must name every relation exactly once, and each relation after the
// first must share a join edge with the ones before it (the pipeline
// cannot execute cross products). Implies JoinOrder(JoinOrderForced).
func (q *Query) ForceJoinOrder(names ...string) *Query {
	q.forced = names
	s := JoinOrderForced
	q.ordStrat = &s
	return q
}

// joinOrderStrategy resolves the effective order strategy: per-query
// override, else the database default.
func (q *Query) joinOrderStrategy() JoinOrderStrategy {
	if q.ordStrat != nil {
		return *q.ordStrat
	}
	return q.db.opts.JoinOrder
}

// Select names the output columns: "col" (resolved against the from-table
// first, then the joined table) or "table.col". Without Select, every
// column of every involved table is output.
func (q *Query) Select(columns ...string) *Query {
	q.cols = append(q.cols, columns...)
	return q
}

// Distinct eliminates duplicate output rows (by hashing — the dominant
// method, §3.4).
func (q *Query) Distinct() *Query {
	q.distinct = true
	return q
}

// GroupBy groups the query's rows by the named columns ("col" or
// "table.col"). A grouped query's output is the group-key columns followed
// by one column per Agg call; the Select list is not used. GroupBy without
// Agg degenerates to DISTINCT over the group columns.
func (q *Query) GroupBy(columns ...string) *Query {
	q.groupBy = append(q.groupBy, columns...)
	return q
}

// Agg adds an aggregate output column: AggCount/AggSum/AggMin/AggMax/
// AggAvg over the named input column. An empty column (or "*") with
// AggCount counts rows; every function skips NULL inputs, and a group
// whose inputs were all NULL yields NULL (0 for COUNT). Agg without
// GroupBy aggregates the whole input into one row. The output column is
// named the SQL way: "COUNT(*)", "SUM(sal)", ….
func (q *Query) Agg(fn AggFunc, column string) *Query {
	name := fn.String() + "(*)"
	if column != "" && column != "*" {
		name = fmt.Sprintf("%s(%s)", fn, column)
	}
	q.aggs = append(q.aggs, qagg{fn: fn, col: column, name: name})
	return q
}

// String spells the function as SQL does.
func (f AggFunc) String() string { return aggKind(f).String() }

// OrderBy appends one ORDER BY term: an output column (by name, or by
// 1-based output ordinal as digits — SQL's "ORDER BY 2") and its
// direction. Terms compose left to right; ties beyond the last term break
// deterministically on input order. ORDER BY with a small Limit runs the
// bounded-heap top-k operator instead of a full sort.
func (q *Query) OrderBy(column string, desc bool) *Query {
	q.orderBy = append(q.orderBy, qorder{col: column, desc: desc})
	return q
}

// Limit caps the number of output rows. It is pushed into execution, not
// applied after the fact: an unordered query stops its selection or join
// as soon as n rows exist (exec.JoinSpec.Limit's early exit), and an
// ordered query streams through a bounded n-element heap when n is small.
// Limit(0) returns zero rows; negative n removes the limit.
func (q *Query) Limit(n int) *Query {
	if n < 0 {
		n = -1
	}
	q.limit = n
	return q
}

// Parallel sets the degree of parallelism for this query's operators,
// overriding Options.Parallelism: n <= 0 means GOMAXPROCS, 1 pins the
// paper's exact serial algorithms, larger values split sequential scans,
// hash joins, sort-merge joins, and DISTINCT across that many workers.
// The planner still caps the degree so each worker gets at least
// plan.MinRowsPerWorker rows; small inputs run serial regardless.
func (q *Query) Parallel(n int) *Query {
	if n <= 0 {
		n = parallel.Degree(0)
	}
	q.par = n
	return q
}

// Priority sets the query's scheduler admission priority. When several
// queries have morsels pending on the shared pool, idle workers admit
// the highest-priority query first and round-robin among equals; the
// default is 0. It has no effect with Options.PoolWorkers == PoolDisabled.
func (q *Query) Priority(p int) *Query {
	q.prio = p
	return q
}

// WithContext scopes the query's execution to ctx: cancellation is
// observed at morsel boundaries, so a cancelled query stops submitting
// work and its unclaimed morsels are discarded — pool workers move on
// to other queries within one morsel. Run/Analyze then return ctx.Err().
func (q *Query) WithContext(ctx context.Context) *Query {
	q.ctx = ctx
	return q
}

// parallelism resolves the query's requested degree of parallelism:
// the per-query override, else the database default, else GOMAXPROCS.
// With the morsel scheduler disabled (Options.PoolWorkers ==
// PoolDisabled) the degree is additionally clamped by the number of
// concurrently active parallel queries, so the per-query goroutine
// fleets never oversubscribe the machine in aggregate.
func (q *Query) parallelism() int {
	n := q.par
	if n <= 0 {
		n = parallel.Degree(q.db.opts.Parallelism)
	}
	if q.db.sched == nil && !q.db.opts.DisableDegreeClamp {
		n = parallel.ClampDegree(n)
	}
	return n
}

// snapshotMinRows is the smallest table a query will snapshot-scan.
// Below it the copy overhead and the loss of live tuple handles (clone
// rows reject writes) outweigh lock-freedom; the bound is intentionally
// the same row count at which the planner first grants a second scan
// worker, but holds even at degree 1 so single-core boxes still scan
// lock-free beside writers.
const snapshotMinRows = 2 * plan.MinRowsPerWorker

// snapshotShapeOK reports whether this query's shape may read the
// from-table's published snapshot instead of locking: read-only (not
// inside a user transaction), single relation, and an access path that
// is a full sequential scan — index lookups and pushed-down limits keep
// the locked protocol, because only the full partition scan produces
// output identical (row for row) to the snapshot's clone arrays. The
// caller additionally requires a parallel worker grant, so small tables
// — whose results are routinely fed back into updates — stay on locked
// scans of live tuples.
func (q *Query) snapshotShapeOK() bool {
	if q.tx != nil || q.db.opts.DisableSnapshots || len(q.joins) > 0 || q.from == nil {
		return false
	}
	grouped := len(q.groupBy) > 0 || len(q.aggs) > 0
	barrier := q.distinct || grouped || len(q.orderBy) > 0
	if q.limit == 0 || (q.limit > 0 && !barrier) {
		return false // the limit pushes an early exit into the selection
	}
	if len(q.preds) > 0 {
		if _, path := q.chooseSelectionPath(); path != plan.PathSequentialScan {
			return false
		}
	}
	return true
}

// JoinMethod overrides Options.JoinMethod for this query: JoinAuto
// applies the cost-based chained-vs-radix crossover, JoinChained pins
// the paper-faithful algorithms, JoinRadix forces the cache-conscious
// radix paths whenever legal. It affects hash joins that build their
// own table (an existing hash index is always probed directly) and
// DISTINCT.
func (q *Query) JoinMethod(s JoinStrategy) *Query {
	q.strategy = &s
	return q
}

// joinStrategy resolves the effective strategy: per-query override,
// else the database default.
func (q *Query) joinStrategy() JoinStrategy {
	if q.strategy != nil {
		return *q.strategy
	}
	return q.db.opts.JoinMethod
}

// SortMethod overrides Options.SortMethod for this query: SortAuto
// applies the cost-based quicksort-vs-radix crossover, SortQuicksort
// pins the paper-faithful §3.1 comparator quicksort, SortRadix forces
// the normalized-key radix kernel. It affects the Sort Merge join's
// array builds (serial and MPSM) and, when set explicitly, switches
// DISTINCT from hashing to the §3.4 Sort Scan on the chosen substrate.
func (q *Query) SortMethod(s SortStrategy) *Query {
	q.sortStrat = &s
	return q
}

// sortStrategy resolves the effective sort strategy: per-query override,
// else the database default.
func (q *Query) sortStrategy() SortStrategy {
	if q.sortStrat != nil {
		return *q.sortStrat
	}
	return q.db.opts.SortMethod
}

// sortMethodFor resolves the sort substrate for a sort of rows elements
// with keyBytes-wide encoded keys: forced strategies map directly, and
// SortAuto asks the planner's crossover — which keeps every paper-scale
// sort on the faithful §3.1 quicksort.
func (q *Query) sortMethodFor(rows, keyBytes int) plan.SortMethod {
	switch q.sortStrategy() {
	case SortQuicksort:
		return plan.SortQuick
	case SortRadix:
		return plan.SortRadixKey
	default:
		return plan.ChooseSortMethod(rows, keyBytes, q.db.opts.Sort)
	}
}

// radixBits resolves the radix plan for an operator that would build a
// transient hash structure over buildRows rows. nil means "run the
// paper's original algorithm" — always the answer under JoinChained,
// and under JoinAuto whenever the build fits comfortably in cache
// (plan.ChooseRadixBits's crossover).
func (q *Query) radixBits(buildRows int) []uint {
	var bits []uint
	switch q.joinStrategy() {
	case JoinChained:
		return nil
	case JoinRadix:
		bits = plan.ForceRadixBits(buildRows, q.db.opts.Radix)
	default:
		bits = plan.ChooseRadixBits(buildRows, q.db.opts.Radix)
	}
	return q.clampBits(bits, buildRows)
}

// memBudget is this execution's fair share of the database budget: the
// per-query byte allowance the plan clamps size against. 0 = unbudgeted.
func (q *Query) memBudget() int64 {
	if q.res == nil {
		return 0
	}
	return q.res.FairShare()
}

// clampBits narrows a radix plan to the query's fair share of the memory
// budget (plan.ClampRadixBits) and queues the audit record when it did.
func (q *Query) clampBits(bits []uint, buildRows int) []uint {
	if q.res == nil || bits == nil {
		return bits
	}
	budget := q.memBudget()
	clamped, did := plan.ClampRadixBits(bits, q.db.opts.Radix, budget)
	if did {
		q.noteClamp("radix budget clamp",
			fmt.Sprintf("bits=%v (was %v)", clamped, bits), clamped, budget, buildRows)
	}
	return clamped
}

// noteClamp queues a budget-clamp decision audit; execute folds the
// queue into the trace's decision list at the end of the run. The record
// is informational (Threshold 0): a clamp is the budget working, not a
// misprediction.
func (q *Query) noteClamp(name, chosen string, bits []uint, budget int64, rows int) {
	var total uint
	for _, b := range bits {
		total += b
	}
	q.clamp = append(q.clamp, obs.Decision{
		Name:     name,
		Chosen:   chosen,
		Inputs:   fmt.Sprintf("budget=%s rows=%s", obs.FmtBytes(budget), obs.FmtCount(float64(rows))),
		Estimate: float64(int(1) << total),
		Unit:     "partitions",
	})
}

// Result is a query result: a temporary list of tuple pointers plus the
// descriptor naming its output columns. Values are extracted from the
// source tuples on demand — the result holds no copied data.
type Result struct {
	list *storage.TempList
	plan []string
}

// Len returns the number of rows.
func (r *Result) Len() int { return r.list.Len() }

// Columns returns the output column names.
func (r *Result) Columns() []string { return r.list.ColumnNames() }

// Row materializes row i's output values.
func (r *Result) Row(i int) []Value { return r.list.RowValues(i) }

// Tuples returns row i's underlying tuple pointers.
func (r *Result) Tuples(i int) []*Tuple { return r.list.Row(i) }

// Plan describes the executed plan — the choices the planner actually
// made while running this query, one line per decision. For estimates
// without execution use Query.Explain; for per-operator rows, wall time,
// and §3.1 counters use Query.Analyze.
func (r *Result) Plan() string { return strings.Join(r.plan, "\n") }

// truncate returns a result holding only the first n rows. Query.Limit
// supersedes it for queries (the limit is pushed into execution there);
// it remains for callers that cap an existing result after the fact.
func (r *Result) truncate(n int) *Result {
	return &Result{list: headList(r.list, n), plan: r.plan}
}

// Run plans and executes the query under shared relation locks, so
// queries are safe against concurrent transactions. Tables are locked in
// name order to keep concurrent multi-table queries deadlock-free among
// themselves.
func (q *Query) Run() (*Result, error) {
	res, _, err := q.execute(false)
	return res, err
}

// Analyze runs the query exactly as Run does and additionally returns its
// execution trace: one node per operator with the chosen access path,
// rows in/out, wall time, and the §3.1 operation counters (comparisons,
// data moves, hash calls, …) that operator accumulated. The SQL form is
// EXPLAIN ANALYZE SELECT ….
func (q *Query) Analyze() (*Result, *QueryTrace, error) {
	res, tr, err := q.execute(true)
	return res, tr, err
}

// execute is the shared Run/Analyze engine. With analyze set it builds
// the operator trace; whenever the database's metrics registry is enabled
// it also accumulates per-query metrics. With both disabled the overhead
// is a handful of nil checks and no allocations beyond Run's own.
func (q *Query) execute(analyze bool) (*Result, *QueryTrace, error) {
	if q.err != nil {
		return nil, nil, q.err
	}
	reg := q.db.obs
	slow := q.db.slow
	// A configured slow-query log needs the full trace — with the
	// plan-vs-actual decision audit — for any query that might cross the
	// threshold, so it forces trace building on every query. Plain Run on
	// a database without a slow log stays on the no-trace path.
	buildTrace := analyze || slow != nil
	collect := reg != nil || buildTrace

	// Live-query registration: the query is visible in ActiveQueries from
	// here until execute returns, with its phase and rows-processed gauges
	// updated as the operators run. pg is nil when the registry is off;
	// every downstream use is nil-safe, so the disabled path costs one
	// comparison per call site.
	var qtext string
	var aq *obs.ActiveQuery
	if q.db.active != nil || slow != nil {
		qtext = q.text()
	}
	if q.db.active != nil {
		aq = q.db.active.Register(qtext)
		defer q.db.active.Deregister(aq)
	}
	pg := aq.Progress()

	reader := q.tx
	if reader == nil {
		// Untracked: the ephemeral lock-holder's begin/abort pair is not a
		// user transaction and would distort txn metrics.
		ephemeral := &Txn{db: q.db, inner: q.db.txns.BeginUntracked()}
		defer ephemeral.Abort() // releases the shared locks
		reader = ephemeral
	}
	tables := make([]*Table, 0, len(q.rels))
	for _, r := range q.rels {
		dup := false
		for _, t := range tables {
			if t == r.t {
				dup = true
				break
			}
		}
		if !dup {
			tables = append(tables, r.t)
		}
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name() < tables[j].Name() })

	// Epoch snapshot scans: a read-only single-relation query whose
	// access path is a full parallel sequential scan reads the published
	// snapshot with no locks at all, so it can never wait on (or be
	// waited on by) a writer. SnapshotLatest serves the last publication
	// even while a writer is mid-commit (every commit republishes before
	// releasing its locks, so that image is the last committed state —
	// the reader simply serializes before the in-flight writer). When no
	// snapshot was ever published the query falls back to the locked
	// protocol — and publishes a fresh snapshot under the shared lock it
	// holds anyway, so the next eligible query goes lock-free.
	q.snap = nil
	snapOK := q.snapshotShapeOK()
	if snapOK {
		if s := q.from.rel.SnapshotLatest(); s != nil && s.Rows() >= snapshotMinRows {
			q.snap = s
		}
	}
	if q.snap == nil {
		for _, t := range tables {
			if err := reader.inner.LockRelationShared(t.rel); err != nil {
				return nil, nil, err
			}
		}
		if snapOK && q.from.Cardinality() >= snapshotMinRows {
			q.from.rel.PublishSnapshot()
		}
	}

	// Scheduler admission handle for this execution: parallel operators
	// submit their morsels through it onto the shared (or dedicated)
	// work-stealing pool. With the pool disabled the handle still carries
	// the context for morsel-boundary cancellation, and the query counts
	// toward the degree clamp while it runs.
	qctx := q.ctx
	if qctx == nil {
		qctx = context.Background()
	}
	q.sq = sched.NewQuery(q.db.sched, qctx, q.prio)
	if q.db.sched == nil {
		defer parallel.EnterQuery()()
	}
	if err := q.sq.Err(); err != nil {
		return nil, nil, err
	}

	// Memory-budget reservation: the fair-share unit every scratch-hungry
	// operator grants against, mirrored into the scheduler's grant gauge
	// so admission prefers memory-light queries at equal priority. nil
	// (no budget) keeps every downstream path on its pre-budget behavior.
	q.clamp = q.clamp[:0]
	q.res = q.db.mem.Reserve()
	if q.res != nil {
		q.res.Notify = q.sq.SetMemBytes
		defer func() {
			q.res.Close()
			q.res = nil
		}()
	}

	var start time.Time
	if collect {
		start = time.Now()
	}
	var planNotes []string
	var decisions []obs.Decision // plan-vs-actual audit records
	var total meter.Counters     // §3.1 rollup across operators
	scanned := int64(0)          // base-relation tuples fetched

	// Resolve the block size batch-at-a-time operators run with, so the
	// executed plan records it (pooled blocks are physically
	// plan.DefaultBatchSize; tiny inputs account for smaller blocks).
	// Snapshot mode holds no locks, so it sizes from the snapshot's own
	// row count rather than racing the live cardinality counter.
	card := 0
	if q.snap != nil {
		card = q.snap.Rows()
	} else {
		card = q.from.Cardinality()
	}
	batchSize := plan.ChooseBatchSize(q.db.opts.BatchSize, card)
	planNotes = append(planNotes, fmt.Sprintf("batch: %d-tuple pointer blocks", batchSize))

	// LIMIT pushdown. A limit is pushed to the earliest operator that can
	// honor it: the selection scan when nothing downstream needs the full
	// input, the join's early-exit emitter otherwise. DISTINCT, GROUP BY
	// and ORDER BY all consume every row, so under them the limit applies
	// only at the end — except LIMIT 0, whose output is empty no matter
	// what runs downstream, so it always cuts the selection to nothing.
	grouped := len(q.groupBy) > 0 || len(q.aggs) > 0
	ordered := len(q.orderBy) > 0
	barrier := q.distinct || grouped || ordered
	selLimit, joinLimit := -1, 0
	switch {
	case q.limit == 0:
		selLimit = 0
	case q.limit > 0 && !barrier && len(q.joins) == 0:
		selLimit = q.limit
		planNotes = append(planNotes, fmt.Sprintf("limit: %d pushed into selection", q.limit))
	case q.limit > 0 && !barrier:
		joinLimit = q.limit
		planNotes = append(planNotes, fmt.Sprintf("limit: %d pushed into join (early exit)", q.limit))
	}

	var trace *QueryTrace
	var root *obs.TraceNode
	if buildTrace {
		root = &obs.TraceNode{Op: "query", Detail: q.from.Name()}
		trace = &QueryTrace{Root: root}
	}

	// Phase 1: selection on the from-table.
	var selMeter meter.Counters
	var mp *meter.Counters
	if collect {
		mp = &selMeter
	}
	t0 := start
	aq.SetPhase(obs.PhaseSelect)
	sel := q.runSelection(mp, pg, selLimit)
	list := sel.list
	planNotes = append(planNotes, "access "+q.from.Name()+": "+sel.pathDesc)
	if collect {
		total.Add(selMeter)
		scanned += int64(sel.rowsIn)
		if sel.probeKind != "" {
			reg.IndexProbe(sel.probeKind, sel.probes)
		}
		// Audit the batch sizing: it assumed the whole table flows through
		// the pipeline, and a selective predicate makes that estimate wrong
		// by exactly the filter's factor.
		decisions = append(decisions, obs.Decision{
			Name:      "batch",
			Chosen:    fmt.Sprintf("%d-tuple blocks", batchSize),
			Inputs:    "table card=" + obs.FmtCount(float64(card)),
			Estimate:  float64(card),
			Actual:    float64(list.Len()),
			Unit:      "rows",
			Threshold: 2.0,
		})
	}
	if buildTrace {
		now := time.Now()
		root.Add(&obs.TraceNode{
			Op: "select", Detail: q.from.Name(), AccessPath: sel.pathDesc,
			RowsIn: sel.rowsIn, RowsOut: list.Len(), Wall: now.Sub(t0), Ops: selMeter,
			Workers: sel.workers,
		})
		t0 = now
	}

	shape := ""
	if collect {
		shape = sel.path.String()
		if len(q.preds) == 0 {
			shape = "full scan"
		}
	}

	// Phase boundary: a cancelled query stops here rather than planning
	// and running the next operator (inside operators, cancellation is
	// observed at morsel boundaries).
	if err := q.sq.Err(); err != nil {
		return nil, nil, err
	}

	// Phase 2 (multi-join): three or more relations route through the
	// cost-forecasted join-order planner and the pipelined executor.
	if len(q.joins) >= 2 {
		var joinMeter meter.Counters
		if collect {
			mp = &joinMeter
		}
		aq.SetPhase(obs.PhaseJoin)
		mj, err := q.runMultiJoin(list, mp, pg, joinLimit)
		if err != nil {
			return nil, nil, err
		}
		preJoin := list.Len()
		list = mj.list
		planNotes = append(planNotes, mj.planNotes...)
		if collect {
			total.Add(joinMeter)
			scanned += mj.scanned
			shape += "→" + fmt.Sprintf("pipeline(%d)", len(q.rels))
			// Audit the order choice (forecast final cardinality vs what the
			// pipeline actually emitted) and each stage's forecast.
			decisions = append(decisions, obs.Decision{
				Name:      "join order",
				Chosen:    fmt.Sprintf("%s (%s)", mj.orderText, mj.algorithm),
				Inputs:    fmt.Sprintf("rels=%d edges=%d", len(q.rels), len(q.joins)),
				Estimate:  mj.estRows[len(mj.estRows)-1],
				Actual:    float64(list.Len()),
				Unit:      "rows",
				Threshold: 4.0,
			})
			for k := range mj.stageRows {
				decisions = append(decisions, obs.Decision{
					Name:      "join stage",
					Chosen:    fmt.Sprintf("⋈ %s (%s)", q.rels[mj.order[k+1]].name, mj.methods[k]),
					Inputs:    "in rows=" + obs.FmtCount(mj.estRows[k]),
					Estimate:  mj.estRows[k+1],
					Actual:    float64(mj.stageRows[k]),
					Unit:      "rows",
					Threshold: 4.0,
				})
			}
			if mj.workers > 1 {
				decisions = append(decisions, obs.Decision{
					Name:      "workers",
					Chosen:    fmt.Sprintf("%d worker(s)", mj.workers),
					Inputs:    "driver rows=" + obs.FmtCount(float64(mj.driverRows)),
					Estimate:  float64(mj.driverRows) / float64(mj.workers),
					Actual:    float64(pg.MaxWorkerRows()),
					Unit:      "rows/worker",
					Threshold: 4.0,
				})
			}
		}
		if buildTrace {
			now := time.Now()
			node := &obs.TraceNode{
				Op: "join", Detail: mj.orderText,
				AccessPath: fmt.Sprintf("pipelined multi-join (%s order)", mj.algorithm),
				RowsIn:     preJoin, RowsOut: list.Len(), Wall: now.Sub(t0), Ops: joinMeter,
				Workers: mj.workers,
			}
			in := mj.driverRows
			for k := range mj.stageRows {
				node.Add(&obs.TraceNode{
					Op: "join", Detail: "⋈ " + q.rels[mj.order[k+1]].name,
					AccessPath: mj.methods[k] + fmt.Sprintf(" (forecast %s rows)", obs.FmtCount(mj.estRows[k+1])),
					RowsIn:     in, RowsOut: int(mj.stageRows[k]),
				})
				in = int(mj.stageRows[k])
			}
			root.Add(node)
			t0 = now
		}
	} else if len(q.joins) == 1 {
		// Phase 2 (single join): the paper's §4 preference ordering over
		// its two-way join repertoire.
		var joinMeter meter.Counters
		if collect {
			mp = &joinMeter
		}
		aq.SetPhase(obs.PhaseJoin)
		jr := q.runJoin(list, mp, pg, joinLimit)
		list = jr.list
		planNotes = append(planNotes,
			fmt.Sprintf("join %s ⋈ %s: %s", q.rels[0].name, q.rels[1].name, jr.method))
		if jr.method == plan.JoinSortMerge && jr.sortMethod == plan.SortRadixKey {
			planNotes = append(planNotes, "sort: "+jr.sortMethod.String()+" (normalized-key array builds)")
		}
		if collect {
			total.Add(joinMeter)
			scanned += int64(jr.innerScanned)
			shape += "→" + jr.method.String()
			if jr.probeKind != "" {
				reg.IndexProbe(jr.probeKind, jr.probes)
			}
			if jr.workers > 0 {
				// Audit the worker count: the chooser assumed the join's work
				// splits evenly; the live registry's max-rows-per-worker gauge
				// is what one worker actually absorbed (0 when the registry is
				// off — the decision degrades to informational).
				decisions = append(decisions, obs.Decision{
					Name:      "workers",
					Chosen:    fmt.Sprintf("%d worker(s)", jr.workers),
					Inputs:    "work rows=" + obs.FmtCount(float64(jr.workRows)),
					Estimate:  float64(jr.workRows) / float64(jr.workers),
					Actual:    float64(pg.MaxWorkerRows()),
					Unit:      "rows/worker",
					Threshold: 4.0,
				})
			}
			if jr.radix.Fanout > 0 {
				// Audit the radix plan twice: the bits were sized for the
				// catalog's build cardinality (vs the rows actually
				// partitioned), and the fan-out assumed uniform partitions
				// (vs the largest one observed).
				decisions = append(decisions,
					obs.Decision{
						Name:      "radix bits",
						Chosen:    fmt.Sprintf("fanout=%d passes=%d", jr.radix.Fanout, jr.radix.Passes),
						Inputs:    "build card=" + obs.FmtCount(float64(jr.buildEst)),
						Estimate:  float64(jr.buildEst),
						Actual:    float64(jr.radix.Rows),
						Unit:      "build rows",
						Threshold: 2.0,
					},
					obs.Decision{
						Name:      "radix balance",
						Chosen:    fmt.Sprintf("%d partitions", jr.radix.Fanout),
						Inputs:    "rows=" + obs.FmtCount(float64(jr.radix.Rows)),
						Estimate:  float64(jr.radix.Rows) / float64(jr.radix.Fanout),
						Actual:    float64(jr.radix.MaxPart),
						Unit:      "rows/partition",
						Threshold: 4.0,
					})
				reg.ObserveRadixSkew(jr.radix.Skew())
			}
			if jr.method == plan.JoinSortMerge {
				// Informational (Threshold 0): the sort-method crossover has
				// no observable counterpart, but the audit still records what
				// it picked and from which input size.
				decisions = append(decisions, obs.Decision{
					Name:     "sort method",
					Chosen:   jr.sortMethod.String(),
					Inputs:   "rows=" + obs.FmtCount(float64(jr.sortRows)),
					Estimate: float64(jr.sortRows),
					Unit:     "rows",
				})
			}
		}
		if buildTrace {
			now := time.Now()
			node := &obs.TraceNode{
				Op: "join", Detail: fmt.Sprintf("%s ⋈ %s", q.rels[0].name, q.rels[1].name),
				AccessPath: jr.method.String(),
				RowsIn:     jr.rowsIn, RowsOut: list.Len(), Wall: now.Sub(t0), Ops: joinMeter,
				Workers: jr.workers,
			}
			if jr.radix.Fanout > 0 {
				node.RadixPasses = jr.radix.Passes
				node.Partitions = jr.radix.Fanout
				node.PartitionSkew = jr.radix.Skew()
			}
			if q.res != nil && jr.radix.Fanout > 0 {
				node.GrantBytes = jr.grantBytes
				node.Reversed = jr.radix.Reversed
				node.Resplits = jr.radix.Repartitions
			}
			root.Add(node)
			t0 = now
		}
	}

	if err := q.sq.Err(); err != nil {
		return nil, nil, err
	}

	if grouped {
		// Phase 3 (grouped): aggregation replaces projection — the output
		// columns are the group keys followed by the aggregates.
		var aggMeter meter.Counters
		if collect {
			mp = &aggMeter
		} else {
			mp = nil
		}
		aq.SetPhase(obs.PhaseGroup)
		gr, err := q.runGroup(list, mp, pg)
		if err != nil {
			return nil, nil, err
		}
		list = gr.list
		planNotes = append(planNotes, "group: "+gr.path)
		if collect {
			total.Add(aggMeter)
			// Audit the agg-method crossover: the chooser sized for the
			// worst case (every input row its own group) because group
			// cardinality is unknown before execution; the record shows how
			// far off that was. Informational (Threshold 0) — the worst-case
			// sizing is intentional, not a misprediction.
			decisions = append(decisions, obs.Decision{
				Name:     "agg method",
				Chosen:   gr.method.String(),
				Inputs:   "rows=" + obs.FmtCount(float64(gr.rowsIn)),
				Estimate: float64(gr.rowsIn),
				Actual:   float64(list.Len()),
				Unit:     "groups",
			})
			if gr.workers > 1 {
				decisions = append(decisions, obs.Decision{
					Name:      "workers",
					Chosen:    fmt.Sprintf("%d worker(s)", gr.workers),
					Inputs:    "work rows=" + obs.FmtCount(float64(gr.rowsIn)),
					Estimate:  float64(gr.rowsIn) / float64(gr.workers),
					Actual:    float64(pg.MaxWorkerRows()),
					Unit:      "rows/worker",
					Threshold: 4.0,
				})
			}
			if gr.radix.Fanout > 0 {
				decisions = append(decisions, obs.Decision{
					Name:      "radix balance",
					Chosen:    fmt.Sprintf("%d partitions", gr.radix.Fanout),
					Inputs:    "rows=" + obs.FmtCount(float64(gr.radix.Rows)),
					Estimate:  float64(gr.radix.Rows) / float64(gr.radix.Fanout),
					Actual:    float64(gr.radix.MaxPart),
					Unit:      "rows/partition",
					Threshold: 4.0,
				})
				reg.ObserveRadixSkew(gr.radix.Skew())
			}
		}
		if buildTrace {
			now := time.Now()
			node := &obs.TraceNode{
				Op: "group", Detail: gr.detail, AccessPath: gr.path,
				RowsIn: gr.rowsIn, RowsOut: list.Len(), Wall: now.Sub(t0), Ops: aggMeter,
				Workers: gr.workers,
			}
			if gr.radix.Fanout > 0 {
				node.RadixPasses = gr.radix.Passes
				node.Partitions = gr.radix.Fanout
				node.PartitionSkew = gr.radix.Skew()
			}
			node.GrantBytes = gr.grant
			root.Add(node)
			t0 = now
		}
	} else {
		// Phase 3: projection via the result descriptor; duplicate
		// elimination only if requested (§2.3: projection is implicit).
		preProject := list.Len()
		aq.SetPhase(obs.PhaseProject)
		var err error
		list, err = q.project(list)
		if err != nil {
			return nil, nil, err
		}
		if buildTrace {
			now := time.Now()
			root.Add(&obs.TraceNode{
				Op: "project", Detail: fmt.Sprintf("%d column(s)", len(list.Descriptor().Cols)),
				AccessPath: "descriptor rewrite",
				RowsIn:     preProject, RowsOut: list.Len(), Wall: now.Sub(t0),
			})
			t0 = now
		}
	}
	if q.distinct {
		var dupMeter meter.Counters
		if collect {
			mp = &dupMeter
		} else {
			mp = nil
		}
		aq.SetPhase(obs.PhaseDistinct)
		preDistinct := list.Len()
		distinctWorkers := plan.ChooseWorkers(q.parallelism(), list.Len())
		distinctPath := "hash duplicate elimination"
		var dstats radix.Stats
		if ss := q.sortStrategy(); ss != SortAuto {
			// An explicit sort strategy switches DISTINCT to the §3.4
			// Sort Scan on the chosen substrate — the knob that lets the
			// sort engine be compared end to end. SortAuto keeps the
			// paper's conclusion: hashing dominates for duplicate
			// elimination.
			sm := plan.SortQuick
			if ss == SortRadix {
				sm = plan.SortRadixKey
			}
			distinctWorkers = 1
			list = exec.ProjectSort(list, mp, sm)
			distinctPath = fmt.Sprintf("sort-scan duplicate elimination (%s)", sm)
			planNotes = append(planNotes, "distinct: "+distinctPath)
		} else if dbits := q.radixBits(list.Len()); dbits != nil {
			list, dstats = parallel.RadixProjectHash(q.sq, list, mp, pg, distinctWorkers, dbits)
			distinctPath = "radix-partitioned hash duplicate elimination"
			planNotes = append(planNotes, "distinct: "+distinctPath)
		} else if distinctWorkers > 1 {
			list = parallel.ProjectHash(q.sq, list, mp, pg, distinctWorkers)
			planNotes = append(planNotes,
				fmt.Sprintf("distinct: partitioned hash duplicate elimination (%d workers)", distinctWorkers))
		} else {
			list = exec.ProjectHash(list, mp)
			planNotes = append(planNotes, "distinct: hash duplicate elimination")
		}
		if collect {
			total.Add(dupMeter)
			if dstats.Fanout > 0 {
				decisions = append(decisions, obs.Decision{
					Name:      "radix balance",
					Chosen:    fmt.Sprintf("%d partitions", dstats.Fanout),
					Inputs:    "rows=" + obs.FmtCount(float64(dstats.Rows)),
					Estimate:  float64(dstats.Rows) / float64(dstats.Fanout),
					Actual:    float64(dstats.MaxPart),
					Unit:      "rows/partition",
					Threshold: 4.0,
				})
				reg.ObserveRadixSkew(dstats.Skew())
			}
		}
		if buildTrace {
			now := time.Now()
			node := &obs.TraceNode{
				Op: "distinct", AccessPath: distinctPath,
				RowsIn: preDistinct, RowsOut: list.Len(), Wall: now.Sub(t0), Ops: dupMeter,
				Workers: distinctWorkers,
			}
			if dstats.Fanout > 0 {
				node.RadixPasses = dstats.Passes
				node.Partitions = dstats.Fanout
				node.PartitionSkew = dstats.Skew()
			}
			root.Add(node)
			t0 = now
		}
	}

	if err := q.sq.Err(); err != nil {
		return nil, nil, err
	}

	// Phase 4: ORDER BY (+ LIMIT k as bounded-heap top-k when the planner
	// judges k small enough).
	if ordered {
		var ordMeter meter.Counters
		if collect {
			mp = &ordMeter
		} else {
			mp = nil
		}
		aq.SetPhase(obs.PhaseOrder)
		preOrder := list.Len()
		or, err := q.runOrder(list, mp, pg)
		if err != nil {
			return nil, nil, err
		}
		list = or.list
		planNotes = append(planNotes, "order: "+or.path)
		if collect {
			total.Add(ordMeter)
			// Informational (Threshold 0): records the heap-vs-sort
			// crossover's pick and the input size and k it rested on.
			decisions = append(decisions, obs.Decision{
				Name:     "top-k method",
				Chosen:   or.method.String(),
				Inputs:   fmt.Sprintf("rows=%s k=%d", obs.FmtCount(float64(preOrder)), or.k),
				Estimate: float64(preOrder),
				Unit:     "rows",
			})
		}
		if buildTrace {
			now := time.Now()
			root.Add(&obs.TraceNode{
				Op: "order", Detail: or.detail, AccessPath: or.path,
				RowsIn: preOrder, RowsOut: list.Len(), Wall: now.Sub(t0), Ops: ordMeter,
				Workers: or.workers,
			})
			t0 = now
		}
	}

	// Residual LIMIT: the paths that could not push the limit down
	// (DISTINCT, grouped output, and LIMIT 0 under any barrier) cap here.
	// Ordered queries already cut to the limit inside the order phase.
	if q.limit >= 0 && list.Len() > q.limit {
		list = headList(list, q.limit)
	}

	if collect {
		if grouped {
			shape += "+group"
		}
		if q.distinct {
			shape += "+distinct"
		}
		if ordered {
			shape += "+order"
		}
		wall := time.Since(start)
		decisions = append(decisions, q.clamp...)
		for _, d := range decisions {
			reg.RecordDecision(d) // nil-safe: counts mispredictions
		}
		if reg != nil {
			reg.RecordQuery(shape, scanned, int64(list.Len()), wall, total)
		}
		if buildTrace {
			root.RowsIn = sel.rowsIn
			root.RowsOut = list.Len()
			trace.Total = wall
			trace.Decisions = decisions
			trace.SchedSteals = q.sq.Steals()
			trace.SchedWait = q.sq.WaitTime()
		}
		if slow != nil && wall >= slow.Threshold() {
			slow.Record(obs.SlowQuery{
				ID: aq.ID(), Text: qtext, Start: start, Wall: wall,
				Rows: int64(list.Len()), Trace: trace,
				SchedSteals: q.sq.Steals(), SchedWait: q.sq.WaitTime(),
			})
		}
	}
	if !analyze {
		trace = nil // built only for the slow log; Run callers never see it
	}
	return &Result{list: list, plan: planNotes}, trace, nil
}

// text renders the query in a compact SQL-ish form for the live registry
// and the slow-query log. Built once per query, and only when one of
// those surfaces is on.
func (q *Query) text() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.distinct {
		b.WriteString("DISTINCT ")
	}
	switch {
	case len(q.groupBy) > 0 || len(q.aggs) > 0:
		// Grouped output: group keys then aggregates, Select list unused.
		items := make([]string, 0, len(q.groupBy)+len(q.aggs))
		items = append(items, q.groupBy...)
		for _, a := range q.aggs {
			items = append(items, a.name)
		}
		b.WriteString(strings.Join(items, ", "))
	case len(q.cols) == 0:
		b.WriteString("*")
	default:
		b.WriteString(strings.Join(q.cols, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(q.from.Name())
	if q.rels[0].name != q.from.Name() {
		b.WriteString(" " + q.rels[0].name)
	}
	for _, j := range q.joins {
		r := q.rels[j.rightRel]
		if j.closing {
			// Closing edge of a cycle: continuation of the last JOIN clause.
			fmt.Fprintf(&b, " AND %s.%s=%s.%s",
				q.rels[j.leftRel].name, colOrSelf(j.leftCol), r.name, colOrSelf(j.rightCol))
			continue
		}
		fmt.Fprintf(&b, " JOIN %s", r.t.Name())
		if r.name != r.t.Name() {
			b.WriteString(" " + r.name)
		}
		fmt.Fprintf(&b, " ON %s.%s=%s.%s",
			q.rels[j.leftRel].name, colOrSelf(j.leftCol), r.name, colOrSelf(j.rightCol))
	}
	for i, p := range q.preds {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "%s %s %s", p.column, p.op, p.val)
	}
	if len(q.groupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(q.groupBy, ", "))
	}
	if len(q.orderBy) > 0 {
		b.WriteString(" ORDER BY ")
		b.WriteString(q.orderByText())
	}
	if q.limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.limit)
	}
	return b.String()
}

// colOrSelf renders a join column for display ("SELF" for identity).
func colOrSelf(col string) string {
	if col == Self {
		return "SELF"
	}
	return col
}

// orderByText renders the ORDER BY list ("sal DESC, name").
func (q *Query) orderByText() string {
	var b strings.Builder
	for i, o := range q.orderBy {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(o.col)
		if o.desc {
			b.WriteString(" DESC")
		}
	}
	return b.String()
}

// Explain plans the query and describes the expected choices without
// executing it: no locks are taken, no tuples are fetched, and nothing is
// built. Selection paths depend only on which indices exist, so they are
// exact; the join method additionally depends on the live outer
// cardinality, which Explain estimates from the catalog (the from-table's
// cardinality is an upper bound once predicates filter it), and says so.
// For the executed plan use Result.Plan or Query.Analyze.
func (q *Query) Explain() (string, error) {
	if q.err != nil {
		return "", q.err
	}
	lines := []string{"planned (catalog estimates; nothing executed):"}
	t := q.from
	outerEst := t.Cardinality()
	outerExact := len(q.preds) == 0
	if outerExact {
		lines = append(lines, fmt.Sprintf("access %s: full scan via %s index", t.Name(), t.primary.kind))
	} else {
		best, bestPath := q.chooseSelectionPath()
		p := q.preds[best]
		note := fmt.Sprintf("access %s: %s on %q", t.Name(), bestPath, p.column)
		if len(q.preds) > 1 {
			note += fmt.Sprintf(" + %d residual filter(s)", len(q.preds)-1)
		}
		lines = append(lines, note)
	}
	if len(q.joins) >= 2 {
		// Multi-join: run the order enumerator on catalog estimates (the
		// from-table cardinality is an upper bound once predicates filter
		// it) and report the forecast order and per-step cardinalities.
		g := q.joinGraph(outerEst, false)
		res, err := q.chooseOrder(g)
		if err != nil {
			return "", err
		}
		note := fmt.Sprintf("join order: %s (%s)", q.orderText(res.Order), res.Algorithm)
		if !outerExact {
			note += fmt.Sprintf(" (driver estimated ≤ %d rows)", outerEst)
		}
		lines = append(lines, note)
		for k := 1; k < len(res.Order); k++ {
			lines = append(lines, fmt.Sprintf("join ⋈ %s: pipelined hash (forecast %s rows)",
				q.rels[res.Order[k]].name, obs.FmtCount(res.EstRows[k])))
		}
	} else if len(q.joins) == 1 {
		jp := q.joinPlanning(outerExact)
		choice := jp.choose(outerEst, q.rels[1].t.Cardinality())
		note := fmt.Sprintf("join %s ⋈ %s: %s", q.rels[0].name, q.rels[1].name, choice)
		if !outerExact {
			note += fmt.Sprintf(" (outer estimated ≤ %d rows; runtime may switch methods on the live size)", outerEst)
		}
		lines = append(lines, note)
	}
	if len(q.groupBy) > 0 || len(q.aggs) > 0 {
		method, _ := plan.ChooseAggMethod(outerEst, q.db.opts.Agg)
		by := "global"
		if len(q.groupBy) > 0 {
			by = "by " + strings.Join(q.groupBy, ", ")
		}
		lines = append(lines, fmt.Sprintf("group %s: %s (input estimated ≤ %d rows)", by, method, outerEst))
	}
	if q.distinct {
		lines = append(lines, "distinct: hash duplicate elimination")
	}
	if len(q.orderBy) > 0 {
		k := 0
		if q.limit > 0 {
			k = q.limit
		}
		lines = append(lines, fmt.Sprintf("order by %s: %s", q.orderByText(),
			plan.ChooseTopK(outerEst, k, q.db.opts.TopK)))
	}
	if q.limit >= 0 {
		lines = append(lines, fmt.Sprintf("limit: %d", q.limit))
	}
	return strings.Join(lines, "\n"), nil
}

// chooseSelectionPath picks the indexable predicate with the best access
// path by the §4 preference order; pure planning, no execution.
func (q *Query) chooseSelectionPath() (int, plan.AccessPath) {
	t := q.from
	best, bestPath := -1, plan.PathSequentialScan
	for i, p := range q.preds {
		path := plan.ChooseSelection(plan.SelectionInput{
			Op:      p.op,
			HasHash: t.indexOn(p.field, false) != nil,
			HasTree: t.indexOn(p.field, true) != nil,
		})
		if best == -1 || path < bestPath {
			best, bestPath = i, path
		}
	}
	return best, bestPath
}

// selExec is the outcome of the selection phase plus the numbers the
// observability layer reports.
type selExec struct {
	list      *storage.TempList
	pathDesc  string          // human description: "hash lookup on \"dept\" + 1 residual filter(s)"
	path      plan.AccessPath // the §4 choice
	rowsIn    int             // base-relation tuples fetched (pre-residual)
	workers   int             // parallel scan workers (0 or 1 = serial)
	probeKind string          // index structure probed ("" for scans)
	probes    int64
}

// runSelection evaluates the from-table predicates, producing a
// single-source temp list. The meter, when non-nil, accumulates the §3.1
// operation counts of the index probe and the residual filter; pg, when
// non-nil, is the live query's Progress for rows-processed gauges.
// limit >= 0 is a pushed-down LIMIT: the selection stops as soon as that
// many rows qualify (an early exit is inherently sequential, so the
// parallel scan paths are skipped).
func (q *Query) runSelection(m *meter.Counters, pg *obs.Progress, limit int) selExec {
	t := q.from
	spec := exec.SelectSpec{RelName: t.Name(), Schema: t.rel.Schema(), Meter: m, Prog: pg, Sched: q.sq}
	if snap := q.snap; snap != nil && len(q.preds) == 0 {
		// Lock-free snapshot scan: every tuple read comes from the
		// epoch-published clone arrays; the live relation is never
		// touched. The degree is resolved against the snapshot's own row
		// count (the live counter is being written concurrently), and
		// workers <= 1 still scans the snapshot, just serially.
		w := plan.ChooseWorkers(q.parallelism(), snap.Rows())
		var list *storage.TempList
		if w <= 1 {
			// Serial: whole clone-array blocks move into the presized
			// temp list, the same zero-predicate fast path the locked
			// serial scan uses.
			list = storage.MustTempListHint(
				storage.Descriptor{Sources: []string{t.Name()}}, snap.Rows())
			buf := storage.GetBatch()
			parallel.SnapshotSource{Snap: snap}.ScanBatches(buf, func(block storage.TupleBatch) bool {
				m.AddBatch(1)
				list.AppendBatch(block)
				return true
			})
			storage.PutBatch(buf)
		} else {
			list = parallel.SelectScan(parallel.SnapshotSource{Snap: snap},
				func(*storage.Tuple) bool { return true }, spec, w)
		}
		return selExec{
			list:     list,
			pathDesc: fmt.Sprintf("snapshot scan @ epoch %d (%d workers, lock-free)", snap.Epoch(), w),
			path:     plan.PathSequentialScan,
			rowsIn:   list.Len(),
			workers:  w,
		}
	}
	if len(q.preds) == 0 {
		if limit >= 0 {
			// LIMIT pushed into the bare scan: append row-at-a-time and cut
			// the batch stream the moment the limit is reached.
			hint := limit
			if c := t.Cardinality(); c < hint {
				hint = c
			}
			list := storage.MustTempListHint(
				storage.Descriptor{Sources: []string{t.Name()}}, hint)
			if limit > 0 {
				buf := storage.GetBatch()
				exec.ScanBatches(t.scanSource(), buf, func(block storage.TupleBatch) bool {
					m.AddBatch(1)
					for _, tp := range block {
						list.AppendOne(tp)
						if list.Len() >= limit {
							return false
						}
					}
					return true
				})
				storage.PutBatch(buf)
			}
			return selExec{
				list:     list,
				pathDesc: fmt.Sprintf("full scan via %s index (early exit at LIMIT %d)", t.primary.kind, limit),
				path:     plan.PathSequentialScan,
				rowsIn:   list.Len(),
			}
		}
		if w := plan.ChooseWorkers(q.parallelism(), t.Cardinality()); w > 1 {
			list := parallel.SelectScan(parallel.RelationSource{Rel: t.rel},
				func(*storage.Tuple) bool { return true }, spec, w)
			return selExec{
				list:     list,
				pathDesc: fmt.Sprintf("parallel partition scan (%d workers)", w),
				path:     plan.PathSequentialScan,
				rowsIn:   list.Len(),
				workers:  w,
			}
		}
		// Serial full scan: whole pointer blocks move from the primary
		// index into the (presized) temp list — no per-tuple Row headers.
		list := storage.MustTempListHint(
			storage.Descriptor{Sources: []string{t.Name()}}, t.Cardinality())
		buf := storage.GetBatch()
		exec.ScanBatches(t.scanSource(), buf, func(block storage.TupleBatch) bool {
			m.AddBatch(1)
			list.AppendBatch(block)
			return true
		})
		storage.PutBatch(buf)
		return selExec{
			list:     list,
			pathDesc: fmt.Sprintf("full scan via %s index", t.primary.kind),
			path:     plan.PathSequentialScan,
			rowsIn:   list.Len(),
		}
	}
	best, bestPath := q.chooseSelectionPath()
	p := q.preds[best]
	var list *storage.TempList
	probeKind, probes := "", int64(0)
	scanWorkers := 0
	switch bestPath {
	case plan.PathHashLookup:
		ix := t.indexOn(p.field, false)
		list = exec.SelectEqHash(ix.hashed, p.field, p.val, spec)
		probeKind, probes = ix.kind.String(), 1
	case plan.PathTreeLookup:
		ix := t.indexOn(p.field, true)
		list = exec.SelectEqTree(ix.ordered, p.field, p.val, spec)
		probeKind, probes = ix.kind.String(), 1
	case plan.PathTreeRange:
		var lo, hi *Value
		switch p.op {
		case Lt, Le:
			hi = &p.val
		case Gt, Ge:
			lo = &p.val
		}
		ix := t.indexOn(p.field, true)
		list = exec.SelectRange(ix.ordered, p.field, lo, hi, spec)
		probeKind, probes = ix.kind.String(), 1
		// Range access is inclusive; strict bounds drop the endpoint below.
	default:
		if snap := q.snap; snap != nil {
			// Lock-free snapshot scan; the predicates all run as residual
			// filters below, exactly as the locked scan-all path does.
			scanWorkers = plan.ChooseWorkers(q.parallelism(), snap.Rows())
			list = parallel.SelectScan(parallel.SnapshotSource{Snap: snap},
				func(*storage.Tuple) bool { return true }, spec, scanWorkers)
		} else if w := plan.ChooseWorkers(q.parallelism(), t.Cardinality()); w > 1 && limit < 0 {
			scanWorkers = w
			list = parallel.SelectScan(parallel.RelationSource{Rel: t.rel},
				func(*storage.Tuple) bool { return true }, spec, w)
		} else {
			list = exec.SelectScan(t.scanSource(), func(tp *storage.Tuple) bool { return true }, spec)
		}
	}
	rowsIn := list.Len()
	if bestPath == plan.PathSequentialScan {
		rowsIn = t.Cardinality()
		if q.snap != nil {
			rowsIn = q.snap.Rows()
		}
	}
	// Residual filter: every predicate re-checked (strict bounds, extra
	// conjuncts, Ne). A pushed-down limit stops the filter — and with it
	// the whole selection — once enough rows qualify.
	hint := list.Len()
	if limit >= 0 && limit < hint {
		hint = limit
	}
	out := storage.MustTempListHint(list.Descriptor(), hint)
	list.Scan(func(_ int, row storage.Row) bool {
		if limit >= 0 && out.Len() >= limit {
			return false
		}
		tp := row[0]
		for _, pr := range q.preds {
			m.AddCompare(1)
			if !predHolds(tp, pr) {
				return true
			}
		}
		out.AppendOne(tp) // selection lists are single-source (arity 1)
		return true
	})
	pathDesc := fmt.Sprintf("%s on %q", bestPath, p.column)
	if scanWorkers > 1 {
		pathDesc = fmt.Sprintf("parallel partition scan (%d workers) on %q", scanWorkers, p.column)
	}
	if q.snap != nil {
		pathDesc = fmt.Sprintf("snapshot scan @ epoch %d (%d workers, lock-free) on %q",
			q.snap.Epoch(), scanWorkers, p.column)
	}
	if len(q.preds) > 1 {
		pathDesc += fmt.Sprintf(" + %d residual filter(s)", len(q.preds)-1)
	}
	if limit >= 0 {
		pathDesc += fmt.Sprintf(" (early exit at LIMIT %d)", limit)
	}
	return selExec{
		list:      out,
		pathDesc:  pathDesc,
		path:      bestPath,
		rowsIn:    rowsIn,
		workers:   scanWorkers,
		probeKind: probeKind,
		probes:    probes,
	}
}

func predHolds(tp *storage.Tuple, p qpred) bool {
	v := tp.Field(p.field)
	if v.IsNull() || p.val.IsNull() {
		return false
	}
	c := storage.Compare(v, p.val)
	switch p.op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	default:
		return c >= 0
	}
}

// joinPlanning gathers the catalog facts the join choice depends on:
// which indices exist on the join columns and whether a precomputed
// pointer join applies. Pure planning, no execution.
type joinPlanning struct {
	hasPre       bool
	outerTT      *ttree.Tree[*storage.Tuple]
	innerTT      *ttree.Tree[*storage.Tuple]
	innerOrdered *Index
	innerHash    *Index
}

func (q *Query) joinPlanning(fullOuter bool) joinPlanning {
	j := q.joins[0]
	jt := q.rels[1].t
	var jp joinPlanning

	// Precomputed: left column is a Ref FK into the join table and the
	// right side is tuple identity.
	if j.leftField >= 0 && j.rightCol == Self {
		def := q.from.rel.Schema().Field(j.leftField)
		jp.hasPre = def.Type == storage.Ref && def.ForeignKey == jt.Name()
	}
	if fullOuter && j.leftField >= 0 {
		if ix := q.from.indexOn(j.leftField, true); ix != nil {
			jp.outerTT, _ = ix.ordered.(*ttree.Tree[*storage.Tuple])
		}
	}
	if j.rightField >= 0 {
		if ix := jt.indexOn(j.rightField, true); ix != nil {
			jp.innerOrdered = ix
			jp.innerTT, _ = ix.ordered.(*ttree.Tree[*storage.Tuple])
		}
		jp.innerHash = jt.indexOn(j.rightField, false)
	}
	return jp
}

func (jp joinPlanning) choose(outerCard, innerCard int) plan.JoinMethod {
	return plan.ChooseJoin(plan.JoinInput{
		Equijoin:       true,
		HasPrecomputed: jp.hasPre,
		OuterTree:      jp.outerTT != nil,
		InnerTree:      jp.innerTT != nil,
		InnerHash:      jp.innerHash != nil,
		OuterCard:      outerCard,
		InnerCard:      innerCard,
		DuplicatePct:   -1,
		SemijoinPct:    -1,
	})
}

// joinExec is the outcome of the join phase plus the numbers the
// observability layer reports.
type joinExec struct {
	list         *storage.TempList
	method       plan.JoinMethod
	rowsIn       int    // outer rows entering the join
	innerScanned int    // inner tuples examined (estimate per method)
	workers      int    // parallel join workers (0 or 1 = serial)
	probeKind    string // inner index structure probed ("" when none)
	probes       int64
	radix        radix.Stats     // radix partitioning stats (zero unless radix ran)
	sortMethod   plan.SortMethod // sort substrate (meaningful for sort-merge)
	workRows     int             // rows the worker chooser divided (outer + inner)
	buildEst     int             // build cardinality the radix bits were sized for
	sortRows     int             // input size the sort-method crossover saw
	grantBytes   int64           // peak bytes granted (0 unless a budget is set)
}

// runJoin joins the selection result (left) with the join table (right).
// The meter, when non-nil, accumulates the join's §3.1 operation counts;
// pg, when non-nil, is the live query's Progress. limit > 0 is a
// pushed-down LIMIT: the join's emitter stops after that many rows
// (exec.JoinSpec.Limit), and the inherently-sequential early exit keeps
// the join off the parallel and radix upgrades.
func (q *Query) runJoin(left *storage.TempList, m *meter.Counters, pg *obs.Progress, limit int) joinExec {
	j := q.joins[0]
	jt := q.rels[1].t
	outer := exec.ListColumn{List: left, Column: 0}
	fullOuter := len(q.preds) == 0 // outer is the entire from-table
	jp := q.joinPlanning(fullOuter)
	innerCard := jt.Cardinality()

	choice := jp.choose(outer.Len(), innerCard)
	if q.forceJoin != nil {
		choice = *q.forceJoin
	}

	spec := exec.JoinSpec{
		OuterName: q.rels[0].name, InnerName: q.rels[1].name,
		OuterField: j.leftField, InnerField: j.rightField,
		Meter: m, Prog: pg, Limit: limit, Sched: q.sq,
		Mem: q.res, NoDefense: q.db.opts.DisableSkewDefense,
	}
	out := joinExec{method: choice, rowsIn: outer.Len(), workRows: outer.Len() + innerCard}
	switch choice {
	case plan.JoinPrecomputed:
		// Precomputed joins emit at most one row per outer tuple, so the
		// output's exact upper bound is known before running.
		spec.Hint = outer.Len()
		out.list = exec.PrecomputedJoin(outer, j.leftField, spec)
		out.innerScanned = out.list.Len() // one pointer dereference per match
	case plan.JoinTreeMerge:
		out.list = exec.TreeMergeJoin(jp.outerTT, jp.innerTT, spec)
		out.innerScanned = innerCard // full ordered merge of the inner index
	case plan.JoinTree:
		out.list = exec.TreeJoin(outer, jp.innerOrdered.ordered, spec)
		out.innerScanned = out.list.Len()
		out.probeKind, out.probes = jp.innerOrdered.kind.String(), int64(outer.Len())
	case plan.JoinHash:
		if jp.innerHash != nil {
			out.list = exec.HashJoinExisting(outer, jp.innerHash.hashed, spec)
			out.innerScanned = out.list.Len()
			out.probeKind, out.probes = jp.innerHash.kind.String(), int64(outer.Len())
		} else if bits := q.radixBits(innerCard); bits != nil && limit <= 0 {
			// Cache-conscious upgrade: the build side is large enough that
			// partitioning both sides to L2-resident pieces beats one big
			// chained table. Runs even at one worker — the cache behavior,
			// not the parallelism, is the point.
			w := plan.ChooseWorkers(q.parallelism(), outer.Len()+innerCard)
			spec.Parallelism = w
			out.method = plan.JoinRadixHash
			out.workers = w
			out.buildEst = innerCard
			out.list, out.radix = parallel.RadixHashJoin(
				parallel.ListSource{List: left, Column: 0},
				parallel.RelationSource{Rel: jt.rel}, spec, bits, w)
			out.innerScanned = innerCard // partition pass scans the inner relation
			out.grantBytes = q.res.Peak()
		} else {
			if w := plan.ChooseWorkers(q.parallelism(), outer.Len()+innerCard); w > 1 && limit <= 0 {
				spec.Parallelism = w
				out.workers = w
				out.list = parallel.HashJoin(
					parallel.ListSource{List: left, Column: 0},
					parallel.RelationSource{Rel: jt.rel}, spec, w)
			} else {
				out.list = exec.HashJoin(outer, jt.scanSource(), spec)
			}
			out.innerScanned = innerCard // build pass scans the inner relation
		}
	case plan.JoinRadixHash:
		// Reached only via the forceJoin test hook or a forced strategy:
		// size a minimal radix plan regardless of the crossover.
		bits := q.clampBits(plan.ForceRadixBits(innerCard, q.db.opts.Radix), innerCard)
		w := plan.ChooseWorkers(q.parallelism(), outer.Len()+innerCard)
		spec.Parallelism = w
		out.workers = w
		out.buildEst = innerCard
		out.list, out.radix = parallel.RadixHashJoin(
			parallel.ListSource{List: left, Column: 0},
			parallel.RelationSource{Rel: jt.rel}, spec, bits, w)
		out.innerScanned = innerCard
		out.grantBytes = q.res.Peak()
	case plan.JoinSortMerge:
		// Resolve the sort substrate for the array builds; the larger
		// side drives the crossover (both sides get sorted, and the
		// bigger sort dominates). Join keys are single columns, so the
		// decisive-prefix width is the default.
		sm := q.sortMethodFor(max(outer.Len(), innerCard), plan.DefaultSortPrefixBytes)
		spec.SortMethod = sm
		out.sortMethod = sm
		out.sortRows = max(outer.Len(), innerCard)
		if w := plan.ChooseWorkers(q.parallelism(), outer.Len()+innerCard); w > 1 && limit <= 0 {
			spec.Parallelism = w
			out.workers = w
			out.list = parallel.SortMergeJoin(
				parallel.ListSource{List: left, Column: 0},
				parallel.RelationSource{Rel: jt.rel}, spec, w)
		} else {
			out.list = exec.SortMergeJoin(outer, jt.scanSource(), spec)
		}
		out.innerScanned = innerCard // build pass scans the inner relation
	default:
		out.list = exec.NestedLoopsJoin(outer, jt.scanSource(), spec)
		out.innerScanned = outer.Len() * innerCard
	}
	return out
}

// joinGraph builds the planning view of the query's join graph:
// per-relation cardinalities (the filtered from-table enters with
// rel0Rows) and per-edge distinct-value estimates from the sampled
// table statistics. locked means the caller already holds shared locks
// on every relation (execute does) and may refresh stats; Explain runs
// lock-free and only reads cached snapshots.
func (q *Query) joinGraph(rel0Rows int, locked bool) plan.JoinGraph {
	g := plan.JoinGraph{Rels: make([]plan.JoinGraphRel, len(q.rels))}
	rows := make([]int, len(q.rels))
	for i, r := range q.rels {
		rows[i] = r.t.Cardinality()
		if i == 0 {
			rows[i] = rel0Rows
		}
		g.Rels[i] = plan.JoinGraphRel{Name: r.name, Rows: rows[i]}
	}
	ndv := func(rel, field int) float64 {
		if field == tupleindex.SelfField {
			return float64(rows[rel]) // tuple identity: one distinct value per row
		}
		var vals []float64
		if locked {
			vals = q.rels[rel].t.rel.Stats().NDV
		} else if st, ok := q.rels[rel].t.rel.CachedStats(); ok {
			// Explain runs lock-free: use whatever snapshot exists rather
			// than refreshing (which would scan under a table lock).
			vals = st.NDV
		}
		if field >= len(vals) {
			return 0 // unknown: the model assumes unique keys
		}
		if d := vals[field]; d <= float64(rows[rel]) {
			return d
		}
		// A filtered from-table cannot carry more distinct values than rows.
		return float64(rows[rel])
	}
	for _, j := range q.joins {
		g.Edges = append(g.Edges, plan.JoinGraphEdge{
			A: j.leftRel, B: j.rightRel,
			NDVA: ndv(j.leftRel, j.leftField),
			NDVB: ndv(j.rightRel, j.rightField),
		})
	}
	return g
}

// chooseOrder resolves the execution order for a multi-join under the
// effective JoinOrderStrategy, pricing whatever order wins with the
// plan package's cost model so forecast cardinalities are always
// available for the audit.
func (q *Query) chooseOrder(g plan.JoinGraph) (plan.JoinOrderResult, error) {
	cfg := q.db.opts.Radix
	switch q.joinOrderStrategy() {
	case JoinOrderLeftDeep:
		order := make([]int, len(q.rels))
		for i := range order {
			order[i] = i
		}
		res := plan.ForecastOrder(g, cfg, order)
		res.Algorithm = "leftdeep"
		return res, nil
	case JoinOrderForced:
		order, err := q.forcedOrder()
		if err != nil {
			return plan.JoinOrderResult{}, err
		}
		res := plan.ForecastOrder(g, cfg, order)
		res.Algorithm = "forced"
		return res, nil
	default:
		return plan.ChooseJoinOrder(g, cfg), nil
	}
}

// forcedOrder validates ForceJoinOrder's names: every relation exactly
// once, and each one after the driver connected by a join edge to the
// ones before it (the pipeline cannot execute cross products).
func (q *Query) forcedOrder() ([]int, error) {
	if len(q.forced) == 0 {
		return nil, fmt.Errorf("mmdb: JoinOrderForced requires ForceJoinOrder")
	}
	if len(q.forced) != len(q.rels) {
		return nil, fmt.Errorf("mmdb: ForceJoinOrder must name all %d relations exactly once (got %d)",
			len(q.rels), len(q.forced))
	}
	order := make([]int, 0, len(q.forced))
	used := make([]bool, len(q.rels))
	for _, name := range q.forced {
		idx := -1
		for i, r := range q.rels {
			if r.name == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("mmdb: ForceJoinOrder: no relation %q in scope", name)
		}
		if used[idx] {
			return nil, fmt.Errorf("mmdb: ForceJoinOrder names %q twice", name)
		}
		used[idx] = true
		order = append(order, idx)
	}
	var mask uint32 = 1 << uint(order[0])
	for _, r := range order[1:] {
		connected := false
		for _, j := range q.joins {
			if (j.leftRel == r && mask&(1<<uint(j.rightRel)) != 0) ||
				(j.rightRel == r && mask&(1<<uint(j.leftRel)) != 0) {
				connected = true
				break
			}
		}
		if !connected {
			return nil, fmt.Errorf("mmdb: ForceJoinOrder: %s does not join any earlier relation (cross product)",
				q.rels[r].name)
		}
		mask |= 1 << uint(r)
	}
	return order, nil
}

// orderText renders a join order by scope names: "fact ⋈ d1 ⋈ d2".
func (q *Query) orderText(order []int) string {
	names := make([]string, len(order))
	for i, r := range order {
		names[i] = q.rels[r].name
	}
	return strings.Join(names, " ⋈ ")
}

// multiJoinExec is the outcome of the pipelined multi-join phase plus
// the numbers the observability layer reports.
type multiJoinExec struct {
	list       *storage.TempList
	order      []int     // chosen execution order (relation indices, driver first)
	orderText  string    // the order by scope names
	algorithm  string    // "dp", "greedy", "leftdeep", "forced", "as-written"
	estRows    []float64 // forecast cardinality after each prefix (estRows[0] = driver)
	stageRows  []int64   // actual rows each stage emitted
	methods    []string  // per-stage probe method
	workers    int       // pipeline workers (1 = serial)
	driverRows int       // rows streamed from the driver relation
	scanned    int64     // build-side tuples scanned into stage tables
	planNotes  []string
}

// runMultiJoin executes an n-way join (n >= 3): choose the execution
// order by cost forecast, build one hash table per non-driver relation
// (reusing an existing hash index when the run is serial — shared index
// structures meter their probes, which would race across workers), and
// stream the driver through the stage pipeline. Nothing between stages
// materializes; only the final rows land in the output list. left is
// the filtered from-table — it becomes the driver stream when the
// planner puts it first, a build side otherwise.
func (q *Query) runMultiJoin(left *storage.TempList, m *meter.Counters, pg *obs.Progress, limit int) (multiJoinExec, error) {
	g := q.joinGraph(left.Len(), true)
	res, err := q.chooseOrder(g)
	if err != nil {
		return multiJoinExec{}, err
	}
	order := res.Order
	n := len(q.rels)
	out := multiJoinExec{
		order: order, estRows: res.EstRows, algorithm: res.Algorithm,
		orderText: q.orderText(order),
	}
	out.planNotes = append(out.planNotes,
		fmt.Sprintf("join order: %s (%s)", out.orderText, res.Algorithm))

	// The driver streams; it is the one relation never built. Only the
	// from-table carries predicates, so every other driver is its raw
	// relation.
	driverRel := order[0]
	var driver parallel.Chunked
	if driverRel == 0 {
		driver = parallel.ListSource{List: left, Column: 0}
		out.driverRows = left.Len()
	} else {
		driver = parallel.RelationSource{Rel: q.rels[driverRel].t.rel}
		out.driverRows = q.rels[driverRel].t.Cardinality()
	}

	// Worker choice happens before the build phase: a serial run may
	// probe existing hash indices in place, a parallel one shares the
	// stage tables across workers and needs meterless builds.
	work := out.driverRows
	for _, r := range order[1:] {
		work += q.rels[r].t.Cardinality()
	}
	workers := plan.ChooseWorkers(q.parallelism(), work)
	if limit > 0 {
		workers = 1 // the early exit does not decompose
	}
	out.workers = workers

	names := make([]string, n)
	for i, r := range q.rels {
		names[i] = r.name
	}
	stages := make([]exec.StageSpec, 0, n-1)
	bound := make([]bool, n)
	bound[driverRel] = true
	for k := 1; k < n; k++ {
		r := order[k]
		st := exec.StageSpec{BuildSlot: r, ProbeSlot: -1}
		buildField := 0
		for _, j := range q.joins {
			var probeRel, probeField, bf int
			switch {
			case j.rightRel == r && bound[j.leftRel]:
				probeRel, probeField, bf = j.leftRel, j.leftField, j.rightField
			case j.leftRel == r && bound[j.rightRel]:
				probeRel, probeField, bf = j.rightRel, j.rightField, j.leftField
			default:
				continue
			}
			if st.ProbeSlot < 0 {
				st.ProbeSlot, st.ProbeField = probeRel, probeField
				buildField = bf
			} else {
				// A closing edge of a cyclic graph: both sides are bound
				// once this stage matches, so it checks as a residual.
				st.Residual = append(st.Residual, exec.ResidualEdge{
					ASlot: probeRel, AField: probeField, BSlot: r, BField: bf,
				})
			}
		}
		if st.ProbeSlot < 0 {
			return multiJoinExec{}, fmt.Errorf("mmdb: join order %s leaves %s unconnected (cross product)",
				out.orderText, q.rels[r].name)
		}
		rt := q.rels[r].t
		filtered := r == 0 && len(q.preds) > 0 // build side is the filtered from-table
		method := ""
		if buildField == tupleindex.SelfField && !filtered && q.refInto(st.ProbeSlot, st.ProbeField, rt) {
			// Precomputed pointer join (§2.1): the probe column is a Ref
			// into this relation, so the stage dereferences instead of
			// probing a table.
			st.Deref = true
			method = "pointer deref"
		} else {
			st.BuildField = buildField
			var src exec.Source = rt.scanSource()
			if filtered {
				src = exec.ListColumn{List: left, Column: 0}
			}
			if ix := rt.indexOn(buildField, false); ix != nil && !filtered && workers <= 1 {
				st.Table = ix.hashed
				method = "hash probe (" + ix.kind.String() + " index)"
			} else {
				st.Table = exec.BuildStageTable(src, buildField, 0, m)
				out.scanned += int64(src.Len())
				method = "hash probe (built table)"
			}
		}
		out.methods = append(out.methods, method)
		out.planNotes = append(out.planNotes,
			fmt.Sprintf("join ⋈ %s: %s (forecast %s rows)", q.rels[r].name, method, obs.FmtCount(res.EstRows[k])))
		stages = append(stages, st)
		bound[r] = true
	}

	spec := exec.PipelineSpec{
		Slots:      n,
		DriverSlot: driverRel,
		Stages:     stages,
		BatchRows:  plan.ChooseBatchSize(q.db.opts.BatchSize, out.driverRows),
		Limit:      limit,
		Meter:      m,
		Prog:       pg,
		Sched:      q.sq,
	}
	hint := int(res.EstRows[n-1])
	if hint < 0 || res.EstRows[n-1] > 1<<30 {
		hint = 0
	}
	list, stageRows, _ := parallel.RunPipeline(driver, spec, storage.Descriptor{Sources: names}, hint, workers)
	out.list = list
	out.stageRows = stageRows
	return out, nil
}

// refInto reports whether the probe column is a Ref foreign key into
// table rt — the precondition for the pointer-dereference stage.
func (q *Query) refInto(probeRel, probeField int, rt *Table) bool {
	if probeField < 0 {
		return false
	}
	def := q.rels[probeRel].t.rel.Schema().Field(probeField)
	return def.Type == storage.Ref && def.ForeignKey == rt.Name()
}

// project rewrites the temp list's descriptor to the selected columns.
func (q *Query) project(list *storage.TempList) (*storage.TempList, error) {
	desc := list.Descriptor()
	var cols []storage.ColRef
	if len(q.cols) == 0 {
		// All columns of all relations, qualified by scope name (the
		// alias where one was given) so self-joined uses stay distinct.
		for si, r := range q.rels {
			for fi, f := range r.t.Schema() {
				cols = append(cols, storage.ColRef{Source: si, Field: fi, Name: r.name + "." + f.Name})
			}
		}
	} else {
		for _, name := range q.cols {
			ref, err := q.resolveColumn(name)
			if err != nil {
				return nil, err
			}
			cols = append(cols, ref)
		}
	}
	out := storage.MustTempListHint(storage.Descriptor{Sources: desc.Sources, Cols: cols}, list.Len())
	list.Scan(func(_ int, row storage.Row) bool {
		out.Append(row)
		return true
	})
	return out, nil
}

// resolveColumn maps "col" or "name.col" (name = a scope name: the
// alias where one was given, else the table name) to a column reference
// over the query's relations. An unqualified column resolves against
// the relations in declaration order, first match wins.
func (q *Query) resolveColumn(name string) (storage.ColRef, error) {
	table, col := "", name
	if i := strings.IndexByte(name, '.'); i >= 0 {
		table, col = name[:i], name[i+1:]
	}
	for si, r := range q.rels {
		if table != "" && r.name != table {
			continue
		}
		if f := r.t.ColumnIndex(col); f >= 0 {
			return storage.ColRef{Source: si, Field: f, Name: name}, nil
		}
	}
	return storage.ColRef{}, fmt.Errorf("mmdb: cannot resolve column %q", name)
}

// groupExec is the outcome of the grouped-aggregation phase plus the
// numbers the observability layer reports.
type groupExec struct {
	list    *storage.TempList
	method  plan.AggMethod // the crossover's pick (decision audit)
	path    string         // what actually ran (trace access path)
	detail  string         // "BY dept (2 aggregate(s))"
	rowsIn  int
	workers int
	radix   radix.Stats // partitioning stats (zero unless radix ran)
	grant   int64       // bytes granted before the table build (0 = unbudgeted)
}

// runGroup executes GROUP BY + aggregates: project the group-key and
// aggregate-input columns into a working list, aggregate it on the shape
// plan.ChooseAggMethod picked (flat table below the crossover,
// radix-partitioned above; per-worker partial tables merged at the
// barrier when the worker chooser grants parallelism), and materialize
// one output row per group.
func (q *Query) runGroup(list *storage.TempList, m *meter.Counters, pg *obs.Progress) (groupExec, error) {
	// Working projection: group columns first, aggregate inputs after, so
	// the operator addresses both as ordinals of one descriptor.
	wcols := make([]storage.ColRef, 0, len(q.groupBy)+len(q.aggs))
	gcols := make([]int, len(q.groupBy))
	for i, name := range q.groupBy {
		ref, err := q.resolveColumn(name)
		if err != nil {
			return groupExec{}, err
		}
		ref.Name = name
		gcols[i] = i
		wcols = append(wcols, ref)
	}
	specs := make([]agg.Spec, len(q.aggs))
	for i, a := range q.aggs {
		col := -1
		if a.col != "" && a.col != "*" {
			ref, err := q.resolveColumn(a.col)
			if err != nil {
				return groupExec{}, err
			}
			col = len(wcols)
			wcols = append(wcols, ref)
		} else if a.fn != AggCount {
			return groupExec{}, fmt.Errorf("mmdb: %s requires a column", a.fn)
		}
		specs[i] = agg.Spec{Kind: aggKind(a.fn), Col: col, Name: a.name}
	}
	work := storage.MustTempListHint(
		storage.Descriptor{Sources: list.Descriptor().Sources, Cols: wcols}, list.Len())
	list.Scan(func(_ int, row storage.Row) bool {
		work.Append(row)
		return true
	})
	n := work.Len()

	method, bits, aggClamped := plan.BudgetedAggBits(n, q.db.opts.Agg, q.memBudget())
	if aggClamped {
		q.noteClamp("agg budget clamp", fmt.Sprintf("bits=%v", bits), bits, q.memBudget(), n)
	}
	var grant int64
	if q.res != nil {
		// Grant-before-build: reserve the worst-case table footprint
		// (every input row its own group) before allocating, waiting for
		// sibling queries to release when the budget is tight. The wait
		// honors the query's context, so cancellation propagates as an
		// error instead of a stuck build.
		grant = radix.TableBytes(n)
		qctx := q.ctx
		if qctx == nil {
			qctx = context.Background()
		}
		if err := q.res.Grant(qctx, grant); err != nil {
			return groupExec{}, err
		}
		defer q.res.Release(grant)
	}
	workers := plan.ChooseWorkers(q.parallelism(), n)
	g := agg.Get()
	res := parallel.HashAgg(q.sq, pg, g, work, gcols, specs, bits, workers, m)
	if len(gcols) == 0 && res.Groups() == 0 {
		// Global aggregation over an empty input still yields one row
		// (COUNT = 0, the rest NULL), per SQL. The rep row ordinal is never
		// dereferenced: there are no group-key columns to read through it.
		res = agg.Result{Reps: []int32{0}, Cells: make([]agg.Cell, len(specs))}
	}
	out, err := agg.Materialize(work, gcols, specs, res, "agg("+q.from.Name()+")")
	stats := res.Stats
	agg.Put(g)
	if err != nil {
		return groupExec{}, err
	}
	path := method.String()
	if workers > 1 {
		path = fmt.Sprintf("parallel partial-agg merge (%d workers)", workers)
	}
	detail := "global"
	if len(q.groupBy) > 0 {
		detail = "BY " + strings.Join(q.groupBy, ", ")
	}
	if len(q.aggs) > 0 {
		detail += fmt.Sprintf(" (%d aggregate(s))", len(q.aggs))
	}
	return groupExec{
		list: out, method: method, path: path, detail: detail,
		rowsIn: n, workers: workers, radix: stats, grant: grant,
	}, nil
}

// orderExec is the outcome of the ORDER BY phase plus the numbers the
// observability layer reports.
type orderExec struct {
	list    *storage.TempList
	method  plan.TopKMethod
	path    string // what ran: "bounded-heap top-k (k=10)" / "full sort (…)"
	detail  string // "BY sal DESC, name"
	k       int
	workers int
}

// runOrder executes ORDER BY (+ LIMIT): resolve the key terms against the
// output descriptor, pick bounded-heap top-k vs full sort
// (plan.ChooseTopK), and rebuild the list in output order, cut to the
// limit. The full sort runs on the substrate the sort-method crossover
// picks (§3.1 quicksort or the normalized-key radix kernel); both shapes
// produce the identical deterministic order (ordinal tie-break).
func (q *Query) runOrder(list *storage.TempList, m *meter.Counters, pg *obs.Progress) (orderExec, error) {
	keys, err := q.resolveOrderKeys(list)
	if err != nil {
		return orderExec{}, err
	}
	n := list.Len()
	k := 0
	if q.limit > 0 {
		k = q.limit
	}
	method := plan.ChooseTopK(n, k, q.db.opts.TopK)
	var rows []int32
	workers := 0
	var path string
	if method == plan.TopKHeap {
		workers = plan.ChooseWorkers(q.parallelism(), n)
		rows = parallel.TopK(q.sq, pg, list, keys, k, workers, m)
		path = fmt.Sprintf("bounded-heap top-k (k=%d)", k)
	} else {
		sm := q.sortMethodFor(n, len(keys)*plan.DefaultSortPrefixBytes)
		rows = exec.OrderRows(list, keys, sm, m)
		if q.limit >= 0 && len(rows) > q.limit {
			rows = rows[:q.limit]
		}
		path = "full sort (" + sm.String() + ")"
	}
	out := storage.MustTempListHint(list.Descriptor(), len(rows))
	for _, r := range rows {
		out.Append(list.Row(int(r)))
	}
	return orderExec{
		list: out, method: method, path: path,
		detail: "BY " + q.orderByText(), k: k, workers: workers,
	}, nil
}

// resolveOrderKeys maps the ORDER BY terms to output-column ordinals of
// the list being ordered.
func (q *Query) resolveOrderKeys(list *storage.TempList) ([]exec.OrderKey, error) {
	cols := list.Descriptor().Cols
	keys := make([]exec.OrderKey, len(q.orderBy))
	for i, o := range q.orderBy {
		c, err := resolveOrderColumn(cols, o.col)
		if err != nil {
			return nil, err
		}
		keys[i] = exec.OrderKey{Col: c, Desc: o.desc}
	}
	return keys, nil
}

// resolveOrderColumn resolves one ORDER BY term against the output
// descriptor: a string of digits is SQL's 1-based output ordinal
// ("ORDER BY 2"); a name matches an output column exactly, or — as the
// unqualified form of a qualified output name — the part after its dot,
// if unambiguous.
func resolveOrderColumn(cols []storage.ColRef, name string) (int, error) {
	if n, ok := parseOrdinal(name); ok {
		if n < 1 || n > len(cols) {
			return 0, fmt.Errorf("mmdb: ORDER BY ordinal %d out of range (1..%d)", n, len(cols))
		}
		return n - 1, nil
	}
	for i, c := range cols {
		if c.Name == name {
			return i, nil
		}
	}
	match := -1
	for i, c := range cols {
		if j := strings.IndexByte(c.Name, '.'); j >= 0 && c.Name[j+1:] == name {
			if match >= 0 {
				return 0, fmt.Errorf("mmdb: ORDER BY column %q is ambiguous", name)
			}
			match = i
		}
	}
	if match < 0 {
		return 0, fmt.Errorf("mmdb: ORDER BY column %q is not an output column", name)
	}
	return match, nil
}

// parseOrdinal parses an all-digits ORDER BY ordinal.
func parseOrdinal(s string) (int, bool) {
	if s == "" || len(s) > 6 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}

// headList copies the first n rows of list into a fresh list with the
// same descriptor.
func headList(list *storage.TempList, n int) *storage.TempList {
	if n > list.Len() {
		n = list.Len()
	}
	out := storage.MustTempListHint(list.Descriptor(), n)
	list.Scan(func(i int, row storage.Row) bool {
		if i >= n {
			return false
		}
		out.Append(row)
		return true
	})
	return out
}
