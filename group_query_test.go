package mmdb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// aggDB builds an emp table (id, dept string, sal int) with nDept
// departments and ~10% NULL salaries, returning the db and the raw rows
// for reference computations.
func aggDB(t testing.TB, n, nDept int, seed int64) (*Database, []struct {
	dept string
	sal  *int64
}) {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := db.CreateTable("emp", []Field{
		{Name: "id", Type: TypeInt},
		{Name: "dept", Type: TypeString},
		{Name: "sal", Type: TypeInt},
	}, "id", TTree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]struct {
		dept string
		sal  *int64
	}, n)
	tx := db.Begin()
	for i := range rows {
		rows[i].dept = fmt.Sprintf("d%03d", rng.Intn(nDept))
		sal := Null
		if rng.Intn(10) != 0 {
			v := int64(rng.Intn(90000) + 10000)
			rows[i].sal = &v
			sal = Int(v)
		}
		if err := tx.Insert(emp, Int(int64(i)), Str(rows[i].dept), sal); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, rows
}

// refAgg computes the reference per-dept aggregates from the raw rows.
type refRow struct {
	count, countSal, sum int64
	min, max             int64
	hasSal               bool
}

func refAgg(rows []struct {
	dept string
	sal  *int64
}) map[string]*refRow {
	ref := map[string]*refRow{}
	for _, r := range rows {
		a := ref[r.dept]
		if a == nil {
			a = &refRow{}
			ref[r.dept] = a
		}
		a.count++
		if r.sal != nil {
			v := *r.sal
			if !a.hasSal || v < a.min {
				a.min = v
			}
			if !a.hasSal || v > a.max {
				a.max = v
			}
			a.hasSal = true
			a.countSal++
			a.sum += v
		}
	}
	return ref
}

// TestGroupByAggEndToEnd: fluent GROUP BY + every aggregate against a
// reference computed from the raw inserts, including null skipping.
func TestGroupByAggEndToEnd(t *testing.T) {
	db, rows := aggDB(t, 5000, 37, 41)
	ref := refAgg(rows)
	res, err := db.Query("emp").
		GroupBy("dept").
		Agg(AggCount, "").Agg(AggCount, "sal").Agg(AggSum, "sal").
		Agg(AggMin, "sal").Agg(AggMax, "sal").Agg(AggAvg, "sal").
		Run()
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"dept", "COUNT(*)", "COUNT(sal)", "SUM(sal)", "MIN(sal)", "MAX(sal)", "AVG(sal)"}
	if fmt.Sprint(res.Columns()) != fmt.Sprint(wantCols) {
		t.Fatalf("columns %v, want %v", res.Columns(), wantCols)
	}
	if res.Len() != len(ref) {
		t.Fatalf("groups=%d, want %d", res.Len(), len(ref))
	}
	for i := 0; i < res.Len(); i++ {
		row := res.Row(i)
		a := ref[row[0].Str()]
		if a == nil {
			t.Fatalf("unexpected group %q", row[0].Str())
		}
		if row[1].Int() != a.count || row[2].Int() != a.countSal {
			t.Fatalf("%s counts: %v/%v, want %d/%d", row[0].Str(), row[1], row[2], a.count, a.countSal)
		}
		if a.countSal == 0 {
			for c := 3; c <= 6; c++ {
				if !row[c].IsNull() {
					t.Fatalf("%s col %d: %v, want NULL (all inputs null)", row[0].Str(), c, row[c])
				}
			}
			continue
		}
		if row[3].Int() != a.sum || row[4].Int() != a.min || row[5].Int() != a.max {
			t.Fatalf("%s sum/min/max: %v/%v/%v, want %d/%d/%d",
				row[0].Str(), row[3], row[4], row[5], a.sum, a.min, a.max)
		}
		wantAvg := float64(a.sum) / float64(a.countSal)
		if got := row[6].Float(); got < wantAvg-1e-9 || got > wantAvg+1e-9 {
			t.Fatalf("%s avg: %v, want %v", row[0].Str(), got, wantAvg)
		}
	}
}

// TestGlobalAggregation: Agg without GroupBy collapses the input to one
// row — including over an empty selection (COUNT 0, NULL sum).
func TestGlobalAggregation(t *testing.T) {
	db, rows := aggDB(t, 500, 7, 43)
	var wantSum, wantCount int64
	for _, r := range rows {
		if r.sal != nil {
			wantSum += *r.sal
			wantCount++
		}
	}
	res, err := db.Query("emp").Agg(AggCount, "*").Agg(AggSum, "sal").Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Row(0)[0].Int() != int64(len(rows)) || res.Row(0)[1].Int() != wantSum {
		t.Fatalf("global agg: %d rows, %v", res.Len(), res.Row(0))
	}
	_ = wantCount
	// Empty selection still produces the single global row.
	res, err = db.Query("emp").Where("sal", Gt, Int(1<<40)).Agg(AggCount, "*").Agg(AggMax, "sal").Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Row(0)[0].Int() != 0 || !res.Row(0)[1].IsNull() {
		t.Fatalf("global agg over empty: %d rows, %v", res.Len(), res.Row(0))
	}
	// ...except under LIMIT 0, which empties every path.
	res, err = db.Query("emp").Agg(AggCount, "*").Limit(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("LIMIT 0 over global agg: %d rows", res.Len())
	}
}

// TestOrderByVsReference: fluent ORDER BY (DESC and mixed directions,
// name/ordinal/qualified resolution) against a naive sort of the same
// result set.
func TestOrderByVsReference(t *testing.T) {
	db, _ := aggDB(t, 900, 23, 47)
	for _, tc := range []struct {
		name  string
		build func() *Query
		cmp   func(a, b []Value) int
	}{
		{"sal desc", func() *Query { return db.Query("emp").OrderBy("sal", true) },
			func(a, b []Value) int { return -compareValues(a[2], b[2]) }},
		{"dept asc, sal desc", func() *Query { return db.Query("emp").OrderBy("dept", false).OrderBy("sal", true) },
			func(a, b []Value) int {
				if c := compareValues(a[1], b[1]); c != 0 {
					return c
				}
				return -compareValues(a[2], b[2])
			}},
		{"ordinal 3 asc", func() *Query { return db.Query("emp").OrderBy("3", false) },
			func(a, b []Value) int { return compareValues(a[2], b[2]) }},
		{"qualified emp.sal asc", func() *Query { return db.Query("emp").OrderBy("emp.sal", false) },
			func(a, b []Value) int { return compareValues(a[2], b[2]) }},
	} {
		res, err := tc.build().Run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := 1; i < res.Len(); i++ {
			if tc.cmp(res.Row(i-1), res.Row(i)) > 0 {
				t.Fatalf("%s: rows %d,%d out of order: %v then %v",
					tc.name, i-1, i, res.Row(i-1), res.Row(i))
			}
		}
		if res.Len() != 900 {
			t.Fatalf("%s: %d rows, want 900", tc.name, res.Len())
		}
	}
}

// compareValues orders two result values of the same column.
func compareValues(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	switch a.Type() {
	case TypeString:
		return strings.Compare(a.Str(), b.Str())
	case TypeFloat:
		switch {
		case a.Float() < b.Float():
			return -1
		case a.Float() > b.Float():
			return 1
		}
		return 0
	default:
		switch {
		case a.Int() < b.Int():
			return -1
		case a.Int() > b.Int():
			return 1
		}
		return 0
	}
}

// TestOrderByLimitIsSortPrefix: ORDER BY + LIMIT k returns exactly the
// first k rows of the unlimited ordered result, across the heap/sort
// crossover.
func TestOrderByLimitIsSortPrefix(t *testing.T) {
	db, _ := aggDB(t, 2000, 113, 53)
	full, err := db.Query("emp").OrderBy("sal", true).OrderBy("id", false).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 10, 500, 1999, 2000, 5000} {
		res, err := db.Query("emp").OrderBy("sal", true).OrderBy("id", false).Limit(k).Run()
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if want > full.Len() {
			want = full.Len()
		}
		if res.Len() != want {
			t.Fatalf("k=%d: %d rows, want %d", k, res.Len(), want)
		}
		for i := 0; i < want; i++ {
			if res.Row(i)[0].Int() != full.Row(i)[0].Int() {
				t.Fatalf("k=%d row %d: id %d, want %d", k, i, res.Row(i)[0].Int(), full.Row(i)[0].Int())
			}
		}
	}
}

// TestOrderByErrors: the resolution failure modes are reported, not
// silently mis-sorted.
func TestOrderByErrors(t *testing.T) {
	db, _ := aggDB(t, 50, 5, 59)
	for _, tc := range []struct {
		col  string
		want string
	}{
		{"0", "out of range"},
		{"9", "out of range"},
		{"nope", "not an output column"},
	} {
		_, err := db.Query("emp").OrderBy(tc.col, false).Run()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("OrderBy(%q): err=%v, want %q", tc.col, err, tc.want)
		}
	}
}

// TestGroupOrderTraceAndDecisions is the acceptance query: GROUP BY +
// ORDER BY ordinal DESC + LIMIT through SQL, with the operator trace
// carrying the group/order nodes, their §3.1-style counters, and the
// decision-audit lines.
func TestGroupOrderTraceAndDecisions(t *testing.T) {
	db, rows := aggDB(t, 4000, 257, 61)
	r, err := db.Exec(`EXPLAIN ANALYZE SELECT dept, COUNT(*), AVG(sal) FROM emp GROUP BY dept ORDER BY 2 DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"group", "agg: GroupsOut=", "AggTableProbes=",
		"order", "topk: HeapPushes=",
		"decision agg method:", "decision top-k method: bounded-heap top-k",
	} {
		if !strings.Contains(r.Plan, want) {
			t.Fatalf("trace missing %q:\n%s", want, r.Plan)
		}
	}
	// And the executed result: 10 groups, counts non-increasing, values
	// matching the reference.
	r, err = db.Exec(`SELECT dept, COUNT(*), AVG(sal) FROM emp GROUP BY dept ORDER BY 2 DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Len() != 10 {
		t.Fatalf("rows=%d, want 10", r.Result.Len())
	}
	ref := refAgg(rows)
	counts := make([]int64, 0, len(ref))
	for _, a := range ref {
		counts = append(counts, a.count)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	for i := 0; i < 10; i++ {
		row := r.Result.Row(i)
		if row[1].Int() != counts[i] {
			t.Fatalf("rank %d: COUNT(*)=%d, want %d", i, row[1].Int(), counts[i])
		}
		a := ref[row[0].Str()]
		if a == nil || a.count != row[1].Int() {
			t.Fatalf("rank %d: group %q count %d inconsistent with reference", i, row[0].Str(), row[1].Int())
		}
	}
}

// TestSQLGroupShapeErrors: malformed grouped select lists are rejected
// with a pointed message.
func TestSQLGroupShapeErrors(t *testing.T) {
	db, _ := aggDB(t, 50, 5, 67)
	for _, tc := range []struct{ sql, want string }{
		{`SELECT sal, COUNT(*) FROM emp GROUP BY dept`, "must match GROUP BY"},
		{`SELECT COUNT(*), dept FROM emp GROUP BY dept`, "after an aggregate"},
		{`SELECT dept, COUNT(*) FROM emp`, "non-aggregate column"},
		{`SELECT sal FROM emp GROUP BY dept`, "must match GROUP BY"},
		{`SELECT SUM(nope) FROM emp`, "cannot resolve column"},
	} {
		_, err := db.Exec(tc.sql)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err=%v, want %q", tc.sql, err, tc.want)
		}
	}
}

// TestGroupByWithoutAggSQL degenerates to one row per distinct group.
func TestGroupByWithoutAggSQL(t *testing.T) {
	db, rows := aggDB(t, 300, 11, 71)
	ref := refAgg(rows)
	r, err := db.Exec(`SELECT dept FROM emp GROUP BY dept ORDER BY dept`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Len() != len(ref) {
		t.Fatalf("%d groups, want %d", r.Result.Len(), len(ref))
	}
	for i := 1; i < r.Result.Len(); i++ {
		if r.Result.Row(i - 1)[0].Str() >= r.Result.Row(i)[0].Str() {
			t.Fatalf("group output not ordered at %d", i)
		}
	}
}
