package mmdb

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
)

// ExecResult is the outcome of Exec: a query Result for SELECT, a
// rows-affected count for DML, and the plan description where one exists.
type ExecResult struct {
	Result       *Result // SELECT only (nil for EXPLAIN and non-queries)
	RowsAffected int
	Plan         string
}

// Exec parses and executes one SQL statement. The dialect covers the
// engine's capabilities: CREATE TABLE (with REF(table) tuple-pointer
// columns and a mandatory PRIMARY KEY index), CREATE [UNIQUE] INDEX,
// INSERT (with REF(table, column, value) pointer literals), SELECT with
// one JOIN / WHERE conjunctions / DISTINCT / aggregates (COUNT, SUM,
// MIN, MAX, AVG) / GROUP BY / ORDER BY (columns or 1-based output
// ordinals, ASC|DESC) / LIMIT (pushed into the scan or join for early
// exit), EXPLAIN SELECT (planned choices, nothing executed), EXPLAIN
// ANALYZE SELECT (executed operator trace with rows, wall time, and
// §3.1 counters), UPDATE, and DELETE (both read and write inside one
// transaction). Statements run through the same planner as the fluent
// API.
func (db *Database) Exec(sql string) (*ExecResult, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *sqlparser.CreateTable:
		return db.execCreateTable(s)
	case *sqlparser.CreateIndex:
		return db.execCreateIndex(s)
	case *sqlparser.Insert:
		return db.execInsert(s)
	case *sqlparser.Select:
		return db.execSelect(s)
	case *sqlparser.Update:
		return db.execUpdate(s)
	case *sqlparser.Delete:
		return db.execDelete(s)
	default:
		return nil, fmt.Errorf("mmdb: unsupported statement %T", st)
	}
}

// MustExec is Exec that panics on error; for tests and examples.
func (db *Database) MustExec(sql string) *ExecResult {
	r, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return r
}

func sqlKind(name string) (IndexKind, error) {
	switch strings.ToLower(name) {
	case "", "ttree":
		return TTree, nil
	case "avl":
		return AVLTree, nil
	case "btree":
		return BTree, nil
	case "array":
		return Array, nil
	case "mlh", "modlinearhash":
		return ModLinearHash, nil
	case "chained", "chainedhash":
		return ChainedHash, nil
	case "extendible":
		return Extendible, nil
	case "linear", "linearhash":
		return LinearHash, nil
	default:
		return 0, fmt.Errorf("mmdb: unknown index kind %q", name)
	}
}

func (db *Database) execCreateTable(s *sqlparser.CreateTable) (*ExecResult, error) {
	fields := make([]Field, 0, len(s.Cols))
	for _, c := range s.Cols {
		f := Field{Name: c.Name}
		switch c.Type {
		case "INT", "INTEGER":
			f.Type = TypeInt
		case "FLOAT", "REAL":
			f.Type = TypeFloat
		case "STRING", "TEXT", "VARCHAR":
			f.Type = TypeString
		case "BOOL", "BOOLEAN":
			f.Type = TypeBool
		case "REF":
			f.Type = TypeRef
			f.ForeignKey = c.RefTable
		default:
			return nil, fmt.Errorf("mmdb: unknown column type %q", c.Type)
		}
		fields = append(fields, f)
	}
	kind, err := sqlKind(s.Using)
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateTable(s.Name, fields, s.PrimaryKey, kind); err != nil {
		return nil, err
	}
	return &ExecResult{}, nil
}

func (db *Database) execCreateIndex(s *sqlparser.CreateIndex) (*ExecResult, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("mmdb: no table %q", s.Table)
	}
	kind, err := sqlKind(s.Using)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("ix_%s_%s", s.Table, s.Column)
	if s.Unique {
		_, err = t.CreateUniqueIndex(name, s.Column, kind)
	} else {
		_, err = t.CreateIndex(name, s.Column, kind)
	}
	if err != nil {
		return nil, err
	}
	return &ExecResult{}, nil
}

// resolveExpr converts a parsed expression into a Value, resolving REF
// expressions to tuple pointers by a unique lookup.
func (db *Database) resolveExpr(e sqlparser.Expr) (Value, error) {
	switch e.Kind {
	case sqlparser.ExprNull:
		return Null, nil
	case sqlparser.ExprInt:
		return Int(e.Int), nil
	case sqlparser.ExprFloat:
		return Float(e.Float), nil
	case sqlparser.ExprString:
		return Str(e.Str), nil
	case sqlparser.ExprBool:
		return Bool(e.Bool), nil
	case sqlparser.ExprRef:
		inner, err := db.resolveExpr(*e.Ref.Value)
		if err != nil {
			return Null, err
		}
		res, err := db.Query(e.Ref.Table).Where(e.Ref.Column, Eq, inner).Run()
		if err != nil {
			return Null, err
		}
		switch res.Len() {
		case 0:
			return Null, fmt.Errorf("mmdb: REF(%s, %s, %s) matches no row", e.Ref.Table, e.Ref.Column, inner)
		case 1:
			return Ref(res.Tuples(0)[0]), nil
		default:
			return Null, fmt.Errorf("mmdb: REF(%s, %s, %s) matches %d rows", e.Ref.Table, e.Ref.Column, inner, res.Len())
		}
	default:
		return Null, fmt.Errorf("mmdb: bad expression kind %d", e.Kind)
	}
}

func (db *Database) execInsert(s *sqlparser.Insert) (*ExecResult, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("mmdb: no table %q", s.Table)
	}
	tx := db.Begin()
	for _, row := range s.Rows {
		vals := make([]Value, len(row))
		for i, e := range row {
			v, err := db.resolveExpr(e)
			if err != nil {
				tx.Abort()
				return nil, err
			}
			vals[i] = v
		}
		if err := tx.Insert(t, vals...); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	ins, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: len(ins)}, nil
}

func sqlOp(op string) (Op, error) {
	switch op {
	case "=":
		return Eq, nil
	case "!=":
		return Ne, nil
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	default:
		return 0, fmt.Errorf("mmdb: bad operator %q", op)
	}
}

// buildQuery assembles the fluent query for a parsed SELECT (or the
// selection part of UPDATE/DELETE).
func (db *Database) buildQuery(from, fromAlias string, where []sqlparser.Cond, joins []sqlparser.Join, cols []string, distinct bool) (*Query, error) {
	q := db.Query(from)
	if fromAlias != "" {
		q = q.As(fromAlias)
	}
	for _, c := range where {
		op, err := sqlOp(c.Op)
		if err != nil {
			return nil, err
		}
		v, err := db.resolveExpr(c.Value)
		if err != nil {
			return nil, err
		}
		q = q.Where(c.Column, op, v)
	}
	for _, j := range joins {
		// The parser records SELF as an empty column; the fluent API
		// spells it Self. The left side arrives qualified by the scope
		// name the ON clause used, so aliases resolve.
		lc := j.LeftTable + "." + j.LeftCol
		if j.LeftCol == "" {
			lc = j.LeftTable + "." + Self
		}
		rc := j.RightCol
		if rc == "" {
			rc = Self
		}
		q = q.JoinAs(j.Table, j.Alias, lc, rc)
	}
	if len(cols) > 0 {
		q = q.Select(cols...)
	}
	if distinct {
		q = q.Distinct()
	}
	return q, nil
}

// sqlAggFunc maps a parsed aggregate name to the fluent-API tag.
func sqlAggFunc(name string) (AggFunc, error) {
	switch name {
	case "COUNT":
		return AggCount, nil
	case "SUM":
		return AggSum, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	case "AVG":
		return AggAvg, nil
	default:
		return 0, fmt.Errorf("mmdb: unknown aggregate %q", name)
	}
}

// applySelectShape maps the parsed GROUP BY / aggregate select list /
// ORDER BY / LIMIT clauses onto the fluent query. A grouped query's
// output is its group keys followed by its aggregates, so a select list
// containing aggregates must be written that way: the GROUP BY columns
// in order, then aggregates only.
func applySelectShape(q *Query, s *sqlparser.Select) (*Query, error) {
	if len(s.Items) > 0 {
		var plain []string
		sawAgg := false
		for _, it := range s.Items {
			if it.Agg == "" {
				if sawAgg {
					return nil, fmt.Errorf("mmdb: select list must be the GROUP BY columns followed by aggregates; %q appears after an aggregate", it.Col)
				}
				plain = append(plain, it.Col)
				continue
			}
			sawAgg = true
		}
		if len(plain) != len(s.GroupBy) {
			return nil, fmt.Errorf("mmdb: select list has %d non-aggregate column(s) but GROUP BY names %d", len(plain), len(s.GroupBy))
		}
		for i, col := range plain {
			if col != s.GroupBy[i] {
				return nil, fmt.Errorf("mmdb: select-list column %q must match GROUP BY column %q (position %d)", col, s.GroupBy[i], i+1)
			}
		}
		if len(s.GroupBy) > 0 {
			q = q.GroupBy(s.GroupBy...)
		}
		for _, it := range s.Items {
			if it.Agg == "" {
				continue
			}
			fn, err := sqlAggFunc(it.Agg)
			if err != nil {
				return nil, err
			}
			q = q.Agg(fn, it.Col)
		}
	} else if len(s.GroupBy) > 0 {
		// GROUP BY without aggregates: the select list (if any) must be
		// exactly the group columns; the output is one row per group.
		if len(s.Cols) > 0 {
			if len(s.Cols) != len(s.GroupBy) {
				return nil, fmt.Errorf("mmdb: select list has %d column(s) but GROUP BY names %d", len(s.Cols), len(s.GroupBy))
			}
			for i, col := range s.Cols {
				if col != s.GroupBy[i] {
					return nil, fmt.Errorf("mmdb: select-list column %q must match GROUP BY column %q (position %d)", col, s.GroupBy[i], i+1)
				}
			}
		}
		q = q.GroupBy(s.GroupBy...)
	}
	for _, o := range s.OrderBy {
		q = q.OrderBy(o.Col, o.Desc)
	}
	if s.Limit >= 0 {
		q = q.Limit(s.Limit)
	}
	return q, nil
}

func (db *Database) execSelect(s *sqlparser.Select) (*ExecResult, error) {
	q, err := db.buildQuery(s.From, s.FromAlias, s.Where, s.Joins, s.Cols, s.Distinct)
	if err != nil {
		return nil, err
	}
	if q, err = applySelectShape(q, s); err != nil {
		return nil, err
	}
	if s.Explain && s.Analyze {
		// EXPLAIN ANALYZE: execute and report the operator trace — per
		// operator rows in/out, wall time, and §3.1 counters.
		_, trace, err := q.Analyze()
		if err != nil {
			return nil, err
		}
		return &ExecResult{Plan: trace.Format()}, nil
	}
	if s.Explain {
		// Plain EXPLAIN: describe the planned choices without executing.
		planned, err := q.Explain()
		if err != nil {
			return nil, err
		}
		return &ExecResult{Plan: planned}, nil
	}
	res, err := q.Run()
	if err != nil {
		return nil, err
	}
	return &ExecResult{Result: res, RowsAffected: res.Len(), Plan: res.Plan()}, nil
}

func (db *Database) execUpdate(s *sqlparser.Update) (*ExecResult, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("mmdb: no table %q", s.Table)
	}
	v, err := db.resolveExpr(s.Value)
	if err != nil {
		return nil, err
	}
	q, err := db.buildQuery(s.Table, "", s.Where, nil, nil, false)
	if err != nil {
		return nil, err
	}
	// Read and write inside ONE transaction: the selection runs through
	// the txn's locks, so no other writer can slip between finding the
	// rows and updating them.
	tx := db.Begin()
	res, err := q.In(tx).Run()
	if err != nil {
		tx.Abort()
		return nil, err
	}
	for i := 0; i < res.Len(); i++ {
		if err := tx.Update(t, res.Tuples(i)[0], s.Column, v); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: res.Len()}, nil
}

func (db *Database) execDelete(s *sqlparser.Delete) (*ExecResult, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("mmdb: no table %q", s.Table)
	}
	q, err := db.buildQuery(s.Table, "", s.Where, nil, nil, false)
	if err != nil {
		return nil, err
	}
	// As in execUpdate: select and delete under the same transaction so
	// the victim set cannot change between the read and the writes.
	tx := db.Begin()
	res, err := q.In(tx).Run()
	if err != nil {
		tx.Abort()
		return nil, err
	}
	for i := 0; i < res.Len(); i++ {
		if err := tx.Delete(t, res.Tuples(i)[0]); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	return &ExecResult{RowsAffected: res.Len()}, nil
}
