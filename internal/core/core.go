// Package core marks the paper's primary contribution within this
// repository's layout. The contribution itself is implemented in:
//
//   - repro/internal/index/ttree — the T Tree index structure (§3.2.1),
//     the paper's new data structure;
//   - repro/internal/exec — the main-memory selection, join, and
//     projection algorithms whose comparative study is the paper's
//     experimental contribution (§3.3–3.4);
//   - repro/internal/plan — the simplified preference-order query
//     optimization the paper concludes with (§4).
//
// The surrounding substrates (storage, workload generation, locking,
// recovery, SQL) live in their own packages; see DESIGN.md for the full
// system inventory.
package core
