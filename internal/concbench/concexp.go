// Package concbench measures what PR 9 is for: concurrent-query
// throughput on the shared work-stealing morsel pool with lock-free
// snapshot scans, against the per-query-goroutine baseline it replaced.
//
// Two exhibits:
//
//   - Read-only sweep: C identical analytical scans run concurrently,
//     C = 1..64, on three databases over identical data, all configured
//     for the same intra-query parallelism — the shared pool with
//     snapshot scans (the default), the compat mode (per-query
//     goroutine fleets clamped by active-query count, locked scans),
//     and the pre-scheduler baseline (unclamped fleets: N queries run
//     N×degree goroutines). Every query's result cardinality is
//     asserted identical to the serial run; the curves are
//     queries/second.
//
//   - Mixed readers/writers: one writer streams single-row Zipf point
//     updates (internal/workload.UpdateSpec — hot rows keep the same
//     partitions permanently dirty, the worst case for snapshot
//     republication) while C readers scan. Readers must observe the
//     invariant row count on every scan (updates never change
//     cardinality), and the series reports reader and writer
//     throughput plus the lock waits the mix produced — the snapshot
//     path's value is that number staying at zero.
//
// The experiment lives outside internal/bench because it exercises the
// public Database API, which internal/bench cannot import (the engine's
// own tests import it); it registers itself at init time.
package concbench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	mmdb "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

func init() {
	bench.Register(bench.Experiment{
		ID:      "concurrency",
		Exhibit: "Extension — shared morsel pool + snapshot scans: concurrent-query throughput",
		Run:     ConcurrencySweep,
	})
}

// concLevels is the concurrency sweep: 1..64 doubling.
var concLevels = []int{1, 2, 4, 8, 16, 32, 64}

// ConcurrencySweep runs both exhibits and applies the acceptance
// gates. Zero lock waits in the mixed workload is asserted
// unconditionally (a failure panics — snapshot readers hold no locks on
// any machine). The throughput-ratio gate (pooled ≥ 2× the
// pre-scheduler baseline at 16+ concurrent) is emitted as a
// PASS/SKIP/FAIL note for CI to grep: the pre-scheduler penalty is
// oversubscription — N queries × degree goroutines fighting over the
// cores — which a serial machine cannot express (every arm is
// timesliced onto one core and the clamp floor is 1 anyway), so the
// gate is SKIP below 4 CPUs.
func ConcurrencySweep(env bench.Env) []bench.Series {
	rows := env.N(60000)
	if rows < 8192 {
		// Below the engine's snapshot-eligibility floor the pooled arm
		// would silently fall back to locked scans and gate nothing.
		rows = 8192
	}
	readOnly, ratio := readOnlySweep(env, rows)
	mixed, waits, waitTime := mixedWorkload(env, rows)
	if waits != 0 {
		panic(fmt.Sprintf("concbench: %d lock waits (%s total) during the snapshot-scan/writer mix, want 0 — snapshot readers must hold no locks", waits, waitTime))
	}
	mixed.Notes = append(mixed.Notes, "acceptance zero-lock-wait: PASS")
	readOnly.Notes = append(readOnly.Notes,
		fmt.Sprintf("shared pool / pre-scheduler per-query baseline, best at >=16 concurrent: %.2fx", ratio))
	switch {
	case ratio >= 2:
		readOnly.Notes = append(readOnly.Notes, "acceptance throughput-ratio (>=2x): PASS")
	case runtime.NumCPU() < 4:
		readOnly.Notes = append(readOnly.Notes,
			fmt.Sprintf("acceptance throughput-ratio (>=2x): SKIP — %d CPU(s) cannot express per-query-fleet oversubscription", runtime.NumCPU()))
	default:
		readOnly.Notes = append(readOnly.Notes, "acceptance throughput-ratio (>=2x): FAIL")
	}
	return []bench.Series{readOnly, mixed}
}

// loadTable creates m(id, k, v) with rows tuples, k = i mod 97.
func loadTable(db *mmdb.Database, rows int) (*mmdb.Table, []*mmdb.Tuple) {
	tab, err := db.CreateTable("m", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "k", Type: mmdb.TypeInt},
		{Name: "v", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		panic(err)
	}
	tuples := make([]*mmdb.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		tp, err := tab.Insert(mmdb.Int(int64(i)), mmdb.Int(int64(i%97)), mmdb.Int(0))
		if err != nil {
			panic(err)
		}
		tuples = append(tuples, tp)
	}
	return tab, tuples
}

// scanOnce runs one full analytical scan and asserts its cardinality.
func scanOnce(db *mmdb.Database, want int) {
	res, err := db.Query("m").Select("k").Run()
	if err != nil {
		panic(err)
	}
	if res.Len() != want {
		panic(fmt.Sprintf("concbench: scan returned %d rows, want %d", res.Len(), want))
	}
}

// selectiveCount is the cardinality of k = 13 over rows tuples with
// k = i mod 97 — the expected result of every sweep query.
func selectiveCount(rows int) int {
	want := rows / 97
	if rows%97 > 13 {
		want++
	}
	return want
}

// scanSelective runs one selective analytical scan — k is not indexed,
// so this is a full sequential scan with a predicate, but the result it
// materializes is ~1% of the relation. That keeps the measurement on
// the scan itself (where locking discipline matters) instead of on
// allocating 60,000-row result lists, which is the same cost in both
// arms and GC-bounds the whole comparison on small machines.
func scanSelective(db *mmdb.Database, want int) {
	res, err := db.Query("m").Where("k", mmdb.Eq, mmdb.Int(13)).Select("k").Run()
	if err != nil {
		panic(err)
	}
	if res.Len() != want {
		panic(fmt.Sprintf("concbench: selective scan returned %d rows, want %d", res.Len(), want))
	}
}

// throughput runs level goroutines, each issuing queries until the
// shared budget of total queries drains, and returns queries/second.
// The GC runs first so one arm's allocation debt is not collected on
// the other arm's clock — on small machines the collector's share of
// the CPU otherwise dominates the comparison.
func throughput(level, total int, scan func()) float64 {
	runtime.GC()
	var remaining atomic.Int64
	remaining.Store(int64(total))
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < level; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				scan()
			}
		}()
	}
	wg.Wait()
	return float64(total) / time.Since(start).Seconds()
}

// sweepParallelism is the intra-query degree every sweep arm is
// configured with — a server provisioned for parallel analytics,
// independent of this machine's core count. The pooled arm executes it
// on the fixed shared worker set; the pre-scheduler arm spawns it per
// query, which is exactly the N×degree oversubscription the scheduler
// exists to remove.
const sweepParallelism = 4

func readOnlySweep(env bench.Env, rows int) (bench.Series, float64) {
	s := bench.Series{
		ID:     "conc-readonly",
		Title:  "Concurrent analytical scans — shared pool + snapshots vs per-query worker fleets",
		XLabel: "concurrent queries",
		YLabel: "queries/sec",
		Names:  []string{"shared pool + snapshots", "clamped fleets (compat)", "per-query fleets (pre-scheduler)"},
	}

	pooled, err := mmdb.Open(mmdb.Options{Parallelism: sweepParallelism})
	if err != nil {
		panic(err)
	}
	defer pooled.Close()
	clamped, err := mmdb.Open(mmdb.Options{
		Parallelism:      sweepParallelism,
		PoolWorkers:      mmdb.PoolDisabled,
		DisableSnapshots: true,
	})
	if err != nil {
		panic(err)
	}
	defer clamped.Close()
	unclamped, err := mmdb.Open(mmdb.Options{
		Parallelism:        sweepParallelism,
		PoolWorkers:        mmdb.PoolDisabled,
		DisableSnapshots:   true,
		DisableDegreeClamp: true,
	})
	if err != nil {
		panic(err)
	}
	defer unclamped.Close()
	arms := []*mmdb.Database{pooled, clamped, unclamped}
	for _, db := range arms {
		loadTable(db, rows)
	}

	// Warm each arm (publishing the pooled database's snapshot); the
	// serial run is the cardinality every concurrent query must
	// reproduce.
	want := selectiveCount(rows)
	for _, db := range arms {
		scanSelective(db, want)
	}

	var ratio float64
	for _, level := range concLevels {
		total := 16 * level
		if total < 64 {
			total = 64
		}
		qps := make([]float64, len(arms))
		for i, db := range arms {
			db := db
			qps[i] = throughput(level, total, func() { scanSelective(db, want) })
		}
		s.Add(fmt.Sprintf("%d", level), qps...)
		if level >= 16 && qps[0]/qps[2] > ratio {
			ratio = qps[0] / qps[2]
		}
	}
	return s, ratio
}

func mixedWorkload(env bench.Env, rows int) (bench.Series, int64, time.Duration) {
	s := bench.Series{
		ID:     "conc-mixed",
		Title:  "Mixed workload — Zipf point updates beside concurrent snapshot scans",
		XLabel: "concurrent readers",
		YLabel: "ops/sec",
		Names:  []string{"reader queries/sec", "writer commits/sec"},
	}

	db, err := mmdb.Open(mmdb.Options{Parallelism: env.Parallelism})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	tab, tuples := loadTable(db, rows)
	scanOnce(db, rows) // publish the snapshot

	var totalWaits int64
	waitTimeBefore := db.Stats().LockWaitTime
	for _, level := range []int{1, 4, 16} {
		next := workload.UpdateSpec{Rows: rows}.Stream(env.Rng())
		stop := make(chan struct{})
		var commits atomic.Int64
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			r := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				if err := tx.Update(tab, tuples[next()], "v", mmdb.Int(int64(r))); err != nil {
					panic(err)
				}
				if _, err := tx.Commit(); err != nil {
					panic(err)
				}
				commits.Add(1)
				r++
			}
		}()

		waitsBefore := db.Stats().LockWaits
		total := 8 * level
		qps := throughput(level, total, func() { scanOnce(db, rows) })
		close(stop)
		wwg.Wait()
		waits := db.Stats().LockWaits - waitsBefore
		totalWaits += waits

		elapsed := float64(total) / qps // reader window seconds
		s.Add(fmt.Sprintf("%d", level), qps, float64(commits.Load())/elapsed)
		s.Notes = append(s.Notes,
			fmt.Sprintf("readers=%d: %d lock waits during the mix (snapshot readers hold no locks)", level, waits))
	}
	return s, totalWaits, db.Stats().LockWaitTime - waitTimeBefore
}
