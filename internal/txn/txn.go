// Package txn implements the MM-DBMS transaction protocol sketched in
// §2.4: deferred updates with strict two-phase locking at partition
// granularity. All log information is written into the stable log buffer
// before the actual update is done to the database (as in IMS FASTPATH);
// an abort simply removes the log entries — no undo is ever needed — and a
// commit applies the updates and releases them to the active log device.
package txn

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/lock"
	"repro/internal/recovery"
	"repro/internal/storage"
)

// ErrDone is returned when a finished transaction is used again.
var ErrDone = errors.New("txn: transaction already committed or aborted")

// Observer receives transaction lifecycle events. The obs registry
// implements it; the interface lives here so the transaction layer does
// not depend on the metrics layer. Implementations must be safe for
// concurrent use.
type Observer interface {
	TxnBegin()
	TxnCommit()
	TxnAbort()
}

// Manager creates transactions over a shared lock manager and log.
type Manager struct {
	Locks *lock.Manager
	Log   *recovery.Manager
	// Obs, when non-nil, receives begin/commit/abort events. Wire it
	// before the manager serves traffic; it is read without
	// synchronization afterwards.
	Obs  Observer
	next uint64
}

// NewManager wires a transaction manager. log may be nil for a database
// running without durability.
func NewManager(locks *lock.Manager, log *recovery.Manager) *Manager {
	if locks == nil {
		locks = lock.NewManager()
	}
	return &Manager{Locks: locks, Log: log}
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	if m.Obs != nil {
		m.Obs.TxnBegin()
	}
	return &Txn{m: m, id: atomic.AddUint64(&m.next, 1)}
}

// BeginUntracked starts a transaction that bypasses the observer — for
// internal ephemeral readers (e.g. the query layer's lock-holding
// pseudo-transaction) whose begin/abort pairs would distort transaction
// metrics. Locking and logging behave exactly as in Begin.
func (m *Manager) BeginUntracked() *Txn {
	return &Txn{m: m, id: atomic.AddUint64(&m.next, 1), untracked: true}
}

type opKind uint8

const (
	opInsert opKind = iota
	opUpdate
	opDelete
)

type op struct {
	kind  opKind
	rel   *storage.Relation
	tuple *storage.Tuple
	field int
	val   storage.Value
	vals  []storage.Value
}

// Txn is a deferred-update transaction. Writes are buffered until Commit;
// reads see the pre-transaction state of the database (no
// read-your-writes), which is the natural consequence of §2.4's
// no-undo design.
type Txn struct {
	m         *Manager
	id        uint64
	ops       []op
	done      bool
	untracked bool // ephemeral reader: skip observer events
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

func (t *Txn) lockID() lock.TxnID { return lock.TxnID(t.id) }

// Read returns the tuple's field values under a shared partition lock.
func (t *Txn) Read(tp *storage.Tuple) ([]storage.Value, error) {
	if t.done {
		return nil, ErrDone
	}
	if err := t.m.Locks.Lock(t.lockID(), tp.Partition(), lock.Shared); err != nil {
		return nil, t.failLock(err)
	}
	return tp.Values(), nil
}

// LockRelationShared takes a shared lock on the relation plus every
// partition — the read lock a selection needs. The relation-level lock is
// what serializes readers against index-mutating writers: indices span
// partitions, so partition locks alone cannot protect an index traversal.
func (t *Txn) LockRelationShared(rel *storage.Relation) error {
	if t.done {
		return ErrDone
	}
	if err := t.m.Locks.Lock(t.lockID(), rel, lock.Shared); err != nil {
		return t.failLock(err)
	}
	for _, p := range rel.Partitions() {
		if err := t.m.Locks.Lock(t.lockID(), p, lock.Shared); err != nil {
			return t.failLock(err)
		}
	}
	return nil
}

// TryLockRelationShared is LockRelationShared without blocking: it
// reports false (releasing nothing — the caller aborts the ephemeral
// transaction) when any of the locks is not immediately grantable.
// Statistics exposition uses it to avoid stalling behind writers.
func (t *Txn) TryLockRelationShared(rel *storage.Relation) bool {
	if t.done {
		return false
	}
	if !t.m.Locks.TryLock(t.lockID(), rel, lock.Shared) {
		return false
	}
	for _, p := range rel.Partitions() {
		if !t.m.Locks.TryLock(t.lockID(), p, lock.Shared) {
			return false
		}
	}
	return true
}

// Insert buffers an insert. Schema validation happens immediately; the
// tuple is created at Commit (deferred update), so its pointer is returned
// by Commit, not here. The relation's insert region is locked exclusively.
func (t *Txn) Insert(rel *storage.Relation, vals []storage.Value) error {
	if t.done {
		return ErrDone
	}
	if err := rel.Schema().Validate(vals); err != nil {
		return err
	}
	if err := t.m.Locks.Lock(t.lockID(), rel, lock.Exclusive); err != nil {
		return t.failLock(err)
	}
	t.ops = append(t.ops, op{kind: opInsert, rel: rel, vals: append([]storage.Value(nil), vals...)})
	return nil
}

// Update buffers a field update under an exclusive partition lock.
func (t *Txn) Update(rel *storage.Relation, tp *storage.Tuple, field int, v storage.Value) error {
	if t.done {
		return ErrDone
	}
	if field < 0 || field >= rel.Schema().Arity() {
		return fmt.Errorf("txn: field %d out of range", field)
	}
	def := rel.Schema().Field(field)
	if !v.IsNull() && v.Type() != def.Type {
		return fmt.Errorf("txn: field %q wants %s, got %s", def.Name, def.Type, v.Type())
	}
	// The relation lock covers the index repositioning the update causes;
	// the partition lock covers the tuple itself.
	if err := t.m.Locks.Lock(t.lockID(), rel, lock.Exclusive); err != nil {
		return t.failLock(err)
	}
	if err := t.m.Locks.Lock(t.lockID(), tp.Partition(), lock.Exclusive); err != nil {
		return t.failLock(err)
	}
	t.ops = append(t.ops, op{kind: opUpdate, rel: rel, tuple: tp, field: field, val: v})
	return nil
}

// Delete buffers a tuple delete under exclusive relation and partition
// locks (the relation lock covers the index removals).
func (t *Txn) Delete(rel *storage.Relation, tp *storage.Tuple) error {
	if t.done {
		return ErrDone
	}
	if err := t.m.Locks.Lock(t.lockID(), rel, lock.Exclusive); err != nil {
		return t.failLock(err)
	}
	if err := t.m.Locks.Lock(t.lockID(), tp.Partition(), lock.Exclusive); err != nil {
		return t.failLock(err)
	}
	t.ops = append(t.ops, op{kind: opDelete, rel: rel, tuple: tp})
	return nil
}

// failLock aborts the transaction on a lock failure (deadlock victim).
func (t *Txn) failLock(err error) error {
	t.Abort()
	return err
}

// Abort discards the buffered updates and log entries and releases all
// locks; the database is untouched, so no undo is needed.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.ops = nil
	if t.m.Log != nil {
		t.m.Log.Abort(t.id)
	}
	t.m.Locks.ReleaseAll(t.lockID())
	if t.m.Obs != nil && !t.untracked {
		t.m.Obs.TxnAbort()
	}
}

// Commit validates the buffered updates, writes each log record into the
// stable log buffer, applies the update to the in-memory database, then
// releases the records to the log device and drops all locks. It returns
// the tuples created by this transaction's inserts, in order.
func (t *Txn) Commit() ([]*storage.Tuple, error) {
	if t.done {
		return nil, ErrDone
	}
	// Validation pass: fail before anything is applied.
	for _, o := range t.ops {
		switch o.kind {
		case opUpdate, opDelete:
			if !o.tuple.Live() {
				t.Abort()
				return nil, fmt.Errorf("txn %d: tuple %d is dead", t.id, o.tuple.ID())
			}
		}
	}
	// Apply pass: log record first, then the in-memory update.
	var inserted []*storage.Tuple
	for _, o := range t.ops {
		switch o.kind {
		case opInsert:
			var rec *recovery.Record
			if t.m.Log != nil {
				imgs := make([]storage.ValueImage, len(o.vals))
				for i, v := range o.vals {
					imgs[i] = storage.ImageOf(v)
				}
				rec = t.m.Log.Append(t.id, recovery.Record{Op: recovery.OpInsert, Rel: o.rel.Name(), Vals: imgs})
			}
			tp, err := o.rel.Insert(o.vals)
			if err != nil {
				t.Abort()
				return nil, err
			}
			if rec != nil {
				// Placement metadata becomes known only after the insert.
				rec.Tuple = tp.ID()
				rec.Part = tp.Partition().ID()
			}
			inserted = append(inserted, tp)
		case opUpdate:
			if t.m.Log != nil {
				t.m.Log.Append(t.id, recovery.Record{
					Op: recovery.OpUpdate, Rel: o.rel.Name(),
					Part: o.tuple.Partition().ID(), Tuple: o.tuple.ID(),
					Field: o.field, Vals: []storage.ValueImage{storage.ImageOf(o.val)},
				})
			}
			if err := o.rel.Update(o.tuple, o.field, o.val); err != nil {
				t.Abort()
				return nil, err
			}
		case opDelete:
			if t.m.Log != nil {
				t.m.Log.Append(t.id, recovery.Record{
					Op: recovery.OpDelete, Rel: o.rel.Name(),
					Part: o.tuple.Partition().ID(), Tuple: o.tuple.ID(),
				})
			}
			if err := o.rel.Delete(o.tuple); err != nil {
				t.Abort()
				return nil, err
			}
		}
	}
	t.done = true
	if t.m.Log != nil {
		t.m.Log.Commit(t.id)
	}
	// Republish snapshots of the touched relations while this
	// transaction's exclusive locks still exclude other writers, so
	// lock-free snapshot readers move from the pre-commit image straight
	// to the post-commit one. Relations nobody snapshot-scans skip this
	// (RefreshSnapshot is a nil check for them).
	var refreshed *storage.Relation
	for _, o := range t.ops {
		if o.rel != refreshed {
			o.rel.RefreshSnapshot()
			refreshed = o.rel
		}
	}
	t.m.Locks.ReleaseAll(t.lockID())
	if t.m.Obs != nil && !t.untracked {
		t.m.Obs.TxnCommit()
	}
	return inserted, nil
}
