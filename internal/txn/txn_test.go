package txn

import (
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/storage"
)

func newRel(t *testing.T) *storage.Relation {
	t.Helper()
	schema := storage.MustSchema(
		storage.FieldDef{Name: "k", Type: storage.Int},
		storage.FieldDef{Name: "s", Type: storage.Str},
	)
	rel, err := storage.NewRelation("r", schema, storage.Config{}, storage.NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestCommitReturnsInsertedTuplesInOrder(t *testing.T) {
	rel := newRel(t)
	tm := NewManager(lock.NewManager(), nil) // durability off
	tx := tm.Begin()
	for i := int64(0); i < 5; i++ {
		if err := tx.Insert(rel, []storage.Value{storage.IntValue(i), storage.StringValue("x")}); err != nil {
			t.Fatal(err)
		}
	}
	tuples, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 5 {
		t.Fatalf("len=%d", len(tuples))
	}
	for i, tp := range tuples {
		if tp.Field(0).Int() != int64(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestFinishedTxnRejectsEverything(t *testing.T) {
	rel := newRel(t)
	tm := NewManager(nil, nil)
	tx := tm.Begin()
	tx.Insert(rel, []storage.Value{storage.IntValue(1), storage.NullValue})
	tuples, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != ErrDone {
		t.Fatalf("second commit: %v", err)
	}
	if err := tx.Insert(rel, nil); err != ErrDone {
		t.Fatalf("insert after commit: %v", err)
	}
	if err := tx.Update(rel, tuples[0], 0, storage.IntValue(2)); err != ErrDone {
		t.Fatalf("update after commit: %v", err)
	}
	if err := tx.Delete(rel, tuples[0]); err != ErrDone {
		t.Fatalf("delete after commit: %v", err)
	}
	if _, err := tx.Read(tuples[0]); err != ErrDone {
		t.Fatalf("read after commit: %v", err)
	}
	if err := tx.LockRelationShared(rel); err != ErrDone {
		t.Fatalf("lock after commit: %v", err)
	}
	tx.Abort() // no-op, must not panic
}

func TestAbortIsIdempotentAndDiscards(t *testing.T) {
	rel := newRel(t)
	tm := NewManager(nil, nil)
	tx := tm.Begin()
	tx.Insert(rel, []storage.Value{storage.IntValue(1), storage.NullValue})
	tx.Abort()
	tx.Abort()
	if rel.Cardinality() != 0 {
		t.Fatal("aborted insert applied")
	}
	if _, err := tx.Commit(); err != ErrDone {
		t.Fatalf("commit after abort: %v", err)
	}
}

func TestValidationErrorsDoNotBufferOps(t *testing.T) {
	rel := newRel(t)
	tm := NewManager(nil, nil)
	tx := tm.Begin()
	if err := tx.Insert(rel, []storage.Value{storage.StringValue("wrong")}); err == nil {
		t.Fatal("bad arity accepted")
	}
	if err := tx.Update(rel, nil, 99, storage.IntValue(1)); err == nil {
		t.Fatal("bad field accepted")
	}
	// Transaction is still alive (validation errors are not lock errors).
	if err := tx.Insert(rel, []storage.Value{storage.IntValue(1), storage.NullValue}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 1 {
		t.Fatalf("cardinality=%d", rel.Cardinality())
	}
}

func TestNoReadYourWrites(t *testing.T) {
	// Deferred updates: a transaction's own writes are invisible until
	// commit (§2.4's no-undo design).
	rel := newRel(t)
	tm := NewManager(nil, nil)
	seed := tm.Begin()
	seed.Insert(rel, []storage.Value{storage.IntValue(1), storage.StringValue("old")})
	tuples, _ := seed.Commit()
	tx := tm.Begin()
	if err := tx.Update(rel, tuples[0], 1, storage.StringValue("new")); err != nil {
		t.Fatal(err)
	}
	vals, err := tx.Read(tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	if vals[1].Str() != "old" {
		t.Fatalf("deferred write visible before commit: %v", vals)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tuples[0].Field(1).Str() != "new" {
		t.Fatal("commit did not apply")
	}
}

func TestLockOrderingAcrossOps(t *testing.T) {
	rel := newRel(t)
	locks := lock.NewManager()
	tm := NewManager(locks, nil)
	tx := tm.Begin()
	tx.Insert(rel, []storage.Value{storage.IntValue(1), storage.NullValue})
	// The insert holds X on the relation until commit: a second txn's
	// shared relation lock must conflict.
	probe := tm.Begin()
	got := make(chan error, 1)
	go func() { got <- probe.LockRelationShared(rel) }()
	select {
	case err := <-got:
		t.Fatalf("shared lock granted against in-flight insert (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
		// Still blocked, as it must be.
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	probe.Abort()
}
