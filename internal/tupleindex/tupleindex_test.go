package tupleindex

import (
	"testing"

	"repro/internal/index"
	"repro/internal/index/mlh"
	"repro/internal/index/ttree"
	"repro/internal/storage"
)

func newRel(t *testing.T) *storage.Relation {
	t.Helper()
	schema := storage.MustSchema(
		storage.FieldDef{Name: "k", Type: storage.Int},
		storage.FieldDef{Name: "s", Type: storage.Str},
	)
	rel, err := storage.NewRelation("r", schema, storage.Config{}, storage.NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestMaintainerKeepsTTreeInSync(t *testing.T) {
	rel := newRel(t)
	tt := NewTTree(Options{Field: 0})
	rel.Observe(NewOrderedMaintainer(tt, 0))

	var tuples []*storage.Tuple
	for i := int64(0); i < 100; i++ {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(i), storage.StringValue("x")})
		if err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, tp)
	}
	if tt.Len() != 100 {
		t.Fatalf("index len=%d", tt.Len())
	}
	// Update the indexed field: entry must move to its new position.
	if err := rel.Update(tuples[5], 0, storage.IntValue(1000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tt.Search(PosFor(storage.IntValue(5), 0)); ok {
		t.Fatal("old key still present after update")
	}
	got, ok := tt.Search(PosFor(storage.IntValue(1000), 0))
	if !ok || got.Canonical() != tuples[5].Canonical() {
		t.Fatal("new key not found after update")
	}
	// Update a non-indexed field: no index churn, entry still found.
	if err := rel.Update(tuples[6], 1, storage.StringValue("y")); err != nil {
		t.Fatal(err)
	}
	if _, ok := tt.Search(PosFor(storage.IntValue(6), 0)); !ok {
		t.Fatal("entry lost after non-indexed update")
	}
	// Delete removes the entry.
	if err := rel.Delete(tuples[7]); err != nil {
		t.Fatal(err)
	}
	if _, ok := tt.Search(PosFor(storage.IntValue(7), 0)); ok {
		t.Fatal("deleted tuple still indexed")
	}
	if tt.Len() != 99 {
		t.Fatalf("index len=%d after delete", tt.Len())
	}
}

func TestMaintainerHashIndex(t *testing.T) {
	rel := newRel(t)
	mh := NewMLH(Options{Field: 0})
	rel.Observe(NewHashedMaintainer(mh, 0))
	tp, _ := rel.Insert([]storage.Value{storage.IntValue(7), storage.StringValue("a")})
	if mh.Len() != 1 {
		t.Fatal("insert not propagated")
	}
	rel.Update(tp, 0, storage.IntValue(8))
	if _, ok := mh.SearchKey(storage.Hash(storage.IntValue(8)), func(x *storage.Tuple) bool {
		return storage.Equal(x.Field(0), storage.IntValue(8))
	}); !ok {
		t.Fatal("updated key not found")
	}
	if _, ok := mh.SearchKey(storage.Hash(storage.IntValue(7)), func(x *storage.Tuple) bool {
		return storage.Equal(x.Field(0), storage.IntValue(7))
	}); ok {
		t.Fatal("stale key found")
	}
}

func TestSelfFieldIdentityIndex(t *testing.T) {
	rel := newRel(t)
	mh := NewMLH(Options{Field: SelfField})
	rel.Observe(NewHashedMaintainer(mh, SelfField))
	tp, _ := rel.Insert([]storage.Value{storage.IntValue(1), storage.StringValue("a")})
	key := storage.RefValue(tp)
	if _, ok := mh.SearchKey(storage.Hash(key), func(x *storage.Tuple) bool {
		return storage.Equal(storage.RefValue(x), key)
	}); !ok {
		t.Fatal("identity lookup failed")
	}
	// Updates never reposition an identity index.
	rel.Update(tp, 0, storage.IntValue(99))
	if mh.Len() != 1 {
		t.Fatal("identity index churned on update")
	}
}

func TestKindDispatchers(t *testing.T) {
	for _, k := range []index.Kind{index.KindArray, index.KindAVL, index.KindBTree, index.KindTTree} {
		ix, err := NewOrdered(k, Options{Field: 0})
		if err != nil || ix == nil {
			t.Fatalf("%v: %v", k, err)
		}
		if _, err := NewHashed(k, Options{Field: 0}); err == nil {
			t.Fatalf("%v accepted as hash structure", k)
		}
	}
	for _, k := range []index.Kind{index.KindChainedHash, index.KindExtendible, index.KindLinearHash, index.KindModLinearHash} {
		ix, err := NewHashed(k, Options{Field: 0})
		if err != nil || ix == nil {
			t.Fatalf("%v: %v", k, err)
		}
		if _, err := NewOrdered(k, Options{Field: 0}); err == nil {
			t.Fatalf("%v accepted as ordered structure", k)
		}
	}
}

func TestForwardedTupleStaysIndexed(t *testing.T) {
	// A heap-overflow move must not break index lookups: the index holds
	// the old pointer, comparisons resolve through the forwarding address.
	schema := storage.MustSchema(
		storage.FieldDef{Name: "k", Type: storage.Int},
		storage.FieldDef{Name: "s", Type: storage.Str},
	)
	rel, _ := storage.NewRelation("r", schema, storage.Config{SlotsPerPartition: 4, HeapPerPartition: 16}, storage.NewIDGen())
	tt := NewTTree(Options{Field: 0})
	rel.Observe(NewOrderedMaintainer(tt, 0))
	tp, _ := rel.Insert([]storage.Value{storage.IntValue(1), storage.StringValue("0123456789")})
	// Grow the string past the heap: tuple moves, forwarding left behind.
	if err := rel.Update(tp, 1, storage.StringValue("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	got, ok := tt.Search(PosFor(storage.IntValue(1), 0))
	if !ok {
		t.Fatal("tuple lost after forwarding move")
	}
	if got.Field(1).Str() != "0123456789abcdef" {
		t.Fatal("lookup returned stale data")
	}
}

func TestCompositeIndex(t *testing.T) {
	schema := storage.MustSchema(
		storage.FieldDef{Name: "a", Type: storage.Int},
		storage.FieldDef{Name: "b", Type: storage.Str},
		storage.FieldDef{Name: "c", Type: storage.Int},
	)
	rel, _ := storage.NewRelation("r", schema, storage.Config{}, storage.NewIDGen())
	fields := []int{0, 1}
	tt := ttreeNewComposite(fields)
	for a := int64(0); a < 10; a++ {
		for _, b := range []string{"x", "y", "z"} {
			tp, err := rel.Insert([]storage.Value{storage.IntValue(a), storage.StringValue(b), storage.IntValue(a * 100)})
			if err != nil {
				t.Fatal(err)
			}
			if !tt.Insert(tp) {
				t.Fatal("composite insert rejected")
			}
		}
	}
	// Exact composite lookup.
	pos := CompositePos([]storage.Value{storage.IntValue(4), storage.StringValue("y")}, fields)
	got, ok := tt.Search(pos)
	if !ok || got.Field(0).Int() != 4 || got.Field(1).Str() != "y" {
		t.Fatalf("composite search: %v %v", got, ok)
	}
	// Prefix scan: all three rows with a=7, in b order.
	prefix := CompositePos([]storage.Value{storage.IntValue(7)}, fields)
	var bs []string
	tt.SearchAll(prefix, func(tp *storage.Tuple) bool {
		bs = append(bs, tp.Field(1).Str())
		return true
	})
	if len(bs) != 3 || bs[0] != "x" || bs[1] != "y" || bs[2] != "z" {
		t.Fatalf("prefix scan = %v", bs)
	}
	// Unique composite rejects only full-key duplicates.
	uniq := ttreeNewCompositeUnique(fields)
	tp1, _ := rel.Insert([]storage.Value{storage.IntValue(100), storage.StringValue("x"), storage.IntValue(0)})
	tp2, _ := rel.Insert([]storage.Value{storage.IntValue(100), storage.StringValue("y"), storage.IntValue(0)})
	tp3, _ := rel.Insert([]storage.Value{storage.IntValue(100), storage.StringValue("x"), storage.IntValue(1)})
	if !uniq.Insert(tp1) || !uniq.Insert(tp2) {
		t.Fatal("distinct composite keys rejected")
	}
	if uniq.Insert(tp3) {
		t.Fatal("duplicate composite key accepted")
	}
	// Hash structure over a composite key.
	mh := mlhNewComposite(fields)
	rel.ScanPhysical(func(tp *storage.Tuple) bool { mh.Insert(tp); return true })
	cfg := CompositeConfig(fields, Options{})
	probe, _ := rel.Insert([]storage.Value{storage.IntValue(4), storage.StringValue("y"), storage.IntValue(-1)})
	n := 0
	mh.SearchKeyAll(cfg.Hash(probe), func(x *storage.Tuple) bool { return cfg.Eq(x, probe) }, func(*storage.Tuple) bool {
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("composite hash probe found %d", n)
	}
	if err := rel.Delete(probe); err != nil {
		t.Fatal(err)
	}
}

func TestCompositePosTooManyKeysPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CompositePos([]storage.Value{storage.IntValue(1), storage.IntValue(2)}, []int{0})
}

type ttreeT = ttree.Tree[*storage.Tuple]

func ttreeNewComposite(fields []int) *ttreeT {
	return ttree.New(CompositeConfig(fields, Options{}))
}

func ttreeNewCompositeUnique(fields []int) *ttreeT {
	return ttree.New(CompositeConfig(fields, Options{Unique: true}))
}

func mlhNewComposite(fields []int) *mlh.Table[*storage.Tuple] {
	return mlh.New(CompositeConfig(fields, Options{}))
}
