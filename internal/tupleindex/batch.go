package tupleindex

import (
	"repro/internal/index"
	"repro/internal/storage"
)

// Batched entry points over tuple indexes. These are the tuple-level face
// of the optional index batch capabilities (see internal/index/batch.go):
// operators in internal/exec and internal/parallel call these to pull
// whole storage.TupleBatch blocks out of an index instead of paying one
// indirect callback per tuple. Indexes with a native batch implementation
// (T Tree, sorted array, Chained Bucket Hashing) hand blocks out
// directly; the other structures fall back to a gather loop with
// identical §3.1 metering.

// ScanBatches visits every entry of an ordered tuple index in ascending
// order, in blocks of up to cap(buf) tuples (a pool block from
// storage.GetBatch when buf is nil). fn must not retain the block.
func ScanBatches(ix Ordered, buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	index.ScanOrderedBatches[*storage.Tuple](ix, buf, fn)
}

// ScanHashedBatches is ScanBatches for hash indexes (entry order
// unspecified).
func ScanHashedBatches(ix Hashed, buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	index.ScanHashedBatches[*storage.Tuple](ix, buf, fn)
}

// SearchAllAppend appends every tuple of ix matching key k on field f to
// out and returns the extended slice — the batched form of the §3.3.4
// exact-match lookup.
func SearchAllAppend(ix Ordered, k storage.Value, f int, out storage.TupleBatch) storage.TupleBatch {
	return index.SearchAllAppend[*storage.Tuple](ix, PosFor(k, f), out)
}

// SearchKeyAppend appends every tuple of ix in the bucket of hash h whose
// field f equals k to out and returns the extended slice.
func SearchKeyAppend(ix Hashed, k storage.Value, f int, out storage.TupleBatch) storage.TupleBatch {
	h := storage.Hash(k)
	match := func(t *storage.Tuple) bool { return storage.Equal(KeyOf(t, f), k) }
	return index.SearchKeyAppend[*storage.Tuple](ix, h, match, out)
}
