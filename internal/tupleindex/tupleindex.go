// Package tupleindex instantiates the generic index structures over tuple
// pointers, the MM-DBMS arrangement of §2.2: an index never stores
// attribute values, only *storage.Tuple entries whose comparisons and
// hashes dereference the indexed field on demand. Entry identity is
// pointer identity, so deleting a tuple removes exactly its pointer even
// among key-equal duplicates.
package tupleindex

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/index/avltree"
	"repro/internal/index/btree"
	"repro/internal/index/chainhash"
	"repro/internal/index/exthash"
	"repro/internal/index/linearhash"
	"repro/internal/index/mlh"
	"repro/internal/index/sortedarray"
	"repro/internal/index/ttree"
	"repro/internal/meter"
	"repro/internal/sortkey"
	"repro/internal/storage"
)

// SelfField is the pseudo field index whose "value" is the tuple's own
// identity (a Ref to itself). Indexing or joining on SelfField compares
// tuple pointers — the pointer-based join of §2.1 Query 2.
const SelfField = -1

// KeyOf extracts the indexed key of a tuple: field f, or the tuple's own
// identity for SelfField.
func KeyOf(t *storage.Tuple, f int) storage.Value {
	if f == SelfField {
		return storage.RefValue(t)
	}
	return t.Field(f)
}

// Ordered and Hashed are the tuple-level index interfaces.
type (
	Ordered = index.Ordered[*storage.Tuple]
	Hashed  = index.Hashed[*storage.Tuple]
)

// Options configures a tuple index.
type Options struct {
	Field    int // indexed field; SelfField for identity
	Unique   bool
	NodeSize int
	Capacity int // hint for static / presized structures
	Meter    *meter.Counters
}

// Config builds the generic index configuration for the options.
func Config(o Options) index.Config[*storage.Tuple] {
	f := o.Field
	return index.Config[*storage.Tuple]{
		Cmp: func(a, b *storage.Tuple) int {
			return storage.Compare(KeyOf(a, f), KeyOf(b, f))
		},
		Hash: func(t *storage.Tuple) uint64 {
			return storage.Hash(KeyOf(t, f))
		},
		Eq: func(a, b *storage.Tuple) bool {
			return storage.Equal(KeyOf(a, f), KeyOf(b, f))
		},
		Same:         func(a, b *storage.Tuple) bool { return a.Canonical() == b.Canonical() },
		Unique:       o.Unique,
		NodeSize:     o.NodeSize,
		CapacityHint: o.Capacity,
		Meter:        o.Meter,
	}
}

// PosFor returns the ordered-search position function for key k on field f.
func PosFor(k storage.Value, f int) index.Pos[*storage.Tuple] {
	return func(t *storage.Tuple) int {
		return storage.Compare(KeyOf(t, f), k)
	}
}

// NewTTree builds an empty T Tree over tuples.
func NewTTree(o Options) *ttree.Tree[*storage.Tuple] { return ttree.New(Config(o)) }

// NewAVL builds an empty AVL tree over tuples.
func NewAVL(o Options) *avltree.Tree[*storage.Tuple] { return avltree.New(Config(o)) }

// NewBTree builds an empty B Tree over tuples.
func NewBTree(o Options) *btree.Tree[*storage.Tuple] { return btree.New(Config(o)) }

// NewArray builds an empty sorted-array index over tuples.
func NewArray(o Options) *sortedarray.Array[*storage.Tuple] { return sortedarray.New(Config(o)) }

// BuildArray bulk-loads a sorted-array index (append + quicksort), the
// construction path of the Sort Merge join.
func BuildArray(o Options, tuples []*storage.Tuple) *sortedarray.Array[*storage.Tuple] {
	return sortedarray.Build(Config(o), tuples)
}

// BuildArrayRadix bulk-loads a sorted-array index through the
// normalized-key radix sort (internal/sortkey): encode each tuple's key
// into a fixed-width order-preserving prefix, MSD-radix-sort the
// (prefix, pointer) pairs, and adopt the ordered pointers without
// re-sorting. When any prefix is non-decisive (long strings, nulls
// colliding with minimal keys) the kernel tie-breaks equal-prefix runs
// with the real comparator, so the result key order is exactly the order
// BuildArray produces — only the work to get there changes. (Neither
// build is stable among key-equal duplicates; the merge join's cross
// products are insensitive to that.)
func BuildArrayRadix(o Options, tuples []*storage.Tuple) *sortedarray.Array[*storage.Tuple] {
	n := len(tuples)
	s := sortkey.GetTupleSorter()
	ent := s.Entries(n)
	allDecisive := true
	for i, t := range tuples {
		k, dec := sortkey.Prefix(KeyOf(t, o.Field))
		if !dec {
			allDecisive = false
		}
		ent[i] = sortkey.Entry[*storage.Tuple]{K: k, P: t}
	}
	o.Meter.AddKeyBytes(int64(n) * sortkey.PrefixBytes)
	var tie sortkey.Tie[*storage.Tuple]
	if !allDecisive {
		f := o.Field
		tie = func(a, b *storage.Tuple) int {
			return storage.Compare(KeyOf(a, f), KeyOf(b, f))
		}
	}
	s.Sort(ent, tie, o.Meter)
	out := make([]*storage.Tuple, n)
	for i := range ent {
		out[i] = ent[i].P
	}
	o.Meter.AddMove(int64(n))
	sortkey.PutTupleSorter(s)
	return sortedarray.FromSorted(Config(o), out)
}

// NewChainHash builds a static chained-bucket hash table over tuples.
func NewChainHash(o Options) *chainhash.Table[*storage.Tuple] { return chainhash.New(Config(o)) }

// NewExtendible builds an extendible hash table over tuples.
func NewExtendible(o Options) *exthash.Table[*storage.Tuple] { return exthash.New(Config(o)) }

// NewLinearHash builds a linear hash table over tuples.
func NewLinearHash(o Options) *linearhash.Table[*storage.Tuple] { return linearhash.New(Config(o)) }

// NewMLH builds a modified linear hash table over tuples.
func NewMLH(o Options) *mlh.Table[*storage.Tuple] { return mlh.New(Config(o)) }

// NewOrdered builds an order-preserving index of the given kind.
func NewOrdered(k index.Kind, o Options) (Ordered, error) {
	switch k {
	case index.KindArray:
		return NewArray(o), nil
	case index.KindAVL:
		return NewAVL(o), nil
	case index.KindBTree:
		return NewBTree(o), nil
	case index.KindTTree:
		return NewTTree(o), nil
	default:
		return nil, fmt.Errorf("tupleindex: %v is not order-preserving", k)
	}
}

// NewHashed builds a hash index of the given kind.
func NewHashed(k index.Kind, o Options) (Hashed, error) {
	switch k {
	case index.KindChainedHash:
		return NewChainHash(o), nil
	case index.KindExtendible:
		return NewExtendible(o), nil
	case index.KindLinearHash:
		return NewLinearHash(o), nil
	case index.KindModLinearHash:
		return NewMLH(o), nil
	default:
		return nil, fmt.Errorf("tupleindex: %v is not a hash structure", k)
	}
}

// Maintainer keeps an index in sync with its relation through the
// storage.Observer hooks. Register it with Relation.Observe.
type Maintainer struct {
	Field  int
	Insert func(*storage.Tuple) bool
	Remove func(*storage.Tuple) bool
}

// NewOrderedMaintainer wires an ordered index to relation changes.
func NewOrderedMaintainer(ix Ordered, field int) *Maintainer {
	return &Maintainer{Field: field, Insert: ix.Insert, Remove: ix.Delete}
}

// NewHashedMaintainer wires a hash index to relation changes.
func NewHashedMaintainer(ix Hashed, field int) *Maintainer {
	return &Maintainer{Field: field, Insert: ix.Insert, Remove: ix.Delete}
}

// TupleInserted implements storage.Observer.
func (m *Maintainer) TupleInserted(t *storage.Tuple) { m.Insert(t) }

// TupleDeleted implements storage.Observer.
func (m *Maintainer) TupleDeleted(t *storage.Tuple) { m.Remove(t) }

// TupleUpdating implements storage.Observer: before an indexed field
// changes, the entry is removed while its current key is still observable
// — afterwards the entry would dereference to the new value and become
// unfindable at its old tree position.
func (m *Maintainer) TupleUpdating(t *storage.Tuple, f int, v storage.Value) {
	if m.Field == SelfField || f != m.Field {
		return
	}
	if storage.Equal(t.Field(f), v) {
		return
	}
	m.Remove(t)
}

// TupleUpdated implements storage.Observer: after an indexed field
// changed, the entry (removed by TupleUpdating) is re-inserted at its new
// position.
func (m *Maintainer) TupleUpdated(t *storage.Tuple, old []storage.Value) {
	if m.Field == SelfField {
		return // identity never changes on update
	}
	if storage.Equal(old[m.Field], t.Field(m.Field)) {
		return
	}
	m.Insert(t)
}

// CompositeKeyOf extracts the multi-attribute key of a tuple.
func CompositeKeyOf(t *storage.Tuple, fields []int) []storage.Value {
	out := make([]storage.Value, len(fields))
	for i, f := range fields {
		out[i] = KeyOf(t, f)
	}
	return out
}

// CompositeConfig builds an index configuration over several fields
// compared lexicographically. §2.2: "since a single tuple pointer provides
// access to any field in the tuple, multi-attribute indices will need less
// in the way of special mechanisms" — the entries are still plain tuple
// pointers; only the comparison changes.
func CompositeConfig(fields []int, o Options) index.Config[*storage.Tuple] {
	fs := append([]int(nil), fields...)
	return index.Config[*storage.Tuple]{
		Cmp: func(a, b *storage.Tuple) int {
			for _, f := range fs {
				if c := storage.Compare(KeyOf(a, f), KeyOf(b, f)); c != 0 {
					return c
				}
			}
			return 0
		},
		Hash: func(t *storage.Tuple) uint64 {
			h := uint64(14695981039346656037)
			for _, f := range fs {
				h ^= storage.Hash(KeyOf(t, f))
				h *= 1099511628211
			}
			return h
		},
		Eq: func(a, b *storage.Tuple) bool {
			for _, f := range fs {
				if !storage.Equal(KeyOf(a, f), KeyOf(b, f)) {
					return false
				}
			}
			return true
		},
		Same:         func(a, b *storage.Tuple) bool { return a.Canonical() == b.Canonical() },
		Unique:       o.Unique,
		NodeSize:     o.NodeSize,
		CapacityHint: o.Capacity,
		Meter:        o.Meter,
	}
}

// CompositePos returns the ordered-search position function for a
// composite key. keys may be a strict prefix of fields, which makes the
// function a prefix bound: every tuple matching the prefix compares equal,
// so SearchAll and Range serve prefix scans.
func CompositePos(keys []storage.Value, fields []int) index.Pos[*storage.Tuple] {
	if len(keys) > len(fields) {
		panic("tupleindex: more key values than indexed fields")
	}
	ks := append([]storage.Value(nil), keys...)
	fs := append([]int(nil), fields[:len(ks)]...)
	return func(t *storage.Tuple) int {
		for i, f := range fs {
			if c := storage.Compare(KeyOf(t, f), ks[i]); c != 0 {
				return c
			}
		}
		return 0
	}
}
