// Package obsbench prices the query lifecycle telemetry. It is not a
// paper exhibit: it measures what the observability hooks cost when
// they are on, against the PR 1 contract that they cost nothing when
// they are off.
//
// Two angles, because they answer different questions:
//
//   - Kernel pairing: the same parallel radix join runs over the SAME
//     relations with the hot-path hooks off (Meter/Prog nil — the
//     nil-receiver fast path) and on (per-worker §3.1 counters, atomic
//     rows-processed gauges, worker saturation, pprof labels). Same
//     memory, adjacent-in-time runs, median of paired ratios: this
//     resolves the few-percent wall-time delta that whole-database
//     comparisons cannot (two databases never share a heap layout, and
//     layout luck alone swings small joins by more than the hooks do).
//   - Full query path: the same join through the public Database API
//     under three configurations — telemetry disabled, the enabled
//     default (metrics + decision audit + live query registry), and
//     maximal (a 1ns slow threshold, so every query builds its full
//     trace and lands in the slow ring). Allocation counts here are
//     deterministic and show the per-query cost of the whole lifecycle:
//     a few dozen objects, independent of row count.
//
// The experiment lives outside internal/bench because it exercises the
// public Database API, which internal/bench cannot import (the engine's
// own tests import internal/bench); it registers itself at init time.
package obsbench

import (
	"fmt"
	"sort"
	"time"

	mmdb "repro"
	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/storage"
)

func init() {
	bench.Register(bench.Experiment{
		ID:      "obs",
		Exhibit: "Extension — query lifecycle telemetry overhead, enabled vs disabled",
		Run:     ObsOverheadSweep,
	})
}

// ObsOverheadSweep measures enabled-vs-disabled telemetry overhead on
// parallel radix joins: hot-path hooks via same-data kernel pairing,
// whole-lifecycle cost via the public query API.
func ObsOverheadSweep(env bench.Env) []bench.Series {
	workers := parallel.Degree(env.Parallelism)
	series := []bench.Series{kernelPairing(env, workers)}
	series = append(series, queryLifecycle(env, workers)...)
	return series
}

// kernelPairing times parallel.RadixHashJoin over one set of relations
// with telemetry off vs on. Off = nil Meter and nil Prog, the exact
// disabled state the query layer threads down. On = live §3.1 counters
// plus a Progress record absorbing per-morsel row gauges, worker
// saturation CAS updates, and pprof goroutine labels.
func kernelPairing(env bench.Env, workers int) bench.Series {
	s := bench.Series{
		ID:     "obs-kernel-time",
		Title:  "Telemetry — radix join kernel, same data, hooks off vs on",
		XLabel: "outer rows",
		YLabel: "seconds",
		Names:  []string{"hooks off", "hooks on"},
	}
	for _, base := range []int{250000, 1000000} {
		n := env.N(base)
		half := n / 2
		outerVals := make([]int64, n)
		for i := range outerVals {
			outerVals[i] = int64(i % half)
		}
		innerVals := make([]int64, half)
		for i := range innerVals {
			innerVals[i] = int64(i)
		}
		to := parallel.SliceSource(buildRelation("r1", outerVals))
		ti := parallel.SliceSource(buildRelation("r2", innerVals))
		bits := plan.ForceRadixBits(half, plan.RadixConfig{})

		off := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
		var ctr meter.Counters
		var prog obs.Progress
		on := off
		on.Meter = &ctr
		on.Prog = &prog

		// Paired rounds: each ratio compares adjacent-in-time runs over
		// identical memory, so allocator and GC drift cancel; the median
		// across rounds shrugs off the outlier rounds a shared box
		// produces.
		const rounds = 5
		var tOff, tOn float64
		var cOff, cOn int
		var ratios []float64
		for round := 0; round < rounds; round++ {
			t0, _ := bench.TimeAllocs(func() {
				res, _ := parallel.RadixHashJoin(to, ti, off, bits, workers)
				cOff = res.Len()
			})
			t1, _ := bench.TimeAllocs(func() {
				res, _ := parallel.RadixHashJoin(to, ti, on, bits, workers)
				cOn = res.Len()
			})
			if round == 0 || t0 < tOff {
				tOff = t0
			}
			if round == 0 || t1 < tOn {
				tOn = t1
			}
			ratios = append(ratios, t1/t0)
		}
		if cOff != cOn || cOff != n {
			panic(fmt.Sprintf("bench: obs kernel cardinality diverged at %d: off=%d on=%d", n, cOff, cOn))
		}
		label := fmt.Sprintf("%dk", n/1000)
		s.Add(label, tOff, tOn)
		s.Notes = append(s.Notes,
			fmt.Sprintf("%s: hooks-on overhead %+.2f%% (median of %d paired rounds, %d workers); progress saw %s rows, peak %d workers",
				label, (median(ratios)-1)*100, rounds, workers,
				obs.FmtCount(float64(prog.Rows())), prog.PeakWorkers()))
	}
	s.Notes = append(s.Notes, "target: hooks-on overhead under 2% at 1M rows")
	return s
}

// queryLifecycle runs the same join through the public Database API
// under the three telemetry configurations. Wall times are plotted for
// shape; the load-bearing signal here is allocations per query, which
// is deterministic: the whole lifecycle — registration, decision audit,
// trace, slow-ring capture — adds a few dozen objects regardless of row
// count.
func queryLifecycle(env bench.Env, workers int) []bench.Series {
	names := []string{"telemetry disabled", "telemetry enabled", "+ slow-log traces"}
	timeSeries := bench.Series{
		ID:     "obs-query-time",
		Title:  "Telemetry — full query path under three configurations",
		XLabel: "outer rows",
		YLabel: "seconds",
		Names:  names,
	}
	allocSeries := bench.Series{
		ID:     "obs-query-allocs",
		Title:  "Telemetry — heap allocations per query",
		XLabel: "outer rows",
		YLabel: "allocations",
		Names:  names,
	}
	for _, base := range []int{250000, 1000000} {
		n := env.N(base)
		dis := obsJoinDB(mmdb.Options{DisableMetrics: true}, n)
		en := obsJoinDB(mmdb.Options{}, n)
		full := obsJoinDB(mmdb.Options{SlowQueryThreshold: time.Nanosecond}, n)

		mk := func(db *mmdb.Database) func() int {
			return func() int {
				res, err := db.Query("a").Where("id", mmdb.Gt, mmdb.Int(-1)).
					Join("b", "k", "k").Select("a.id", "b.id").
					Parallel(workers).JoinMethod(mmdb.JoinRadix).Run()
				if err != nil {
					panic(err)
				}
				return res.Len()
			}
		}
		runDis, runEn, runFull := mk(dis), mk(en), mk(full)

		var cDis, cEn, cFull int
		tDis, aDis := bench.TimeAllocs(func() { cDis = runDis() })
		tEn, aEn := bench.TimeAllocs(func() { cEn = runEn() })
		tFull, aFull := bench.TimeAllocs(func() { cFull = runFull() })
		if cDis != cEn || cDis != cFull || cDis != n {
			panic(fmt.Sprintf("bench: obs query cardinality diverged at %d: disabled=%d enabled=%d full=%d",
				n, cDis, cEn, cFull))
		}
		label := fmt.Sprintf("%dk", n/1000)
		timeSeries.Add(label, tDis, tEn, tFull)
		allocSeries.Add(label, float64(aDis), float64(aEn), float64(aFull))
		allocSeries.Notes = append(allocSeries.Notes,
			fmt.Sprintf("%s: full lifecycle adds %d allocations per query (%d enabled, +%d slow-log trace); slow log captured %d",
				label, aFull-aDis, aEn-aDis, aFull-aEn, len(full.SlowQueries())))
	}
	timeSeries.Notes = []string{
		"separate databases never share a heap layout; use obs-kernel-time for the wall-time delta",
		"enabled = metrics + decision audit + live query registry (the default); the slow log adds full traces (1ns threshold)",
	}
	allocSeries.Notes = append(allocSeries.Notes,
		"disabled path is the nil-receiver fast path: telemetry itself allocates nothing on the per-row path")
	return []bench.Series{timeSeries, allocSeries}
}

// median returns the middle value of xs (mean of the middle two when
// even). xs is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	} else {
		return (xs[n/2-1] + xs[n/2]) / 2
	}
}

// buildRelation creates a single-int-column relation holding the values
// and returns its tuples in insertion order.
func buildRelation(name string, values []int64) []*storage.Tuple {
	rel, err := storage.NewRelation(name,
		storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int}),
		storage.Config{}, storage.NewIDGen())
	if err != nil {
		panic(err)
	}
	tuples := make([]*storage.Tuple, len(values))
	for i, v := range values {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(v)})
		if err != nil {
			panic(err)
		}
		tuples[i] = tp
	}
	return tuples
}

// obsJoinDB builds a database with outer a (n rows, k = i mod n/2) and
// inner b (n/2 rows, unique k), so the radix join emits exactly n rows.
func obsJoinDB(opts mmdb.Options, n int) *mmdb.Database {
	db, err := mmdb.Open(opts)
	if err != nil {
		panic(err)
	}
	a, err := db.CreateTable("a", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "k", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		panic(err)
	}
	b, err := db.CreateTable("b", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "k", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		panic(err)
	}
	half := n / 2
	for i := 0; i < n; i++ {
		if _, err := a.Insert(mmdb.Int(int64(i)), mmdb.Int(int64(i%half))); err != nil {
			panic(err)
		}
	}
	for i := 0; i < half; i++ {
		if _, err := b.Insert(mmdb.Int(int64(i)), mmdb.Int(int64(i))); err != nil {
			panic(err)
		}
	}
	return db
}
