// Package agg implements vectorized grouped aggregation over temporary
// lists. The paper's workload stops at select/join/project; this operator
// extends the same §2.3 machinery — tuple-pointer rows in, a synthetic
// relation of computed rows out — with the cache-conscious shape the radix
// join established: radix-partition the input on the group-key hash
// (internal/radix), then aggregate each partition through a flat
// open-addressing table that stays L2-resident. Groups cannot cross hash
// partitions, so no cross-partition merge is ever needed.
//
// All scratch (the hash entries, the probe table, the per-group state
// cells) lives in a pooled Grouper: a warmed grouper aggregates an input
// with zero heap allocations. Materializing the output relation is the
// only allocating step, priced at one tuple per group.
//
// Aggregate semantics are SQL's: NULL inputs are skipped by every
// function including COUNT(col); COUNT(*) counts rows; a group whose
// inputs were all NULL yields NULL for SUM/MIN/MAX/AVG and 0 for COUNT.
package agg

import (
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/radix"
	"repro/internal/storage"
)

// Kind is an aggregate function.
type Kind uint8

// The five aggregate functions.
const (
	Count Kind = iota // COUNT(*) when Col < 0, COUNT(col) otherwise
	Sum
	Min
	Max
	Avg
)

// String names the function as SQL spells it.
func (k Kind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return "AGG?"
	}
}

// Spec is one aggregate of a GROUP BY query: the function, the input
// column (an ordinal into the input list's descriptor columns; -1 for
// COUNT(*)), and the output column name.
type Spec struct {
	Kind Kind
	Col  int
	Name string
}

// Cell is the running state of one (group, aggregate) pair. N is the
// non-null input count (the COUNT value and the AVG divisor); sums
// accumulate integers in I and floats in F so mixed inputs keep integer
// exactness as long as they can; V carries the current MIN/MAX; T records
// the value type seen so SUM can come back out in its input's type.
type Cell struct {
	N int64
	I int64
	F float64
	V storage.Value
	T storage.Type
}

// absorb folds one non-null value into the cell. The caller has already
// applied null-skipping and counted c.N.
func (c *Cell) absorb(k Kind, v storage.Value, m *meter.Counters) {
	switch k {
	case Sum, Avg:
		switch v.Type() {
		case storage.Float:
			c.F += v.Float()
			c.T = storage.Float
		case storage.Int:
			c.I += v.Int()
			if c.T != storage.Float {
				c.T = storage.Int
			}
		}
	case Min:
		if c.N == 1 {
			c.V = v
		} else {
			m.AddCompare(1)
			if storage.Compare(v, c.V) < 0 {
				c.V = v
			}
		}
	case Max:
		if c.N == 1 {
			c.V = v
		} else {
			m.AddCompare(1)
			if storage.Compare(v, c.V) > 0 {
				c.V = v
			}
		}
	}
}

// Merge folds another cell of the same (group key, aggregate) into c —
// the partial-aggregate combine the parallel executor uses at its
// barrier. Every aggregate here is decomposable: counts and sums add,
// MIN/MAX compare, AVG merges as (sum, count).
func (c *Cell) Merge(k Kind, o Cell, m *meter.Counters) {
	if o.N == 0 {
		return
	}
	switch k {
	case Min:
		if c.N == 0 {
			c.V = o.V
		} else {
			m.AddCompare(1)
			if storage.Compare(o.V, c.V) < 0 {
				c.V = o.V
			}
		}
	case Max:
		if c.N == 0 {
			c.V = o.V
		} else {
			m.AddCompare(1)
			if storage.Compare(o.V, c.V) > 0 {
				c.V = o.V
			}
		}
	default:
		c.I += o.I
		c.F += o.F
		if o.T == storage.Float {
			c.T = storage.Float
		} else if c.T != storage.Float && o.T == storage.Int {
			c.T = storage.Int
		}
	}
	c.N += o.N
}

// Final produces the aggregate's output value from a finished cell.
func Final(k Kind, c Cell) storage.Value {
	switch k {
	case Count:
		return storage.IntValue(c.N)
	case Sum:
		if c.N == 0 {
			return storage.Value{}
		}
		if c.T == storage.Float {
			return storage.FloatValue(c.F)
		}
		return storage.IntValue(c.I)
	case Avg:
		if c.N == 0 {
			return storage.Value{}
		}
		return storage.FloatValue((float64(c.I) + c.F) / float64(c.N))
	default: // Min, Max
		if c.N == 0 {
			return storage.Value{}
		}
		return c.V
	}
}

// Result is a finished aggregation: one entry per distinct group, in the
// order the operator discovered them (first-occurrence order within each
// radix partition, partitions in hash order). Reps[g] is the input row
// that first exhibited group g's key — key values are read back through
// it, so no key is ever copied. Cells is group-major: group g's state for
// spec s is Cells[g*len(specs)+s]. The slices alias the Grouper's pooled
// scratch: consume them (or Materialize) before Put.
type Result struct {
	Reps  []int32
	Cells []Cell
	Stats radix.Stats
}

// Groups is the distinct-group count.
func (r Result) Groups() int { return len(r.Reps) }

// Grouper holds the operator's reusable scratch: the (hash, row) entries
// handed to the radix partitioner, the open-addressing probe table, the
// group reps/hashes/cells, the batched column/hash/ordinal buffers, and
// the key-gather buffer. Get/Put recycle groupers through a pool; a warmed
// grouper runs allocation-free.
type Grouper struct {
	ent     []radix.RowEntry
	slots   []int32 // group ordinal +1; 0 = empty
	hashes  []uint64
	reps    []int32
	cells   []Cell
	keybuf  []storage.Value
	repkeys []storage.Value   // group-major cached key values (groups × nkey)
	vbufs   [][]storage.Value // gathered column batches, one per distinct input column
	hbuf    []uint64          // per-batch row hashes
	ords    []int32           // per-batch group ordinals
	rowbuf  []int32           // per-batch row ids (partitioned path)
	cols    []int             // distinct input columns: group keys first, then aggregate inputs
	specCol []int             // spec ordinal → index into cols/vbufs; -1 for COUNT(*)
	specDup []int             // spec ordinal → earlier spec whose cell state it can share; -1 if none
	sz      int               // active probe-table prefix of slots (power of two)
	szMax   int               // full table size for this run's row count (growth stops here)
	ordBase int               // first group ordinal belonging to the active table
}

// aggBatch is the width of the vectorized kernel's batches: wide enough to
// amortize the per-batch column gathers, narrow enough that the gathered
// buffers (batch × columns × 40-byte values) stay cache-resident.
const aggBatch = 1024

var grouperPool = sync.Pool{New: func() any { return new(Grouper) }}

// Get borrows a pooled grouper.
func Get() *Grouper { return grouperPool.Get().(*Grouper) }

// Put clears the value-holding scratch (cells, gathered batches and cached
// keys may pin strings and tuple refs through storage.Value) and recycles
// the grouper.
func Put(g *Grouper) {
	clear(g.cells[:cap(g.cells)])
	clear(g.keybuf[:cap(g.keybuf)])
	clear(g.repkeys[:cap(g.repkeys)])
	for _, vb := range g.vbufs {
		clear(vb[:cap(vb)])
	}
	grouperPool.Put(g)
}

// planCols computes the distinct input columns a run touches — group keys
// first (so vbufs[0:nkey] are the key batches), then aggregate inputs,
// each column gathered once per batch no matter how many specs share it —
// and sizes the batch scratch.
func (g *Grouper) planCols(groupCols []int, specs []Spec) {
	g.cols = append(g.cols[:0], groupCols...)
	g.specCol = g.specCol[:0]
	for i := range specs {
		c := specs[i].Col
		if c < 0 {
			g.specCol = append(g.specCol, -1)
			continue
		}
		idx := -1
		for j, have := range g.cols {
			if have == c {
				idx = j
				break
			}
		}
		if idx < 0 {
			idx = len(g.cols)
			g.cols = append(g.cols, c)
		}
		g.specCol = append(g.specCol, idx)
	}
	// Duplicate-state detection: SUM and AVG over the same column fold the
	// identical (N, I, F, T) state, and COUNT(col) reads only the N those
	// loops already maintain — so the later spec skips its accumulate pass
	// entirely and copies the canonical spec's cells at the end. A query
	// like SELECT COUNT(x), SUM(x), AVG(x) folds x exactly once.
	g.specDup = g.specDup[:0]
	for i := range specs {
		dup := -1
		if specs[i].Col >= 0 {
			for j := 0; j < i; j++ {
				if specs[j].Col == specs[i].Col && g.specDup[j] < 0 && canShareCell(specs[i].Kind, specs[j].Kind) {
					dup = j
					break
				}
			}
		}
		g.specDup = append(g.specDup, dup)
	}
	for len(g.vbufs) < len(g.cols) {
		g.vbufs = append(g.vbufs, make([]storage.Value, aggBatch))
	}
	if g.hbuf == nil {
		g.hbuf = make([]uint64, aggBatch)
		g.ords = make([]int32, aggBatch)
		g.rowbuf = make([]int32, aggBatch)
	}
}

// canShareCell reports whether a spec of kind dup, over the same input
// column as an earlier spec of kind canon, can read its finished state
// straight out of canon's cells. SUM and AVG accumulate identically (they
// differ only in Final); COUNT(col) needs only the non-null count N that
// SUM/AVG/COUNT all maintain. MIN/MAX share only with their own kind.
func canShareCell(dup, canon Kind) bool {
	if dup == canon {
		return true
	}
	switch dup {
	case Count:
		return canon == Sum || canon == Avg
	case Sum:
		return canon == Avg
	case Avg:
		return canon == Sum
	default:
		return false
	}
}

// finishShared copies each state-sharing spec's cells from its canonical
// twin once the fold is complete.
func (g *Grouper) finishShared(nspec int) {
	for s := 0; s < nspec; s++ {
		t := g.specDup[s]
		if t < 0 {
			continue
		}
		for grp := 0; grp < len(g.reps); grp++ {
			g.cells[grp*nspec+s] = g.cells[grp*nspec+t]
		}
	}
}

// hashRow gathers row's group-key values into the scratch buffer and
// hashes them exactly as the projection's duplicate elimination does
// (exec.KeyHash), so partitioned, flat, and parallel aggregation agree
// bit-for-bit on key identity.
func (g *Grouper) hashRow(list *storage.TempList, row int, groupCols []int, m *meter.Counters) uint64 {
	g.keybuf = g.keybuf[:0]
	for _, c := range groupCols {
		g.keybuf = append(g.keybuf, list.Value(row, c))
	}
	return exec.KeyHash(g.keybuf, m)
}

// keysEqual compares the group keys of two input rows column by column.
func keysEqual(list *storage.TempList, a, b int, groupCols []int, m *meter.Counters) bool {
	for _, c := range groupCols {
		m.AddCompare(1)
		if !storage.Equal(list.Value(a, c), list.Value(b, c)) {
			return false
		}
	}
	return true
}

// Run aggregates list grouped by groupCols. bits is the radix plan from
// plan.ChooseAggMethod: nil runs the whole input through one flat table
// (the degenerate single-partition plan); otherwise the input is
// partitioned on the top bits of the group-key hash first and each
// partition aggregated through its own L2-resident table.
//
// Metering: one HashCalls per row (the key hash), AggProbes per
// open-addressing slot visited, Comparisons for key checks and MIN/MAX
// updates, Groups for distinct groups out, plus the radix kernel's
// RadixPasses/Partitions/DataMoves when a partitioning plan ran.
func (g *Grouper) Run(list *storage.TempList, groupCols []int, specs []Spec, bits []uint, m *meter.Counters) Result {
	n := list.Len()
	g.reps = g.reps[:0]
	g.hashes = g.hashes[:0]
	g.cells = g.cells[:0]
	g.repkeys = g.repkeys[:0]
	if n == 0 {
		return Result{Reps: g.reps, Cells: g.cells}
	}

	g.planCols(groupCols, specs)
	if len(bits) == 0 {
		// Flat: batch rows straight into one table, no entry staging.
		g.ensureSlots(n)
		g.startTable(n)
		g.runFlat(list, 0, n, groupCols, specs, m)
		g.finishShared(len(specs))
		m.AddGroup(int64(len(g.reps)))
		return Result{Reps: g.reps, Cells: g.cells}
	}

	// Partitioned: hash every row once, scatter (hash, row) entries on the
	// top bits, then aggregate partition by partition. The per-partition
	// table is sized for that partition alone, so it stays cache-resident
	// by construction.
	if cap(g.ent) < n {
		g.ent = make([]radix.RowEntry, n)
	}
	ent := g.ent[:n]
	nkey := len(groupCols)
	for b := 0; b < n; b += aggBatch {
		bn := aggBatch
		if n-b < bn {
			bn = n - b
		}
		for k := 0; k < nkey; k++ {
			list.GatherColumn(groupCols[k], b, b+bn, g.vbufs[k][:bn])
		}
		g.hashBatch(nkey, bn, m)
		for i := 0; i < bn; i++ {
			ent[b+i] = radix.RowEntry{H: g.hbuf[i], P: int32(b + i)}
		}
	}
	part := radix.GetRowPartitioner()
	ents, offs := part.Partition(ent, radix.Plan{Bits: bits}, m)
	stats := radix.StatsOf(radix.Plan{Bits: bits}, offs)
	g.ensureSlots(stats.MaxPart)
	for p := 0; p+1 < len(offs); p++ {
		lo, hi := offs[p], offs[p+1]
		if lo == hi {
			continue
		}
		g.startTable(hi - lo)
		for b := lo; b < hi; b += aggBatch {
			bn := aggBatch
			if hi-b < bn {
				bn = hi - b
			}
			for i := 0; i < bn; i++ {
				e := ents[b+i]
				g.rowbuf[i] = e.P
				g.hbuf[i] = e.H
			}
			for k, c := range g.cols {
				list.GatherColumnRows(c, g.rowbuf[:bn], g.vbufs[k][:bn])
			}
			g.processBatch(bn, 0, true, groupCols, specs, m)
		}
	}
	radix.PutRowPartitioner(part)
	g.finishShared(len(specs))
	m.AddGroup(int64(len(g.reps)))
	return Result{Reps: g.reps, Cells: g.cells, Stats: stats}
}

// FNV-1a fold constants — the batched hash below must produce exactly
// exec.KeyHash's value for the same key vector, so flat, partitioned,
// merged and projected paths always agree bit-for-bit on key identity.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashBatch folds the gathered key batches vbufs[0:nkey] into per-row
// hashes (column-at-a-time, one meter tick per row as exec.KeyHash does).
func (g *Grouper) hashBatch(nkey, bn int, m *meter.Counters) {
	hb := g.hbuf[:bn]
	for i := range hb {
		hb[i] = fnvOffset64
	}
	for k := 0; k < nkey; k++ {
		storage.HashFold(g.vbufs[k][:bn], hb)
	}
	m.AddHash(int64(bn))
}

// runFlat drives the batched kernel over rows [lo, hi) against the current
// table: gather every needed column, hash the keys, probe, accumulate.
func (g *Grouper) runFlat(list *storage.TempList, lo, hi int, groupCols []int, specs []Spec, m *meter.Counters) {
	nkey := len(groupCols)
	for b := lo; b < hi; b += aggBatch {
		bn := aggBatch
		if hi-b < bn {
			bn = hi - b
		}
		for k, c := range g.cols {
			list.GatherColumn(c, b, b+bn, g.vbufs[k][:bn])
		}
		g.hashBatch(nkey, bn, m)
		g.processBatch(bn, b, false, groupCols, specs, m)
	}
}

// repKeysEqual compares batch row i's gathered key against group ord's
// cached rep key — both sides are dense arrays, so the steady-state probe
// never dereferences a tuple.
func (g *Grouper) repKeysEqual(ord, i, nkey int, m *meter.Counters) bool {
	rk := g.repkeys[ord*nkey : ord*nkey+nkey]
	for k := 0; k < nkey; k++ {
		m.AddCompare(1)
		if !storage.Equal(g.vbufs[k][i], rk[k]) {
			return false
		}
	}
	return true
}

// processBatch probes each gathered row to its group ordinal and then
// folds each aggregate input column ordinal-wise — the per-spec dispatch
// happens once per batch, not once per value. When pre is set, the batch
// came from the partitioner: row ids are in rowbuf and hbuf already holds
// the pre-partition hashes; otherwise rows are base+i and hashBatch ran.
func (g *Grouper) processBatch(bn, base int, pre bool, groupCols []int, specs []Spec, m *meter.Counters) {
	nkey := len(groupCols)
	nspec := len(specs)
	var key0 []storage.Value // first key column batch; nil for global aggregates
	if nkey > 0 {
		key0 = g.vbufs[0]
	}
	for i := 0; i < bn; i++ {
		h := g.hbuf[i]
		row := int32(base + i)
		if pre {
			row = g.rowbuf[i]
		}
		mask := uint64(g.sz - 1)
		idx := h & mask
		for {
			m.AddAggProbe(1)
			s := g.slots[idx]
			if s == 0 {
				ord := len(g.reps)
				g.slots[idx] = int32(ord + 1)
				g.reps = append(g.reps, row)
				g.hashes = append(g.hashes, h)
				g.cells = appendZeroCells(g.cells, nspec)
				for k := 0; k < nkey; k++ {
					g.repkeys = append(g.repkeys, g.vbufs[k][i])
				}
				g.ords[i] = int32(ord)
				if 2*(len(g.reps)-g.ordBase) >= g.sz && g.sz < g.szMax {
					g.growTable(m)
				}
				break
			}
			ord := int(s - 1)
			if g.hashes[ord] == h {
				// Single-key groupings (the common case) compare in place:
				// storage.Equal inlines here, so an int-keyed probe is two
				// register compares with no call.
				var eq bool
				if nkey == 1 {
					m.AddCompare(1)
					eq = storage.Equal(key0[i], g.repkeys[ord])
				} else {
					eq = g.repKeysEqual(ord, i, nkey, m)
				}
				if eq {
					g.ords[i] = int32(ord)
					break
				}
			}
			idx = (idx + 1) & mask
		}
	}
	for s := range specs {
		sp := &specs[s]
		if g.specDup[s] >= 0 {
			continue // state shared with an earlier spec; copied at finish
		}
		ci := g.specCol[s]
		if ci < 0 { // COUNT(*): every row counts
			for i := 0; i < bn; i++ {
				g.cells[int(g.ords[i])*nspec+s].N++
			}
			continue
		}
		buf := g.vbufs[ci][:bn]
		switch sp.Kind {
		case Count:
			for i := range buf {
				if !buf[i].IsNull() {
					g.cells[int(g.ords[i])*nspec+s].N++
				}
			}
		case Sum, Avg:
			for i := range buf {
				v := buf[i]
				if v.IsNull() {
					continue
				}
				c := &g.cells[int(g.ords[i])*nspec+s]
				c.N++
				switch v.Type() {
				case storage.Float:
					c.F += v.Float()
					c.T = storage.Float
				case storage.Int:
					c.I += v.Int()
					if c.T != storage.Float {
						c.T = storage.Int
					}
				}
			}
		case Min:
			for i := range buf {
				v := buf[i]
				if v.IsNull() {
					continue
				}
				c := &g.cells[int(g.ords[i])*nspec+s]
				c.N++
				if c.N == 1 {
					c.V = v
				} else {
					m.AddCompare(1)
					if storage.Compare(v, c.V) < 0 {
						c.V = v
					}
				}
			}
		case Max:
			for i := range buf {
				v := buf[i]
				if v.IsNull() {
					continue
				}
				c := &g.cells[int(g.ords[i])*nspec+s]
				c.N++
				if c.N == 1 {
					c.V = v
				} else {
					m.AddCompare(1)
					if storage.Compare(v, c.V) > 0 {
						c.V = v
					}
				}
			}
		}
	}
}

// RunRange is the flat-table aggregation over rows [lo, hi) of list — the
// per-worker partial the parallel executor runs over its chunk before the
// barrier merge.
func (g *Grouper) RunRange(list *storage.TempList, lo, hi int, groupCols []int, specs []Spec, m *meter.Counters) Result {
	g.reps = g.reps[:0]
	g.hashes = g.hashes[:0]
	g.cells = g.cells[:0]
	g.repkeys = g.repkeys[:0]
	n := hi - lo
	if n <= 0 {
		return Result{Reps: g.reps, Cells: g.cells}
	}
	g.planCols(groupCols, specs)
	g.ensureSlots(n)
	g.startTable(n)
	g.runFlat(list, lo, hi, groupCols, specs, m)
	g.finishShared(len(specs))
	m.AddGroup(int64(len(g.reps)))
	return Result{Reps: g.reps, Cells: g.cells}
}

// MergeInto folds worker partials into this grouper's table — the
// barrier step. Group identity is decided by the same key columns read
// through each partial's rep rows; cells combine with Cell.Merge. The
// merged group order is first appearance across partials in slice order,
// so a serial run and a parallel run agree on the group set (order may
// differ; ORDER BY, when present, runs downstream anyway).
func (g *Grouper) MergeInto(list *storage.TempList, groupCols []int, specs []Spec, partials []Result, m *meter.Counters) Result {
	nspec := len(specs)
	g.reps = g.reps[:0]
	g.hashes = g.hashes[:0]
	g.cells = g.cells[:0]
	total := 0
	for _, p := range partials {
		total += p.Groups()
	}
	if total == 0 {
		return Result{Reps: g.reps, Cells: g.cells}
	}
	g.ensureSlots(total)
	sz := tableSize(total)
	g.clearSlots(sz)
	for _, p := range partials {
		for pg, rep := range p.Reps {
			h := g.hashRow(list, int(rep), groupCols, m)
			ord := g.probe(list, h, rep, groupCols, nspec, sz, m)
			dst := g.cells[ord*nspec : ord*nspec+nspec]
			src := p.Cells[pg*nspec : pg*nspec+nspec]
			for s := 0; s < nspec; s++ {
				dst[s].Merge(specs[s].Kind, src[s], m)
			}
		}
	}
	m.AddGroup(int64(len(g.reps)))
	return Result{Reps: g.reps, Cells: g.cells}
}

// tableSize is the open-addressing table size for n keys: the smallest
// power of two ≥ 2n, so the load factor never exceeds 1/2 and linear
// probes stay short.
func tableSize(n int) int {
	sz := 1
	for sz < 2*n {
		sz <<= 1
	}
	return sz
}

// startTable opens a fresh probe table for up to n rows. The table is
// sized for the groups it will actually hold, not the rows that flow
// through it: it opens at most aggTableStart slots (L1-resident) and
// growTable doubles it as distinct groups appear. Sizing by input rows —
// the obvious choice — wastes a table: at 1M rows and 1k groups a
// row-sized table is 8MB of 99.9% empty slots, so every probe and the
// upfront clear are cache misses over dead memory.
func (g *Grouper) startTable(n int) {
	g.szMax = tableSize(n)
	g.sz = g.szMax
	if g.sz > aggTableStart {
		g.sz = aggTableStart
	}
	g.clearSlots(g.sz)
	g.ordBase = len(g.reps)
}

// aggTableStart is the initial probe-table size: 1024 int32 slots = 4KB.
const aggTableStart = 1024

// growTable doubles the active probe table and reinserts the current
// table's groups by their cached hashes — input rows are never rescanned,
// so a full growth ladder costs O(groups · log groups) slot writes total.
func (g *Grouper) growTable(m *meter.Counters) {
	g.sz *= 2
	g.clearSlots(g.sz)
	mask := uint64(g.sz - 1)
	for ord := g.ordBase; ord < len(g.reps); ord++ {
		idx := g.hashes[ord] & mask
		for g.slots[idx] != 0 {
			m.AddAggProbe(1)
			idx = (idx + 1) & mask
		}
		g.slots[idx] = int32(ord + 1)
	}
	m.AddMove(int64(len(g.reps) - g.ordBase))
}

func (g *Grouper) ensureSlots(maxRows int) {
	if need := tableSize(maxRows); cap(g.slots) < need {
		g.slots = make([]int32, need)
	}
}

func (g *Grouper) clearSlots(sz int) {
	s := g.slots[:sz]
	for i := range s {
		s[i] = 0
	}
}

// probe locates row's group in the current table, appending a new group
// (rep + zeroed cells) on first sight, and returns the group ordinal.
// Each slot visited is one AggProbes.
func (g *Grouper) probe(list *storage.TempList, h uint64, row int32, groupCols []int, nspec, sz int, m *meter.Counters) int {
	mask := uint64(sz - 1)
	idx := h & mask
	for {
		m.AddAggProbe(1)
		s := g.slots[idx]
		if s == 0 {
			ord := len(g.reps)
			g.slots[idx] = int32(ord + 1)
			g.reps = append(g.reps, row)
			g.hashes = append(g.hashes, h)
			g.cells = appendZeroCells(g.cells, nspec)
			return ord
		}
		ord := int(s - 1)
		if g.hashes[ord] == h && keysEqual(list, int(row), int(g.reps[ord]), groupCols, m) {
			return ord
		}
		idx = (idx + 1) & mask
	}
}

// appendZeroCells extends cells by n zeroed entries, reusing capacity.
func appendZeroCells(cells []Cell, n int) []Cell {
	for i := 0; i < n; i++ {
		cells = append(cells, Cell{})
	}
	return cells
}

// NaiveMapAgg is the baseline the bench experiment compares against: the
// straightforward Go implementation — a map keyed by the stringified
// group key, one heap-allocated state slice per group, first-occurrence
// group order. It produces the same Result shape (with a private backing
// array, not pooled scratch) so output identity can be asserted against
// the vectorized path.
func NaiveMapAgg(list *storage.TempList, groupCols []int, specs []Spec, m *meter.Counters) Result {
	nspec := len(specs)
	type group struct{ ord int }
	seen := make(map[string]group)
	var reps []int32
	var cells []Cell
	var keybuf []byte
	n := list.Len()
	for i := 0; i < n; i++ {
		keybuf = keybuf[:0]
		for _, c := range groupCols {
			keybuf = appendValueKey(keybuf, list.Value(i, c))
		}
		m.AddHash(1)
		gr, ok := seen[string(keybuf)]
		if !ok {
			gr = group{ord: len(reps)}
			seen[string(keybuf)] = gr
			reps = append(reps, int32(i))
			cells = appendZeroCells(cells, nspec)
		}
		base := gr.ord * nspec
		for s := range specs {
			sp := &specs[s]
			c := &cells[base+s]
			if sp.Col < 0 {
				c.N++
				continue
			}
			v := list.Value(i, sp.Col)
			if v.IsNull() {
				continue
			}
			c.N++
			c.absorb(sp.Kind, v, m)
		}
	}
	m.AddGroup(int64(len(reps)))
	return Result{Reps: reps, Cells: cells}
}

// appendValueKey encodes one value for the naive path's map key: a type
// tag plus the value's distinguishing bytes. Only equality matters here,
// so no order preservation is needed — but the tag keeps 1 and "1"
// distinct.
func appendValueKey(b []byte, v storage.Value) []byte {
	b = append(b, byte(v.Type()))
	switch v.Type() {
	case storage.Str:
		b = append(b, v.Str()...)
		b = append(b, 0)
	case storage.Null:
	default:
		u := storage.Hash(v)
		b = append(b, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32), byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return b
}

// Materialize builds the aggregation's output: a synthetic relation
// holding one tuple per group (group-key columns first, then one column
// per aggregate) wrapped in a single-source temp list, so the result
// flows through Row/RowValues/ORDER BY exactly like any selection. Column
// types are taken from the data (the first non-null occurrence); a column
// that never saw a non-null value is declared Int — nulls validate
// against any declared type.
func Materialize(list *storage.TempList, groupCols []int, specs []Spec, res Result, name string) (*storage.TempList, error) {
	desc := list.Descriptor()
	nspec := len(specs)
	ncols := len(groupCols) + nspec
	fields := make([]storage.FieldDef, 0, ncols)
	used := make(map[string]bool, ncols)
	uniq := func(n string) string {
		if n == "" {
			n = "col"
		}
		base, k := n, 2
		for used[n] {
			n = fmt.Sprintf("%s_%d", base, k)
			k++
		}
		used[n] = true
		return n
	}
	for _, c := range groupCols {
		t := storage.Int
		for _, rep := range res.Reps {
			if v := list.Value(int(rep), c); !v.IsNull() {
				t = v.Type()
				break
			}
		}
		fields = append(fields, storage.FieldDef{Name: uniq(desc.Cols[c].Name), Type: t})
	}
	for s := range specs {
		t := storage.Int
		switch specs[s].Kind {
		case Count:
			t = storage.Int
		case Avg:
			t = storage.Float
		default:
			for gr := 0; gr < res.Groups(); gr++ {
				if v := Final(specs[s].Kind, res.Cells[gr*nspec+s]); !v.IsNull() {
					t = v.Type()
					break
				}
			}
		}
		fields = append(fields, storage.FieldDef{Name: uniq(specs[s].Name), Type: t})
	}
	schema, err := storage.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	rel, err := storage.NewRelation(name, schema, storage.Config{}, storage.NewIDGen())
	if err != nil {
		return nil, err
	}
	cols := make([]storage.ColRef, ncols)
	for i, f := range fields {
		cols[i] = storage.ColRef{Source: 0, Field: i, Name: f.Name}
	}
	out, err := storage.NewTempListHint(storage.Descriptor{Sources: []string{name}, Cols: cols}, res.Groups())
	if err != nil {
		return nil, err
	}
	vals := make([]storage.Value, ncols)
	for gr := 0; gr < res.Groups(); gr++ {
		rep := int(res.Reps[gr])
		for i, c := range groupCols {
			vals[i] = list.Value(rep, c)
		}
		for s := range specs {
			vals[len(groupCols)+s] = Final(specs[s].Kind, res.Cells[gr*nspec+s])
		}
		t, err := rel.Insert(vals)
		if err != nil {
			return nil, err
		}
		out.AppendOne(t)
	}
	return out, nil
}
