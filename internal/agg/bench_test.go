package agg_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Microbenchmarks for the benchgate CI job: the naive map baseline
// against the flat and radix-partitioned groupers, and the bounded heap
// against the full sort. allocs/op is the hard regression signal — the
// warm grouper and the sort kernel must stay zero-alloc per run.

const benchRows = 256 << 10

func benchList(b *testing.B, groups int) *storage.TempList {
	b.Helper()
	rng := rand.New(rand.NewSource(1986))
	rows := make([]struct {
		dept string
		sal  *int64
	}, benchRows)
	for i := range rows {
		rows[i].dept = fmt.Sprintf("d%05d", rng.Intn(groups))
		if rng.Intn(20) != 0 {
			v := int64(rng.Intn(1 << 20))
			rows[i].sal = &v
		}
	}
	return deptSal(b, rows)
}

var benchSpecs = []agg.Spec{
	{Kind: agg.Count, Col: -1, Name: "COUNT(*)"},
	{Kind: agg.Sum, Col: 1, Name: "SUM(sal)"},
	{Kind: agg.Avg, Col: 1, Name: "AVG(sal)"},
}

func BenchmarkAggNaiveMap256k(b *testing.B) {
	list := benchList(b, 1024)
	var m meter.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.NaiveMapAgg(list, []int{0}, benchSpecs, &m)
	}
}

func BenchmarkAggFlatTable256k(b *testing.B) {
	list := benchList(b, 1024)
	var m meter.Counters
	g := agg.Get()
	defer agg.Put(g)
	g.Run(list, []int{0}, benchSpecs, nil, &m) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Run(list, []int{0}, benchSpecs, nil, &m)
	}
}

func BenchmarkAggRadixPartitioned256k(b *testing.B) {
	list := benchList(b, 1024)
	var m meter.Counters
	_, bits := plan.ChooseAggMethod(benchRows, plan.AggConfig{MinRows: 1})
	g := agg.Get()
	defer agg.Put(g)
	g.Run(list, []int{0}, benchSpecs, bits, &m) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Run(list, []int{0}, benchSpecs, bits, &m)
	}
}

func BenchmarkTopKHeap256k(b *testing.B) {
	list := benchList(b, 1024)
	keys := []exec.OrderKey{{Col: 1, Desc: true}}
	var m meter.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.TopKRows(list, keys, 10, &m)
	}
}

func BenchmarkTopKFullSort256k(b *testing.B) {
	list := benchList(b, 1024)
	keys := []exec.OrderKey{{Col: 1, Desc: true}}
	var m meter.Counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.OrderRows(list, keys, plan.SortRadixKey, &m)
	}
}
