package agg_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/meter"
	"repro/internal/plan"
	"repro/internal/storage"
)

// buildList materializes rows into a relation and wraps every tuple in a
// single-source temp list, the shape the operator consumes.
func buildList(t testing.TB, fields []storage.FieldDef, rows [][]storage.Value) *storage.TempList {
	t.Helper()
	rel, err := storage.NewRelation("r", storage.MustSchema(fields...), storage.Config{}, storage.NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]storage.ColRef, len(fields))
	for i, f := range fields {
		cols[i] = storage.ColRef{Source: 0, Field: i, Name: f.Name}
	}
	list := storage.MustTempListHint(storage.Descriptor{Sources: []string{"r"}, Cols: cols}, len(rows))
	for _, row := range rows {
		tp, err := rel.Insert(row)
		if err != nil {
			t.Fatal(err)
		}
		list.AppendOne(tp)
	}
	return list
}

// deptSal builds the test workload: (dept string, sal int) with the given
// rows; a nil sal pointer inserts NULL.
func deptSal(t testing.TB, rows []struct {
	dept string
	sal  *int64
}) *storage.TempList {
	t.Helper()
	fields := []storage.FieldDef{
		{Name: "dept", Type: storage.Str},
		{Name: "sal", Type: storage.Int},
	}
	vals := make([][]storage.Value, len(rows))
	for i, r := range rows {
		sal := storage.NullValue
		if r.sal != nil {
			sal = storage.IntValue(*r.sal)
		}
		vals[i] = []storage.Value{storage.StringValue(r.dept), sal}
	}
	return buildList(t, fields, vals)
}

func iptr(v int64) *int64 { return &v }

// canonical flattens a Result into key → finalized aggregate strings, so
// group order (which legitimately differs across methods) drops out.
func canonical(list *storage.TempList, groupCols []int, specs []agg.Spec, res agg.Result) map[string][]string {
	out := make(map[string][]string, res.Groups())
	for g := 0; g < res.Groups(); g++ {
		rep := int(res.Reps[g])
		key := ""
		for _, c := range groupCols {
			key += fmt.Sprintf("%v|", list.Value(rep, c))
		}
		finals := make([]string, len(specs))
		for s := range specs {
			finals[s] = fmt.Sprint(agg.Final(specs[s].Kind, res.Cells[g*len(specs)+s]))
		}
		out[key] = finals
	}
	return out
}

func sameCanonical(t *testing.T, name string, want, got map[string][]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d groups, want %d\n got=%v\nwant=%v", name, len(got), len(want), got, want)
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: group %q missing", name, k)
		}
		if fmt.Sprint(w) != fmt.Sprint(g) {
			t.Fatalf("%s: group %q = %v, want %v", name, k, g, w)
		}
	}
}

var allSpecs = []agg.Spec{
	{Kind: agg.Count, Col: -1, Name: "COUNT(*)"},
	{Kind: agg.Count, Col: 1, Name: "COUNT(sal)"},
	{Kind: agg.Sum, Col: 1, Name: "SUM(sal)"},
	{Kind: agg.Min, Col: 1, Name: "MIN(sal)"},
	{Kind: agg.Max, Col: 1, Name: "MAX(sal)"},
	{Kind: agg.Avg, Col: 1, Name: "AVG(sal)"},
}

// TestNullSkipping pins SQL's null semantics: every function skips NULL
// inputs including COUNT(col); COUNT(*) counts rows regardless; a group
// whose inputs were all NULL yields NULL for SUM/MIN/MAX/AVG and 0 for
// COUNT(col).
func TestNullSkipping(t *testing.T) {
	list := deptSal(t, []struct {
		dept string
		sal  *int64
	}{
		{"toy", iptr(10)}, {"toy", nil}, {"toy", iptr(30)},
		{"shoe", nil}, {"shoe", nil},
		{"linen", iptr(7)},
	})
	m := &meter.Counters{}
	g := agg.Get()
	defer agg.Put(g)
	res := g.Run(list, []int{0}, allSpecs, nil, m)
	got := canonical(list, []int{0}, allSpecs, res)
	want := map[string][]string{
		"toy|":   {"3", "2", "40", "10", "30", "20"},
		"shoe|":  {"2", "0", "NULL", "NULL", "NULL", "NULL"},
		"linen|": {"1", "1", "7", "7", "7", "7"},
	}
	sameCanonical(t, "null-skipping", want, got)
	if m.Groups != 3 {
		t.Fatalf("Groups=%d, want 3", m.Groups)
	}
	if m.AggProbes == 0 || m.HashCalls == 0 {
		t.Fatalf("probe/hash counters not metered: %+v", m)
	}
}

// TestMethodsAgree runs the same random workload through the flat table,
// the radix-partitioned plan, partial+merge, and the naive map baseline;
// all four must produce the identical group → finals mapping.
func TestMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	rows := make([]struct {
		dept string
		sal  *int64
	}, n)
	for i := range rows {
		rows[i].dept = fmt.Sprintf("d%03d", rng.Intn(257))
		if rng.Intn(10) != 0 { // ~10% NULL
			rows[i].sal = iptr(int64(rng.Intn(100000) - 50000))
		}
	}
	list := deptSal(t, rows)
	gcols := []int{0}

	m := &meter.Counters{}
	g := agg.Get()
	flat := canonical(list, gcols, allSpecs, g.Run(list, gcols, allSpecs, nil, m))

	// Force the partitioned plan regardless of input size.
	method, bits := plan.ChooseAggMethod(n, plan.AggConfig{MinRows: 1})
	if method != plan.AggRadixPartitioned || len(bits) == 0 {
		t.Fatalf("chooser with MinRows=1 did not force partitioning: %v %v", method, bits)
	}
	g2 := agg.Get()
	part := canonical(list, gcols, allSpecs, g2.Run(list, gcols, allSpecs, bits, m))

	// Partial aggregation over thirds, merged at the barrier.
	var partials []agg.Result
	var workers []*agg.Grouper
	for i := 0; i < 3; i++ {
		wg := agg.Get()
		workers = append(workers, wg)
		partials = append(partials, wg.RunRange(list, n*i/3, n*(i+1)/3, gcols, allSpecs, m))
	}
	g3 := agg.Get()
	merged := canonical(list, gcols, allSpecs, g3.MergeInto(list, gcols, allSpecs, partials, m))

	naive := canonical(list, gcols, allSpecs, agg.NaiveMapAgg(list, gcols, allSpecs, m))

	sameCanonical(t, "flat vs naive", naive, flat)
	sameCanonical(t, "partitioned vs naive", naive, part)
	sameCanonical(t, "merged vs naive", naive, merged)

	for _, wg := range workers {
		agg.Put(wg)
	}
	agg.Put(g)
	agg.Put(g2)
	agg.Put(g3)
}

// TestEmptyInput: zero rows yield zero groups on every path.
func TestEmptyInput(t *testing.T) {
	list := deptSal(t, nil)
	m := &meter.Counters{}
	g := agg.Get()
	defer agg.Put(g)
	if got := g.Run(list, []int{0}, allSpecs, nil, m).Groups(); got != 0 {
		t.Fatalf("flat over empty: %d groups", got)
	}
	if got := g.MergeInto(list, []int{0}, allSpecs, nil, m).Groups(); got != 0 {
		t.Fatalf("merge of no partials: %d groups", got)
	}
}

// TestMultiColumnKeys groups on (dept, sal) pairs — composite keys must
// not conflate (a,b) with (b,a) or equal-hash rows with different keys.
func TestMultiColumnKeys(t *testing.T) {
	list := deptSal(t, []struct {
		dept string
		sal  *int64
	}{
		{"a", iptr(1)}, {"a", iptr(1)}, {"a", iptr(2)},
		{"b", iptr(1)}, {"b", iptr(2)}, {"b", iptr(2)},
	})
	specs := []agg.Spec{{Kind: agg.Count, Col: -1, Name: "COUNT(*)"}}
	m := &meter.Counters{}
	g := agg.Get()
	defer agg.Put(g)
	res := g.Run(list, []int{0, 1}, specs, nil, m)
	if res.Groups() != 4 {
		t.Fatalf("groups=%d, want 4", res.Groups())
	}
	got := canonical(list, []int{0, 1}, specs, res)
	want := map[string][]string{
		"a|1|": {"2"}, "a|2|": {"1"}, "b|1|": {"1"}, "b|2|": {"2"},
	}
	sameCanonical(t, "composite keys", want, got)
}

// TestWarmGrouperZeroAlloc: a warmed grouper aggregates with zero heap
// allocations — the pooled-scratch contract the query hot path relies on.
func TestWarmGrouperZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([]struct {
		dept string
		sal  *int64
	}, 2048)
	for i := range rows {
		rows[i].dept = fmt.Sprintf("d%02d", rng.Intn(64))
		rows[i].sal = iptr(int64(rng.Intn(1000)))
	}
	list := deptSal(t, rows)
	m := &meter.Counters{}
	g := agg.Get()
	defer agg.Put(g)
	run := func() { g.Run(list, []int{0}, allSpecs, nil, m) }
	run() // warm the scratch
	if allocs := testing.AllocsPerRun(10, run); allocs > 0 {
		t.Fatalf("warm grouper allocates %.0f times per run, want 0", allocs)
	}
}

// TestMaterialize checks the synthetic output relation: group-key columns
// first, aggregate columns after, duplicate names deduplicated, and the
// row values equal to the finalized cells.
func TestMaterialize(t *testing.T) {
	list := deptSal(t, []struct {
		dept string
		sal  *int64
	}{
		{"toy", iptr(10)}, {"toy", iptr(30)}, {"shoe", nil},
	})
	specs := []agg.Spec{
		{Kind: agg.Count, Col: -1, Name: "COUNT(*)"},
		{Kind: agg.Avg, Col: 1, Name: "AVG(sal)"},
		{Kind: agg.Avg, Col: 1, Name: "AVG(sal)"}, // duplicate name → deduped
	}
	m := &meter.Counters{}
	g := agg.Get()
	defer agg.Put(g)
	res := g.Run(list, []int{0}, specs, nil, m)
	out, err := agg.Materialize(list, []int{0}, specs, res, "agg(r)")
	if err != nil {
		t.Fatal(err)
	}
	desc := out.Descriptor()
	names := make([]string, len(desc.Cols))
	for i, c := range desc.Cols {
		names[i] = c.Name
	}
	want := []string{"dept", "COUNT(*)", "AVG(sal)", "AVG(sal)_2"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("columns %v, want %v", names, want)
	}
	if out.Len() != 2 {
		t.Fatalf("rows=%d, want 2", out.Len())
	}
	byDept := map[string][]storage.Value{}
	for i := 0; i < out.Len(); i++ {
		byDept[out.Value(i, 0).Str()] = []storage.Value{
			out.Value(i, 1), out.Value(i, 2), out.Value(i, 3),
		}
	}
	toy := byDept["toy"]
	if toy[0].Int() != 2 || toy[1].Float() != 20 || toy[2].Float() != 20 {
		t.Fatalf("toy row: %v", toy)
	}
	shoe := byDept["shoe"]
	if shoe[0].Int() != 1 || !shoe[1].IsNull() || !shoe[2].IsNull() {
		t.Fatalf("shoe row: %v", shoe)
	}
}
