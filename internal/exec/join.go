package exec

import (
	"repro/internal/index"
	"repro/internal/mem"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tupleindex"

	"repro/internal/index/sortedarray"
	"repro/internal/index/ttree"
)

// JoinSpec configures a two-relation equijoin producing a temporary list
// of (outer, inner) tuple-pointer rows.
type JoinSpec struct {
	OuterName, InnerName   string
	OuterField, InnerField int              // join columns; SelfField joins on tuple identity
	Cols                   []storage.ColRef // output columns (may be empty: rows only)
	NodeSize               int              // node size for indices the join builds
	Meter                  *meter.Counters
	// Discard counts result rows without materializing them — for
	// benchmark sweeps whose cross-product outputs would not fit in
	// memory. RowsOut, when non-nil, receives the emitted row count — on
	// every completion path, including joins cut short by Limit.
	Discard bool
	RowsOut *int
	// Limit stops the join after emitting this many rows (0 = unlimited):
	// the early-exit path a LIMIT query takes. Every join method honors it
	// by unwinding its scans, and RowsOut still reports the rows actually
	// emitted.
	Limit int
	// Parallelism is the requested worker count for operators that have a
	// partition-parallel implementation (see internal/parallel). The
	// serial operator functions in this package ignore it — 1 preserves
	// the paper's exact serial algorithms — and the executor dispatches to
	// the parallel layer when it is greater than one.
	Parallelism int
	// Hint, when positive, is the expected result cardinality; the output
	// list is presized so no chunk growth happens while the join emits.
	Hint int
	// SortMethod selects the sort substrate for the Sort Merge join's
	// array builds. The zero value (plan.SortQuick) keeps the faithful
	// §3.1 comparator quicksort; plan.SortRadixKey routes the builds
	// through the normalized-key radix kernel (internal/sortkey). The
	// merge phase is identical either way.
	SortMethod plan.SortMethod
	// Prog, when non-nil, receives live rows-processed progress and
	// worker saturation from the parallel executor (the serial operators
	// in this package ignore it). Nil is the disabled state; every
	// Progress method tolerates it.
	Prog *obs.Progress
	// Sched is the query's admission handle on the shared morsel
	// scheduler (see SelectSpec.Sched). The serial operators ignore it.
	Sched *sched.Query
	// Mem is the query's memory reservation on the engine grant manager.
	// When non-nil, the radix join grants every partition's build table
	// before constructing it and degrades gracefully when a grant is
	// refused: build/probe role reversal on partition pairs whose
	// forecast build side turned out larger, recursive re-splitting of
	// partitions whose table would overflow the grant, and forced
	// overcommit (recorded) only when a partition cannot be split
	// smaller. Nil — the unbudgeted state — runs the exact pre-budget
	// code path.
	Mem *mem.Reservation
	// NoDefense disables the reversal/repartition degradation while
	// keeping budget-clamped planning: every partition pair builds its
	// forecast side in one table of whatever size it is. It exists for
	// A/B benchmarking of the defenses and as an escape hatch.
	NoDefense bool
}

// emitter materializes (or merely counts) join result rows.
type emitter struct {
	spec JoinSpec
	list *storage.TempList
	n    int
}

func (s JoinSpec) newEmitter() *emitter {
	return &emitter{spec: s, list: s.newList()}
}

// emit records one result row and reports whether the join should keep
// going — false once the Limit is reached. Join loops must propagate a
// false return by unwinding their scans.
func (e *emitter) emit(o, i *storage.Tuple) bool {
	e.n++
	if !e.spec.Discard {
		e.list.AppendPair(o, i) // zero-alloc: no Row header on the hot path
	}
	return e.more()
}

// more reports whether the emitter still accepts rows.
func (e *emitter) more() bool {
	return e.spec.Limit <= 0 || e.n < e.spec.Limit
}

// done finalizes the result. It is the single exit point of every join
// method — early-exit paths (Limit, a Scan cut short) flow through it too,
// so RowsOut always reflects the rows actually emitted.
func (e *emitter) done() *storage.TempList {
	if e.spec.RowsOut != nil {
		*e.spec.RowsOut = e.n
	}
	return e.list
}

func (s JoinSpec) newList() *storage.TempList {
	if s.Hint > 0 {
		return storage.MustTempListHint(PairDescriptor(s.OuterName, s.InnerName, s.Cols), s.Hint)
	}
	return storage.MustTempList(PairDescriptor(s.OuterName, s.InnerName, s.Cols))
}

func (s JoinSpec) buildNodeSize() int {
	if s.NodeSize > 0 {
		return s.NodeSize
	}
	return 4
}

// NestedLoopsJoin is the pure O(N²) join: each outer tuple scans the
// entire inner relation. §3.3.4: "unless one plans to generate full cross
// products on a regular basis, nested loops join should simply never be
// considered as a practical join method for a main memory DBMS."
func NestedLoopsJoin(outer, inner Source, spec JoinSpec) *storage.TempList {
	out := spec.newEmitter()
	outer.Scan(func(o *storage.Tuple) bool {
		ko := tupleindex.KeyOf(o, spec.OuterField)
		inner.Scan(func(i *storage.Tuple) bool {
			spec.Meter.AddCompare(1)
			if storage.Equal(ko, tupleindex.KeyOf(i, spec.InnerField)) {
				return out.emit(o, i)
			}
			return true
		})
		return out.more()
	})
	return out.done()
}

// HashJoin builds a chained-bucket hash table on the inner join column —
// the build cost is always included, "because we feel that a hash table
// index is less likely to exist than a T Tree index" (§3.3.2) — then
// probes it with each outer tuple.
func HashJoin(outer, inner Source, spec JoinSpec) *storage.TempList {
	ns := spec.buildNodeSize()
	ht := tupleindex.NewChainHash(tupleindex.Options{
		Field:    spec.InnerField,
		NodeSize: ns,
		// Capacity is a hint in ENTRIES, not slots: chainhash sizes its
		// directory at Capacity/NodeSize slots so a table loaded to its
		// hint averages one full chain node per slot. Sized for exactly
		// the inner cardinality, the average chain length is ≈ 1 node and
		// the lookup cost is the paper's fixed k — "much smaller than
		// log2(|R2|) but larger than 2" (§3.3.4). (A previous revision
		// passed inner.Len()*NodeSize here, silently allocating NodeSize×
		// the intended directory and pushing k below the paper's model.)
		Capacity: maxInt(inner.Len(), 1),
		Meter:    spec.Meter,
	})
	buf := storage.GetBatch()
	ScanBatches(inner, buf, func(block storage.TupleBatch) bool {
		spec.Meter.AddBatch(1)
		for _, t := range block {
			ht.Insert(t)
		}
		return true
	})
	storage.PutBatch(buf)
	return probeHash(outer, ht, spec)
}

// HashJoinExisting probes an already-built hash index on the inner join
// column, the case where the hash index happens to exist as a regular
// index.
func HashJoinExisting(outer Source, inner tupleindex.Hashed, spec JoinSpec) *storage.TempList {
	return probeHash(outer, inner, spec)
}

// probeHash drains the outer source in blocks and, per outer tuple, pulls
// the whole bucket match set in one SearchKeyAppend call before emitting —
// the probe inner loop runs over two cache-resident blocks instead of
// bouncing through nested callbacks. §3.1 hash and comparison counts are
// identical to the tuple-at-a-time formulation.
func probeHash(outer Source, inner tupleindex.Hashed, spec JoinSpec) *storage.TempList {
	out := spec.newEmitter()
	buf := storage.GetBatch()
	matches := storage.GetBatch()
	// One match closure for the whole probe, capturing the mutable probe
	// key — a per-tuple closure literal would heap-allocate on every probe.
	var ko storage.Value
	fi := spec.InnerField
	match := func(i *storage.Tuple) bool {
		spec.Meter.AddCompare(1)
		return storage.Equal(tupleindex.KeyOf(i, fi), ko)
	}
	ScanBatches(outer, buf, func(block storage.TupleBatch) bool {
		spec.Meter.AddBatch(1)
		for _, o := range block {
			ko = tupleindex.KeyOf(o, spec.OuterField)
			spec.Meter.AddHash(1)
			matches = index.SearchKeyAppend[*storage.Tuple](inner, storage.Hash(ko), match, matches[:0])
			for _, i := range matches {
				if !out.emit(o, i) {
					return false
				}
			}
		}
		return true
	})
	storage.PutBatch(matches)
	storage.PutBatch(buf)
	return out.done()
}

// TreeJoin uses an existing ordered index (in the MM-DBMS, a T Tree) on
// the inner join column: each outer tuple searches the tree, then scans in
// both directions for duplicates. Building the tree for the join is never
// worthwhile — "a T Tree costs more to build and a hash table is faster
// for single value retrieval" (§3.3.2) — so no build variant exists.
func TreeJoin(outer Source, inner tupleindex.Ordered, spec JoinSpec) *storage.TempList {
	out := spec.newEmitter()
	buf := storage.GetBatch()
	matches := storage.GetBatch()
	// One position closure for the whole probe (tupleindex.PosFor would
	// allocate a fresh closure per outer tuple).
	var ko storage.Value
	fi := spec.InnerField
	pos := func(t *storage.Tuple) int { return storage.Compare(tupleindex.KeyOf(t, fi), ko) }
	ScanBatches(outer, buf, func(block storage.TupleBatch) bool {
		spec.Meter.AddBatch(1)
		for _, o := range block {
			ko = tupleindex.KeyOf(o, spec.OuterField)
			matches = index.SearchAllAppend[*storage.Tuple](inner, pos, matches[:0])
			for _, i := range matches {
				if !out.emit(o, i) {
					return false
				}
			}
		}
		return true
	})
	storage.PutBatch(matches)
	storage.PutBatch(buf)
	return out.done()
}

// SortMergeJoin is the main-memory variant of [BlE77]: build array indices
// on both join columns (append + quicksort with the insertion-sort
// cutoff), then merge. The build cost is part of the method.
func SortMergeJoin(outer, inner Source, spec JoinSpec) *storage.TempList {
	build := tupleindex.BuildArray
	if spec.SortMethod == plan.SortRadixKey {
		build = tupleindex.BuildArrayRadix
	}
	ao := build(tupleindex.Options{Field: spec.OuterField, Meter: spec.Meter}, Tuples(outer))
	ai := build(tupleindex.Options{Field: spec.InnerField, Meter: spec.Meter}, Tuples(inner))
	return MergeJoinArrays(ao, ai, spec)
}

// MergeJoinArrays merges two existing sorted-array indices.
func MergeJoinArrays(outer, inner *sortedarray.Array[*storage.Tuple], spec JoinSpec) *storage.TempList {
	out := spec.newEmitter()
	a := &arrayCursor{arr: outer}
	b := &arrayCursor{arr: inner}
	mergeJoin(a, b, spec, out)
	return out.done()
}

// TreeMergeJoin merges two existing T Tree indices in key order. With both
// indices present this was the paper's best method in almost all cases;
// building them for the join is never worthwhile (§3.3.5).
func TreeMergeJoin(outer, inner *ttree.Tree[*storage.Tuple], spec JoinSpec) *storage.TempList {
	out := spec.newEmitter()
	ac := outer.First()
	bc := inner.First()
	mergeJoin(&treeCursor{c: ac}, &treeCursor{c: bc}, spec, out)
	return out.done()
}

// PrecomputedJoin follows the tuple-pointer foreign-key field (§2.1): the
// joining tuples are already paired, so result rows are extracted from the
// outer relation alone with no comparisons. Tuples with a null pointer
// have no match and produce no row.
func PrecomputedJoin(outer Source, refField int, spec JoinSpec) *storage.TempList {
	out := spec.newEmitter()
	buf := storage.GetBatch()
	ScanBatches(outer, buf, func(block storage.TupleBatch) bool {
		spec.Meter.AddBatch(1)
		for _, o := range block {
			v := o.Field(refField)
			if !v.IsNull() && !out.emit(o, v.Ref()) {
				return false
			}
		}
		return true
	})
	storage.PutBatch(buf)
	return out.done()
}

// joinCursor is the merge join's ordered iterator; clones mark the start
// of an equal group for rescanning.
type joinCursor interface {
	valid() bool
	tuple() *storage.Tuple
	next()
	clone() joinCursor
}

type arrayCursor struct {
	arr *sortedarray.Array[*storage.Tuple]
	i   int
}

func (c *arrayCursor) valid() bool           { return c.i < c.arr.Len() }
func (c *arrayCursor) tuple() *storage.Tuple { return c.arr.At(c.i) }
func (c *arrayCursor) next()                 { c.i++ }
func (c *arrayCursor) clone() joinCursor     { cp := *c; return &cp }

type treeCursor struct{ c ttree.Cursor[*storage.Tuple] }

func (c *treeCursor) valid() bool           { return c.c.Valid() }
func (c *treeCursor) tuple() *storage.Tuple { return c.c.Entry() }
func (c *treeCursor) next()                 { c.c.Next() }
func (c *treeCursor) clone() joinCursor     { cp := *c; return &cp }

// mergeJoin is the merge phase of [BlE77] with duplicate handling: on a
// key match it emits the cross product of the two equal groups by
// rescanning the inner group from a cloned cursor for every outer tuple in
// its group.
func mergeJoin(a, b joinCursor, spec JoinSpec, out *emitter) {
	fo, fi := spec.OuterField, spec.InnerField
	for a.valid() && b.valid() && out.more() {
		spec.Meter.AddCompare(1)
		v := tupleindex.KeyOf(b.tuple(), fi)
		switch c := storage.Compare(tupleindex.KeyOf(a.tuple(), fo), v); {
		case c < 0:
			a.next()
		case c > 0:
			b.next()
		default:
			// Cross product of the equal groups.
			for a.valid() && storage.Compare(tupleindex.KeyOf(a.tuple(), fo), v) == 0 {
				spec.Meter.AddCompare(1)
				o := a.tuple()
				bb := b.clone()
				for bb.valid() && storage.Compare(tupleindex.KeyOf(bb.tuple(), fi), v) == 0 {
					spec.Meter.AddCompare(1)
					if !out.emit(o, bb.tuple()) {
						return
					}
					bb.next()
				}
				a.next()
			}
			for b.valid() && storage.Compare(tupleindex.KeyOf(b.tuple(), fi), v) == 0 {
				spec.Meter.AddCompare(1)
				b.next()
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NonEquiOp is a non-equality join comparison.
type NonEquiOp int

// Non-equijoin operators: outer.field OP inner.field. §3.3.5: such joins
// "can make use of ordering of the data, so the Tree Join should be used".
const (
	JoinLt NonEquiOp = iota
	JoinLe
	JoinGt
	JoinGe
)

// String renders the operator.
func (o NonEquiOp) String() string {
	switch o {
	case JoinLt:
		return "<"
	case JoinLe:
		return "<="
	case JoinGt:
		return ">"
	default:
		return ">="
	}
}

// NonEquiTreeJoin joins outer with inner on outer.field OP inner.field
// using an existing ordered index on the inner join column: each outer
// tuple turns into one range scan of the index.
func NonEquiTreeJoin(outer Source, inner tupleindex.Ordered, op NonEquiOp, spec JoinSpec) *storage.TempList {
	out := spec.newEmitter()
	all := func(*storage.Tuple) int { return 0 }
	outer.Scan(func(o *storage.Tuple) bool {
		ko := tupleindex.KeyOf(o, spec.OuterField)
		pos := tupleindex.PosFor(ko, spec.InnerField)
		emit := func(i *storage.Tuple) bool {
			return out.emit(o, i)
		}
		// The inner entries matching "ko OP inner" form one contiguous key
		// range of the index.
		switch op {
		case JoinLt: // inner > ko
			inner.Range(func(t *storage.Tuple) int {
				if pos(t) > 0 {
					return 0 // at or above the first strictly-greater entry
				}
				return -1
			}, all, emit)
		case JoinLe: // inner >= ko
			inner.Range(pos, all, emit)
		case JoinGt: // inner < ko
			inner.Range(all, func(t *storage.Tuple) int {
				if pos(t) < 0 {
					return 0 // still below ko: inside the range
				}
				return 1
			}, emit)
		default: // JoinGe: inner <= ko
			inner.Range(all, pos, emit)
		}
		return out.more()
	})
	return out.done()
}

// NonEquiNestedLoopsJoin is the fallback when no ordered index exists.
func NonEquiNestedLoopsJoin(outer, inner Source, op NonEquiOp, spec JoinSpec) *storage.TempList {
	out := spec.newEmitter()
	outer.Scan(func(o *storage.Tuple) bool {
		ko := tupleindex.KeyOf(o, spec.OuterField)
		inner.Scan(func(i *storage.Tuple) bool {
			spec.Meter.AddCompare(1)
			c := storage.Compare(ko, tupleindex.KeyOf(i, spec.InnerField))
			match := false
			switch op {
			case JoinLt:
				match = c < 0
			case JoinLe:
				match = c <= 0
			case JoinGt:
				match = c > 0
			default:
				match = c >= 0
			}
			if match {
				return out.emit(o, i)
			}
			return true
		})
		return out.more()
	})
	return out.done()
}
