package exec

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/workload"
)

// TestJoinLimitEarlyExit: a Limit must stop every join method after
// exactly that many rows, unwinding the scans — and RowsOut must still be
// written on the early-exit path (the bug was that done() only ran after a
// full scan, leaving RowsOut stale when a join was cut short).
func TestJoinLimitEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	col, _ := workload.Build(workload.Spec{Cardinality: 500, DuplicatePct: 40, Sigma: workload.Moderate}, rng)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", col.Values)
	r2 := buildRelation(t, ids, "r2", col.Values)
	s1, s2 := arrayOn(r1, 0), arrayOn(r2, 0)
	t1, t2 := ttreeOn(r1, 0), ttreeOn(r2, 0)

	full := HashJoin(s1, s2, JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}).Len()
	if full < 10 {
		t.Fatalf("workload produced only %d join rows", full)
	}
	for _, limit := range []int{1, 7, full - 1, full, full + 10} {
		want := limit
		if limit > full {
			want = full
		}
		var rows int
		spec := JoinSpec{
			OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0,
			Limit: limit, RowsOut: &rows,
		}
		for name, join := range map[string]func() *storage.TempList{
			"nested":     func() *storage.TempList { return NestedLoopsJoin(s1, s2, spec) },
			"hash":       func() *storage.TempList { return HashJoin(s1, s2, spec) },
			"tree":       func() *storage.TempList { return TreeJoin(s1, t2.Index, spec) },
			"sortmerge":  func() *storage.TempList { return SortMergeJoin(s1, s2, spec) },
			"treemerge":  func() *storage.TempList { return TreeMergeJoin(t1.Index.(ttreeTree), t2.Index.(ttreeTree), spec) },
			"nonequi-lt": func() *storage.TempList { return NonEquiTreeJoin(s1, t2.Index, JoinLt, spec) },
			"nonequi-nl": func() *storage.TempList { return NonEquiNestedLoopsJoin(s1, s2, JoinGe, spec) },
		} {
			rows = -1
			l := join()
			if name == "nonequi-lt" || name == "nonequi-nl" {
				// Different full count; only the early-exit contract matters.
				if l.Len() > limit {
					t.Fatalf("%s limit=%d: emitted %d rows", name, limit, l.Len())
				}
				if rows != l.Len() {
					t.Fatalf("%s limit=%d: RowsOut=%d but %d rows emitted", name, limit, rows, l.Len())
				}
				continue
			}
			if l.Len() != want {
				t.Fatalf("%s limit=%d: %d rows, want %d", name, limit, l.Len(), want)
			}
			if rows != want {
				t.Fatalf("%s limit=%d: RowsOut=%d, want %d (early exit must still write it)", name, limit, rows, want)
			}
		}
	}
}

// TestPrecomputedJoinLimit covers the remaining method (it needs a Ref
// schema, so it gets its own fixture).
func TestPrecomputedJoinLimit(t *testing.T) {
	ids := storage.NewIDGen()
	inner := buildRelation(t, ids, "inner", []int64{1, 2, 3, 4, 5})
	var innerTuples []*storage.Tuple
	inner.ScanPhysical(func(tp *storage.Tuple) bool { innerTuples = append(innerTuples, tp); return true })
	outerSchema := storage.MustSchema(
		storage.FieldDef{Name: "val", Type: storage.Int},
		storage.FieldDef{Name: "ref", Type: storage.Ref, ForeignKey: "inner"},
	)
	outer, _ := storage.NewRelation("outer", outerSchema, storage.Config{}, ids)
	for i := 0; i < 20; i++ {
		outer.Insert([]storage.Value{storage.IntValue(int64(i)), storage.RefValue(innerTuples[i%5])})
	}
	var rows int
	spec := JoinSpec{OuterName: "outer", InnerName: "inner", Limit: 3, RowsOut: &rows}
	l := PrecomputedJoin(arrayOn(outer, 0), 1, spec)
	if l.Len() != 3 || rows != 3 {
		t.Fatalf("precomputed limit: %d rows, RowsOut=%d, want 3/3", l.Len(), rows)
	}
}

// TestDiscardWithLimit: Discard and Limit compose — counting stops at the
// limit and RowsOut reports it.
func TestDiscardWithLimit(t *testing.T) {
	ids := storage.NewIDGen()
	r := buildRelation(t, ids, "r", []int64{1, 1, 1, 1, 1})
	s := arrayOn(r, 0)
	var rows int
	spec := JoinSpec{
		OuterName: "r", InnerName: "r", OuterField: 0, InnerField: 0,
		Discard: true, Limit: 4, RowsOut: &rows,
	}
	if l := HashJoin(s, s, spec); l.Len() != 0 {
		t.Fatalf("discard materialized %d rows", l.Len())
	}
	if rows != 4 {
		t.Fatalf("RowsOut=%d, want 4 (cross product is 25, limit 4)", rows)
	}
}

// TestHashJoinDirectorySizing is the regression for the build-side
// capacity bug: HashJoin passes the inner cardinality as the capacity hint
// (in entries), and chainhash sizes its directory at hint/NodeSize slots,
// so a full table averages one chain node per slot — the fixed lookup
// cost k of §3.3.4. The buggy revision passed inner.Len()*NodeSize,
// allocating NodeSize× the directory: node allocations ballooned to ~0.63
// per entry (one mostly-empty node per occupied slot) and probes visited
// fewer than one node on average (k below the paper's "larger than 2"
// model). Both symptoms are asserted away here.
func TestHashJoinDirectorySizing(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	n := 4096
	vals := workload.UniquePool(n, rng, nil)
	ids := storage.NewIDGen()
	r := buildRelation(t, ids, "r", vals)
	s := arrayOn(r, 0)
	m := newMeter()
	HashJoin(s, s, withMeter(JoinSpec{OuterName: "r", InnerName: "r", OuterField: 0, InnerField: 0}, m))

	// Build: n entries in n/NodeSize slots → ~n/NodeSize·E[⌈Poisson(4)/4⌉]
	// ≈ 0.35n node allocations. The buggy n-slot directory allocated
	// ≈ (1-1/e)n ≈ 0.63n.
	if m.Allocations > int64(n/2) {
		t.Fatalf("build allocated %d chain nodes for %d entries — directory oversized (want < n/2)", m.Allocations, n)
	}
	// Probe: average chain length at load factor 1 is ≈ 1.35 nodes, so n
	// probes visit at least n nodes. The buggy sizing averaged ≈ 0.63.
	if m.NodesVisited < int64(n) {
		t.Fatalf("probes visited %d nodes for %d probes — chains shorter than 1 node, directory oversized", m.NodesVisited, n)
	}
	if m.NodesVisited > int64(3*n) {
		t.Fatalf("probes visited %d nodes for %d probes — chains far over 1 node, directory undersized", m.NodesVisited, n)
	}
}
