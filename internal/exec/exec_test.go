package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index/ttree"
	"repro/internal/meter"
	"repro/internal/storage"
	"repro/internal/tupleindex"
	"repro/internal/workload"
)

// ttreeTree shortens the assertion from the Ordered interface back to the
// concrete T Tree the merge join needs.
type ttreeTree = *ttree.Tree[*storage.Tuple]

func newMeter() *meter.Counters { return &meter.Counters{} }

func withMeter(s JoinSpec, m *meter.Counters) JoinSpec {
	s.Meter = m
	return s
}

// buildRelation creates a relation with schema (val int, seq int) holding
// the given join-column values.
func buildRelation(t testing.TB, ids *storage.IDGen, name string, values []int64) *storage.Relation {
	t.Helper()
	schema := storage.MustSchema(
		storage.FieldDef{Name: "val", Type: storage.Int},
		storage.FieldDef{Name: "seq", Type: storage.Int},
	)
	rel, err := storage.NewRelation(name, schema, storage.Config{}, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if _, err := rel.Insert([]storage.Value{storage.IntValue(v), storage.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// arrayOn builds the relation's scan index (the paper: "an array index was
// used to scan the relations in our tests").
func arrayOn(rel *storage.Relation, field int) *OrderedScan {
	var tuples []*storage.Tuple
	rel.ScanPhysical(func(tp *storage.Tuple) bool { tuples = append(tuples, tp); return true })
	arr := tupleindex.BuildArray(tupleindex.Options{Field: field}, tuples)
	return &OrderedScan{Index: arr}
}

// ttreeOn builds a T Tree index on the field.
func ttreeOn(rel *storage.Relation, field int) *OrderedScan {
	tt := tupleindex.NewTTree(tupleindex.Options{Field: field})
	rel.ScanPhysical(func(tp *storage.Tuple) bool { tt.Insert(tp); return true })
	return &OrderedScan{Index: tt}
}

// joinResultSet canonicalizes a join result for comparison: a multiset of
// (outer val, outer seq, inner val, inner seq).
func joinResultSet(t testing.TB, l *storage.TempList) map[[4]int64]int {
	t.Helper()
	out := map[[4]int64]int{}
	l.Scan(func(_ int, row storage.Row) bool {
		k := [4]int64{
			row[0].Field(0).Int(), row[0].Field(1).Int(),
			row[1].Field(0).Int(), row[1].Field(1).Int(),
		}
		out[k]++
		return true
	})
	return out
}

// referenceJoin computes the expected multiset with a plain nested map.
func referenceJoin(outerVals, innerVals []int64) int {
	byVal := map[int64]int{}
	for _, v := range innerVals {
		byVal[v]++
	}
	n := 0
	for _, v := range outerVals {
		n += byVal[v]
	}
	return n
}

func sameResults(a, b map[[4]int64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestAllJoinMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name       string
		n1, n2     int
		dup1, dup2 float64
		sigma      float64
		semijoin   float64
	}{
		{"keys-equal-size", 400, 400, 0, 0, workload.NearUniform, 100},
		{"keys-small-inner", 400, 40, 0, 0, workload.NearUniform, 100},
		{"keys-small-outer", 40, 400, 0, 0, workload.NearUniform, 100},
		{"dups-uniform", 300, 300, 50, 50, workload.NearUniform, 100},
		{"dups-skewed", 200, 200, 60, 60, workload.Skewed, 100},
		{"low-selectivity", 300, 300, 50, 50, workload.NearUniform, 10},
		{"zero-selectivity", 100, 100, 0, 0, workload.NearUniform, 0},
		{"tiny", 1, 1, 0, 0, workload.NearUniform, 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			col1, err := workload.Build(workload.Spec{Cardinality: c.n1, DuplicatePct: c.dup1, Sigma: c.sigma}, rng)
			if err != nil {
				t.Fatal(err)
			}
			col2, err := workload.BuildDerived(workload.Spec{Cardinality: c.n2, DuplicatePct: c.dup2, Sigma: c.sigma}, col1, c.semijoin, rng)
			if err != nil {
				t.Fatal(err)
			}
			ids := storage.NewIDGen()
			r1 := buildRelation(t, ids, "r1", col1.Values)
			r2 := buildRelation(t, ids, "r2", col2.Values)
			spec := JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}

			s1, s2 := arrayOn(r1, 0), arrayOn(r2, 0)
			t1, t2 := ttreeOn(r1, 0), ttreeOn(r2, 0)

			results := map[string]*storage.TempList{
				"nested":    NestedLoopsJoin(s1, s2, spec),
				"hash":      HashJoin(s1, s2, spec),
				"tree":      TreeJoin(s1, t2.Index, spec),
				"sortmerge": SortMergeJoin(s1, s2, spec),
				"treemerge": TreeMergeJoin(t1.Index.(ttreeTree), t2.Index.(ttreeTree), spec),
			}
			wantCount := referenceJoin(col1.Values, col2.Values)
			var ref map[[4]int64]int
			for name, l := range results {
				if l.Len() != wantCount {
					t.Errorf("%s: %d rows, want %d", name, l.Len(), wantCount)
					continue
				}
				set := joinResultSet(t, l)
				if ref == nil {
					ref = set
					continue
				}
				if !sameResults(ref, set) {
					t.Errorf("%s: result multiset differs", name)
				}
			}
		})
	}
}

func TestJoinOutputDescriptor(t *testing.T) {
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", []int64{1, 2})
	r2 := buildRelation(t, ids, "r2", []int64{2, 3})
	spec := JoinSpec{
		OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0,
		Cols: []storage.ColRef{
			{Source: 0, Field: 1, Name: "r1.seq"},
			{Source: 1, Field: 1, Name: "r2.seq"},
		},
	}
	l := HashJoin(arrayOn(r1, 0), arrayOn(r2, 0), spec)
	if l.Len() != 1 {
		t.Fatalf("rows=%d", l.Len())
	}
	vals := l.RowValues(0)
	if vals[0].Int() != 1 || vals[1].Int() != 0 {
		t.Fatalf("row = %v", vals)
	}
}

func TestSelectionAccessPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	col, err := workload.Build(workload.Spec{Cardinality: 2000, DuplicatePct: 40, Sigma: workload.Moderate}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ids := storage.NewIDGen()
	rel := buildRelation(t, ids, "r", col.Values)
	spec := SelectSpec{RelName: "r", Schema: rel.Schema()}

	tt := ttreeOn(rel, 0)
	mh := tupleindex.NewMLH(tupleindex.Options{Field: 0})
	rel.ScanPhysical(func(tp *storage.Tuple) bool { mh.Insert(tp); return true })
	arr := arrayOn(rel, 0)

	keys := append([]int64{}, col.Distinct[0], col.Distinct[len(col.Distinct)/2], -1 /* absent */)
	for _, k := range keys {
		key := storage.IntValue(k)
		byTree := SelectEqTree(tt.Index, 0, key, spec)
		byHash := SelectEqHash(mh, 0, key, spec)
		byScan := SelectScan(arr, func(tp *storage.Tuple) bool {
			return storage.Equal(tp.Field(0), key)
		}, spec)
		want := 0
		for _, v := range col.Values {
			if v == k {
				want++
			}
		}
		if byTree.Len() != want || byHash.Len() != want || byScan.Len() != want {
			t.Fatalf("key %d: tree=%d hash=%d scan=%d want=%d", k, byTree.Len(), byHash.Len(), byScan.Len(), want)
		}
	}
}

func TestSelectRange(t *testing.T) {
	ids := storage.NewIDGen()
	var vals []int64
	for i := int64(0); i < 100; i++ {
		vals = append(vals, i)
	}
	rel := buildRelation(t, ids, "r", vals)
	tt := ttreeOn(rel, 0)
	spec := SelectSpec{RelName: "r", Schema: rel.Schema()}
	lo, hi := storage.IntValue(10), storage.IntValue(19)
	l := SelectRange(tt.Index, 0, &lo, &hi, spec)
	if l.Len() != 10 {
		t.Fatalf("rows=%d", l.Len())
	}
	// Ordered output.
	prev := int64(-1)
	l.Scan(func(_ int, row storage.Row) bool {
		v := row[0].Field(0).Int()
		if v < 10 || v > 19 || v <= prev {
			t.Fatalf("bad range value %d after %d", v, prev)
		}
		prev = v
		return true
	})
	// Open bounds.
	if l := SelectRange(tt.Index, 0, nil, &hi, spec); l.Len() != 20 {
		t.Fatalf("open-lo rows=%d", l.Len())
	}
	if l := SelectRange(tt.Index, 0, &lo, nil, spec); l.Len() != 90 {
		t.Fatalf("open-hi rows=%d", l.Len())
	}
	if l := SelectRange(tt.Index, 0, nil, nil, spec); l.Len() != 100 {
		t.Fatalf("open-open rows=%d", l.Len())
	}
}

func TestPrecomputedAndPointerJoin(t *testing.T) {
	// The Employee/Department queries of §2.1.
	ids := storage.NewIDGen()
	deptSchema := storage.MustSchema(
		storage.FieldDef{Name: "name", Type: storage.Str},
		storage.FieldDef{Name: "id", Type: storage.Int},
	)
	empSchema := storage.MustSchema(
		storage.FieldDef{Name: "name", Type: storage.Str},
		storage.FieldDef{Name: "age", Type: storage.Int},
		storage.FieldDef{Name: "dept", Type: storage.Ref, ForeignKey: "dept"},
	)
	dept, _ := storage.NewRelation("dept", deptSchema, storage.Config{}, ids)
	emp, _ := storage.NewRelation("emp", empSchema, storage.Config{}, ids)
	toy, _ := dept.Insert([]storage.Value{storage.StringValue("Toy"), storage.IntValue(459)})
	shoe, _ := dept.Insert([]storage.Value{storage.StringValue("Shoe"), storage.IntValue(409)})
	linen, _ := dept.Insert([]storage.Value{storage.StringValue("Linen"), storage.IntValue(411)})
	for _, e := range []struct {
		name string
		age  int64
		dep  *storage.Tuple
	}{
		{"Dave", 66, toy}, {"Suzan", 27, toy}, {"Yaman", 70, linen}, {"Jane", 47, shoe}, {"Cindy", 22, nil},
	} {
		if _, err := emp.Insert([]storage.Value{
			storage.StringValue(e.name), storage.IntValue(e.age), storage.RefValue(e.dep),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Query 1: employees over 65 with their department names, via the
	// precomputed join (selection then pointer dereference).
	empAge := ttreeOn(emp, 1)
	spec := SelectSpec{RelName: "emp", Schema: empSchema}
	lo := storage.IntValue(66)
	over65 := SelectRange(empAge.Index, 1, &lo, nil, spec)
	q1 := PrecomputedJoin(ListColumn{List: over65, Column: 0}, 2, JoinSpec{
		OuterName: "emp", InnerName: "dept", Cols: []storage.ColRef{
			{Source: 0, Field: 0, Name: "Emp.Name"},
			{Source: 0, Field: 1, Name: "Emp.Age"},
			{Source: 1, Field: 0, Name: "Dept.Name"},
		},
	})
	if q1.Len() != 2 {
		t.Fatalf("Query 1 rows = %d", q1.Len())
	}
	got := map[string]string{}
	for i := 0; i < q1.Len(); i++ {
		vals := q1.RowValues(i)
		got[vals[0].Str()] = vals[2].Str()
	}
	if got["Dave"] != "Toy" || got["Yaman"] != "Linen" {
		t.Fatalf("Query 1 = %v", got)
	}

	// Query 2: employees in the Toy or Shoe departments — select on dept,
	// then join comparing tuple pointers rather than data (§2.1).
	deptName := ttreeOn(dept, 0)
	dspec := SelectSpec{RelName: "dept", Schema: deptSchema}
	toyShoe := storage.MustTempList(storage.Descriptor{Sources: []string{"dept"}})
	for _, name := range []string{"Toy", "Shoe"} {
		l := SelectEqTree(deptName.Index, 0, storage.StringValue(name), dspec)
		l.Scan(func(_ int, row storage.Row) bool { toyShoe.Append(row); return true })
	}
	empScan := arrayOn(emp, 1)
	q2 := HashJoin(ListColumn{List: toyShoe, Column: 0}, empScan, JoinSpec{
		OuterName: "dept", InnerName: "emp",
		OuterField: tupleindex.SelfField, InnerField: 2,
		Cols: []storage.ColRef{{Source: 1, Field: 0, Name: "Emp.Name"}},
	})
	if q2.Len() != 3 {
		t.Fatalf("Query 2 rows = %d", q2.Len())
	}
	names := map[string]bool{}
	for i := 0; i < q2.Len(); i++ {
		names[q2.RowValues(i)[0].Str()] = true
	}
	for _, want := range []string{"Dave", "Suzan", "Jane"} {
		if !names[want] {
			t.Fatalf("Query 2 missing %s: %v", want, names)
		}
	}
	if names["Cindy"] || names["Yaman"] {
		t.Fatalf("Query 2 has extras: %v", names)
	}
}

func TestPrecomputedEquivalentToValueJoin(t *testing.T) {
	// Precomputed join must produce the same pairs as a value join on the
	// underlying foreign key.
	rng := rand.New(rand.NewSource(17))
	ids := storage.NewIDGen()
	inner := buildRelation(t, ids, "inner", workload.UniquePool(200, rng, nil))
	var innerTuples []*storage.Tuple
	inner.ScanPhysical(func(tp *storage.Tuple) bool { innerTuples = append(innerTuples, tp); return true })

	outerSchema := storage.MustSchema(
		storage.FieldDef{Name: "val", Type: storage.Int},
		storage.FieldDef{Name: "ref", Type: storage.Ref, ForeignKey: "inner"},
	)
	outer, _ := storage.NewRelation("outer", outerSchema, storage.Config{}, ids)
	for i := 0; i < 500; i++ {
		target := innerTuples[rng.Intn(len(innerTuples))]
		outer.Insert([]storage.Value{target.Field(0), storage.RefValue(target)})
	}
	spec := JoinSpec{OuterName: "outer", InnerName: "inner"}
	pre := PrecomputedJoin(arrayOn(outer, 0), 1, spec)
	val := HashJoin(arrayOn(outer, 0), arrayOn(inner, 0), JoinSpec{
		OuterName: "outer", InnerName: "inner", OuterField: 0, InnerField: 0,
	})
	if pre.Len() != 500 || val.Len() != 500 {
		t.Fatalf("pre=%d val=%d", pre.Len(), val.Len())
	}
	canon := func(l *storage.TempList) map[[2]uint64]int {
		m := map[[2]uint64]int{}
		l.Scan(func(_ int, row storage.Row) bool {
			m[[2]uint64{row[0].ID(), row[1].ID()}]++
			return true
		})
		return m
	}
	a, b := canon(pre), canon(val)
	if len(a) != len(b) {
		t.Fatal("pair sets differ")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("pair %v count %d vs %d", k, v, b[k])
		}
	}
}

func TestProjectionMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, dupPct := range []float64{0, 30, 60, 90, 100} {
		col, err := workload.Build(workload.Spec{Cardinality: 1000, DuplicatePct: dupPct, Sigma: workload.Skewed}, rng)
		if err != nil {
			t.Fatal(err)
		}
		ids := storage.NewIDGen()
		rel := buildRelation(t, ids, "r", col.Values)
		// Project onto the val column only (duplicates collapse).
		list := storage.MustTempList(storage.Descriptor{
			Sources: []string{"r"},
			Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
		})
		rel.ScanPhysical(func(tp *storage.Tuple) bool {
			list.Append(storage.Row{tp})
			return true
		})
		byHash := ProjectHash(list, nil)
		bySort := ProjectSortScan(list, nil)
		want := len(col.Distinct)
		if byHash.Len() != want {
			t.Fatalf("dup=%v: hash kept %d rows, want %d", dupPct, byHash.Len(), want)
		}
		if bySort.Len() != want {
			t.Fatalf("dup=%v: sortscan kept %d rows, want %d", dupPct, bySort.Len(), want)
		}
		vals := func(l *storage.TempList) map[int64]bool {
			m := map[int64]bool{}
			for i := 0; i < l.Len(); i++ {
				m[l.Value(i, 0).Int()] = true
			}
			return m
		}
		a, b := vals(byHash), vals(bySort)
		for v := range a {
			if !b[v] {
				t.Fatalf("dup=%v: value sets differ", dupPct)
			}
		}
	}
}

func TestProjectMultiColumn(t *testing.T) {
	// Two-column projection: rows duplicate only when both columns match.
	ids := storage.NewIDGen()
	schema := storage.MustSchema(
		storage.FieldDef{Name: "a", Type: storage.Int},
		storage.FieldDef{Name: "b", Type: storage.Str},
	)
	rel, _ := storage.NewRelation("r", schema, storage.Config{}, ids)
	rows := [][2]any{{1, "x"}, {1, "x"}, {1, "y"}, {2, "x"}, {2, "x"}, {1, "x"}}
	for _, r := range rows {
		rel.Insert([]storage.Value{storage.IntValue(int64(r[0].(int))), storage.StringValue(r[1].(string))})
	}
	list := storage.MustTempList(storage.Descriptor{
		Sources: []string{"r"},
		Cols: []storage.ColRef{
			{Source: 0, Field: 0, Name: "a"},
			{Source: 0, Field: 1, Name: "b"},
		},
	})
	rel.ScanPhysical(func(tp *storage.Tuple) bool { list.Append(storage.Row{tp}); return true })
	if got := ProjectHash(list, nil).Len(); got != 3 {
		t.Fatalf("hash kept %d, want 3", got)
	}
	if got := ProjectSortScan(list, nil).Len(); got != 3 {
		t.Fatalf("sortscan kept %d, want 3", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	ids := storage.NewIDGen()
	empty := buildRelation(t, ids, "e", nil)
	full := buildRelation(t, ids, "f", []int64{1, 2, 3})
	spec := JoinSpec{OuterName: "e", InnerName: "f", OuterField: 0, InnerField: 0}
	es, fs := arrayOn(empty, 0), arrayOn(full, 0)
	et, ft := ttreeOn(empty, 0), ttreeOn(full, 0)
	for name, l := range map[string]*storage.TempList{
		"nested-empty-outer": NestedLoopsJoin(es, fs, spec),
		"nested-empty-inner": NestedLoopsJoin(fs, es, spec),
		"hash-empty-outer":   HashJoin(es, fs, spec),
		"hash-empty-inner":   HashJoin(fs, es, spec),
		"tree-empty-outer":   TreeJoin(es, ft.Index, spec),
		"tree-empty-inner":   TreeJoin(fs, et.Index, spec),
		"sortmerge-empty":    SortMergeJoin(es, es, spec),
		"treemerge-empty":    TreeMergeJoin(et.Index.(ttreeTree), ft.Index.(ttreeTree), spec),
	} {
		if l.Len() != 0 {
			t.Errorf("%s: %d rows", name, l.Len())
		}
	}
	// Empty projection.
	list := storage.MustTempList(storage.Descriptor{Sources: []string{"e"}})
	if ProjectHash(list, nil).Len() != 0 || ProjectSortScan(list, nil).Len() != 0 {
		t.Error("projection of empty list not empty")
	}
}

func TestJoinMeterCountsWork(t *testing.T) {
	// Sanity: nested loops does ~|R1|·|R2| comparisons; hash join does far
	// fewer. This is the paper's validation methodology (§3.1).
	rng := rand.New(rand.NewSource(23))
	col, _ := workload.Build(workload.Spec{Cardinality: 200, DuplicatePct: 0}, rng)
	ids := storage.NewIDGen()
	r := buildRelation(t, ids, "r", col.Values)
	s := arrayOn(r, 0)
	specN := JoinSpec{OuterName: "r", InnerName: "r", OuterField: 0, InnerField: 0}
	nm := newMeter()
	NestedLoopsJoin(s, s, withMeter(specN, nm))
	hm := newMeter()
	HashJoin(s, s, withMeter(specN, hm))
	if nm.Comparisons < 200*200 {
		t.Fatalf("nested loops did %d comparisons, want >= 40000", nm.Comparisons)
	}
	if hm.Comparisons > nm.Comparisons/10 {
		t.Fatalf("hash join %d comparisons vs nested %d — not cheaper", hm.Comparisons, nm.Comparisons)
	}
}

func TestListColumnSource(t *testing.T) {
	ids := storage.NewIDGen()
	rel := buildRelation(t, ids, "r", []int64{5, 6, 7})
	list := storage.MustTempList(storage.Descriptor{Sources: []string{"r"}})
	rel.ScanPhysical(func(tp *storage.Tuple) bool { list.Append(storage.Row{tp}); return true })
	src := ListColumn{List: list, Column: 0}
	if src.Len() != 3 {
		t.Fatalf("Len=%d", src.Len())
	}
	n := 0
	src.Scan(func(tp *storage.Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop ignored: %d", n)
	}
}

func ExampleNestedLoopsJoin() {
	ids := storage.NewIDGen()
	schema := storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})
	r1, _ := storage.NewRelation("r1", schema, storage.Config{}, ids)
	r2, _ := storage.NewRelation("r2", schema, storage.Config{}, ids)
	for _, v := range []int64{1, 2} {
		r1.Insert([]storage.Value{storage.IntValue(v)})
	}
	for _, v := range []int64{2, 3} {
		r2.Insert([]storage.Value{storage.IntValue(v)})
	}
	var t1, t2 []*storage.Tuple
	r1.ScanPhysical(func(tp *storage.Tuple) bool { t1 = append(t1, tp); return true })
	r2.ScanPhysical(func(tp *storage.Tuple) bool { t2 = append(t2, tp); return true })
	a1 := tupleindex.BuildArray(tupleindex.Options{Field: 0}, t1)
	a2 := tupleindex.BuildArray(tupleindex.Options{Field: 0}, t2)
	res := NestedLoopsJoin(OrderedScan{a1}, OrderedScan{a2}, JoinSpec{
		OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0,
	})
	fmt.Println(res.Len())
	// Output: 1
}

func TestDiscardCountsWithoutMaterializing(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	col, _ := workload.Build(workload.Spec{Cardinality: 500, DuplicatePct: 90, Sigma: workload.Skewed}, rng)
	ids := storage.NewIDGen()
	r := buildRelation(t, ids, "r", col.Values)
	s := arrayOn(r, 0)
	var rows int
	spec := JoinSpec{OuterName: "r", InnerName: "r", OuterField: 0, InnerField: 0, Discard: true, RowsOut: &rows}
	l := HashJoin(s, s, spec)
	if l.Len() != 0 {
		t.Fatalf("discarded join materialized %d rows", l.Len())
	}
	want := 0
	counts := map[int64]int{}
	for _, v := range col.Values {
		counts[v]++
	}
	for _, c := range counts {
		want += c * c
	}
	if rows != want {
		t.Fatalf("RowsOut=%d, want %d", rows, want)
	}
	// Same count from every method.
	tts := ttreeOn(r, 0)
	for name, got := range map[string]func() int{
		"sortmerge": func() int { var n int; sp := spec; sp.RowsOut = &n; SortMergeJoin(s, s, sp); return n },
		"treemerge": func() int {
			var n int
			sp := spec
			sp.RowsOut = &n
			TreeMergeJoin(tts.Index.(ttreeTree), tts.Index.(ttreeTree), sp)
			return n
		},
		"tree":   func() int { var n int; sp := spec; sp.RowsOut = &n; TreeJoin(s, tts.Index, sp); return n },
		"nested": func() int { var n int; sp := spec; sp.RowsOut = &n; NestedLoopsJoin(s, s, sp); return n },
	} {
		if n := got(); n != want {
			t.Fatalf("%s: RowsOut=%d, want %d", name, n, want)
		}
	}
}

func TestNonEquiJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	col1, _ := workload.Build(workload.Spec{Cardinality: 150, DuplicatePct: 30, Sigma: workload.NearUniform}, rng)
	col2, _ := workload.Build(workload.Spec{Cardinality: 120, DuplicatePct: 30, Sigma: workload.NearUniform}, rng)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", col1.Values)
	r2 := buildRelation(t, ids, "r2", col2.Values)
	s1, s2 := arrayOn(r1, 0), arrayOn(r2, 0)
	t2 := ttreeOn(r2, 0)
	spec := JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}

	for _, op := range []NonEquiOp{JoinLt, JoinLe, JoinGt, JoinGe} {
		// Reference count.
		want := 0
		for _, a := range col1.Values {
			for _, b := range col2.Values {
				ok := false
				switch op {
				case JoinLt:
					ok = a < b
				case JoinLe:
					ok = a <= b
				case JoinGt:
					ok = a > b
				default:
					ok = a >= b
				}
				if ok {
					want++
				}
			}
		}
		byTree := NonEquiTreeJoin(s1, t2.Index, op, spec)
		byLoop := NonEquiNestedLoopsJoin(s1, s2, op, spec)
		if byTree.Len() != want {
			t.Fatalf("op %v: tree join %d rows, want %d", op, byTree.Len(), want)
		}
		if byLoop.Len() != want {
			t.Fatalf("op %v: nested loops %d rows, want %d", op, byLoop.Len(), want)
		}
		// Every emitted pair satisfies the predicate.
		byTree.Scan(func(_ int, row storage.Row) bool {
			a, b := row[0].Field(0).Int(), row[1].Field(0).Int()
			ok := false
			switch op {
			case JoinLt:
				ok = a < b
			case JoinLe:
				ok = a <= b
			case JoinGt:
				ok = a > b
			default:
				ok = a >= b
			}
			if !ok {
				t.Fatalf("op %v: pair (%d, %d) violates predicate", op, a, b)
			}
			return true
		})
	}
}

func TestNonEquiJoinEdges(t *testing.T) {
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", []int64{5, 5, 5})
	r2 := buildRelation(t, ids, "r2", []int64{5, 5})
	s1 := arrayOn(r1, 0)
	t2 := ttreeOn(r2, 0)
	spec := JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	// All-equal inputs: strict ops empty, non-strict full cross product.
	if got := NonEquiTreeJoin(s1, t2.Index, JoinLt, spec).Len(); got != 0 {
		t.Fatalf("Lt on equal keys = %d", got)
	}
	if got := NonEquiTreeJoin(s1, t2.Index, JoinLe, spec).Len(); got != 6 {
		t.Fatalf("Le on equal keys = %d", got)
	}
	if got := NonEquiTreeJoin(s1, t2.Index, JoinGe, spec).Len(); got != 6 {
		t.Fatalf("Ge on equal keys = %d", got)
	}
}

func TestListIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	col, _ := workload.Build(workload.Spec{Cardinality: 500, DuplicatePct: 40, Sigma: workload.Moderate}, rng)
	ids := storage.NewIDGen()
	rel := buildRelation(t, ids, "r", col.Values)
	list := storage.MustTempList(storage.Descriptor{
		Sources: []string{"r"},
		Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
	})
	rel.ScanPhysical(func(tp *storage.Tuple) bool { list.Append(storage.Row{tp}); return true })

	li := BuildListIndex(list, 0, nil)
	if li.Len() != list.Len() {
		t.Fatalf("indexed %d of %d rows", li.Len(), list.Len())
	}
	// Exact lookup matches a linear count.
	key := storage.IntValue(col.Distinct[3])
	want := 0
	for _, v := range col.Values {
		if v == col.Distinct[3] {
			want++
		}
	}
	got := 0
	li.SearchAll(key, func(_ int, row storage.Row) bool {
		if !storage.Equal(row[0].Field(0), key) {
			t.Fatal("wrong row from list index")
		}
		got++
		return true
	})
	if got != want {
		t.Fatalf("SearchAll found %d, want %d", got, want)
	}
	// Sorted materialization is ordered and complete.
	sorted := li.Sorted()
	if sorted.Len() != list.Len() {
		t.Fatalf("Sorted dropped rows: %d of %d", sorted.Len(), list.Len())
	}
	prev := int64(-1 << 62)
	sorted.Scan(func(_ int, row storage.Row) bool {
		v := row[0].Field(0).Int()
		if v < prev {
			t.Fatal("Sorted out of order")
		}
		prev = v
		return true
	})
	// Range over the list.
	lo, hi := storage.IntValue(prev/2), storage.IntValue(prev)
	n := 0
	li.Range(&lo, &hi, func(_ int, row storage.Row) bool { n++; return true })
	wantRange := 0
	for _, v := range col.Values {
		if v >= prev/2 && v <= prev {
			wantRange++
		}
	}
	if n != wantRange {
		t.Fatalf("Range found %d, want %d", n, wantRange)
	}
	// Open bounds scan everything.
	n = 0
	li.Range(nil, nil, func(_ int, _ storage.Row) bool { n++; return true })
	if n != list.Len() {
		t.Fatalf("open range found %d", n)
	}
}
