package exec

import (
	"repro/internal/meter"
	"repro/internal/plan"
	"repro/internal/sortkey"
	"repro/internal/sortutil"
	"repro/internal/storage"
)

// ORDER BY and top-k. The sort substrate is the same normalized-key
// machinery as the sort-merge join and Sort Scan (internal/sortkey):
// every row's key columns encode into an order-preserving byte string
// whose first 8 bytes drive the MSD radix kernel, with the value
// comparator breaking equal-prefix ties. DESC columns invert the bytes
// of their (self-delimiting, prefix-free) encoding — bytewise inversion
// reverses lexicographic order and preserves prefix-freeness, so mixed
// ASC/DESC composite keys concatenate exactly like all-ASC ones.
//
// Output order is fully deterministic: rows with equal keys tie-break on
// their input ordinal, for the full sort, the bounded heap, and the
// parallel heap merge alike.

// OrderKey is one ORDER BY term: an output-column ordinal of the list
// being ordered, and its direction.
type OrderKey struct {
	Col  int
	Desc bool
}

// CompareRows orders rows a and b of list by the key columns, DESC
// columns negated, final tie on the row ordinal. One Comparisons is
// metered per column examined.
func CompareRows(list *storage.TempList, keys []OrderKey, a, b int32, m *meter.Counters) int {
	for _, k := range keys {
		m.AddCompare(1)
		c := storage.Compare(list.Value(int(a), k.Col), list.Value(int(b), k.Col))
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return int(a) - int(b)
}

// rowPrefix computes the kernel prefix for row i: the single-column
// decisive fast path reads the value prefix directly (inverted for
// DESC); composite keys encode the full direction-adjusted byte string
// into buf and pack its head. Returns the prefix, whether it is decisive
// on its own, the encoded length (0 on the fast path), and the reused
// buffer.
func rowPrefix(list *storage.TempList, keys []OrderKey, i int, buf []byte) (uint64, bool, int, []byte) {
	if len(keys) == 1 {
		k, dec := sortkey.Prefix(list.Value(i, keys[0].Col))
		if keys[0].Desc {
			k = ^k
		}
		return k, dec, 0, buf
	}
	buf = buf[:0]
	for _, key := range keys {
		start := len(buf)
		buf = sortkey.Append(buf, list.Value(i, key.Col))
		if key.Desc {
			for j := start; j < len(buf); j++ {
				buf[j] = ^buf[j]
			}
		}
	}
	return sortkey.PrefixOfBytes(buf), false, len(buf), buf
}

// OrderRows returns list's row ordinals in ORDER BY order. method picks
// the substrate: plan.SortQuick runs the paper's comparator quicksort
// over the ordinals; plan.SortRadixKey encodes normalized-key prefixes
// and runs the MSD radix kernel, tie-breaking equal prefixes (and equal
// keys, by ordinal) through the comparator. Both produce the identical,
// deterministic order.
func OrderRows(list *storage.TempList, keys []OrderKey, method plan.SortMethod, m *meter.Counters) []int32 {
	n := list.Len()
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	if n < 2 {
		return rows
	}
	if method != plan.SortRadixKey {
		sortutil.SortCutoff(rows, func(a, b int32) int {
			return CompareRows(list, keys, a, b, m)
		}, sortutil.DefaultCutoff, m)
		return rows
	}

	s := sortkey.GetRowSorter()
	defer sortkey.PutRowSorter(s)
	ent := s.Entries(n)
	var buf []byte
	var keyBytes int64
	for i := 0; i < n; i++ {
		var k uint64
		var enc int
		k, _, enc, buf = rowPrefix(list, keys, i, buf)
		if enc == 0 {
			enc = sortkey.PrefixBytes
		}
		keyBytes += int64(enc)
		ent[i] = sortkey.Entry[int32]{K: k, P: int32(i)}
	}
	m.AddKeyBytes(keyBytes)
	// The ordinal tie-break makes equal keys deterministic, so the tie
	// comparator is always supplied — with a decisive single-column
	// prefix it degenerates to the ordinal compare.
	s.Sort(ent, func(a, b int32) int {
		return CompareRows(list, keys, a, b, m)
	}, m)
	m.AddMove(int64(n))
	for i := range ent {
		rows[i] = ent[i].P
	}
	return rows
}

// topkHeap is a bounded max-heap of (prefix, row) candidates: the root
// is the worst row currently kept, so a full heap rejects most of the
// stream with one root comparison. Prefixes order the fast path; the
// comparator (with its ordinal tie) settles equal prefixes, so the heap
// agrees with OrderRows on every boundary case.
type topkHeap struct {
	list *storage.TempList
	keys []OrderKey
	ent  []sortkey.Entry[int32]
	m    *meter.Counters
}

// worse reports whether a orders after b (a is a worse candidate).
func (h *topkHeap) worse(a, b sortkey.Entry[int32]) bool {
	h.m.AddCompare(1)
	if a.K != b.K {
		return a.K > b.K
	}
	return CompareRows(h.list, h.keys, a.P, b.P, h.m) > 0
}

func (h *topkHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(h.ent[i], h.ent[p]) {
			return
		}
		h.ent[i], h.ent[p] = h.ent[p], h.ent[i]
		i = p
	}
}

func (h *topkHeap) siftDown(i int) {
	n := len(h.ent)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && h.worse(h.ent[l], h.ent[w]) {
			w = l
		}
		if r < n && h.worse(h.ent[r], h.ent[w]) {
			w = r
		}
		if w == i {
			return
		}
		h.ent[i], h.ent[w] = h.ent[w], h.ent[i]
		i = w
	}
}

// offer pushes a candidate, evicting the current worst when full.
func (h *topkHeap) offer(e sortkey.Entry[int32], k int) {
	if len(h.ent) < k {
		h.ent = append(h.ent, e)
		h.m.AddHeapPush(1)
		h.siftUp(len(h.ent) - 1)
		return
	}
	if h.worse(e, h.ent[0]) {
		return // past the threshold: rejected with the root comparison
	}
	h.ent[0] = e
	h.m.AddHeapPush(1)
	h.siftDown(0)
}

// TopKRows returns the first k row ordinals of list in ORDER BY order —
// the bounded-heap ORDER BY + LIMIT operator. It streams every row
// through a k-element max-heap (HeapPushes counts survivors' sifts) and
// comparator-sorts the k finalists, so its output is the exact prefix of
// OrderRows' output.
func TopKRows(list *storage.TempList, keys []OrderKey, k int, m *meter.Counters) []int32 {
	return TopKRowsRange(list, keys, k, 0, list.Len(), m)
}

// TopKRowsRange is TopKRows over rows [lo, hi) — the per-worker heap the
// parallel executor runs over its chunk before merging.
func TopKRowsRange(list *storage.TempList, keys []OrderKey, k, lo, hi int, m *meter.Counters) []int32 {
	if k <= 0 {
		return nil
	}
	if n := hi - lo; k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	h := &topkHeap{list: list, keys: keys, ent: make([]sortkey.Entry[int32], 0, k), m: m}
	var buf []byte
	var keyBytes int64
	for i := lo; i < hi; i++ {
		var pk uint64
		var enc int
		pk, _, enc, buf = rowPrefix(list, keys, i, buf)
		if enc == 0 {
			enc = sortkey.PrefixBytes
		}
		keyBytes += int64(enc)
		h.offer(sortkey.Entry[int32]{K: pk, P: int32(i)}, k)
	}
	m.AddKeyBytes(keyBytes)
	return sortHeapFinalists(h)
}

// TopKMergeRows merges per-worker top-k candidate sets into the global
// top k: every candidate streams through one k-element heap, then the
// finalists sort. Each worker's set already survives its own heap, so
// the union (≤ workers×k rows) is tiny next to the input.
func TopKMergeRows(list *storage.TempList, keys []OrderKey, k int, cands [][]int32, m *meter.Counters) []int32 {
	if k <= 0 {
		return nil
	}
	h := &topkHeap{list: list, keys: keys, ent: make([]sortkey.Entry[int32], 0, k), m: m}
	var buf []byte
	for _, set := range cands {
		for _, r := range set {
			var pk uint64
			pk, _, _, buf = rowPrefix(list, keys, int(r), buf)
			h.offer(sortkey.Entry[int32]{K: pk, P: r}, k)
		}
	}
	return sortHeapFinalists(h)
}

// sortHeapFinalists orders a heap's surviving candidates into the final
// output order.
func sortHeapFinalists(h *topkHeap) []int32 {
	sortutil.SortCutoff(h.ent, func(a, b sortkey.Entry[int32]) int {
		if a.K != b.K {
			if a.K < b.K {
				return -1
			}
			return 1
		}
		return CompareRows(h.list, h.keys, a.P, b.P, h.m)
	}, sortutil.DefaultCutoff, h.m)
	rows := make([]int32, len(h.ent))
	for i := range h.ent {
		rows[i] = h.ent[i].P
	}
	return rows
}
