package exec

import (
	"testing"

	"repro/internal/meter"
	"repro/internal/storage"
)

// threeWayFixture builds relations a(val,seq), b(val,seq), c(val,seq)
// and a pipeline joining a.val = b.val, b.val = c.val with a as driver.
func threeWayFixture(t testing.TB, av, bv, cv []int64) (ra, rb, rc *storage.Relation) {
	ids := storage.NewIDGen()
	return buildRelation(t, ids, "a", av),
		buildRelation(t, ids, "b", bv),
		buildRelation(t, ids, "c", cv)
}

// chainPipeline builds the a→b→c pipeline over the fixture with the
// given sink configuration.
func chainPipeline(m *meter.Counters, rb, rc *storage.Relation, out *storage.TempList, discard bool, limit int) *Pipeline {
	tb := BuildStageTable(relScan{rb}, 0, 0, m)
	tc := BuildStageTable(relScan{rc}, 0, 0, m)
	return NewPipeline(PipelineSpec{
		Slots:      3,
		DriverSlot: 0,
		Stages: []StageSpec{
			{Table: tb, BuildField: 0, BuildSlot: 1, ProbeSlot: 0, ProbeField: 0},
			{Table: tc, BuildField: 0, BuildSlot: 2, ProbeSlot: 1, ProbeField: 0},
		},
		Out:     out,
		Discard: discard,
		Limit:   limit,
		Meter:   m,
	})
}

// relScan adapts a relation's physical scan into a Source for tests.
type relScan struct{ rel *storage.Relation }

func (s relScan) Len() int { return s.rel.Cardinality() }
func (s relScan) Scan(fn func(*storage.Tuple) bool) {
	s.rel.ScanPhysical(fn)
}

func feedAll(p *Pipeline, rel *storage.Relation) {
	buf := storage.GetBatch()
	ScanBatches(relScan{rel}, buf, func(block storage.TupleBatch) bool {
		return p.Feed(block)
	})
	p.Flush()
	storage.PutBatch(buf)
}

// referenceThreeWay counts a⋈b⋈c rows by value with plain maps.
func referenceThreeWay(av, bv, cv []int64) int {
	bc := map[int64]int{}
	for _, v := range bv {
		bc[v]++
	}
	cc := map[int64]int{}
	for _, v := range cv {
		cc[v]++
	}
	n := 0
	for _, v := range av {
		n += bc[v] * cc[v]
	}
	return n
}

func seqVals(n int, mod int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i) % mod
	}
	return out
}

func TestPipelineMatchesReference(t *testing.T) {
	cases := []struct {
		name       string
		av, bv, cv []int64
	}{
		{"unique-keys", seqVals(500, 1000), seqVals(100, 1000), seqVals(50, 1000)},
		{"duplicates", seqVals(300, 7), seqVals(40, 7), seqVals(20, 7)},
		{"selective", seqVals(1000, 1000), seqVals(100, 1000), seqVals(10, 1000)},
		{"empty-middle", seqVals(100, 10), nil, seqVals(10, 10)},
		{"tiny", []int64{1}, []int64{1}, []int64{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ra, rb, rc := threeWayFixture(t, tc.av, tc.bv, tc.cv)
			m := newMeter()
			desc := storage.Descriptor{Sources: []string{"a", "b", "c"}}
			out := storage.MustTempList(desc)
			p := chainPipeline(m, rb, rc, out, false, 0)
			defer p.Release()
			feedAll(p, ra)
			want := referenceThreeWay(tc.av, tc.bv, tc.cv)
			if p.Emitted() != want || out.Len() != want {
				t.Fatalf("emitted %d (list %d), want %d", p.Emitted(), out.Len(), want)
			}
			// Every output row must actually join: a.val = b.val = c.val.
			out.Scan(func(_ int, row storage.Row) bool {
				if row[0].Field(0).Int() != row[1].Field(0).Int() ||
					row[1].Field(0).Int() != row[2].Field(0).Int() {
					t.Fatalf("non-joining row %v", row)
				}
				return true
			})
			// Stage actuals: the last stage's count is the emitted total.
			if p.StageRows(1) != want {
				t.Fatalf("StageRows(1) = %d, want %d", p.StageRows(1), want)
			}
		})
	}
}

func TestPipelineLimitEarlyExit(t *testing.T) {
	av, bv, cv := seqVals(1000, 10), seqVals(100, 10), seqVals(50, 10)
	ra, rb, rc := threeWayFixture(t, av, bv, cv)
	m := newMeter()
	out := storage.MustTempList(storage.Descriptor{Sources: []string{"a", "b", "c"}})
	p := chainPipeline(m, rb, rc, out, false, 7)
	defer p.Release()
	feedAll(p, ra)
	if p.Emitted() != 7 || out.Len() != 7 {
		t.Fatalf("limit 7: emitted %d, list %d", p.Emitted(), out.Len())
	}
	if p.More() {
		t.Fatal("pipeline still accepting input after limit")
	}
}

func TestPipelineResidualEdge(t *testing.T) {
	// Cyclic graph a-b, b-c, a-c on the same column: the a-c edge is
	// residual. With val mod 7 everywhere, the hash matches already
	// satisfy it, so the residual must not drop rows; with c holding
	// seq-distinct values on field 1, an a.seq = c.seq residual prunes.
	av, bv, cv := seqVals(70, 7), seqVals(14, 7), seqVals(14, 7)
	ra, rb, rc := threeWayFixture(t, av, bv, cv)
	m := newMeter()
	tb := BuildStageTable(relScan{rb}, 0, 0, m)
	tc := BuildStageTable(relScan{rc}, 0, 0, m)
	out := storage.MustTempList(storage.Descriptor{Sources: []string{"a", "b", "c"}})
	p := NewPipeline(PipelineSpec{
		Slots:      3,
		DriverSlot: 0,
		Stages: []StageSpec{
			{Table: tb, BuildField: 0, BuildSlot: 1, ProbeSlot: 0, ProbeField: 0},
			{Table: tc, BuildField: 0, BuildSlot: 2, ProbeSlot: 1, ProbeField: 0,
				Residual: []ResidualEdge{{ASlot: 0, AField: 0, BSlot: 2, BField: 0}}},
		},
		Out:   out,
		Meter: m,
	})
	defer p.Release()
	feedAll(p, ra)
	if want := referenceThreeWay(av, bv, cv); p.Emitted() != want {
		t.Fatalf("satisfied residual dropped rows: %d, want %d", p.Emitted(), want)
	}
	// Now a residual on seq (field 1): only rows where a.seq = c.seq
	// survive. Reference: count triples with matching vals and seqs.
	out2 := storage.MustTempList(storage.Descriptor{Sources: []string{"a", "b", "c"}})
	p2 := NewPipeline(PipelineSpec{
		Slots:      3,
		DriverSlot: 0,
		Stages: []StageSpec{
			{Table: tb, BuildField: 0, BuildSlot: 1, ProbeSlot: 0, ProbeField: 0},
			{Table: tc, BuildField: 0, BuildSlot: 2, ProbeSlot: 1, ProbeField: 0,
				Residual: []ResidualEdge{{ASlot: 0, AField: 1, BSlot: 2, BField: 1}}},
		},
		Out:   out2,
		Meter: m,
	})
	defer p2.Release()
	feedAll(p2, ra)
	want := 0
	bc := map[int64]int{}
	for _, v := range bv {
		bc[v]++
	}
	for ai, a := range av {
		for ci, c := range cv {
			if a == c && ai == ci { // same val, same seq
				want += bc[a]
			}
		}
	}
	if p2.Emitted() != want {
		t.Fatalf("residual on seq: emitted %d, want %d", p2.Emitted(), want)
	}
}

func TestPipelineDerefStage(t *testing.T) {
	// b carries a Ref column pointing at c tuples: the final stage
	// follows the pointer instead of probing a table.
	ids := storage.NewIDGen()
	ra := buildRelation(t, ids, "a", seqVals(50, 5))
	rc := buildRelation(t, ids, "c", seqVals(5, 5))
	var cTuples []*storage.Tuple
	rc.ScanPhysical(func(tp *storage.Tuple) bool { cTuples = append(cTuples, tp); return true })
	schema := storage.MustSchema(
		storage.FieldDef{Name: "val", Type: storage.Int},
		storage.FieldDef{Name: "cref", Type: storage.Ref, ForeignKey: "c"},
	)
	rb, err := storage.NewRelation("b", schema, storage.Config{}, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ref := storage.RefValue(cTuples[i%len(cTuples)])
		if i == 3 { // one null pointer: must produce no row
			ref = storage.NullValue
		}
		if _, err := rb.Insert([]storage.Value{storage.IntValue(int64(i % 5)), ref}); err != nil {
			t.Fatal(err)
		}
	}
	m := newMeter()
	tb := BuildStageTable(relScan{rb}, 0, 0, m)
	out := storage.MustTempList(storage.Descriptor{Sources: []string{"a", "b", "c"}})
	p := NewPipeline(PipelineSpec{
		Slots:      3,
		DriverSlot: 0,
		Stages: []StageSpec{
			{Table: tb, BuildField: 0, BuildSlot: 1, ProbeSlot: 0, ProbeField: 0},
			{Deref: true, BuildSlot: 2, ProbeSlot: 1, ProbeField: 1},
		},
		Out:   out,
		Meter: m,
	})
	defer p.Release()
	feedAll(p, ra)
	// Reference: each a row matches b rows with equal val; each non-null
	// b contributes exactly its referenced c tuple.
	want := 0
	for _, a := range seqVals(50, 5) {
		for i := 0; i < 10; i++ {
			if int64(i%5) == a && i != 3 {
				want++
			}
		}
	}
	if p.Emitted() != want {
		t.Fatalf("deref stage emitted %d, want %d", p.Emitted(), want)
	}
	out.Scan(func(_ int, row storage.Row) bool {
		if row[2] == nil {
			t.Fatal("null pointer produced a row")
		}
		return true
	})
}

func TestPipelineResetReuse(t *testing.T) {
	av, bv, cv := seqVals(400, 8), seqVals(64, 8), seqVals(16, 8)
	ra, rb, rc := threeWayFixture(t, av, bv, cv)
	m := newMeter()
	p := chainPipeline(m, rb, rc, nil, true, 0)
	defer p.Release()
	want := referenceThreeWay(av, bv, cv)
	for round := 0; round < 3; round++ {
		p.Reset(nil)
		feedAll(p, ra)
		if p.Emitted() != want {
			t.Fatalf("round %d: emitted %d, want %d", round, p.Emitted(), want)
		}
	}
}

// TestPipelineWarmPathAllocs pins the zero-allocation contract of the
// warm pipelined path: with tables built and buffers warm, streaming
// the driver allocates nothing.
func TestPipelineWarmPathAllocs(t *testing.T) {
	av, bv, cv := seqVals(2048, 64), seqVals(256, 64), seqVals(64, 64)
	ra, rb, rc := threeWayFixture(t, av, bv, cv)
	m := newMeter()
	p := chainPipeline(m, rb, rc, nil, true, 0)
	defer p.Release()
	var driver []*storage.Tuple
	ra.ScanPhysical(func(tp *storage.Tuple) bool { driver = append(driver, tp); return true })
	p.Reset(nil)
	feedAll(p, ra) // warm the buffers and match blocks
	allocs := testing.AllocsPerRun(10, func() {
		p.Reset(nil)
		SliceSource(driver).ScanBatches(nil, func(block storage.TupleBatch) bool {
			return p.Feed(block)
		})
		p.Flush()
	})
	if allocs != 0 {
		t.Fatalf("warm pipelined path allocates %.1f per run, want 0", allocs)
	}
}

// SliceSource mirrors parallel.SliceSource for the alloc pin without an
// import cycle.
type SliceSource []*storage.Tuple

func (s SliceSource) Len() int { return len(s) }
func (s SliceSource) Scan(fn func(*storage.Tuple) bool) {
	for _, t := range s {
		if !fn(t) {
			return
		}
	}
}
func (s SliceSource) ScanBatches(buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	rest := []*storage.Tuple(s)
	for len(rest) > storage.BatchSize {
		if !fn(rest[:storage.BatchSize:storage.BatchSize]) {
			return
		}
		rest = rest[storage.BatchSize:]
	}
	if len(rest) > 0 {
		fn(rest[:len(rest):len(rest)])
	}
}
