package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/tupleindex"
	"repro/internal/workload"
)

// The paper validated its implementations by checking operation counts
// against analytical formulas (§3.1, §3.3.4). These tests do the same:
// each join method's metered comparison count must track the paper's
// formula within a small constant factor.

func formulaSetup(t *testing.T, n1, n2 int) (*OrderedScan, *OrderedScan, *OrderedScan, *OrderedScan) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	col1, err := workload.Build(workload.Spec{Cardinality: n1, DuplicatePct: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	col2, err := workload.BuildDerived(workload.Spec{Cardinality: n2, DuplicatePct: 0}, col1, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", col1.Values)
	r2 := buildRelation(t, ids, "r2", col2.Values)
	return arrayOn(r1, 0), arrayOn(r2, 0), ttreeOn(r1, 0), ttreeOn(r2, 0)
}

func TestTreeMergeComparisonFormula(t *testing.T) {
	// §3.3.4 Test 1: "The number of comparisons done is approximately
	// (|R1| + |R2| * 2)" for the Tree Merge on keys.
	const n = 4096
	_, _, t1, t2 := formulaSetup(t, n, n)
	m := newMeter()
	spec := withMeter(JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0, Discard: true, RowsOut: new(int)}, m)
	TreeMergeJoin(t1.Index.(ttreeTree), t2.Index.(ttreeTree), spec)
	want := float64(n + 2*n)
	got := float64(m.Comparisons)
	if got < want*0.8 || got > want*2.0 {
		t.Fatalf("Tree Merge comparisons = %v, paper formula ≈ %v", got, want)
	}
}

func TestHashJoinComparisonFormula(t *testing.T) {
	// §3.3.4 Test 1: Hash Join ≈ |R1| + |R1|·k where k is a fixed lookup
	// cost, "much smaller than log2(|R2|) but larger than 2"; plus the
	// build pass (|R2| inserts).
	const n = 8192
	s1, s2, _, _ := formulaSetup(t, n, n)
	m := newMeter()
	spec := withMeter(JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0, Discard: true, RowsOut: new(int)}, m)
	HashJoin(s1, s2, spec)
	perProbe := float64(m.Comparisons) / float64(n)
	log2n := math.Log2(float64(n))
	if perProbe < 1 || perProbe >= log2n {
		t.Fatalf("hash join cost per outer tuple = %.2f comparisons; want in [1, log2(n)=%.1f)", perProbe, log2n)
	}
	// Tree Join ≈ |R1| + |R1|·log2(|R2|) comparisons: per-probe must be
	// near log2(n), clearly above the hash join's k. The probes run inside
	// the pre-existing index, so the meter attaches to the index itself.
	m2 := newMeter()
	metered := tupleindex.NewTTree(tupleindex.Options{Field: 0, Meter: m2})
	s2.Scan(func(tp *storage.Tuple) bool { metered.Insert(tp); return true })
	m2.Reset()
	TreeJoin(s1, metered, spec)
	perTreeProbe := float64(m2.Comparisons) / float64(n)
	if perTreeProbe < log2n/2 {
		t.Fatalf("tree join per-probe = %.2f; expected near log2(n) = %.1f", perTreeProbe, log2n)
	}
	if perProbe >= perTreeProbe {
		t.Fatalf("hash per-probe (%.2f) not below tree per-probe (%.2f)", perProbe, perTreeProbe)
	}
}

func TestSortMergeComparisonFormula(t *testing.T) {
	// §3.3.4 Test 1: Sort Merge ≈ |R1|log|R1| + |R2|log|R2| + |R1| + |R2|.
	const n = 4096
	s1, s2, _, _ := formulaSetup(t, n, n)
	m := newMeter()
	spec := withMeter(JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0, Discard: true, RowsOut: new(int)}, m)
	SortMergeJoin(s1, s2, spec)
	nf := float64(n)
	want := 2*nf*math.Log2(nf) + 2*nf
	got := float64(m.Comparisons)
	// Quicksort's constant differs from the idealized n·log n; allow a
	// factor-2 band.
	if got < want*0.5 || got > want*2.0 {
		t.Fatalf("Sort Merge comparisons = %v, formula ≈ %v", got, want)
	}
}

func TestNestedLoopsComparisonFormula(t *testing.T) {
	// O(N²): exactly |R1|·|R2| comparisons, no more, no fewer.
	const n1, n2 = 300, 200
	s1, s2, _, _ := formulaSetup(t, n1, n2)
	m := newMeter()
	spec := withMeter(JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0, Discard: true, RowsOut: new(int)}, m)
	NestedLoopsJoin(s1, s2, spec)
	if m.Comparisons != n1*n2 {
		t.Fatalf("nested loops comparisons = %d, want exactly %d", m.Comparisons, n1*n2)
	}
}

func TestPrecomputedJoinDoesNoComparisons(t *testing.T) {
	// §3.3.5: "it would beat each of the join methods in every case,
	// because the joining tuples have already been paired."
	ids := storage.NewIDGen()
	inner := buildRelation(t, ids, "inner", []int64{1, 2, 3})
	var innerTuples []*storage.Tuple
	inner.ScanPhysical(func(tp *storage.Tuple) bool { innerTuples = append(innerTuples, tp); return true })
	outerSchema := storage.MustSchema(
		storage.FieldDef{Name: "v", Type: storage.Int},
		storage.FieldDef{Name: "ref", Type: storage.Ref, ForeignKey: "inner"},
	)
	outer, _ := storage.NewRelation("outer", outerSchema, storage.Config{}, ids)
	for i := 0; i < 100; i++ {
		outer.Insert([]storage.Value{storage.IntValue(int64(i)), storage.RefValue(innerTuples[i%3])})
	}
	m := newMeter()
	spec := withMeter(JoinSpec{OuterName: "outer", InnerName: "inner"}, m)
	l := PrecomputedJoin(arrayOn(outer, 0), 1, spec)
	if l.Len() != 100 {
		t.Fatalf("rows=%d", l.Len())
	}
	if m.Comparisons != 0 || m.HashCalls != 0 {
		t.Fatalf("precomputed join did %d comparisons, %d hash calls; want 0", m.Comparisons, m.HashCalls)
	}
}

func TestProjectionHashChainsShrinkWithDuplicates(t *testing.T) {
	// §3.4: with duplicates discarded on arrival, the hash table stores
	// fewer elements and probes shorter chains.
	rng := rand.New(rand.NewSource(43))
	count := func(dup float64) int64 {
		col, err := workload.Build(workload.Spec{Cardinality: 8000, DuplicatePct: dup, Sigma: workload.NearUniform}, rng)
		if err != nil {
			t.Fatal(err)
		}
		ids := storage.NewIDGen()
		rel := buildRelation(t, ids, "r", col.Values)
		list := storage.MustTempList(storage.Descriptor{
			Sources: []string{"r"},
			Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
		})
		rel.ScanPhysical(func(tp *storage.Tuple) bool { list.Append(storage.Row{tp}); return true })
		m := newMeter()
		ProjectHash(list, m)
		return m.Comparisons
	}
	low, high := count(0), count(90)
	if high >= low {
		t.Fatalf("projection hash comparisons did not shrink with duplicates: %d -> %d", low, high)
	}
}
