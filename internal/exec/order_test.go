package exec_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/plan"
	"repro/internal/storage"
)

// orderList builds a (s string, n int, f float) list with NULLs sprinkled
// into every column — the adversarial shape for normalized-key encoding.
func orderList(t testing.TB, n int, seed int64) *storage.TempList {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fields := []storage.FieldDef{
		{Name: "s", Type: storage.Str},
		{Name: "n", Type: storage.Int},
		{Name: "f", Type: storage.Float},
	}
	rel, err := storage.NewRelation("o", storage.MustSchema(fields...), storage.Config{}, storage.NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]storage.ColRef, len(fields))
	for i, f := range fields {
		cols[i] = storage.ColRef{Source: 0, Field: i, Name: f.Name}
	}
	list := storage.MustTempListHint(storage.Descriptor{Sources: []string{"o"}, Cols: cols}, n)
	for i := 0; i < n; i++ {
		row := []storage.Value{
			storage.StringValue(fmt.Sprintf("s%02d", rng.Intn(40))),
			storage.IntValue(int64(rng.Intn(200) - 100)),
			storage.FloatValue(float64(rng.Intn(1000)) / 8),
		}
		for c := range row {
			if rng.Intn(12) == 0 {
				row[c] = storage.NullValue
			}
		}
		tp, err := rel.Insert(row)
		if err != nil {
			t.Fatal(err)
		}
		list.AppendOne(tp)
	}
	return list
}

// referenceOrder sorts row ordinals with the straightforward stable
// value-compare — the oracle both sort substrates must match exactly.
func referenceOrder(list *storage.TempList, keys []exec.OrderKey) []int32 {
	rows := make([]int32, list.Len())
	for i := range rows {
		rows[i] = int32(i)
	}
	sort.Slice(rows, func(a, b int) bool {
		for _, k := range keys {
			c := storage.Compare(list.Value(int(rows[a]), k.Col), list.Value(int(rows[b]), k.Col))
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return rows[a] < rows[b]
	})
	return rows
}

func sameRows(t *testing.T, name string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %d, want %d\n got=%v\nwant=%v", name, i, got[i], want[i], got, want)
		}
	}
}

var keySets = []struct {
	name string
	keys []exec.OrderKey
}{
	{"int asc", []exec.OrderKey{{Col: 1}}},
	{"int desc", []exec.OrderKey{{Col: 1, Desc: true}}},
	{"str desc", []exec.OrderKey{{Col: 0, Desc: true}}},
	{"float asc", []exec.OrderKey{{Col: 2}}},
	{"mixed str desc, int asc", []exec.OrderKey{{Col: 0, Desc: true}, {Col: 1}}},
	{"mixed int asc, float desc", []exec.OrderKey{{Col: 1}, {Col: 2, Desc: true}}},
	{"all three, middle desc", []exec.OrderKey{{Col: 0}, {Col: 1, Desc: true}, {Col: 2}}},
}

// TestOrderRowsMatchesReference: both sort substrates produce exactly the
// reference order — including DESC columns, NULLs, and the ordinal tie.
func TestOrderRowsMatchesReference(t *testing.T) {
	list := orderList(t, 900, 11)
	for _, ks := range keySets {
		want := referenceOrder(list, ks.keys)
		m := &meter.Counters{}
		sameRows(t, ks.name+"/quick", exec.OrderRows(list, ks.keys, plan.SortQuick, m), want)
		sameRows(t, ks.name+"/radix", exec.OrderRows(list, ks.keys, plan.SortRadixKey, m), want)
	}
}

// TestTopKIsSortPrefix: the bounded heap's output is the exact prefix of
// the full sort for every k, including k=0, k=1, k=n and k>n.
func TestTopKIsSortPrefix(t *testing.T) {
	list := orderList(t, 700, 23)
	n := list.Len()
	for _, ks := range keySets {
		want := referenceOrder(list, ks.keys)
		for _, k := range []int{0, 1, 7, n / 8, n / 2, n, n + 50} {
			m := &meter.Counters{}
			got := exec.TopKRows(list, ks.keys, k, m)
			kk := k
			if kk > n {
				kk = n
			}
			sameRows(t, fmt.Sprintf("%s k=%d", ks.name, k), got, want[:kk])
			if k > 0 && k < n && m.HeapPushes == 0 {
				t.Fatalf("%s k=%d: HeapPushes not metered", ks.name, k)
			}
		}
	}
}

// TestTopKMergeMatchesSerial: per-chunk heaps merged through the final
// heap equal the serial top-k — the parallel executor's contract.
func TestTopKMergeMatchesSerial(t *testing.T) {
	list := orderList(t, 800, 31)
	n := list.Len()
	for _, ks := range keySets {
		for _, k := range []int{1, 13, 64} {
			m := &meter.Counters{}
			want := exec.TopKRows(list, ks.keys, k, m)
			const chunks = 4
			cands := make([][]int32, chunks)
			for c := 0; c < chunks; c++ {
				cands[c] = exec.TopKRowsRange(list, ks.keys, k, n*c/chunks, n*(c+1)/chunks, m)
			}
			got := exec.TopKMergeRows(list, ks.keys, k, cands, m)
			sameRows(t, fmt.Sprintf("%s merge k=%d", ks.name, k), got, want)
		}
	}
}
