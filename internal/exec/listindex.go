package exec

import (
	"repro/internal/index"
	"repro/internal/index/ttree"
	"repro/internal/meter"
	"repro/internal/storage"
)

// §2.3: "Unlike regular relations, a temporary list can be traversed
// directly; however, it is also possible to have an index on a temporary
// list." A list index is an ordered index over row numbers, keyed by one
// of the list's output columns, so a large intermediate result can feed an
// indexed lookup (or another join) without materializing a relation.

// ListIndex is a T Tree over the rows of a temporary list.
type ListIndex struct {
	list *storage.TempList
	col  int
	tree *ttree.Tree[int]
}

// BuildListIndex indexes the list on output column col.
func BuildListIndex(list *storage.TempList, col int, m *meter.Counters) *ListIndex {
	li := &ListIndex{list: list, col: col}
	li.tree = ttree.New(index.Config[int]{
		Cmp: func(a, b int) int {
			return storage.Compare(list.Value(a, col), list.Value(b, col))
		},
		Same:  func(a, b int) bool { return a == b },
		Meter: m,
	})
	for i := 0; i < list.Len(); i++ {
		li.tree.Insert(i)
	}
	return li
}

// Len returns the number of indexed rows.
func (li *ListIndex) Len() int { return li.tree.Len() }

func (li *ListIndex) pos(key storage.Value) index.Pos[int] {
	return func(row int) int {
		return storage.Compare(li.list.Value(row, li.col), key)
	}
}

// SearchAll visits every row whose indexed column equals key.
func (li *ListIndex) SearchAll(key storage.Value, fn func(i int, row storage.Row) bool) {
	li.tree.SearchAll(li.pos(key), func(r int) bool {
		return fn(r, li.list.Row(r))
	})
}

// Range visits rows with lo <= column <= hi in key order; nil bounds are
// open.
func (li *ListIndex) Range(lo, hi *storage.Value, fn func(i int, row storage.Row) bool) {
	loPos := func(int) int { return 0 }
	if lo != nil {
		loPos = li.pos(*lo)
	}
	hiPos := func(int) int { return 0 }
	if hi != nil {
		hiPos = li.pos(*hi)
	}
	li.tree.Range(loPos, hiPos, func(r int) bool {
		return fn(r, li.list.Row(r))
	})
}

// ScanAsc visits all rows in indexed-column order.
func (li *ListIndex) ScanAsc(fn func(i int, row storage.Row) bool) {
	li.tree.ScanAsc(func(r int) bool {
		return fn(r, li.list.Row(r))
	})
}

// Sorted materializes a new temporary list ordered by the indexed column
// — an ORDER BY over an intermediate result.
func (li *ListIndex) Sorted() *storage.TempList {
	out := storage.MustTempList(li.list.Descriptor())
	li.tree.ScanAsc(func(r int) bool {
		out.Append(li.list.Row(r))
		return true
	})
	return out
}
