package exec

import (
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// The three selection access paths of §4: "a hash lookup (exact match
// only) is always faster than a tree lookup which is always faster than a
// sequential scan."
//
// All paths emit batch-at-a-time: matching tuples are gathered into
// TupleBatch blocks and block-copied into the output list, so the per-row
// cost on the emit path is one pointer store — no Row header allocation,
// no per-tuple callback into the list.

// SelectSpec names the output of a selection.
type SelectSpec struct {
	RelName string
	Schema  *storage.Schema
	Meter   *meter.Counters
	// Hint, when positive, is the expected result cardinality; the output
	// list is presized so no chunk growth happens during the scan.
	Hint int
	// Prog, when non-nil, receives live rows-processed progress and
	// worker saturation from the parallel executor (the serial operators
	// in this package ignore it). Nil is the disabled state; every
	// Progress method tolerates it.
	Prog *obs.Progress
	// Sched is the query's admission handle on the shared morsel
	// scheduler. The parallel executor submits its morsels through it;
	// nil (or a handle without a pool) selects per-run worker
	// goroutines. The serial operators ignore it.
	Sched *sched.Query
}

func (s SelectSpec) newList() *storage.TempList {
	if s.Hint > 0 {
		return storage.MustTempListHint(singleDesc(s.RelName, s.Schema), s.Hint)
	}
	return storage.MustTempList(singleDesc(s.RelName, s.Schema))
}

// SelectEqHash performs an exact-match selection through a hash index.
// The bucket's matches come back as one block (SearchKeyAppend) and are
// block-copied into the output — the §3.1 comparison and hash counts are
// identical to the tuple-at-a-time formulation.
func SelectEqHash(ix tupleindex.Hashed, field int, key storage.Value, spec SelectSpec) *storage.TempList {
	out := spec.newList()
	h := storage.Hash(key)
	spec.Meter.AddHash(1)
	buf := index.SearchKeyAppend[*storage.Tuple](ix, h,
		func(t *storage.Tuple) bool {
			spec.Meter.AddCompare(1)
			return storage.Equal(tupleindex.KeyOf(t, field), key)
		}, storage.GetBatch())
	if len(buf) > 0 {
		out.AppendBatch(buf)
		spec.Meter.AddBatch(1)
	}
	storage.PutBatch(buf)
	return out
}

// SelectEqTree performs an exact-match selection through an ordered index:
// a search to any matching entry, then a scan of the contiguous equal run
// (§3.3.4), returned as one block and block-copied into the output.
func SelectEqTree(ix tupleindex.Ordered, field int, key storage.Value, spec SelectSpec) *storage.TempList {
	out := spec.newList()
	buf := index.SearchAllAppend[*storage.Tuple](ix, tupleindex.PosFor(key, field), storage.GetBatch())
	if len(buf) > 0 {
		out.AppendBatch(buf)
		spec.Meter.AddBatch(1)
	}
	storage.PutBatch(buf)
	return out
}

// SelectRange selects lo <= field <= hi through an ordered index; hash
// structures cannot serve range queries (§3.2.2: "range queries (hash
// structures excluded)"). Nil bounds are open. Matches are gathered into a
// pooled block and flushed block-wise.
func SelectRange(ix tupleindex.Ordered, field int, lo, hi *storage.Value, spec SelectSpec) *storage.TempList {
	out := spec.newList()
	loPos := func(*storage.Tuple) int { return 0 } // everything >= -inf
	if lo != nil {
		loPos = tupleindex.PosFor(*lo, field)
	}
	hiPos := func(*storage.Tuple) int { return 0 } // everything <= +inf
	if hi != nil {
		hiPos = tupleindex.PosFor(*hi, field)
	}
	buf := storage.GetBatch()
	ix.Range(loPos, hiPos, func(t *storage.Tuple) bool {
		buf = append(buf, t)
		if len(buf) == cap(buf) {
			out.AppendBatch(buf)
			spec.Meter.AddBatch(1)
			buf = buf[:0]
		}
		return true
	})
	if len(buf) > 0 {
		out.AppendBatch(buf)
		spec.Meter.AddBatch(1)
	}
	storage.PutBatch(buf)
	return out
}

// SelectScan selects by predicate with a sequential scan through an index
// — possibly one on an unrelated attribute, the fallback access path when
// no index covers the selection column. The source is drained in blocks
// (zero-copy when it supports ScanBatches natively); each block is
// filtered into a survivors block that is block-copied into the output.
// One comparison is metered per tuple, exactly as the per-tuple loop did.
func SelectScan(src Source, pred func(*storage.Tuple) bool, spec SelectSpec) *storage.TempList {
	out := spec.newList()
	buf := storage.GetBatch()
	keep := storage.GetBatch()
	ScanBatches(src, buf, func(block storage.TupleBatch) bool {
		spec.Meter.AddCompare(int64(len(block)))
		spec.Meter.AddBatch(1)
		keep = keep[:0]
		for _, t := range block {
			if pred(t) {
				keep = append(keep, t)
			}
		}
		out.AppendBatch(keep)
		return true
	})
	storage.PutBatch(keep)
	storage.PutBatch(buf)
	return out
}
