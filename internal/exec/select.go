package exec

import (
	"repro/internal/meter"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// The three selection access paths of §4: "a hash lookup (exact match
// only) is always faster than a tree lookup which is always faster than a
// sequential scan."

// SelectSpec names the output of a selection.
type SelectSpec struct {
	RelName string
	Schema  *storage.Schema
	Meter   *meter.Counters
}

func (s SelectSpec) newList() *storage.TempList {
	return storage.MustTempList(singleDesc(s.RelName, s.Schema))
}

// SelectEqHash performs an exact-match selection through a hash index.
func SelectEqHash(ix tupleindex.Hashed, field int, key storage.Value, spec SelectSpec) *storage.TempList {
	out := spec.newList()
	h := storage.Hash(key)
	spec.Meter.AddHash(1)
	ix.SearchKeyAll(h,
		func(t *storage.Tuple) bool {
			spec.Meter.AddCompare(1)
			return storage.Equal(tupleindex.KeyOf(t, field), key)
		},
		func(t *storage.Tuple) bool {
			out.Append(storage.Row{t})
			return true
		})
	return out
}

// SelectEqTree performs an exact-match selection through an ordered index:
// a search to any matching entry, then a scan in both directions, since
// equal entries are logically contiguous (§3.3.4).
func SelectEqTree(ix tupleindex.Ordered, field int, key storage.Value, spec SelectSpec) *storage.TempList {
	out := spec.newList()
	ix.SearchAll(tupleindex.PosFor(key, field), func(t *storage.Tuple) bool {
		out.Append(storage.Row{t})
		return true
	})
	return out
}

// SelectRange selects lo <= field <= hi through an ordered index; hash
// structures cannot serve range queries (§3.2.2: "range queries (hash
// structures excluded)"). Nil bounds are open.
func SelectRange(ix tupleindex.Ordered, field int, lo, hi *storage.Value, spec SelectSpec) *storage.TempList {
	out := spec.newList()
	loPos := func(*storage.Tuple) int { return 0 } // everything >= -inf
	if lo != nil {
		loPos = tupleindex.PosFor(*lo, field)
	}
	hiPos := func(*storage.Tuple) int { return 0 } // everything <= +inf
	if hi != nil {
		hiPos = tupleindex.PosFor(*hi, field)
	}
	ix.Range(loPos, hiPos, func(t *storage.Tuple) bool {
		out.Append(storage.Row{t})
		return true
	})
	return out
}

// SelectScan selects by predicate with a sequential scan through an index
// — possibly one on an unrelated attribute, the fallback access path when
// no index covers the selection column.
func SelectScan(src Source, pred func(*storage.Tuple) bool, spec SelectSpec) *storage.TempList {
	out := spec.newList()
	src.Scan(func(t *storage.Tuple) bool {
		spec.Meter.AddCompare(1)
		if pred(t) {
			out.Append(storage.Row{t})
		}
		return true
	})
	return out
}
