// Package exec implements the MM-DBMS query operators of §3: selection
// through an index (hash lookup, tree lookup, range, or sequential scan
// through an unrelated index), the five studied join methods plus the
// precomputed pointer join, and duplicate-eliminating projection by Sort
// Scan or Hashing. Operators consume tuple sources and produce temporary
// lists (§2.3) — tuple-pointer rows plus a result descriptor; data is
// never copied, only pointed to.
package exec

import (
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// Source yields tuples. Relations are always reached through an index
// (§2.1); temporary lists may be traversed directly.
type Source interface {
	Len() int
	Scan(fn func(*storage.Tuple) bool)
}

// BatchSource is an optional capability of sources that can hand tuples
// out in blocks — the batch-at-a-time contract of storage.TupleBatch.
// fn must not retain the block; implementations may reuse buf between
// calls or hand out zero-copy views of their own storage.
type BatchSource interface {
	ScanBatches(buf storage.TupleBatch, fn func(storage.TupleBatch) bool)
}

// ScanBatches drains src block-wise: natively when src implements
// BatchSource, otherwise by gathering the per-tuple scan into buf and
// flushing each time it fills. All exec operators use this instead of
// Source.Scan on their hot paths.
func ScanBatches(src Source, buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	if bs, ok := src.(BatchSource); ok {
		bs.ScanBatches(buf, fn)
		return
	}
	if cap(buf) == 0 {
		buf = make([]*storage.Tuple, 0, storage.BatchSize)
	}
	buf = buf[:0]
	stop := false
	src.Scan(func(t *storage.Tuple) bool {
		buf = append(buf, t)
		if len(buf) == cap(buf) {
			if !fn(buf) {
				stop = true
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if !stop && len(buf) > 0 {
		fn(buf)
	}
}

// OrderedScan adapts an ordered tuple index into a Source; iteration is in
// key order.
type OrderedScan struct{ Index tupleindex.Ordered }

// Len returns the number of tuples.
func (s OrderedScan) Len() int { return s.Index.Len() }

// Scan visits tuples in ascending key order.
func (s OrderedScan) Scan(fn func(*storage.Tuple) bool) { s.Index.ScanAsc(fn) }

// ScanBatches implements BatchSource: blocks come node-wise from the
// index when it scans in batches natively (T Tree, sorted array).
func (s OrderedScan) ScanBatches(buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	tupleindex.ScanBatches(s.Index, buf, fn)
}

// HashedScan adapts a hash tuple index into a Source; iteration order is
// unspecified.
type HashedScan struct{ Index tupleindex.Hashed }

// Len returns the number of tuples.
func (s HashedScan) Len() int { return s.Index.Len() }

// Scan visits tuples in unspecified order.
func (s HashedScan) Scan(fn func(*storage.Tuple) bool) { s.Index.Scan(fn) }

// ScanBatches implements BatchSource.
func (s HashedScan) ScanBatches(buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	tupleindex.ScanHashedBatches(s.Index, buf, fn)
}

// ListColumn adapts one column of a temporary list into a Source: the
// paper's pipeline where a selection result feeds a join (§2.1 Query 2).
type ListColumn struct {
	List   *storage.TempList
	Column int // which source slot of each row to yield
}

// Len returns the number of rows.
func (s ListColumn) Len() int { return s.List.Len() }

// Scan visits the column's tuples in row order.
func (s ListColumn) Scan(fn func(*storage.Tuple) bool) {
	s.List.Scan(func(_ int, row storage.Row) bool { return fn(row[s.Column]) })
}

// ScanBatches implements BatchSource. Single-source lists hand their arena
// chunks out zero-copy; wider lists gather the column into buf.
func (s ListColumn) ScanBatches(buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	s.List.ScanColumnBatches(s.Column, buf, fn)
}

// Tuples materializes a source into a slice; builders (hash table, sort
// array) use it as their input pass. The source is drained block-wise and
// block-copied into the result.
func Tuples(s Source) []*storage.Tuple {
	out := make([]*storage.Tuple, 0, s.Len())
	buf := storage.GetBatch()
	ScanBatches(s, buf, func(block storage.TupleBatch) bool {
		out = append(out, block...)
		return true
	})
	storage.PutBatch(buf)
	return out
}

// SingleDescriptor builds the descriptor for a one-source result over the
// named relation, exposing every column of its schema — the descriptor
// every selection operator (serial or parallel) emits.
func SingleDescriptor(relName string, schema *storage.Schema) storage.Descriptor {
	return singleDesc(relName, schema)
}

// singleDesc builds the descriptor for a one-source result over the named
// relation, exposing the given columns of its schema.
func singleDesc(relName string, schema *storage.Schema) storage.Descriptor {
	d := storage.Descriptor{Sources: []string{relName}}
	for i := 0; i < schema.Arity(); i++ {
		d.Cols = append(d.Cols, storage.ColRef{Source: 0, Field: i, Name: schema.Field(i).Name})
	}
	return d
}

// PairDescriptor builds the descriptor for a two-source join result; cols
// name the output columns as (source, field, name) triples.
func PairDescriptor(outerName, innerName string, cols []storage.ColRef) storage.Descriptor {
	return storage.Descriptor{Sources: []string{outerName, innerName}, Cols: cols}
}
