// Package exec implements the MM-DBMS query operators of §3: selection
// through an index (hash lookup, tree lookup, range, or sequential scan
// through an unrelated index), the five studied join methods plus the
// precomputed pointer join, and duplicate-eliminating projection by Sort
// Scan or Hashing. Operators consume tuple sources and produce temporary
// lists (§2.3) — tuple-pointer rows plus a result descriptor; data is
// never copied, only pointed to.
package exec

import (
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// Source yields tuples. Relations are always reached through an index
// (§2.1); temporary lists may be traversed directly.
type Source interface {
	Len() int
	Scan(fn func(*storage.Tuple) bool)
}

// OrderedScan adapts an ordered tuple index into a Source; iteration is in
// key order.
type OrderedScan struct{ Index tupleindex.Ordered }

// Len returns the number of tuples.
func (s OrderedScan) Len() int { return s.Index.Len() }

// Scan visits tuples in ascending key order.
func (s OrderedScan) Scan(fn func(*storage.Tuple) bool) { s.Index.ScanAsc(fn) }

// HashedScan adapts a hash tuple index into a Source; iteration order is
// unspecified.
type HashedScan struct{ Index tupleindex.Hashed }

// Len returns the number of tuples.
func (s HashedScan) Len() int { return s.Index.Len() }

// Scan visits tuples in unspecified order.
func (s HashedScan) Scan(fn func(*storage.Tuple) bool) { s.Index.Scan(fn) }

// ListColumn adapts one column of a temporary list into a Source: the
// paper's pipeline where a selection result feeds a join (§2.1 Query 2).
type ListColumn struct {
	List   *storage.TempList
	Column int // which source slot of each row to yield
}

// Len returns the number of rows.
func (s ListColumn) Len() int { return s.List.Len() }

// Scan visits the column's tuples in row order.
func (s ListColumn) Scan(fn func(*storage.Tuple) bool) {
	s.List.Scan(func(_ int, row storage.Row) bool { return fn(row[s.Column]) })
}

// Tuples materializes a source into a slice; builders (hash table, sort
// array) use it as their input pass.
func Tuples(s Source) []*storage.Tuple {
	out := make([]*storage.Tuple, 0, s.Len())
	s.Scan(func(t *storage.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// SingleDescriptor builds the descriptor for a one-source result over the
// named relation, exposing every column of its schema — the descriptor
// every selection operator (serial or parallel) emits.
func SingleDescriptor(relName string, schema *storage.Schema) storage.Descriptor {
	return singleDesc(relName, schema)
}

// singleDesc builds the descriptor for a one-source result over the named
// relation, exposing the given columns of its schema.
func singleDesc(relName string, schema *storage.Schema) storage.Descriptor {
	d := storage.Descriptor{Sources: []string{relName}}
	for i := 0; i < schema.Arity(); i++ {
		d.Cols = append(d.Cols, storage.ColRef{Source: 0, Field: i, Name: schema.Field(i).Name})
	}
	return d
}

// PairDescriptor builds the descriptor for a two-source join result; cols
// name the output columns as (source, field, name) triples.
func PairDescriptor(outerName, innerName string, cols []storage.ColRef) storage.Descriptor {
	return storage.Descriptor{Sources: []string{outerName, innerName}, Cols: cols}
}
