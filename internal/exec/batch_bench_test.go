package exec_test

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// The batch benchmarks compare the shipped batch-at-a-time operators with
// in-test reconstructions of the original tuple-at-a-time loops: per-tuple
// callbacks emitting into the original []storage.Row temp-list layout,
// where every emitted row retained its Row header on the heap and the
// backing slice regrow-copied as it filled. Run with -benchmem: the
// contract is fewer allocs/op and no lower throughput.

func benchRelation(b *testing.B, name string, n int) []*storage.Tuple {
	b.Helper()
	sch := storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})
	rel, err := storage.NewRelation(name, sch, storage.Config{}, storage.NewIDGen())
	if err != nil {
		b.Fatal(err)
	}
	out := make([]*storage.Tuple, n)
	for i := 0; i < n; i++ {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(int64(i % (n / 2)))})
		if err != nil {
			b.Fatal(err)
		}
		out[i] = tp
	}
	return out
}

type sliceSrc []*storage.Tuple

func (s sliceSrc) Len() int { return len(s) }
func (s sliceSrc) Scan(fn func(*storage.Tuple) bool) {
	for _, t := range s {
		if !fn(t) {
			return
		}
	}
}

const benchN = 65536

func BenchmarkSelectScanTupleAtATime(b *testing.B) {
	src := sliceSrc(benchRelation(b, "r", benchN))
	pred := func(t *storage.Tuple) bool { return t.Field(0).Int()%2 == 0 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rows []storage.Row
		src.Scan(func(t *storage.Tuple) bool {
			if pred(t) {
				rows = append(rows, storage.Row{t})
			}
			return true
		})
		sinkRows = rows
	}
}

// sinkRows keeps tuple-at-a-time results live so the compiler cannot
// elide the retained Row allocations the old layout paid for.
var sinkRows []storage.Row

func BenchmarkSelectScanBatched(b *testing.B) {
	src := sliceSrc(benchRelation(b, "r", benchN))
	spec := exec.SelectSpec{RelName: "r",
		Schema: storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})}
	pred := func(t *storage.Tuple) bool { return t.Field(0).Int()%2 == 0 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.SelectScan(src, pred, spec).Release()
	}
}

func BenchmarkHashJoinTupleAtATime(b *testing.B) {
	to := sliceSrc(benchRelation(b, "r1", benchN))
	ti := sliceSrc(benchRelation(b, "r2", benchN))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := tupleindex.NewChainHash(tupleindex.Options{Field: 0, Capacity: len(ti)})
		for _, t := range ti {
			tbl.Insert(t)
		}
		var rows []storage.Row
		for _, o := range to {
			ko := tupleindex.KeyOf(o, 0)
			tbl.SearchKeyAll(storage.Hash(ko), func(t *storage.Tuple) bool {
				return storage.Equal(tupleindex.KeyOf(t, 0), ko)
			}, func(t *storage.Tuple) bool {
				rows = append(rows, storage.Row{o, t})
				return true
			})
		}
		sinkRows = rows
	}
}

func BenchmarkHashJoinBatched(b *testing.B) {
	to := sliceSrc(benchRelation(b, "r1", benchN))
	ti := sliceSrc(benchRelation(b, "r2", benchN))
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.HashJoin(to, ti, spec).Release()
	}
}
