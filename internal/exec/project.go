package exec

import (
	"repro/internal/meter"
	"repro/internal/sortutil"
	"repro/internal/storage"
)

// Projection in the MM-DBMS is mostly implicit: the result descriptor
// already names the output fields and no width reduction is ever done
// (§2.3). The only real work is duplicate elimination (§3.4), for which
// the paper compared Sort Scan [BBD83] and Hashing [DKO84].

// projectKey materializes the output-column values of a row — the values
// duplicate elimination compares.
func projectKey(list *storage.TempList, i int) []storage.Value {
	return list.RowValues(i)
}

// KeysEqual compares two projected-value vectors for equality, metering
// one comparison per column examined. Exported for the parallel
// duplicate-elimination path, which must agree exactly with the serial
// one on key identity.
func KeysEqual(a, b []storage.Value, m *meter.Counters) bool {
	for i := range a {
		m.AddCompare(1)
		if !storage.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func keysCompare(a, b []storage.Value, m *meter.Counters) int {
	for i := range a {
		m.AddCompare(1)
		if c := storage.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// KeyHash hashes a projected-value vector (FNV-style fold of the
// per-value hashes), metering one hash call. Exported alongside KeysEqual
// so partitioned hashing hashes keys identically to the serial path.
func KeyHash(a []storage.Value, m *meter.Counters) uint64 {
	m.AddHash(1)
	h := uint64(14695981039346656037)
	for _, v := range a {
		h ^= storage.Hash(v)
		h *= 1099511628211
	}
	return h
}

// ProjectHash eliminates duplicate result rows with a hash table sized at
// |R|/2 slots (§3.4); duplicates are discarded as they are encountered, so
// high duplicate percentages make it faster, not slower.
func ProjectHash(list *storage.TempList, m *meter.Counters) *storage.TempList {
	// The survivor count is at most |R|, so presizing the output at the
	// input cardinality (directory only — chunks are pooled on demand)
	// means the emit path never grows mid-scan.
	out := storage.MustTempListHint(list.Descriptor(), list.Len())
	nslots := list.Len() / 2
	if nslots < 1 {
		nslots = 1
	}
	type entry struct {
		key  []storage.Value
		next *entry
	}
	slots := make([]*entry, nslots)
	list.Scan(func(i int, row storage.Row) bool {
		key := projectKey(list, i)
		s := KeyHash(key, m) % uint64(nslots)
		for e := slots[s]; e != nil; e = e.next {
			if KeysEqual(e.key, key, m) {
				return true // duplicate: discard on sight (§3.4)
			}
		}
		slots[s] = &entry{key: key, next: slots[s]}
		out.Append(row)
		return true
	})
	return out
}

// ProjectSortScan eliminates duplicates by sorting the rows on their
// projected values (quicksort with the insertion-sort cutoff), then
// scanning and dropping adjacent equals. The whole list is sorted before
// any duplicate is discarded, so duplicates do not speed it up (§3.4).
func ProjectSortScan(list *storage.TempList, m *meter.Counters) *storage.TempList {
	out := storage.MustTempListHint(list.Descriptor(), list.Len())
	type keyed struct {
		key []storage.Value
		row storage.Row
	}
	rows := make([]keyed, list.Len())
	list.Scan(func(i int, row storage.Row) bool {
		rows[i] = keyed{key: projectKey(list, i), row: row}
		m.AddMove(1)
		return true
	})
	sortutil.SortCutoff(rows, func(a, b keyed) int { return keysCompare(a.key, b.key, m) }, sortutil.DefaultCutoff, m)
	for i := range rows {
		if i > 0 && KeysEqual(rows[i-1].key, rows[i].key, m) {
			continue
		}
		out.Append(rows[i].row)
	}
	return out
}
