package exec

import (
	"repro/internal/meter"
	"repro/internal/plan"
	"repro/internal/sortkey"
	"repro/internal/sortutil"
	"repro/internal/storage"
)

// Projection in the MM-DBMS is mostly implicit: the result descriptor
// already names the output fields and no width reduction is ever done
// (§2.3). The only real work is duplicate elimination (§3.4), for which
// the paper compared Sort Scan [BBD83] and Hashing [DKO84].

// projectKey materializes the output-column values of a row — the values
// duplicate elimination compares.
func projectKey(list *storage.TempList, i int) []storage.Value {
	return list.RowValues(i)
}

// KeysEqual compares two projected-value vectors for equality, metering
// one comparison per column examined. Exported for the parallel
// duplicate-elimination path, which must agree exactly with the serial
// one on key identity.
func KeysEqual(a, b []storage.Value, m *meter.Counters) bool {
	for i := range a {
		m.AddCompare(1)
		if !storage.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func keysCompare(a, b []storage.Value, m *meter.Counters) int {
	for i := range a {
		m.AddCompare(1)
		if c := storage.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// KeyHash hashes a projected-value vector (FNV-style fold of the
// per-value hashes), metering one hash call. Exported alongside KeysEqual
// so partitioned hashing hashes keys identically to the serial path.
func KeyHash(a []storage.Value, m *meter.Counters) uint64 {
	m.AddHash(1)
	h := uint64(14695981039346656037)
	for _, v := range a {
		h ^= storage.Hash(v)
		h *= 1099511628211
	}
	return h
}

// ProjectHash eliminates duplicate result rows with a hash table sized at
// |R|/2 slots (§3.4); duplicates are discarded as they are encountered, so
// high duplicate percentages make it faster, not slower.
func ProjectHash(list *storage.TempList, m *meter.Counters) *storage.TempList {
	// The survivor count is at most |R|, so presizing the output at the
	// input cardinality (directory only — chunks are pooled on demand)
	// means the emit path never grows mid-scan.
	out := storage.MustTempListHint(list.Descriptor(), list.Len())
	nslots := list.Len() / 2
	if nslots < 1 {
		nslots = 1
	}
	type entry struct {
		key  []storage.Value
		next *entry
	}
	slots := make([]*entry, nslots)
	list.Scan(func(i int, row storage.Row) bool {
		key := projectKey(list, i)
		s := KeyHash(key, m) % uint64(nslots)
		for e := slots[s]; e != nil; e = e.next {
			if KeysEqual(e.key, key, m) {
				return true // duplicate: discard on sight (§3.4)
			}
		}
		slots[s] = &entry{key: key, next: slots[s]}
		out.Append(row)
		return true
	})
	return out
}

// ProjectSortScan eliminates duplicates by sorting the rows on their
// projected values (quicksort with the insertion-sort cutoff), then
// scanning and dropping adjacent equals. The whole list is sorted before
// any duplicate is discarded, so duplicates do not speed it up (§3.4).
func ProjectSortScan(list *storage.TempList, m *meter.Counters) *storage.TempList {
	out := storage.MustTempListHint(list.Descriptor(), list.Len())
	type keyed struct {
		key []storage.Value
		row storage.Row
	}
	rows := make([]keyed, list.Len())
	list.Scan(func(i int, row storage.Row) bool {
		rows[i] = keyed{key: projectKey(list, i), row: row}
		m.AddMove(1)
		return true
	})
	sortutil.SortCutoff(rows, func(a, b keyed) int { return keysCompare(a.key, b.key, m) }, sortutil.DefaultCutoff, m)
	for i := range rows {
		if i > 0 && KeysEqual(rows[i-1].key, rows[i].key, m) {
			continue
		}
		out.Append(rows[i].row)
	}
	return out
}

// ProjectSort eliminates duplicates by sort-and-scan using the given
// sort substrate: the faithful comparator path (ProjectSortScan) for
// plan.SortQuick, the normalized-key radix kernel for plan.SortRadixKey.
// Both produce the distinct rows in ascending projected-key order.
func ProjectSort(list *storage.TempList, m *meter.Counters, method plan.SortMethod) *storage.TempList {
	if method == plan.SortRadixKey {
		return ProjectSortScanRadix(list, m)
	}
	return ProjectSortScan(list, m)
}

// ProjectSortScanRadix is the cache-conscious Sort Scan: instead of
// quicksorting []Value vectors through a comparator closure, it encodes
// each row's projected key into a fixed-width order-preserving prefix
// (internal/sortkey) and MSD-radix-sorts (prefix, row-ordinal) pairs.
// Single-column projections read keys straight out of the tuple with no
// per-row materialization at all; multi-column projections encode the
// composite key once and tie-break equal prefixes with the comparator.
// The scan-and-drop-adjacent-equals phase is the same as §3.4.
func ProjectSortScanRadix(list *storage.TempList, m *meter.Counters) *storage.TempList {
	out := storage.MustTempListHint(list.Descriptor(), list.Len())
	n := list.Len()
	if n == 0 {
		return out
	}
	cols := len(list.Descriptor().Cols)
	s := sortkey.GetRowSorter()
	defer sortkey.PutRowSorter(s)
	ent := s.Entries(n)

	var tie sortkey.Tie[int32]
	var keys [][]storage.Value // multi-column only
	allDecisive := true
	if cols == 1 {
		for i := 0; i < n; i++ {
			k, dec := sortkey.Prefix(list.Value(i, 0))
			if !dec {
				allDecisive = false
			}
			ent[i] = sortkey.Entry[int32]{K: k, P: int32(i)}
		}
		m.AddKeyBytes(int64(n) * sortkey.PrefixBytes)
		if !allDecisive {
			tie = func(a, b int32) int {
				return storage.Compare(list.Value(int(a), 0), list.Value(int(b), 0))
			}
		}
	} else {
		// Composite key: encode the full order-preserving byte string,
		// sort on its first 8 bytes, tie-break with the comparator. The
		// key vectors are materialized once (the faithful path does the
		// same) so ties never re-decode tuples.
		keys = make([][]storage.Value, n)
		var buf []byte
		var keyBytes int64
		for i := 0; i < n; i++ {
			keys[i] = list.RowValues(i)
			buf = sortkey.AppendKey(buf[:0], keys[i])
			keyBytes += int64(len(buf))
			ent[i] = sortkey.Entry[int32]{K: sortkey.PrefixOfBytes(buf), P: int32(i)}
		}
		m.AddKeyBytes(keyBytes)
		allDecisive = false
		tie = func(a, b int32) int {
			return keysCompare(keys[a], keys[b], nil)
		}
	}

	s.Sort(ent, tie, m)
	m.AddMove(int64(n))

	// Scan in sorted order, dropping adjacent equals. With decisive
	// prefixes equal K means equal key; otherwise equal K demands a
	// value check before dropping.
	for i := range ent {
		if i > 0 && ent[i].K == ent[i-1].K {
			if allDecisive {
				m.AddCompare(1)
				continue
			}
			var dup bool
			if cols == 1 {
				m.AddCompare(1)
				dup = storage.Equal(list.Value(int(ent[i].P), 0), list.Value(int(ent[i-1].P), 0))
			} else {
				dup = KeysEqual(keys[ent[i].P], keys[ent[i-1].P], m)
			}
			if dup {
				continue
			}
		}
		out.Append(list.Row(int(ent[i].P)))
	}
	return out
}
