package exec_test

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// Steady-state allocation guards: once the batch and chunk pools are warm,
// operator allocations must stay far below one object per tuple. The
// bounds are deliberately loose (an eighth of a tuple each) — the point is
// to catch a reintroduced per-row Row header or per-probe closure, which
// would push the count to one-plus per tuple.

const allocN = 4096

func allocRelation(t testing.TB, name string, n int) []*storage.Tuple {
	t.Helper()
	sch := storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})
	rel, err := storage.NewRelation(name, sch, storage.Config{}, storage.NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*storage.Tuple, n)
	for i := 0; i < n; i++ {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tp
	}
	return out
}

func guardAllocs(t *testing.T, name string, perRun float64, boundPerTuple float64) {
	t.Helper()
	if perRun > float64(allocN)*boundPerTuple {
		t.Fatalf("%s: %.0f allocs per run over %d tuples (bound %.0f) — a per-tuple allocation is back on the hot path",
			name, perRun, allocN, float64(allocN)*boundPerTuple)
	}
}

func TestSelectScanSteadyStateAllocs(t *testing.T) {
	src := sliceSrc(allocRelation(t, "r", allocN))
	spec := exec.SelectSpec{RelName: "r",
		Schema: storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})}
	pred := func(tp *storage.Tuple) bool { return tp.Field(0).Int()%2 == 0 }
	run := func() { exec.SelectScan(src, pred, spec).Release() }
	run() // warm the pools
	guardAllocs(t, "SelectScan", testing.AllocsPerRun(10, run), 1.0/8)
}

func TestSelectEqHashSteadyStateAllocs(t *testing.T) {
	tuples := allocRelation(t, "r", allocN)
	ix := tupleindex.NewChainHash(tupleindex.Options{Field: 0, Capacity: len(tuples)})
	for _, tp := range tuples {
		ix.Insert(tp)
	}
	spec := exec.SelectSpec{RelName: "r",
		Schema: storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})}
	run := func() {
		exec.SelectEqHash(ix, 0, storage.IntValue(int64(allocN/2)), spec).Release()
	}
	run()
	// A point lookup is O(1): a handful of objects total, not per tuple.
	if perRun := testing.AllocsPerRun(10, run); perRun > 16 {
		t.Fatalf("SelectEqHash: %.0f allocs per lookup", perRun)
	}
}

func TestHashJoinProbeSteadyStateAllocs(t *testing.T) {
	to := sliceSrc(allocRelation(t, "r1", allocN))
	tuples := allocRelation(t, "r2", allocN)
	ix := tupleindex.NewChainHash(tupleindex.Options{Field: 0, Capacity: len(tuples)})
	for _, tp := range tuples {
		ix.Insert(tp)
	}
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2"}
	// Probe-only (the build phase's chain nodes are inherent allocations).
	run := func() { exec.HashJoinExisting(to, ix, spec).Release() }
	run()
	guardAllocs(t, "HashJoinExisting probe", testing.AllocsPerRun(10, run), 1.0/8)
}

func TestTreeJoinProbeSteadyStateAllocs(t *testing.T) {
	to := sliceSrc(allocRelation(t, "r1", allocN))
	tuples := allocRelation(t, "r2", allocN)
	ix := tupleindex.NewTTree(tupleindex.Options{Field: 0})
	for _, tp := range tuples {
		ix.Insert(tp)
	}
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2"}
	run := func() { exec.TreeJoin(to, ix, spec).Release() }
	run()
	guardAllocs(t, "TreeJoin probe", testing.AllocsPerRun(10, run), 1.0/8)
}

func TestPrecomputedJoinEmitAllocs(t *testing.T) {
	// Self-referencing Ref column: every outer tuple points at itself, so
	// the join is pure emit — the tightest loop over AppendPair.
	sch := storage.MustSchema(
		storage.FieldDef{Name: "val", Type: storage.Int},
		storage.FieldDef{Name: "fk", Type: storage.Ref, ForeignKey: "r"},
	)
	rel, err := storage.NewRelation("r", sch, storage.Config{}, storage.NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]*storage.Tuple, allocN)
	for i := range tuples {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(int64(i)), storage.NullValue})
		if err != nil {
			t.Fatal(err)
		}
		if err := rel.Update(tp, 1, storage.RefValue(tp)); err != nil {
			t.Fatal(err)
		}
		tuples[i] = tp
	}
	src := sliceSrc(tuples)
	spec := exec.JoinSpec{OuterName: "r", InnerName: "r", Hint: allocN}
	run := func() { exec.PrecomputedJoin(src, 1, spec).Release() }
	run()
	guardAllocs(t, "PrecomputedJoin emit", testing.AllocsPerRun(10, run), 1.0/8)
}
