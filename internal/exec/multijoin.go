package exec

import (
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// Multi-join pipeline: the driver relation streams through a sequence
// of build-side hash tables in batches, each stage binding one more
// relation of the join graph into the row. Nothing between stages is
// materialized — a stage's output batch feeds the next stage's probe
// directly, and only the final rows land in a TempList (or are merely
// counted). Build sides are the one thing that must exist up front, so
// they are hash tables built (or reused from an existing index) before
// the stream starts.
//
// The pipeline is reusable: buffers, per-stage match blocks, and probe
// closures are allocated at construction, so a warm Feed/Flush cycle
// over a fresh driver allocates nothing.

// StageSpec describes one join step of a pipeline.
type StageSpec struct {
	// Table is the hash table over the build relation's join column
	// (keyed by storage.Hash of tupleindex.KeyOf). Nil when Deref is set.
	Table tupleindex.Hashed
	// BuildField is the join column inside the build relation;
	// tupleindex.SelfField joins on tuple identity.
	BuildField int
	// BuildSlot is the pipeline-row slot the matched build tuple binds.
	BuildSlot int
	// ProbeSlot/ProbeField locate the probe key in the incoming row:
	// the slot of an already-bound relation and the field within it.
	ProbeSlot, ProbeField int
	// Deref marks a precomputed pointer join (§2.1): instead of probing
	// a table, the stage follows the Ref value at ProbeSlot/ProbeField;
	// a null pointer means no match.
	Deref bool
	// Residual lists extra equality edges checked after the hash match —
	// the closing edges of a cyclic join graph, which reference two
	// already-bound slots.
	Residual []ResidualEdge
}

// ResidualEdge is one post-match equality predicate between two bound
// slots of the pipeline row.
type ResidualEdge struct {
	ASlot, AField int
	BSlot, BField int
}

// PipelineSpec configures a multi-join pipeline.
type PipelineSpec struct {
	// Slots is the pipeline-row stride: the number of relations in the
	// join, indexed by declaration order (not join order), so the final
	// descriptor's sources line up regardless of the order chosen.
	Slots int
	// DriverSlot is the streamed relation's slot.
	DriverSlot int
	// Stages run in order; each binds one build slot.
	Stages []StageSpec
	// BatchRows is the per-stage buffer size in rows; <= 0 uses
	// storage.BatchSize.
	BatchRows int
	// Out receives final rows; nil requires Discard.
	Out *storage.TempList
	// Discard counts final rows without materializing them.
	Discard bool
	// Limit stops the pipeline after emitting this many rows (0 = none).
	Limit int
	Meter *meter.Counters
	// Prog, when non-nil, receives rows-processed progress per fed batch.
	Prog *obs.Progress
	// Sched is the query's admission handle on the shared morsel
	// scheduler (see SelectSpec.Sched). The serial pipeline ignores it.
	Sched *sched.Query
}

// pipeStage is a StageSpec plus its runtime state: the hoisted probe
// key/closure (a per-probe closure literal would heap-allocate), the
// stage-private match block (stages recurse into each other, so a
// shared block would be clobbered mid-iteration), the row scratch the
// next row is assembled in, and the emitted-row counter.
type pipeStage struct {
	StageSpec
	key     storage.Value
	match   func(*storage.Tuple) bool
	matches storage.TupleBatch
	row     []*storage.Tuple
	rows    int
}

// Pipeline is a reusable multi-join executor. Construct with
// NewPipeline, stream the driver through Feed, then Flush once; Emitted
// and StageRows report the result and per-stage actuals. Release
// returns pooled buffers when the pipeline is done for good.
type Pipeline struct {
	spec      PipelineSpec
	stages    []pipeStage
	bufs      [][]*storage.Tuple // per-stage input rows, flat, stride=Slots
	driverRow []*storage.Tuple
	emitted   int
	stopped   bool
}

// NewPipeline builds the runtime state for spec. The spec must have at
// least one stage, and every stage must bind a distinct non-driver slot.
func NewPipeline(spec PipelineSpec) *Pipeline {
	if spec.BatchRows <= 0 {
		spec.BatchRows = storage.BatchSize
	}
	p := &Pipeline{
		spec:      spec,
		stages:    make([]pipeStage, len(spec.Stages)),
		bufs:      make([][]*storage.Tuple, len(spec.Stages)),
		driverRow: make([]*storage.Tuple, spec.Slots),
	}
	for i := range spec.Stages {
		st := &p.stages[i]
		st.StageSpec = spec.Stages[i]
		st.row = make([]*storage.Tuple, spec.Slots)
		if !st.Deref {
			st.matches = storage.GetBatch()
			fi := st.BuildField
			// The closure reads the meter through p so Rearm can swap in a
			// per-worker counter block without rebuilding closures.
			st.match = func(t *storage.Tuple) bool {
				p.spec.Meter.AddCompare(1)
				return storage.Equal(tupleindex.KeyOf(t, fi), st.key)
			}
		}
		p.bufs[i] = make([]*storage.Tuple, 0, spec.BatchRows*spec.Slots)
	}
	return p
}

// Reset rearms the pipeline for a fresh driver stream into out (which
// may be nil with Discard). Stage tables are kept — they describe the
// build sides, which have not changed.
func (p *Pipeline) Reset(out *storage.TempList) {
	p.spec.Out = out
	p.emitted = 0
	p.stopped = false
	for i := range p.stages {
		p.stages[i].rows = 0
		p.bufs[i] = p.bufs[i][:0]
	}
}

// Rearm is Reset plus a meter swap — the per-morsel re-use path, where
// each morsel writes into its own partial list under the worker's
// private counter block.
func (p *Pipeline) Rearm(out *storage.TempList, m *meter.Counters) {
	p.spec.Meter = m
	p.Reset(out)
}

// Release returns pooled blocks. The pipeline must not be used after.
func (p *Pipeline) Release() {
	for i := range p.stages {
		if p.stages[i].matches != nil {
			storage.PutBatch(p.stages[i].matches)
			p.stages[i].matches = nil
		}
	}
}

// Emitted returns the number of final rows produced so far.
func (p *Pipeline) Emitted() int { return p.emitted }

// StageRows returns the rows stage k emitted — the actual the planner's
// forecast is audited against.
func (p *Pipeline) StageRows(k int) int { return p.stages[k].rows }

// More reports whether the pipeline still accepts input (false once a
// Limit has been reached).
func (p *Pipeline) More() bool { return !p.stopped }

// Feed streams one block of driver tuples into the pipeline. It returns
// false once the Limit is reached; callers should stop feeding then.
func (p *Pipeline) Feed(block []*storage.Tuple) bool {
	if p.stopped {
		return false
	}
	p.spec.Meter.AddBatch(1)
	if p.spec.Prog != nil {
		p.spec.Prog.AddRows(int64(len(block)))
	}
	for _, t := range block {
		p.driverRow[p.spec.DriverSlot] = t
		p.bufs[0] = append(p.bufs[0], p.driverRow...)
		if len(p.bufs[0]) == cap(p.bufs[0]) {
			if !p.process(0) {
				p.stopped = true
				return false
			}
		}
	}
	return true
}

// Flush drains every partially-filled stage buffer in pipeline order;
// call once after the last Feed.
func (p *Pipeline) Flush() {
	for k := 0; k < len(p.stages) && !p.stopped; k++ {
		if len(p.bufs[k]) > 0 {
			if !p.process(k) {
				p.stopped = true
			}
		}
	}
}

// process probes every buffered row through stage k, forwarding matches
// downstream, and empties the buffer. Returns false on Limit.
func (p *Pipeline) process(k int) bool {
	st := &p.stages[k]
	buf := p.bufs[k]
	slots := p.spec.Slots
	ok := true
	for off := 0; off < len(buf); off += slots {
		if !p.probe(k, st, buf[off:off+slots]) {
			ok = false
			break
		}
	}
	p.bufs[k] = buf[:0]
	return ok
}

// probe matches one row against stage k's build side and binds each
// match into the next stage's buffer (or the final output).
func (p *Pipeline) probe(k int, st *pipeStage, row []*storage.Tuple) bool {
	if st.Deref {
		v := row[st.ProbeSlot].Field(st.ProbeField)
		if v.IsNull() {
			return true
		}
		return p.bind(k, st, row, v.Ref())
	}
	st.key = tupleindex.KeyOf(row[st.ProbeSlot], st.ProbeField)
	p.spec.Meter.AddHash(1)
	st.matches = index.SearchKeyAppend[*storage.Tuple](st.Table, storage.Hash(st.key), st.match, st.matches[:0])
	for _, m := range st.matches {
		if !p.bind(k, st, row, m) {
			return false
		}
	}
	return true
}

// bind extends row with build tuple m, applies the stage's residual
// edges, and forwards the result — into the next stage's buffer
// (cascading a full buffer immediately) or the final sink.
func (p *Pipeline) bind(k int, st *pipeStage, row []*storage.Tuple, m *storage.Tuple) bool {
	copy(st.row, row)
	st.row[st.BuildSlot] = m
	for _, e := range st.Residual {
		p.spec.Meter.AddCompare(1)
		if !storage.Equal(tupleindex.KeyOf(st.row[e.ASlot], e.AField), tupleindex.KeyOf(st.row[e.BSlot], e.BField)) {
			return true
		}
	}
	st.rows++
	if k == len(p.stages)-1 {
		p.emitted++
		if !p.spec.Discard {
			p.spec.Out.Append(st.row)
		}
		return p.spec.Limit <= 0 || p.emitted < p.spec.Limit
	}
	p.bufs[k+1] = append(p.bufs[k+1], st.row...)
	if len(p.bufs[k+1]) == cap(p.bufs[k+1]) {
		return p.process(k + 1)
	}
	return true
}

// Clone returns a pipeline sharing this one's immutable stage tables
// but with private buffers, counters, and output — the per-worker copy
// the parallel probe phase hands each morsel worker. m replaces the
// meter (workers fold privately); out replaces the sink.
func (p *Pipeline) Clone(out *storage.TempList, m *meter.Counters) *Pipeline {
	spec := p.spec
	spec.Out = out
	spec.Meter = m
	spec.Prog = nil // the morsel runner reports progress itself
	return NewPipeline(spec)
}

// BuildStageTable builds a chained-bucket hash table over src's field
// column — the build phase of one pipeline stage, identical to the
// paper's hash-join build (§3.3.2). m meters the build scan only: the
// structure itself carries no meter, because the finished table is
// shared read-only across probe workers and a baked-in counter block
// would race (probe work is counted by the pipeline's own counters).
func BuildStageTable(src Source, field, nodeSize int, m *meter.Counters) tupleindex.Hashed {
	if nodeSize <= 0 {
		nodeSize = 4
	}
	ht := tupleindex.NewChainHash(tupleindex.Options{
		Field:    field,
		NodeSize: nodeSize,
		Capacity: maxInt(src.Len(), 1),
	})
	buf := storage.GetBatch()
	ScanBatches(src, buf, func(block storage.TupleBatch) bool {
		m.AddBatch(1)
		for _, t := range block {
			ht.Insert(t)
		}
		return true
	})
	storage.PutBatch(buf)
	return ht
}
