package sqlparser

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColDef is one column of a CREATE TABLE.
type ColDef struct {
	Name     string
	Type     string // INT, FLOAT, STRING, BOOL, REF
	RefTable string // for REF(table)
}

// CreateTable is CREATE TABLE name (cols..., PRIMARY KEY col [USING kind]).
type CreateTable struct {
	Name       string
	Cols       []ColDef
	PrimaryKey string
	Using      string // index kind; empty = engine default
}

func (*CreateTable) stmt() {}

// CreateIndex is CREATE [UNIQUE] INDEX ON table (column) [USING kind].
type CreateIndex struct {
	Table  string
	Column string
	Using  string
	Unique bool
}

func (*CreateIndex) stmt() {}

// ExprKind tags a literal expression.
type ExprKind int

// Literal kinds.
const (
	ExprNull ExprKind = iota
	ExprInt
	ExprFloat
	ExprString
	ExprBool
	ExprRef
)

// Expr is a literal value, or a REF(table, column, value) pointer
// expression resolved at execution time.
type Expr struct {
	Kind  ExprKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
	Ref   *RefExpr
}

// RefExpr names a unique tuple: the row of Table whose Column equals Value.
type RefExpr struct {
	Table  string
	Column string
	Value  *Expr
}

// Insert is INSERT INTO table VALUES (...)[, (...)].
type Insert struct {
	Table string
	Rows  [][]Expr
}

func (*Insert) stmt() {}

// Cond is one WHERE conjunct: column OP literal.
type Cond struct {
	Column string
	Op     string // = != < <= > >=
	Value  Expr
}

// Join is one step of a FROM join chain: JOIN table [[AS] alias] ON
// side = side, where a side is name.column or name.SELF (tuple
// identity). One side of the ON must reference the relation this step
// joins — its column lands in RightCol — and the other side may
// reference any earlier relation of the chain by its scope name (the
// alias if one was given, else the table name), recorded in LeftTable
// and LeftCol. A column of "" means SELF.
type Join struct {
	Table     string
	Alias     string // "" = no alias; the table name is the scope name
	LeftTable string // scope name of the earlier relation the ON references
	LeftCol   string // its column, or "" for SELF
	RightCol  string // column of the joined table, or "" for SELF
}

// SelectItem is one output column of a SELECT list: a plain column, or an
// aggregate function over a column (Agg non-empty). Col "*" appears only
// as COUNT(*).
type SelectItem struct {
	Agg string // "", or COUNT / SUM / MIN / MAX / AVG
	Col string
}

// OrderItem is one ORDER BY term: an output column name, or a 1-based
// output ordinal written as digits (SQL's "ORDER BY 2").
type OrderItem struct {
	Col  string
	Desc bool
}

// Select is SELECT [DISTINCT] cols FROM table [[AS] alias]
// [JOIN ... ON ...]* [WHERE ...] [GROUP BY ...] [ORDER BY ...]
// [LIMIT n]; Explain marks EXPLAIN SELECT, and Analyze additionally
// marks EXPLAIN ANALYZE SELECT (execute and report the operator trace).
//
// A select list without aggregates populates Cols (empty = *) and leaves
// Items nil; a list containing any aggregate populates Items with the
// full list, in order, and leaves Cols nil.
type Select struct {
	Explain   bool
	Analyze   bool
	Distinct  bool
	Cols      []string     // plain column list; empty = *
	Items     []SelectItem // full list when aggregates are present
	From      string
	FromAlias string // "" = no alias
	Joins     []Join // the JOIN chain, in written order
	Where     []Cond
	GroupBy   []string
	OrderBy   []OrderItem
	Limit     int // -1 = none
}

func (*Select) stmt() {}

// Update is UPDATE table SET col = expr [WHERE ...].
type Update struct {
	Table  string
	Column string
	Value  Expr
	Where  []Cond
}

func (*Update) stmt() {}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where []Cond
}

func (*Delete) stmt() {}
