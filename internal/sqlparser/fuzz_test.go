package sqlparser

import (
	"strconv"
	"testing"
)

// FuzzParseSQL fuzzes the full lexer + parser pipeline: no input may
// panic or hang, and every accepted statement must satisfy the AST's
// structural invariants (the contracts the executor relies on without
// re-checking). The seed corpus spans every statement kind plus the
// malformed shapes the lexer and parser explicitly reject.
func FuzzParseSQL(f *testing.F) {
	for _, src := range []string{
		`CREATE TABLE emp (name STRING, id INT, dept REF(dept), PRIMARY KEY id USING ttree)`,
		`CREATE UNIQUE INDEX ON emp (age) USING mlh`,
		`INSERT INTO emp VALUES ('O''Brien', -1, 0.5, NULL, true, REF(dept, id, 459))`,
		`SELECT * FROM emp`,
		`SELECT DISTINCT emp.name, dept.name FROM emp JOIN dept ON emp.dept = dept.SELF WHERE age > 65 AND name != 'x' LIMIT 3`,
		`SELECT f.v, d2.name FROM fact AS f JOIN dim1 d1 ON f.k1 = d1.id JOIN dim2 AS d2 ON d1.k2 = d2.id JOIN dim3 d3 ON d3.id = f.k3`,
		`SELECT a.name, b.name FROM emp a JOIN emp b ON a.boss = b.SELF JOIN emp c ON b.boss = c.SELF`,
		`SELECT * FROM a JOIN b ON a.x = b.y JOIN c ON c.z = a.x JOIN d ON d.w = b.y LIMIT 5`,
		`SELECT * FROM a JOIN b ON b.x = b.y`,
		`SELECT * FROM a x JOIN b ON a.x = b.y`,
		`SELECT dept, COUNT(*), AVG(sal) FROM emp GROUP BY dept ORDER BY 2 DESC LIMIT 10`,
		`SELECT name FROM emp ORDER BY age DESC, emp.name ASC, 1`,
		`SELECT COUNT(emp.sal), MIN(sal), MAX(sal), SUM(sal) FROM emp`,
		`EXPLAIN ANALYZE SELECT * FROM emp WHERE emp.id = 23`,
		`UPDATE emp SET age = 25 WHERE name = 'Dave'`,
		`DELETE FROM emp WHERE age >= 100`,
		`-- comment only`,
		`SELECT SUM(*) FROM emp`,
		`SELECT * FROM emp WHERE age = 1.2.3`,
		`SELECT * FROM emp WHERE age = -`,
		`SELECT * FROM emp LIMIT -1`,
		`SELECT dept FROM emp GROUP BY ORDER BY`,
		"SELECT '\x00' FROM \xff",
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		sel, ok := st.(*Select)
		if !ok {
			return
		}
		if sel.Cols != nil && sel.Items != nil {
			t.Fatalf("Parse(%q): both Cols and Items populated", src)
		}
		sawAgg := false
		for _, it := range sel.Items {
			if it.Agg != "" {
				sawAgg = true
			}
			if it.Col == "*" && it.Agg != "COUNT" {
				t.Fatalf("Parse(%q): star column outside COUNT(*): %+v", src, it)
			}
		}
		if sel.Items != nil && !sawAgg {
			t.Fatalf("Parse(%q): Items populated without any aggregate", src)
		}
		for _, o := range sel.OrderBy {
			if o.Col == "" {
				t.Fatalf("Parse(%q): empty ORDER BY column", src)
			}
			if n, err := strconv.Atoi(o.Col); err == nil && n < 1 {
				t.Fatalf("Parse(%q): non-positive ORDER BY ordinal %d", src, n)
			}
		}
		if sel.Limit < -1 {
			t.Fatalf("Parse(%q): limit %d below -1", src, sel.Limit)
		}
		// Every accepted join step names its table and relates it to an
		// earlier relation of the chain — the executor builds the join
		// graph from these without re-validating.
		scope := map[string]bool{sel.From: true}
		if sel.FromAlias != "" {
			scope = map[string]bool{sel.FromAlias: true}
		}
		for _, j := range sel.Joins {
			if j.Table == "" || j.LeftTable == "" {
				t.Fatalf("Parse(%q): join step missing table or left side: %+v", src, j)
			}
			if !scope[j.LeftTable] {
				t.Fatalf("Parse(%q): join references %q before it is in scope", src, j.LeftTable)
			}
			name := j.Table
			if j.Alias != "" {
				name = j.Alias
			}
			scope[name] = true
		}
	})
}
