package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

// next consumes and returns the current token. EOF is never consumed —
// the token slice's sentinel must stay indexable for later peeks (a
// fuzz-found crash: an error path peeking after next() swallowed EOF).
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// kw matches a case-insensitive keyword without consuming on failure.
func (p *parser) kw(word string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return p.errf("expected %s, got %q", strings.ToUpper(word), p.peek().text)
	}
	return nil
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return p.errf("expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.kw("create"):
		if p.kw("table") {
			return p.createTable()
		}
		unique := p.kw("unique")
		if p.kw("index") {
			return p.createIndex(unique)
		}
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	case p.kw("insert"):
		return p.insert()
	case p.kw("explain"):
		analyze := p.kw("analyze")
		if err := p.expectKw("select"); err != nil {
			return nil, err
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		sel.Explain = true
		sel.Analyze = analyze
		return sel, nil
	case p.kw("select"):
		return p.selectStmt()
	case p.kw("update"):
		return p.update()
	case p.kw("delete"):
		return p.deleteStmt()
	default:
		return nil, p.errf("expected a statement, got %q", p.peek().text)
	}
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.kw("primary") {
			if err := p.expectKw("key"); err != nil {
				return nil, err
			}
			if ct.PrimaryKey, err = p.ident(); err != nil {
				return nil, err
			}
			if p.kw("using") {
				if ct.Using, err = p.ident(); err != nil {
					return nil, err
				}
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := p.ident()
			if err != nil {
				return nil, err
			}
			def := ColDef{Name: col, Type: strings.ToUpper(typ)}
			if def.Type == "REF" {
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				if def.RefTable, err = p.ident(); err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			ct.Cols = append(ct.Cols, def)
		}
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if ct.PrimaryKey == "" {
		return nil, p.errf("CREATE TABLE needs PRIMARY KEY <col> — every relation is accessed through an index")
	}
	return ct, nil
}

func (p *parser) createIndex(unique bool) (Statement, error) {
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Table: table, Column: col, Unique: unique}
	if p.kw("using") {
		if ci.Using, err = p.ident(); err != nil {
			return nil, err
		}
	}
	return ci, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.punct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.punct(",") {
			continue
		}
		break
	}
	return ins, nil
}

// expr parses a literal or REF(table, column, value).
func (p *parser) expr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Expr{}, p.errf("bad number %q", t.text)
			}
			return Expr{Kind: ExprFloat, Float: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Expr{}, p.errf("bad number %q", t.text)
		}
		return Expr{Kind: ExprInt, Int: n}, nil
	case tokString:
		p.i++
		return Expr{Kind: ExprString, Str: t.text}, nil
	case tokIdent:
		switch {
		case strings.EqualFold(t.text, "null"):
			p.i++
			return Expr{Kind: ExprNull}, nil
		case strings.EqualFold(t.text, "true"):
			p.i++
			return Expr{Kind: ExprBool, Bool: true}, nil
		case strings.EqualFold(t.text, "false"):
			p.i++
			return Expr{Kind: ExprBool, Bool: false}, nil
		case strings.EqualFold(t.text, "ref"):
			p.i++
			return p.refExpr()
		}
	}
	return Expr{}, p.errf("expected a value, got %q", t.text)
}

func (p *parser) refExpr() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return Expr{}, err
	}
	table, err := p.ident()
	if err != nil {
		return Expr{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return Expr{}, err
	}
	col, err := p.ident()
	if err != nil {
		return Expr{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return Expr{}, err
	}
	val, err := p.expr()
	if err != nil {
		return Expr{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return Expr{}, err
	}
	return Expr{Kind: ExprRef, Ref: &RefExpr{Table: table, Column: col, Value: &val}}, nil
}

func (p *parser) selectStmt() (*Select, error) {
	sel := &Select{Limit: -1}
	sel.Distinct = p.kw("distinct")
	// Column list or *.
	var items []SelectItem
	hasAgg := false
	if p.punct("*") {
		// all columns
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
			hasAgg = hasAgg || item.Agg != ""
			if p.punct(",") {
				continue
			}
			break
		}
	}
	if hasAgg {
		sel.Items = items
	} else {
		for _, it := range items {
			sel.Cols = append(sel.Cols, it.Col)
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	var err error
	if sel.From, err = p.ident(); err != nil {
		return nil, err
	}
	if sel.FromAlias, err = p.tableAlias(); err != nil {
		return nil, err
	}
	scope := []string{sel.From}
	if sel.FromAlias != "" {
		scope[0] = sel.FromAlias
	}
	for p.kw("join") {
		j, name, err := p.join(scope)
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, j)
		scope = append(scope, name)
	}
	if p.kw("where") {
		if sel.Where, err = p.whereConds(); err != nil {
			return nil, err
		}
	}
	if p.kw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, col)
			if p.punct(",") {
				continue
			}
			break
		}
	}
	if p.kw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			item, err := p.orderItem()
			if err != nil {
				return nil, err
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.punct(",") {
				continue
			}
			break
		}
	}
	if p.kw("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf("LIMIT needs a number")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

// selectItem parses one select-list entry: a (qualified) column, or an
// aggregate FN(col) / COUNT(*). An aggregate keyword not followed by "("
// is an ordinary identifier — a column may be named count.
func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		fn := strings.ToUpper(t.text)
		switch fn {
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			if n := p.toks[p.i+1]; n.kind == tokPunct && n.text == "(" {
				p.i += 2 // the function name and "("
				col := ""
				if p.punct("*") {
					col = "*"
				} else {
					c, err := p.qualifiedName()
					if err != nil {
						return SelectItem{}, err
					}
					col = c
				}
				if err := p.expectPunct(")"); err != nil {
					return SelectItem{}, err
				}
				if col == "*" && fn != "COUNT" {
					return SelectItem{}, p.errf("%s(*) is not valid — only COUNT takes *", fn)
				}
				return SelectItem{Agg: fn, Col: col}, nil
			}
		}
	}
	col, err := p.qualifiedName()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

// orderItem parses one ORDER BY term: a (qualified) column name or a
// 1-based output ordinal, optionally followed by ASC or DESC.
func (p *parser) orderItem() (OrderItem, error) {
	var col string
	if t := p.peek(); t.kind == tokNumber {
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return OrderItem{}, p.errf("ORDER BY ordinal must be a positive integer, got %q", t.text)
		}
		p.i++
		col = t.text
	} else {
		c, err := p.qualifiedName()
		if err != nil {
			return OrderItem{}, err
		}
		col = c
	}
	desc := false
	if p.kw("desc") {
		desc = true
	} else {
		p.kw("asc") // explicit ASC is the default
	}
	return OrderItem{Col: col, Desc: desc}, nil
}

// qualifiedName parses ident[.ident].
func (p *parser) qualifiedName() (string, error) {
	a, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.punct(".") {
		b, err := p.ident()
		if err != nil {
			return "", err
		}
		return a + "." + b, nil
	}
	return a, nil
}

// tableAlias parses the optional [AS] alias after a table name in FROM
// or JOIN. A bare identifier is an alias unless it starts a clause.
func (p *parser) tableAlias() (string, error) {
	if p.kw("as") {
		return p.ident()
	}
	t := p.peek()
	if t.kind == tokIdent && !clauseKeyword(t.text) {
		p.i++
		return t.text, nil
	}
	return "", nil
}

// clauseKeyword reports whether the identifier starts a clause (and so
// cannot be a bare table alias).
func clauseKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "as", "on", "join", "where", "group", "order", "limit":
		return true
	}
	return false
}

// join parses one chain step: table [[AS] alias] ON side = side, where
// a side is name.column or name.SELF. The side naming the newly joined
// relation becomes RightCol; the other side must name an earlier
// relation of scope and becomes LeftTable/LeftCol ("" = SELF). Returns
// the step and the new relation's scope name.
func (p *parser) join(scope []string) (Join, string, error) {
	table, err := p.ident()
	if err != nil {
		return Join{}, "", err
	}
	alias, err := p.tableAlias()
	if err != nil {
		return Join{}, "", err
	}
	name := table
	if alias != "" {
		name = alias
	}
	if err := p.expectKw("on"); err != nil {
		return Join{}, "", err
	}
	t1, c1, err := p.joinSide()
	if err != nil {
		return Join{}, "", err
	}
	if err := p.expectPunct("="); err != nil {
		return Join{}, "", err
	}
	t2, c2, err := p.joinSide()
	if err != nil {
		return Join{}, "", err
	}
	in := func(n string) bool {
		for _, s := range scope {
			if s == n {
				return true
			}
		}
		return false
	}
	j := Join{Table: table, Alias: alias}
	switch {
	case t1 == name && t2 != name && in(t2):
		j.LeftTable, j.LeftCol, j.RightCol = t2, c2, c1
	case t2 == name && t1 != name && in(t1):
		j.LeftTable, j.LeftCol, j.RightCol = t1, c1, c2
	default:
		return Join{}, "", p.errf("join condition must relate %s to an earlier table (%s)",
			name, strings.Join(scope, ", "))
	}
	return j, name, nil
}

// joinSide parses table.column or table.SELF; returns column "" for SELF.
func (p *parser) joinSide() (table, col string, err error) {
	if table, err = p.ident(); err != nil {
		return "", "", err
	}
	if err = p.expectPunct("."); err != nil {
		return "", "", err
	}
	if col, err = p.ident(); err != nil {
		return "", "", err
	}
	if strings.EqualFold(col, "self") {
		col = ""
	}
	return table, col, nil
}

func (p *parser) whereConds() ([]Cond, error) {
	var out []Cond
	for {
		col, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokPunct {
			return nil, p.errf("expected an operator, got %q", t.text)
		}
		op := t.text
		switch op {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			if op == "<>" {
				op = "!="
			}
		default:
			return nil, p.errf("bad operator %q", op)
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, Cond{Column: col, Op: op, Value: val})
		if p.kw("and") {
			continue
		}
		return out, nil
	}
}

func (p *parser) update() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	u := &Update{Table: table, Column: col, Value: val}
	if p.kw("where") {
		if u.Where, err = p.whereConds(); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.kw("where") {
		if d.Where, err = p.whereConds(); err != nil {
			return nil, err
		}
	}
	return d, nil
}
