package sqlparser

import (
	"fmt"
	"strings"
	"testing"
)

func TestSelectAggregates(t *testing.T) {
	st := parse(t, `SELECT dept, COUNT(*), AVG(sal) FROM emp GROUP BY dept ORDER BY 2 DESC LIMIT 10`)
	sel := st.(*Select)
	if sel.Cols != nil {
		t.Fatalf("Cols must be nil when aggregates are present: %v", sel.Cols)
	}
	wantItems := []SelectItem{{Col: "dept"}, {Agg: "COUNT", Col: "*"}, {Agg: "AVG", Col: "sal"}}
	if fmt.Sprint(sel.Items) != fmt.Sprint(wantItems) {
		t.Fatalf("items %+v, want %+v", sel.Items, wantItems)
	}
	if fmt.Sprint(sel.GroupBy) != fmt.Sprint([]string{"dept"}) {
		t.Fatalf("group by %v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 1 || sel.OrderBy[0].Col != "2" || !sel.OrderBy[0].Desc {
		t.Fatalf("order by %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Fatalf("limit %d", sel.Limit)
	}
}

func TestSelectOrderByMixed(t *testing.T) {
	sel := parse(t, `SELECT name, age FROM emp ORDER BY age DESC, emp.name ASC, 1`).(*Select)
	want := []OrderItem{{Col: "age", Desc: true}, {Col: "emp.name"}, {Col: "1"}}
	if fmt.Sprint(sel.OrderBy) != fmt.Sprint(want) {
		t.Fatalf("order by %+v, want %+v", sel.OrderBy, want)
	}
	if fmt.Sprint(sel.Cols) != fmt.Sprint([]string{"name", "age"}) || sel.Items != nil {
		t.Fatalf("cols %v items %v", sel.Cols, sel.Items)
	}
}

func TestGroupByWithoutAggregates(t *testing.T) {
	sel := parse(t, `SELECT dept FROM emp GROUP BY dept`).(*Select)
	if fmt.Sprint(sel.GroupBy) != fmt.Sprint([]string{"dept"}) || sel.Items != nil {
		t.Fatalf("%+v", sel)
	}
}

// TestAggKeywordAsColumn: an aggregate keyword not followed by "(" is an
// ordinary column name.
func TestAggKeywordAsColumn(t *testing.T) {
	sel := parse(t, `SELECT count, min FROM emp`).(*Select)
	if fmt.Sprint(sel.Cols) != fmt.Sprint([]string{"count", "min"}) || sel.Items != nil {
		t.Fatalf("%+v", sel)
	}
}

func TestWhereQualifiedColumn(t *testing.T) {
	sel := parse(t, `SELECT * FROM emp WHERE emp.age > 40 AND name = 'Vera'`).(*Select)
	if len(sel.Where) != 2 || sel.Where[0].Column != "emp.age" || sel.Where[1].Column != "name" {
		t.Fatalf("%+v", sel.Where)
	}
}

func TestGrammarErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`SELECT SUM(*) FROM emp`, "only COUNT takes *"},
		{`SELECT COUNT( FROM emp`, "expected"},
		{`SELECT dept FROM emp GROUP dept`, "expected BY"},
		{`SELECT dept FROM emp ORDER dept`, "expected BY"},
		{`SELECT dept FROM emp ORDER BY 0`, "positive integer"},
		{`SELECT dept FROM emp ORDER BY -2`, "positive integer"},
		{`SELECT * FROM emp LIMIT -1`, "LIMIT"},
		{`SELECT * FROM emp LIMIT x`, "LIMIT needs a number"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Parse(%q): err=%v, want substring %q", c.src, err, c.want)
		}
	}
}

// TestLexNumberErrors pins the lexer's number validation: a second
// decimal point, a trailing one, and a bare '-' are reported at their
// offset instead of surviving to a downstream ParseFloat failure.
func TestLexNumberErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`SELECT * FROM emp WHERE age = 1.2.3`, "more than one decimal point"},
		{`SELECT * FROM emp WHERE age = 1.`, "trailing decimal point"},
		{`SELECT * FROM emp WHERE age = -`, "bare '-'"},
		{`SELECT * FROM emp WHERE age = - 5`, "bare '-'"},
		{`INSERT INTO t VALUES (3.)`, "trailing decimal point"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Parse(%q): err=%v, want substring %q", c.src, err, c.want)
		}
		if err != nil && !strings.Contains(err.Error(), "offset") {
			t.Fatalf("Parse(%q): error %q does not report a position", c.src, err)
		}
	}
	// Well-formed numbers still lex.
	for _, src := range []string{
		`SELECT * FROM emp WHERE age = -5`,
		`SELECT * FROM emp WHERE age = 1.25`,
		`SELECT * FROM emp WHERE age = -0.5`,
	} {
		if _, err := Parse(src); err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
	}
}
