package sqlparser

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestCreateTable(t *testing.T) {
	st := parse(t, `CREATE TABLE emp (name STRING, id INT, age INT, dept REF(dept), PRIMARY KEY id USING ttree)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "emp" || len(ct.Cols) != 4 || ct.PrimaryKey != "id" || ct.Using != "ttree" {
		t.Fatalf("%+v", ct)
	}
	if ct.Cols[3].Type != "REF" || ct.Cols[3].RefTable != "dept" {
		t.Fatalf("ref col: %+v", ct.Cols[3])
	}
}

func TestCreateTableRequiresPrimaryKey(t *testing.T) {
	if _, err := Parse(`CREATE TABLE t (a INT)`); err == nil || !strings.Contains(err.Error(), "PRIMARY KEY") {
		t.Fatalf("err=%v", err)
	}
}

func TestCreateIndex(t *testing.T) {
	st := parse(t, `CREATE UNIQUE INDEX ON emp (age) USING mlh`)
	ci := st.(*CreateIndex)
	if ci.Table != "emp" || ci.Column != "age" || !ci.Unique || ci.Using != "mlh" {
		t.Fatalf("%+v", ci)
	}
	ci = parse(t, `create index on emp (name)`).(*CreateIndex)
	if ci.Unique || ci.Using != "" {
		t.Fatalf("%+v", ci)
	}
}

func TestInsert(t *testing.T) {
	st := parse(t, `INSERT INTO emp VALUES ('Dave', 23, 24.5, NULL, true, REF(dept, id, 459)), ('O''Brien', -1, 0.0, null, false, null)`)
	ins := st.(*Insert)
	if ins.Table != "emp" || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	r := ins.Rows[0]
	if r[0].Kind != ExprString || r[0].Str != "Dave" {
		t.Fatalf("str: %+v", r[0])
	}
	if r[1].Kind != ExprInt || r[1].Int != 23 {
		t.Fatalf("int: %+v", r[1])
	}
	if r[2].Kind != ExprFloat || r[2].Float != 24.5 {
		t.Fatalf("float: %+v", r[2])
	}
	if r[3].Kind != ExprNull || r[4].Kind != ExprBool || !r[4].Bool {
		t.Fatalf("null/bool: %+v %+v", r[3], r[4])
	}
	ref := r[5]
	if ref.Kind != ExprRef || ref.Ref.Table != "dept" || ref.Ref.Column != "id" || ref.Ref.Value.Int != 459 {
		t.Fatalf("ref: %+v", ref)
	}
	if ins.Rows[1][0].Str != "O'Brien" {
		t.Fatalf("escape: %q", ins.Rows[1][0].Str)
	}
	if ins.Rows[1][1].Int != -1 {
		t.Fatalf("negative: %+v", ins.Rows[1][1])
	}
}

func TestSelectFull(t *testing.T) {
	st := parse(t, `EXPLAIN SELECT DISTINCT emp.name, dept.name FROM emp JOIN dept ON emp.dept = dept.SELF WHERE age > 65 AND id != 3 LIMIT 10`)
	sel := st.(*Select)
	if !sel.Explain || !sel.Distinct || sel.From != "emp" || sel.Limit != 10 {
		t.Fatalf("%+v", sel)
	}
	if len(sel.Cols) != 2 || sel.Cols[0] != "emp.name" {
		t.Fatalf("cols: %v", sel.Cols)
	}
	if sel.Join == nil || sel.Join.Table != "dept" || sel.Join.LeftCol != "dept" || sel.Join.RightCol != "" {
		t.Fatalf("join: %+v", sel.Join)
	}
	if len(sel.Where) != 2 || sel.Where[0].Op != ">" || sel.Where[1].Op != "!=" {
		t.Fatalf("where: %+v", sel.Where)
	}
}

func TestSelectStar(t *testing.T) {
	sel := parse(t, `SELECT * FROM emp`).(*Select)
	if len(sel.Cols) != 0 || sel.From != "emp" || sel.Join != nil || sel.Limit != -1 {
		t.Fatalf("%+v", sel)
	}
}

func TestSelectJoinReversedCondition(t *testing.T) {
	// dept.SELF = emp.dept must normalize the same way as the mirror form.
	sel := parse(t, `SELECT * FROM emp JOIN dept ON dept.SELF = emp.dept`).(*Select)
	if sel.Join.LeftCol != "dept" || sel.Join.RightCol != "" {
		t.Fatalf("%+v", sel.Join)
	}
}

func TestUpdateDelete(t *testing.T) {
	u := parse(t, `UPDATE emp SET age = 25 WHERE id = 23`).(*Update)
	if u.Table != "emp" || u.Column != "age" || u.Value.Int != 25 || len(u.Where) != 1 {
		t.Fatalf("%+v", u)
	}
	d := parse(t, `DELETE FROM emp WHERE age >= 65`).(*Delete)
	if d.Table != "emp" || len(d.Where) != 1 || d.Where[0].Op != ">=" {
		t.Fatalf("%+v", d)
	}
	d = parse(t, `delete from emp`).(*Delete)
	if len(d.Where) != 0 {
		t.Fatalf("%+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC * FROM emp`,
		`SELECT * FROM`,
		`SELECT * FROM emp WHERE`,
		`SELECT * FROM emp WHERE age !! 5`,
		`SELECT * FROM emp extra`,
		`INSERT INTO emp`,
		`INSERT INTO emp VALUES ('unterminated)`,
		`CREATE emp (a INT)`,
		`CREATE TABLE emp (a REF, PRIMARY KEY a)`,
		`SELECT * FROM a JOIN b ON c.x = d.y`,
		`UPDATE emp SET`,
		`SELECT * FROM emp LIMIT x`,
		`SELECT * FROM emp WHERE a = 'x' OR b = 'y'`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	sel := parse(t, "SELECT *\n  FROM emp -- trailing comment\n").(*Select)
	if sel.From != "emp" {
		t.Fatalf("%+v", sel)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select distinct name from emp where age >= 30 limit 5`); err != nil {
		t.Fatal(err)
	}
}
