package sqlparser

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestCreateTable(t *testing.T) {
	st := parse(t, `CREATE TABLE emp (name STRING, id INT, age INT, dept REF(dept), PRIMARY KEY id USING ttree)`)
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "emp" || len(ct.Cols) != 4 || ct.PrimaryKey != "id" || ct.Using != "ttree" {
		t.Fatalf("%+v", ct)
	}
	if ct.Cols[3].Type != "REF" || ct.Cols[3].RefTable != "dept" {
		t.Fatalf("ref col: %+v", ct.Cols[3])
	}
}

func TestCreateTableRequiresPrimaryKey(t *testing.T) {
	if _, err := Parse(`CREATE TABLE t (a INT)`); err == nil || !strings.Contains(err.Error(), "PRIMARY KEY") {
		t.Fatalf("err=%v", err)
	}
}

func TestCreateIndex(t *testing.T) {
	st := parse(t, `CREATE UNIQUE INDEX ON emp (age) USING mlh`)
	ci := st.(*CreateIndex)
	if ci.Table != "emp" || ci.Column != "age" || !ci.Unique || ci.Using != "mlh" {
		t.Fatalf("%+v", ci)
	}
	ci = parse(t, `create index on emp (name)`).(*CreateIndex)
	if ci.Unique || ci.Using != "" {
		t.Fatalf("%+v", ci)
	}
}

func TestInsert(t *testing.T) {
	st := parse(t, `INSERT INTO emp VALUES ('Dave', 23, 24.5, NULL, true, REF(dept, id, 459)), ('O''Brien', -1, 0.0, null, false, null)`)
	ins := st.(*Insert)
	if ins.Table != "emp" || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	r := ins.Rows[0]
	if r[0].Kind != ExprString || r[0].Str != "Dave" {
		t.Fatalf("str: %+v", r[0])
	}
	if r[1].Kind != ExprInt || r[1].Int != 23 {
		t.Fatalf("int: %+v", r[1])
	}
	if r[2].Kind != ExprFloat || r[2].Float != 24.5 {
		t.Fatalf("float: %+v", r[2])
	}
	if r[3].Kind != ExprNull || r[4].Kind != ExprBool || !r[4].Bool {
		t.Fatalf("null/bool: %+v %+v", r[3], r[4])
	}
	ref := r[5]
	if ref.Kind != ExprRef || ref.Ref.Table != "dept" || ref.Ref.Column != "id" || ref.Ref.Value.Int != 459 {
		t.Fatalf("ref: %+v", ref)
	}
	if ins.Rows[1][0].Str != "O'Brien" {
		t.Fatalf("escape: %q", ins.Rows[1][0].Str)
	}
	if ins.Rows[1][1].Int != -1 {
		t.Fatalf("negative: %+v", ins.Rows[1][1])
	}
}

func TestSelectFull(t *testing.T) {
	st := parse(t, `EXPLAIN SELECT DISTINCT emp.name, dept.name FROM emp JOIN dept ON emp.dept = dept.SELF WHERE age > 65 AND id != 3 LIMIT 10`)
	sel := st.(*Select)
	if !sel.Explain || !sel.Distinct || sel.From != "emp" || sel.Limit != 10 {
		t.Fatalf("%+v", sel)
	}
	if len(sel.Cols) != 2 || sel.Cols[0] != "emp.name" {
		t.Fatalf("cols: %v", sel.Cols)
	}
	if len(sel.Joins) != 1 {
		t.Fatalf("joins: %+v", sel.Joins)
	}
	j := sel.Joins[0]
	if j.Table != "dept" || j.LeftTable != "emp" || j.LeftCol != "dept" || j.RightCol != "" {
		t.Fatalf("join: %+v", j)
	}
	if len(sel.Where) != 2 || sel.Where[0].Op != ">" || sel.Where[1].Op != "!=" {
		t.Fatalf("where: %+v", sel.Where)
	}
}

func TestSelectStar(t *testing.T) {
	sel := parse(t, `SELECT * FROM emp`).(*Select)
	if len(sel.Cols) != 0 || sel.From != "emp" || len(sel.Joins) != 0 || sel.Limit != -1 {
		t.Fatalf("%+v", sel)
	}
}

func TestSelectJoinReversedCondition(t *testing.T) {
	// dept.SELF = emp.dept must normalize the same way as the mirror form.
	sel := parse(t, `SELECT * FROM emp JOIN dept ON dept.SELF = emp.dept`).(*Select)
	j := sel.Joins[0]
	if j.LeftTable != "emp" || j.LeftCol != "dept" || j.RightCol != "" {
		t.Fatalf("%+v", j)
	}
}

// TestSelectJoinChain: chained joins with table aliases. Each step may
// reference any earlier relation by its scope name (alias when given),
// so chains, stars, and self-joins all parse.
func TestSelectJoinChain(t *testing.T) {
	sel := parse(t, `SELECT f.v, d2.name FROM fact AS f JOIN dim1 d1 ON f.k1 = d1.id JOIN dim2 AS d2 ON d1.k2 = d2.id JOIN dim3 d3 ON d3.id = f.k3`).(*Select)
	if sel.From != "fact" || sel.FromAlias != "f" || len(sel.Joins) != 3 {
		t.Fatalf("%+v", sel)
	}
	want := []Join{
		{Table: "dim1", Alias: "d1", LeftTable: "f", LeftCol: "k1", RightCol: "id"},
		{Table: "dim2", Alias: "d2", LeftTable: "d1", LeftCol: "k2", RightCol: "id"},
		{Table: "dim3", Alias: "d3", LeftTable: "f", LeftCol: "k3", RightCol: "id"},
	}
	for i, w := range want {
		if sel.Joins[i] != w {
			t.Fatalf("join %d: %+v, want %+v", i, sel.Joins[i], w)
		}
	}
}

// TestSelectSelfJoinAliases: the same table joined to itself under two
// aliases, each ON side resolving by alias.
func TestSelectSelfJoinAliases(t *testing.T) {
	sel := parse(t, `SELECT a.name, b.name FROM emp a JOIN emp b ON a.boss = b.SELF`).(*Select)
	if sel.FromAlias != "a" || len(sel.Joins) != 1 {
		t.Fatalf("%+v", sel)
	}
	if j := sel.Joins[0]; j.Table != "emp" || j.Alias != "b" || j.LeftTable != "a" || j.LeftCol != "boss" || j.RightCol != "" {
		t.Fatalf("%+v", j)
	}
}

// TestJoinChainErrors: a join step must relate the new relation to an
// earlier one — never itself twice, never two unknown names.
func TestJoinChainErrors(t *testing.T) {
	bad := []string{
		`SELECT * FROM a JOIN b ON b.x = b.y`,
		`SELECT * FROM a JOIN b ON a.x = a.y`,
		`SELECT * FROM a x JOIN b ON a.x = b.y`, // alias shadows the table name
		`SELECT * FROM a JOIN b ON c.x = b.y JOIN c ON c.z = a.x`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "join condition") {
			t.Errorf("Parse(%q): err=%v, want join-condition error", src, err)
		}
	}
}

func TestUpdateDelete(t *testing.T) {
	u := parse(t, `UPDATE emp SET age = 25 WHERE id = 23`).(*Update)
	if u.Table != "emp" || u.Column != "age" || u.Value.Int != 25 || len(u.Where) != 1 {
		t.Fatalf("%+v", u)
	}
	d := parse(t, `DELETE FROM emp WHERE age >= 65`).(*Delete)
	if d.Table != "emp" || len(d.Where) != 1 || d.Where[0].Op != ">=" {
		t.Fatalf("%+v", d)
	}
	d = parse(t, `delete from emp`).(*Delete)
	if len(d.Where) != 0 {
		t.Fatalf("%+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC * FROM emp`,
		`SELECT * FROM`,
		`SELECT * FROM emp WHERE`,
		`SELECT * FROM emp WHERE age !! 5`,
		`SELECT * FROM emp extra stuff`, // one bare ident is an alias; two is junk
		`INSERT INTO emp`,
		`INSERT INTO emp VALUES ('unterminated)`,
		`CREATE emp (a INT)`,
		`CREATE TABLE emp (a REF, PRIMARY KEY a)`,
		`SELECT * FROM a JOIN b ON c.x = d.y`,
		`UPDATE emp SET`,
		`SELECT * FROM emp LIMIT x`,
		`SELECT * FROM emp WHERE a = 'x' OR b = 'y'`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	sel := parse(t, "SELECT *\n  FROM emp -- trailing comment\n").(*Select)
	if sel.From != "emp" {
		t.Fatalf("%+v", sel)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select distinct name from emp where age >= 30 limit 5`); err != nil {
		t.Fatal(err)
	}
}
