// Package sqlparser implements a small SQL dialect over the MM-DBMS:
// CREATE TABLE / CREATE INDEX, INSERT, SELECT (with one JOIN, WHERE
// conjunctions, DISTINCT, aggregates with GROUP BY, ORDER BY with
// ASC/DESC and output ordinals, LIMIT), UPDATE, DELETE, and EXPLAIN. The
// parser produces a plain AST; the mmdb package executes it through the
// same planner as the fluent query API.
//
// The dialect's one extension is the REF(table, column, value) expression,
// which resolves to a tuple pointer at execution time — the §2.1
// foreign-key substitution needs a way to write pointers in text.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , . = < > <= >= != <> *
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex splits src into tokens; keywords stay as idents (the parser matches
// them case-insensitively).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isDigit(rune(c)) || c == '-':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
	return l.tokens, nil
}

func isDigit(r rune) bool      { return r >= '0' && r <= '9' }
func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentRune(r rune) bool  { return isIdentStart(r) || isDigit(r) }

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at offset %d", start)
}

// lexNumber scans [-]digits[.digits]: exactly one optional decimal point,
// digits required on both sides of it, and a leading '-' only with digits
// attached. Malformed shapes (bare '-', '1.', '1.2.3') are errors at the
// token's position rather than tokens a later ParseFloat call chokes on.
func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	intDigits := 0
	for l.pos < len(l.src) && isDigit(rune(l.src[l.pos])) {
		l.pos++
		intDigits++
	}
	if intDigits == 0 {
		return fmt.Errorf("sql: bare '-' is not a number at offset %d", start)
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		fracDigits := 0
		for l.pos < len(l.src) && isDigit(rune(l.src[l.pos])) {
			l.pos++
			fracDigits++
		}
		if fracDigits == 0 {
			return fmt.Errorf("sql: number %q has a trailing decimal point at offset %d", l.src[start:l.pos], start)
		}
		if l.pos < len(l.src) && l.src[l.pos] == '.' {
			return fmt.Errorf("sql: number %q has more than one decimal point at offset %d", l.src[start:l.pos+1], start)
		}
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexPunct() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		l.tokens = append(l.tokens, token{kind: tokPunct, text: two, pos: start})
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '.', '=', '<', '>', '*':
		l.pos++
		l.tokens = append(l.tokens, token{kind: tokPunct, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
	}
}
