// Package mem is the engine-wide memory grant manager: one budget per
// database, carved into per-query reservations that the scratch-hungry
// operators (radix join build tables, aggregation tables, sort arrays)
// must obtain a grant from before allocating. The paper assumes every
// hash-join build side fits comfortably in memory; at production scale
// concurrent queries fight over one heap, and a single skewed key can
// blow one partition past any cache- or budget-sized table. The grant
// manager turns that fight into an explicit protocol, following the
// robust-hash-join discipline of Jahangiri, Carey & Freytag: operators
// ask before they build, degrade gracefully (repartition, reverse
// roles) when the answer is no, and only overcommit as a recorded last
// resort when no amount of splitting can shrink the working set (a
// partition of all-equal keys).
//
// Admission is fair-share: with Q active reservations each query is
// entitled to total/Q bytes without waiting. TryGrant is the
// non-blocking probe the degradation paths pivot on; Grant waits (with
// context cancellation) for siblings to release, but never waits for
// memory that cannot exist — a request beyond the whole budget, or
// beyond what other queries could ever return, overcommits immediately
// and is counted as forced. That no-deadlock rule is what lets a morsel
// hold the grant for exactly the lifetime of one build table.
//
// A nil *Manager (or nil *Reservation) is the unbudgeted state: every
// grant succeeds instantly and nothing is tracked, so the engine wires
// the manager through unconditionally and pays one nil check when no
// budget is configured.
package mem

import (
	"context"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of the manager: the configured
// budget, bytes currently granted (may exceed Total when forced
// overcommits are outstanding), reservations blocked in Grant, and the
// monotonic defense counters the budgeted radix paths report.
type Stats struct {
	Total   int64 // configured budget, bytes
	Granted int64 // bytes currently granted across all reservations
	Waiting int64 // reservations currently blocked in Grant
	Forced  int64 // grants that overcommitted past the budget (monotonic)

	// Defense counters, reported by the budgeted operators through
	// NoteReversal / NoteRepartition: build/probe role reversals and
	// recursive fat-partition re-splits since the manager was created.
	Reversals    int64
	Repartitions int64
}

// Manager owns one memory budget. All methods are safe for concurrent
// use and safe on a nil receiver (the unlimited state).
type Manager struct {
	total int64

	mu      sync.Mutex
	cond    *sync.Cond
	granted int64
	active  int64 // open reservations

	waiting      atomic.Int64
	forced       atomic.Int64
	reversals    atomic.Int64
	repartitions atomic.Int64
}

// NewManager creates a manager over a budget of total bytes. total <= 0
// returns nil — the unlimited manager, on which every operation is a
// cheap no-op.
func NewManager(total int64) *Manager {
	if total <= 0 {
		return nil
	}
	m := &Manager{total: total}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Total returns the configured budget (0 on nil).
func (m *Manager) Total() int64 {
	if m == nil {
		return 0
	}
	return m.total
}

// Snapshot returns current stats. Safe on a nil receiver (zero Stats).
func (m *Manager) Snapshot() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	granted := m.granted
	m.mu.Unlock()
	return Stats{
		Total:        m.total,
		Granted:      granted,
		Waiting:      m.waiting.Load(),
		Forced:       m.forced.Load(),
		Reversals:    m.reversals.Load(),
		Repartitions: m.repartitions.Load(),
	}
}

// NoteReversal counts build/probe role reversals performed by a
// budgeted operator. Safe on a nil receiver.
func (m *Manager) NoteReversal(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.reversals.Add(n)
}

// NoteRepartition counts recursive fat-partition re-splits performed by
// a budgeted operator. Safe on a nil receiver.
func (m *Manager) NoteRepartition(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.repartitions.Add(n)
}

// Reservation is one query's admission handle on the manager: the unit
// fair share is computed over, and the owner of the query's granted
// bytes. Reservations are safe for concurrent use by a query's worker
// morsels. A nil *Reservation grants everything instantly.
type Reservation struct {
	m      *Manager
	held   atomic.Int64
	peak   atomic.Int64
	forced atomic.Int64
	closed atomic.Bool

	// Notify, when non-nil, is called (unsynchronized, possibly from
	// several morsel workers) with the reservation's held bytes after
	// every grant or release — the hook the scheduler's grant-aware
	// admission reads through. Set it before the first grant.
	Notify func(held int64)
}

// Reserve opens a reservation. Safe on a nil receiver (returns nil, the
// unbudgeted reservation).
func (m *Manager) Reserve() *Reservation {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	m.active++
	m.mu.Unlock()
	return &Reservation{m: m}
}

// FairShare is the reservation's no-wait entitlement: total divided by
// the open reservations. Unlimited (1<<62) on a nil reservation.
func (r *Reservation) FairShare() int64 {
	if r == nil {
		return 1 << 62
	}
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	return r.m.fairShareLocked()
}

func (m *Manager) fairShareLocked() int64 {
	q := m.active
	if q < 1 {
		q = 1
	}
	return m.total / q
}

// Held returns the reservation's currently granted bytes.
func (r *Reservation) Held() int64 {
	if r == nil {
		return 0
	}
	return r.held.Load()
}

// Available is a racy estimate of what TryGrant(n) would succeed for
// right now: the slack under the budget, floored at zero. Callers use
// it to size degradation (how far to re-split a fat partition), so
// staleness only changes how aggressively they split, never
// correctness. Unlimited on a nil reservation.
func (r *Reservation) Available() int64 {
	if r == nil {
		return 1 << 62
	}
	r.m.mu.Lock()
	defer r.m.mu.Unlock()
	if avail := r.m.total - r.m.granted; avail > 0 {
		return avail
	}
	return 0
}

// TryGrant atomically grants n bytes if the budget has room, reporting
// whether it did. Never blocks; always true on a nil reservation.
func (r *Reservation) TryGrant(n int64) bool {
	if r == nil || n <= 0 {
		return true
	}
	m := r.m
	m.mu.Lock()
	if m.granted+n > m.total {
		m.mu.Unlock()
		return false
	}
	m.granted += n
	m.mu.Unlock()
	r.noteHeld(n)
	return true
}

// Grant obtains n bytes, waiting for siblings to release if necessary.
// It returns ctx.Err() if the context is cancelled while waiting.
//
// Grant never deadlocks on an impossible request: if n cannot be
// satisfied even after every OTHER reservation releases everything —
// n exceeds the whole budget, or exceeds budget minus this
// reservation's own held bytes — the bytes are granted immediately as
// a forced overcommit (counted in Stats.Forced). The caller asked for
// scratch that the budget can never supply; refusing would turn a
// memory limit into a correctness failure, which is exactly the
// thrash-or-fail behavior the dynamic hybrid design exists to avoid.
func (r *Reservation) Grant(ctx context.Context, n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	m := r.m
	m.mu.Lock()
	for m.granted+n > m.total {
		// Impossible to satisfy by waiting: overcommit and record it.
		if n > m.total-r.held.Load() {
			m.granted += n
			m.mu.Unlock()
			m.forced.Add(1)
			r.forced.Add(1)
			r.noteHeld(n)
			return nil
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				m.mu.Unlock()
				return err
			}
		}
		m.waiting.Add(1)
		if ctx != nil && ctx.Done() != nil {
			// Wake the wait loop when the context fires; stop releases the
			// watcher as soon as the grant (or a broadcast) gets us moving.
			stop := context.AfterFunc(ctx, func() {
				m.mu.Lock()
				m.cond.Broadcast()
				m.mu.Unlock()
			})
			m.cond.Wait()
			stop()
		} else {
			m.cond.Wait()
		}
		m.waiting.Add(-1)
	}
	m.granted += n
	m.mu.Unlock()
	r.noteHeld(n)
	return nil
}

// Force grants n bytes unconditionally, overcommitting the budget if
// needed, and records the overcommit. The all-equal-keys bail-out uses
// it: a partition whose entries share one hash cannot be split smaller,
// so its table must build at whatever size it is.
func (r *Reservation) Force(n int64) {
	if r == nil || n <= 0 {
		return
	}
	m := r.m
	m.mu.Lock()
	over := m.granted+n > m.total
	m.granted += n
	m.mu.Unlock()
	if over {
		m.forced.Add(1)
		r.forced.Add(1)
	}
	r.noteHeld(n)
}

// Release returns n granted bytes and wakes waiters.
func (r *Reservation) Release(n int64) {
	if r == nil || n <= 0 {
		return
	}
	m := r.m
	m.mu.Lock()
	m.granted -= n
	if m.granted < 0 {
		m.granted = 0
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	r.noteHeld(-n)
}

// Peak returns the high-water mark of the reservation's held bytes —
// what EXPLAIN ANALYZE reports as the operator's grant.
func (r *Reservation) Peak() int64 {
	if r == nil {
		return 0
	}
	return r.peak.Load()
}

// Forced returns how many of this reservation's grants overcommitted.
func (r *Reservation) Forced() int64 {
	if r == nil {
		return 0
	}
	return r.forced.Load()
}

// Close releases everything the reservation still holds and retires it
// from the fair-share denominator. Idempotent; safe on nil.
func (r *Reservation) Close() {
	if r == nil || !r.closed.CompareAndSwap(false, true) {
		return
	}
	m := r.m
	held := r.held.Swap(0)
	m.mu.Lock()
	m.granted -= held
	if m.granted < 0 {
		m.granted = 0
	}
	m.active--
	m.cond.Broadcast()
	m.mu.Unlock()
	if r.Notify != nil {
		r.Notify(0)
	}
}

// noteHeld adjusts the held gauge and fires the Notify hook.
func (r *Reservation) noteHeld(delta int64) {
	h := r.held.Add(delta)
	for {
		p := r.peak.Load()
		if h <= p || r.peak.CompareAndSwap(p, h) {
			break
		}
	}
	if r.Notify != nil {
		r.Notify(h)
	}
}

// NoteReversal forwards to the manager. Safe on a nil reservation.
func (r *Reservation) NoteReversal(n int64) {
	if r == nil {
		return
	}
	r.m.NoteReversal(n)
}

// NoteRepartition forwards to the manager. Safe on a nil reservation.
func (r *Reservation) NoteRepartition(n int64) {
	if r == nil {
		return
	}
	r.m.NoteRepartition(n)
}
