package mem

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilManagerUnlimited(t *testing.T) {
	var m *Manager
	if m.Total() != 0 {
		t.Fatalf("nil Total = %d", m.Total())
	}
	if s := m.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil Snapshot = %+v", s)
	}
	r := m.Reserve()
	if r != nil {
		t.Fatalf("nil Reserve returned %v", r)
	}
	if !r.TryGrant(1 << 40) {
		t.Fatal("nil reservation TryGrant failed")
	}
	if err := r.Grant(context.Background(), 1<<40); err != nil {
		t.Fatalf("nil reservation Grant: %v", err)
	}
	r.Force(1)
	r.Release(1)
	r.NoteReversal(1)
	r.NoteRepartition(1)
	r.Close()
	if r.Held() != 0 || r.Forced() != 0 {
		t.Fatal("nil reservation tracked state")
	}
	if r.FairShare() < 1<<61 {
		t.Fatalf("nil FairShare = %d", r.FairShare())
	}
	if r.Available() < 1<<61 {
		t.Fatalf("nil Available = %d", r.Available())
	}
}

func TestNewManagerZeroIsNil(t *testing.T) {
	if NewManager(0) != nil || NewManager(-5) != nil {
		t.Fatal("non-positive budget should yield the nil manager")
	}
}

func TestTryGrantBoundary(t *testing.T) {
	m := NewManager(100)
	r := m.Reserve()
	defer r.Close()
	if !r.TryGrant(100) {
		t.Fatal("exact-budget grant refused")
	}
	if r.TryGrant(1) {
		t.Fatal("grant past budget allowed")
	}
	if r.Held() != 100 {
		t.Fatalf("held = %d", r.Held())
	}
	r.Release(40)
	if !r.TryGrant(40) {
		t.Fatal("released bytes not reusable")
	}
	s := m.Snapshot()
	if s.Granted != 100 || s.Forced != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestGrantWaitsForRelease(t *testing.T) {
	m := NewManager(100)
	a := m.Reserve()
	b := m.Reserve()
	defer a.Close()
	defer b.Close()
	if !a.TryGrant(80) {
		t.Fatal("setup grant failed")
	}
	done := make(chan error, 1)
	go func() { done <- b.Grant(context.Background(), 50) }()
	// b must block: 80 + 50 > 100 but 50 <= total - b.held.
	select {
	case err := <-done:
		t.Fatalf("Grant returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(80)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Grant after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Grant never woke after release")
	}
	if b.Held() != 50 {
		t.Fatalf("b held = %d", b.Held())
	}
	if m.Snapshot().Forced != 0 {
		t.Fatal("waitable grant should not count as forced")
	}
}

func TestGrantContextCancel(t *testing.T) {
	m := NewManager(100)
	a := m.Reserve()
	b := m.Reserve()
	defer a.Close()
	defer b.Close()
	if !a.TryGrant(80) {
		t.Fatal("setup grant failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Grant(ctx, 50) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Grant after cancel: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Grant never observed cancellation")
	}
	if b.Held() != 0 {
		t.Fatalf("cancelled grant held %d bytes", b.Held())
	}
}

func TestGrantForcedOvercommit(t *testing.T) {
	m := NewManager(100)
	r := m.Reserve()
	defer r.Close()
	// Larger than the whole budget: must not wait, must force.
	if err := r.Grant(context.Background(), 150); err != nil {
		t.Fatalf("oversized Grant: %v", err)
	}
	if r.Held() != 150 || r.Forced() != 1 {
		t.Fatalf("held=%d forced=%d", r.Held(), r.Forced())
	}
	// Request beyond what siblings could ever return (total - own held
	// is negative now): again immediate.
	if err := r.Grant(context.Background(), 10); err != nil {
		t.Fatalf("second Grant: %v", err)
	}
	if r.Forced() != 2 {
		t.Fatalf("forced = %d", r.Forced())
	}
	s := m.Snapshot()
	if s.Granted != 160 || s.Forced != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestForce(t *testing.T) {
	m := NewManager(100)
	r := m.Reserve()
	defer r.Close()
	r.Force(60) // within budget: not an overcommit
	if r.Forced() != 0 {
		t.Fatal("in-budget Force counted as overcommit")
	}
	r.Force(60) // 120 > 100
	if r.Forced() != 1 {
		t.Fatalf("forced = %d", r.Forced())
	}
	if m.Snapshot().Granted != 120 {
		t.Fatalf("granted = %d", m.Snapshot().Granted)
	}
}

func TestFairShare(t *testing.T) {
	m := NewManager(120)
	a := m.Reserve()
	if a.FairShare() != 120 {
		t.Fatalf("1 active: %d", a.FairShare())
	}
	b := m.Reserve()
	c := m.Reserve()
	if a.FairShare() != 40 {
		t.Fatalf("3 active: %d", a.FairShare())
	}
	b.Close()
	c.Close()
	if a.FairShare() != 120 {
		t.Fatalf("back to 1 active: %d", a.FairShare())
	}
	a.Close()
}

func TestCloseReleasesHeld(t *testing.T) {
	m := NewManager(100)
	a := m.Reserve()
	b := m.Reserve()
	defer b.Close()
	if !a.TryGrant(90) {
		t.Fatal("setup grant failed")
	}
	done := make(chan error, 1)
	go func() { done <- b.Grant(context.Background(), 50) }()
	time.Sleep(10 * time.Millisecond)
	a.Close() // releases 90, wakes b
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Grant after Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake waiter")
	}
	a.Close() // idempotent
	if got := m.Snapshot().Granted; got != 50 {
		t.Fatalf("granted after close = %d", got)
	}
}

func TestNotifyHook(t *testing.T) {
	m := NewManager(100)
	r := m.Reserve()
	var last atomic.Int64
	r.Notify = func(h int64) { last.Store(h) }
	r.TryGrant(30)
	if last.Load() != 30 {
		t.Fatalf("notify after grant = %d", last.Load())
	}
	r.Release(10)
	if last.Load() != 20 {
		t.Fatalf("notify after release = %d", last.Load())
	}
	r.Close()
	if last.Load() != 0 {
		t.Fatalf("notify after close = %d", last.Load())
	}
}

func TestDefenseCounters(t *testing.T) {
	m := NewManager(100)
	r := m.Reserve()
	defer r.Close()
	r.NoteReversal(2)
	r.NoteRepartition(3)
	m.NoteReversal(1)
	s := m.Snapshot()
	if s.Reversals != 3 || s.Repartitions != 3 {
		t.Fatalf("snapshot = %+v", s)
	}
}

// TestStarvationHammer drives many concurrent reservations through
// grant/release cycles against a small budget under -race: every
// waitable grant must eventually complete, accounting must return to
// zero, and nothing may be forced (each request fits the budget).
func TestStarvationHammer(t *testing.T) {
	const (
		budget  = 1 << 16
		workers = 16
		rounds  = 200
	)
	m := NewManager(budget)
	var wg sync.WaitGroup
	var granted atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := m.Reserve()
			defer r.Close()
			for i := 0; i < rounds; i++ {
				n := int64(1024 + (w*977+i*131)%4096)
				if i%3 == 0 {
					if r.TryGrant(n) {
						granted.Add(1)
						r.Release(n)
					}
					continue
				}
				if err := r.Grant(context.Background(), n); err != nil {
					t.Errorf("Grant: %v", err)
					return
				}
				granted.Add(1)
				r.Release(n)
			}
		}(w)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Granted != 0 || s.Waiting != 0 {
		t.Fatalf("leaked accounting: %+v", s)
	}
	if s.Forced != 0 {
		t.Fatalf("in-budget requests were forced: %+v", s)
	}
	if granted.Load() == 0 {
		t.Fatal("no grants completed")
	}
}

// TestHammerWithCancellation mixes cancelled contexts into the
// contention storm; cancelled grants must not leak held bytes.
func TestHammerWithCancellation(t *testing.T) {
	m := NewManager(1 << 14)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := m.Reserve()
			defer r.Close()
			for i := 0; i < 100; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*time.Millisecond)
				n := int64(512 + (w*613+i*89)%2048)
				if err := r.Grant(ctx, n); err == nil {
					r.Release(n)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	if s := m.Snapshot(); s.Granted != 0 || s.Waiting != 0 {
		t.Fatalf("leaked accounting: %+v", s)
	}
}
