// Package skewbench measures the memory-budgeted radix join's skew
// defenses: the same Zipf-skewed join (a uniform probe relation against
// a build side whose s=1.2 key distribution puts ~18% of the tuples on
// one key) executed three ways — unbudgeted, budgeted with the dynamic
// hybrid defenses on, and budgeted with the defenses disabled.
//
// Under a budget far below the build tables' footprint the plan clamps
// to a handful of fat partitions. Without defenses each partition
// builds one cache-hostile multi-megabyte table; with them the engine
// reverses build/probe roles where the probe extent is smaller and
// recursively re-splits fat partitions down to budget-resident tables.
// The experiment asserts all three runs join to the identical result
// cardinality — a defense that drops or duplicates rows is a
// correctness bug, not a win — and panics at the million-row point if
// the defended run is not at least 2x faster than the defenseless one,
// or if no defense actually fired.
//
// Like internal/joinorderbench it exercises the public Database API, so
// it lives outside internal/bench and registers itself at init time.
package skewbench

import (
	"fmt"
	"time"

	mmdb "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

func init() {
	bench.Register(bench.Experiment{
		ID:      "skew",
		Exhibit: "Extension — memory-budgeted skew defense vs defenseless clamp",
		Run:     SkewDefenseSweep,
	})
}

// budgetBytes is deliberately tiny against the ~16MiB a million-row
// build wants: small enough that the clamped plan's partitions dwarf
// it (forcing re-splits), large enough that a re-split child's table
// fits without forcing.
const budgetBytes = 128 << 10

// SkewDefenseSweep times the defended and defenseless budgeted joins
// against each other (and an unbudgeted reference) at two build
// cardinalities.
func SkewDefenseSweep(env bench.Env) []bench.Series {
	s := bench.Series{
		ID:     "skew-defense",
		Title:  "Skew defense — budgeted radix join, defended vs defenseless (Zipf s=1.2)",
		XLabel: "build rows",
		YLabel: "seconds",
		Names:  []string{"unbudgeted", "defended", "no defense"},
	}
	for _, base := range []int{250000, 1000000} {
		n := env.N(base)
		keys, err := workload.BuildZipf(workload.ZipfSpec{Cardinality: n}, env.Rng())
		if err != nil {
			panic(err)
		}

		free := buildPair(mmdb.Options{}, n, keys.Values)
		defended := buildPair(mmdb.Options{MemoryBudget: budgetBytes}, n, keys.Values)
		exposed := buildPair(mmdb.Options{MemoryBudget: budgetBytes, DisableSkewDefense: true}, n, keys.Values)

		query := func(db *mmdb.Database) *mmdb.Query {
			q := db.Query("probe").Join("build", "k", "k").Select("probe.id", "build.id")
			if env.Parallelism > 0 {
				q = q.Parallel(env.Parallelism)
			}
			return q
		}

		// Every build key lies in the probe relation's [0, n) unique-key
		// domain, so each build row matches exactly one probe row and the
		// join's cardinality is exactly n on every path.
		reference, err := query(free).Run()
		if err != nil {
			panic(err)
		}
		got, trace, err := query(defended).Analyze()
		if err != nil {
			panic(err)
		}
		bare, err := query(exposed).Run()
		if err != nil {
			panic(err)
		}
		if reference.Len() != n || got.Len() != n || bare.Len() != n {
			panic(fmt.Sprintf("skewbench: cardinality mismatch at n=%d: unbudgeted=%d defended=%d nodefense=%d want=%d",
				n, reference.Len(), got.Len(), bare.Len(), n))
		}
		reversed, resplits := 0, 0
		for _, node := range trace.Root.Children {
			if node.Op == "join" {
				reversed += node.Reversed
				resplits += node.Resplits
			}
		}

		tFree := timeBest(func() { mustRun(query(free)) })
		tDef := timeBest(func() { mustRun(query(defended)) })
		tBare := timeBest(func() { mustRun(query(exposed)) })
		s.Add(fmt.Sprint(n), tFree, tDef, tBare)
		s.Notes = append(s.Notes, fmt.Sprintf(
			"n=%d: cardinality asserted %d rows on all three paths; defenses fired reversed=%d resplit=%d; defended %.2fx faster than defenseless",
			n, n, reversed, resplits, tBare/tDef))

		if base >= 1000000 && env.Scale >= 1 {
			if reversed+resplits == 0 {
				panic(fmt.Sprintf("skewbench: budget %d fired no defense at n=%d", budgetBytes, n))
			}
			if tDef*2 > tBare {
				panic(fmt.Sprintf("skewbench: defended join only %.2fx faster than defenseless at n=%d (want >=2x)",
					tBare/tDef, n))
			}
		}
	}
	return []bench.Series{s}
}

// buildPair creates probe(id, k) with n unique keys covering [0, n) and
// build(id, k) carrying the supplied (Zipf-skewed) key column. The join
// column k is un-indexed on both sides so the planner's natural choice
// is the build-side hash join, upgraded to radix at these cardinalities.
func buildPair(opts mmdb.Options, n int, buildKeys []int64) *mmdb.Database {
	db, err := mmdb.Open(opts)
	if err != nil {
		panic(err)
	}
	probe, err := db.CreateTable("probe", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "k", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		if _, err := probe.Insert(mmdb.Int(int64(i)), mmdb.Int(int64(i))); err != nil {
			panic(err)
		}
	}
	build, err := db.CreateTable("build", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "k", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		panic(err)
	}
	for i, k := range buildKeys {
		if _, err := build.Insert(mmdb.Int(int64(i)), mmdb.Int(k)); err != nil {
			panic(err)
		}
	}
	return db
}

func mustRun(q *mmdb.Query) {
	if _, err := q.Run(); err != nil {
		panic(err)
	}
}

// timeBest measures f, repeating up to three times while runs stay
// under 100ms, and keeps the minimum (the steady state, not the noise).
func timeBest(f func()) float64 {
	best := timeIt(f)
	for rep := 0; rep < 2 && best < 0.1; rep++ {
		if t := timeIt(f); t < best {
			best = t
		}
	}
	return best
}

func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}
