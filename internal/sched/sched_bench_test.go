package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkRunSubmit measures the fixed cost of one task-set round trip
// (submit, admit, execute, retire) with trivial morsels — the scheduler
// overhead an operator pays on top of its real work.
func BenchmarkRunSubmit(b *testing.B) {
	p := NewPool(4)
	defer p.Stop()
	q := NewQuery(p, nil, 0)
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Run(4, 16, func(int) { sink.Add(1) })
	}
}

// BenchmarkRunFanout measures morsel throughput on a saturated pool:
// one large set, empty bodies, so ns/op approximates per-morsel
// scheduling cost (claim, deque, retire).
func BenchmarkRunFanout(b *testing.B) {
	p := NewPool(4)
	defer p.Stop()
	q := NewQuery(p, nil, 0)
	var sink atomic.Int64
	b.ResetTimer()
	q.Run(4, b.N, func(int) { sink.Add(1) })
}

// BenchmarkConcurrentQueries measures admission under multi-tenancy:
// 8 queries submitting sets concurrently onto one 4-worker pool.
func BenchmarkConcurrentQueries(b *testing.B) {
	p := NewPool(4)
	defer p.Stop()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				q := NewQuery(p, nil, 0)
				q.Run(2, 8, func(int) { sink.Add(1) })
			}()
		}
		wg.Wait()
	}
}
