package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryMorselOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Stop()
	q := NewQuery(p, nil, 0)
	const n = 1000
	var counts [n]atomic.Int32
	q.Run(4, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("morsel %d executed %d times", i, got)
		}
	}
}

func TestRunSingleMorsel(t *testing.T) {
	p := NewPool(2)
	defer p.Stop()
	q := NewQuery(p, nil, 0)
	var ran atomic.Int32
	st := q.Run(8, 1, func(i int) { ran.Add(1) })
	if ran.Load() != 1 {
		t.Fatalf("ran %d times", ran.Load())
	}
	if st.Wait < 0 {
		t.Fatalf("negative wait %v", st.Wait)
	}
}

func TestConcurrentRunsShareThePool(t *testing.T) {
	p := NewPool(4)
	defer p.Stop()
	const queries, morsels = 8, 64
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := NewQuery(p, nil, 0)
			q.Run(4, morsels, func(int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if got := total.Load(); got != queries*morsels {
		t.Fatalf("executed %d morsels, want %d", got, queries*morsels)
	}
}

// A heavy set must not starve a small set: with one worker and a large
// low-priority set already queued, a second set still gets admitted
// round-robin (the worker alternates claim batches between them).
func TestAdmissionIsFairAcrossSets(t *testing.T) {
	p := NewPool(1)
	defer p.Stop()
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	heavy := NewQuery(p, nil, 0)
	go func() {
		heavy.Run(1, 64, func(i int) {
			once.Do(func() { close(started) })
			<-release
		})
	}()
	<-started // heavy set owns the only worker
	lightDone := make(chan struct{})
	light := NewQuery(p, nil, 0)
	go func() {
		light.Run(1, 1, func(int) {})
		close(lightDone)
	}()
	// Wait until the light set is enqueued (visible as one extra queued
	// morsel) — the worker is blocked inside a heavy morsel meanwhile, so
	// depth is otherwise stable. Without this the release loop can race
	// the enqueue and feed every send to further heavy claim batches.
	deadline := time.Now().Add(5 * time.Second)
	for p.SnapshotStats().QueueDepth < 64 {
		if time.Now().After(deadline) {
			t.Fatal("light set never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	// Free the worker morsel by morsel; round-robin admission must hand
	// it to the light set long before the heavy set's 64 morsels drain.
	for i := 0; i < 2*claimBatch; i++ {
		release <- struct{}{}
	}
	select {
	case <-lightDone:
	case <-time.After(5 * time.Second):
		t.Fatal("light query starved behind heavy set")
	}
	close(release)
}

func TestPriorityBreaksAdmissionTies(t *testing.T) {
	p := NewPool(1)
	defer p.Stop()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocker := NewQuery(p, nil, 0)
	go func() {
		blocker.Run(1, 1, func(int) {
			once.Do(func() { close(started) })
			<-gate
		})
	}()
	<-started
	// Both queued while the worker is blocked; the high-priority one
	// must run first when it frees.
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	runOne := func(prio, id int) {
		defer wg.Done()
		q := NewQuery(p, nil, prio)
		q.Run(1, 1, func(int) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		})
	}
	wg.Add(2)
	go runOne(0, 0)
	time.Sleep(50 * time.Millisecond) // low-priority set enqueued first
	go runOne(5, 1)
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("execution order %v, want high-priority first", order)
	}
}

func TestStealsHappenAndAreCounted(t *testing.T) {
	p := NewPool(4)
	defer p.Stop()
	q := NewQuery(p, nil, 0)
	// limit 1 forces a single claimant that batches morsels into its
	// deque; the other three workers can only make progress by stealing.
	var maxPar, par atomic.Int32
	q.Run(1, 256, func(int) {
		c := par.Add(1)
		for {
			m := maxPar.Load()
			if c <= m || maxPar.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		par.Add(-1)
	})
	if p.SnapshotStats().Steals == 0 {
		t.Fatal("no steals recorded for a limit-1 set on a 4-worker pool")
	}
	if q.Steals() == 0 {
		t.Fatal("per-query steal count not folded")
	}
}

func TestCancelDiscardsUnclaimedMorsels(t *testing.T) {
	p := NewPool(2)
	defer p.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	q := NewQuery(p, ctx, 0)
	var ran atomic.Int32
	block := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	go func() {
		q.Run(2, 10_000, func(int) {
			ran.Add(1)
			once.Do(func() { close(block) })
			time.Sleep(100 * time.Microsecond)
		})
		close(done)
	}()
	<-block
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if got := ran.Load(); got >= 10_000 {
		t.Fatalf("cancel discarded nothing: %d morsels ran", got)
	}
	if !q.Cancelled() {
		t.Fatal("Cancelled() false after context cancel")
	}
	// The workers must be free for other queries immediately.
	q2 := NewQuery(p, nil, 0)
	var ok atomic.Int32
	q2.Run(2, 8, func(int) { ok.Add(1) })
	if ok.Load() != 8 {
		t.Fatalf("pool not released after cancel: %d/8 morsels ran", ok.Load())
	}
}

func TestResizeGrowsAndShrinks(t *testing.T) {
	p := NewPool(2)
	defer p.Stop()
	p.Resize(6)
	if got := p.Workers(); got != 6 {
		t.Fatalf("Workers()=%d after grow, want 6", got)
	}
	q := NewQuery(p, nil, 0)
	q.Run(6, 600, func(int) {})
	p.Resize(2)
	if got := p.Workers(); got != 2 {
		t.Fatalf("Workers()=%d after shrink, want 2", got)
	}
	var ran atomic.Int32
	q.Run(4, 100, func(int) { ran.Add(1) })
	if ran.Load() != 100 {
		t.Fatalf("shrunk pool lost morsels: %d/100", ran.Load())
	}
}

func TestWaitTimeAccumulates(t *testing.T) {
	p := NewPool(1)
	defer p.Stop()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocker := NewQuery(p, nil, 0)
	go func() {
		blocker.Run(1, 1, func(int) {
			once.Do(func() { close(started) })
			<-gate
		})
	}()
	<-started
	q := NewQuery(p, nil, 0)
	waited := make(chan RunStats, 1)
	go func() { waited <- q.Run(1, 1, func(int) {}) }()
	time.Sleep(50 * time.Millisecond)
	close(gate)
	st := <-waited
	if st.Wait < 25*time.Millisecond {
		t.Fatalf("admission wait %v, want >= 25ms behind a blocked worker", st.Wait)
	}
	if q.WaitTime() < st.Wait {
		t.Fatalf("query wait %v < run wait %v", q.WaitTime(), st.Wait)
	}
}

func TestNilHandleIsSafe(t *testing.T) {
	var q *Query
	if q.Pooled() || q.Cancelled() || q.Err() != nil || q.Steals() != 0 || q.WaitTime() != 0 {
		t.Fatal("nil *Query accessors must be inert")
	}
	q2 := NewQuery(nil, nil, 0)
	if q2.Pooled() {
		t.Fatal("nil-pool handle reports Pooled")
	}
}

func TestQueueDepthReturnsToZero(t *testing.T) {
	p := NewPool(4)
	defer p.Stop()
	q := NewQuery(p, nil, 0)
	q.Run(4, 500, func(int) {})
	if d := p.SnapshotStats().QueueDepth; d != 0 {
		t.Fatalf("queue depth %d after drain, want 0", d)
	}
	if b := p.SnapshotStats().Busy; b != 0 {
		t.Fatalf("busy %d after drain, want 0", b)
	}
}

// TestGrantGaugeBreaksAdmissionTies: at equal priority, the query
// holding fewer granted memory bytes is admitted first, so grant
// holders drain instead of queueing more work in front of starved
// siblings. With no gauges set (both zero) admission is unchanged.
func TestGrantGaugeBreaksAdmissionTies(t *testing.T) {
	p := NewPool(1)
	defer p.Stop()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	blocker := NewQuery(p, nil, 0)
	go func() {
		blocker.Run(1, 1, func(int) {
			once.Do(func() { close(started) })
			<-gate
		})
	}()
	<-started
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	runOne := func(grant int64, id int) {
		defer wg.Done()
		q := NewQuery(p, nil, 0)
		q.SetMemBytes(grant)
		q.Run(1, 1, func(int) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		})
	}
	wg.Add(2)
	go runOne(1<<20, 0) // fat grant enqueued first
	time.Sleep(50 * time.Millisecond)
	go runOne(0, 1) // no grant: must jump the queue
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("execution order %v, want grant-free query first", order)
	}
	if blocker.MemBytes() != 0 {
		t.Fatalf("default gauge = %d, want 0", blocker.MemBytes())
	}
	var nq *Query
	nq.SetMemBytes(5) // nil-safe
	if nq.MemBytes() != 0 {
		t.Fatal("nil query gauge")
	}
}
