// Package sched is the process-wide morsel scheduler: one elastic pool
// of workers shared by every concurrently running query, replacing the
// per-query worker sets the parallel layer used to spawn. N concurrent
// queries on a per-query-pool design launch N×GOMAXPROCS goroutines and
// fight the Go scheduler for cores; here the same N queries share
// GOMAXPROCS workers and fight only over morsels.
//
// The design follows the morsel-driven scheduling literature the roadmap
// points at (Leis et al.'s morsel-driven parallelism; Albutiu, Kemper &
// Neumann's locality-preferring work distribution):
//
//   - Each worker owns a small bounded deque. It pushes work it claims
//     for itself on one end and pops it back LIFO — the most recently
//     claimed morsel is the cache-warmest — while idle workers steal
//     FIFO from the other end, taking the coldest morsel and leaving
//     the victim's warm end alone.
//   - Work enters as task sets (one per operator invocation: "n morsels,
//     at most w claimants"). Admission is a fair round-robin over the
//     active sets, so a 10-million-morsel analytical query and a
//     three-morsel point lookup both get a worker as one frees up — the
//     heavy query cannot starve the fleet. Query priority is a tiebreak
//     on top of the round-robin, not a bypass of it.
//   - A set's limit caps how many workers claim from it concurrently
//     (the operator's planned degree); steals may briefly exceed it,
//     trading strict limits for never idling a core while work exists.
//
// Cancellation is cooperative at morsel granularity: a cancelled set
// stops handing out unclaimed morsels immediately and already-queued
// morsels are discarded unexecuted; Run returns once in-flight morsels
// finish.
//
// The package depends only on the standard library so every layer of
// the engine (exec specs, the parallel operators, the database surface)
// can reference it without cycles.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// claimBatch is how many morsels one admission claim moves into the
// claiming worker's deque: enough to amortize the admission scan, small
// enough that a skewed set leaves morsels for thieves. It mirrors the
// parallel layer's morsels-per-worker oversubscription.
const claimBatch = 4

// dequeCap bounds a worker's private deque. It only needs to hold one
// admission batch plus stolen strays; keeping it tiny keeps the whole
// deque in one cache line's reach under the per-deque mutex.
const dequeCap = 16

// task is one claimable unit: morsel idx of a set.
type task struct {
	set *taskSet
	idx int
}

// deque is a worker's bounded ring of claimed tasks. The owner pushes
// and pops at the tail (LIFO, cache-warm end); thieves take from the
// head (FIFO, the coldest task). A mutex per deque is cheap at morsel
// granularity — a claim moves thousands of rows of work per lock.
type deque struct {
	mu         sync.Mutex
	buf        [dequeCap]task
	head, tail int // ring positions; tail is the owner end
	size       atomic.Int32
}

func (d *deque) pushBottom(t task) bool {
	d.mu.Lock()
	if int(d.size.Load()) == dequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf[d.tail] = t
	d.tail = (d.tail + 1) % dequeCap
	d.size.Add(1)
	d.mu.Unlock()
	return true
}

func (d *deque) popBottom() (task, bool) {
	d.mu.Lock()
	if d.size.Load() == 0 {
		d.mu.Unlock()
		return task{}, false
	}
	d.tail = (d.tail - 1 + dequeCap) % dequeCap
	t := d.buf[d.tail]
	d.buf[d.tail] = task{}
	d.size.Add(-1)
	d.mu.Unlock()
	return t, true
}

func (d *deque) stealTop() (task, bool) {
	d.mu.Lock()
	if d.size.Load() == 0 {
		d.mu.Unlock()
		return task{}, false
	}
	t := d.buf[d.head]
	d.buf[d.head] = task{}
	d.head = (d.head + 1) % dequeCap
	d.size.Add(-1)
	d.mu.Unlock()
	return t, true
}

// taskSet is one submitted batch of morsels: the unit of admission.
type taskSet struct {
	q  *Query
	fn func(idx int)
	n  int

	// Guarded by the pool mutex.
	next    int  // claim cursor
	pending int  // morsels not yet finished (or discarded)
	running int  // workers currently holding a claim slot
	limit   int  // max concurrent claim slots (the operator's degree)
	started bool // first morsel has been claimed
	wait    time.Duration

	cancelled atomic.Bool
	steals    atomic.Int64
	enqueued  time.Time
	done      chan struct{}
}

// dead reports whether the set's morsels should no longer execute.
func (s *taskSet) dead() bool {
	if s.cancelled.Load() {
		return true
	}
	if ctx := s.q.ctx; ctx != nil && ctx.Err() != nil {
		s.cancelled.Store(true)
		return true
	}
	return false
}

// RunStats reports what one Run paid to the scheduler: how long the set
// waited for its first worker and how many of its morsels were stolen.
type RunStats struct {
	Wait   time.Duration
	Steals int64
}

// Stats is a point-in-time snapshot of pool saturation.
type Stats struct {
	Workers    int   // current worker count
	QueueDepth int64 // morsels accepted but not yet started
	Busy       int64 // workers executing a morsel right now
	Steals     int64 // total cross-worker steals
	Parks      int64 // total times a worker went idle
}

// Pool is a work-stealing morsel scheduler. The zero value is not
// usable; construct with NewPool or use the process-wide Shared pool.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*worker
	sets    []*taskSet
	rr      int // round-robin admission cursor into sets
	idle    int
	stopped bool

	queued atomic.Int64
	busy   atomic.Int64
	steals atomic.Int64
	parks  atomic.Int64
}

type worker struct {
	pool *Pool
	deq  deque
	quit atomic.Bool
	slot *taskSet // set this worker holds a claim slot on
}

// NewPool starts a pool with n workers (n <= 0 means GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.mu.Lock()
	p.grow(n)
	p.mu.Unlock()
	return p
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, created on first use with
// GOMAXPROCS workers. Every database opened with the default options
// schedules onto it, which is the point: one machine, one worker fleet.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(0) })
	return sharedPool
}

// grow spawns workers up to n total. Caller holds p.mu.
func (p *Pool) grow(n int) {
	for len(p.workers) < n {
		w := &worker{pool: p}
		p.workers = append(p.workers, w)
		go w.loop()
	}
}

// Resize sets the worker count. Shrinking is cooperative: excess
// workers finish their queued morsels and exit at their next idle
// point, so in-flight work is never dropped.
func (p *Pool) Resize(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p.mu.Lock()
	if n >= len(p.workers) {
		p.grow(n)
	} else {
		for _, w := range p.workers[n:] {
			w.quit.Store(true)
		}
		p.workers = p.workers[:n]
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Stop terminates every worker (cooperatively, as Resize does) and
// rejects future submissions. Only dedicated pools are stopped; the
// Shared pool lives as long as the process.
func (p *Pool) Stop() {
	p.mu.Lock()
	p.stopped = true
	for _, w := range p.workers {
		w.quit.Store(true)
	}
	p.workers = nil
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Workers returns the current worker count.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// SnapshotStats returns current saturation counters.
func (p *Pool) SnapshotStats() Stats {
	p.mu.Lock()
	n := len(p.workers)
	p.mu.Unlock()
	return Stats{
		Workers:    n,
		QueueDepth: p.queued.Load(),
		Busy:       p.busy.Load(),
		Steals:     p.steals.Load(),
		Parks:      p.parks.Load(),
	}
}

// Query is a per-query admission handle: the priority tiebreak, the
// cancellation context, and the query's accumulated scheduler costs.
// A nil *Query (or one from a nil pool) is the unscheduled state: Run
// panics, but Cancelled/Err/Pooled and the stat getters all work, so
// callers can carry one handle through both pooled and compat paths.
type Query struct {
	pool *Pool
	ctx  context.Context
	prio int

	steals    atomic.Int64
	waitNanos atomic.Int64
	// memBytes mirrors the query's currently granted memory-reservation
	// bytes (wired from mem.Reservation.Notify). At equal priority the
	// claim loop prefers the query holding fewer granted bytes, so a
	// query sitting on a large grant drains it instead of queueing more
	// work behind it while starved siblings wait. Zero (the unbudgeted
	// state) keeps admission exactly as before.
	memBytes atomic.Int64
}

// NewQuery returns an admission handle on p. p may be nil: the handle
// then reports Pooled()==false and carries only ctx/priority, which is
// how the compat (pool-disabled) path still gets morsel-boundary
// cancellation.
func NewQuery(p *Pool, ctx context.Context, priority int) *Query {
	return &Query{pool: p, ctx: ctx, prio: priority}
}

// Pooled reports whether Run will schedule onto a pool.
func (q *Query) Pooled() bool { return q != nil && q.pool != nil }

// SetMemBytes publishes the query's currently granted memory bytes for
// grant-aware admission (see Query.memBytes). Safe on nil and from any
// goroutine — it is the mem.Reservation.Notify hook's target.
func (q *Query) SetMemBytes(n int64) {
	if q == nil {
		return
	}
	q.memBytes.Store(n)
}

// MemBytes returns the last published grant gauge (0 on nil).
func (q *Query) MemBytes() int64 {
	if q == nil {
		return 0
	}
	return q.memBytes.Load()
}

// Cancelled reports whether the query's context is done.
func (q *Query) Cancelled() bool {
	return q != nil && q.ctx != nil && q.ctx.Err() != nil
}

// Err returns the context's error, if any.
func (q *Query) Err() error {
	if q == nil || q.ctx == nil {
		return nil
	}
	return q.ctx.Err()
}

// Steals returns the total morsels of this query stolen across workers.
func (q *Query) Steals() int64 {
	if q == nil {
		return 0
	}
	return q.steals.Load()
}

// WaitTime returns the total admission latency the query's task sets
// paid waiting for their first worker.
func (q *Query) WaitTime() time.Duration {
	if q == nil {
		return 0
	}
	return time.Duration(q.waitNanos.Load())
}

// Run submits n morsels with a concurrency limit of w and blocks until
// every morsel has finished or been discarded by cancellation. fn is
// called once per surviving morsel index, possibly concurrently from
// many workers. Run must not be called from inside a morsel body: a
// worker blocking on a nested set could deadlock the pool.
func (q *Query) Run(w, n int, fn func(idx int)) RunStats {
	if n <= 0 {
		return RunStats{}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	p := q.pool
	s := &taskSet{q: q, fn: fn, n: n, pending: n, limit: w,
		enqueued: time.Now(), done: make(chan struct{})}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		panic("sched: Run on a stopped pool")
	}
	p.sets = append(p.sets, s)
	p.queued.Add(int64(n))
	// Wake enough parked workers to cover the set's degree.
	for i := 0; i < w && i < p.idle; i++ {
		p.cond.Signal()
	}
	p.mu.Unlock()

	if q.ctx != nil {
		select {
		case <-s.done:
		case <-q.ctx.Done():
			p.cancel(s)
			<-s.done
		}
	} else {
		<-s.done
	}
	st := RunStats{Wait: s.wait, Steals: s.steals.Load()}
	q.steals.Add(st.Steals)
	q.waitNanos.Add(int64(st.Wait))
	return st
}

// cancel marks the set dead and discards its unclaimed morsels. Queued
// (claimed but unexecuted) morsels are discarded by the workers holding
// them, so done closes after at most the in-flight morsels finish.
func (p *Pool) cancel(s *taskSet) {
	p.mu.Lock()
	s.cancelled.Store(true)
	if drop := s.n - s.next; drop > 0 {
		s.next = s.n
		s.pending -= drop
		p.queued.Add(int64(-drop))
		if s.pending == 0 {
			close(s.done)
		}
	}
	p.removeSet(s)
	p.mu.Unlock()
}

// removeSet drops s from the admission list. Caller holds p.mu.
func (p *Pool) removeSet(s *taskSet) {
	for i, x := range p.sets {
		if x == s {
			p.sets = append(p.sets[:i], p.sets[i+1:]...)
			if p.rr > i {
				p.rr--
			}
			return
		}
	}
}

// finish retires one morsel of s. Caller holds p.mu.
func (p *Pool) finish(s *taskSet) {
	s.pending--
	if s.pending == 0 {
		close(s.done)
	}
}

// loop is a worker's life: drain the private deque, admit a fresh claim
// batch, steal from a sibling, park.
func (w *worker) loop() {
	p := w.pool
	for {
		if t, ok := w.deq.popBottom(); ok {
			w.exec(t)
			continue
		}
		if w.quit.Load() {
			w.releaseSlot()
			return
		}
		if w.claim() {
			continue
		}
		if t, ok := p.steal(w); ok {
			p.steals.Add(1)
			t.set.steals.Add(1)
			t.set.q.steals.Add(1)
			w.exec(t)
			continue
		}
		p.park(w)
	}
}

// releaseSlot returns the worker's claim slot, if any, waking a parked
// sibling that may now be admissible on that set.
func (w *worker) releaseSlot() {
	if w.slot == nil {
		return
	}
	p := w.pool
	p.mu.Lock()
	w.slot.running--
	w.slot = nil
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// claim runs the admission policy: release the current slot, then scan
// the active sets round-robin from just past the last admitted one,
// picking the highest-priority admissible set (round-robin order breaks
// ties), and move up to claimBatch of its morsels into the private
// deque. Returns whether anything was claimed.
func (w *worker) claim() bool {
	p := w.pool
	p.mu.Lock()
	if w.slot != nil {
		w.slot.running--
		w.slot = nil
	}
	var best *taskSet
	bestAt := -1
	for i := 0; i < len(p.sets); i++ {
		at := (p.rr + 1 + i) % len(p.sets)
		s := p.sets[at]
		if s.next >= s.n || s.running >= s.limit {
			continue
		}
		if s.dead() {
			// Lazily reap sets cancelled via context timeout without an
			// explicit waiter-side cancel yet.
			drop := s.n - s.next
			s.next = s.n
			s.pending -= drop
			p.queued.Add(int64(-drop))
			if s.pending == 0 {
				close(s.done)
			}
			p.sets = append(p.sets[:at], p.sets[at+1:]...)
			if p.rr > at {
				p.rr--
			}
			i--
			if len(p.sets) == 0 {
				break
			}
			continue
		}
		if best == nil || s.q.prio > best.q.prio ||
			(s.q.prio == best.q.prio && s.q.memBytes.Load() < best.q.memBytes.Load()) {
			best, bestAt = s, at
		}
	}
	if best == nil {
		p.mu.Unlock()
		return false
	}
	s := best
	p.rr = bestAt
	if !s.started {
		s.started = true
		s.wait = time.Since(s.enqueued)
	}
	take := claimBatch
	if rest := s.n - s.next; take > rest {
		take = rest
	}
	lo := s.next
	s.next += take
	s.running++
	w.slot = s
	if s.next >= s.n {
		p.removeSet(s)
	}
	// Push later morsels first so LIFO pops run them in ascending order.
	for i := lo + take - 1; i > lo; i-- {
		w.deq.pushBottom(task{set: s, idx: i})
	}
	if take > 1 && p.idle > 0 {
		p.cond.Signal() // surplus in our deque: a thief can help
	}
	p.mu.Unlock()
	w.exec(task{set: s, idx: lo})
	return true
}

// steal takes the oldest task from a sibling's deque.
func (p *Pool) steal(w *worker) (task, bool) {
	p.mu.Lock()
	victims := p.workers
	p.mu.Unlock()
	for _, v := range victims {
		if v == w || v.deq.size.Load() == 0 {
			continue
		}
		if t, ok := v.deq.stealTop(); ok {
			return t, true
		}
	}
	return task{}, false
}

// exec runs (or, for a dead set, discards) one morsel.
func (w *worker) exec(t task) {
	p := w.pool
	p.queued.Add(-1)
	if !t.set.dead() {
		p.busy.Add(1)
		t.set.fn(t.idx)
		p.busy.Add(-1)
	}
	p.mu.Lock()
	p.finish(t.set)
	p.mu.Unlock()
}

// park blocks until new work may exist. The admissibility re-check
// under the mutex closes the missed-wakeup window between a failed
// claim scan and going idle.
func (p *Pool) park(w *worker) {
	p.mu.Lock()
	if w.quit.Load() || p.claimable() {
		p.mu.Unlock()
		return
	}
	p.parks.Add(1)
	p.idle++
	p.cond.Wait()
	p.idle--
	p.mu.Unlock()
}

// claimable reports whether any admissible morsel or stealable task
// exists. Caller holds p.mu.
func (p *Pool) claimable() bool {
	for _, s := range p.sets {
		if s.next < s.n && s.running < s.limit && !s.cancelled.Load() {
			return true
		}
	}
	for _, v := range p.workers {
		if v.deq.size.Load() > 0 {
			return true
		}
	}
	return false
}
