package lock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "p0", Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- m.Lock(2, "p0", Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second shared lock blocked")
	}
}

func TestExclusiveBlocksAndHandsOff(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "p0", Exclusive); err != nil {
		t.Fatal(err)
	}
	var acquired atomic.Bool
	done := make(chan error)
	go func() {
		err := m.Lock(2, "p0", Exclusive)
		acquired.Store(true)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("exclusive lock granted while held")
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Holds(2, "p0"); !ok {
		t.Fatal("handoff lost")
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		if err := m.Lock(1, "p0", Shared); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Lock(1, "p0", Exclusive); err != nil {
		t.Fatal("self-upgrade with no contention failed")
	}
	if mode, _ := m.Holds(1, "p0"); mode != Exclusive {
		t.Fatalf("mode=%v", mode)
	}
	// X then S request stays X.
	if err := m.Lock(1, "p0", Shared); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holds(1, "p0"); mode != Exclusive {
		t.Fatal("downgraded")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Txn 1 waits for b (held by 2).
		m.Lock(1, "b", Exclusive)
	}()
	time.Sleep(50 * time.Millisecond)
	// Txn 2 requesting a (held by 1) closes the cycle.
	if err := m.Lock(2, "a", Exclusive); err != ErrDeadlock {
		t.Fatalf("err=%v, want ErrDeadlock", err)
	}
	// Victim aborts; txn 1 gets its lock.
	m.ReleaseAll(2)
	deadline := time.After(time.Second)
	for {
		if _, ok := m.Holds(1, "b"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("txn 1 never acquired b after victim release")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	m := NewManager()
	m.Lock(1, "p", Shared)
	m.Lock(2, "p", Shared)
	go func() { m.Lock(1, "p", Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	if err := m.Lock(2, "p", Exclusive); err != ErrDeadlock {
		t.Fatalf("err=%v, want ErrDeadlock on crossing upgrades", err)
	}
	m.ReleaseAll(2)
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const txns = 16
	const resources = 4
	var counters [resources]int64
	var wg sync.WaitGroup
	for id := TxnID(1); id <= txns; id++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				res := int(id+TxnID(iter)) % resources
				// Single-resource transactions cannot deadlock.
				if err := m.Lock(id, res, Exclusive); err != nil {
					t.Errorf("txn %d: %v", id, err)
					return
				}
				// Critical section: verify mutual exclusion.
				if n := atomic.AddInt64(&counters[res], 1); n != 1 {
					t.Errorf("mutual exclusion violated on %d: %d holders", res, n)
				}
				atomic.AddInt64(&counters[res], -1)
				m.ReleaseAll(id)
			}
		}(id)
	}
	wg.Wait()
}

func TestReleaseAllCleansUp(t *testing.T) {
	m := NewManager()
	m.Lock(1, "a", Shared)
	m.Lock(1, "b", Exclusive)
	m.ReleaseAll(1)
	if _, ok := m.Holds(1, "a"); ok {
		t.Fatal("lock survived ReleaseAll")
	}
	// Fresh acquisition by another txn succeeds immediately.
	if err := m.Lock(2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
}
