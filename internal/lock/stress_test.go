package lock

import (
	"sync"
	"testing"
	"time"
)

func TestWriterVsReaderStress(t *testing.T) {
	m := NewManager()
	rel := "rel"
	parts := []string{"p0", "p1", "p2"}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			id := TxnID(1000000 + i)
			if err := m.Lock(id, rel, Exclusive); err != nil {
				m.ReleaseAll(id)
				continue
			}
			m.ReleaseAll(id)
		}
		close(done)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				i++
				id := TxnID(r*100000 + i)
				ok := true
				if err := m.Lock(id, rel, Shared); err != nil {
					ok = false
				}
				if ok {
					for _, p := range parts {
						if err := m.Lock(id, p, Shared); err != nil {
							break
						}
					}
				}
				m.ReleaseAll(id)
			}
		}(r)
	}
	fin := make(chan struct{})
	go func() { wg.Wait(); close(fin) }()
	select {
	case <-fin:
	case <-time.After(30 * time.Second):
		t.Fatalf("stress hang: %s", m.String())
	}
}
