// Package lock implements the MM-DBMS concurrency control of §2.4:
// two-phase locking at partition granularity. In a memory-resident system
// transactions are short, so coarse locks held briefly beat tuple-level
// locking, whose bookkeeping "would be comparable to the cost of accessing
// [the tuple] — thus doubling the cost of tuple accesses". Deadlocks are
// detected with a waits-for graph derived from the live lock tables and
// resolved by aborting the requester that would close a cycle.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// TxnID identifies a transaction.
type TxnID uint64

// ErrDeadlock is returned to the requester whose wait would complete a
// cycle in the waits-for graph.
var ErrDeadlock = errors.New("lock: deadlock detected")

// Resource is anything lockable — the engine locks *storage.Relation and
// *storage.Partition pointers. Values must be comparable.
type Resource any

// Observer receives concurrency-control events. The obs registry
// implements it; the interface lives here so the lock manager does not
// depend on the metrics layer. Implementations must be safe for
// concurrent use.
type Observer interface {
	// LockWait reports one request that had to queue, with the time it
	// spent waiting (including requests that ended in an error).
	LockWait(d time.Duration)
	// Deadlock reports one request denied because waiting would have
	// closed a cycle in the waits-for graph.
	Deadlock()
}

// Manager is a blocking two-phase lock manager.
type Manager struct {
	mu    sync.Mutex
	locks map[Resource]*state
	held  map[TxnID]map[Resource]Mode
	// waitingOn records the resource each blocked transaction waits for.
	// The waits-for edges are derived from this plus the live holder and
	// queue tables on every check, so they can never go stale — a cycle
	// that forms when lock ownership migrates is still found.
	waitingOn map[TxnID]Resource
	obs       Observer
}

type state struct {
	holders map[TxnID]Mode
	queue   []*waiter
}

type waiter struct {
	txn     TxnID
	mode    Mode
	granted chan error
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		locks:     make(map[Resource]*state),
		held:      make(map[TxnID]map[Resource]Mode),
		waitingOn: make(map[TxnID]Resource),
	}
}

// SetObserver wires the metrics observer. Pass nil to disable. May be
// called at any time; events in flight may use the previous observer.
func (m *Manager) SetObserver(o Observer) {
	m.mu.Lock()
	m.obs = o
	m.mu.Unlock()
}

// Lock acquires res in the given mode for txn, blocking until granted. It
// returns ErrDeadlock if waiting would create a cycle; the caller is
// expected to abort. Re-acquiring a held lock is a no-op; holding Shared
// and requesting Exclusive upgrades when possible.
func (m *Manager) Lock(txn TxnID, res Resource, mode Mode) error {
	m.mu.Lock()
	st := m.locks[res]
	if st == nil {
		st = &state{holders: make(map[TxnID]Mode)}
		m.locks[res] = st
	}
	if cur, ok := st.holders[txn]; ok && (cur == Exclusive || cur == mode) {
		m.mu.Unlock()
		return nil // already held at sufficient strength
	}
	// FIFO fairness: a request may only jump the queue when no one is
	// queued; otherwise a stream of compatible readers would starve a
	// queued writer forever.
	if len(st.queue) == 0 && m.grantable(st, txn, mode) {
		m.grant(st, txn, res, mode)
		m.mu.Unlock()
		return nil
	}
	// Must wait. Record what we wait for, then check whether the wait
	// closes a cycle in the (dynamically derived) waits-for graph.
	obs := m.obs // captured under m.mu; callbacks run outside it
	m.waitingOn[txn] = res
	if m.cyclic(txn, txn, map[TxnID]bool{}) {
		delete(m.waitingOn, txn)
		m.mu.Unlock()
		if obs != nil {
			obs.Deadlock()
		}
		return ErrDeadlock
	}
	w := &waiter{txn: txn, mode: mode, granted: make(chan error, 1)}
	st.queue = append(st.queue, w)
	m.mu.Unlock()
	var start time.Time
	if obs != nil {
		start = time.Now()
	}
	err := <-w.granted
	if obs != nil {
		obs.LockWait(time.Since(start))
	}
	return err
}

// TryLock acquires res in mode only if it is immediately grantable —
// no queueing, no waiting, no deadlock detection. It reports whether
// the lock was taken (or already held at sufficient strength). Callers
// that must never block on writers (statistics exposition) use it and
// degrade gracefully on false.
func (m *Manager) TryLock(txn TxnID, res Resource, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.locks[res]
	if st == nil {
		st = &state{holders: make(map[TxnID]Mode)}
		m.locks[res] = st
	}
	if cur, ok := st.holders[txn]; ok && (cur == Exclusive || cur == mode) {
		return true
	}
	// Same fairness rule as Lock: never jump a non-empty queue.
	if len(st.queue) == 0 && m.grantable(st, txn, mode) {
		m.grant(st, txn, res, mode)
		return true
	}
	return false
}

// grantable reports whether txn can hold res in mode right now.
func (m *Manager) grantable(st *state, txn TxnID, mode Mode) bool {
	for h, hm := range st.holders {
		if h == txn {
			continue // upgrade: only other holders conflict
		}
		if mode == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

func (m *Manager) grant(st *state, txn TxnID, res Resource, mode Mode) {
	st.holders[txn] = mode
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[Resource]Mode)
		m.held[txn] = hm
	}
	hm[res] = mode
	delete(m.waitingOn, txn)
}

// blockers derives the current out-edges of a waiting transaction: the
// holders of the resource it waits on, plus the waiters queued ahead of it
// (FIFO hand-off means it waits for them too). For the transaction
// currently requesting (not yet queued) the whole queue is ahead.
func (m *Manager) blockers(txn TxnID, fn func(TxnID) bool) bool {
	res, ok := m.waitingOn[txn]
	if !ok {
		return true
	}
	st := m.locks[res]
	if st == nil {
		return true
	}
	for h := range st.holders {
		if h != txn && !fn(h) {
			return false
		}
	}
	for _, w := range st.queue {
		if w.txn == txn {
			break
		}
		if !fn(w.txn) {
			return false
		}
	}
	return true
}

// cyclic reports whether target is reachable from cur in the derived
// waits-for graph.
func (m *Manager) cyclic(target, cur TxnID, seen map[TxnID]bool) bool {
	found := false
	m.blockers(cur, func(next TxnID) bool {
		if next == target {
			found = true
			return false
		}
		if !seen[next] {
			seen[next] = true
			if m.cyclic(target, next, seen) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// Unlock releases one resource held by txn and wakes eligible waiters.
func (m *Manager) Unlock(txn TxnID, res Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.release(txn, res)
}

// ReleaseAll releases every lock txn holds and removes it from the wait
// bookkeeping — the commit/abort path of strict two-phase locking.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res := range m.held[txn] {
		m.release(txn, res)
	}
	delete(m.held, txn)
	delete(m.waitingOn, txn)
}

func (m *Manager) release(txn TxnID, res Resource) {
	st := m.locks[res]
	if st == nil {
		return
	}
	delete(st.holders, txn)
	if hm := m.held[txn]; hm != nil {
		delete(hm, res)
	}
	// Wake queued waiters in order while they are grantable.
	for len(st.queue) > 0 {
		w := st.queue[0]
		if !m.grantable(st, w.txn, w.mode) {
			break
		}
		st.queue = st.queue[1:]
		m.grant(st, w.txn, res, w.mode)
		w.granted <- nil
	}
	if len(st.holders) == 0 && len(st.queue) == 0 {
		delete(m.locks, res)
	}
}

// Holds reports the mode txn holds on res, if any.
func (m *Manager) Holds(txn TxnID, res Resource) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[txn][res]
	return mode, ok
}

// String renders a summary for debugging.
func (m *Manager) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("lock.Manager{resources: %d, txns: %d, waiting: %d}",
		len(m.locks), len(m.held), len(m.waitingOn))
}
