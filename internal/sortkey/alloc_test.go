package sortkey

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// TestSortAllocs is the zero-steady-state-allocation guard: once the
// sorter's scratch is warm, sorting allocates nothing — no closures, no
// buffer growth, no boxing. The sorter is held across runs (a pooled
// Get/Put pair inside the measured function could observe a GC-emptied
// pool and re-allocate legitimately).
func TestSortAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 1 << 15
	s := NewSorter[int32]()
	master := make([]Entry[int32], n)
	for i := range master {
		master[i] = Entry[int32]{K: rng.Uint64(), P: int32(i)}
	}
	work := make([]Entry[int32], n)
	copy(work, master)
	s.Sort(work, nil, nil) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() {
		copy(work, master)
		s.Sort(work, nil, nil)
	})
	if allocs != 0 {
		t.Fatalf("warm radix sort allocated %.1f objects/run, want 0", allocs)
	}
}

// TestSortAllocsWithTie guards the comparator-fallback path the same
// way: tie-breaking must not allocate either.
func TestSortAllocsWithTie(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 1 << 14
	s := NewSorter[int32]()
	vals := make([]int64, n)
	master := make([]Entry[int32], n)
	for i := range master {
		vals[i] = int64(rng.Intn(64)) // heavy ties
		master[i] = Entry[int32]{K: uint64(vals[i]), P: int32(i)}
	}
	tie := func(a, b int32) int {
		switch {
		case vals[a] < vals[b]:
			return -1
		case vals[a] > vals[b]:
			return 1
		default:
			return 0
		}
	}
	work := make([]Entry[int32], n)
	copy(work, master)
	s.Sort(work, tie, nil)
	allocs := testing.AllocsPerRun(10, func() {
		copy(work, master)
		s.Sort(work, tie, nil)
	})
	if allocs != 0 {
		t.Fatalf("warm tie-break sort allocated %.1f objects/run, want 0", allocs)
	}
}

// TestConcurrentSorters sorts disjoint segments of one shared entry
// slice from many workers, each with its own pooled sorter — the MPSM
// run-formation pattern. Run under -race in CI, it proves the pooled
// scratch never crosses workers and segment boundaries never overlap.
func TestConcurrentSorters(t *testing.T) {
	const (
		workers  = 8
		segments = 64
		segLen   = 4096
	)
	shared := make([]Entry[*storage.Tuple], segments*segLen)
	tuples := testTuples(t, "conc", 4)
	rng := rand.New(rand.NewSource(9))
	for i := range shared {
		shared[i] = Entry[*storage.Tuple]{K: rng.Uint64(), P: tuples[i%len(tuples)]}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := GetTupleSorter()
			defer PutTupleSorter(s)
			for {
				seg := int(next.Add(1)) - 1
				if seg >= segments {
					return
				}
				s.Sort(shared[seg*segLen:(seg+1)*segLen], nil, nil)
			}
		}()
	}
	wg.Wait()
	for seg := 0; seg < segments; seg++ {
		e := shared[seg*segLen : (seg+1)*segLen]
		for i := 1; i < len(e); i++ {
			if e[i-1].K > e[i].K {
				t.Fatalf("segment %d not sorted at %d", seg, i)
			}
		}
	}
}
