package sortkey

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/storage"
)

// FuzzAppendOrder fuzzes the package invariant:
//
//	sign(bytes.Compare(Append(nil,a), Append(nil,b))) == sign(storage.Compare(a,b))
//
// over every same-type (or null) pair the comparator accepts, plus the
// Prefix contract (prefixes never invert the order; decisive equal
// prefixes imply equal values) and the composite-key concatenation
// property on two-column keys. The seed corpus pins the documented
// edges: NaN bit patterns, signed zeros, MinInt64, empty and prefix
// strings, embedded zero bytes, and nulls.
func FuzzAppendOrder(f *testing.F) {
	// typ selects the column type; nulls&1 / nulls&2 null out a / b.
	// (ia, fa, sa) and (ib, fb, sb) carry the candidate payloads for
	// whichever type is selected.
	f.Add(uint8(0), int64(math.MinInt64), int64(0), uint64(0), uint64(0), "", "", uint8(0))
	f.Add(uint8(0), int64(-1), int64(1), uint64(0), uint64(0), "", "", uint8(1))
	f.Add(uint8(1), int64(0), int64(0), math.Float64bits(math.NaN()), math.Float64bits(0), "", "", uint8(0))
	f.Add(uint8(1), int64(0), int64(0), uint64(0x7FF0000000000001), uint64(0xFFF8000000000000), "", "", uint8(0)) // two NaN payloads
	f.Add(uint8(1), int64(0), int64(0), math.Float64bits(math.Copysign(0, -1)), math.Float64bits(0), "", "", uint8(0))
	f.Add(uint8(1), int64(0), int64(0), math.Float64bits(math.Inf(1)), math.Float64bits(math.Inf(-1)), "", "", uint8(2))
	f.Add(uint8(2), int64(0), int64(0), uint64(0), uint64(0), "", "a", uint8(0))
	f.Add(uint8(2), int64(0), int64(0), uint64(0), uint64(0), "a", "a\x00", uint8(0))
	f.Add(uint8(2), int64(0), int64(0), uint64(0), uint64(0), "a\x00b", "a\x01", uint8(0))
	f.Add(uint8(2), int64(0), int64(0), uint64(0), uint64(0), "abcdefgh", "abcdefghi", uint8(0))
	f.Add(uint8(2), int64(0), int64(0), uint64(0), uint64(0), "\x00\xff", "\x00\x01", uint8(3))
	f.Add(uint8(3), int64(0), int64(1), uint64(0), uint64(0), "", "", uint8(0))
	f.Add(uint8(4), int64(0), int64(2), uint64(0), uint64(0), "", "", uint8(1))

	refs := fuzzTuples()

	f.Fuzz(func(t *testing.T, typ uint8, ia, ib int64, fa, fb uint64, sa, sb string, nulls uint8) {
		mk := func(null bool, i int64, fbits uint64, s string) storage.Value {
			if null {
				return storage.NullValue
			}
			switch typ % 5 {
			case 0:
				return storage.IntValue(i)
			case 1:
				return storage.FloatValue(math.Float64frombits(fbits))
			case 2:
				return storage.StringValue(s)
			case 3:
				return storage.BoolValue(i&1 == 1)
			default:
				return storage.RefValue(refs[int(uint64(i)%uint64(len(refs)))])
			}
		}
		a := mk(nulls&1 != 0, ia, fa, sa)
		b := mk(nulls&2 != 0, ib, fb, sb)

		want := sign(storage.Compare(a, b))
		ea := Append(nil, a)
		eb := Append(nil, b)
		if got := sign(bytes.Compare(ea, eb)); got != want {
			t.Fatalf("Append order mismatch: %v vs %v: enc=%d compare=%d (enc %x vs %x)", a, b, got, want, ea, eb)
		}

		ka, da := Prefix(a)
		kb, db := Prefix(b)
		if ka < kb && want >= 0 {
			t.Fatalf("prefix inverted: %v k=%x < %v k=%x but compare=%d", a, ka, b, kb, want)
		}
		if ka > kb && want <= 0 {
			t.Fatalf("prefix inverted: %v k=%x > %v k=%x but compare=%d", a, ka, b, kb, want)
		}
		if da && db && ka == kb && want != 0 {
			t.Fatalf("decisive equal prefixes but compare=%d: %v vs %v", want, a, b)
		}

		// Composite keys: [a, x] vs [b, y] where the second column is a
		// same-typed pair, must order by (first, second) lexicographically.
		x := storage.IntValue(ia)
		y := storage.IntValue(ib)
		wantK := want
		if wantK == 0 {
			wantK = sign(storage.Compare(x, y))
		}
		ca := AppendKey(nil, []storage.Value{a, x})
		cb := AppendKey(nil, []storage.Value{b, y})
		if got := sign(bytes.Compare(ca, cb)); got != wantK {
			t.Fatalf("composite order mismatch: [%v %v] vs [%v %v]: enc=%d want=%d", a, x, b, y, got, wantK)
		}
	})
}

func fuzzTuples() []*storage.Tuple {
	schema, err := storage.NewSchema(storage.FieldDef{Name: "v", Type: storage.Int})
	if err != nil {
		panic(err)
	}
	rel, err := storage.NewRelation("fuzzref", schema, storage.Config{}, storage.NewIDGen())
	if err != nil {
		panic(err)
	}
	tuples := make([]*storage.Tuple, 5)
	for i := range tuples {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(int64(i))})
		if err != nil {
			panic(err)
		}
		tuples[i] = tp
	}
	return tuples
}
