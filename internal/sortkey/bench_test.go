package sortkey

import (
	"math/rand"
	"testing"

	"repro/internal/sortutil"
	"repro/internal/storage"
)

// The microbenchmark pair behind the PR's headline: the comparator
// quicksort on boxed Values (the §3.1 substrate every sort-based
// operator used to run on) against the normalized-key radix kernel on
// the same data. Allocations are the hard regression signal — the warm
// radix path must stay at zero — and the ns/op ratio is the crossover
// evidence.

func benchValues(n int) []storage.Value {
	rng := rand.New(rand.NewSource(42))
	vals := make([]storage.Value, n)
	for i := range vals {
		vals[i] = storage.IntValue(rng.Int63() - rng.Int63())
	}
	return vals
}

// BenchmarkComparatorSort1M is the baseline: sortutil's Hoare quicksort
// calling storage.Compare through a function value, one indirect call
// per comparison.
func BenchmarkComparatorSort1M(b *testing.B) {
	const n = 1 << 20
	master := benchValues(n)
	work := make([]storage.Value, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, master)
		sortutil.Sort(work, storage.Compare)
	}
}

// BenchmarkRadixKeySort1M sorts the same keys through the normalized-
// key kernel: one Prefix per value, then MSD radix scatter.
func BenchmarkRadixKeySort1M(b *testing.B) {
	const n = 1 << 20
	master := benchValues(n)
	s := NewSorter[int32]()
	ent := make([]Entry[int32], n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range master {
			k, _ := Prefix(master[j])
			ent[j] = Entry[int32]{K: k, P: int32(j)}
		}
		s.Sort(ent, nil, nil)
	}
}

// BenchmarkRadixKernel1M isolates the kernel (keys pre-encoded): the
// pure scatter + short-run cost, excluding encoding.
func BenchmarkRadixKernel1M(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(42))
	master := make([]Entry[int32], n)
	for i := range master {
		master[i] = Entry[int32]{K: rng.Uint64(), P: int32(i)}
	}
	work := make([]Entry[int32], n)
	s := NewSorter[int32]()
	copy(work, master)
	s.Sort(work, nil, nil) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, master)
		s.Sort(work, nil, nil)
	}
}
