package sortkey

import (
	"sync"

	"repro/internal/meter"
	"repro/internal/storage"
)

// The kernel sorts (prefix, payload) pairs: a fixed-width uint64
// normalized-key prefix plus an opaque payload (a tuple pointer, or a row
// ordinal). MSD radix sort partitions on the top prefix byte, scattering
// through 64-entry write-combining buffers exactly like the radix hash
// join's partitioner — the scatter writes land as full-cache-line block
// copies instead of 256-way random single-element stores. Short runs and
// exhausted prefixes fall back to a three-way quicksort / insertion sort
// on (prefix, tie-break) order, so skew and duplicates degrade gracefully
// instead of recursing into confetti.

const (
	// WCBlock is the write-combining buffer depth per byte bucket —
	// 64 × 16-byte entries = two pages of L1 per bucket, matching the
	// radix hash partitioner's geometry.
	WCBlock = 64

	// DefaultRunCutoff is the run length below which MSD recursion stops
	// and the comparator sort takes over: at ≤64 entries the whole run is
	// L1-resident and a branchy insertion/quicksort beats another 256-way
	// scatter pass.
	DefaultRunCutoff = 64

	// insertionCutoff is the comparator sort's insertion-sort threshold.
	insertionCutoff = 12

	topShift = 56 // first (most significant) byte of the uint64 prefix
)

// Entry is one sort element: K is the order-preserving prefix, P the
// payload carried along (tuple pointer or row ordinal).
type Entry[P any] struct {
	K uint64
	P P
}

// Tie breaks ties between payloads whose prefixes are equal. A nil Tie
// declares the prefixes decisive: equal K means equal sort key.
type Tie[P any] func(a, b P) int

// Sorter holds the kernel's scratch: the write-combining buffers, the
// scatter destination, and a staging slice callers can borrow for their
// entries. Reusing one Sorter across sorts (via the pools below) makes
// the steady-state hot path allocation-free.
type Sorter[P any] struct {
	wc  []Entry[P] // 256 × WCBlock write-combining staging
	buf []Entry[P] // scatter destination, len ≥ current input
	ent []Entry[P] // caller staging (Entries)
	cur [256]int   // next write offset per bucket during a scatter
	wcn [256]int   // fill level per write-combining block
}

// NewSorter returns a fresh kernel with its write-combining buffers
// allocated. Prefer the pools for steady-state use.
func NewSorter[P any]() *Sorter[P] {
	return &Sorter[P]{wc: make([]Entry[P], 256*WCBlock)}
}

// Entries returns a staging slice of length n for the caller to fill,
// reusing the sorter's scratch when it is large enough.
func (s *Sorter[P]) Entries(n int) []Entry[P] {
	if cap(s.ent) < n {
		s.ent = make([]Entry[P], n)
	}
	s.ent = s.ent[:n]
	return s.ent
}

// Sort orders e by (K, tie). With a nil tie, equal prefixes are treated
// as equal keys (the caller promised decisive prefixes). Counters: one
// SortPasses per radix scatter executed, one SortRuns per comparator-
// sorted run, Comparisons for comparator work, DataMoves for scatter
// traffic. All metering is nil-safe.
func (s *Sorter[P]) Sort(e []Entry[P], tie Tie[P], m *meter.Counters) {
	if len(e) < 2 {
		return
	}
	if cap(s.buf) < len(e) {
		s.buf = make([]Entry[P], len(e))
	}
	if s.wc == nil {
		s.wc = make([]Entry[P], 256*WCBlock)
	}
	s.msd(e, topShift, tie, m)
}

// msd is one MSD radix level: histogram the byte at shift, scatter into
// per-bucket regions through the write-combining blocks, then recurse
// into each bucket at the next byte. The histogram lives on the frame —
// recursion reuses cur/wcn/wc/buf, which are dead between scatters, but
// the bucket boundaries must survive the recursive calls.
func (s *Sorter[P]) msd(e []Entry[P], shift int, tie Tie[P], m *meter.Counters) {
	for {
		n := len(e)
		if n <= DefaultRunCutoff {
			s.runSort(e, tie, m)
			m.AddSortRun(1)
			return
		}
		if shift < 0 {
			// Prefix bytes exhausted: every K in the run is equal. With
			// decisive prefixes the run is already sorted; otherwise the
			// tie comparator finishes the job.
			if tie != nil {
				s.quickTie(e, tie, m)
				m.AddSortRun(1)
			}
			return
		}

		var hist [256]int
		for i := range e {
			hist[byte(e[i].K>>shift)]++
		}
		if hist[byte(e[0].K>>shift)] == n {
			// One bucket holds everything (constant byte — common for
			// small ints whose high bytes are all 0x80 00 00…): skip the
			// scatter and look at the next byte directly.
			shift -= 8
			continue
		}

		off := 0
		for b := 0; b < 256; b++ {
			s.cur[b] = off
			off += hist[b]
		}
		buf := s.buf[:n]
		wc := s.wc
		for i := range e {
			b := int(byte(e[i].K >> shift))
			w := s.wcn[b]
			wc[b*WCBlock+w] = e[i]
			w++
			if w == WCBlock {
				copy(buf[s.cur[b]:], wc[b*WCBlock:b*WCBlock+WCBlock])
				s.cur[b] += WCBlock
				w = 0
			}
			s.wcn[b] = w
		}
		for b := 0; b < 256; b++ {
			if w := s.wcn[b]; w > 0 {
				copy(buf[s.cur[b]:], wc[b*WCBlock:b*WCBlock+w])
				s.cur[b] += w
				s.wcn[b] = 0
			}
		}
		copy(e, buf)
		m.AddSortPass(1)
		m.AddMove(int64(2 * n)) // scatter out + copy back

		shift -= 8
		start := 0
		for b := 0; b < 256; b++ {
			if c := hist[b]; c > 1 {
				s.msd(e[start:start+c], shift, tie, m)
				start += c
			} else {
				start += c
			}
		}
		return
	}
}

// cmp orders two entries by (K, tie), metering one comparison.
func (s *Sorter[P]) cmp(a, b Entry[P], tie Tie[P], m *meter.Counters) int {
	m.AddCompare(1)
	if a.K < b.K {
		return -1
	}
	if a.K > b.K {
		return 1
	}
	if tie == nil {
		return 0
	}
	return tie(a.P, b.P)
}

// runSort sorts a short run: insertion sort outright when tiny, else the
// three-way quicksort.
func (s *Sorter[P]) runSort(e []Entry[P], tie Tie[P], m *meter.Counters) {
	if len(e) <= insertionCutoff {
		s.insertion(e, tie, m)
		return
	}
	s.quick(e, tie, m)
}

// quick is a three-way (Dutch-flag) quicksort on (K, tie): equal keys
// collapse into the middle partition in one pass, so massive duplicate
// runs — the case that drives classic quicksort quadratic — cost one
// linear partition. Recurses into the smaller side, loops on the larger.
func (s *Sorter[P]) quick(e []Entry[P], tie Tie[P], m *meter.Counters) {
	for len(e) > insertionCutoff {
		n := len(e)
		p := s.median3(e, tie, m)
		lt, i, gt := 0, 0, n
		for i < gt {
			switch c := s.cmp(e[i], p, tie, m); {
			case c < 0:
				e[lt], e[i] = e[i], e[lt]
				lt++
				i++
			case c > 0:
				gt--
				e[gt], e[i] = e[i], e[gt]
			default:
				i++
			}
		}
		if lt < n-gt {
			s.quick(e[:lt], tie, m)
			e = e[gt:]
		} else {
			s.quick(e[gt:], tie, m)
			e = e[:lt]
		}
	}
	s.insertion(e, tie, m)
}

// median3 picks the median of first/middle/last as the pivot value.
func (s *Sorter[P]) median3(e []Entry[P], tie Tie[P], m *meter.Counters) Entry[P] {
	a, b, c := e[0], e[len(e)/2], e[len(e)-1]
	if s.cmp(b, a, tie, m) < 0 {
		a, b = b, a
	}
	if s.cmp(c, b, tie, m) < 0 {
		b = c
		if s.cmp(b, a, tie, m) < 0 {
			b = a
		}
	}
	return b
}

// insertion is the short-run finisher.
func (s *Sorter[P]) insertion(e []Entry[P], tie Tie[P], m *meter.Counters) {
	for i := 1; i < len(e); i++ {
		v := e[i]
		j := i - 1
		for j >= 0 && s.cmp(e[j], v, tie, m) > 0 {
			e[j+1] = e[j]
			j--
		}
		e[j+1] = v
	}
}

// quickTie sorts a run of equal prefixes by tie order alone.
func (s *Sorter[P]) quickTie(e []Entry[P], tie Tie[P], m *meter.Counters) {
	// Reuse the generic paths with a shift-exhausted view: K is equal
	// across the run, so cmp degenerates to the tie comparator.
	s.runSort(e, tie, m)
}

// Pools. Payload-typed sorters are recycled like the radix partitioner's
// scratch; Put clears pointer-holding buffers so recycled scratch does
// not retain tuples.

var tupleSorterPool = sync.Pool{
	New: func() any { return NewSorter[*storage.Tuple]() },
}

// GetTupleSorter borrows a pooled sorter for tuple-pointer payloads.
func GetTupleSorter() *Sorter[*storage.Tuple] {
	return tupleSorterPool.Get().(*Sorter[*storage.Tuple])
}

// PutTupleSorter returns a sorter to the pool, clearing every buffer that
// holds tuple pointers so the pool does not pin tuple memory.
func PutTupleSorter(s *Sorter[*storage.Tuple]) {
	clearEntries(s.wc)
	clearEntries(s.buf)
	clearEntries(s.ent)
	tupleSorterPool.Put(s)
}

var rowSorterPool = sync.Pool{
	New: func() any { return NewSorter[int32]() },
}

// GetRowSorter borrows a pooled sorter for row-ordinal payloads (the
// sort-scan projection sorts row numbers, not pointers).
func GetRowSorter() *Sorter[int32] {
	return rowSorterPool.Get().(*Sorter[int32])
}

// PutRowSorter returns a row-ordinal sorter to the pool. Ordinals hold no
// pointers, so nothing needs clearing.
func PutRowSorter(s *Sorter[int32]) {
	rowSorterPool.Put(s)
}

func clearEntries[P any](e []Entry[P]) {
	var zero Entry[P]
	for i := range e {
		e[i] = zero
	}
}
