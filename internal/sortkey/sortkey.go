// Package sortkey implements order-preserving binary sort keys and a
// cache-conscious sort kernel over them.
//
// The paper's sort-based operators (§3.1 Sort Scan projection, §3.3 Sort
// Merge join) drive a comparator quicksort: every comparison is an
// indirect call into storage.Compare on boxed Values. That was the right
// shape for a 1986 VAX; on a modern memory hierarchy the comparator's
// unpredictable branches and pointer chases dominate. The normalized-key
// technique — encode each value into bytes whose memcmp order equals the
// value order, then sort fixed-width prefixes of those bytes with an MSD
// radix sort — replaces per-comparison indirect calls with sequential
// byte scatter, the same trade the radix hash join made for probes.
//
// The invariant the whole package rests on:
//
//	bytes.Compare(Append(nil, a), Append(nil, b)) == sign(storage.Compare(a, b))
//
// for every pair (a, b) that storage.Compare accepts (same type, or
// either null — cross-type comparisons panic there and are meaningless
// here). A fuzz test checks the property over the full value domain,
// including NaN floats, signed zeros, empty/prefix strings, and strings
// with embedded zero bytes.
package sortkey

import (
	"encoding/binary"
	"math"

	"repro/internal/storage"
)

// PrefixBytes is the fixed key-prefix width the sort kernel orders by:
// one uint64 per entry, the cache-friendly unit the MSD radix sort
// scatters on.
const PrefixBytes = 8

// Type tags. Each encoded key starts with one tag byte; tags are ordered
// so that null sorts before every non-null value, matching
// storage.Compare's null-first rule. Values of different non-null types
// never meet in a comparison (storage.Compare panics on mixed types), so
// the relative order of the non-null tags is arbitrary — they only need
// to be distinct so decoding is unambiguous and equal keys imply equal
// tags.
const (
	tagNull  = 0x00
	tagInt   = 0x01
	tagFloat = 0x02
	tagStr   = 0x03
	tagBool  = 0x04
	tagRef   = 0x05
)

// String escape bytes: a zero byte inside the string becomes
// {0x00, 0xFF}; the terminator is {0x00, 0x01}. Any real continuation
// byte after 0x00 is 0xFF > 0x01, so a string that continues past a zero
// byte sorts after the string that ends there — exactly the semantics of
// bytes.Compare on the raw strings, where a prefix sorts first.
const (
	strEscape     = 0xFF
	strTerminator = 0x01
)

// Append appends the order-preserving encoding of v to dst and returns
// the extended slice. Fixed-width types encode as tag + big-endian
// payload; strings are zero-escaped and zero-terminated so encodings are
// self-delimiting inside composite keys.
func Append(dst []byte, v storage.Value) []byte {
	switch v.Type() {
	case storage.Null:
		return append(dst, tagNull)
	case storage.Int:
		dst = append(dst, tagInt)
		return binary.BigEndian.AppendUint64(dst, normInt(v.Int()))
	case storage.Float:
		dst = append(dst, tagFloat)
		return binary.BigEndian.AppendUint64(dst, normFloat(v.Float()))
	case storage.Str:
		dst = append(dst, tagStr)
		s := v.Str()
		for i := 0; i < len(s); i++ {
			b := s[i]
			if b == 0x00 {
				dst = append(dst, 0x00, strEscape)
			} else {
				dst = append(dst, b)
			}
		}
		return append(dst, 0x00, strTerminator)
	case storage.Bool:
		if v.Bool() {
			return append(dst, tagBool, 1)
		}
		return append(dst, tagBool, 0)
	case storage.Ref:
		dst = append(dst, tagRef)
		return binary.BigEndian.AppendUint64(dst, v.Ref().ID())
	default:
		panic("sortkey: unknown value type")
	}
}

// AppendKey appends the composite encoding of key to dst: the
// concatenation of each entry's encoding. Because every entry's encoding
// is self-delimiting (fixed width, or zero-terminated for strings), the
// concatenation preserves the lexicographic entry-by-entry order that
// exec.keysCompare implements with storage.Compare.
func AppendKey(dst []byte, key []storage.Value) []byte {
	for _, v := range key {
		dst = Append(dst, v)
	}
	return dst
}

// normInt maps an int64 onto a uint64 whose unsigned order equals the
// signed order: flip the sign bit.
func normInt(x int64) uint64 {
	return uint64(x) ^ (1 << 63)
}

// normFloat maps a float64 onto a uint64 whose unsigned order equals
// storage.Compare's total order on floats: -0 == +0, NaN sorts after
// every number and equal to itself.
//
// The classic trick: for non-negative floats the IEEE bit pattern is
// already ordered, so set the sign bit to lift them above the negatives;
// for negative floats the bit pattern is reverse-ordered, so flip all
// bits. Canonicalizing -0 to +0 and every NaN to the positive quiet NaN
// pattern (0x7FF8…, which maps above +Inf) matches cmpFloat exactly.
func normFloat(f float64) uint64 {
	if f != f { // NaN: canonical pattern sorts after +Inf, equal to itself
		return math.Float64bits(math.NaN()) | (1 << 63)
	}
	if f == 0 { // -0 and +0 encode identically
		return 1 << 63
	}
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | (1 << 63)
}

// Prefix returns the fixed-width sort prefix for a single-column key: a
// uint64 whose unsigned order respects storage.Compare order, and a flag
// reporting whether the prefix alone decides the ordering.
//
// Unlike Append, Prefix carries no tag byte — the callers sort one
// column whose non-null values share a type, so only null needs a
// reserved slot: null maps to 0 and every non-null value maps above it
// (ints/floats have the offset/sign bit set; bools map to 1 and 2;
// string prefixes could be all-zero, and Refs hold IDs that the
// allocator starts at 1, so those two report non-decisive at k==0 and
// fall back to the comparator).
//
// When decisive is false for any entry in a batch, the kernel must
// tie-break equal-prefix runs with the real comparator. The rule callers
// rely on: if both a and b are decisive and Prefix(a) == Prefix(b), then
// storage.Compare(a, b) == 0; and for any a, b of one column,
// Prefix(a) < Prefix(b) implies storage.Compare(a, b) < 0.
func Prefix(v storage.Value) (k uint64, decisive bool) {
	switch v.Type() {
	case storage.Null:
		// Nulls sort first. 0 is below every non-null prefix; not
		// decisive because a non-decisive string/ref could also map to 0.
		return 0, false
	case storage.Int:
		// normInt(math.MinInt64) is 0, colliding with null's slot —
		// report non-decisive there so the comparator separates them.
		k = normInt(v.Int())
		return k, k != 0
	case storage.Float:
		// normFloat is ≥ 2^63 ≫ 0 for every float, including -Inf
		// (bits 0xFFF0… → ^bits = 0x000F… > 0). Always decisive.
		return normFloat(v.Float()), true
	case storage.Str:
		s := v.Str()
		n := len(s)
		decisive = n < PrefixBytes
		if n > PrefixBytes {
			n = PrefixBytes
		}
		for i := 0; i < n; i++ {
			b := s[i]
			if b == 0x00 {
				// A zero content byte is indistinguishable from padding
				// ("a" vs "a\x00"); let the comparator decide.
				decisive = false
			}
			k |= uint64(b) << (56 - 8*i)
		}
		return k, decisive
	case storage.Bool:
		if v.Bool() {
			return 2, true
		}
		return 1, true
	case storage.Ref:
		// Refs compare by resolved tuple ID. IDs start at 1, but a zero
		// ID (synthetic tuple) would collide with null.
		k = v.Ref().ID()
		return k, k != 0
	default:
		panic("sortkey: unknown value type")
	}
}

// PrefixOfBytes packs the first PrefixBytes bytes of an encoded key into
// the kernel's uint64 prefix, zero-padded on the right. Because enc is
// an order-preserving byte string, the packed prefixes order correctly;
// they are never decisive on their own (two long keys can share a
// prefix), so composite-key callers always supply a tie-break
// comparator.
func PrefixOfBytes(enc []byte) uint64 {
	n := len(enc)
	if n >= PrefixBytes {
		return binary.BigEndian.Uint64(enc)
	}
	var k uint64
	for i := 0; i < n; i++ {
		k |= uint64(enc[i]) << (56 - 8*i)
	}
	return k
}
