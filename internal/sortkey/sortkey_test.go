package sortkey

import (
	"bytes"
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/meter"
	"repro/internal/storage"
)

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// encCompare compares two values through their encodings.
func encCompare(a, b storage.Value) int {
	return sign(bytes.Compare(Append(nil, a), Append(nil, b)))
}

// TestAppendOrderGrid checks the order-preservation property over a
// dense grid of same-type value pairs, including every documented edge:
// NaN, signed zeros, infinities, MinInt64, empty/prefix strings, strings
// with embedded zero bytes, and nulls against everything.
func TestAppendOrderGrid(t *testing.T) {
	ints := []int64{math.MinInt64, math.MinInt64 + 1, -1 << 40, -256, -2, -1, 0, 1, 2, 255, 256, 1 << 40, math.MaxInt64 - 1, math.MaxInt64}
	floats := []float64{math.Inf(-1), -math.MaxFloat64, -1e10, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1, 1e10, math.MaxFloat64, math.Inf(1), math.NaN()}
	strs := []string{"", "\x00", "\x00\x01", "\x00\xff", "a", "a\x00", "a\x00b", "a\x01", "ab", "abc", "abcdefgh", "abcdefghi", "b", "ÿ", "\xff\xff"}
	bools := []bool{false, true}

	var groups [][]storage.Value
	add := func(vs []storage.Value) { groups = append(groups, vs) }
	g := []storage.Value{storage.NullValue}
	for _, v := range ints {
		g = append(g, storage.IntValue(v))
	}
	add(g)
	g = []storage.Value{storage.NullValue}
	for _, v := range floats {
		g = append(g, storage.FloatValue(v))
	}
	add(g)
	g = []storage.Value{storage.NullValue}
	for _, v := range strs {
		g = append(g, storage.StringValue(v))
	}
	add(g)
	g = []storage.Value{storage.NullValue}
	for _, v := range bools {
		g = append(g, storage.BoolValue(v))
	}
	add(g)

	for _, vs := range groups {
		for _, a := range vs {
			for _, b := range vs {
				want := sign(storage.Compare(a, b))
				if got := encCompare(a, b); got != want {
					t.Fatalf("Append order mismatch: %v vs %v: enc=%d compare=%d", a, b, got, want)
				}
				checkPrefix(t, a, b)
			}
		}
	}
}

// checkPrefix asserts the Prefix contract: prefixes never invert the
// order, and two decisive equal prefixes mean equal values.
func checkPrefix(t *testing.T, a, b storage.Value) {
	t.Helper()
	ka, da := Prefix(a)
	kb, db := Prefix(b)
	c := storage.Compare(a, b)
	if ka < kb && c >= 0 {
		t.Fatalf("prefix order inverted: %v (k=%x) < %v (k=%x) but compare=%d", a, ka, b, kb, c)
	}
	if ka > kb && c <= 0 {
		t.Fatalf("prefix order inverted: %v (k=%x) > %v (k=%x) but compare=%d", a, ka, b, kb, c)
	}
	if da && db && ka == kb && c != 0 {
		t.Fatalf("decisive prefixes equal but values differ: %v vs %v (k=%x)", a, b, ka)
	}
}

// TestRefEncoding covers the Ref type: order by resolved tuple ID, with
// the prefix contract holding against null.
func TestRefEncoding(t *testing.T) {
	tuples := testTuples(t, "r", 3)
	vals := []storage.Value{storage.NullValue}
	for _, tp := range tuples {
		vals = append(vals, storage.RefValue(tp))
	}
	for _, a := range vals {
		for _, b := range vals {
			want := sign(storage.Compare(a, b))
			if got := encCompare(a, b); got != want {
				t.Fatalf("ref Append order mismatch: %v vs %v: enc=%d compare=%d", a, b, got, want)
			}
			checkPrefix(t, a, b)
		}
	}
}

func testTuples(t *testing.T, name string, n int) []*storage.Tuple {
	t.Helper()
	schema, err := storage.NewSchema(storage.FieldDef{Name: "v", Type: storage.Int})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := storage.NewRelation(name, schema, storage.Config{}, storage.NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]*storage.Tuple, n)
	for i := 0; i < n; i++ {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		tuples[i] = tp
	}
	return tuples
}

// TestAppendKeyComposite checks that concatenated encodings order
// composite keys lexicographically, with the string terminator keeping
// entries self-delimiting ("ab"+"c" must not equal "a"+"bc").
func TestAppendKeyComposite(t *testing.T) {
	keys := [][]storage.Value{
		{storage.NullValue, storage.IntValue(5)},
		{storage.StringValue(""), storage.IntValue(9)},
		{storage.StringValue("a"), storage.IntValue(2)},
		{storage.StringValue("a"), storage.IntValue(3)},
		{storage.StringValue("a\x00"), storage.IntValue(0)},
		{storage.StringValue("ab"), storage.IntValue(-1)},
		{storage.StringValue("ab"), storage.NullValue},
		{storage.StringValue("b"), storage.IntValue(1)},
	}
	cmpKeys := func(a, b []storage.Value) int {
		for i := range a {
			// Column types must match (or be null) for storage.Compare;
			// the grid above keeps each column single-typed.
			if ta, tb := a[i].Type(), b[i].Type(); ta != tb && ta != storage.Null && tb != storage.Null {
				return 0 // skip incomparable pairs
			}
			if c := storage.Compare(a[i], b[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	for _, a := range keys {
		for _, b := range keys {
			if a[0].Type() != b[0].Type() && a[0].Type() != storage.Null && b[0].Type() != storage.Null {
				continue
			}
			want := sign(cmpKeys(a, b))
			got := sign(bytes.Compare(AppendKey(nil, a), AppendKey(nil, b)))
			if got != want {
				t.Fatalf("composite order mismatch: %v vs %v: enc=%d compare=%d", a, b, got, want)
			}
		}
	}
	// The self-delimiting property specifically.
	k1 := AppendKey(nil, []storage.Value{storage.StringValue("ab"), storage.StringValue("c")})
	k2 := AppendKey(nil, []storage.Value{storage.StringValue("a"), storage.StringValue("bc")})
	if bytes.Equal(k1, k2) {
		t.Fatal("composite encodings of (ab,c) and (a,bc) must differ")
	}
}

// keysOf converts int64s to prefix entries with their index as payload.
func intEntries(vals []int64) []Entry[int32] {
	ent := make([]Entry[int32], len(vals))
	for i, v := range vals {
		k, dec := Prefix(storage.IntValue(v))
		if !dec && v != math.MinInt64 {
			panic("int prefixes should be decisive")
		}
		ent[i] = Entry[int32]{K: k, P: int32(i)}
	}
	return ent
}

func checkSortedByK(t *testing.T, ent []Entry[int32]) {
	t.Helper()
	for i := 1; i < len(ent); i++ {
		if ent[i-1].K > ent[i].K {
			t.Fatalf("not sorted at %d: %x > %x", i, ent[i-1].K, ent[i].K)
		}
	}
}

// TestSortShapes drives the kernel over the shapes that exercise every
// path: random (scatter + runs), all-equal (single-bucket skip), already
// sorted, reversed, tiny (insertion only), and sizes straddling the run
// cutoff.
func TestSortShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string][]int64{
		"empty":    {},
		"one":      {42},
		"two":      {2, 1},
		"tiny":     {5, 3, 9, 1, 2, 8, 0, -4},
		"cutoff":   make([]int64, DefaultRunCutoff+1),
		"random":   make([]int64, 100000),
		"sorted":   make([]int64, 10000),
		"reversed": make([]int64, 10000),
		"allequal": make([]int64, 50000),
		"lowcard":  make([]int64, 80000),
		"negmix":   make([]int64, 30000),
	}
	for i := range shapes["cutoff"] {
		shapes["cutoff"][i] = int64(rng.Intn(1000))
	}
	for i := range shapes["random"] {
		shapes["random"][i] = rng.Int63() - rng.Int63()
	}
	for i := range shapes["sorted"] {
		shapes["sorted"][i] = int64(i)
	}
	for i := range shapes["reversed"] {
		shapes["reversed"][i] = int64(len(shapes["reversed"]) - i)
	}
	for i := range shapes["allequal"] {
		shapes["allequal"][i] = 77
	}
	for i := range shapes["lowcard"] {
		shapes["lowcard"][i] = int64(rng.Intn(8))
	}
	for i := range shapes["negmix"] {
		shapes["negmix"][i] = int64(rng.Intn(2001) - 1000)
	}

	for name, vals := range shapes {
		t.Run(name, func(t *testing.T) {
			var m meter.Counters
			s := NewSorter[int32]()
			ent := intEntries(vals)
			s.Sort(ent, nil, &m)
			checkSortedByK(t, ent)
			// The multiset of keys survived.
			want := slices.Clone(vals)
			slices.Sort(want)
			for i := range ent {
				k, _ := Prefix(storage.IntValue(want[i]))
				if ent[i].K != k {
					t.Fatalf("key multiset diverged at %d", i)
				}
			}
			// All-equal decisive keys are detected as a single bucket at
			// every level and legitimately cost nothing; every other
			// multi-element shape must meter passes or runs.
			if name != "allequal" && len(vals) > 1 && m.SortPasses == 0 && m.SortRuns == 0 {
				t.Fatal("sort did no metered work")
			}
		})
	}
}

// TestSortTieBreak forces the comparator fallback: long strings sharing
// 8-byte prefixes must come out in full comparator order.
func TestSortTieBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	strs := make([]string, 20000)
	prefixes := []string{"aaaaaaaa", "aaaaaaab", "prefix00"}
	for i := range strs {
		strs[i] = prefixes[rng.Intn(len(prefixes))] + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
	}
	ent := make([]Entry[int32], len(strs))
	allDecisive := true
	for i, v := range strs {
		k, dec := Prefix(storage.StringValue(v))
		if !dec {
			allDecisive = false
		}
		ent[i] = Entry[int32]{K: k, P: int32(i)}
	}
	if allDecisive {
		t.Fatal("long strings should not be prefix-decisive")
	}
	var m meter.Counters
	s := NewSorter[int32]()
	s.Sort(ent, func(a, b int32) int {
		switch {
		case strs[a] < strs[b]:
			return -1
		case strs[a] > strs[b]:
			return 1
		default:
			return 0
		}
	}, &m)
	for i := 1; i < len(ent); i++ {
		if strs[ent[i-1].P] > strs[ent[i].P] {
			t.Fatalf("tie-broken order wrong at %d: %q > %q", i, strs[ent[i-1].P], strs[ent[i].P])
		}
	}
	if m.SortRuns == 0 {
		t.Fatal("tie-break sort reported no comparator runs")
	}
}

// TestSortNullAndMinInt covers the k=0 collision: nulls and MinInt64
// share the zero prefix and must separate through the comparator.
func TestSortNullAndMinInt(t *testing.T) {
	vals := []storage.Value{
		storage.IntValue(math.MinInt64), storage.NullValue, storage.IntValue(1),
		storage.NullValue, storage.IntValue(math.MinInt64), storage.IntValue(-7),
	}
	// Pad with noise so the kernel takes the radix path at least once.
	for i := 0; i < 200; i++ {
		vals = append(vals, storage.IntValue(int64(i*37-3000)))
	}
	ent := make([]Entry[int32], len(vals))
	allDecisive := true
	for i, v := range vals {
		k, dec := Prefix(v)
		if !dec {
			allDecisive = false
		}
		ent[i] = Entry[int32]{K: k, P: int32(i)}
	}
	if allDecisive {
		t.Fatal("null/MinInt64 prefixes must be non-decisive")
	}
	s := NewSorter[int32]()
	s.Sort(ent, func(a, b int32) int { return storage.Compare(vals[a], vals[b]) }, nil)
	for i := 1; i < len(ent); i++ {
		if storage.Compare(vals[ent[i-1].P], vals[ent[i].P]) > 0 {
			t.Fatalf("order wrong at %d", i)
		}
	}
	// Nulls first.
	if vals[ent[0].P].Type() != storage.Null || vals[ent[1].P].Type() != storage.Null {
		t.Fatal("nulls must sort first")
	}
}

// TestSorterReuse runs several different-sized sorts through one pooled
// sorter, verifying scratch reuse does not leak state between sorts.
func TestSorterReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := GetTupleSorter()
	defer PutTupleSorter(s)
	tp := testTuples(t, "reuse", 1)[0]
	for _, n := range []int{100, 70000, 10, 3000} {
		ent := s.Entries(n)
		for i := range ent {
			ent[i] = Entry[*storage.Tuple]{K: uint64(rng.Int63()), P: tp}
		}
		s.Sort(ent, nil, nil)
		for i := 1; i < len(ent); i++ {
			if ent[i-1].K > ent[i].K {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}
