// Package meter provides lightweight operation counters.
//
// Lehman and Carey validated their implementations by "recording and
// examining the number of comparisons, the amount of data movement, the
// number of hash function calls, and other miscellaneous operations"
// (§3.1). This package is the equivalent instrumentation: index structures
// and query operators increment a Counters value so tests can assert that
// an algorithm does exactly the work it is supposed to do — neither more
// nor less. Counters are plain integer fields; incrementing a nil *Counters
// is legal and free, which is the moral equivalent of the paper compiling
// the counters out for the timed runs.
//
// Concurrency contract: a plain Counters value is single-goroutine — the
// goroutine executing an operator owns its Counters exclusively for that
// operator's lifetime. Operators that can run under concurrent readers
// must either receive a private Counters per execution (the query layer
// does this) or roll results into a SharedCounters, the atomic sibling
// with the same Add* API, which the obs registry uses as its engine-wide
// §3.1 accumulator. The partition-parallel executor follows the same
// rule per worker: every worker accumulates into a private Counters,
// folds it into one SharedCounters when it finishes, and the operator
// adds the folded snapshot to the caller's Counters after all workers
// join — so a parallel operator reports its total §3.1 work exactly the
// way a serial one does.
package meter

import "fmt"

// Counters accumulates the operation counts the paper tracked, plus the
// cache-conscious extensions (batch handoffs and radix partitioning work)
// the modern operators report through the same channel.
type Counters struct {
	Comparisons  int64 // key/value comparisons
	DataMoves    int64 // element copies or shifts (slots moved)
	HashCalls    int64 // hash function evaluations
	NodesVisited int64 // index nodes touched
	Allocations  int64 // nodes or buckets allocated
	Rotations    int64 // tree rebalance rotations
	Batches      int64 // tuple-pointer blocks handed between operators
	RadixPasses  int64 // radix partitioning passes executed
	Partitions   int64 // radix partitions produced (fan-out total)
	SortPasses   int64 // radix-sort scatter passes executed
	SortRuns     int64 // comparator-sorted runs (small runs + tie-breaks)
	KeyBytes     int64 // normalized sort-key bytes encoded
	Groups       int64 // distinct groups produced by grouped aggregation
	AggProbes    int64 // agg-table probe steps (open-addressing slot visits)
	HeapPushes   int64 // bounded top-k heap insertions (sift operations)
}

// AddCompare records n comparisons. Safe on a nil receiver.
func (c *Counters) AddCompare(n int64) {
	if c != nil {
		c.Comparisons += n
	}
}

// AddMove records n element moves. Safe on a nil receiver.
func (c *Counters) AddMove(n int64) {
	if c != nil {
		c.DataMoves += n
	}
}

// AddHash records n hash-function calls. Safe on a nil receiver.
func (c *Counters) AddHash(n int64) {
	if c != nil {
		c.HashCalls += n
	}
}

// AddNode records n node visits. Safe on a nil receiver.
func (c *Counters) AddNode(n int64) {
	if c != nil {
		c.NodesVisited += n
	}
}

// AddAlloc records n structure allocations. Safe on a nil receiver.
func (c *Counters) AddAlloc(n int64) {
	if c != nil {
		c.Allocations += n
	}
}

// AddRotation records n rebalance rotations. Safe on a nil receiver.
func (c *Counters) AddRotation(n int64) {
	if c != nil {
		c.Rotations += n
	}
}

// AddBatch records n tuple-batch handoffs. Batch-at-a-time operators
// count one batch per block of tuple pointers moved between stages, so
// Batches/DataMoves exposes the amortization factor the batch layer buys.
// Safe on a nil receiver.
func (c *Counters) AddBatch(n int64) {
	if c != nil {
		c.Batches += n
	}
}

// AddRadixPass records n radix partitioning passes. Each pass streams
// every input entry through the write-combining scatter once, so
// RadixPasses×rows approximates the data movement the radix kernel adds
// in exchange for cache-resident build tables. Safe on a nil receiver.
func (c *Counters) AddRadixPass(n int64) {
	if c != nil {
		c.RadixPasses += n
	}
}

// AddPartition records n radix partitions produced. Safe on a nil
// receiver.
func (c *Counters) AddPartition(n int64) {
	if c != nil {
		c.Partitions += n
	}
}

// AddSortPass records n radix-sort scatter passes. Each pass streams one
// key range through the write-combining scatter once, so SortPasses×rows
// approximates the extra sequential data movement the normalized-key sort
// trades for the comparator calls it removes. Safe on a nil receiver.
func (c *Counters) AddSortPass(n int64) {
	if c != nil {
		c.SortPasses += n
	}
}

// AddSortRun records n comparator-sorted runs: short partitions the MSD
// radix sort hands to insertion/quicksort, plus equal-prefix runs that
// needed a comparator tie-break. Safe on a nil receiver.
func (c *Counters) AddSortRun(n int64) {
	if c != nil {
		c.SortRuns += n
	}
}

// AddKeyBytes records n bytes of normalized sort keys encoded. Safe on a
// nil receiver.
func (c *Counters) AddKeyBytes(n int64) {
	if c != nil {
		c.KeyBytes += n
	}
}

// AddGroup records n distinct groups produced by a grouped aggregation.
// Safe on a nil receiver.
func (c *Counters) AddGroup(n int64) {
	if c != nil {
		c.Groups += n
	}
}

// AddAggProbe records n open-addressing probe steps in an aggregation
// table: one per slot visited while locating a group, so AggProbes/rows
// exposes the table's effective load factor the way the paper's hash
// counts exposed chain length. Safe on a nil receiver.
func (c *Counters) AddAggProbe(n int64) {
	if c != nil {
		c.AggProbes += n
	}
}

// AddHeapPush records n bounded-heap insertions performed by a top-k
// operator: each is one sift through a k-element heap, so HeapPushes
// against rows-in exposes how much of the input survived the heap's
// threshold cutoff. Safe on a nil receiver.
func (c *Counters) AddHeapPush(n int64) {
	if c != nil {
		c.HeapPushes += n
	}
}

// Reset zeroes every counter. Safe on a nil receiver.
func (c *Counters) Reset() {
	if c != nil {
		*c = Counters{}
	}
}

// Add accumulates other into c. Safe on a nil receiver.
func (c *Counters) Add(other Counters) {
	if c == nil {
		return
	}
	c.Comparisons += other.Comparisons
	c.DataMoves += other.DataMoves
	c.HashCalls += other.HashCalls
	c.NodesVisited += other.NodesVisited
	c.Allocations += other.Allocations
	c.Rotations += other.Rotations
	c.Batches += other.Batches
	c.RadixPasses += other.RadixPasses
	c.Partitions += other.Partitions
	c.SortPasses += other.SortPasses
	c.SortRuns += other.SortRuns
	c.KeyBytes += other.KeyBytes
	c.Groups += other.Groups
	c.AggProbes += other.AggProbes
	c.HeapPushes += other.HeapPushes
}

// String renders the counters in a compact single line.
func (c *Counters) String() string {
	if c == nil {
		return "meter(nil)"
	}
	return fmt.Sprintf("cmp=%d move=%d hash=%d node=%d alloc=%d rot=%d batch=%d rpass=%d part=%d spass=%d srun=%d keyB=%d grp=%d aprobe=%d hpush=%d",
		c.Comparisons, c.DataMoves, c.HashCalls, c.NodesVisited, c.Allocations, c.Rotations, c.Batches,
		c.RadixPasses, c.Partitions, c.SortPasses, c.SortRuns, c.KeyBytes, c.Groups, c.AggProbes, c.HeapPushes)
}
