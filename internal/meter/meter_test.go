package meter

import (
	"strings"
	"testing"
)

func TestNilReceiverIsSafe(t *testing.T) {
	var c *Counters
	c.AddCompare(1)
	c.AddMove(2)
	c.AddHash(3)
	c.AddNode(4)
	c.AddAlloc(5)
	c.AddRotation(6)
	c.Reset()
	c.Add(Counters{Comparisons: 9})
	if got := c.String(); got != "meter(nil)" {
		t.Fatalf("nil String() = %q", got)
	}
}

func TestAccumulation(t *testing.T) {
	var c Counters
	c.AddCompare(10)
	c.AddCompare(5)
	c.AddMove(3)
	c.AddHash(2)
	c.AddNode(7)
	c.AddAlloc(1)
	c.AddRotation(4)
	if c.Comparisons != 15 || c.DataMoves != 3 || c.HashCalls != 2 ||
		c.NodesVisited != 7 || c.Allocations != 1 || c.Rotations != 4 {
		t.Fatalf("unexpected counters: %+v", c)
	}
}

func TestAddMerges(t *testing.T) {
	a := Counters{Comparisons: 1, DataMoves: 2, HashCalls: 3, NodesVisited: 4, Allocations: 5, Rotations: 6}
	b := Counters{Comparisons: 10, DataMoves: 20, HashCalls: 30, NodesVisited: 40, Allocations: 50, Rotations: 60}
	a.Add(b)
	want := Counters{Comparisons: 11, DataMoves: 22, HashCalls: 33, NodesVisited: 44, Allocations: 55, Rotations: 66}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestResetZeroes(t *testing.T) {
	c := Counters{Comparisons: 1, Rotations: 2}
	c.Reset()
	if c != (Counters{}) {
		t.Fatalf("Reset left %+v", c)
	}
}

func TestStringContainsEveryCounter(t *testing.T) {
	c := Counters{Comparisons: 1, DataMoves: 2, HashCalls: 3, NodesVisited: 4, Allocations: 5, Rotations: 6}
	s := c.String()
	for _, frag := range []string{"cmp=1", "move=2", "hash=3", "node=4", "alloc=5", "rot=6"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
