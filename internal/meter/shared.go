package meter

import "sync/atomic"

// SharedCounters is the thread-safe sibling of Counters: the same six §3.1
// operation counts, each backed by an atomic, so concurrent query
// executions can roll their per-query Counters into one engine-wide
// accumulator (the obs registry's rollup). The plain Counters struct stays
// the per-operator hot-path instrument — a single goroutine owns it for
// the duration of one operator — and SharedCounters is the aggregation
// point those private counters are folded into when the operator
// finishes.
//
// All methods are safe on a nil receiver, mirroring Counters: a nil
// *SharedCounters is the disabled registry's zero-cost no-op.
type SharedCounters struct {
	comparisons  atomic.Int64
	dataMoves    atomic.Int64
	hashCalls    atomic.Int64
	nodesVisited atomic.Int64
	allocations  atomic.Int64
	rotations    atomic.Int64
	batches      atomic.Int64
	radixPasses  atomic.Int64
	partitions   atomic.Int64
	sortPasses   atomic.Int64
	sortRuns     atomic.Int64
	keyBytes     atomic.Int64
	groups       atomic.Int64
	aggProbes    atomic.Int64
	heapPushes   atomic.Int64
}

// AddCompare records n comparisons. Safe on a nil receiver.
func (c *SharedCounters) AddCompare(n int64) {
	if c != nil {
		c.comparisons.Add(n)
	}
}

// AddMove records n element moves. Safe on a nil receiver.
func (c *SharedCounters) AddMove(n int64) {
	if c != nil {
		c.dataMoves.Add(n)
	}
}

// AddHash records n hash-function calls. Safe on a nil receiver.
func (c *SharedCounters) AddHash(n int64) {
	if c != nil {
		c.hashCalls.Add(n)
	}
}

// AddNode records n node visits. Safe on a nil receiver.
func (c *SharedCounters) AddNode(n int64) {
	if c != nil {
		c.nodesVisited.Add(n)
	}
}

// AddAlloc records n structure allocations. Safe on a nil receiver.
func (c *SharedCounters) AddAlloc(n int64) {
	if c != nil {
		c.allocations.Add(n)
	}
}

// AddRotation records n rebalance rotations. Safe on a nil receiver.
func (c *SharedCounters) AddRotation(n int64) {
	if c != nil {
		c.rotations.Add(n)
	}
}

// AddBatch records n tuple-batch handoffs. Safe on a nil receiver.
func (c *SharedCounters) AddBatch(n int64) {
	if c != nil {
		c.batches.Add(n)
	}
}

// AddRadixPass records n radix partitioning passes. Safe on a nil receiver.
func (c *SharedCounters) AddRadixPass(n int64) {
	if c != nil {
		c.radixPasses.Add(n)
	}
}

// AddPartition records n radix partitions produced. Safe on a nil receiver.
func (c *SharedCounters) AddPartition(n int64) {
	if c != nil {
		c.partitions.Add(n)
	}
}

// AddSortPass records n radix-sort scatter passes. Safe on a nil receiver.
func (c *SharedCounters) AddSortPass(n int64) {
	if c != nil {
		c.sortPasses.Add(n)
	}
}

// AddSortRun records n comparator-sorted runs. Safe on a nil receiver.
func (c *SharedCounters) AddSortRun(n int64) {
	if c != nil {
		c.sortRuns.Add(n)
	}
}

// AddKeyBytes records n normalized sort-key bytes encoded. Safe on a nil
// receiver.
func (c *SharedCounters) AddKeyBytes(n int64) {
	if c != nil {
		c.keyBytes.Add(n)
	}
}

// AddGroup records n distinct groups produced. Safe on a nil receiver.
func (c *SharedCounters) AddGroup(n int64) {
	if c != nil {
		c.groups.Add(n)
	}
}

// AddAggProbe records n agg-table probe steps. Safe on a nil receiver.
func (c *SharedCounters) AddAggProbe(n int64) {
	if c != nil {
		c.aggProbes.Add(n)
	}
}

// AddHeapPush records n bounded-heap insertions. Safe on a nil receiver.
func (c *SharedCounters) AddHeapPush(n int64) {
	if c != nil {
		c.heapPushes.Add(n)
	}
}

// Add atomically folds a finished operator's private Counters into the
// shared accumulator. Safe on a nil receiver.
func (c *SharedCounters) Add(other Counters) {
	if c == nil {
		return
	}
	c.comparisons.Add(other.Comparisons)
	c.dataMoves.Add(other.DataMoves)
	c.hashCalls.Add(other.HashCalls)
	c.nodesVisited.Add(other.NodesVisited)
	c.allocations.Add(other.Allocations)
	c.rotations.Add(other.Rotations)
	c.batches.Add(other.Batches)
	c.radixPasses.Add(other.RadixPasses)
	c.partitions.Add(other.Partitions)
	c.sortPasses.Add(other.SortPasses)
	c.sortRuns.Add(other.SortRuns)
	c.keyBytes.Add(other.KeyBytes)
	c.groups.Add(other.Groups)
	c.aggProbes.Add(other.AggProbes)
	c.heapPushes.Add(other.HeapPushes)
}

// Reset zeroes every counter. Safe on a nil receiver. Not atomic with
// respect to concurrent adds as a set, but each field individually is.
func (c *SharedCounters) Reset() {
	if c == nil {
		return
	}
	c.comparisons.Store(0)
	c.dataMoves.Store(0)
	c.hashCalls.Store(0)
	c.nodesVisited.Store(0)
	c.allocations.Store(0)
	c.rotations.Store(0)
	c.batches.Store(0)
	c.radixPasses.Store(0)
	c.partitions.Store(0)
	c.sortPasses.Store(0)
	c.sortRuns.Store(0)
	c.keyBytes.Store(0)
	c.groups.Store(0)
	c.aggProbes.Store(0)
	c.heapPushes.Store(0)
}

// Snapshot returns a point-in-time copy as a plain Counters value. Safe on
// a nil receiver (returns zeros).
func (c *SharedCounters) Snapshot() Counters {
	if c == nil {
		return Counters{}
	}
	return Counters{
		Comparisons:  c.comparisons.Load(),
		DataMoves:    c.dataMoves.Load(),
		HashCalls:    c.hashCalls.Load(),
		NodesVisited: c.nodesVisited.Load(),
		Allocations:  c.allocations.Load(),
		Rotations:    c.rotations.Load(),
		Batches:      c.batches.Load(),
		RadixPasses:  c.radixPasses.Load(),
		Partitions:   c.partitions.Load(),
		SortPasses:   c.sortPasses.Load(),
		SortRuns:     c.sortRuns.Load(),
		KeyBytes:     c.keyBytes.Load(),
		Groups:       c.groups.Load(),
		AggProbes:    c.aggProbes.Load(),
		HeapPushes:   c.heapPushes.Load(),
	}
}

// String renders a snapshot in the same compact form as Counters.
func (c *SharedCounters) String() string {
	if c == nil {
		return "meter(nil)"
	}
	s := c.Snapshot()
	return s.String()
}
