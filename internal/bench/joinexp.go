package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/index/sortedarray"
	"repro/internal/index/ttree"
	"repro/internal/storage"
	"repro/internal/tupleindex"
	"repro/internal/workload"
)

// The join study (§3.3): four practical methods (Hash Join, Tree Join,
// Sort Merge, Tree Merge) across six relation compositions, plus the
// nested-loops baseline. Relations are accessed through array indices
// (§3.3.2); the Tree Join and Tree Merge assume their T Trees already
// exist, while the Hash Join and Sort Merge pay their build costs.

var joinMethodNames = []string{"Hash Join", "Tree Join", "Sort Merge", "Tree Merge"}

// joinCase is one point of a join test.
type joinCase struct {
	nOuter, nInner int
	dup            float64
	sigma          float64
	semijoin       float64
	discard        bool // count result rows instead of materializing
}

// prepared holds the untimed setup for one case: relations, scan indices
// and the "existing" T Trees.
type prepared struct {
	outer, inner         *sortedarray.Array[*storage.Tuple]
	outerTree, innerTree *ttree.Tree[*storage.Tuple]
	rowsOut              int
}

// prepareJoin builds the relation pair: the smaller relation draws its
// values from the larger to hit the requested semijoin selectivity
// (§3.3.1).
func prepareJoin(c joinCase, rng *rand.Rand) *prepared {
	specOuter := workload.Spec{Cardinality: c.nOuter, DuplicatePct: c.dup, Sigma: c.sigma}
	specInner := workload.Spec{Cardinality: c.nInner, DuplicatePct: c.dup, Sigma: c.sigma}
	var colOuter, colInner workload.Column
	var err error
	if c.nOuter >= c.nInner {
		if colOuter, err = workload.Build(specOuter, rng); err != nil {
			panic(err)
		}
		if colInner, err = workload.BuildDerived(specInner, colOuter, c.semijoin, rng); err != nil {
			panic(err)
		}
	} else {
		if colInner, err = workload.Build(specInner, rng); err != nil {
			panic(err)
		}
		if colOuter, err = workload.BuildDerived(specOuter, colInner, c.semijoin, rng); err != nil {
			panic(err)
		}
	}
	to := buildRelation("r1", colOuter.Values)
	ti := buildRelation("r2", colInner.Values)
	p := &prepared{
		outer: tupleindex.BuildArray(tupleindex.Options{Field: 0}, to),
		inner: tupleindex.BuildArray(tupleindex.Options{Field: 0}, ti),
	}
	p.outerTree = tupleindex.NewTTree(tupleindex.Options{Field: 0})
	for _, tp := range to {
		p.outerTree.Insert(tp)
	}
	p.innerTree = tupleindex.NewTTree(tupleindex.Options{Field: 0})
	for _, tp := range ti {
		p.innerTree.Insert(tp)
	}
	return p
}

func (p *prepared) spec(discard bool) exec.JoinSpec {
	return exec.JoinSpec{
		OuterName: "r1", InnerName: "r2",
		OuterField: 0, InnerField: 0,
		Discard: discard, RowsOut: &p.rowsOut,
	}
}

// runJoinCase measures the four practical join methods on one case. Fast
// runs are repeated and the minimum taken, so allocator and cache noise
// does not reorder close curves.
func runJoinCase(c joinCase, rng *rand.Rand) []float64 {
	p := prepareJoin(c, rng)
	spec := p.spec(c.discard)
	so := exec.OrderedScan{Index: p.outer}
	si := exec.OrderedScan{Index: p.inner}
	hash := timeBest(func() { exec.HashJoin(so, si, spec) })
	tree := timeBest(func() { exec.TreeJoin(so, p.innerTree, spec) })
	sortm := timeBest(func() { exec.SortMergeJoin(so, si, spec) })
	treem := timeBest(func() { exec.TreeMergeJoin(p.outerTree, p.innerTree, spec) })
	return []float64{hash, tree, sortm, treem}
}

// Graph4VaryCardinality reproduces Join Test 1: |R1| = |R2|, keys, 100%
// semijoin selectivity.
func Graph4VaryCardinality(env Env) []Series {
	s := Series{
		ID:     "graph4",
		Title:  "Join Test 1 — Vary Cardinality (|R1| = |R2|, 0% duplicates, 100% semijoin)",
		XLabel: "|R1| = |R2|",
		YLabel: "seconds",
		Names:  joinMethodNames,
	}
	rng := env.Rng()
	for _, frac := range []float64{0.125, 0.25, 0.5, 0.75, 1.0} {
		n := env.N(int(30000 * frac))
		ys := runJoinCase(joinCase{nOuter: n, nInner: n, sigma: workload.NearUniform, semijoin: 100}, rng)
		s.Add(fmt.Sprintf("%d", n), ys...)
	}
	s.Notes = append(s.Notes,
		"expected: Tree Merge best (indices exist); Hash Join next; Sort Merge worst (build+sort cost)")
	return []Series{s}
}

// Graph5VaryInner reproduces Join Test 2: |R2| varies from 1-100% of
// |R1| = 30,000.
func Graph5VaryInner(env Env) []Series {
	s := Series{
		ID:     "graph5",
		Title:  "Join Test 2 — Vary Inner Cardinality (|R1| = 30k, keys, 100% semijoin)",
		XLabel: "|R2| as % of |R1|",
		YLabel: "seconds",
		Names:  joinMethodNames,
	}
	rng := env.Rng()
	n1 := env.N(30000)
	for _, pct := range []int{1, 25, 50, 75, 100} {
		n2 := n1 * pct / 100
		if n2 < 1 {
			n2 = 1
		}
		ys := runJoinCase(joinCase{nOuter: n1, nInner: n2, sigma: workload.NearUniform, semijoin: 100}, rng)
		s.Add(fmt.Sprintf("%d%%", pct), ys...)
	}
	s.Notes = append(s.Notes, "expected: same ordering as Test 1 — |R1| index probes dominate")
	return []Series{s}
}

// Graph6VaryOuter reproduces Join Test 3: |R1| varies from 1-100% of
// |R2| = 30,000; the Tree Join wins for small outers.
func Graph6VaryOuter(env Env) []Series {
	s := Series{
		ID:     "graph6",
		Title:  "Join Test 3 — Vary Outer Cardinality (|R2| = 30k, keys, 100% semijoin)",
		XLabel: "|R1| as % of |R2|",
		YLabel: "seconds",
		Names:  joinMethodNames,
	}
	rng := env.Rng()
	n2 := env.N(30000)
	for _, pct := range []int{1, 25, 50, 75, 100} {
		n1 := n2 * pct / 100
		if n1 < 1 {
			n1 = 1
		}
		ys := runJoinCase(joinCase{nOuter: n1, nInner: n2, sigma: workload.NearUniform, semijoin: 100}, rng)
		s.Add(fmt.Sprintf("%d%%", pct), ys...)
	}
	s.Notes = append(s.Notes,
		"expected: Tree Join best below ~50-60% (few probes of the existing index beat building a hash",
		"table on 30k tuples); Hash Join takes over for large outers")
	return []Series{s}
}

// Graph7DupSkewed reproduces Join Test 4: |R1| = |R2| = 20,000, skewed
// duplicate distribution, duplicate percentage 0-100. Result rows are
// counted, not materialized (the 100% point emits |R|² pairs).
func Graph7DupSkewed(env Env) []Series {
	return []Series{dupSweep(env, "graph7", workload.Skewed,
		"Join Test 4 — Vary Duplicate Percentage (skewed σ=0.1, |R|=20k, 100% semijoin)",
		[]string{
			"expected (log scale in the paper): output explodes with duplicates; Sort Merge",
			"overtakes the index joins around 40% and everything else by ~80%",
		})}
}

// Graph8DupUniform reproduces Join Test 5: the uniform-distribution twin.
func Graph8DupUniform(env Env) []Series {
	return []Series{dupSweep(env, "graph8", workload.NearUniform,
		"Join Test 5 — Vary Duplicate Percentage (uniform σ=0.8, |R|=20k, 100% semijoin)",
		[]string{
			"expected: Tree Merge stays best until ~97% duplicates; Sort Merge wins only at the extreme",
		})}
}

func dupSweep(env Env, id string, sigma float64, title string, notes []string) Series {
	s := Series{
		ID:     id,
		Title:  title,
		XLabel: "duplicate %",
		YLabel: "seconds (result rows counted, not stored)",
		Names:  joinMethodNames,
		Notes:  notes,
	}
	rng := env.Rng()
	n := env.N(20000)
	for _, dup := range []float64{0, 25, 50, 75, 90, 95, 99, 100} {
		ys := runJoinCase(joinCase{nOuter: n, nInner: n, dup: dup, sigma: sigma, semijoin: 100, discard: true}, rng)
		s.Add(fmt.Sprintf("%.0f%%", dup), ys...)
	}
	return s
}

// Graph9Semijoin reproduces Join Test 6: |R1| = |R2| = 30,000, 50%
// duplicates uniform, semijoin selectivity 1-100%.
func Graph9Semijoin(env Env) []Series {
	s := Series{
		ID:     "graph9",
		Title:  "Join Test 6 — Vary Semijoin Selectivity (|R|=30k, 50% dups uniform)",
		XLabel: "% matching values",
		YLabel: "seconds",
		Names:  joinMethodNames,
	}
	rng := env.Rng()
	n := env.N(30000)
	for _, sel := range []float64{1, 25, 50, 75, 100} {
		ys := runJoinCase(joinCase{nOuter: n, nInner: n, dup: 50, sigma: workload.NearUniform, semijoin: sel, discard: true}, rng)
		s.Add(fmt.Sprintf("%.0f%%", sel), ys...)
	}
	s.Notes = append(s.Notes,
		"expected: Tree Join climbs most with matching values (successful searches scan duplicates);",
		"Sort Merge flattest (sorting dominates the merge)")
	return []Series{s}
}

// Graph10NestedLoops reproduces the nested-loops baseline, which the paper
// plots alone because it is orders of magnitude off the other graphs.
func Graph10NestedLoops(env Env) []Series {
	s := Series{
		ID:     "graph10",
		Title:  "Nested Loops Join (Graph 10) — |R1| = |R2|, keys",
		XLabel: "|R1| = |R2|",
		YLabel: "seconds (Hash Join shown for contrast)",
		Names:  []string{"Nested Loops", "Hash Join"},
	}
	rng := env.Rng()
	for _, base := range []int{1000, 5000, 10000, 20000} {
		n := env.N(base)
		p := prepareJoin(joinCase{nOuter: n, nInner: n, sigma: workload.NearUniform, semijoin: 100}, rng)
		spec := p.spec(false)
		so := exec.OrderedScan{Index: p.outer}
		si := exec.OrderedScan{Index: p.inner}
		nested := timeIt(func() { exec.NestedLoopsJoin(so, si, spec) })
		hash := timeIt(func() { exec.HashJoin(so, si, spec) })
		s.Add(fmt.Sprintf("%d", n), nested, hash)
	}
	s.Notes = append(s.Notes,
		"expected: quadratic growth, \"usually several orders of magnitude worse than the other joins\"")
	return []Series{s}
}
