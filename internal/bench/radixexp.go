package bench

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/radix"
	"repro/internal/workload"
)

// The radix experiment is not a paper exhibit: the 1986 study ran on a
// VAX whose memory hierarchy made chained-bucket hashing essentially
// free of cache effects. On a modern machine the chained table's random
// pointer chases dominate once the build side outgrows L2; the
// cache-conscious radix join partitions both sides until every
// partition pair joins against L2-resident state. This sweep puts the
// three implementations side by side over build sizes and data shapes:
//
//   - chained (serial): the batch-at-a-time §3.3 chained-bucket join
//   - chained (Nw):     the partition-parallel chained join
//   - radix (Nw):       the radix-partitioned join, plan.ForceRadixBits
//
// Join cardinality is asserted identical at every point; the notes
// record the radix speedup plus the partitioning shape (passes, fanout,
// skew) behind it.

// RadixJoinSweep measures chained vs radix hash joins across build
// sizes and skews.
func RadixJoinSweep(env Env) []Series {
	workers := parallel.Degree(env.Parallelism)
	rng := env.Rng()

	type shape struct {
		label string
		n     int
		dup   float64
		sigma float64
	}
	var shapes []shape
	for _, base := range []int{250000, 500000, 1000000} {
		n := env.N(base)
		shapes = append(shapes, shape{fmt.Sprintf("%dk uniform", n/1000), n, 0, workload.NearUniform})
	}
	big := env.N(1000000)
	shapes = append(shapes, shape{fmt.Sprintf("%dk skewed dups", big/1000), big, 50, workload.Skewed})

	names := []string{
		"chained serial",
		fmt.Sprintf("chained (%dw)", workers),
		fmt.Sprintf("radix (%dw)", workers),
	}
	timeSeries := Series{
		ID:     "radix-join-time",
		Title:  "Cache-conscious execution — chained vs radix hash join",
		XLabel: "build size / shape",
		YLabel: "seconds",
		Names:  names,
	}
	allocSeries := Series{
		ID:     "radix-join-allocs",
		Title:  "Cache-conscious execution — heap allocations per join",
		XLabel: "build size / shape",
		YLabel: "allocations",
		Names:  names,
	}

	for _, s := range shapes {
		// Build side with the shape's duplicate mix; probe side unique,
		// drawn entirely from the build side's distinct values so every
		// probe key's multiplicity — and the output cardinality — is
		// controlled by the build shape.
		inner, err := workload.Build(workload.Spec{Cardinality: s.n, DuplicatePct: s.dup, Sigma: s.sigma}, rng)
		if err != nil {
			panic(err)
		}
		outer, err := workload.BuildDerived(
			workload.Spec{Cardinality: s.n, DuplicatePct: 0, Sigma: workload.NearUniform}, inner, 100, rng)
		if err != nil {
			panic(err)
		}
		to := parallel.SliceSource(buildRelation("r1", outer.Values))
		ti := parallel.SliceSource(buildRelation("r2", inner.Values))
		spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
		bits := plan.ForceRadixBits(s.n, plan.RadixConfig{})

		var cSer, cPar, cRad int
		var stats radix.Stats
		tSer, aSer := timeAllocs(func() { cSer = exec.HashJoin(to, ti, spec).Len() })
		tPar, aPar := timeAllocs(func() { cPar = parallel.HashJoin(to, ti, spec, workers).Len() })
		tRad, aRad := timeAllocs(func() {
			res, st := parallel.RadixHashJoin(to, ti, spec, bits, workers)
			cRad, stats = res.Len(), st
		})
		if cSer != cPar || cSer != cRad {
			panic(fmt.Sprintf("bench: join cardinality diverged at %s: serial=%d parallel=%d radix=%d",
				s.label, cSer, cPar, cRad))
		}
		timeSeries.Add(s.label, tSer, tPar, tRad)
		allocSeries.Add(s.label, float64(aSer), float64(aPar), float64(aRad))
		timeSeries.Notes = append(timeSeries.Notes,
			fmt.Sprintf("%s: radix %.2fx vs chained serial, %.2fx vs chained (%dw); %d pass(es), fanout %d, skew %.2f, %d rows out",
				s.label, tSer/tRad, tPar/tRad, workers, stats.Passes, stats.Fanout, stats.Skew(), cSer))
	}
	timeSeries.Notes = append(timeSeries.Notes,
		"identical join cardinality asserted at every point",
		fmt.Sprintf("radix bits per shape from plan.ForceRadixBits (L2 target %d KiB)", plan.DefaultRadixL2Bytes>>10))
	allocSeries.Notes = []string{"minimum of warmed repetitions; pooled partitioner/table scratch counts as zero once recycled"}
	return []Series{timeSeries, allocSeries}
}
