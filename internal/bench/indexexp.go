package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/tupleindex"
	"repro/internal/workload"
)

// The index study (§3.2.2): every structure holds tuple pointers, indices
// are configured unique, and each test uses 30,000 unique elements.

// studyKinds lists the structures in the paper's order; order-preserving
// structures draw solid lines, hashing dashed.
var studyKinds = []index.Kind{
	index.KindArray,
	index.KindAVL,
	index.KindBTree,
	index.KindTTree,
	index.KindChainedHash,
	index.KindExtendible,
	index.KindLinearHash,
	index.KindModLinearHash,
}

// kindHasNodeSize reports whether the structure's line varies with the
// node-size axis ("those structures without variable node sizes simply
// have straight lines").
func kindHasNodeSize(k index.Kind) bool {
	return k != index.KindArray && k != index.KindAVL
}

// graphNodeSizes is the x axis of Graphs 1 and 2.
var graphNodeSizes = []int{2, 4, 6, 10, 20, 30, 40, 60, 80, 100}

// anyIndex unifies ordered and hashed structures for the study harness.
type anyIndex struct {
	ord tupleindex.Ordered
	hsh tupleindex.Hashed
}

func buildStudyIndex(k index.Kind, nodeSize int, tuples []*storage.Tuple, bulk bool) anyIndex {
	o := tupleindex.Options{Field: 0, Unique: true, NodeSize: nodeSize, Capacity: len(tuples)}
	if k == index.KindArray && bulk {
		// The array is a build-once structure; loading it element by
		// element would measure its well-known O(n²) update pathology
		// instead of construction.
		return anyIndex{ord: tupleindex.BuildArray(o, tuples)}
	}
	if k.OrderPreserving() {
		ix, err := tupleindex.NewOrdered(k, o)
		if err != nil {
			panic(err)
		}
		for _, tp := range tuples {
			ix.Insert(tp)
		}
		return anyIndex{ord: ix}
	}
	ix, err := tupleindex.NewHashed(k, o)
	if err != nil {
		panic(err)
	}
	for _, tp := range tuples {
		ix.Insert(tp)
	}
	return anyIndex{hsh: ix}
}

func (ix anyIndex) search(key storage.Value) bool {
	if ix.ord != nil {
		_, ok := ix.ord.Search(tupleindex.PosFor(key, 0))
		return ok
	}
	_, ok := ix.hsh.SearchKey(storage.Hash(key), func(t *storage.Tuple) bool {
		return storage.Equal(t.Field(0), key)
	})
	return ok
}

func (ix anyIndex) insert(tp *storage.Tuple) bool {
	if ix.ord != nil {
		return ix.ord.Insert(tp)
	}
	return ix.hsh.Insert(tp)
}

func (ix anyIndex) delete(tp *storage.Tuple) bool {
	if ix.ord != nil {
		return ix.ord.Delete(tp)
	}
	return ix.hsh.Delete(tp)
}

func (ix anyIndex) stats() index.Stats {
	if ix.ord != nil {
		return ix.ord.Stats()
	}
	return ix.hsh.Stats()
}

// studyTuples generates the unique-element relation of the index study.
func studyTuples(env Env, n int) []*storage.Tuple {
	rng := env.Rng()
	return buildRelation("study", workload.UniquePool(n, rng, nil))
}

// Graph1IndexSearch reproduces Graph 1: total time for N successful
// searches against each structure, across node sizes.
func Graph1IndexSearch(env Env) []Series {
	n := env.N(30000)
	tuples := studyTuples(env, n)
	rng := env.Rng()
	probeOrder := rng.Perm(n)

	s := Series{
		ID:     "graph1",
		Title:  "Index Search (Graph 1)",
		XLabel: "node size",
		YLabel: fmt.Sprintf("seconds for %d searches of %d unique elements", n, n),
	}
	for _, k := range studyKinds {
		s.Names = append(s.Names, k.String())
	}
	// Structures without a node-size knob are measured once.
	flat := map[index.Kind]float64{}
	for _, k := range studyKinds {
		if !kindHasNodeSize(k) {
			ix := buildStudyIndex(k, 0, tuples, true)
			flat[k] = timeSearches(ix, tuples, probeOrder)
		}
	}
	for _, ns := range graphNodeSizes {
		ys := make([]float64, 0, len(studyKinds))
		for _, k := range studyKinds {
			if !kindHasNodeSize(k) {
				ys = append(ys, flat[k])
				continue
			}
			ix := buildStudyIndex(k, ns, tuples, true)
			ys = append(ys, timeSearches(ix, tuples, probeOrder))
		}
		s.Add(fmt.Sprintf("%d", ns), ys...)
	}
	s.Notes = append(s.Notes,
		"expected shape: hashing flat and fastest at small nodes; Mod Linear Hash degrades as chains grow;",
		"AVL < T Tree < Array < B Tree among order-preserving structures")
	return []Series{s}
}

func timeSearches(ix anyIndex, tuples []*storage.Tuple, order []int) float64 {
	return timeIt(func() {
		for _, i := range order {
			key := tuples[i].Field(0)
			if !ix.search(key) {
				panic("bench: search lost an element")
			}
		}
	})
}

// Graph2QueryMix reproduces Graph 2 (and its 80/10/10 and 40/30/30
// variants): N operations interleaving searches, inserts, and deletes
// against a structure preloaded with N elements.
func Graph2QueryMix(env Env) []Series {
	var out []Series
	for _, mix := range []struct {
		id               string
		search, ins, del int
	}{
		{"graph2", 60, 20, 20},
		{"graph2-mix80", 80, 10, 10},
		{"graph2-mix40", 40, 30, 30},
	} {
		out = append(out, queryMixSeries(env, mix.id, mix.search, mix.ins, mix.del))
	}
	return out
}

func queryMixSeries(env Env, id string, searchPct, insPct, delPct int) Series {
	n := env.N(30000)
	ops := n // the paper interleaves as many operations as elements

	s := Series{
		ID:     id,
		Title:  fmt.Sprintf("Query Mix %d%% searches / %d%% inserts / %d%% deletes (Graph 2 family)", searchPct, insPct, delPct),
		XLabel: "node size",
		YLabel: fmt.Sprintf("seconds for %d mixed operations, %d preloaded elements", ops, n),
	}
	for _, k := range studyKinds {
		s.Names = append(s.Names, k.String())
	}
	pool := studyTuples(env, n+ops)
	flat := map[index.Kind]float64{}
	for _, k := range studyKinds {
		if !kindHasNodeSize(k) {
			flat[k] = runQueryMix(env, pool, k, 0, n, ops, searchPct, insPct)
		}
	}
	for _, ns := range graphNodeSizes {
		ys := make([]float64, 0, len(studyKinds))
		for _, k := range studyKinds {
			if !kindHasNodeSize(k) {
				ys = append(ys, flat[k])
				continue
			}
			ys = append(ys, runQueryMix(env, pool, k, ns, n, ops, searchPct, insPct))
		}
		s.Add(fmt.Sprintf("%d", ns), ys...)
	}
	s.Notes = append(s.Notes,
		"expected shape: T Tree best among order-preserving; Linear Hash slow (utilization chasing);",
		"Array two orders of magnitude off the chart (every update moves half the array)")
	return s
}

// runQueryMix measures one structure at one node size against a shared
// tuple pool (preload + worst-case inserts). The operation stream is
// regenerated identically (same seed) for every structure.
func runQueryMix(env Env, pool []*storage.Tuple, k index.Kind, nodeSize, n, ops, searchPct, insPct int) float64 {
	live := append([]*storage.Tuple(nil), pool[:n]...)
	next := n
	ix := buildStudyIndex(k, nodeSize, live, true)
	rng := rand.New(rand.NewSource(env.Seed + 99))
	return timeIt(func() {
		for op := 0; op < ops; op++ {
			r := rng.Intn(100)
			switch {
			case r < searchPct || len(live) == 0:
				tp := live[rng.Intn(len(live))]
				if !ix.search(tp.Field(0)) {
					panic("bench: mix search lost an element")
				}
			case r < searchPct+insPct && next < len(pool):
				tp := pool[next]
				next++
				ix.insert(tp)
				live = append(live, tp)
			default:
				i := rng.Intn(len(live))
				tp := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if !ix.delete(tp) {
					panic("bench: mix delete lost an element")
				}
			}
		}
	})
}

// StorageCost reproduces the §3.2.2 storage summary: the structure's
// storage factor (bytes per byte of raw entries, under the paper's 4-byte
// layout) across node sizes.
func StorageCost(env Env) []Series {
	n := env.N(30000)
	tuples := studyTuples(env, n)
	s := Series{
		ID:     "storage",
		Title:  "Storage Cost (§3.2.2 summary)",
		XLabel: "node size",
		YLabel: "storage factor vs array (paper 4-byte layout)",
	}
	for _, k := range studyKinds {
		s.Names = append(s.Names, k.String())
	}
	flat := map[index.Kind]float64{}
	for _, k := range studyKinds {
		if !kindHasNodeSize(k) {
			flat[k] = index.PaperModel.Factor(buildStudyIndex(k, 0, tuples, true).stats())
		}
	}
	for _, ns := range graphNodeSizes {
		ys := make([]float64, 0, len(studyKinds))
		for _, k := range studyKinds {
			if !kindHasNodeSize(k) {
				ys = append(ys, flat[k])
				continue
			}
			ys = append(ys, index.PaperModel.Factor(buildStudyIndex(k, ns, tuples, true).stats()))
		}
		s.Add(fmt.Sprintf("%d", ns), ys...)
	}
	s.Notes = append(s.Notes,
		"paper: AVL 3.0; Chained Bucket 2.3; Linear Hash / B Tree / Extendible / T Tree ~1.5 at medium-large nodes;",
		"Extendible Hashing largest at small node sizes (repeated directory doubling)")
	return []Series{s}
}

// Table1 reproduces Table 1: per-structure ratings for search, update, and
// storage cost, derived from fresh measurements. Each structure is rated
// at its best-performing node size; storage is the factor at that size
// (Extendible Hashing's poor storage verdict emerges because its best
// performance needs small nodes).
func Table1(env Env) []Series {
	n := env.N(30000)
	ops := n
	tuples := studyTuples(env, n)
	rng := env.Rng()
	probeOrder := rng.Perm(n)

	s := Series{
		ID:     "table1",
		Title:  "Index Study Results (Table 1) — measured values and derived ratings",
		XLabel: "structure",
		YLabel: "search s | update(mix) s | storage factor",
		Names:  []string{"search", "mix 60/20/20", "storage factor"},
	}
	type row struct {
		k                    index.Kind
		search, mix, storage float64
	}
	pool := studyTuples(env, n+ops)
	var rows []row
	for _, k := range studyKinds {
		sizes := graphNodeSizes
		if !kindHasNodeSize(k) {
			sizes = []int{0}
		}
		best := row{k: k, search: math.Inf(1), mix: math.Inf(1)}
		for _, ns := range sizes {
			ix := buildStudyIndex(k, ns, tuples, true)
			sc := timeSearches(ix, tuples, probeOrder)
			mx := runQueryMix(env, pool, k, ns, n, ops, 60, 20)
			if mx < best.mix {
				best.mix = mx
				best.search = sc
				best.storage = index.PaperModel.Factor(buildStudyIndex(k, ns, tuples, true).stats())
			}
		}
		rows = append(rows, best)
	}
	bestSearch, bestMix := math.Inf(1), math.Inf(1)
	for _, r := range rows {
		bestSearch = math.Min(bestSearch, r.search)
		bestMix = math.Min(bestMix, r.mix)
	}
	for _, r := range rows {
		s.Add(r.k.String(), r.search, r.mix, r.storage)
		s.Notes = append(s.Notes, fmt.Sprintf("%-20s search=%-6s update=%-6s storage=%-6s (paper: %s)",
			r.k.String(),
			rateTime(r.search/bestSearch), rateTime(r.mix/bestMix), rateStorage(r.storage),
			paperTable1[r.k]))
	}
	return []Series{s}
}

// rateTime buckets a time ratio (vs the overall best) into the paper's
// four-level scale.
func rateTime(ratio float64) string {
	switch {
	case ratio <= 1.7:
		return "great"
	case ratio <= 3.5:
		return "good"
	case ratio <= 8:
		return "fair"
	default:
		return "poor"
	}
}

func rateStorage(factor float64) string {
	switch {
	case factor <= 1.9:
		return "good"
	case factor <= 2.9:
		return "fair"
	default:
		return "poor"
	}
}

// paperTable1 records the published ratings for side-by-side comparison.
var paperTable1 = map[index.Kind]string{
	index.KindArray:         "search good, update poor, storage good",
	index.KindAVL:           "search good, update fair, storage poor",
	index.KindBTree:         "search fair, update good, storage good",
	index.KindTTree:         "search good, update good, storage good",
	index.KindChainedHash:   "search great, update great, storage fair",
	index.KindExtendible:    "search great, update great, storage poor",
	index.KindLinearHash:    "search great, update poor, storage good",
	index.KindModLinearHash: "search great, update great, storage fair/good",
}
