package bench

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

// The sort-engine experiment is not a paper exhibit: in 1986 the
// comparator quicksort with an insertion-sort cutoff WAS the fast sort,
// and at the paper's 30k-tuple scale it still is. At millions of rows
// the per-comparison indirect call and the boxed []Value operands turn
// the sort-based operators memory-bound; the normalized-key engine
// (internal/sortkey) encodes each key once into a fixed-width
// order-preserving prefix and MSD-radix-sorts (prefix, payload) pairs
// with write-combining scatter buffers. This sweep runs both substrates
// through the two operators the engine rewires:
//
//   - sort-merge join: tupleindex.BuildArray (comparator quicksort)
//     vs BuildArrayRadix on both build sides, then the same merge
//   - DISTINCT (§3.4 Sort Scan): exec.ProjectSortScan vs
//     exec.ProjectSortScanRadix
//
// Output cardinality AND output key order are asserted identical at
// every point — the radix path must be observationally equivalent, not
// just approximately sorted. The notes record the crossover evidence.

// sameKeySequence panics unless both lists carry the same column-0
// value sequence. For merge-join output this is the join-key sequence
// (tuple order among key-equal duplicates may differ — neither array
// build is stable — but the key sequence may not); for distinct output
// it is the exact result order.
func sameKeySequence(what string, a, b *storage.TempList) {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("bench: %s cardinality diverged: %d vs %d", what, a.Len(), b.Len()))
	}
	for i := 0; i < a.Len(); i++ {
		if storage.Compare(a.Value(i, 0), b.Value(i, 0)) != 0 {
			panic(fmt.Sprintf("bench: %s key order diverged at row %d: %v vs %v",
				what, i, a.Value(i, 0), b.Value(i, 0)))
		}
	}
}

// SortEngineSweep measures comparator-quicksort vs normalized-key radix
// substrates under sort-merge join and sort-scan DISTINCT.
func SortEngineSweep(env Env) []Series {
	rng := env.Rng()

	names := []string{"quicksort", "radix-key"}
	joinTime := Series{
		ID:     "sort-join-time",
		Title:  "Sort engine — sort-merge join, comparator vs normalized-key builds",
		XLabel: "cardinality per side",
		YLabel: "seconds",
		Names:  names,
	}
	joinAllocs := Series{
		ID:     "sort-join-allocs",
		Title:  "Sort engine — heap allocations per sort-merge join",
		XLabel: "cardinality per side",
		YLabel: "allocations",
		Names:  names,
	}
	for _, base := range []int{250000, 500000, 1000000} {
		n := env.N(base)
		inner, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: 0, Sigma: workload.NearUniform}, rng)
		if err != nil {
			panic(err)
		}
		outer, err := workload.BuildDerived(
			workload.Spec{Cardinality: n, DuplicatePct: 0, Sigma: workload.NearUniform}, inner, 100, rng)
		if err != nil {
			panic(err)
		}
		to := parallel.SliceSource(buildRelation("r1", outer.Values))
		ti := parallel.SliceSource(buildRelation("r2", inner.Values))
		// Column 0 of the output is the outer join key, so the merge
		// order is observable through sameKeySequence.
		quickSpec := exec.JoinSpec{
			OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0,
			Cols: []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
		}
		radixSpec := quickSpec
		radixSpec.SortMethod = plan.SortRadixKey

		var rq, rr *storage.TempList
		tq, aq := timeAllocs(func() { rq = exec.SortMergeJoin(to, ti, quickSpec) })
		tr, ar := timeAllocs(func() { rr = exec.SortMergeJoin(to, ti, radixSpec) })
		sameKeySequence("sort-merge join", rq, rr)
		label := fmt.Sprintf("%dk", n/1000)
		joinTime.Add(label, tq, tr)
		joinAllocs.Add(label, float64(aq), float64(ar))
		joinTime.Notes = append(joinTime.Notes,
			fmt.Sprintf("%s: radix-key %.2fx vs quicksort builds; %d rows out, identical join-key sequence asserted",
				label, tq/tr, rq.Len()))
	}

	distinctTime := Series{
		ID:     "sort-distinct-time",
		Title:  "Sort engine — DISTINCT by Sort Scan, comparator vs normalized-key",
		XLabel: "|R| (50% duplicates)",
		YLabel: "seconds",
		Names:  names,
	}
	distinctAllocs := Series{
		ID:     "sort-distinct-allocs",
		Title:  "Sort engine — heap allocations per Sort Scan DISTINCT",
		XLabel: "|R| (50% duplicates)",
		YLabel: "allocations",
		Names:  names,
	}
	for _, base := range []int{250000, 1000000} {
		n := env.N(base)
		col, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: 50, Sigma: workload.NearUniform}, rng)
		if err != nil {
			panic(err)
		}
		list := projectList(col.Values)
		var dq, dr *storage.TempList
		tq, aq := timeAllocs(func() { dq = exec.ProjectSortScan(list, nil) })
		tr, ar := timeAllocs(func() { dr = exec.ProjectSortScanRadix(list, nil) })
		sameKeySequence("sort-scan distinct", dq, dr)
		label := fmt.Sprintf("%dk", n/1000)
		distinctTime.Add(label, tq, tr)
		distinctAllocs.Add(label, float64(aq), float64(ar))
		distinctTime.Notes = append(distinctTime.Notes,
			fmt.Sprintf("%s @50%% dups: radix-key %.2fx vs comparator sort scan; %d distinct rows, identical output order asserted",
				label, tq/tr, dq.Len()))
	}

	joinTime.Notes = append(joinTime.Notes,
		"identical cardinality and column-0 key sequence asserted at every point",
		fmt.Sprintf("plan.ChooseSortMethod crossover: radix above %d rows (doubled past %d key bytes)",
			plan.DefaultSortMinRows, plan.DefaultSortPrefixBytes))
	distinctTime.Notes = append(distinctTime.Notes,
		"Sort Scan on both substrates; the paper's §3.4 hashing conclusion is unchanged under SortAuto")
	joinAllocs.Notes = []string{"minimum of warmed repetitions; pooled sorter scratch counts as zero once recycled"}
	distinctAllocs.Notes = joinAllocs.Notes
	return []Series{joinTime, joinAllocs, distinctTime, distinctAllocs}
}
