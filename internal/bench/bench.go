// Package bench regenerates every table and figure of the paper's
// evaluation (§3): the index study (Graphs 1-2, the storage-cost summary,
// Table 1), the duplicate-distribution curve (Graph 3), the six join tests
// (Graphs 4-9), the nested-loops baseline (Graph 10), the projection tests
// (Graphs 11-12), and ablations for the design choices the paper calls
// out. Absolute times differ from the 1986 VAX 11/750, but the shapes —
// who wins, by what factor, where the crossovers fall — are the
// reproduction target.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/storage"
)

// Env parameterizes an experiment run.
type Env struct {
	// Scale multiplies the paper's cardinalities (1.0 = 30,000-element
	// indices and full-size join relations).
	Scale float64
	// Seed drives all workload generation.
	Seed int64
	// Parallelism caps the worker sweep of the parallel experiments;
	// 0 sweeps up to GOMAXPROCS.
	Parallelism int
}

// N scales a paper cardinality, with a floor of 16.
func (e Env) N(base int) int {
	s := e.Scale
	if s <= 0 {
		s = 1
	}
	n := int(float64(base) * s)
	if n < 16 {
		n = 16
	}
	return n
}

// Rng returns the experiment's seeded random source.
func (e Env) Rng() *rand.Rand { return rand.New(rand.NewSource(e.Seed + 1)) }

// Point is one x position of a series with one y value per curve
// (NaN = not measured at this x).
type Point struct {
	X string
	Y []float64
}

// Series is one exhibit: a set of named curves over common x positions.
type Series struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Names  []string
	Points []Point
	Notes  []string
}

// Add appends a point.
func (s *Series) Add(x string, ys ...float64) {
	s.Points = append(s.Points, Point{X: x, Y: ys})
}

// Format renders the series as an aligned text table.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.ID, s.Title)
	fmt.Fprintf(&b, "  y: %s\n", s.YLabel)
	w := len(s.XLabel)
	for _, p := range s.Points {
		if len(p.X) > w {
			w = len(p.X)
		}
	}
	fmt.Fprintf(&b, "  %-*s", w+2, s.XLabel)
	for _, n := range s.Names {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "  %-*s", w+2, p.X)
		for i := range s.Names {
			v := math.NaN()
			if i < len(p.Y) {
				v = p.Y[i]
			}
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %14s", "-")
			} else {
				fmt.Fprintf(&b, " %14s", formatY(v))
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range s.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func formatY(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	case math.Abs(v) >= 0.001:
		return fmt.Sprintf("%.6f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// timeIt measures one execution of f in seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// timeBest measures f, repeating up to three times while runs stay under
// 100ms, and returns the fastest run.
func timeBest(f func()) float64 {
	best := timeIt(f)
	for rep := 0; rep < 2 && best < 0.1; rep++ {
		if t := timeIt(f); t < best {
			best = t
		}
	}
	return best
}

// intSchema is the single-column test relation layout: the indices hold
// tuple pointers and dereference this field, exactly the "main memory
// style" of §3.2.2.
func intSchema() *storage.Schema {
	return storage.MustSchema(storage.FieldDef{Name: "val", Type: storage.Int})
}

// buildRelation creates a relation holding the values and returns its
// tuples in insertion order.
func buildRelation(name string, values []int64) []*storage.Tuple {
	rel, err := storage.NewRelation(name, intSchema(), storage.Config{}, storage.NewIDGen())
	if err != nil {
		panic(err)
	}
	tuples := make([]*storage.Tuple, len(values))
	for i, v := range values {
		tp, err := rel.Insert([]storage.Value{storage.IntValue(v)})
		if err != nil {
			panic(err)
		}
		tuples[i] = tp
	}
	return tuples
}

// Experiment is a runnable exhibit reproduction.
type Experiment struct {
	ID      string
	Exhibit string // the paper's table/figure name
	Run     func(Env) []Series
}

// RunStats is the per-experiment metric snapshot the harness emits
// alongside each exhibit: wall time plus Go runtime deltas over the run.
// Experiments exercise raw index and operator structures (no Database),
// so runtime counters — allocations, bytes, GC cycles — are the
// engine-wide signal here; the per-operation §3.1 counters appear inside
// the series that use them.
type RunStats struct {
	Wall   time.Duration
	Allocs uint64 // heap objects allocated during the run
	Bytes  uint64 // bytes allocated during the run
	GCs    uint32 // GC cycles completed during the run
}

// String renders the snapshot as a compact single line.
func (s RunStats) String() string {
	return fmt.Sprintf("wall=%v allocs=%d bytes=%d gcs=%d",
		s.Wall.Round(time.Millisecond), s.Allocs, s.Bytes, s.GCs)
}

// Measure runs the experiment and captures its metric snapshot.
func Measure(e Experiment, env Env) ([]Series, RunStats) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	series := e.Run(env)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return series, RunStats{
		Wall:   wall,
		Allocs: after.Mallocs - before.Mallocs,
		Bytes:  after.TotalAlloc - before.TotalAlloc,
		GCs:    after.NumGC - before.NumGC,
	}
}

// CSV renders the series as comma-separated values for external plotting:
// a header of x plus curve names, then one line per point.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, n := range s.Names {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(n, ",", ";"))
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		b.WriteString(strings.ReplaceAll(p.X, ",", ";"))
		for i := range s.Names {
			b.WriteByte(',')
			if i < len(p.Y) && !math.IsNaN(p.Y[i]) {
				fmt.Fprintf(&b, "%g", p.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
