package bench

import (
	"math"
	"strings"
	"testing"
)

// tinyEnv keeps experiment smoke tests fast.
var tinyEnv = Env{Scale: 0.02, Seed: 7}

func TestEveryExperimentRunsAndFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke run")
	}
	seen := map[string]bool{}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			series := e.Run(tinyEnv)
			if len(series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range series {
				if seen[s.ID] {
					t.Fatalf("duplicate series ID %q", s.ID)
				}
				seen[s.ID] = true
				if len(s.Points) == 0 || len(s.Names) == 0 {
					t.Fatalf("series %s is empty", s.ID)
				}
				for _, p := range s.Points {
					if len(p.Y) != len(s.Names) {
						t.Fatalf("series %s point %q has %d values for %d names", s.ID, p.X, len(p.Y), len(s.Names))
					}
					for i, y := range p.Y {
						if math.IsNaN(y) || y < 0 {
							t.Fatalf("series %s point %q curve %s: bad y %v", s.ID, p.X, s.Names[i], y)
						}
					}
				}
				out := s.Format()
				if !strings.Contains(out, s.ID) {
					t.Fatalf("Format lacks the series ID:\n%s", out)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("graph4"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestEnvScaling(t *testing.T) {
	if (Env{Scale: 0.5}).N(30000) != 15000 {
		t.Fatal("scale not applied")
	}
	if (Env{}).N(30000) != 30000 {
		t.Fatal("zero scale should mean 1.0")
	}
	if (Env{Scale: 0.00001}).N(30000) != 16 {
		t.Fatal("floor not applied")
	}
}

// TestShapeGraph10NestedLoopsQuadratic verifies the baseline's defining
// property at a small but meaningful scale.
func TestShapeGraph10NestedLoopsQuadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shape test")
	}
	series := Graph10NestedLoops(Env{Scale: 0.2, Seed: 3})[0]
	first := series.Points[0].Y[0]
	last := series.Points[len(series.Points)-1].Y[0]
	// 20x the cardinality should cost far more than 20x the time for an
	// O(N²) algorithm; demand at least 40x to leave timing slack.
	if last < first*40 {
		t.Fatalf("nested loops not quadratic: %v -> %v", first, last)
	}
	// And hash join must beat nested loops at the largest point.
	if hash := series.Points[len(series.Points)-1].Y[1]; hash*10 > last {
		t.Fatalf("hash join (%v) not an order of magnitude under nested loops (%v)", hash, last)
	}
}

// TestShapeProjectionHashWins verifies the §3.4 headline at small scale.
func TestShapeProjectionHashWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shape test")
	}
	series := Graph11ProjectCardinality(Env{Scale: 0.3, Seed: 3})[0]
	last := series.Points[len(series.Points)-1]
	sortScan, hash := last.Y[0], last.Y[1]
	if hash > sortScan {
		t.Fatalf("hash (%v) slower than sort scan (%v) at the largest cardinality", hash, sortScan)
	}
}
