package bench

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/plan"
	"repro/internal/storage"
)

// The aggregation experiment is post-paper: the 1986 workload stops at
// select/join/project, but GROUP BY rides the same cache-conscious
// substrate the radix join established. Three shapes race over identical
// inputs:
//
//   - naive map: Go map keyed by the stringified group key, one boxed
//     state row per group — the straightforward implementation.
//   - flat table: one open-addressing table over pooled scratch.
//   - radix-partitioned: partition on the group-key hash first, then a
//     per-partition L2-resident table (plan.ChooseAggMethod's pick at
//     this scale).
//
// The group → finalized-value mapping is asserted identical across all
// three at every point — the fast paths must be observationally
// equivalent, not just fast. The top-k sweep races the bounded heap
// against the full sort for ORDER BY + LIMIT, asserting the heap's
// output is the exact sort prefix.

// aggWorkload builds a two-column (grp, val) relation wrapped in the
// temp-list shape the operator consumes.
func aggWorkload(env Env, n, groups int) *storage.TempList {
	rng := env.Rng()
	schema := storage.MustSchema(
		storage.FieldDef{Name: "grp", Type: storage.Int},
		storage.FieldDef{Name: "val", Type: storage.Int},
	)
	rel, err := storage.NewRelation("agg", schema, storage.Config{}, storage.NewIDGen())
	if err != nil {
		panic(err)
	}
	cols := []storage.ColRef{
		{Source: 0, Field: 0, Name: "grp"},
		{Source: 0, Field: 1, Name: "val"},
	}
	list := storage.MustTempListHint(storage.Descriptor{Sources: []string{"agg"}, Cols: cols}, n)
	for i := 0; i < n; i++ {
		val := storage.NullValue
		if rng.Intn(20) != 0 { // 5% NULL
			val = storage.IntValue(int64(rng.Intn(1 << 20)))
		}
		tp, err := rel.Insert([]storage.Value{storage.IntValue(int64(rng.Intn(groups))), val})
		if err != nil {
			panic(err)
		}
		list.AppendOne(tp)
	}
	return list
}

// sameAggResult panics unless two results carry the identical group →
// finalized-values mapping (group order legitimately differs between
// methods).
func sameAggResult(what string, list *storage.TempList, specs []agg.Spec, a, b agg.Result) {
	if a.Groups() != b.Groups() {
		panic(fmt.Sprintf("bench: %s group count diverged: %d vs %d", what, a.Groups(), b.Groups()))
	}
	key := func(r agg.Result, g int) int64 { return list.Value(int(r.Reps[g]), 0).Int() }
	bg := make(map[int64]int, b.Groups())
	for g := 0; g < b.Groups(); g++ {
		bg[key(b, g)] = g
	}
	for g := 0; g < a.Groups(); g++ {
		og, ok := bg[key(a, g)]
		if !ok {
			panic(fmt.Sprintf("bench: %s group %d missing from comparand", what, key(a, g)))
		}
		for s := range specs {
			av := agg.Final(specs[s].Kind, a.Cells[g*len(specs)+s])
			bv := agg.Final(specs[s].Kind, b.Cells[og*len(specs)+s])
			if storage.Compare(av, bv) != 0 {
				panic(fmt.Sprintf("bench: %s group %d spec %s diverged: %v vs %v",
					what, key(a, g), specs[s].Name, av, bv))
			}
		}
	}
}

// AggTopKSweep measures grouped aggregation (naive map vs flat table vs
// radix-partitioned) and ORDER BY + LIMIT (full sort vs bounded heap).
func AggTopKSweep(env Env) []Series {
	specs := []agg.Spec{
		{Kind: agg.Count, Col: -1, Name: "COUNT(*)"},
		{Kind: agg.Sum, Col: 1, Name: "SUM(val)"},
		{Kind: agg.Avg, Col: 1, Name: "AVG(val)"},
	}
	aggNames := []string{"naive map", "flat table", "radix-partitioned"}
	aggTime := Series{
		ID:     "agg-time",
		Title:  "GROUP BY — naive map vs flat table vs radix-partitioned hash agg",
		XLabel: "rows (groups)",
		YLabel: "seconds",
		Names:  aggNames,
	}
	aggAllocs := Series{
		ID:     "agg-allocs",
		Title:  "GROUP BY — heap allocations per aggregation (warm scratch)",
		XLabel: "rows (groups)",
		YLabel: "allocations",
		Names:  aggNames,
	}
	for _, c := range []struct{ base, groups int }{
		{250000, 1000},
		{1000000, 1000},
		{1000000, 100000},
	} {
		n := env.N(c.base)
		groups := c.groups
		if groups > n {
			groups = n
		}
		list := aggWorkload(env, n, groups)
		gcols := []int{0}
		var m meter.Counters

		var rNaive, rFlat, rRadix agg.Result
		tn, an := TimeAllocs(func() { rNaive = agg.NaiveMapAgg(list, gcols, specs, &m) })

		g := agg.Get()
		g.Run(list, gcols, specs, nil, &m) // warm the pooled scratch
		tf, af := TimeAllocs(func() { rFlat = g.Run(list, gcols, specs, nil, &m) })
		sameAggResult("flat vs naive", list, specs, rFlat, rNaive)

		method, bits := plan.ChooseAggMethod(n, plan.AggConfig{MinRows: 1})
		if method != plan.AggRadixPartitioned {
			panic("bench: forced partitioning not chosen")
		}
		g.Run(list, gcols, specs, bits, &m) // warm the partitioner pool
		tr, ar := TimeAllocs(func() { rRadix = g.Run(list, gcols, specs, bits, &m) })
		sameAggResult("radix vs naive", list, specs, rRadix, rNaive)
		agg.Put(g)

		label := fmt.Sprintf("%dk (%d)", n/1000, groups)
		aggTime.Add(label, tn, tf, tr)
		aggAllocs.Add(label, float64(an), float64(af), float64(ar))
		best := tf
		if tr < best {
			best = tr
		}
		aggTime.Notes = append(aggTime.Notes,
			fmt.Sprintf("%s: vectorized hash agg %.2fx vs naive map (flat %.2fx, radix %.2fx); identical group→value mapping asserted",
				label, tn/best, tn/tf, tn/tr))
		if env.Scale >= 1 && n >= 1000000 && tn/best < 2 {
			panic(fmt.Sprintf("bench: hash agg speedup %.2fx < 2x at %d rows — the vectorized path regressed", tn/best, n))
		}
		if af > 64 || ar > 64 {
			panic(fmt.Sprintf("bench: warm grouper allocated (flat %d, radix %d) — pooled scratch leak", af, ar))
		}
	}

	topkNames := []string{"full sort", "bounded heap"}
	topkTime := Series{
		ID:     "topk-time",
		Title:  "ORDER BY + LIMIT k — full radix-key sort vs bounded max-heap",
		XLabel: "rows (k)",
		YLabel: "seconds",
		Names:  topkNames,
	}
	for _, c := range []struct{ base, k int }{
		{1000000, 10},
		{1000000, 1000},
	} {
		n := env.N(c.base)
		list := aggWorkload(env, n, 1<<20)
		keys := []exec.OrderKey{{Col: 1, Desc: true}}
		var m meter.Counters
		var full, heap []int32
		ts, _ := TimeAllocs(func() { full = exec.OrderRows(list, keys, plan.SortRadixKey, &m) })
		th, _ := TimeAllocs(func() { heap = exec.TopKRows(list, keys, c.k, &m) })
		if len(heap) != c.k {
			panic(fmt.Sprintf("bench: top-k returned %d rows, want %d", len(heap), c.k))
		}
		for i := range heap {
			if heap[i] != full[i] {
				panic(fmt.Sprintf("bench: heap output diverges from sort prefix at %d: %d vs %d", i, heap[i], full[i]))
			}
		}
		label := fmt.Sprintf("%dk (k=%d)", n/1000, c.k)
		topkTime.Add(label, ts, th)
		topkTime.Notes = append(topkTime.Notes,
			fmt.Sprintf("%s: bounded heap %.2fx vs full sort; output asserted the exact sort prefix", label, ts/th))
	}

	return []Series{aggTime, aggAllocs, topkTime}
}
