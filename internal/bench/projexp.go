package bench

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/workload"
)

// The projection study (§3.4): duplicate elimination by Sort Scan vs
// Hashing over single-column relations. Results: hashing wins everywhere;
// duplicates make hashing faster (discarded on arrival) while sorting
// still sorts the whole list.

func projectList(values []int64) *storage.TempList {
	tuples := buildRelation("p", values)
	list := storage.MustTempList(storage.Descriptor{
		Sources: []string{"p"},
		Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
	})
	for _, tp := range tuples {
		list.Append(storage.Row{tp})
	}
	return list
}

// Graph11ProjectCardinality reproduces Project Test 1: vary |R| with no
// duplicates.
func Graph11ProjectCardinality(env Env) []Series {
	s := Series{
		ID:     "graph11",
		Title:  "Project Test 1 — Vary Cardinality (0% duplicates)",
		XLabel: "|R|",
		YLabel: "seconds",
		Names:  []string{"Sort Scan", "Hash"},
	}
	rng := env.Rng()
	for _, frac := range []float64{0.125, 0.25, 0.5, 0.75, 1.0} {
		n := env.N(int(30000 * frac))
		col, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: 0}, rng)
		if err != nil {
			panic(err)
		}
		list := projectList(col.Values)
		sortScan := timeIt(func() { exec.ProjectSortScan(list, nil) })
		hash := timeIt(func() { exec.ProjectHash(list, nil) })
		s.Add(fmt.Sprintf("%d", n), sortScan, hash)
	}
	s.Notes = append(s.Notes,
		"expected: hash linear (table always |R|/2 slots); sort scan O(|R| log |R|) and above hash everywhere")
	return []Series{s}
}

// Graph12ProjectDuplicates reproduces Project Test 2: |R| = 30,000 with a
// varying duplicate percentage (the distribution does not matter, §3.4).
func Graph12ProjectDuplicates(env Env) []Series {
	s := Series{
		ID:     "graph12",
		Title:  "Project Test 2 — Vary Duplicate Percentage (|R|=30k)",
		XLabel: "duplicate %",
		YLabel: "seconds",
		Names:  []string{"Sort Scan", "Hash"},
	}
	rng := env.Rng()
	n := env.N(30000)
	for _, dup := range []float64{0, 25, 50, 75, 100} {
		col, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: dup, Sigma: workload.NearUniform}, rng)
		if err != nil {
			panic(err)
		}
		list := projectList(col.Values)
		sortScan := timeIt(func() { exec.ProjectSortScan(list, nil) })
		hash := timeIt(func() { exec.ProjectHash(list, nil) })
		s.Add(fmt.Sprintf("%.0f%%", dup), sortScan, hash)
	}
	s.Notes = append(s.Notes,
		"expected: hash gets faster as duplicates rise (shorter chains); sort scan stays roughly flat,",
		"easing only slightly (insertion sort does less work on equal runs)")
	return []Series{s}
}
