package bench

import (
	"fmt"
	"runtime"

	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/storage"
	"repro/internal/workload"
)

// The parallel sweep is not a paper exhibit — the 1986 study is strictly
// single-threaded — but the modern counterpart of its question: once disk
// I/O is gone (the paper's premise) and the serial algorithms are
// CPU-bound, how much does partition-parallelism buy? The sweep runs the
// same ≥100k-tuple join serially and with the partition-parallel
// operators at increasing worker counts, verifying the result cardinality
// is identical at every point.

// parallelWorkerSweep yields the worker counts to sweep: 1 (the exact
// serial algorithms), doublings, and GOMAXPROCS.
func parallelWorkerSweep(max int) []int {
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	ws := []int{1}
	for w := 2; w < max; w *= 2 {
		ws = append(ws, w)
	}
	if max > 1 {
		ws = append(ws, max)
	}
	return ws
}

// ParallelJoinSweep measures serial vs partition-parallel execution of
// the hash and sort-merge joins over a keys/keys join, plus the parallel
// selection scan and duplicate-eliminating projection, at 1..GOMAXPROCS
// workers.
func ParallelJoinSweep(env Env) []Series {
	n := env.N(100000)
	rng := env.Rng()
	colOuter, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: 0, Sigma: workload.NearUniform}, rng)
	if err != nil {
		panic(err)
	}
	colInner, err := workload.BuildDerived(workload.Spec{Cardinality: n, DuplicatePct: 0, Sigma: workload.NearUniform}, colOuter, 100, rng)
	if err != nil {
		panic(err)
	}
	to := parallel.SliceSource(buildRelation("r1", colOuter.Values))
	ti := parallel.SliceSource(buildRelation("r2", colInner.Values))

	join := Series{
		ID:     "parallel-join",
		Title:  fmt.Sprintf("Parallel sweep — Hash and Sort Merge join (|R1| = |R2| = %d, keys)", n),
		XLabel: "workers",
		YLabel: "seconds",
		Names:  []string{"Hash Join", "Sort Merge"},
	}
	var rowsOut int
	spec := exec.JoinSpec{
		OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0,
		Discard: true, RowsOut: &rowsOut,
	}
	serialRows := -1
	check := func(method string, w int) {
		if serialRows == -1 {
			serialRows = rowsOut
		}
		if rowsOut != serialRows {
			panic(fmt.Sprintf("bench: %s at %d workers emitted %d rows, serial emitted %d",
				method, w, rowsOut, serialRows))
		}
	}
	for _, w := range parallelWorkerSweep(env.Parallelism) {
		w := w
		hash := timeBest(func() { parallel.HashJoin(to, ti, spec, w) })
		check("Hash Join", w)
		sortm := timeBest(func() { parallel.SortMergeJoin(to, ti, spec, w) })
		check("Sort Merge", w)
		join.Add(fmt.Sprintf("%d", w), hash, sortm)
	}
	join.Notes = append(join.Notes,
		"workers=1 is the paper's exact serial algorithm; identical result cardinality is asserted at every point",
		fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)))

	// Scan + distinct: the other two parallel operators over one relation.
	colDup, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: 80, Sigma: workload.Skewed}, rng)
	if err != nil {
		panic(err)
	}
	tuples := buildRelation("r3", colDup.Values)
	src := parallel.SliceSource(tuples)
	list := storage.MustTempList(storage.Descriptor{
		Sources: []string{"r3"},
		Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
	})
	for _, tp := range tuples {
		list.Append(storage.Row{tp})
	}
	selSpec := exec.SelectSpec{RelName: "r3", Schema: intSchema()}
	median := colDup.Values[len(colDup.Values)/2]
	pred := func(tp *storage.Tuple) bool { return tp.Field(0).Int() < median }

	unary := Series{
		ID:     "parallel-scan",
		Title:  fmt.Sprintf("Parallel sweep — selection scan and DISTINCT (|R| = %d, 80%% duplicates)", n),
		XLabel: "workers",
		YLabel: "seconds",
		Names:  []string{"Select Scan", "Project Hash"},
	}
	var scanRows, distinctRows int
	for _, w := range parallelWorkerSweep(env.Parallelism) {
		w := w
		var sl, dl *storage.TempList
		scan := timeBest(func() { sl = parallel.SelectScan(src, pred, selSpec, w) })
		proj := timeBest(func() { dl = parallel.ProjectHash(nil, list, nil, nil, w) })
		if w == 1 {
			scanRows, distinctRows = sl.Len(), dl.Len()
		} else if sl.Len() != scanRows || dl.Len() != distinctRows {
			panic(fmt.Sprintf("bench: parallel scan/distinct rows %d/%d, serial %d/%d",
				sl.Len(), dl.Len(), scanRows, distinctRows))
		}
		unary.Add(fmt.Sprintf("%d", w), scan, proj)
	}
	unary.Notes = append(unary.Notes,
		"DISTINCT output is bit-identical to the serial operator (same rows, same order)")
	return []Series{join, unary}
}
