package bench

import (
	"fmt"

	"repro/internal/workload"
)

// Graph3Distribution reproduces Graph 3: the cumulative distribution of
// duplicate values produced by the truncated-normal sampling procedure,
// for the three standard deviations the join tests use.
func Graph3Distribution(env Env) []Series {
	s := Series{
		ID:     "graph3",
		Title:  "Distribution of Duplicate Values (Graph 3)",
		XLabel: "percent of values (most frequent first)",
		YLabel: "percent of tuples covered",
		Names:  []string{"σ=0.1 (skewed)", "σ=0.4 (moderate)", "σ=0.8 (near-uniform)"},
	}
	const values, tuples, points = 100, 20000, 10
	curves := make([][]workload.CDFPoint, 0, 3)
	for _, sigma := range []float64{workload.Skewed, workload.Moderate, workload.NearUniform} {
		rng := env.Rng() // same seed per curve: only σ differs
		counts := workload.Occurrences(values, tuples, sigma, rng)
		curves = append(curves, workload.DuplicateCDF(counts, points))
	}
	for p := 0; p < points; p++ {
		s.Add(fmt.Sprintf("%.0f%%", curves[0][p].ValuePct),
			curves[0][p].TuplePct, curves[1][p].TuplePct, curves[2][p].TuplePct)
	}
	s.Notes = append(s.Notes,
		"expected: σ=0.1 steep (top 10% of values cover most tuples); σ=0.8 close to the diagonal")
	return []Series{s}
}
