package bench

import "fmt"

// All lists every reproducible exhibit in presentation order.
var All = []Experiment{
	{ID: "graph1", Exhibit: "Graph 1 — Index Search", Run: Graph1IndexSearch},
	{ID: "graph2", Exhibit: "Graph 2 — Query Mix (60/20/20, 80/10/10, 40/30/30)", Run: Graph2QueryMix},
	{ID: "storage", Exhibit: "§3.2.2 — Storage Cost summary", Run: StorageCost},
	{ID: "table1", Exhibit: "Table 1 — Index Study Results", Run: Table1},
	{ID: "graph3", Exhibit: "Graph 3 — Distribution of Duplicate Values", Run: Graph3Distribution},
	{ID: "graph4", Exhibit: "Graph 4 — Join Test 1: Vary Cardinality", Run: Graph4VaryCardinality},
	{ID: "graph5", Exhibit: "Graph 5 — Join Test 2: Vary Inner Cardinality", Run: Graph5VaryInner},
	{ID: "graph6", Exhibit: "Graph 6 — Join Test 3: Vary Outer Cardinality", Run: Graph6VaryOuter},
	{ID: "graph7", Exhibit: "Graph 7 — Join Test 4: Vary Duplicates (skewed)", Run: Graph7DupSkewed},
	{ID: "graph8", Exhibit: "Graph 8 — Join Test 5: Vary Duplicates (uniform)", Run: Graph8DupUniform},
	{ID: "graph9", Exhibit: "Graph 9 — Join Test 6: Vary Semijoin Selectivity", Run: Graph9Semijoin},
	{ID: "graph10", Exhibit: "Graph 10 — Nested Loops Join", Run: Graph10NestedLoops},
	{ID: "graph11", Exhibit: "Graph 11 — Project Test 1: Vary Cardinality", Run: Graph11ProjectCardinality},
	{ID: "graph12", Exhibit: "Graph 12 — Project Test 2: Vary Duplicate Percentage", Run: Graph12ProjectDuplicates},
	{ID: "ablation-cutoff", Exhibit: "Ablation — insertion-sort cutoff", Run: AblationSortCutoff},
	{ID: "ablation-ttree-gap", Exhibit: "Ablation — T Tree occupancy gap", Run: AblationTTreeGap},
	{ID: "ablation-build", Exhibit: "Ablation — join index build costs", Run: AblationJoinBuild},
	{ID: "ablation-ptrjoin", Exhibit: "Ablation — pointer vs value foreign keys", Run: AblationPointerJoin},
	{ID: "parallel", Exhibit: "Extension — partition-parallel operator sweep", Run: ParallelJoinSweep},
	{ID: "batch", Exhibit: "Extension — tuple-at-a-time vs batch-at-a-time execution", Run: BatchExecution},
	{ID: "radix", Exhibit: "Extension — chained vs cache-conscious radix hash join", Run: RadixJoinSweep},
	{ID: "sort", Exhibit: "Extension — comparator vs normalized-key radix sort engine", Run: SortEngineSweep},
	{ID: "agg", Exhibit: "Extension — grouped aggregation and top-k on the radix substrate", Run: AggTopKSweep},
}

// Register adds an experiment to All. Experiments that exercise the
// public Database API live outside this package (the engine's own tests
// import it, so importing the root here would cycle) and plug in at
// init time — see internal/obsbench.
func Register(e Experiment) { All = append(All, e) }

// ByID resolves an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
