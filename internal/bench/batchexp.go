package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/storage"
	"repro/internal/tupleindex"
	"repro/internal/workload"
)

// The batch experiment is not a paper exhibit: the 1986 study predates
// cache-conscious block iteration. It quantifies what the batch-at-a-time
// layer buys over the tuple-at-a-time loops the operators originally ran:
// the same selection scan and hash join are executed (a) with a per-tuple
// callback and a per-row storage.Row header allocation — the original hot
// path — and (b) through the TupleBatch block interfaces with arena-backed
// temp lists. Result cardinality is asserted identical at every point; the
// series report wall time and heap allocations per run.

// timeAllocs measures one execution of f: seconds and heap objects
// allocated. Every measurement runs three repetitions behind a fresh GC
// (so no variant pays collection debt left by the previous one) and keeps
// the minimum of each metric — pools and caches warm up on the first
// repetition, which is the steady state the engine runs in.
func timeAllocs(f func()) (float64, uint64) { return TimeAllocs(f) }

// TimeAllocs is timeAllocs for plug-in experiment packages (see
// Register).
func TimeAllocs(f func()) (float64, uint64) {
	var best float64
	var bestAllocs uint64
	for rep := 0; rep < 3; rep++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		f()
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		allocs := after.Mallocs - before.Mallocs
		if rep == 0 || secs < best {
			best = secs
		}
		if rep == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	return best, bestAllocs
}

// tupleAtATimeSelect is the pre-batch selection scan: one callback per
// tuple and one retained storage.Row header per surviving row — the
// original operator loop over the original []Row temp-list layout (each
// Append kept the row slice, so every row was a heap object and the
// backing slice regrow-copied as it filled).
func tupleAtATimeSelect(src exec.Source, pred func(*storage.Tuple) bool) []storage.Row {
	var rows []storage.Row
	src.Scan(func(t *storage.Tuple) bool {
		if pred(t) {
			rows = append(rows, storage.Row{t})
		}
		return true
	})
	return rows
}

// tupleAtATimeHashJoin is the pre-batch hash join: per-tuple build
// inserts, a per-probe SearchKeyAll callback chain, and a retained
// two-pointer storage.Row header per match, into the original []Row
// temp-list layout.
func tupleAtATimeHashJoin(outer, inner exec.Source, fo, fi int) []storage.Row {
	tbl := tupleindex.NewChainHash(tupleindex.Options{Field: fi, Capacity: inner.Len()})
	inner.Scan(func(t *storage.Tuple) bool {
		tbl.Insert(t)
		return true
	})
	var rows []storage.Row
	outer.Scan(func(o *storage.Tuple) bool {
		ko := tupleindex.KeyOf(o, fo)
		tbl.SearchKeyAll(storage.Hash(ko), func(i *storage.Tuple) bool {
			return storage.Equal(tupleindex.KeyOf(i, fi), ko)
		}, func(i *storage.Tuple) bool {
			rows = append(rows, storage.Row{o, i})
			return true
		})
		return true
	})
	return rows
}

// BatchExecution measures tuple-at-a-time vs batch-at-a-time execution of
// the selection scan (~50% selectivity) and the chained-bucket hash join,
// asserting identical result cardinality for every pair.
func BatchExecution(env Env) []Series {
	n := env.N(100000)
	rng := env.Rng()
	colOuter, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: 0, Sigma: workload.NearUniform}, rng)
	if err != nil {
		panic(err)
	}
	colInner, err := workload.BuildDerived(workload.Spec{Cardinality: n, DuplicatePct: 0, Sigma: workload.NearUniform}, colOuter, 100, rng)
	if err != nil {
		panic(err)
	}
	to := parallel.SliceSource(buildRelation("r1", colOuter.Values))
	ti := parallel.SliceSource(buildRelation("r2", colInner.Values))

	timeSeries := Series{
		ID:     "batch-time",
		Title:  fmt.Sprintf("Batch layer — tuple-at-a-time vs batched execution (|R| = %d)", n),
		XLabel: "operator",
		YLabel: "seconds",
		Names:  []string{"tuple-at-a-time", "batched"},
	}
	allocSeries := Series{
		ID:     "batch-allocs",
		Title:  fmt.Sprintf("Batch layer — heap allocations per run (|R| = %d)", n),
		XLabel: "operator",
		YLabel: "allocations",
		Names:  []string{"tuple-at-a-time", "batched"},
	}

	// Selection: sequential scan at ~50% selectivity.
	median := colOuter.Values[len(colOuter.Values)/2]
	pred := func(tp *storage.Tuple) bool { return tp.Field(0).Int() < median }
	selSpec := exec.SelectSpec{RelName: "r1", Schema: intSchema()}
	var rowsA, rowsB int
	selRow, selRowAllocs := timeAllocs(func() {
		rowsA = len(tupleAtATimeSelect(to, pred))
	})
	selBatch, selBatchAllocs := timeAllocs(func() {
		rowsB = exec.SelectScan(to, pred, selSpec).Len()
	})
	if rowsA != rowsB {
		panic(fmt.Sprintf("bench: batched select emitted %d rows, tuple-at-a-time emitted %d", rowsB, rowsA))
	}
	timeSeries.Add("select scan (~50%)", selRow, selBatch)
	allocSeries.Add("select scan (~50%)", float64(selRowAllocs), float64(selBatchAllocs))

	// Hash join: build over the inner, probe with the outer.
	joinSpec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	joinRow, joinRowAllocs := timeAllocs(func() {
		rowsA = len(tupleAtATimeHashJoin(to, ti, 0, 0))
	})
	joinBatch, joinBatchAllocs := timeAllocs(func() {
		rowsB = exec.HashJoin(to, ti, joinSpec).Len()
	})
	if rowsA != rowsB {
		panic(fmt.Sprintf("bench: batched hash join emitted %d rows, tuple-at-a-time emitted %d", rowsB, rowsA))
	}
	timeSeries.Add("hash join", joinRow, joinBatch)
	allocSeries.Add("hash join", float64(joinRowAllocs), float64(joinBatchAllocs))

	note := func(op string, tRow, tBatch float64, aRow, aBatch uint64) string {
		speedup := 0.0
		if tBatch > 0 {
			speedup = (tRow/tBatch - 1) * 100
		}
		drop := 0.0
		if aRow > 0 {
			drop = (1 - float64(aBatch)/float64(aRow)) * 100
		}
		return fmt.Sprintf("%s: %+.0f%% throughput, %.0f%% fewer allocations (batched vs tuple-at-a-time)",
			op, speedup, drop)
	}
	notes := []string{
		note("select scan", selRow, selBatch, selRowAllocs, selBatchAllocs),
		note("hash join", joinRow, joinBatch, joinRowAllocs, joinBatchAllocs),
		"identical result cardinality asserted for every operator pair",
	}
	timeSeries.Notes = notes
	allocSeries.Notes = []string{"minimum of warmed repetitions; pools count as zero once recycled"}
	return []Series{timeSeries, allocSeries}
}
