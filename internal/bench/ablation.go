package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/index/ttree"
	"repro/internal/meter"
	"repro/internal/sortutil"
	"repro/internal/storage"
	"repro/internal/tupleindex"
	"repro/internal/workload"
)

// Ablations for the design choices the paper asserts but does not plot.

// AblationSortCutoff sweeps the quicksort→insertion-sort cutoff; the paper
// measured 10 to be optimal (footnote 5 of §3.3.2).
func AblationSortCutoff(env Env) []Series {
	s := Series{
		ID:     "ablation-cutoff",
		Title:  "Ablation — quicksort insertion-sort cutoff (paper optimum: 10)",
		XLabel: "cutoff",
		YLabel: "seconds to sort",
		Names:  []string{"random", "50% dups"},
	}
	n := env.N(30000)
	rng := env.Rng()
	random := make([]int64, n)
	for i := range random {
		random[i] = rng.Int63()
	}
	dups, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: 50, Sigma: workload.NearUniform}, rng)
	if err != nil {
		panic(err)
	}
	cmp := func(a, b int64) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	for _, cutoff := range []int{1, 2, 5, 8, 10, 15, 25, 50, 100} {
		var ys []float64
		for _, base := range [][]int64{random, dups.Values} {
			work := make([]int64, len(base))
			// Average several runs: single sorts are fast enough to jitter.
			const reps = 3
			total := 0.0
			for r := 0; r < reps; r++ {
				copy(work, base)
				total += timeIt(func() { sortutil.SortCutoff(work, cmp, cutoff, nil) })
			}
			ys = append(ys, total/reps)
		}
		s.Add(fmt.Sprintf("%d", cutoff), ys...)
	}
	s.Notes = append(s.Notes, "expected: shallow bowl with the minimum near 10")
	return []Series{s}
}

// AblationTTreeGap sweeps the T Tree's min/max occupancy gap. The paper:
// a gap "on the order of one or two items ... turns out to be enough to
// significantly reduce the need for tree rotations" under mixed
// insert/delete load.
func AblationTTreeGap(env Env) []Series {
	s := Series{
		ID:     "ablation-ttree-gap",
		Title:  "Ablation — T Tree min/max occupancy gap (node size 30)",
		XLabel: "gap (max - min count)",
		YLabel: "seconds | rotations | GLB moves",
		Names:  []string{"mix seconds", "rotations", "data moves"},
	}
	n := env.N(30000)
	pool := studyTuples(env, 2*n)
	for _, gap := range []int{0, 1, 2, 4, 8, 16} {
		var m meter.Counters
		cfg := tupleindex.Config(tupleindex.Options{Field: 0, Unique: true, NodeSize: 30, Meter: &m})
		tr := ttree.NewWithGap(cfg, gap)
		for _, tp := range pool[:n] {
			tr.Insert(tp)
		}
		m.Reset()
		live := append([]*storage.Tuple(nil), pool[:n]...)
		next := n
		rng := rand.New(rand.NewSource(env.Seed + 7))
		sec := timeIt(func() {
			for op := 0; op < n; op++ {
				// Insert/delete-heavy mix: the rotation-sensitive case.
				if rng.Intn(2) == 0 && next < len(pool) {
					tr.Insert(pool[next])
					live = append(live, pool[next])
					next++
				} else if len(live) > 0 {
					i := rng.Intn(len(live))
					tr.Delete(live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		})
		s.Add(fmt.Sprintf("%d", gap), sec, float64(m.Rotations), float64(m.DataMoves))
	}
	s.Notes = append(s.Notes, "expected: rotations drop sharply from gap 0 to gap 1-2, then flatten")
	return []Series{s}
}

// AblationJoinBuild settles §3.3.2's claim that building tree indices for
// a join is never worthwhile: each method's cost with and without its
// index build included.
func AblationJoinBuild(env Env) []Series {
	s := Series{
		ID:     "ablation-build",
		Title:  "Ablation — join cost with index build included (|R1|=|R2|, keys)",
		XLabel: "|R|",
		YLabel: "seconds",
		Names: []string{
			"Tree Merge (exists)", "Tree Merge + build", "Tree Join (exists)",
			"Tree Join + build", "Hash Join (incl build)", "Sort Merge (incl build)",
		},
	}
	rng := env.Rng()
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		n := env.N(int(30000 * frac))
		p := prepareJoin(joinCase{nOuter: n, nInner: n, sigma: workload.NearUniform, semijoin: 100}, rng)
		spec := p.spec(false)
		so := exec.OrderedScan{Index: p.outer}
		si := exec.OrderedScan{Index: p.inner}

		buildTree := func(src exec.Source) *ttree.Tree[*storage.Tuple] {
			tr := tupleindex.NewTTree(tupleindex.Options{Field: 0})
			src.Scan(func(tp *storage.Tuple) bool { tr.Insert(tp); return true })
			return tr
		}
		tmExist := timeIt(func() { exec.TreeMergeJoin(p.outerTree, p.innerTree, spec) })
		tmBuild := timeIt(func() {
			exec.TreeMergeJoin(buildTree(so), buildTree(si), spec)
		})
		tjExist := timeIt(func() { exec.TreeJoin(so, p.innerTree, spec) })
		tjBuild := timeIt(func() { exec.TreeJoin(so, buildTree(si), spec) })
		hash := timeIt(func() { exec.HashJoin(so, si, spec) })
		sortm := timeIt(func() { exec.SortMergeJoin(so, si, spec) })
		s.Add(fmt.Sprintf("%d", n), tmExist, tmBuild, tjExist, tjBuild, hash, sortm)
	}
	s.Notes = append(s.Notes,
		"expected: with build costs included the tree methods lose to Hash Join — \"a Tree Join will",
		"always cost more than a Hash Join\" if the tree must be built")
	return []Series{s}
}

// AblationPointerJoin quantifies §2.1's pointer substitution: Query 2's
// join comparing tuple pointers versus the same join comparing string
// foreign-key values ("a significant cost savings if the join columns
// were string values").
func AblationPointerJoin(env Env) []Series {
	s := Series{
		ID:     "ablation-ptrjoin",
		Title:  "Ablation — foreign keys as tuple pointers vs data values (§2.1)",
		XLabel: "|emp|",
		YLabel: "seconds",
		Names:  []string{"string-value Hash Join", "int-value Hash Join", "pointer Hash Join", "precomputed"},
	}
	rng := env.Rng()
	nDept := 1000
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		nEmp := env.N(int(30000 * frac))
		deptSchema := storage.MustSchema(
			storage.FieldDef{Name: "name", Type: storage.Str},
			storage.FieldDef{Name: "id", Type: storage.Int},
		)
		empSchema := storage.MustSchema(
			storage.FieldDef{Name: "dept_name", Type: storage.Str}, // string FK value
			storage.FieldDef{Name: "dept_id", Type: storage.Int},   // int FK value
			storage.FieldDef{Name: "dept", Type: storage.Ref, ForeignKey: "dept"},
		)
		ids := storage.NewIDGen()
		dept, _ := storage.NewRelation("dept", deptSchema, storage.Config{}, ids)
		emp, _ := storage.NewRelation("emp", empSchema, storage.Config{}, ids)
		deptTuples := make([]*storage.Tuple, 0, nDept)
		for i := 0; i < nDept; i++ {
			// Long-ish names: the string-compare penalty the paper means.
			name := fmt.Sprintf("department-of-%032d", i)
			tp, _ := dept.Insert([]storage.Value{storage.StringValue(name), storage.IntValue(int64(i))})
			deptTuples = append(deptTuples, tp)
		}
		empTuples := make([]*storage.Tuple, 0, nEmp)
		for i := 0; i < nEmp; i++ {
			d := deptTuples[rng.Intn(nDept)]
			tp, _ := emp.Insert([]storage.Value{d.Field(0), d.Field(1), storage.RefValue(d)})
			empTuples = append(empTuples, tp)
		}
		empArr := exec.OrderedScan{Index: tupleindex.BuildArray(tupleindex.Options{Field: 1}, empTuples)}
		deptArr := exec.OrderedScan{Index: tupleindex.BuildArray(tupleindex.Options{Field: 1}, deptTuples)}

		base := exec.JoinSpec{OuterName: "emp", InnerName: "dept"}
		str := base
		str.OuterField, str.InnerField = 0, 0
		byString := timeIt(func() { exec.HashJoin(empArr, deptArr, str) })
		intg := base
		intg.OuterField, intg.InnerField = 1, 1
		byInt := timeIt(func() { exec.HashJoin(empArr, deptArr, intg) })
		ptr := base
		ptr.OuterField, ptr.InnerField = 2, tupleindex.SelfField
		byPtr := timeIt(func() { exec.HashJoin(empArr, deptArr, ptr) })
		pre := base
		pre.OuterField, pre.InnerField = 2, tupleindex.SelfField
		byPre := timeIt(func() { exec.PrecomputedJoin(empArr, 2, pre) })
		s.Add(fmt.Sprintf("%d", nEmp), byString, byInt, byPtr, byPre)
	}
	s.Notes = append(s.Notes,
		"expected: precomputed < pointer <= int < string; the precomputed join does no comparisons at all")
	return []Series{s}
}

var _ = index.PaperModel // keep the import for the doc links above
