package recovery

import (
	"fmt"
	"os"

	"repro/internal/storage"
)

// Restart rebuilds an in-memory database after a crash. Per §2.4, "each
// partition that participates in the working set is read from the disk
// copy of the database; the log device is checked for any updates to that
// partition that have not yet been propagated to the disk copy; any
// updates that exist are merged with the partition on the fly". Once the
// working set is in, the rest of the database is read by a background
// process while normal operation resumes.
type Restart struct {
	mgr    *Manager
	loader *storage.Loader
	rels   map[string]*storage.Relation
	loaded map[PartKey]bool
}

// NewRestart begins recovery into the given (empty) relations; their
// schemas must match the crashed database.
func (m *Manager) NewRestart(rels ...*storage.Relation) *Restart {
	r := &Restart{
		mgr:    m,
		loader: storage.NewLoader(rels...),
		rels:   make(map[string]*storage.Relation, len(rels)),
		loaded: make(map[PartKey]bool),
	}
	for _, rel := range rels {
		r.rels[rel.Name()] = rel
	}
	return r
}

// LoadPartition brings one partition into memory: disk image plus any
// unpropagated change-accumulation records merged on the fly.
func (r *Restart) LoadPartition(k PartKey) error {
	if r.loaded[k] {
		return nil
	}
	if _, ok := r.rels[k.Rel]; !ok {
		return fmt.Errorf("recovery: restart has no relation %q", k.Rel)
	}
	img, err := r.readImage(k)
	if err != nil {
		return err
	}
	for _, rec := range r.mgr.records(k, img.LSN) {
		applyToImage(&img, rec)
		if rec.LSN > img.LSN {
			img.LSN = rec.LSN
		}
	}
	if err := r.loader.LoadPartition(img); err != nil {
		return err
	}
	r.loaded[k] = true
	return nil
}

func (r *Restart) readImage(k PartKey) (storage.PartitionImage, error) {
	data, err := os.ReadFile(r.mgr.imagePath(k))
	if os.IsNotExist(err) {
		// Partition created after the last checkpoint: replay starts from
		// an empty image.
		return storage.PartitionImage{Relation: k.Rel, PartID: k.Part}, nil
	}
	if err != nil {
		return storage.PartitionImage{}, fmt.Errorf("recovery: %w", err)
	}
	return storage.DecodePartition(data)
}

// applyToImage folds one log record into a partition image. An update or
// delete whose tuple is absent is skipped: the tuple was physically moved
// to another partition after the record was routed, and that partition's
// image (checkpointed after the move, hence after this record) already
// reflects the change.
func applyToImage(img *storage.PartitionImage, rec *Record) {
	switch rec.Op {
	case OpInsert:
		img.Tuples = append(img.Tuples, storage.TupleImage{ID: rec.Tuple, Vals: rec.Vals})
	case OpUpdate:
		for i := range img.Tuples {
			if img.Tuples[i].ID == rec.Tuple {
				img.Tuples[i].Vals[rec.Field] = rec.Vals[0]
				return
			}
		}
	case OpDelete:
		for i := range img.Tuples {
			if img.Tuples[i].ID == rec.Tuple {
				img.Tuples = append(img.Tuples[:i], img.Tuples[i+1:]...)
				return
			}
		}
	}
}

// AllPartitions lists every partition recovery knows about: disk images
// plus partitions that exist only in the change-accumulation log.
func (r *Restart) AllPartitions() ([]PartKey, error) {
	keys, err := r.mgr.DiskPartitions()
	if err != nil {
		return nil, err
	}
	seen := make(map[PartKey]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	r.mgr.mu.Lock()
	for k := range r.mgr.cal {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	r.mgr.mu.Unlock()
	return keys, nil
}

// LoadWorkingSet loads the named partitions — the first phase of restart,
// after which the current transactions' data is available.
func (r *Restart) LoadWorkingSet(keys []PartKey) error {
	for _, k := range keys {
		if err := r.LoadPartition(k); err != nil {
			return err
		}
	}
	return nil
}

// LoadRemaining loads every partition not yet in memory — the background
// phase of restart.
func (r *Restart) LoadRemaining() error {
	keys, err := r.AllPartitions()
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := r.LoadPartition(k); err != nil {
			return err
		}
	}
	return nil
}

// LoadRemainingAsync runs LoadRemaining followed by Finish in a background
// goroutine, mirroring the paper's "remainder of the database is read in
// by a background process"; the result arrives on the returned channel.
func (r *Restart) LoadRemainingAsync() <-chan error {
	done := make(chan error, 1)
	go func() {
		if err := r.LoadRemaining(); err != nil {
			done <- err
			return
		}
		done <- r.Finish()
	}()
	return done
}

// Finish resolves tuple-pointer (foreign key) fields once every partition
// holding referenced tuples is in memory. Call after the final load phase.
func (r *Restart) Finish() error {
	return r.loader.Finish()
}

// Loaded reports whether partition k is in memory yet.
func (r *Restart) Loaded(k PartKey) bool { return r.loaded[k] }
