// Package recovery implements the MM-DBMS recovery architecture of §2.4
// and Figure 2: a stable log buffer that receives all log information
// before the in-memory update, an active log device that folds committed
// updates into a change-accumulation log and lazily maintains a disk copy
// of the database (one file per partition — the unit of recovery), and a
// two-phase restart that brings the working set into memory first (merging
// unpropagated log records on the fly) while a background process reloads
// the rest.
//
// The 1986 proposal assumes a battery-backed stable buffer and a hardware
// log device. Here both are simulated: the Manager object *is* the stable
// hardware — a crash is modeled by discarding every in-memory relation
// while keeping the Manager and the disk-copy directory, then recovering
// into fresh relations.
package recovery

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/storage"
)

// RecOp is a log record's operation type.
type RecOp uint8

// Log operations.
const (
	OpInsert RecOp = iota
	OpUpdate
	OpDelete
)

// Record is one logical log record. Ref values are carried as tuple IDs
// (swizzled on replay).
type Record struct {
	LSN   uint64
	Txn   uint64
	Op    RecOp
	Rel   string
	Part  int    // routing: the partition holding the tuple at commit time
	Tuple uint64 // tuple ID
	Field int    // OpUpdate: which field
	Vals  []storage.ValueImage
}

// PartKey names one partition of one relation.
type PartKey struct {
	Rel  string
	Part int
}

// Observer receives log-traffic events. The obs registry implements it;
// the interface lives here so the recovery layer does not depend on the
// metrics layer. Implementations must be safe for concurrent use.
type Observer interface {
	// LogAppend reports one record written into the stable log buffer and
	// its approximate size in 4-byte words — the unit the paper budgets
	// log bandwidth in.
	LogAppend(words int)
	// LogFlush reports one commit releasing n records to the active log
	// device (the change-accumulation log).
	LogFlush(records int)
}

// Words estimates the record's stable-buffer footprint in 4-byte words:
// a fixed header (LSN, transaction, op/field, partition, tuple ID) plus
// each value image's tag and payload.
func (r *Record) Words() int {
	w := 8
	for _, v := range r.Vals {
		w += 3 + (len(v.Str)+3)/4
	}
	return w
}

// Manager is the stable log buffer plus the active log device's state.
type Manager struct {
	dir string

	mu      sync.Mutex
	nextLSN uint64
	// stable holds each running transaction's records — the stable log
	// buffer. "If the transaction aborts, then the log entry is removed
	// and no undo is needed."
	stable map[uint64][]*Record
	// cal is the change-accumulation log: committed records not yet
	// reflected in the disk-copy partition images, keyed by partition.
	cal map[PartKey][]*Record
	obs Observer
}

// SetObserver wires the metrics observer. Pass nil to disable. May be
// called at any time; events in flight may use the previous observer.
func (m *Manager) SetObserver(o Observer) {
	m.mu.Lock()
	m.obs = o
	m.mu.Unlock()
}

// NewManager creates a manager whose disk copy lives under dir.
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	return &Manager{
		dir:    dir,
		stable: make(map[uint64][]*Record),
		cal:    make(map[PartKey][]*Record),
	}, nil
}

// Dir returns the disk-copy directory.
func (m *Manager) Dir() string { return m.dir }

// Append writes a record into the stable log buffer for txn, assigning its
// LSN. Per §2.4 this happens before the actual update is applied to the
// in-memory database. The returned record's Part may be patched by the
// caller once placement is known (routing metadata, not payload).
func (m *Manager) Append(txn uint64, rec Record) *Record {
	m.mu.Lock()
	m.nextLSN++
	rec.LSN = m.nextLSN
	rec.Txn = txn
	r := &rec
	m.stable[txn] = append(m.stable[txn], r)
	obs := m.obs
	m.mu.Unlock()
	if obs != nil {
		obs.LogAppend(r.Words())
	}
	return r
}

// Abort discards txn's log entries; no undo is needed because updates are
// deferred until commit.
func (m *Manager) Abort(txn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.stable, txn)
}

// Commit releases txn's records to the log device: they move from the
// stable buffer into the change-accumulation log, from which they will be
// propagated to the disk copy.
func (m *Manager) Commit(txn uint64) {
	m.mu.Lock()
	released := len(m.stable[txn])
	for _, r := range m.stable[txn] {
		k := PartKey{Rel: r.Rel, Part: r.Part}
		m.cal[k] = append(m.cal[k], r)
	}
	delete(m.stable, txn)
	obs := m.obs
	m.mu.Unlock()
	if obs != nil {
		obs.LogFlush(released)
	}
}

// PendingRecords returns how many committed records await propagation.
func (m *Manager) PendingRecords() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, rs := range m.cal {
		n += len(rs)
	}
	return n
}

func (m *Manager) imagePath(k PartKey) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s.%06d.img", k.Rel, k.Part))
}

// Checkpoint writes every partition of the given relations to the disk
// copy and prunes change-accumulation records the images now cover.
func (m *Manager) Checkpoint(rels ...*storage.Relation) error {
	m.mu.Lock()
	lsn := m.nextLSN
	m.mu.Unlock()
	for _, rel := range rels {
		for _, p := range rel.Partitions() {
			p.SetLSN(lsn)
			img := p.Snapshot()
			k := PartKey{Rel: rel.Name(), Part: p.ID()}
			if err := writeFileAtomic(m.imagePath(k), storage.EncodePartition(img)); err != nil {
				return err
			}
			m.prune(k, lsn)
		}
	}
	return nil
}

func (m *Manager) prune(k PartKey, lsn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.cal[k]
	kept := rs[:0]
	for _, r := range rs {
		if r.LSN > lsn {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(m.cal, k)
	} else {
		m.cal[k] = kept
	}
}

// records returns a copy of the unpropagated records for k with LSN above
// the floor, in LSN order.
func (m *Manager) records(k PartKey, floor uint64) []*Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Record
	for _, r := range m.cal[k] {
		if r.LSN > floor {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out
}

// DiskPartitions lists the partitions present in the disk copy.
func (m *Manager) DiskPartitions() ([]PartKey, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	var out []PartKey
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".img" {
			continue
		}
		var k PartKey
		base := name[:len(name)-len(".img")]
		if n, err := fmt.Sscanf(base[len(base)-6:], "%d", &k.Part); n != 1 || err != nil {
			continue
		}
		k.Rel = base[:len(base)-7] // strip ".NNNNNN"
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Part < out[j].Part
	})
	return out, nil
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	return nil
}
