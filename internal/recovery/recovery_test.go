package recovery_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lock"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
)

// harness builds the Employee/Department schema pair used throughout.
func schemas(t testing.TB, ids *storage.IDGen) (emp, dept *storage.Relation) {
	t.Helper()
	deptSchema := storage.MustSchema(
		storage.FieldDef{Name: "name", Type: storage.Str},
		storage.FieldDef{Name: "id", Type: storage.Int},
	)
	empSchema := storage.MustSchema(
		storage.FieldDef{Name: "name", Type: storage.Str},
		storage.FieldDef{Name: "age", Type: storage.Int},
		storage.FieldDef{Name: "dept", Type: storage.Ref, ForeignKey: "dept"},
	)
	var err error
	if dept, err = storage.NewRelation("dept", deptSchema, storage.Config{SlotsPerPartition: 4}, ids); err != nil {
		t.Fatal(err)
	}
	if emp, err = storage.NewRelation("emp", empSchema, storage.Config{SlotsPerPartition: 4}, ids); err != nil {
		t.Fatal(err)
	}
	return emp, dept
}

// snapshot collects relation contents as name -> row strings for
// comparison across a crash.
func snapshot(rel *storage.Relation) map[string]bool {
	out := map[string]bool{}
	rel.ScanPhysical(func(tp *storage.Tuple) bool {
		row := fmt.Sprintf("%d", tp.ID())
		for i := 0; i < tp.Arity(); i++ {
			v := tp.Field(i)
			if !v.IsNull() && v.Type() == storage.Ref {
				row += fmt.Sprintf("|ref:%d", v.Ref().ID())
			} else {
				row += "|" + v.String()
			}
		}
		out[row] = true
		return true
	})
	return out
}

func sameSnapshot(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestCrashRecoveryFullCycle(t *testing.T) {
	dir := t.TempDir()
	log, err := recovery.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := storage.NewIDGen()
	emp, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)

	// Transaction 1: departments.
	t1 := tm.Begin()
	for _, d := range []struct {
		name string
		id   int64
	}{{"Toy", 459}, {"Shoe", 409}, {"Linen", 411}} {
		if err := t1.Insert(dept, []storage.Value{storage.StringValue(d.name), storage.IntValue(d.id)}); err != nil {
			t.Fatal(err)
		}
	}
	depts, err := t1.Commit()
	if err != nil {
		t.Fatal(err)
	}

	// Transaction 2: employees with FK pointers.
	t2 := tm.Begin()
	for i, e := range []struct {
		name string
		age  int64
		dep  int
	}{{"Dave", 24, 0}, {"Suzan", 27, 0}, {"Yaman", 54, 2}, {"Jane", 47, 1}} {
		_ = i
		if err := t2.Insert(emp, []storage.Value{
			storage.StringValue(e.name), storage.IntValue(e.age), storage.RefValue(depts[e.dep]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	emps, err := t2.Commit()
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint now; later updates stay only in the accumulation log.
	if err := log.Checkpoint(emp, dept); err != nil {
		t.Fatal(err)
	}

	// Transaction 3: post-checkpoint changes — update, delete, insert.
	t3 := tm.Begin()
	if err := t3.Update(emp, emps[0], 1, storage.IntValue(66)); err != nil {
		t.Fatal(err)
	}
	if err := t3.Delete(emp, emps[3]); err != nil {
		t.Fatal(err)
	}
	if err := t3.Insert(emp, []storage.Value{
		storage.StringValue("Cindy"), storage.IntValue(22), storage.RefValue(depts[1]),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := t3.Commit(); err != nil {
		t.Fatal(err)
	}

	// Transaction 4 aborts: must leave no trace.
	t4 := tm.Begin()
	if err := t4.Insert(emp, []storage.Value{storage.StringValue("Ghost"), storage.IntValue(1), storage.NullValue}); err != nil {
		t.Fatal(err)
	}
	t4.Abort()

	// Transaction 5 is still running at crash time: its stable-buffer
	// records must not reach the recovered database.
	t5 := tm.Begin()
	if err := t5.Insert(emp, []storage.Value{storage.StringValue("Limbo"), storage.IntValue(2), storage.NullValue}); err != nil {
		t.Fatal(err)
	}

	wantEmp, wantDept := snapshot(emp), snapshot(dept)

	// CRASH: memory is lost; the Manager (stable buffer + accumulation
	// log + disk copy) survives.
	ids2 := storage.NewIDGen()
	emp2, dept2 := schemas(t, ids2)
	r := log.NewRestart(emp2, dept2)

	// Phase 1: the working set — just the dept partitions.
	all, err := r.AllPartitions()
	if err != nil {
		t.Fatal(err)
	}
	var ws, rest []recovery.PartKey
	for _, k := range all {
		if k.Rel == "dept" {
			ws = append(ws, k)
		} else {
			rest = append(rest, k)
		}
	}
	if err := r.LoadWorkingSet(ws); err != nil {
		t.Fatal(err)
	}
	if dept2.Cardinality() != 3 {
		t.Fatalf("working set: dept cardinality %d", dept2.Cardinality())
	}
	if emp2.Cardinality() != 0 {
		t.Fatal("non-working-set partitions loaded early")
	}
	// Phase 2: background completes the load.
	if err := <-r.LoadRemainingAsync(); err != nil {
		t.Fatal(err)
	}

	if got := snapshot(emp2); !sameSnapshot(got, wantEmp) {
		t.Fatalf("emp mismatch:\n got %v\nwant %v", got, wantEmp)
	}
	if got := snapshot(dept2); !sameSnapshot(got, wantDept) {
		t.Fatalf("dept mismatch:\n got %v\nwant %v", got, wantDept)
	}
	// FK pointers resolved into the new database instance.
	found := false
	emp2.ScanPhysical(func(tp *storage.Tuple) bool {
		if tp.Field(0).Str() == "Dave" {
			found = true
			if tp.Field(1).Int() != 66 {
				t.Error("post-checkpoint update lost")
			}
			d := tp.Field(2).Ref()
			if d.Field(0).Str() != "Toy" {
				t.Errorf("Dave's dept = %v", d)
			}
			if d.Partition().Relation() != dept2 {
				t.Error("ref points into the dead database")
			}
		}
		if tp.Field(0).Str() == "Jane" {
			t.Error("deleted tuple resurrected")
		}
		if tp.Field(0).Str() == "Ghost" || tp.Field(0).Str() == "Limbo" {
			t.Errorf("uncommitted tuple %q recovered", tp.Field(0).Str())
		}
		return true
	})
	if !found {
		t.Fatal("Dave not recovered")
	}
	// New inserts must not collide with recovered IDs.
	tp, err := emp2.Insert([]storage.Value{storage.StringValue("New"), storage.IntValue(1), storage.NullValue})
	if err != nil {
		t.Fatal(err)
	}
	if dup := snapshot(emp2); len(dup) != emp2.Cardinality() {
		t.Fatal("ID collision after recovery")
	}
	_ = tp
}

func TestRecoveryAfterPropagation(t *testing.T) {
	// After the log device propagates everything, recovery must work from
	// images alone (empty accumulation log).
	dir := t.TempDir()
	log, err := recovery.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := storage.NewIDGen()
	emp, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)

	t1 := tm.Begin()
	t1.Insert(dept, []storage.Value{storage.StringValue("Toy"), storage.IntValue(459)})
	depts, err := t1.Commit()
	if err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin()
	for i := 0; i < 10; i++ {
		t2.Insert(emp, []storage.Value{
			storage.StringValue(fmt.Sprintf("e%d", i)), storage.IntValue(int64(20 + i)), storage.RefValue(depts[0]),
		})
	}
	if _, err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// No checkpoint: propagation alone must build the disk copy.
	if err := log.PropagateOnce(); err != nil {
		t.Fatal(err)
	}
	if n := log.PendingRecords(); n != 0 {
		t.Fatalf("%d records still pending after propagation", n)
	}
	want := snapshot(emp)

	ids2 := storage.NewIDGen()
	emp2, dept2 := schemas(t, ids2)
	r := log.NewRestart(emp2, dept2)
	if err := r.LoadRemaining(); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := snapshot(emp2); !sameSnapshot(got, want) {
		t.Fatalf("mismatch after image-only recovery:\n got %v\nwant %v", got, want)
	}
}

func TestBackgroundDevice(t *testing.T) {
	dir := t.TempDir()
	log, err := recovery.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := storage.NewIDGen()
	_, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)
	dev := log.StartDevice(0)
	for i := 0; i < 20; i++ {
		tx := tm.Begin()
		tx.Insert(dept, []storage.Value{storage.StringValue(fmt.Sprintf("d%d", i)), storage.IntValue(int64(i))})
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Give the device a few ticks, then stop and drain.
	if err := dev.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := log.PropagateOnce(); err != nil {
		t.Fatal(err)
	}
	if n := log.PendingRecords(); n != 0 {
		t.Fatalf("%d pending after device + drain", n)
	}
	keys, err := log.DiskPartitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no disk images written")
	}
}

func TestDeadlockVictimAborts(t *testing.T) {
	dir := t.TempDir()
	log, _ := recovery.NewManager(dir)
	ids := storage.NewIDGen()
	emp, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)

	seed := tm.Begin()
	seed.Insert(dept, []storage.Value{storage.StringValue("A"), storage.IntValue(1)})
	seed.Insert(emp, []storage.Value{storage.StringValue("E"), storage.IntValue(2), storage.NullValue})
	tuples, err := seed.Commit()
	if err != nil {
		t.Fatal(err)
	}
	d, e := tuples[0], tuples[1]

	tA := tm.Begin()
	tB := tm.Begin()
	if err := tA.Update(dept, d, 1, storage.IntValue(10)); err != nil {
		t.Fatal(err)
	}
	if err := tB.Update(emp, e, 1, storage.IntValue(20)); err != nil {
		t.Fatal(err)
	}
	released := make(chan error, 1)
	go func() { released <- tA.Update(emp, e, 1, storage.IntValue(30)) }()
	// One of the two transactions must be chosen as deadlock victim; which
	// one depends on who blocks first.
	errB := tB.Update(dept, d, 1, storage.IntValue(40))
	errA := <-released
	var victim, survivor *txn.Txn
	switch {
	case errA == lock.ErrDeadlock && errB == nil:
		victim, survivor = tA, tB
	case errB == lock.ErrDeadlock && errA == nil:
		victim, survivor = tB, tA
	default:
		t.Fatalf("errA=%v errB=%v — exactly one deadlock expected", errA, errB)
	}
	if _, err := survivor.Commit(); err != nil {
		t.Fatal(err)
	}
	// The victim was auto-aborted: reusing it fails.
	if err := victim.Update(dept, d, 1, storage.IntValue(50)); err != txn.ErrDone {
		t.Fatalf("err=%v, want ErrDone", err)
	}
	// The survivor's updates applied; the victim's did not.
	switch survivor {
	case tA:
		if d.Field(1).Int() != 10 || e.Field(1).Int() != 30 {
			t.Fatalf("final values %v %v", d.Field(1), e.Field(1))
		}
	default:
		if d.Field(1).Int() != 40 || e.Field(1).Int() != 20 {
			t.Fatalf("final values %v %v", d.Field(1), e.Field(1))
		}
	}
}

func TestDeferredUpdatesInvisibleUntilCommit(t *testing.T) {
	dir := t.TempDir()
	log, _ := recovery.NewManager(dir)
	ids := storage.NewIDGen()
	_, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)

	tx := tm.Begin()
	if err := tx.Insert(dept, []storage.Value{storage.StringValue("X"), storage.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if dept.Cardinality() != 0 {
		t.Fatal("deferred insert applied early")
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if dept.Cardinality() != 1 {
		t.Fatal("commit did not apply")
	}
}

func TestTxnValidation(t *testing.T) {
	dir := t.TempDir()
	log, _ := recovery.NewManager(dir)
	ids := storage.NewIDGen()
	_, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)

	tx := tm.Begin()
	if err := tx.Insert(dept, []storage.Value{storage.IntValue(1), storage.IntValue(1)}); err == nil {
		t.Fatal("bad insert accepted")
	}
	seed := tm.Begin()
	seed.Insert(dept, []storage.Value{storage.StringValue("A"), storage.IntValue(1)})
	tuples, _ := seed.Commit()
	tx2 := tm.Begin()
	if err := tx2.Update(dept, tuples[0], 9, storage.IntValue(1)); err == nil {
		t.Fatal("bad field accepted")
	}
	if err := tx2.Update(dept, tuples[0], 1, storage.StringValue("s")); err == nil {
		t.Fatal("bad type accepted")
	}
	// Deleting a tuple then committing a second txn that updates it fails
	// at validation.
	del := tm.Begin()
	if err := del.Delete(dept, tuples[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := del.Commit(); err != nil {
		t.Fatal(err)
	}
	upd := tm.Begin()
	if err := upd.Update(dept, tuples[0], 1, storage.IntValue(2)); err != nil {
		t.Fatal(err) // lock succeeds; tuple death caught at commit
	}
	if _, err := upd.Commit(); err == nil {
		t.Fatal("commit on dead tuple accepted")
	}
}

func TestReadLocksAndValues(t *testing.T) {
	dir := t.TempDir()
	log, _ := recovery.NewManager(dir)
	ids := storage.NewIDGen()
	_, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)
	seed := tm.Begin()
	seed.Insert(dept, []storage.Value{storage.StringValue("A"), storage.IntValue(7)})
	tuples, _ := seed.Commit()

	tx := tm.Begin()
	vals, err := tx.Read(tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	if vals[1].Int() != 7 {
		t.Fatalf("read %v", vals)
	}
	if err := tx.LockRelationShared(dept); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartRejectsCorruptImage(t *testing.T) {
	dir := t.TempDir()
	log, _ := recovery.NewManager(dir)
	ids := storage.NewIDGen()
	emp, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)
	tx := tm.Begin()
	tx.Insert(dept, []storage.Value{storage.StringValue("A"), storage.IntValue(1)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := log.Checkpoint(emp, dept); err != nil {
		t.Fatal(err)
	}
	// Corrupt every image byte-by-byte truncation: restart must error, not
	// panic or load garbage.
	keys, err := log.DiskPartitions()
	if err != nil || len(keys) == 0 {
		t.Fatalf("keys=%v err=%v", keys, err)
	}
	img := filepath.Join(dir, fmt.Sprintf("%s.%06d.img", keys[0].Rel, keys[0].Part))
	data, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(img, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	ids2 := storage.NewIDGen()
	emp2, dept2 := schemas(t, ids2)
	r := log.NewRestart(emp2, dept2)
	if err := r.LoadRemaining(); err == nil {
		t.Fatal("corrupt image accepted")
	}
}

func TestRestartUnknownRelationInImage(t *testing.T) {
	dir := t.TempDir()
	log, _ := recovery.NewManager(dir)
	ids := storage.NewIDGen()
	emp, dept := schemas(t, ids)
	tx := txn.NewManager(lock.NewManager(), log).Begin()
	tx.Insert(dept, []storage.Value{storage.StringValue("A"), storage.IntValue(1)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := log.Checkpoint(emp, dept); err != nil {
		t.Fatal(err)
	}
	// Restart that forgot to declare dept: loading its image must fail
	// loudly rather than silently dropping the relation.
	ids2 := storage.NewIDGen()
	emp2, _ := schemas(t, ids2)
	r := log.NewRestart(emp2) // dept missing
	if err := r.LoadRemaining(); err == nil {
		t.Fatal("image for undeclared relation accepted")
	}
}

func TestDiskPartitionsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	log, _ := recovery.NewManager(dir)
	for _, name := range []string{"README", "x.img.tmp", "noformat.img"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := log.DiskPartitions()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k.Rel == "" {
			t.Fatalf("junk parsed as partition: %+v", k)
		}
	}
}

func TestPropagateIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	log, _ := recovery.NewManager(dir)
	ids := storage.NewIDGen()
	emp, dept := schemas(t, ids)
	tm := txn.NewManager(lock.NewManager(), log)
	tx := tm.Begin()
	tx.Insert(dept, []storage.Value{storage.StringValue("A"), storage.IntValue(1)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := log.PropagateOnce(); err != nil {
			t.Fatal(err)
		}
	}
	ids2 := storage.NewIDGen()
	emp2, dept2 := schemas(t, ids2)
	r := log.NewRestart(emp2, dept2)
	if err := r.LoadRemaining(); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if dept2.Cardinality() != 1 {
		t.Fatalf("triple propagation duplicated rows: %d", dept2.Cardinality())
	}
	_ = emp
}
