package recovery

import (
	"os"
	"sync"
	"time"

	"repro/internal/storage"
)

// The active log device: "during normal operation, the log device reads
// the updates of committed transactions from the stable log buffer and
// updates the disk copy of the database. The log device holds a change
// accumulation log, so it does not need to update the disk version of the
// database every time a partition is modified" (§2.4).

// PropagateOnce folds the committed change-accumulation records of every
// partition into its disk-copy image. It runs entirely against the disk
// copy — the in-memory database is not consulted — which is what lets it
// run on a separate device in the paper's design.
func (m *Manager) PropagateOnce() error {
	m.mu.Lock()
	keys := make([]PartKey, 0, len(m.cal))
	for k := range m.cal {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	for _, k := range keys {
		if err := m.propagatePartition(k); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) propagatePartition(k PartKey) error {
	img, err := m.readDiskImage(k)
	if err != nil {
		return err
	}
	recs := m.records(k, img.LSN)
	if len(recs) == 0 {
		return nil
	}
	for _, rec := range recs {
		applyToImage(&img, rec)
		if rec.LSN > img.LSN {
			img.LSN = rec.LSN
		}
	}
	if err := writeFileAtomic(m.imagePath(k), storage.EncodePartition(img)); err != nil {
		return err
	}
	m.prune(k, img.LSN)
	return nil
}

// Device runs PropagateOnce on an interval — the background log device.
type Device struct {
	m        *Manager
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	mu       sync.Mutex
	lastErr  error
}

// StartDevice launches the background propagation loop.
func (m *Manager) StartDevice(interval time.Duration) *Device {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	d := &Device{m: m, interval: interval, stop: make(chan struct{}), done: make(chan struct{})}
	go d.run()
	return d
}

func (d *Device) run() {
	defer close(d.done)
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.m.PropagateOnce(); err != nil {
				d.mu.Lock()
				d.lastErr = err
				d.mu.Unlock()
			}
		}
	}
}

// Stop halts the device after finishing the current pass and returns the
// last propagation error, if any.
func (d *Device) Stop() error {
	close(d.stop)
	<-d.done
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastErr
}

// readDiskImage reads a partition's disk image, or an empty one if the
// partition has never been checkpointed.
func (m *Manager) readDiskImage(k PartKey) (img storage.PartitionImage, err error) {
	data, rerr := os.ReadFile(m.imagePath(k))
	if os.IsNotExist(rerr) {
		return storage.PartitionImage{Relation: k.Rel, PartID: k.Part}, nil
	}
	if rerr != nil {
		return img, rerr
	}
	return storage.DecodePartition(data)
}
