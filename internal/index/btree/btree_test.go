package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.RunOrdered(t,
		func(cfg index.Config[indextest.Entry]) index.Ordered[indextest.Entry] {
			return New(cfg)
		},
		indextest.Options{
			Validate: func(impl index.Ordered[indextest.Entry]) error {
				return impl.(*Tree[indextest.Entry]).checkInvariants()
			},
		})
}

func intTree(nodeSize int, unique bool) *Tree[int64] {
	return New(index.Config[int64]{
		Cmp: func(a, b int64) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		},
		Unique:   unique,
		NodeSize: nodeSize,
	})
}

func TestRootSplitGrowsLevels(t *testing.T) {
	tr := intTree(4, true)
	for i := int64(0); i < 100; i++ {
		tr.Insert(i)
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if tr.Stats().Nodes < 10 {
		t.Fatalf("tree did not split: %d nodes", tr.Stats().Nodes)
	}
}

func TestRootCollapseOnDrain(t *testing.T) {
	tr := intTree(4, true)
	perm := rand.New(rand.NewSource(2)).Perm(200)
	for _, k := range perm {
		tr.Insert(int64(k))
	}
	for i, k := range perm {
		if !tr.Delete(int64(k)) {
			t.Fatalf("delete %d failed", k)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after delete %d (#%d): %v", k, i, err)
		}
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatal("tree not empty after drain")
	}
}

func TestDataInInternalNodes(t *testing.T) {
	// The original B Tree keeps data in internal nodes: with 1000 entries
	// and node size 10, internal separators are real entries, so total
	// entry slots across all nodes stay close to the entry count (unlike a
	// B+ tree, which duplicates keys upward).
	tr := intTree(10, true)
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i)
	}
	s := tr.Stats()
	sum := 0
	var countItems func(n *node[int64])
	countItems = func(n *node[int64]) {
		if n == nil {
			return
		}
		sum += len(n.items)
		for _, c := range n.children {
			countItems(c)
		}
	}
	countItems(tr.root)
	if sum != 1000 {
		t.Fatalf("items across nodes = %d, want exactly 1000 (no duplicated keys)", sum)
	}
	if s.Entries != 1000 {
		t.Fatalf("Stats.Entries=%d", s.Entries)
	}
}

func TestPropertyMirrorsUniqueSet(t *testing.T) {
	f := func(keys []uint16, nodeSizeSeed uint8) bool {
		ns := 2 + int(nodeSizeSeed)%20
		tr := intTree(ns, true)
		ref := map[int64]bool{}
		for _, k := range keys {
			kk := int64(k)
			if got, want := tr.Insert(kk), !ref[kk]; got != want {
				return false
			}
			ref[kk] = true
		}
		if tr.Len() != len(ref) {
			return false
		}
		if tr.checkInvariants() != nil {
			return false
		}
		for k := range ref {
			if _, ok := tr.Search(func(e int64) int {
				switch {
				case e < k:
					return -1
				case e > k:
					return 1
				default:
					return 0
				}
			}); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStorageFactorMediumNodes(t *testing.T) {
	tr := intTree(30, true)
	for i := int64(0); i < 30000; i++ {
		tr.Insert(i)
	}
	// Paper: B Trees "had nearly equal storage factors of 1.5 for medium
	// to large size nodes".
	if f := index.PaperModel.Factor(tr.Stats()); f < 1.1 || f > 2.2 {
		t.Fatalf("storage factor %.2f far from the paper's ~1.5", f)
	}
}
