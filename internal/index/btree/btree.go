// Package btree implements the original B Tree [Com79] studied in §3.2 —
// not the B+ Tree: data items live in internal nodes too, so there are
// many data items per node pointer and storage utilization is good
// (footnote 3 reports the B+ Tree used more storage in main memory with
// no performance gain). Search does one binary search per node on the
// path, which the paper found slower than the "hardwired" single-compare
// descent of the AVL and T Trees.
package btree

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/meter"
)

// DefaultNodeSize is the default maximum items per node.
const DefaultNodeSize = 30

// Tree is a B Tree. The zero value is not usable; call New.
type Tree[E any] struct {
	cfg      index.Config[E]
	cmp      func(a, b E) int
	same     func(a, b E) bool
	m        *meter.Counters
	root     *node[E]
	size     int
	maxItems int
	minItems int
}

type node[E any] struct {
	items    []E        // sorted; cap maxItems+1 (one slot of split slack)
	children []*node[E] // nil for leaves; len == len(items)+1 otherwise
}

func (n *node[E]) leaf() bool { return n.children == nil }

// New creates an empty B Tree. cfg.Cmp is required; cfg.NodeSize is the
// maximum items per node (minimum 2; default DefaultNodeSize).
func New[E any](cfg index.Config[E]) *Tree[E] {
	if cfg.Cmp == nil {
		panic("btree: Config.Cmp is required")
	}
	max := cfg.NodeSize
	if max <= 0 {
		max = DefaultNodeSize
	}
	if max < 2 {
		max = 2
	}
	return &Tree[E]{
		cfg:      cfg,
		cmp:      cfg.Cmp,
		same:     cfg.SameOrEq(),
		m:        cfg.Meter,
		maxItems: max,
		minItems: max / 2,
	}
}

// Len returns the number of entries.
func (t *Tree[E]) Len() int { return t.size }

func (t *Tree[E]) newNode(leaf bool) *node[E] {
	t.m.AddAlloc(1)
	n := &node[E]{items: make([]E, 0, t.maxItems+1)}
	if !leaf {
		n.children = make([]*node[E], 0, t.maxItems+2)
	}
	return n
}

// lowerBoundIn returns the first index in n.items whose item is not less
// than the key described by pos.
func (t *Tree[E]) lowerBoundIn(n *node[E], pos index.Pos[E]) int {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t.m.AddCompare(1)
		if pos(n.items[mid]) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds e; false when unique and a key-equal entry exists.
func (t *Tree[E]) Insert(e E) bool {
	if t.root == nil {
		t.root = t.newNode(true)
	}
	ok := t.insert(t.root, e)
	if !ok {
		return false
	}
	t.size++
	if len(t.root.items) > t.maxItems {
		// Split the root: the tree grows a level.
		mid, right := t.split(t.root)
		newRoot := t.newNode(false)
		newRoot.items = append(newRoot.items, mid)
		newRoot.children = append(newRoot.children, t.root, right)
		t.root = newRoot
	}
	return true
}

func (t *Tree[E]) insert(n *node[E], e E) bool {
	t.m.AddNode(1)
	i := t.lowerBoundIn(n, func(x E) int { return t.cmp(x, e) })
	if t.cfg.Unique && i < len(n.items) && t.cmp(n.items[i], e) == 0 {
		t.m.AddCompare(1)
		return false
	}
	if n.leaf() {
		n.items = append(n.items, e)
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = e
		t.m.AddMove(int64(len(n.items) - i))
		return true
	}
	if !t.insert(n.children[i], e) {
		return false
	}
	if len(n.children[i].items) > t.maxItems {
		mid, right := t.split(n.children[i])
		n.items = append(n.items, mid)
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = mid
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		t.m.AddMove(int64(2*(len(n.items)-i) + 1))
	}
	return true
}

// split divides an overfull node around its median, returning the median
// and the new right sibling.
func (t *Tree[E]) split(n *node[E]) (E, *node[E]) {
	mid := len(n.items) / 2
	median := n.items[mid]
	right := t.newNode(n.leaf())
	right.items = append(right.items, n.items[mid+1:]...)
	n.items = n.items[:mid]
	t.m.AddMove(int64(len(right.items) + 1))
	if !n.leaf() {
		right.children = append(right.children, n.children[mid+1:]...)
		n.children = n.children[:mid+1]
	}
	return median, right
}

// Delete removes the entry identical to e among key-equal entries.
func (t *Tree[E]) Delete(e E) bool {
	if t.root == nil {
		return false
	}
	if !t.delete(t.root, e) {
		return false
	}
	t.size--
	if len(t.root.items) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	return true
}

// delete removes the identical entry from the subtree under n. Key-equal
// duplicates may straddle several children, so the equal range and the
// children interleaved with it are all candidates.
func (t *Tree[E]) delete(n *node[E], e E) bool {
	t.m.AddNode(1)
	i := t.lowerBoundIn(n, func(x E) int { return t.cmp(x, e) })
	for j := i; ; j++ {
		if !n.leaf() && t.delete(n.children[j], e) {
			t.fixChild(n, j)
			return true
		}
		if j >= len(n.items) {
			return false
		}
		t.m.AddCompare(1)
		if t.cmp(n.items[j], e) != 0 {
			return false
		}
		if t.same(n.items[j], e) {
			t.removeItem(n, j)
			return true
		}
	}
}

// removeItem deletes items[j] from n; in an internal node the predecessor
// from the left child takes its place.
func (t *Tree[E]) removeItem(n *node[E], j int) {
	if n.leaf() {
		copy(n.items[j:], n.items[j+1:])
		n.items = n.items[:len(n.items)-1]
		t.m.AddMove(int64(len(n.items) - j + 1))
		return
	}
	n.items[j] = t.deleteMax(n.children[j])
	t.m.AddMove(1)
	t.fixChild(n, j)
}

// deleteMax removes and returns the largest entry in the subtree.
func (t *Tree[E]) deleteMax(n *node[E]) E {
	if n.leaf() {
		e := n.items[len(n.items)-1]
		n.items = n.items[:len(n.items)-1]
		t.m.AddMove(1)
		return e
	}
	last := len(n.children) - 1
	e := t.deleteMax(n.children[last])
	t.fixChild(n, last)
	return e
}

// fixChild restores children[i]'s minimum occupancy by borrowing from a
// sibling or merging with one.
func (t *Tree[E]) fixChild(n *node[E], i int) {
	c := n.children[i]
	if len(c.items) >= t.minItems {
		return
	}
	if i > 0 && len(n.children[i-1].items) > t.minItems {
		// Borrow from the left sibling through the separator.
		l := n.children[i-1]
		c.items = append(c.items, n.items[i-1])
		copy(c.items[1:], c.items)
		c.items[0] = n.items[i-1]
		n.items[i-1] = l.items[len(l.items)-1]
		l.items = l.items[:len(l.items)-1]
		if !c.leaf() {
			c.children = append(c.children, nil)
			copy(c.children[1:], c.children)
			c.children[0] = l.children[len(l.children)-1]
			l.children = l.children[:len(l.children)-1]
		}
		t.m.AddMove(int64(len(c.items) + 2))
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > t.minItems {
		// Borrow from the right sibling through the separator.
		r := n.children[i+1]
		c.items = append(c.items, n.items[i])
		n.items[i] = r.items[0]
		copy(r.items, r.items[1:])
		r.items = r.items[:len(r.items)-1]
		if !c.leaf() {
			c.children = append(c.children, r.children[0])
			copy(r.children, r.children[1:])
			r.children = r.children[:len(r.children)-1]
		}
		t.m.AddMove(int64(len(r.items) + 2))
		return
	}
	// Merge with a sibling around the separator.
	if i == len(n.children)-1 {
		i--
	}
	l, r := n.children[i], n.children[i+1]
	l.items = append(l.items, n.items[i])
	l.items = append(l.items, r.items...)
	if !l.leaf() {
		l.children = append(l.children, r.children...)
	}
	t.m.AddMove(int64(len(r.items) + 1))
	copy(n.items[i:], n.items[i+1:])
	n.items = n.items[:len(n.items)-1]
	copy(n.children[i+1:], n.children[i+2:])
	n.children = n.children[:len(n.children)-1]
}

// Search runs one binary search per node along the root-to-match path.
func (t *Tree[E]) Search(pos index.Pos[E]) (E, bool) {
	n := t.root
	for n != nil {
		t.m.AddNode(1)
		i := t.lowerBoundIn(n, pos)
		if i < len(n.items) && pos(n.items[i]) == 0 {
			t.m.AddCompare(1)
			return n.items[i], true
		}
		if n.leaf() {
			break
		}
		n = n.children[i]
	}
	var zero E
	return zero, false
}

// frame is one pending position of the in-order iterator: items[i] of n is
// the next item this frame yields.
type frame[E any] struct {
	n *node[E]
	i int
}

type iter[E any] struct{ stack []frame[E] }

// pushLeftmost descends to the smallest entry of the subtree, stacking
// pending frames.
func (it *iter[E]) pushLeftmost(n *node[E]) {
	for n != nil && len(n.items) > 0 {
		it.stack = append(it.stack, frame[E]{n, 0})
		if n.leaf() {
			return
		}
		n = n.children[0]
	}
}

func (it *iter[E]) next() (E, bool) {
	var zero E
	if len(it.stack) == 0 {
		return zero, false
	}
	f := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	e := f.n.items[f.i]
	if f.i+1 < len(f.n.items) {
		it.stack = append(it.stack, frame[E]{f.n, f.i + 1})
	}
	if !f.n.leaf() {
		// Everything in children[i+1] comes before the frame we just
		// pushed, and it is stacked on top, so it pops first.
		it.pushLeftmost(f.n.children[f.i+1])
	}
	return e, true
}

// lowerBound builds an iterator positioned at the first entry with
// pos(e) >= 0.
func (t *Tree[E]) lowerBound(pos index.Pos[E]) iter[E] {
	var it iter[E]
	n := t.root
	for n != nil {
		t.m.AddNode(1)
		i := t.lowerBoundIn(n, pos)
		if i < len(n.items) {
			it.stack = append(it.stack, frame[E]{n, i})
		}
		if n.leaf() {
			return it
		}
		n = n.children[i]
	}
	return it
}

// SearchAll visits every entry matching pos in ascending order.
func (t *Tree[E]) SearchAll(pos index.Pos[E], fn func(E) bool) {
	it := t.lowerBound(pos)
	for {
		e, ok := it.next()
		if !ok || pos(e) != 0 || !fn(e) {
			return
		}
	}
}

// Range visits entries between the keys described by lo and hi, ascending.
func (t *Tree[E]) Range(lo, hi index.Pos[E], fn func(E) bool) {
	it := t.lowerBound(lo)
	for {
		e, ok := it.next()
		if !ok || hi(e) > 0 || !fn(e) {
			return
		}
	}
}

// ScanAsc visits all entries in ascending order.
func (t *Tree[E]) ScanAsc(fn func(E) bool) {
	var it iter[E]
	it.pushLeftmost(t.root)
	for {
		e, ok := it.next()
		if !ok || !fn(e) {
			return
		}
	}
}

// ScanDesc visits all entries in descending order.
func (t *Tree[E]) ScanDesc(fn func(E) bool) {
	var walk func(n *node[E]) bool
	walk = func(n *node[E]) bool {
		if n == nil {
			return true
		}
		for j := len(n.items); j >= 0; j-- {
			if !n.leaf() && !walk(n.children[j]) {
				return false
			}
			if j > 0 && !fn(n.items[j-1]) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Stats reports the structure's shape: internal nodes carry N+1 child
// pointers for N items; leaves carry none (footnote 4).
func (t *Tree[E]) Stats() index.Stats {
	s := index.Stats{Entries: t.size}
	var walk func(n *node[E])
	walk = func(n *node[E]) {
		if n == nil {
			return
		}
		s.Nodes++
		s.EntrySlots += t.maxItems
		s.ControlWords++
		if !n.leaf() {
			s.ChildPtrs += t.maxItems + 1
			for _, c := range n.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return s
}

// checkInvariants verifies B Tree structure; exported to tests.
func (t *Tree[E]) checkInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("empty tree with size %d", t.size)
		}
		return nil
	}
	count := 0
	var prev *E
	var depth = -1
	var walk func(n *node[E], d int, isRoot bool) error
	walk = func(n *node[E], d int, isRoot bool) error {
		if len(n.items) == 0 {
			return fmt.Errorf("empty node")
		}
		if len(n.items) > t.maxItems {
			return fmt.Errorf("node has %d items, max %d", len(n.items), t.maxItems)
		}
		if !isRoot && len(n.items) < t.minItems {
			return fmt.Errorf("node has %d items, min %d", len(n.items), t.minItems)
		}
		if n.leaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("leaves at depths %d and %d", depth, d)
			}
			for _, e := range n.items {
				e := e
				if prev != nil && t.cmp(*prev, e) > 0 {
					return fmt.Errorf("order violated")
				}
				prev = &e
				count++
			}
			return nil
		}
		if len(n.children) != len(n.items)+1 {
			return fmt.Errorf("internal node: %d items, %d children", len(n.items), len(n.children))
		}
		for j, c := range n.children {
			if err := walk(c, d+1, false); err != nil {
				return err
			}
			if j < len(n.items) {
				e := n.items[j]
				if prev != nil && t.cmp(*prev, e) > 0 {
					return fmt.Errorf("order violated at separator")
				}
				ecopy := e
				prev = &ecopy
				count++
			}
		}
		return nil
	}
	if err := walk(t.root, 0, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d items", t.size, count)
	}
	return nil
}
