package avltree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.RunOrdered(t,
		func(cfg index.Config[indextest.Entry]) index.Ordered[indextest.Entry] {
			return New(cfg)
		},
		indextest.Options{
			Validate: func(impl index.Ordered[indextest.Entry]) error {
				return impl.(*Tree[indextest.Entry]).checkInvariants()
			},
		})
}

func intTree(unique bool) *Tree[int64] {
	return New(index.Config[int64]{
		Cmp: func(a, b int64) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		},
		Unique: unique,
	})
}

func TestHeightBound(t *testing.T) {
	tr := intTree(true)
	const n = 30000
	for i := int64(0); i < n; i++ {
		tr.Insert(i) // sorted order is adversarial for an unbalanced BST
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	maxH := int(1.45*math.Log2(n+2)) + 2
	if h := height(tr.root); h > maxH {
		t.Fatalf("height %d exceeds AVL bound %d", h, maxH)
	}
}

func TestDeleteTwoChildrenUsesSuccessor(t *testing.T) {
	tr := intTree(true)
	for _, k := range []int64{50, 30, 70, 20, 40, 60, 80} {
		tr.Insert(k)
	}
	if !tr.Delete(50) { // root with two children
		t.Fatal("delete root failed")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	tr.ScanAsc(func(e int64) bool { got = append(got, e); return true })
	want := []int64{20, 30, 40, 60, 70, 80}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPropertyRandomDrain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := intTree(false)
		keys := make([]int64, 200)
		for i := range keys {
			keys[i] = rng.Int63n(50) // heavy duplicates
			tr.Insert(keys[i])
		}
		if tr.checkInvariants() != nil {
			return false
		}
		for _, k := range keys {
			if !tr.Delete(k) {
				return false
			}
		}
		return tr.Len() == 0 && tr.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsMatchPaperFactor(t *testing.T) {
	tr := intTree(true)
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i)
	}
	// §3.2.2: "the AVL Tree storage factor was 3 because of the two node
	// pointers it needs for each data item".
	if f := index.PaperModel.Factor(tr.Stats()); f != 3.0 {
		t.Fatalf("storage factor %.2f, want 3.0", f)
	}
}
