// Package avltree implements the AVL Tree [AHU74] as studied in §3.2: a
// height-balanced binary tree with one element per node. Searching is fast
// — one comparison then a pointer follow, with no arithmetic — but storage
// utilization is poor: two node pointers for every data item (the paper's
// storage factor of 3).
package avltree

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/meter"
)

// Tree is an AVL tree. The zero value is not usable; call New.
type Tree[E any] struct {
	cfg  index.Config[E]
	cmp  func(a, b E) int
	same func(a, b E) bool
	m    *meter.Counters
	root *node[E]
	size int
}

type node[E any] struct {
	left, right *node[E]
	item        E
	height      int
}

// New creates an empty AVL tree. cfg.Cmp is required; NodeSize is ignored
// (every node holds exactly one item).
func New[E any](cfg index.Config[E]) *Tree[E] {
	if cfg.Cmp == nil {
		panic("avltree: Config.Cmp is required")
	}
	return &Tree[E]{cfg: cfg, cmp: cfg.Cmp, same: cfg.SameOrEq(), m: cfg.Meter}
}

// Len returns the number of entries.
func (t *Tree[E]) Len() int { return t.size }

func height[E any](n *node[E]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node[E]) update() {
	l, r := height(n.left), height(n.right)
	if l > r {
		n.height = l + 1
	} else {
		n.height = r + 1
	}
}

// Insert adds e; false when unique and a key-equal entry exists.
func (t *Tree[E]) Insert(e E) bool {
	root, ok := t.insert(t.root, e)
	if ok {
		t.root = root
		t.size++
	}
	return ok
}

func (t *Tree[E]) insert(n *node[E], e E) (*node[E], bool) {
	if n == nil {
		t.m.AddAlloc(1)
		return &node[E]{item: e, height: 1}, true
	}
	t.m.AddNode(1)
	t.m.AddCompare(1)
	c := t.cmp(e, n.item)
	if c == 0 && t.cfg.Unique {
		return n, false
	}
	var ok bool
	if c < 0 {
		var sub *node[E]
		sub, ok = t.insert(n.left, e)
		if !ok {
			return n, false
		}
		n.left = sub
	} else {
		var sub *node[E]
		sub, ok = t.insert(n.right, e)
		if !ok {
			return n, false
		}
		n.right = sub
	}
	return t.balance(n), true
}

// Delete removes the entry identical to e among key-equal entries.
func (t *Tree[E]) Delete(e E) bool {
	root, ok := t.delete(t.root, e)
	if ok {
		t.root = root
		t.size--
	}
	return ok
}

func (t *Tree[E]) delete(n *node[E], e E) (*node[E], bool) {
	if n == nil {
		return nil, false
	}
	t.m.AddNode(1)
	t.m.AddCompare(1)
	switch c := t.cmp(e, n.item); {
	case c < 0:
		sub, ok := t.delete(n.left, e)
		if !ok {
			return n, false
		}
		n.left = sub
	case c > 0:
		sub, ok := t.delete(n.right, e)
		if !ok {
			return n, false
		}
		n.right = sub
	default:
		if t.same(n.item, e) {
			return t.removeNode(n), true
		}
		// Key-equal duplicates may hide in either subtree.
		if sub, ok := t.delete(n.left, e); ok {
			n.left = sub
			break
		}
		sub, ok := t.delete(n.right, e)
		if !ok {
			return n, false
		}
		n.right = sub
	}
	return t.balance(n), true
}

func (t *Tree[E]) removeNode(n *node[E]) *node[E] {
	switch {
	case n.left == nil:
		return n.right
	case n.right == nil:
		return n.left
	default:
		// Replace with in-order successor, then delete it from the right
		// subtree.
		sub, succ := t.removeMin(n.right)
		n.item = succ
		n.right = sub
		t.m.AddMove(1)
		return t.balance(n)
	}
}

func (t *Tree[E]) removeMin(n *node[E]) (*node[E], E) {
	if n.left == nil {
		return n.right, n.item
	}
	sub, min := t.removeMin(n.left)
	n.left = sub
	return t.balance(n), min
}

func (t *Tree[E]) balance(n *node[E]) *node[E] {
	n.update()
	switch b := height(n.left) - height(n.right); {
	case b > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	case b < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = t.rotateRight(n.right)
		}
		return t.rotateLeft(n)
	default:
		return n
	}
}

func (t *Tree[E]) rotateRight(a *node[E]) *node[E] {
	t.m.AddRotation(1)
	b := a.left
	a.left = b.right
	b.right = a
	a.update()
	b.update()
	return b
}

func (t *Tree[E]) rotateLeft(a *node[E]) *node[E] {
	t.m.AddRotation(1)
	b := a.right
	a.right = b.left
	b.left = a
	a.update()
	b.update()
	return b
}

// Search returns an entry matching pos: one comparison per node, then a
// pointer follow — the "hardwired" binary search of §3.2.2.
func (t *Tree[E]) Search(pos index.Pos[E]) (E, bool) {
	n := t.root
	for n != nil {
		t.m.AddNode(1)
		t.m.AddCompare(1)
		switch c := pos(n.item); {
		case c == 0:
			return n.item, true
		case c > 0:
			n = n.left
		default:
			n = n.right
		}
	}
	var zero E
	return zero, false
}

// iter is an explicit-stack in-order iterator (AVL nodes carry no parent
// pointers).
type iter[E any] struct{ stack []*node[E] }

func (it *iter[E]) pushLeft(n *node[E]) {
	for n != nil {
		it.stack = append(it.stack, n)
		n = n.left
	}
}

func (it *iter[E]) next() (*node[E], bool) {
	if len(it.stack) == 0 {
		return nil, false
	}
	n := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	it.pushLeft(n.right)
	return n, true
}

// lowerBound positions an iterator at the first entry with pos(e) >= 0.
func (t *Tree[E]) lowerBound(pos index.Pos[E]) iter[E] {
	var it iter[E]
	n := t.root
	for n != nil {
		t.m.AddNode(1)
		t.m.AddCompare(1)
		if pos(n.item) >= 0 {
			it.stack = append(it.stack, n)
			n = n.left
		} else {
			n = n.right
		}
	}
	return it
}

// SearchAll visits every entry matching pos in ascending order.
func (t *Tree[E]) SearchAll(pos index.Pos[E], fn func(E) bool) {
	it := t.lowerBound(pos)
	for {
		n, ok := it.next()
		if !ok || pos(n.item) != 0 {
			return
		}
		if !fn(n.item) {
			return
		}
	}
}

// Range visits entries between the keys described by lo and hi, ascending.
func (t *Tree[E]) Range(lo, hi index.Pos[E], fn func(E) bool) {
	it := t.lowerBound(lo)
	for {
		n, ok := it.next()
		if !ok || hi(n.item) > 0 {
			return
		}
		if !fn(n.item) {
			return
		}
	}
}

// ScanAsc visits all entries in ascending order.
func (t *Tree[E]) ScanAsc(fn func(E) bool) {
	var it iter[E]
	it.pushLeft(t.root)
	for {
		n, ok := it.next()
		if !ok || !fn(n.item) {
			return
		}
	}
}

// ScanDesc visits all entries in descending order.
func (t *Tree[E]) ScanDesc(fn func(E) bool) {
	var stack []*node[E]
	pushRight := func(n *node[E]) {
		for n != nil {
			stack = append(stack, n)
			n = n.right
		}
	}
	pushRight(t.root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(n.item) {
			return
		}
		pushRight(n.left)
	}
}

// Stats reports the structure's shape: one entry, two child pointers per
// node. The balance information hides in otherwise-unused pointer bits, as
// the paper's factor-of-3 accounting assumes.
func (t *Tree[E]) Stats() index.Stats {
	return index.Stats{
		Entries:    t.size,
		EntrySlots: t.size,
		Nodes:      t.size,
		ChildPtrs:  2 * t.size,
	}
}

// checkInvariants verifies AVL ordering and balance; exported to tests.
func (t *Tree[E]) checkInvariants() error {
	count := 0
	var prev *E
	var walk func(n *node[E]) error
	walk = func(n *node[E]) error {
		if n == nil {
			return nil
		}
		if err := walk(n.left); err != nil {
			return err
		}
		if prev != nil && t.cmp(*prev, n.item) > 0 {
			return fmt.Errorf("order violated")
		}
		item := n.item
		prev = &item
		count++
		lh, rh := height(n.left), height(n.right)
		want := lh
		if rh > want {
			want = rh
		}
		if n.height != want+1 {
			return fmt.Errorf("stale height")
		}
		if b := lh - rh; b > 1 || b < -1 {
			return fmt.Errorf("unbalanced node (balance %d)", b)
		}
		return walk(n.right)
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d nodes", t.size, count)
	}
	return nil
}
