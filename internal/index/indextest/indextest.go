// Package indextest is a conformance suite for index structures. Every
// index package runs its implementation through RunOrdered or RunHashed,
// which check behaviour against a reference model under deterministic and
// randomized workloads, across the node sizes the paper's graphs sweep.
//
// Entries carry a Key and an ID, mimicking the MM-DBMS arrangement where
// an index holds tuple pointers: many entries may share a key (duplicate
// attribute values) while remaining distinct entries, and deletion must
// remove one specific entry among key-equal duplicates.
package indextest

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
)

// Entry is the test entry type: Key is the indexed attribute, ID the
// entry's identity (the "tuple pointer").
type Entry struct {
	Key int64
	ID  int64
}

// Cmp orders entries by key.
func Cmp(a, b Entry) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	default:
		return 0
	}
}

// Hash hashes the key with a strong mixer.
func Hash(e Entry) uint64 { return HashKey(e.Key) }

// HashKey hashes a key value.
func HashKey(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Eq is key equality.
func Eq(a, b Entry) bool { return a.Key == b.Key }

// Same is entry identity.
func Same(a, b Entry) bool { return a.Key == b.Key && a.ID == b.ID }

// Config returns the standard test configuration.
func Config(unique bool, nodeSize int) index.Config[Entry] {
	return index.Config[Entry]{
		Cmp:      Cmp,
		Hash:     Hash,
		Eq:       Eq,
		Same:     Same,
		Unique:   unique,
		NodeSize: nodeSize,
	}
}

// keyPos returns the Pos function for key k.
func keyPos(k int64) index.Pos[Entry] {
	return func(e Entry) int {
		switch {
		case e.Key < k:
			return -1
		case e.Key > k:
			return 1
		default:
			return 0
		}
	}
}

// model is the reference implementation: a sorted slice.
type model struct {
	entries []Entry // sorted by Key, ties by insertion order
	unique  bool
}

func (m *model) insert(e Entry) bool {
	i := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].Key >= e.Key })
	if m.unique && i < len(m.entries) && m.entries[i].Key == e.Key {
		return false
	}
	// Insert after existing duplicates so ties keep insertion order.
	for i < len(m.entries) && m.entries[i].Key == e.Key {
		i++
	}
	m.entries = append(m.entries, Entry{})
	copy(m.entries[i+1:], m.entries[i:])
	m.entries[i] = e
	return true
}

func (m *model) delete(e Entry) bool {
	for i, x := range m.entries {
		if Same(x, e) {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			return true
		}
	}
	return false
}

func (m *model) search(k int64) []Entry {
	var out []Entry
	for _, x := range m.entries {
		if x.Key == k {
			out = append(out, x)
		}
	}
	return out
}

func (m *model) rng(lo, hi int64) []Entry {
	var out []Entry
	for _, x := range m.entries {
		if x.Key >= lo && x.Key <= hi {
			out = append(out, x)
		}
	}
	return out
}

// OrderedFactory builds the implementation under test.
type OrderedFactory func(cfg index.Config[Entry]) index.Ordered[Entry]

// Options tunes the conformance run.
type Options struct {
	// NodeSizes to sweep; nil means the default set.
	NodeSizes []int
	// Validate, when non-nil, checks structure-specific invariants; it is
	// called repeatedly during the randomized soak.
	Validate func(impl index.Ordered[Entry]) error
	// SoakOps is the number of randomized operations (default 4000).
	SoakOps int
	// NoDescScan skips descending-scan checks for structures without one.
	NoDescScan bool
	// UpdateHeavyQuadratic marks structures (the array) whose updates are
	// O(n); the soak shrinks to keep test time sane.
	UpdateHeavyQuadratic bool
}

func (o Options) nodeSizes() []int {
	if len(o.NodeSizes) > 0 {
		return o.NodeSizes
	}
	return []int{2, 3, 5, 8, 30, 100}
}

// RunOrdered exercises an order-preserving index.
func RunOrdered(t *testing.T, factory OrderedFactory, opts Options) {
	t.Helper()
	t.Run("Empty", func(t *testing.T) {
		ix := factory(Config(false, 8))
		if _, ok := ix.Search(keyPos(1)); ok {
			t.Error("search on empty index succeeded")
		}
		if ix.Delete(Entry{1, 1}) {
			t.Error("delete on empty index succeeded")
		}
		ix.ScanAsc(func(Entry) bool { t.Error("scan on empty visited"); return false })
		if !opts.NoDescScan {
			ix.ScanDesc(func(Entry) bool { t.Error("desc scan on empty visited"); return false })
		}
		if ix.Len() != 0 {
			t.Error("empty index has nonzero Len")
		}
	})

	t.Run("DeterministicShapes", func(t *testing.T) {
		for _, ns := range opts.nodeSizes() {
			for name, keys := range deterministicShapes() {
				ix := factory(Config(false, ns))
				for i, k := range keys {
					if !ix.Insert(Entry{k, int64(i)}) {
						t.Fatalf("ns=%d %s: insert %d rejected", ns, name, k)
					}
				}
				if ix.Len() != len(keys) {
					t.Fatalf("ns=%d %s: Len=%d want %d", ns, name, ix.Len(), len(keys))
				}
				if opts.Validate != nil {
					if err := opts.Validate(ix); err != nil {
						t.Fatalf("ns=%d %s: %v", ns, name, err)
					}
				}
				sorted := append([]int64(nil), keys...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				checkScan(t, fmt.Sprintf("ns=%d %s", ns, name), ix, sorted, opts.NoDescScan)
				for _, k := range keys {
					if _, ok := ix.Search(keyPos(k)); !ok {
						t.Fatalf("ns=%d %s: key %d not found", ns, name, k)
					}
				}
				if _, ok := ix.Search(keyPos(-12345)); ok {
					t.Fatalf("ns=%d %s: absent key found", ns, name)
				}
			}
		}
	})

	t.Run("Unique", func(t *testing.T) {
		ix := factory(Config(true, 8))
		if !ix.Insert(Entry{5, 1}) {
			t.Fatal("first insert rejected")
		}
		if ix.Insert(Entry{5, 2}) {
			t.Fatal("duplicate key accepted by unique index")
		}
		if ix.Len() != 1 {
			t.Fatalf("Len=%d", ix.Len())
		}
	})

	t.Run("DuplicatesAndIdentityDelete", func(t *testing.T) {
		for _, ns := range opts.nodeSizes() {
			ix := factory(Config(false, ns))
			// 20 duplicates of key 7 among other keys.
			for i := int64(0); i < 20; i++ {
				ix.Insert(Entry{7, i})
				ix.Insert(Entry{i * 100, 1000 + i})
			}
			var got []Entry
			ix.SearchAll(keyPos(7), func(e Entry) bool { got = append(got, e); return true })
			if len(got) != 20 {
				t.Fatalf("ns=%d: SearchAll found %d of 20 duplicates", ns, len(got))
			}
			// Delete a specific one; the others survive.
			if !ix.Delete(Entry{7, 13}) {
				t.Fatalf("ns=%d: identity delete failed", ns)
			}
			if ix.Delete(Entry{7, 13}) {
				t.Fatalf("ns=%d: identity delete repeated", ns)
			}
			n := 0
			ix.SearchAll(keyPos(7), func(e Entry) bool {
				if e.ID == 13 {
					t.Fatalf("ns=%d: deleted entry still present", ns)
				}
				n++
				return true
			})
			if n != 19 {
				t.Fatalf("ns=%d: %d duplicates after delete", ns, n)
			}
			// Early-stop contract.
			n = 0
			ix.SearchAll(keyPos(7), func(Entry) bool { n++; return n < 3 })
			if n != 3 {
				t.Fatalf("ns=%d: SearchAll ignored early stop (visited %d)", ns, n)
			}
		}
	})

	t.Run("Range", func(t *testing.T) {
		ix := factory(Config(false, 5))
		m := &model{}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 500; i++ {
			e := Entry{int64(rng.Intn(200)), int64(i)}
			ix.Insert(e)
			m.insert(e)
		}
		for trial := 0; trial < 100; trial++ {
			lo := int64(rng.Intn(220) - 10)
			hi := lo + int64(rng.Intn(50))
			var got []Entry
			ix.Range(keyPos(lo), keyPos(hi), func(e Entry) bool { got = append(got, e); return true })
			want := m.rng(lo, hi)
			if !sameEntrySet(got, want) {
				t.Fatalf("Range(%d,%d): got %d entries, want %d", lo, hi, len(got), len(want))
			}
			if !keysAscending(got) {
				t.Fatalf("Range(%d,%d) not ascending", lo, hi)
			}
		}
		// Empty and inverted ranges.
		ix.Range(keyPos(1000), keyPos(2000), func(Entry) bool { t.Error("empty range visited"); return false })
		ix.Range(keyPos(50), keyPos(40), func(Entry) bool { t.Error("inverted range visited"); return false })
	})

	t.Run("RandomSoak", func(t *testing.T) {
		ops := opts.SoakOps
		if ops == 0 {
			ops = 4000
		}
		if opts.UpdateHeavyQuadratic && ops > 1500 {
			ops = 1500
		}
		for _, ns := range opts.nodeSizes() {
			for _, unique := range []bool{false, true} {
				soakOrdered(t, factory, opts, ns, unique, ops)
			}
		}
	})

	t.Run("StatsSane", func(t *testing.T) {
		ix := factory(Config(false, 8))
		for i := int64(0); i < 1000; i++ {
			ix.Insert(Entry{i * 3 % 997, i})
		}
		s := ix.Stats()
		if s.Entries != ix.Len() {
			t.Fatalf("Stats.Entries=%d, Len=%d", s.Entries, ix.Len())
		}
		if s.EntrySlots < s.Entries {
			t.Fatalf("EntrySlots %d < Entries %d", s.EntrySlots, s.Entries)
		}
		if b := index.PaperModel.Bytes(s); b <= 0 {
			t.Fatalf("non-positive storage bytes %d", b)
		}
	})
}

func soakOrdered(t *testing.T, factory OrderedFactory, opts Options, ns int, unique bool, ops int) {
	t.Helper()
	ix := factory(Config(unique, ns))
	m := &model{unique: unique}
	rng := rand.New(rand.NewSource(int64(ns)*31 + 7))
	keyRange := int64(ops / 4) // plenty of duplicates and misses
	var nextID int64
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // insert
			e := Entry{rng.Int63n(keyRange), nextID}
			nextID++
			if got, want := ix.Insert(e), m.insert(e); got != want {
				t.Fatalf("ns=%d unique=%v op %d: Insert(%v)=%v want %v", ns, unique, op, e, got, want)
			}
		case r < 8: // delete (usually something present)
			var e Entry
			if len(m.entries) > 0 && rng.Intn(10) < 8 {
				e = m.entries[rng.Intn(len(m.entries))]
			} else {
				e = Entry{rng.Int63n(keyRange), -1}
			}
			if got, want := ix.Delete(e), m.delete(e); got != want {
				t.Fatalf("ns=%d unique=%v op %d: Delete(%v)=%v want %v", ns, unique, op, e, got, want)
			}
		default: // search
			k := rng.Int63n(keyRange)
			want := m.search(k)
			var got []Entry
			ix.SearchAll(keyPos(k), func(e Entry) bool { got = append(got, e); return true })
			if !sameEntrySet(got, want) {
				t.Fatalf("ns=%d unique=%v op %d: SearchAll(%d) got %d want %d entries", ns, unique, op, k, len(got), len(want))
			}
			_, ok := ix.Search(keyPos(k))
			if ok != (len(want) > 0) {
				t.Fatalf("ns=%d unique=%v op %d: Search(%d)=%v want %v", ns, unique, op, k, ok, len(want) > 0)
			}
		}
		if ix.Len() != len(m.entries) {
			t.Fatalf("ns=%d unique=%v op %d: Len=%d want %d", ns, unique, op, ix.Len(), len(m.entries))
		}
		if opts.Validate != nil && op%97 == 0 {
			if err := opts.Validate(ix); err != nil {
				t.Fatalf("ns=%d unique=%v op %d: invariant: %v", ns, unique, op, err)
			}
		}
	}
	if opts.Validate != nil {
		if err := opts.Validate(ix); err != nil {
			t.Fatalf("ns=%d unique=%v final invariant: %v", ns, unique, err)
		}
	}
	// Final full-content comparison, both directions.
	wantKeys := make([]int64, len(m.entries))
	for i, e := range m.entries {
		wantKeys[i] = e.Key
	}
	checkScan(t, fmt.Sprintf("ns=%d unique=%v final", ns, unique), ix, wantKeys, opts.NoDescScan)
}

func checkScan(t *testing.T, label string, ix index.Ordered[Entry], wantSortedKeys []int64, noDesc bool) {
	t.Helper()
	var asc []int64
	ix.ScanAsc(func(e Entry) bool { asc = append(asc, e.Key); return true })
	if !int64SlicesEqual(asc, wantSortedKeys) {
		t.Fatalf("%s: ScanAsc keys mismatch: got %d keys, want %d", label, len(asc), len(wantSortedKeys))
	}
	if noDesc {
		return
	}
	var desc []int64
	ix.ScanDesc(func(e Entry) bool { desc = append(desc, e.Key); return true })
	if len(desc) != len(wantSortedKeys) {
		t.Fatalf("%s: ScanDesc length %d, want %d", label, len(desc), len(wantSortedKeys))
	}
	for i := range desc {
		if desc[i] != wantSortedKeys[len(wantSortedKeys)-1-i] {
			t.Fatalf("%s: ScanDesc out of order at %d", label, i)
		}
	}
}

func deterministicShapes() map[string][]int64 {
	const n = 300
	shapes := map[string][]int64{}
	asc := make([]int64, n)
	desc := make([]int64, n)
	zig := make([]int64, n)
	for i := 0; i < n; i++ {
		asc[i] = int64(i)
		desc[i] = int64(n - i)
		if i%2 == 0 {
			zig[i] = int64(i)
		} else {
			zig[i] = int64(n - i)
		}
	}
	shapes["ascending"] = asc
	shapes["descending"] = desc
	shapes["zigzag"] = zig
	shapes["tiny"] = []int64{5}
	shapes["pair"] = []int64{9, 3}
	return shapes
}

// HashedFactory builds the hashed implementation under test.
type HashedFactory func(cfg index.Config[Entry]) index.Hashed[Entry]

// HashedOptions tunes the hashed conformance run.
type HashedOptions struct {
	NodeSizes []int
	Validate  func(impl index.Hashed[Entry]) error
	SoakOps   int
	// Static marks structures (Chained Bucket Hashing) sized once at
	// creation; the harness passes a capacity hint.
	Static bool
}

func (o HashedOptions) nodeSizes() []int {
	if len(o.NodeSizes) > 0 {
		return o.NodeSizes
	}
	return []int{1, 2, 4, 8, 20, 50}
}

// RunHashed exercises a hash index.
func RunHashed(t *testing.T, factory HashedFactory, opts HashedOptions) {
	t.Helper()
	mk := func(unique bool, ns int) index.Hashed[Entry] {
		cfg := Config(unique, ns)
		cfg.CapacityHint = 4096
		return factory(cfg)
	}
	t.Run("Empty", func(t *testing.T) {
		ix := mk(false, 4)
		if _, ok := ix.SearchKey(HashKey(1), func(e Entry) bool { return e.Key == 1 }); ok {
			t.Error("search on empty succeeded")
		}
		if ix.Delete(Entry{1, 1}) {
			t.Error("delete on empty succeeded")
		}
		if ix.Len() != 0 {
			t.Error("empty Len != 0")
		}
	})

	t.Run("InsertSearchDelete", func(t *testing.T) {
		for _, ns := range opts.nodeSizes() {
			ix := mk(false, ns)
			const n = 1000
			for i := int64(0); i < n; i++ {
				if !ix.Insert(Entry{i, i}) {
					t.Fatalf("ns=%d: insert %d rejected", ns, i)
				}
			}
			if ix.Len() != n {
				t.Fatalf("ns=%d: Len=%d", ns, ix.Len())
			}
			for i := int64(0); i < n; i++ {
				e, ok := ix.SearchKey(HashKey(i), func(e Entry) bool { return e.Key == i })
				if !ok || e.Key != i {
					t.Fatalf("ns=%d: key %d not found", ns, i)
				}
			}
			if _, ok := ix.SearchKey(HashKey(-5), func(e Entry) bool { return e.Key == -5 }); ok {
				t.Fatalf("ns=%d: absent key found", ns)
			}
			// Scan sees every entry exactly once.
			seen := map[int64]int{}
			ix.Scan(func(e Entry) bool { seen[e.Key]++; return true })
			if len(seen) != n {
				t.Fatalf("ns=%d: scan saw %d keys", ns, len(seen))
			}
			for k, c := range seen {
				if c != 1 {
					t.Fatalf("ns=%d: key %d seen %d times", ns, k, c)
				}
			}
			for i := int64(0); i < n; i += 2 {
				if !ix.Delete(Entry{i, i}) {
					t.Fatalf("ns=%d: delete %d failed", ns, i)
				}
			}
			if ix.Len() != n/2 {
				t.Fatalf("ns=%d: Len after deletes = %d", ns, ix.Len())
			}
			for i := int64(0); i < n; i++ {
				_, ok := ix.SearchKey(HashKey(i), func(e Entry) bool { return e.Key == i })
				if ok != (i%2 == 1) {
					t.Fatalf("ns=%d: key %d presence = %v", ns, i, ok)
				}
			}
		}
	})

	t.Run("Unique", func(t *testing.T) {
		ix := mk(true, 4)
		if !ix.Insert(Entry{5, 1}) || ix.Insert(Entry{5, 2}) {
			t.Fatal("unique constraint broken")
		}
	})

	t.Run("DuplicatesAndIdentityDelete", func(t *testing.T) {
		ix := mk(false, 4)
		for i := int64(0); i < 20; i++ {
			ix.Insert(Entry{7, i})
		}
		n := 0
		ix.SearchKeyAll(HashKey(7), func(e Entry) bool { return e.Key == 7 }, func(e Entry) bool { n++; return true })
		if n != 20 {
			t.Fatalf("SearchKeyAll found %d of 20", n)
		}
		if !ix.Delete(Entry{7, 13}) || ix.Delete(Entry{7, 13}) {
			t.Fatal("identity delete misbehaved")
		}
		n = 0
		ix.SearchKeyAll(HashKey(7), func(e Entry) bool { return e.Key == 7 }, func(Entry) bool { n++; return n < 3 })
		if n != 3 {
			t.Fatalf("early stop ignored (visited %d)", n)
		}
	})

	t.Run("RandomSoak", func(t *testing.T) {
		ops := opts.SoakOps
		if ops == 0 {
			ops = 4000
		}
		for _, ns := range opts.nodeSizes() {
			soakHashed(t, mk, opts, ns, ops)
		}
	})

	t.Run("StatsSane", func(t *testing.T) {
		ix := mk(false, 4)
		for i := int64(0); i < 1000; i++ {
			ix.Insert(Entry{i, i})
		}
		s := ix.Stats()
		if s.Entries != ix.Len() {
			t.Fatalf("Stats.Entries=%d, Len=%d", s.Entries, ix.Len())
		}
		if b := index.PaperModel.Bytes(s); b <= 0 {
			t.Fatalf("non-positive storage bytes %d", b)
		}
	})
}

func soakHashed(t *testing.T, mk func(bool, int) index.Hashed[Entry], opts HashedOptions, ns, ops int) {
	t.Helper()
	ix := mk(false, ns)
	m := &model{}
	rng := rand.New(rand.NewSource(int64(ns)*17 + 3))
	keyRange := int64(ops / 4)
	var nextID int64
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 5:
			e := Entry{rng.Int63n(keyRange), nextID}
			nextID++
			if got, want := ix.Insert(e), m.insert(e); got != want {
				t.Fatalf("ns=%d op %d: Insert(%v)=%v want %v", ns, op, e, got, want)
			}
		case r < 8:
			var e Entry
			if len(m.entries) > 0 && rng.Intn(10) < 8 {
				e = m.entries[rng.Intn(len(m.entries))]
			} else {
				e = Entry{rng.Int63n(keyRange), -1}
			}
			if got, want := ix.Delete(e), m.delete(e); got != want {
				t.Fatalf("ns=%d op %d: Delete(%v)=%v want %v", ns, op, e, got, want)
			}
		default:
			k := rng.Int63n(keyRange)
			want := m.search(k)
			var got []Entry
			ix.SearchKeyAll(HashKey(k), func(e Entry) bool { return e.Key == k }, func(e Entry) bool {
				got = append(got, e)
				return true
			})
			if !sameEntrySet(got, want) {
				t.Fatalf("ns=%d op %d: SearchKeyAll(%d) got %d want %d", ns, op, k, len(got), len(want))
			}
		}
		if ix.Len() != len(m.entries) {
			t.Fatalf("ns=%d op %d: Len=%d want %d", ns, op, ix.Len(), len(m.entries))
		}
		if opts.Validate != nil && op%97 == 0 {
			if err := opts.Validate(ix); err != nil {
				t.Fatalf("ns=%d op %d: invariant: %v", ns, op, err)
			}
		}
	}
	// Final scan matches the model as a set.
	var got []Entry
	ix.Scan(func(e Entry) bool { got = append(got, e); return true })
	if !sameEntrySet(got, m.entries) {
		t.Fatalf("ns=%d: final scan has %d entries, want %d", ns, len(got), len(m.entries))
	}
}

func sameEntrySet(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[Entry]int{}
	for _, e := range a {
		count[e]++
	}
	for _, e := range b {
		count[e]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func keysAscending(s []Entry) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1].Key > s[i].Key {
			return false
		}
	}
	return true
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
