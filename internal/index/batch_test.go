package index_test

import (
	"sort"
	"testing"

	"repro/internal/index"
	"repro/internal/index/chainhash"
	"repro/internal/index/exthash"
	"repro/internal/index/indextest"
	"repro/internal/index/linearhash"
	"repro/internal/index/mlh"
)

// The three dynamic hash structures without a native BatchScanner: the
// engine reaches them through the gather fallbacks in batch.go, which
// must hand out exactly the per-entry contract's entries, in full
// blocks, without per-entry allocation.
var fallbackTables = []struct {
	name string
	mk   func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry]
}{
	{"exthash", func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry] { return exthash.New(cfg) }},
	{"linearhash", func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry] { return linearhash.New(cfg) }},
	{"mlh", func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry] { return mlh.New(cfg) }},
}

func fillHashed(t *testing.T, ix index.Hashed[indextest.Entry], n int, dupEvery int) []indextest.Entry {
	t.Helper()
	var want []indextest.Entry
	for i := 0; i < n; i++ {
		e := indextest.Entry{Key: int64(i), ID: int64(i)}
		if dupEvery > 0 && i%dupEvery == 0 {
			e.Key = int64(i / dupEvery) // collide keys, distinct IDs
		}
		if !ix.Insert(e) {
			t.Fatalf("insert %v failed", e)
		}
		want = append(want, e)
	}
	return want
}

func sortEntries(s []indextest.Entry) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Key != s[j].Key {
			return s[i].Key < s[j].Key
		}
		return s[i].ID < s[j].ID
	})
}

// TestScanHashedBatchesFallback: the gatherScan fallback must visit the
// same entry set the per-entry Scan visits, in full cap(buf) blocks
// (except the last), and honor early exit mid-stream.
func TestScanHashedBatchesFallback(t *testing.T) {
	const n = 5000
	for _, c := range fallbackTables {
		t.Run(c.name, func(t *testing.T) {
			ix := c.mk(indextest.Config(false, 4))
			if _, ok := ix.(index.BatchScanner[indextest.Entry]); ok {
				t.Fatalf("%s unexpectedly implements BatchScanner; fallback untested", c.name)
			}
			want := fillHashed(t, ix, n, 7)

			buf := make([]indextest.Entry, 0, 256)
			var got []indextest.Entry
			blocks := 0
			index.ScanHashedBatches(ix, buf, func(block []indextest.Entry) bool {
				blocks++
				if len(block) != cap(buf) && blocks <= n/cap(buf) {
					t.Fatalf("non-final block %d has %d entries, want %d", blocks, len(block), cap(buf))
				}
				got = append(got, block...)
				return true
			})
			if len(got) != n {
				t.Fatalf("batched scan yielded %d entries, want %d", len(got), n)
			}
			sortEntries(want)
			sortEntries(got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("entry %d: got %v want %v", i, got[i], want[i])
				}
			}

			// Early exit: stopping after the first block stops the scan.
			calls := 0
			index.ScanHashedBatches(ix, buf, func(block []indextest.Entry) bool {
				calls++
				return false
			})
			if calls != 1 {
				t.Fatalf("scan continued after fn returned false: %d calls", calls)
			}
		})
	}
}

// TestScanHashedBatchesNativePreferred: chainhash has a native
// ScanBatches; the dispatcher must use it, and its output must match
// the gather fallback's for the same data.
func TestScanHashedBatchesNativePreferred(t *testing.T) {
	const n = 3000
	native := chainhash.New(indextest.Config(false, 4))
	if _, ok := interface{}(native).(index.BatchScanner[indextest.Entry]); !ok {
		t.Fatal("chainhash lost its native BatchScanner capability")
	}
	want := fillHashed(t, native, n, 0)
	var got []indextest.Entry
	index.ScanHashedBatches[indextest.Entry](native, make([]indextest.Entry, 0, 256),
		func(block []indextest.Entry) bool { got = append(got, block...); return true })
	sortEntries(want)
	sortEntries(got)
	if len(got) != len(want) {
		t.Fatalf("native batched scan yielded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestSearchKeyAppendFallback: the searchKeyGather fallback must return
// exactly SearchKeyAll's match set and extend (not clobber) the caller's
// slice.
func TestSearchKeyAppendFallback(t *testing.T) {
	for _, c := range fallbackTables {
		t.Run(c.name, func(t *testing.T) {
			ix := c.mk(indextest.Config(false, 4))
			fillHashed(t, ix, 2000, 5) // keys 0..399 appear 5x, plus singletons
			if _, ok := ix.(index.HashedBatcher[indextest.Entry]); ok {
				t.Fatalf("%s unexpectedly implements HashedBatcher; fallback untested", c.name)
			}
			for _, k := range []int64{0, 17, 399} {
				match := func(e indextest.Entry) bool { return e.Key == k }
				var want []indextest.Entry
				ix.SearchKeyAll(indextest.HashKey(k), match,
					func(e indextest.Entry) bool { want = append(want, e); return true })

				sentinel := indextest.Entry{Key: -1, ID: -1}
				out := append(make([]indextest.Entry, 0, 1+len(want)), sentinel)
				out = index.SearchKeyAppend(ix, indextest.HashKey(k), match, out)
				if out[0] != sentinel {
					t.Fatal("SearchKeyAppend clobbered the existing prefix")
				}
				got := out[1:]
				sortEntries(want)
				sortEntries(got)
				if len(got) != len(want) {
					t.Fatalf("key %d: %d matches vs SearchKeyAll's %d", k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("key %d match %d: got %v want %v", k, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestGatherFallbackAllocsConstant: the gather fallbacks may pay a
// bounded setup cost (closure cells), but never a per-entry allocation —
// doubling the table must not change the allocation count when the
// caller supplies the block buffer and a presized output slice.
func TestGatherFallbackAllocsConstant(t *testing.T) {
	for _, c := range fallbackTables {
		t.Run(c.name, func(t *testing.T) {
			small := c.mk(indextest.Config(true, 4))
			big := c.mk(indextest.Config(true, 4))
			fillHashed(t, small, 2000, 0)
			fillHashed(t, big, 8000, 0)
			buf := make([]indextest.Entry, 0, 256)
			scanAllocs := func(ix index.Hashed[indextest.Entry]) float64 {
				return testing.AllocsPerRun(10, func() {
					index.ScanHashedBatches(ix, buf, func(block []indextest.Entry) bool { return true })
				})
			}
			if s, b := scanAllocs(small), scanAllocs(big); b > s {
				t.Fatalf("batched scan allocates per entry: %.0f allocs at 2k rows, %.0f at 8k", s, b)
			}

			out := make([]indextest.Entry, 0, 8)
			k := int64(1234)
			match := func(e indextest.Entry) bool { return e.Key == k }
			if a := testing.AllocsPerRun(10, func() {
				out = index.SearchKeyAppend(big, indextest.HashKey(k), match, out[:0])
			}); a > 2 {
				t.Fatalf("SearchKeyAppend fallback allocates %.0f per probe with presized out", a)
			}
		})
	}
}
