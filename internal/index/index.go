// Package index defines the common contract shared by the eight main
// memory index structures the paper studies (§3.2): sorted arrays, AVL
// Trees, B Trees, T Trees, Chained Bucket Hashing, Extendible Hashing,
// Linear Hashing, and Modified Linear Hashing.
//
// Indices are built "in a main memory style" (§3.2.2): they hold entries —
// in the engine, tuple pointers — never key values. All key access goes
// through caller-supplied comparison and hash functions that dereference
// the entry, which is exactly the arrangement §2.2 describes (a single
// tuple pointer gives the index access to both the attribute value and the
// tuple itself).
package index

import "repro/internal/meter"

// Pos locates a search key relative to an entry: it returns a negative
// number when the entry sorts before the key, zero when the entry matches,
// and a positive number when the entry sorts after the key. It is the
// partial application cmp(entry, key) so ordered indices can search
// without knowing the key type.
type Pos[E any] func(e E) int

// Ordered is an order-preserving index over entries of type E.
type Ordered[E any] interface {
	// Insert adds an entry. It returns false when the index is unique and
	// an equal entry is already present.
	Insert(e E) bool
	// Delete removes the entry (matched by identity among equals). It
	// returns false when no such entry exists.
	Delete(e E) bool
	// Search returns an entry matching pos, if any.
	Search(pos Pos[E]) (E, bool)
	// SearchAll visits every entry matching pos until fn returns false.
	// Matching entries are logically contiguous in an ordered index, so
	// this is a search plus a bidirectional scan (§3.3.4 Test 6).
	SearchAll(pos Pos[E], fn func(E) bool)
	// Range visits, in ascending order, every entry e with
	// lo(e) >= 0 and hi(e) <= 0 — i.e. key_lo <= e <= key_hi — until fn
	// returns false.
	Range(lo, hi Pos[E], fn func(E) bool)
	// ScanAsc visits all entries in ascending order until fn returns false.
	ScanAsc(fn func(E) bool)
	// ScanDesc visits all entries in descending order until fn returns false.
	ScanDesc(fn func(E) bool)
	// Len returns the number of entries.
	Len() int
	// Stats reports the structure's shape for storage-cost accounting.
	Stats() Stats
}

// Hashed is a hash index over entries of type E. The key is communicated
// as its hash plus a match predicate, so the index never sees key values.
type Hashed[E any] interface {
	// Insert adds an entry. It returns false when the index is unique and
	// a matching entry is already present.
	Insert(e E) bool
	// Delete removes the entry (matched by identity). It returns false
	// when no such entry exists.
	Delete(e E) bool
	// SearchKey returns an entry in hash bucket h satisfying match.
	SearchKey(h uint64, match func(E) bool) (E, bool)
	// SearchKeyAll visits every entry in bucket h satisfying match until
	// fn returns false.
	SearchKeyAll(h uint64, match func(E) bool, fn func(E) bool)
	// Scan visits all entries in unspecified order until fn returns false.
	Scan(fn func(E) bool)
	// Len returns the number of entries.
	Len() int
	// Stats reports the structure's shape for storage-cost accounting.
	Stats() Stats
}

// Stats describes an index structure's allocated shape, in units (slots,
// pointers, words) rather than bytes, so a SizeModel can price it under
// the paper's 4-byte layout or a modern 8-byte layout.
type Stats struct {
	Entries      int // live entries
	EntrySlots   int // allocated entry slots (incl. unused capacity)
	Nodes        int // allocated nodes/buckets
	ChildPtrs    int // allocated child/next/parent pointer fields
	DirSlots     int // hash directory slots
	ControlWords int // per-node control words (counts, balance factors, ...)
}

// SizeModel prices a Stats shape in bytes.
type SizeModel struct {
	Ptr     int // bytes per pointer
	Data    int // bytes per entry slot (a tuple pointer in the MM-DBMS)
	Control int // bytes per control word
}

// PaperModel is the 1986 VAX layout (4-byte pointers and data items) the
// paper's storage factors assume. ModernModel is a 64-bit layout.
var (
	PaperModel  = SizeModel{Ptr: 4, Data: 4, Control: 4}
	ModernModel = SizeModel{Ptr: 8, Data: 8, Control: 8}
)

// Bytes prices the shape in bytes under the model.
func (m SizeModel) Bytes(s Stats) int {
	return s.EntrySlots*m.Data + (s.ChildPtrs+s.DirSlots)*m.Ptr + s.ControlWords*m.Control
}

// Factor returns the storage factor the paper reports: structure bytes
// divided by the bytes of the raw entries (the sorted-array minimum).
func (m SizeModel) Factor(s Stats) float64 {
	if s.Entries == 0 {
		return 0
	}
	return float64(m.Bytes(s)) / float64(s.Entries*m.Data)
}

// Kind names one of the studied index structures.
type Kind int

// The eight structures of §3.2, in the paper's listing order.
const (
	KindArray Kind = iota
	KindAVL
	KindBTree
	KindTTree
	KindChainedHash
	KindExtendible
	KindLinearHash
	KindModLinearHash
)

// String returns the paper's name for the structure.
func (k Kind) String() string {
	switch k {
	case KindArray:
		return "Array"
	case KindAVL:
		return "AVL Tree"
	case KindBTree:
		return "B Tree"
	case KindTTree:
		return "T Tree"
	case KindChainedHash:
		return "Chained Bucket Hash"
	case KindExtendible:
		return "Extendible Hash"
	case KindLinearHash:
		return "Linear Hash"
	case KindModLinearHash:
		return "Mod Linear Hash"
	default:
		return "unknown"
	}
}

// OrderPreserving reports whether the structure supports range queries.
func (k Kind) OrderPreserving() bool {
	switch k {
	case KindArray, KindAVL, KindBTree, KindTTree:
		return true
	default:
		return false
	}
}

// Config carries the construction parameters shared by all structures.
type Config[E any] struct {
	// Cmp is the total order for ordered structures (required there).
	Cmp func(a, b E) int
	// Hash and Eq serve hash structures (required there). Eq is key
	// equality: Eq(a,b) iff the entries' keys are equal.
	Hash func(e E) uint64
	Eq   func(a, b E) bool
	// Same is entry identity, used by Delete to remove one specific entry
	// among key-equal duplicates. Defaults to Eq (ordered structures:
	// Cmp == 0) when nil.
	Same func(a, b E) bool
	// Unique rejects key-equal duplicate inserts.
	Unique bool
	// NodeSize is the structure's tunable size knob — the x-axis of
	// Graphs 1 and 2. Items per node for T/B Trees and hash buckets;
	// target average chain length for Modified Linear Hashing; ignored by
	// arrays and AVL trees. Implementations substitute their default when
	// it is zero or negative.
	NodeSize int
	// CapacityHint sizes static structures (Chained Bucket Hashing's
	// table) and presizes dynamic ones.
	CapacityHint int
	// Meter, when non-nil, accumulates the operation counts the paper
	// used to validate its implementations (§3.1).
	Meter *meter.Counters
}

// SameOrEq returns the identity predicate, defaulting to Eq and then to
// Cmp == 0.
func (c Config[E]) SameOrEq() func(a, b E) bool {
	if c.Same != nil {
		return c.Same
	}
	if c.Eq != nil {
		return c.Eq
	}
	cmp := c.Cmp
	return func(a, b E) bool { return cmp(a, b) == 0 }
}
