// Package sortedarray implements the array index [AHK85] of §3.2: a
// dynamically grown sorted array searched with pure binary search. It uses
// the minimum amount of storage and scans faster than any other structure,
// but every update moves half the array on average — the paper found its
// mixed-workload performance two orders of magnitude worse than the other
// indices, making it useful only as a read-only (or build-once) index.
package sortedarray

import (
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/sortutil"
)

// Array is a sorted array index. The zero value is not usable; call New.
type Array[E any] struct {
	cfg   index.Config[E]
	cmp   func(a, b E) int
	same  func(a, b E) bool
	m     *meter.Counters
	items []E
}

// New creates an empty array index. cfg.Cmp is required; NodeSize is
// ignored (the array is one contiguous node).
func New[E any](cfg index.Config[E]) *Array[E] {
	if cfg.Cmp == nil {
		panic("sortedarray: Config.Cmp is required")
	}
	return &Array[E]{
		cfg:   cfg,
		cmp:   cfg.Cmp,
		same:  cfg.SameOrEq(),
		m:     cfg.Meter,
		items: make([]E, 0, max(cfg.CapacityHint, 0)),
	}
}

// Build bulk-loads entries: append then sort, the cheap construction path
// the Sort Merge join uses (quicksort with the insertion-sort cutoff).
func Build[E any](cfg index.Config[E], entries []E) *Array[E] {
	a := New(cfg)
	a.items = append(a.items, entries...)
	a.m.AddMove(int64(len(entries)))
	sortutil.SortMetered(a.items, a.cmp, a.m)
	return a
}

// FromSorted wraps an already-sorted entry slice as an array index,
// taking ownership of the slice. It is the zero-copy landing point for
// bulk builds that sort elsewhere (the normalized-key radix sort of
// internal/sortkey): the sort kernel orders (key, pointer) pairs, the
// caller extracts the pointers in order, and the index adopts them
// without re-sorting. Entries must be sorted by cfg.Cmp order — the
// caller's sort must agree with the comparator, which is exactly the
// order-preservation property the sortkey encoder guarantees.
func FromSorted[E any](cfg index.Config[E], entries []E) *Array[E] {
	a := New(cfg)
	a.items = entries
	return a
}

// Len returns the number of entries.
func (a *Array[E]) Len() int { return len(a.items) }

// At returns entry i in sorted order; with Seek it supports the merge
// join's direct positional access.
func (a *Array[E]) At(i int) E { return a.items[i] }

// Seek returns the position of the first entry with pos(e) >= 0.
func (a *Array[E]) Seek(pos index.Pos[E]) int {
	return sortutil.Search(a.items, pos, a.m)
}

// Insert adds e, shifting the tail — O(n) data movement.
func (a *Array[E]) Insert(e E) bool {
	i := sortutil.Search(a.items, func(x E) int { return a.cmp(x, e) }, a.m)
	if a.cfg.Unique && i < len(a.items) && a.cmp(a.items[i], e) == 0 {
		a.m.AddCompare(1)
		return false
	}
	var zero E
	a.items = append(a.items, zero)
	copy(a.items[i+1:], a.items[i:])
	a.items[i] = e
	a.m.AddMove(int64(len(a.items) - i))
	return true
}

// Delete removes the entry identical to e — O(n) data movement.
func (a *Array[E]) Delete(e E) bool {
	i := sortutil.Search(a.items, func(x E) int { return a.cmp(x, e) }, a.m)
	for ; i < len(a.items); i++ {
		a.m.AddCompare(1)
		if a.cmp(a.items[i], e) != 0 {
			return false
		}
		if a.same(a.items[i], e) {
			copy(a.items[i:], a.items[i+1:])
			a.items = a.items[:len(a.items)-1]
			a.m.AddMove(int64(len(a.items) - i))
			return true
		}
	}
	return false
}

// Search returns an entry matching pos via pure binary search.
func (a *Array[E]) Search(pos index.Pos[E]) (E, bool) {
	i := sortutil.Search(a.items, pos, a.m)
	if i < len(a.items) && pos(a.items[i]) == 0 {
		a.m.AddCompare(1)
		return a.items[i], true
	}
	var zero E
	return zero, false
}

// SearchAll visits every entry matching pos.
func (a *Array[E]) SearchAll(pos index.Pos[E], fn func(E) bool) {
	for i := sortutil.Search(a.items, pos, a.m); i < len(a.items); i++ {
		if pos(a.items[i]) != 0 {
			return
		}
		if !fn(a.items[i]) {
			return
		}
	}
}

// SearchAllAppend appends every entry matching pos to out and returns the
// extended slice: the batched sibling of SearchAll. Matches are contiguous
// in a sorted array, so this is one binary search plus one block append —
// the same §3.1 work SearchAll records.
func (a *Array[E]) SearchAllAppend(pos index.Pos[E], out []E) []E {
	i := sortutil.Search(a.items, pos, a.m)
	j := i
	for j < len(a.items) && pos(a.items[j]) == 0 {
		j++
	}
	return append(out, a.items[i:j]...)
}

// Range visits entries between the keys described by lo and hi, ascending.
func (a *Array[E]) Range(lo, hi index.Pos[E], fn func(E) bool) {
	for i := sortutil.Search(a.items, lo, a.m); i < len(a.items); i++ {
		if hi(a.items[i]) > 0 {
			return
		}
		if !fn(a.items[i]) {
			return
		}
	}
}

// ScanAsc visits all entries in ascending order — a contiguous sweep, the
// fastest scan of any index studied (the paper measured ~2/3 the T Tree's
// scan time).
func (a *Array[E]) ScanAsc(fn func(E) bool) {
	for _, e := range a.items {
		if !fn(e) {
			return
		}
	}
}

// ScanBatches visits all entries in ascending order, handing them to fn
// in blocks. The array's storage is already one contiguous block, so this
// is zero-copy: buf is ignored and fn receives subslices of the array
// itself (up to 256 entries each). fn must not retain or mutate a block.
func (a *Array[E]) ScanBatches(buf []E, fn func(block []E) bool) {
	const block = 256
	items := a.items
	for len(items) > block {
		if !fn(items[:block:block]) {
			return
		}
		items = items[block:]
	}
	if len(items) > 0 {
		fn(items[:len(items):len(items)])
	}
}

// ScanDesc visits all entries in descending order.
func (a *Array[E]) ScanDesc(fn func(E) bool) {
	for i := len(a.items) - 1; i >= 0; i-- {
		if !fn(a.items[i]) {
			return
		}
	}
}

// Stats reports the structure's shape: entries only, no pointers — the
// storage baseline every other factor is measured against.
func (a *Array[E]) Stats() index.Stats {
	return index.Stats{
		Entries:    len(a.items),
		EntrySlots: cap(a.items),
		Nodes:      1,
	}
}
