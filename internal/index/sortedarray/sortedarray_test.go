package sortedarray

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/meter"
)

func TestConformance(t *testing.T) {
	indextest.RunOrdered(t,
		func(cfg index.Config[indextest.Entry]) index.Ordered[indextest.Entry] {
			return New(cfg)
		},
		indextest.Options{
			NodeSizes:            []int{0}, // arrays have no node size
			UpdateHeavyQuadratic: true,
			Validate: func(impl index.Ordered[indextest.Entry]) error {
				return nil // sortedness is checked by the scan comparisons
			},
		})
}

func intCmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func TestBuildSortsBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := make([]int64, 5000)
	for i := range entries {
		entries[i] = rng.Int63n(1000)
	}
	a := Build(index.Config[int64]{Cmp: intCmp}, entries)
	if a.Len() != len(entries) {
		t.Fatalf("Len=%d", a.Len())
	}
	want := append([]int64(nil), entries...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != want[i] {
			t.Fatalf("position %d: %d != %d", i, a.At(i), want[i])
		}
	}
}

func TestSeekAndAt(t *testing.T) {
	a := Build(index.Config[int64]{Cmp: intCmp}, []int64{10, 20, 20, 30})
	pos := func(k int64) index.Pos[int64] {
		return func(e int64) int { return intCmp(e, k) }
	}
	if i := a.Seek(pos(20)); i != 1 {
		t.Fatalf("Seek(20)=%d", i)
	}
	if i := a.Seek(pos(25)); i != 3 {
		t.Fatalf("Seek(25)=%d", i)
	}
	if i := a.Seek(pos(99)); i != 4 {
		t.Fatalf("Seek(99)=%d", i)
	}
}

func TestUpdateCostIsLinear(t *testing.T) {
	// "Every update requires moving half of the array, on the average"
	// (§3.2.2): measure data movement for mid-array inserts.
	var m meter.Counters
	a := New(index.Config[int64]{Cmp: intCmp, Meter: &m})
	const n = 2000
	for i := int64(0); i < n; i++ {
		a.Insert(i * 2)
	}
	m.Reset()
	a.Insert(n) // middle of the array
	if m.DataMoves < n/4 {
		t.Fatalf("mid insert moved only %d slots; expected ~%d", m.DataMoves, n/2)
	}
}

func TestCapacityHintPreallocates(t *testing.T) {
	a := New(index.Config[int64]{Cmp: intCmp, CapacityHint: 64})
	if got := cap(a.items); got != 64 {
		t.Fatalf("cap=%d", got)
	}
}
