package chainhash

import (
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/meter"
)

func TestConformance(t *testing.T) {
	indextest.RunHashed(t,
		func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry] {
			return New(cfg)
		},
		indextest.HashedOptions{Static: true})
}

func intTable(nodeSize, capacity int, m *meter.Counters) *Table[int64] {
	return New(index.Config[int64]{
		Hash:         func(e int64) uint64 { return indextest.HashKey(e) },
		Eq:           func(a, b int64) bool { return a == b },
		NodeSize:     nodeSize,
		CapacityHint: capacity,
		Meter:        m,
	})
}

func TestStaticTableDoesNotGrow(t *testing.T) {
	tb := intTable(4, 100, nil)
	slots := len(tb.slots)
	for i := int64(0); i < 10000; i++ { // 100x the capacity hint
		tb.Insert(i)
	}
	if len(tb.slots) != slots {
		t.Fatalf("static table grew from %d to %d slots", slots, len(tb.slots))
	}
	if tb.Len() != 10000 {
		t.Fatalf("Len=%d", tb.Len())
	}
	// Everything still findable — just via longer chains.
	for i := int64(0); i < 10000; i += 97 {
		if _, ok := tb.SearchKey(indextest.HashKey(i), func(e int64) bool { return e == i }); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestSearchCostGrowsWithOverload(t *testing.T) {
	var m meter.Counters
	tb := intTable(4, 1000, &m)
	for i := int64(0); i < 1000; i++ {
		tb.Insert(i)
	}
	m.Reset()
	for i := int64(0); i < 1000; i++ {
		tb.SearchKey(indextest.HashKey(i), func(e int64) bool { return e == i })
	}
	atCapacity := m.Comparisons

	tb2 := intTable(4, 1000, &m)
	for i := int64(0); i < 10000; i++ {
		tb2.Insert(i)
	}
	m.Reset()
	for i := int64(0); i < 1000; i++ {
		tb2.SearchKey(indextest.HashKey(i), func(e int64) bool { return e == i })
	}
	overloaded := m.Comparisons
	if overloaded < atCapacity*4 {
		t.Fatalf("overloading barely changed search cost: %d vs %d", overloaded, atCapacity)
	}
}

func TestStorageFactorIncludesUnusedSlots(t *testing.T) {
	// §3.2.2: chained bucket hashing's 2.3 factor came from one pointer
	// per data item plus partly-unused table slots. With single-item
	// nodes the factor must exceed 2 (item + next pointer + table share).
	tb := intTable(1, 1000, nil)
	for i := int64(0); i < 1000; i++ {
		tb.Insert(i)
	}
	f := index.PaperModel.Factor(tb.Stats())
	if f < 2.0 || f > 4.0 {
		t.Fatalf("storage factor %.2f outside the expected 2-4 band", f)
	}
}
