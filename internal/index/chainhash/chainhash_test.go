package chainhash

import (
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/meter"
)

func TestConformance(t *testing.T) {
	indextest.RunHashed(t,
		func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry] {
			return New(cfg)
		},
		indextest.HashedOptions{Static: true})
}

func intTable(nodeSize, capacity int, m *meter.Counters) *Table[int64] {
	return New(index.Config[int64]{
		Hash:         func(e int64) uint64 { return indextest.HashKey(e) },
		Eq:           func(a, b int64) bool { return a == b },
		NodeSize:     nodeSize,
		CapacityHint: capacity,
		Meter:        m,
	})
}

func TestStaticTableDoesNotGrow(t *testing.T) {
	tb := intTable(4, 100, nil)
	slots := len(tb.slots)
	for i := int64(0); i < 10000; i++ { // 100x the capacity hint
		tb.Insert(i)
	}
	if len(tb.slots) != slots {
		t.Fatalf("static table grew from %d to %d slots", slots, len(tb.slots))
	}
	if tb.Len() != 10000 {
		t.Fatalf("Len=%d", tb.Len())
	}
	// Everything still findable — just via longer chains.
	for i := int64(0); i < 10000; i += 97 {
		if _, ok := tb.SearchKey(indextest.HashKey(i), func(e int64) bool { return e == i }); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestSearchCostGrowsWithOverload(t *testing.T) {
	var m meter.Counters
	tb := intTable(4, 1000, &m)
	for i := int64(0); i < 1000; i++ {
		tb.Insert(i)
	}
	m.Reset()
	for i := int64(0); i < 1000; i++ {
		tb.SearchKey(indextest.HashKey(i), func(e int64) bool { return e == i })
	}
	atCapacity := m.Comparisons

	tb2 := intTable(4, 1000, &m)
	for i := int64(0); i < 10000; i++ {
		tb2.Insert(i)
	}
	m.Reset()
	for i := int64(0); i < 1000; i++ {
		tb2.SearchKey(indextest.HashKey(i), func(e int64) bool { return e == i })
	}
	overloaded := m.Comparisons
	if overloaded < atCapacity*4 {
		t.Fatalf("overloading barely changed search cost: %d vs %d", overloaded, atCapacity)
	}
}

func TestSlotCountIsPowerOfTwo(t *testing.T) {
	for _, hint := range []int{1, 3, 4, 100, 1000, 4096, 100000} {
		tb := intTable(4, hint, nil)
		n := len(tb.slots)
		if n&(n-1) != 0 || n < 1 {
			t.Fatalf("hint %d: %d slots, not a power of two", hint, n)
		}
		if tb.mask != uint64(n-1) {
			t.Fatalf("hint %d: mask %#x does not match %d slots", hint, tb.mask, n)
		}
		// Still sized for ~one full node per slot: within 2x below the
		// pre-rounding count hint/nodeSize, and never above it.
		if 2*n < hint/4 {
			t.Fatalf("hint %d: only %d slots", hint, n)
		}
		if hint >= 4 && n > hint/4 {
			t.Fatalf("hint %d: %d slots exceed the pre-rounding count", hint, n)
		}
	}
}

func TestStorageFactorIncludesUnusedSlots(t *testing.T) {
	// §3.2.2: chained bucket hashing's 2.3 factor came from one pointer
	// per data item plus partly-unused table slots. With single-item
	// nodes the factor must exceed 2 (item + next pointer + table share).
	tb := intTable(1, 1000, nil)
	for i := int64(0); i < 1000; i++ {
		tb.Insert(i)
	}
	f := index.PaperModel.Factor(tb.Stats())
	if f < 2.0 || f > 4.0 {
		t.Fatalf("storage factor %.2f outside the expected 2-4 band", f)
	}
}

// The slot computation runs once per Insert and once per probe, on the
// hot path of every hash join build. The benchmark pair documents why
// New rounds the slot count to a power of two: a runtime-variable
// modulo is a hardware divide, the mask is a single AND. The slot count
// is loaded from a package variable so the compiler cannot
// strength-reduce the modulo the way it could a constant.
var (
	benchSlots uint64 = 1 << 14
	benchMask  uint64 = 1<<14 - 1
	benchSink  uint64
)

func BenchmarkSlotModulo(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += indextest.HashKey(int64(i)) % benchSlots
	}
	benchSink = s
}

func BenchmarkSlotMask(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += indextest.HashKey(int64(i)) & benchMask
	}
	benchSink = s
}

// End-to-end probe cost at one full node per slot.
func BenchmarkSearchKey(b *testing.B) {
	const n = 1 << 16
	tb := intTable(4, n, nil)
	for i := int64(0); i < n; i++ {
		tb.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i & (n - 1))
		if _, ok := tb.SearchKey(indextest.HashKey(k), func(e int64) bool { return e == k }); !ok {
			b.Fatal("key lost")
		}
	}
}
