// Package chainhash implements Chained Bucket Hashing [Knu73, AHU74] as
// studied in §3.2: a static hash table — the table size is fixed at
// creation — with each slot holding a chain of multi-item nodes. It has
// excellent performance for static data, which made it the paper's
// temporary-index structure for unordered data (e.g. the inner table of
// the Hash Join), but it cannot grow: load it far past its capacity hint
// and the chains simply lengthen.
package chainhash

import (
	"repro/internal/index"
	"repro/internal/meter"
)

// DefaultNodeSize is the default chain-node capacity.
const DefaultNodeSize = 4

// DefaultCapacity is assumed when no capacity hint is given.
const DefaultCapacity = 1024

// Table is a chained-bucket hash table. The zero value is not usable;
// call New.
type Table[E any] struct {
	cfg      index.Config[E]
	hash     func(E) uint64
	eq       func(a, b E) bool
	same     func(a, b E) bool
	m        *meter.Counters
	slots    []*chainNode[E]
	mask     uint64 // len(slots)-1; slot count is always a power of two
	size     int
	nodeSize int
}

type chainNode[E any] struct {
	items []E // unordered within the node; cap nodeSize
	next  *chainNode[E]
}

// New creates a table sized for cfg.CapacityHint entries: the slot count
// is chosen so a full table averages one full node per slot, then
// rounded up to a power of two so the slot computation is a bit mask
// rather than an integer modulo (a ~20-cycle divide on every Insert and
// probe — see BenchmarkSlotModulo vs BenchmarkSlotMask).
func New[E any](cfg index.Config[E]) *Table[E] {
	if cfg.Hash == nil || cfg.Eq == nil {
		panic("chainhash: Config.Hash and Config.Eq are required")
	}
	ns := cfg.NodeSize
	if ns <= 0 {
		ns = DefaultNodeSize
	}
	hint := cfg.CapacityHint
	if hint <= 0 {
		hint = DefaultCapacity
	}
	// Largest power of two not exceeding the one-full-node-per-slot
	// count: the table never holds more directory than the hint implies
	// (the §3.2.2 storage factor stays in the paper's band), chains just
	// run marginally longer at full load.
	nslots := 1
	for nslots*2 <= hint/ns {
		nslots <<= 1
	}
	return &Table[E]{
		cfg:      cfg,
		hash:     cfg.Hash,
		eq:       cfg.Eq,
		same:     cfg.SameOrEq(),
		m:        cfg.Meter,
		slots:    make([]*chainNode[E], nslots),
		mask:     uint64(nslots - 1),
		size:     0,
		nodeSize: ns,
	}
}

// Len returns the number of entries.
func (t *Table[E]) Len() int { return t.size }

// SetMeter replaces the table's operation meter. The parallel hash join
// builds each partition table with its build worker's private counters,
// then detaches them (SetMeter(nil)) before the table is probed by many
// workers at once — a non-nil meter is single-goroutine state and would
// be a data race under concurrent SearchKeyAll.
func (t *Table[E]) SetMeter(m *meter.Counters) { t.m = m }

func (t *Table[E]) slot(h uint64) int { return int(h & t.mask) }

// Insert adds e; false when unique and a key-equal entry exists.
func (t *Table[E]) Insert(e E) bool {
	t.m.AddHash(1)
	s := t.slot(t.hash(e))
	if t.cfg.Unique {
		for n := t.slots[s]; n != nil; n = n.next {
			t.m.AddNode(1)
			for _, x := range n.items {
				t.m.AddCompare(1)
				if t.eq(x, e) {
					return false
				}
			}
		}
	}
	for n := t.slots[s]; n != nil; n = n.next {
		if len(n.items) < cap(n.items) {
			n.items = append(n.items, e)
			t.m.AddMove(1)
			t.size++
			return true
		}
	}
	t.m.AddAlloc(1)
	n := &chainNode[E]{items: make([]E, 1, t.nodeSize), next: t.slots[s]}
	n.items[0] = e
	t.slots[s] = n
	t.size++
	return true
}

// Delete removes the entry identical to e.
func (t *Table[E]) Delete(e E) bool {
	t.m.AddHash(1)
	s := t.slot(t.hash(e))
	var prev *chainNode[E]
	for n := t.slots[s]; n != nil; prev, n = n, n.next {
		t.m.AddNode(1)
		for i, x := range n.items {
			t.m.AddCompare(1)
			if t.same(x, e) {
				n.items[i] = n.items[len(n.items)-1]
				n.items = n.items[:len(n.items)-1]
				t.m.AddMove(1)
				t.size--
				if len(n.items) == 0 {
					if prev == nil {
						t.slots[s] = n.next
					} else {
						prev.next = n.next
					}
				}
				return true
			}
		}
	}
	return false
}

// SearchKey returns an entry in bucket h satisfying match.
func (t *Table[E]) SearchKey(h uint64, match func(E) bool) (E, bool) {
	for n := t.slots[t.slot(h)]; n != nil; n = n.next {
		t.m.AddNode(1)
		for _, x := range n.items {
			t.m.AddCompare(1)
			if match(x) {
				return x, true
			}
		}
	}
	var zero E
	return zero, false
}

// SearchKeyAll visits every entry in bucket h satisfying match.
func (t *Table[E]) SearchKeyAll(h uint64, match func(E) bool, fn func(E) bool) {
	for n := t.slots[t.slot(h)]; n != nil; n = n.next {
		t.m.AddNode(1)
		for _, x := range n.items {
			t.m.AddCompare(1)
			if match(x) && !fn(x) {
				return
			}
		}
	}
}

// SearchKeyAppend appends every entry in bucket h satisfying match to out
// and returns the extended slice. It is the batched sibling of
// SearchKeyAll — one call hands back the whole match set instead of one
// callback per match — and records exactly the same §3.1 operation
// counts: one node visit per chain node and one comparison per item.
func (t *Table[E]) SearchKeyAppend(h uint64, match func(E) bool, out []E) []E {
	for n := t.slots[t.slot(h)]; n != nil; n = n.next {
		t.m.AddNode(1)
		for _, x := range n.items {
			t.m.AddCompare(1)
			if match(x) {
				out = append(out, x)
			}
		}
	}
	return out
}

// ScanBatches visits all entries in unspecified order, handing them to fn
// in blocks gathered into buf (allocating a 256-entry block when buf has
// no capacity). The block is reused between calls; fn must not retain it.
func (t *Table[E]) ScanBatches(buf []E, fn func(block []E) bool) {
	if cap(buf) == 0 {
		buf = make([]E, 0, 256)
	}
	buf = buf[:0]
	for _, head := range t.slots {
		for n := head; n != nil; n = n.next {
			items := n.items
			for len(items) > 0 {
				take := cap(buf) - len(buf)
				if take > len(items) {
					take = len(items)
				}
				buf = append(buf, items[:take]...)
				items = items[take:]
				if len(buf) == cap(buf) {
					if !fn(buf) {
						return
					}
					buf = buf[:0]
				}
			}
		}
	}
	if len(buf) > 0 {
		fn(buf)
	}
}

// Scan visits all entries in unspecified order.
func (t *Table[E]) Scan(fn func(E) bool) {
	for _, head := range t.slots {
		for n := head; n != nil; n = n.next {
			for _, x := range n.items {
				if !fn(x) {
					return
				}
			}
		}
	}
}

// Stats reports the structure's shape: the whole (partly unused) table of
// head pointers plus one next pointer and control word per chain node —
// the accounting behind the paper's 2.3 storage factor.
func (t *Table[E]) Stats() index.Stats {
	s := index.Stats{Entries: t.size, DirSlots: len(t.slots)}
	for _, head := range t.slots {
		for n := head; n != nil; n = n.next {
			s.Nodes++
			s.EntrySlots += cap(n.items)
			s.ChildPtrs++
			s.ControlWords++
		}
	}
	return s
}
