package ttree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/meter"
)

func factory(cfg index.Config[indextest.Entry]) index.Ordered[indextest.Entry] {
	return New(cfg)
}

func TestConformance(t *testing.T) {
	indextest.RunOrdered(t, factory, indextest.Options{
		Validate: func(impl index.Ordered[indextest.Entry]) error {
			return impl.(*Tree[indextest.Entry]).Validate()
		},
	})
}

func intTree(nodeSize int, unique bool) *Tree[int64] {
	return New(index.Config[int64]{
		Cmp: func(a, b int64) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		},
		Unique:   unique,
		NodeSize: nodeSize,
	})
}

func posOf(k int64) index.Pos[int64] {
	return func(e int64) int {
		switch {
		case e < k:
			return -1
		case e > k:
			return 1
		default:
			return 0
		}
	}
}

func TestHeightIsLogarithmic(t *testing.T) {
	// 30k entries, node size 30: a balanced binary tree of ~1000 nodes
	// should be around 10 levels; an unbalanced one would be far taller.
	tr := intTree(30, true)
	for i := int64(0); i < 30000; i++ {
		tr.Insert(i) // sorted insertion order is the adversarial case
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := tr.Stats().Nodes
	maxH := int(1.45*math.Log2(float64(nodes)+2)) + 2 // AVL height bound
	if h := tr.Height(); h > maxH {
		t.Fatalf("height %d exceeds AVL bound %d for %d nodes", h, maxH, nodes)
	}
}

func TestInternalNodesStayNearFull(t *testing.T) {
	// The min/max gap exists so internal nodes stay densely packed under a
	// mixed workload; verify average internal occupancy is near max.
	tr := intTree(20, false)
	rng := rand.New(rand.NewSource(5))
	live := map[int64]bool{}
	for i := 0; i < 30000; i++ {
		k := rng.Int63n(8000)
		if rng.Intn(3) == 0 && len(live) > 0 {
			// delete a random-ish live key
			for d := range live {
				tr.Delete(d)
				delete(live, d)
				break
			}
		} else if !live[k] {
			tr.Insert(k)
			live[k] = true
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	occ, internal := tr.NodeOccupancies()
	sum, n := 0, 0
	for i := range occ {
		if internal[i] {
			sum += occ[i]
			n++
		}
	}
	if n == 0 {
		t.Skip("no internal nodes")
	}
	if avg := float64(sum) / float64(n); avg < 17 {
		t.Fatalf("average internal occupancy %.1f of max 20 — expected near-full", avg)
	}
}

func TestGLBTransferOnOverflow(t *testing.T) {
	// Fill one node, then insert a value bounded by it: the minimum must
	// migrate to a leaf, keeping search correct.
	tr := intTree(4, true)
	for _, k := range []int64{10, 20, 30, 40} {
		tr.Insert(k)
	}
	tr.Insert(25) // bounded by [10,40], node full
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{10, 20, 25, 30, 40} {
		if _, ok := tr.Search(posOf(k)); !ok {
			t.Fatalf("key %d lost after overflow", k)
		}
	}
	if tr.Len() != 5 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDeleteUnderflowBorrowsGLB(t *testing.T) {
	// Build a tree with an internal node, then delete from it until it
	// underflows; the tree must stay valid and complete.
	tr := intTree(4, true)
	for i := int64(0); i < 40; i++ {
		tr.Insert(i)
	}
	for i := int64(0); i < 40; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	for i := int64(0); i < 40; i++ {
		_, ok := tr.Search(posOf(i))
		if ok != (i%2 == 1) {
			t.Fatalf("key %d presence=%v", i, ok)
		}
	}
}

func TestDrainToEmpty(t *testing.T) {
	tr := intTree(6, true)
	const n = 500
	perm := rand.New(rand.NewSource(9)).Perm(n)
	for _, k := range perm {
		tr.Insert(int64(k))
	}
	for _, k := range perm {
		if !tr.Delete(int64(k)) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len=%d after drain", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tree is reusable after draining.
	tr.Insert(1)
	if _, ok := tr.Search(posOf(1)); !ok {
		t.Fatal("reuse after drain failed")
	}
}

func TestCursorCoIteration(t *testing.T) {
	tr := intTree(8, true)
	for i := int64(0); i < 100; i++ {
		tr.Insert(i * 2)
	}
	c := tr.First()
	var got []int64
	for c.Valid() {
		got = append(got, c.Entry())
		c.Next()
	}
	if len(got) != 100 {
		t.Fatalf("cursor visited %d entries", len(got))
	}
	for i, k := range got {
		if k != int64(i*2) {
			t.Fatalf("cursor out of order at %d: %d", i, k)
		}
	}
	lb := tr.LowerBoundCursor(posOf(51))
	if !lb.Valid() || lb.Entry() != 52 {
		t.Fatalf("LowerBoundCursor(51) = %v", lb)
	}
	lb = tr.LowerBoundCursor(posOf(1000))
	if lb.Valid() {
		t.Fatal("LowerBoundCursor past end should be invalid")
	}
}

func TestRotationsAreRareWithGap(t *testing.T) {
	// §3.2.1: the min/max gap "significantly reduces the need for tree
	// rotations" under a mix of inserts and deletes. Compare rotation
	// counts: same workload, node size 30 vs an AVL-like tree (node size
	// 2 ~ nearly one element per node rotates much more).
	workload := func(nodeSize int) int64 {
		var m meter.Counters
		tr := New(index.Config[int64]{
			Cmp: func(a, b int64) int {
				switch {
				case a < b:
					return -1
				case a > b:
					return 1
				default:
					return 0
				}
			},
			NodeSize: nodeSize,
			Meter:    &m,
		})
		rng := rand.New(rand.NewSource(77))
		var live []int64
		for i := 0; i < 20000; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				k := rng.Int63n(1 << 40)
				tr.Insert(k)
				live = append(live, k)
			} else {
				j := rng.Intn(len(live))
				tr.Delete(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return m.Rotations
	}
	big, small := workload(30), workload(2)
	if big*5 > small {
		t.Fatalf("node size 30 did %d rotations vs %d at node size 2 — gap not reducing rotations", big, small)
	}
}

func TestPropertyInsertDeleteMirror(t *testing.T) {
	f := func(keys []int16) bool {
		tr := intTree(5, false)
		for i, k := range keys {
			tr.Insert(int64(k))
			if i%7 == 0 {
				if tr.Validate() != nil {
					return false
				}
			}
		}
		if tr.Len() != len(keys) {
			return false
		}
		for _, k := range keys {
			if !tr.Delete(int64(k)) {
				return false
			}
		}
		return tr.Len() == 0 && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsShape(t *testing.T) {
	tr := intTree(30, true)
	for i := int64(0); i < 30000; i++ {
		tr.Insert(i)
	}
	s := tr.Stats()
	if s.Entries != 30000 {
		t.Fatalf("Entries=%d", s.Entries)
	}
	if s.ChildPtrs != 3*s.Nodes || s.ControlWords != 2*s.Nodes {
		t.Fatalf("per-node accounting wrong: %+v", s)
	}
	// Storage factor for medium nodes should be modest (paper: ~1.5).
	if f := index.PaperModel.Factor(s); f < 1.0 || f > 1.8 {
		t.Fatalf("storage factor %.2f out of expected band", f)
	}
}

func TestNodeBoundsDefaulting(t *testing.T) {
	tr := intTree(0, false)
	min, max := tr.NodeBounds()
	if max != DefaultNodeSize || min != DefaultNodeSize-DefaultMinGap {
		t.Fatalf("bounds = (%d,%d)", min, max)
	}
	tr = intTree(1, false)
	if _, max := tr.NodeBounds(); max < 2 {
		t.Fatalf("max %d < 2", max)
	}
}
