package ttree

// Validate exposes the invariant checker to tests.
func (t *Tree[E]) Validate() error { return t.checkInvariants() }

// RootOccupancies returns (occupancy, isInternal) per node in-order; tests
// use it to inspect node fill.
func (t *Tree[E]) NodeOccupancies() (occ []int, internal []bool) {
	var walk func(n *node[E])
	walk = func(n *node[E]) {
		if n == nil {
			return
		}
		walk(n.left)
		occ = append(occ, len(n.items))
		internal = append(internal, n.left != nil && n.right != nil)
		walk(n.right)
	}
	walk(t.root)
	return occ, internal
}

// Height returns the tree height in nodes.
func (t *Tree[E]) Height() int { return height(t.root) }
