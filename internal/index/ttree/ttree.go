// Package ttree implements the T Tree of Lehman & Carey (§3.2.1): a
// balanced binary tree whose nodes hold many elements, combining the
// intrinsic binary-search structure of the AVL Tree with the storage and
// update behaviour of the B Tree.
//
// Terminology follows the paper. A node with two subtrees is an internal
// node; one NIL child makes a half-leaf; two NIL children make a leaf. A
// node N "bounds" value x when min(N) <= x <= max(N). Internal nodes keep
// their occupancy between a minimum and maximum count whose small gap
// ("on the order of one or two items") absorbs inserts and deletes without
// tree rotations; leaves and half-leaves range from zero to the maximum.
// Overflowing an internal node transfers its minimum element down to
// become the new greatest lower bound; underflow borrows the greatest
// lower bound back from a leaf (footnote 5: moving the minimum /
// borrowing the GLB is cheaper than the symmetric choice).
package ttree

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/meter"
)

// DefaultNodeSize is the default maximum node occupancy; the index study
// found medium node sizes give the T Tree both good performance and a low
// storage factor.
const DefaultNodeSize = 30

// DefaultMinGap is how far the minimum count sits below the maximum for
// internal nodes ("usually differ by just a small amount, on the order of
// one or two items").
const DefaultMinGap = 2

// Tree is a T Tree. The zero value is not usable; call New.
type Tree[E any] struct {
	cfg      index.Config[E]
	cmp      func(a, b E) int
	same     func(a, b E) bool
	m        *meter.Counters
	root     *node[E]
	size     int
	maxCount int
	minCount int
}

type node[E any] struct {
	parent, left, right *node[E]
	items               []E // sorted; len in [1, maxCount] except transiently
	height              int // leaf = 1
}

// New creates an empty T Tree. cfg.Cmp is required; cfg.NodeSize sets the
// maximum node occupancy (default DefaultNodeSize, minimum 2).
func New[E any](cfg index.Config[E]) *Tree[E] {
	return NewWithGap(cfg, DefaultMinGap)
}

// NewWithGap creates a T Tree whose internal-node minimum count sits gap
// items below the maximum. The paper observes that a gap of one or two
// items is "enough to significantly reduce the need for tree rotations";
// the ablation benchmark sweeps this parameter.
func NewWithGap[E any](cfg index.Config[E], gap int) *Tree[E] {
	if cfg.Cmp == nil {
		panic("ttree: Config.Cmp is required")
	}
	max := cfg.NodeSize
	if max <= 0 {
		max = DefaultNodeSize
	}
	if max < 2 {
		max = 2
	}
	if gap < 0 {
		gap = 0
	}
	min := max - gap
	if min < 1 {
		min = 1
	}
	return &Tree[E]{
		cfg:      cfg,
		cmp:      cfg.Cmp,
		same:     cfg.SameOrEq(),
		m:        cfg.Meter,
		maxCount: max,
		minCount: min,
	}
}

// Len returns the number of entries.
func (t *Tree[E]) Len() int { return t.size }

// NodeBounds returns the configured (minCount, maxCount) occupancy bounds.
func (t *Tree[E]) NodeBounds() (min, max int) { return t.minCount, t.maxCount }

func (n *node[E]) min() E { return n.items[0] }
func (n *node[E]) max() E { return n.items[len(n.items)-1] }

func height[E any](n *node[E]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node[E]) updateHeight() {
	l, r := height(n.left), height(n.right)
	if l > r {
		n.height = l + 1
	} else {
		n.height = r + 1
	}
}

func (n *node[E]) balance() int { return height(n.left) - height(n.right) }

// Insert adds e. With a unique tree, it returns false when an equal entry
// exists.
func (t *Tree[E]) Insert(e E) bool {
	if t.root == nil {
		t.root = t.newNode(nil, e)
		t.size++
		return true
	}
	n := t.root
	for {
		t.m.AddNode(1)
		t.m.AddCompare(1)
		if t.cmp(e, n.min()) < 0 {
			if n.left == nil {
				return t.insertAtEdge(n, e, true)
			}
			n = n.left
			continue
		}
		t.m.AddCompare(1)
		if t.cmp(e, n.max()) > 0 {
			if n.right == nil {
				return t.insertAtEdge(n, e, false)
			}
			n = n.right
			continue
		}
		return t.insertBounded(n, e)
	}
}

// insertAtEdge handles an unbounded insert that ended at node n going left
// (front=true) or right (front=false) with no child on that side.
func (t *Tree[E]) insertAtEdge(n *node[E], e E, front bool) bool {
	// e is strictly outside n's range, so no unique-violation is possible.
	if len(n.items) < t.maxCount {
		if front {
			n.items = append(n.items, e) // grow
			copy(n.items[1:], n.items)
			n.items[0] = e
			t.m.AddMove(int64(len(n.items)))
		} else {
			n.items = append(n.items, e)
			t.m.AddMove(1)
		}
		t.size++
		return true
	}
	// Node full: a new leaf is added and the tree is rebalanced.
	leaf := t.newNode(n, e)
	if front {
		n.left = leaf
	} else {
		n.right = leaf
	}
	t.size++
	t.rebalanceFrom(n)
	return true
}

// insertBounded inserts e into its bounding node n, transferring n's
// minimum element to the greatest-lower-bound leaf on overflow.
func (t *Tree[E]) insertBounded(n *node[E], e E) bool {
	pos := t.searchNode(n, func(x E) int { return t.cmp(x, e) })
	if t.cfg.Unique && pos < len(n.items) && t.cmp(n.items[pos], e) == 0 {
		t.m.AddCompare(1)
		return false
	}
	if len(n.items) < t.maxCount {
		n.items = append(n.items, e)
		copy(n.items[pos+1:], n.items[pos:])
		n.items[pos] = e
		t.m.AddMove(int64(len(n.items) - pos))
		t.size++
		return true
	}
	// Overflow: the minimum element moves down to become the new greatest
	// lower bound of this node. When e is key-equal to the current
	// minimum (pos == 0, duplicates), e itself plays that role and the
	// node is untouched.
	t.size++
	if pos == 0 {
		t.pushDownGLB(n, e)
		return true
	}
	min := n.items[0]
	copy(n.items[:pos], n.items[1:pos])
	n.items[pos-1] = e
	t.m.AddMove(int64(pos))
	t.pushDownGLB(n, min)
	return true
}

// pushDownGLB stores m as the new greatest lower bound of n: appended to
// the rightmost node of n's left subtree, or as a new left child.
func (t *Tree[E]) pushDownGLB(n *node[E], m E) {
	if n.left == nil {
		leaf := t.newNode(n, m)
		n.left = leaf
		t.rebalanceFrom(n)
		return
	}
	g := n.left
	for g.right != nil {
		t.m.AddNode(1)
		g = g.right
	}
	if len(g.items) < t.maxCount {
		g.items = append(g.items, m)
		t.m.AddMove(1)
		return
	}
	leaf := t.newNode(g, m)
	g.right = leaf
	t.rebalanceFrom(g)
}

// Delete removes the entry identical to e (per Config.Same) among the
// entries key-equal to e. It returns false when none matches.
func (t *Tree[E]) Delete(e E) bool {
	n, i := t.findIdentical(e)
	if n == nil {
		return false
	}
	t.removeAt(n, i)
	return true
}

// findIdentical locates the (node, index) of the entry identical to e.
func (t *Tree[E]) findIdentical(e E) (*node[E], int) {
	c := t.lowerBound(func(x E) int { return t.cmp(x, e) })
	for c.valid() {
		x := c.entry()
		t.m.AddCompare(1)
		if t.cmp(x, e) != 0 {
			return nil, 0
		}
		if t.same(x, e) {
			return c.n, c.i
		}
		c.next()
	}
	return nil, 0
}

// removeAt deletes items[i] from node n, applying the paper's underflow
// rules.
func (t *Tree[E]) removeAt(n *node[E], i int) {
	copy(n.items[i:], n.items[i+1:])
	n.items = n.items[:len(n.items)-1]
	t.m.AddMove(int64(len(n.items) - i + 1))
	t.size--

	if n.left != nil && n.right != nil {
		// Internal node: keep occupancy at or above the minimum count by
		// borrowing the greatest lower bound from a leaf.
		if len(n.items) < t.minCount {
			g := n.left
			for g.right != nil {
				t.m.AddNode(1)
				g = g.right
			}
			glb := g.items[len(g.items)-1]
			g.items = g.items[:len(g.items)-1]
			n.items = append(n.items, glb)
			copy(n.items[1:], n.items)
			n.items[0] = glb
			t.m.AddMove(int64(len(n.items)) + 1)
			if len(g.items) == 0 {
				t.removeNode(g)
			}
		}
		return
	}
	// Leaf or half-leaf: may drain to empty, then the node is removed.
	if len(n.items) == 0 {
		t.removeNode(n)
	}
}

// removeNode splices out a node with at most one child and rebalances.
func (t *Tree[E]) removeNode(n *node[E]) {
	child := n.left
	if child == nil {
		child = n.right
	}
	if child != nil {
		child.parent = n.parent
	}
	p := n.parent
	switch {
	case p == nil:
		t.root = child
	case p.left == n:
		p.left = child
	default:
		p.right = child
	}
	n.parent, n.left, n.right = nil, nil, nil
	if p != nil {
		t.rebalanceFrom(p)
	}
}

// rebalanceFrom walks from n to the root, refreshing heights and rotating
// wherever the AVL balance condition breaks.
func (t *Tree[E]) rebalanceFrom(n *node[E]) {
	for n != nil {
		n.updateHeight()
		switch b := n.balance(); {
		case b > 1:
			if height(n.left.left) >= height(n.left.right) {
				n = t.rotateRight(n)
			} else {
				n = t.rotateLeftRight(n)
			}
		case b < -1:
			if height(n.right.right) >= height(n.right.left) {
				n = t.rotateLeft(n)
			} else {
				n = t.rotateRightLeft(n)
			}
		}
		n = n.parent
	}
}

// rotateRight performs the LL rotation; returns the subtree's new root.
func (t *Tree[E]) rotateRight(a *node[E]) *node[E] {
	t.m.AddRotation(1)
	b := a.left
	t.replaceChild(a, b)
	a.left = b.right
	if a.left != nil {
		a.left.parent = a
	}
	b.right = a
	a.parent = b
	a.updateHeight()
	b.updateHeight()
	return b
}

// rotateLeft performs the RR rotation; returns the subtree's new root.
func (t *Tree[E]) rotateLeft(a *node[E]) *node[E] {
	t.m.AddRotation(1)
	b := a.right
	t.replaceChild(a, b)
	a.right = b.left
	if a.right != nil {
		a.right.parent = a
	}
	b.left = a
	a.parent = b
	a.updateHeight()
	b.updateHeight()
	return b
}

// rotateLeftRight performs the LR double rotation. When the promoted node
// is a nearly-empty leaf, elements slide into it from the old parent so it
// satisfies the internal-node minimum count — the special T Tree rotation
// of [LeC85].
func (t *Tree[E]) rotateLeftRight(a *node[E]) *node[E] {
	b := a.left
	c := b.right
	// The slide is only order-safe when nothing sits between b's items and
	// c's items — i.e. c has no left subtree (the paper's special case
	// rotates up a leaf).
	if c.left == nil {
		t.slideInto(c, b, true)
	}
	t.rotateLeft(b)
	return t.rotateRight(a)
}

// rotateRightLeft is the mirror RL double rotation.
func (t *Tree[E]) rotateRightLeft(a *node[E]) *node[E] {
	b := a.right
	c := b.left
	if c.right == nil {
		t.slideInto(c, b, false)
	}
	t.rotateRight(b)
	return t.rotateLeft(a)
}

// slideInto tops up c (about to become an internal node) from b. fromMax
// selects b's tail (b precedes c in order) or head (c precedes b). The
// caller guarantees no subtree lies between b's and c's item ranges.
func (t *Tree[E]) slideInto(c, b *node[E], fromMax bool) {
	for len(c.items) < t.minCount && len(b.items) > 1 {
		if fromMax {
			m := b.items[len(b.items)-1]
			b.items = b.items[:len(b.items)-1]
			c.items = append(c.items, m)
			copy(c.items[1:], c.items)
			c.items[0] = m
			t.m.AddMove(int64(len(c.items)))
		} else {
			m := b.items[0]
			copy(b.items, b.items[1:])
			b.items = b.items[:len(b.items)-1]
			c.items = append(c.items, m)
			t.m.AddMove(int64(len(b.items)) + 1)
		}
	}
}

func (t *Tree[E]) replaceChild(old, new *node[E]) {
	p := old.parent
	new.parent = p
	switch {
	case p == nil:
		t.root = new
	case p.left == old:
		p.left = new
	default:
		p.right = new
	}
}

func (t *Tree[E]) newNode(parent *node[E], e E) *node[E] {
	t.m.AddAlloc(1)
	n := &node[E]{parent: parent, items: make([]E, 1, t.maxCount), height: 1}
	n.items[0] = e
	return n
}

// searchNode binary-searches a node for the first index whose item is not
// less than the target described by pos (pos(e) >= 0).
func (t *Tree[E]) searchNode(n *node[E], pos index.Pos[E]) int {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t.m.AddCompare(1)
		if pos(n.items[mid]) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Search returns an entry matching pos: a binary tree search on node
// bounds followed by a binary search of the final node (§3.2.1).
func (t *Tree[E]) Search(pos index.Pos[E]) (E, bool) {
	var zero E
	n := t.root
	for n != nil {
		t.m.AddNode(1)
		t.m.AddCompare(1)
		if pos(n.min()) > 0 {
			n = n.left
			continue
		}
		t.m.AddCompare(1)
		if pos(n.max()) < 0 {
			n = n.right
			continue
		}
		i := t.searchNode(n, pos)
		if i < len(n.items) && pos(n.items[i]) == 0 {
			t.m.AddCompare(1)
			return n.items[i], true
		}
		return zero, false
	}
	return zero, false
}

// SearchAll visits every entry matching pos. The initial search stops at
// any matching entry; the tree is then scanned in both directions, since
// key-equal entries are logically contiguous (§3.3.4 Test 6).
func (t *Tree[E]) SearchAll(pos index.Pos[E], fn func(E) bool) {
	c := t.lowerBound(pos)
	for c.valid() {
		e := c.entry()
		if pos(e) != 0 {
			return
		}
		if !fn(e) {
			return
		}
		c.next()
	}
}

// SearchAllAppend appends every entry matching pos to out and returns the
// extended slice: the batched sibling of SearchAll. After the initial
// lowerBound descent (metered exactly as SearchAll's), matches are
// appended node-block-wise — key-equal entries are contiguous within each
// node, so the inner loop is one block append per node touched.
func (t *Tree[E]) SearchAllAppend(pos index.Pos[E], out []E) []E {
	c := t.lowerBound(pos)
	for c.valid() {
		items := c.n.items
		j := c.i
		for j < len(items) && pos(items[j]) == 0 {
			j++
		}
		out = append(out, items[c.i:j]...)
		if j < len(items) {
			return out
		}
		c.i = len(items) - 1
		c.next()
	}
	return out
}

// Range visits, ascending, every entry between the keys described by lo
// and hi (inclusive).
func (t *Tree[E]) Range(lo, hi index.Pos[E], fn func(E) bool) {
	c := t.lowerBound(lo)
	for c.valid() {
		e := c.entry()
		if hi(e) > 0 {
			return
		}
		if !fn(e) {
			return
		}
		c.next()
	}
}

// ScanAsc visits all entries in ascending order.
func (t *Tree[E]) ScanAsc(fn func(E) bool) {
	c := t.First()
	for c.Valid() {
		if !fn(c.Entry()) {
			return
		}
		c.Next()
	}
}

// ScanBatches visits all entries in ascending order, handing them to fn
// in blocks gathered into buf (allocating a 256-entry block when buf has
// no capacity). Each T Tree node's items are already a sorted contiguous
// run, so gathering is one block copy per node rather than one callback
// per entry. The block is reused between calls; fn must not retain it.
func (t *Tree[E]) ScanBatches(buf []E, fn func(block []E) bool) {
	if cap(buf) == 0 {
		buf = make([]E, 0, 256)
	}
	buf = buf[:0]
	var walk func(n *node[E]) bool
	walk = func(n *node[E]) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		items := n.items
		for len(items) > 0 {
			take := cap(buf) - len(buf)
			if take > len(items) {
				take = len(items)
			}
			buf = append(buf, items[:take]...)
			items = items[take:]
			if len(buf) == cap(buf) {
				if !fn(buf) {
					return false
				}
				buf = buf[:0]
			}
		}
		return walk(n.right)
	}
	if walk(t.root) && len(buf) > 0 {
		fn(buf)
	}
}

// ScanDesc visits all entries in descending order — the T Tree can be
// scanned in either direction (§2.2).
func (t *Tree[E]) ScanDesc(fn func(E) bool) {
	n := t.root
	if n == nil {
		return
	}
	for n.right != nil {
		n = n.right
	}
	c := cursor[E]{n: n, i: len(n.items) - 1}
	for c.valid() {
		if !fn(c.entry()) {
			return
		}
		c.prev()
	}
}

// lowerBound returns a cursor at the first entry e (ascending) with
// pos(e) >= 0, or an invalid cursor when every entry is below the key.
func (t *Tree[E]) lowerBound(pos index.Pos[E]) cursor[E] {
	n := t.root
	var best cursor[E]
	for n != nil {
		t.m.AddNode(1)
		t.m.AddCompare(1)
		if pos(n.min()) >= 0 {
			// The whole node is at or above the key; remember its first
			// item and look for something smaller on the left.
			best = cursor[E]{n: n, i: 0}
			n = n.left
			continue
		}
		t.m.AddCompare(1)
		if pos(n.max()) < 0 {
			n = n.right
			continue
		}
		// The boundary falls inside this node.
		return cursor[E]{n: n, i: t.searchNode(n, pos)}
	}
	return best
}

// cursor is an in-order position (node, item index).
type cursor[E any] struct {
	n *node[E]
	i int
}

func (c *cursor[E]) valid() bool { return c.n != nil }
func (c *cursor[E]) entry() E    { return c.n.items[c.i] }

func (c *cursor[E]) next() {
	c.i++
	if c.i < len(c.n.items) {
		return
	}
	if c.n.right != nil {
		n := c.n.right
		for n.left != nil {
			n = n.left
		}
		c.n, c.i = n, 0
		return
	}
	n := c.n
	for n.parent != nil && n.parent.right == n {
		n = n.parent
	}
	c.n, c.i = n.parent, 0
}

func (c *cursor[E]) prev() {
	c.i--
	if c.i >= 0 {
		return
	}
	if c.n.left != nil {
		n := c.n.left
		for n.right != nil {
			n = n.right
		}
		c.n, c.i = n, len(n.items)-1
		return
	}
	n := c.n
	for n.parent != nil && n.parent.left == n {
		n = n.parent
	}
	c.n = n.parent
	if c.n != nil {
		c.i = len(c.n.items) - 1
	}
}

// Cursor is an exported in-order iterator used by the Tree Merge join to
// co-iterate two T Trees. Mutating the tree invalidates cursors.
type Cursor[E any] struct{ c cursor[E] }

// First returns a cursor at the smallest entry.
func (t *Tree[E]) First() Cursor[E] {
	n := t.root
	if n == nil {
		return Cursor[E]{}
	}
	for n.left != nil {
		n = n.left
	}
	return Cursor[E]{cursor[E]{n: n, i: 0}}
}

// LowerBoundCursor returns a cursor at the first entry not below the key
// described by pos.
func (t *Tree[E]) LowerBoundCursor(pos index.Pos[E]) Cursor[E] {
	return Cursor[E]{t.lowerBound(pos)}
}

// Valid reports whether the cursor addresses an entry.
func (c *Cursor[E]) Valid() bool { return c.c.valid() }

// Entry returns the current entry.
func (c *Cursor[E]) Entry() E { return c.c.entry() }

// Next advances to the next entry in ascending order.
func (c *Cursor[E]) Next() { c.c.next() }

// Stats reports the structure's allocated shape. Each node carries three
// pointers (parent, left, right — Figure 4) and two control words (count
// and height).
func (t *Tree[E]) Stats() index.Stats {
	s := index.Stats{Entries: t.size}
	var walk func(n *node[E])
	walk = func(n *node[E]) {
		if n == nil {
			return
		}
		s.Nodes++
		s.EntrySlots += cap(n.items)
		s.ChildPtrs += 3
		s.ControlWords += 2
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return s
}

// checkInvariants verifies the T Tree structural invariants; tests call
// this through the Validate export in export_test.go.
func (t *Tree[E]) checkInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("empty tree with size %d", t.size)
		}
		return nil
	}
	if t.root.parent != nil {
		return fmt.Errorf("root has a parent")
	}
	count := 0
	var prev *E
	var walk func(n *node[E]) error
	walk = func(n *node[E]) error {
		if n == nil {
			return nil
		}
		if n.left != nil && n.left.parent != n {
			return fmt.Errorf("broken parent pointer (left)")
		}
		if n.right != nil && n.right.parent != n {
			return fmt.Errorf("broken parent pointer (right)")
		}
		if err := walk(n.left); err != nil {
			return err
		}
		if len(n.items) == 0 {
			return fmt.Errorf("empty node in tree")
		}
		if len(n.items) > t.maxCount {
			return fmt.Errorf("node occupancy %d exceeds max %d", len(n.items), t.maxCount)
		}
		// Internal nodes target [minCount, maxCount] occupancy; rotations
		// that promote a thin leaf can transiently leave an internal node
		// below the minimum (slideInto narrows but cannot always close the
		// gap), so only emptiness is a hard structural error.
		for i, e := range n.items {
			e := e
			if prev != nil && t.cmp(*prev, e) > 0 {
				return fmt.Errorf("order violated at node item %d", i)
			}
			prev = &e
			count++
		}
		lh, rh := height(n.left), height(n.right)
		want := lh
		if rh > lh {
			want = rh
		}
		if n.height != want+1 {
			return fmt.Errorf("stale height: have %d, want %d", n.height, want+1)
		}
		if b := lh - rh; b > 1 || b < -1 {
			return fmt.Errorf("unbalanced node: balance %d", b)
		}
		return walk(n.right)
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d items found", t.size, count)
	}
	return nil
}
