package linearhash

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/meter"
)

func TestConformance(t *testing.T) {
	indextest.RunHashed(t,
		func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry] {
			return New(cfg)
		},
		indextest.HashedOptions{
			Validate: func(impl index.Hashed[indextest.Entry]) error {
				return impl.(*Table[indextest.Entry]).checkInvariants()
			},
		})
}

// checkInvariants verifies that every entry is stored in the bucket its
// address function names, and the node count matches reality.
func (t *Table[E]) checkInvariants() error {
	nodes, total := 0, 0
	for i, b := range t.buckets {
		for n := b; n != nil; n = n.next {
			nodes++
			total += len(n.items)
			for _, x := range n.items {
				if t.addr(t.hash(x)) != i {
					return fmt.Errorf("entry in bucket %d addresses to %d", i, t.addr(t.hash(x)))
				}
			}
		}
	}
	if nodes != t.nodes {
		return fmt.Errorf("node counter %d, actual %d", t.nodes, nodes)
	}
	if total != t.size {
		return fmt.Errorf("size %d, actual %d", t.size, total)
	}
	return nil
}

func intTable(nodeSize int, m *meter.Counters) *Table[int64] {
	return New(index.Config[int64]{
		Hash:     func(e int64) uint64 { return indextest.HashKey(e) },
		Eq:       func(a, b int64) bool { return a == b },
		NodeSize: nodeSize,
		Meter:    m,
	})
}

func TestGrowsAndContracts(t *testing.T) {
	tb := intTable(8, nil)
	for i := int64(0); i < 10000; i++ {
		tb.Insert(i)
	}
	grown := tb.Buckets()
	if grown < 100 {
		t.Fatalf("only %d buckets after 10k inserts", grown)
	}
	if err := tb.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 9900; i++ {
		if !tb.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tb.Buckets() >= grown/2 {
		t.Fatalf("buckets did not contract: %d of %d", tb.Buckets(), grown)
	}
	if err := tb.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := int64(9900); i < 10000; i++ {
		if _, ok := tb.SearchKey(indextest.HashKey(i), func(e int64) bool { return e == i }); !ok {
			t.Fatalf("survivor %d lost after contraction", i)
		}
	}
}

func TestUtilizationStaysInBand(t *testing.T) {
	tb := intTable(8, nil)
	rng := rand.New(rand.NewSource(1))
	live := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		k := rng.Int63n(1 << 30)
		if rng.Intn(2) == 0 || len(live) < 100 {
			if !live[k] {
				tb.Insert(k)
				live[k] = true
			}
		} else {
			for d := range live {
				tb.Delete(d)
				delete(live, d)
				break
			}
		}
		if len(live) > 500 && (tb.Utilization() > 0.95 || tb.Utilization() < 0.35) {
			t.Fatalf("op %d: utilization %.2f escaped the control band", i, tb.Utilization())
		}
	}
}

func TestReorganizationChurnAtConstantSize(t *testing.T) {
	// §3.2.2: Linear Hashing "did a significant amount of data
	// reorganization even though the number of elements was relatively
	// constant". Run a 50/50 insert/delete mix at constant size and count
	// data movement; it must far exceed the movement of the operations
	// themselves (1 move per op would be the no-reorg floor).
	var m meter.Counters
	tb := intTable(8, &m)
	var live []int64
	for i := int64(0); i < 5000; i++ {
		tb.Insert(i)
		live = append(live, i)
	}
	m.Reset()
	rng := rand.New(rand.NewSource(7))
	next := int64(5000)
	const ops = 10000
	for i := 0; i < ops; i++ {
		if i%2 == 0 {
			tb.Insert(next)
			live = append(live, next)
			next++
		} else {
			j := rng.Intn(len(live))
			tb.Delete(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if m.DataMoves < ops*2 {
		t.Fatalf("only %d moves over %d ops — expected churn from utilization chasing", m.DataMoves, ops)
	}
}
