// Package linearhash implements Linear Hashing [Lit80] as studied in
// §3.2: a growing hash file whose buckets (a primary node plus an
// overflow chain) split one at a time in a fixed order, driven by a
// storage-utilization criterion. The paper found it "just too slow to use
// in main memory": chasing a target utilization makes it reorganize data
// constantly even when the number of elements is static — the behaviour
// the query-mix experiment exposes.
package linearhash

import (
	"repro/internal/index"
	"repro/internal/meter"
)

// DefaultNodeSize is the default node (primary and overflow) capacity.
const DefaultNodeSize = 8

// TargetUtilization is the storage utilization the table maintains: it
// splits on inserts that push utilization above the target and contracts
// on deletes that pull it below. Litwin's single setpoint is what made the
// structure reorganize constantly under the paper's constant-size query
// mix (§3.2.2).
const TargetUtilization = 0.80

// Table is a linear hash table. The zero value is not usable; call New.
type Table[E any] struct {
	cfg      index.Config[E]
	hash     func(E) uint64
	eq       func(a, b E) bool
	same     func(a, b E) bool
	m        *meter.Counters
	buckets  []*chain[E]
	n0       int  // initial bucket count N
	level    uint // L
	split    int  // next bucket to split (p)
	size     int
	nodes    int // allocated chain nodes, for utilization
	nodeSize int
}

type chain[E any] struct {
	items []E
	next  *chain[E]
}

// New creates an empty table.
func New[E any](cfg index.Config[E]) *Table[E] {
	if cfg.Hash == nil || cfg.Eq == nil {
		panic("linearhash: Config.Hash and Config.Eq are required")
	}
	ns := cfg.NodeSize
	if ns <= 0 {
		ns = DefaultNodeSize
	}
	t := &Table[E]{
		cfg:      cfg,
		hash:     cfg.Hash,
		eq:       cfg.Eq,
		same:     cfg.SameOrEq(),
		m:        cfg.Meter,
		n0:       4,
		nodeSize: ns,
	}
	for i := 0; i < t.n0; i++ {
		t.buckets = append(t.buckets, t.newChain())
	}
	return t
}

func (t *Table[E]) newChain() *chain[E] {
	t.m.AddAlloc(1)
	t.nodes++
	return &chain[E]{items: make([]E, 0, t.nodeSize)}
}

// Len returns the number of entries.
func (t *Table[E]) Len() int { return t.size }

// addr maps a hash to its current bucket, accounting for the split
// pointer.
func (t *Table[E]) addr(h uint64) int {
	mask := uint64(t.n0) << t.level
	b := int(h % mask)
	if b < t.split {
		b = int(h % (mask * 2))
	}
	return b
}

// utilization is data bytes used over data bytes allocated (§3.2.2).
func (t *Table[E]) utilization() float64 {
	return float64(t.size) / float64(t.nodes*t.nodeSize)
}

// Insert adds e; false when unique and a key-equal entry exists.
func (t *Table[E]) Insert(e E) bool {
	t.m.AddHash(1)
	h := t.hash(e)
	b := t.buckets[t.addr(h)]
	if t.cfg.Unique {
		for n := b; n != nil; n = n.next {
			t.m.AddNode(1)
			for _, x := range n.items {
				t.m.AddCompare(1)
				if t.eq(x, e) {
					return false
				}
			}
		}
	}
	t.addTo(b, e)
	t.size++
	for t.utilization() > TargetUtilization {
		t.splitOne()
	}
	return true
}

// addTo appends e to the chain, extending it with an overflow node when
// every node is full.
func (t *Table[E]) addTo(b *chain[E], e E) {
	n := b
	for {
		if len(n.items) < cap(n.items) {
			n.items = append(n.items, e)
			t.m.AddMove(1)
			return
		}
		if n.next == nil {
			n.next = t.newChain()
			n.next.items = append(n.next.items, e)
			t.m.AddMove(1)
			return
		}
		n = n.next
	}
}

// splitOne splits the bucket at the split pointer, rehashing its entries
// between the old position and the new bucket appended at the end.
func (t *Table[E]) splitOne() {
	mask2 := (uint64(t.n0) << t.level) * 2
	old := t.buckets[t.split]
	// Reclaim the old chain's nodes and rebuild both buckets fresh.
	for n := old; n != nil; n = n.next {
		t.nodes--
	}
	a, b := t.newChain(), t.newChain()
	for n := old; n != nil; n = n.next {
		for _, x := range n.items {
			t.m.AddHash(1)
			t.m.AddMove(1)
			if int(t.hash(x)%mask2) == t.split {
				t.addTo(a, x)
			} else {
				t.addTo(b, x)
			}
		}
	}
	t.buckets[t.split] = a
	t.buckets = append(t.buckets, b)
	t.split++
	if t.split == t.n0<<t.level {
		t.level++
		t.split = 0
	}
}

// contractOne undoes the most recent split, merging the last bucket back.
func (t *Table[E]) contractOne() {
	if len(t.buckets) <= t.n0 {
		return
	}
	if t.split == 0 {
		t.level--
		t.split = t.n0 << t.level
	}
	t.split--
	last := t.buckets[len(t.buckets)-1]
	t.buckets = t.buckets[:len(t.buckets)-1]
	for n := last; n != nil; n = n.next {
		t.nodes--
		for _, x := range n.items {
			t.m.AddMove(1)
			t.addTo(t.buckets[t.split], x)
		}
	}
}

// Delete removes the entry identical to e.
func (t *Table[E]) Delete(e E) bool {
	t.m.AddHash(1)
	h := t.hash(e)
	b := t.buckets[t.addr(h)]
	var prev *chain[E]
	for n := b; n != nil; prev, n = n, n.next {
		t.m.AddNode(1)
		for i, x := range n.items {
			t.m.AddCompare(1)
			if t.same(x, e) {
				n.items[i] = n.items[len(n.items)-1]
				n.items = n.items[:len(n.items)-1]
				t.m.AddMove(1)
				t.size--
				if len(n.items) == 0 && prev != nil {
					prev.next = n.next
					t.nodes--
				}
				for len(t.buckets) > t.n0 && t.utilization() < TargetUtilization {
					t.contractOne()
				}
				return true
			}
		}
	}
	return false
}

// SearchKey returns an entry in bucket h satisfying match.
func (t *Table[E]) SearchKey(h uint64, match func(E) bool) (E, bool) {
	for n := t.buckets[t.addr(h)]; n != nil; n = n.next {
		t.m.AddNode(1)
		for _, x := range n.items {
			t.m.AddCompare(1)
			if match(x) {
				return x, true
			}
		}
	}
	var zero E
	return zero, false
}

// SearchKeyAll visits every entry in bucket h satisfying match.
func (t *Table[E]) SearchKeyAll(h uint64, match func(E) bool, fn func(E) bool) {
	for n := t.buckets[t.addr(h)]; n != nil; n = n.next {
		t.m.AddNode(1)
		for _, x := range n.items {
			t.m.AddCompare(1)
			if match(x) && !fn(x) {
				return
			}
		}
	}
}

// Scan visits all entries in unspecified order.
func (t *Table[E]) Scan(fn func(E) bool) {
	for _, b := range t.buckets {
		for n := b; n != nil; n = n.next {
			for _, x := range n.items {
				if !fn(x) {
					return
				}
			}
		}
	}
}

// Stats reports bucket head pointers plus per-node slots, next pointers,
// and control words.
func (t *Table[E]) Stats() index.Stats {
	s := index.Stats{Entries: t.size, DirSlots: len(t.buckets)}
	for _, b := range t.buckets {
		for n := b; n != nil; n = n.next {
			s.Nodes++
			s.EntrySlots += cap(n.items)
			s.ChildPtrs++
			s.ControlWords++
		}
	}
	return s
}

// Buckets exposes the bucket count for tests.
func (t *Table[E]) Buckets() int { return len(t.buckets) }

// Utilization exposes the current storage utilization for tests.
func (t *Table[E]) Utilization() float64 { return t.utilization() }
