package mlh

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
	"repro/internal/meter"
)

func TestConformance(t *testing.T) {
	indextest.RunHashed(t,
		func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry] {
			return New(cfg)
		},
		indextest.HashedOptions{
			Validate: func(impl index.Hashed[indextest.Entry]) error {
				return impl.(*Table[indextest.Entry]).checkInvariants()
			},
		})
}

// checkInvariants verifies addressing and the size counter.
func (t *Table[E]) checkInvariants() error {
	total := 0
	for i, head := range t.dir {
		for n := head; n != nil; n = n.next {
			total++
			if t.addr(t.hash(n.e)) != i {
				return fmt.Errorf("entry in slot %d addresses to %d", i, t.addr(t.hash(n.e)))
			}
		}
	}
	if total != t.size {
		return fmt.Errorf("size %d, actual %d", t.size, total)
	}
	return nil
}

func intTable(target int, m *meter.Counters) *Table[int64] {
	return New(index.Config[int64]{
		Hash:     func(e int64) uint64 { return indextest.HashKey(e) },
		Eq:       func(a, b int64) bool { return a == b },
		NodeSize: target,
		Meter:    m,
	})
}

func TestChainLengthTracksTarget(t *testing.T) {
	for _, target := range []int{1, 2, 5, 20} {
		tb := intTable(target, nil)
		for i := int64(0); i < 10000; i++ {
			tb.Insert(i)
		}
		avg := float64(tb.Len()) / float64(tb.DirSize())
		if avg > float64(target)*1.01 {
			t.Fatalf("target %d: average chain %.2f exceeds target", target, avg)
		}
		if avg < float64(target)/4 {
			t.Fatalf("target %d: average chain %.2f — directory overgrown", target, avg)
		}
		if err := tb.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoReorganizationAtConstantSize(t *testing.T) {
	// The paper's query-mix result: with the population static, Modified
	// Linear Hashing (like Chained Bucket Hashing) does no directory
	// reorganization — unlike Linear Hashing's utilization chasing.
	var m meter.Counters
	tb := intTable(2, &m)
	for i := int64(0); i < 5000; i++ {
		tb.Insert(i)
	}
	dirBefore := tb.DirSize()
	m.Reset()
	next := int64(5000)
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			tb.Insert(next)
			next++
		} else {
			tb.Delete(next - 2500) // keep size constant
		}
	}
	if got := tb.DirSize(); got < dirBefore/2 || got > dirBefore*2 {
		t.Fatalf("directory moved from %d to %d at constant size", dirBefore, got)
	}
	// Moves should be close to zero: single-item nodes are relinked on
	// split only; no per-op reorganization is expected.
	if m.DataMoves > 10000 {
		t.Fatalf("%d data moves over 10000 constant-size ops", m.DataMoves)
	}
}

func TestStorageSingleItemOverhead(t *testing.T) {
	// §3.2.3: single-item nodes cost 4 bytes of pointer overhead per item
	// under the paper model; with chain target 2 the factor lands near
	// Chained Bucket Hashing's (~2.3).
	tb := intTable(2, nil)
	for i := int64(0); i < 30000; i++ {
		tb.Insert(i)
	}
	f := index.PaperModel.Factor(tb.Stats())
	if f < 2.0 || f > 3.2 {
		t.Fatalf("storage factor %.2f outside the 2-3.2 band", f)
	}
	// Longer chains amortize the directory: factor must drop.
	tb2 := intTable(20, nil)
	for i := int64(0); i < 30000; i++ {
		tb2.Insert(i)
	}
	if f2 := index.PaperModel.Factor(tb2.Stats()); f2 >= f {
		t.Fatalf("factor did not improve with longer chains: %.2f vs %.2f", f2, f)
	}
}
