// Package mlh implements Modified Linear Hashing [LeC85] as studied in
// §3.2: Linear Hashing re-engineered for main memory. It "uses the basic
// principles of Linear Hashing, but uses very small nodes in the
// directory, single-item overflow buckets, and average overflow chain
// length as the criteria to control directory growth". The NodeSize knob
// is therefore the target average chain length — the x-axis of Graphs 1
// and 2 for this structure. Among the hash methods tested, it gave the
// best overall performance and replaced Chained Bucket Hashing as the
// MM-DBMS's index for unordered data.
package mlh

import (
	"repro/internal/index"
	"repro/internal/meter"
)

// DefaultChainLength is the default target average chain length.
const DefaultChainLength = 2

// Table is a modified linear hash table. The zero value is not usable;
// call New.
type Table[E any] struct {
	cfg    index.Config[E]
	hash   func(E) uint64
	eq     func(a, b E) bool
	same   func(a, b E) bool
	m      *meter.Counters
	dir    []*item[E] // directory of single-item node chains
	n0     int
	level  uint
	split  int
	size   int
	target int // target average chain length
}

// item is the single-item node of Modified Linear Hashing.
type item[E any] struct {
	e    E
	next *item[E]
}

// New creates an empty table.
func New[E any](cfg index.Config[E]) *Table[E] {
	if cfg.Hash == nil || cfg.Eq == nil {
		panic("mlh: Config.Hash and Config.Eq are required")
	}
	target := cfg.NodeSize
	if target <= 0 {
		target = DefaultChainLength
	}
	t := &Table[E]{
		cfg:    cfg,
		hash:   cfg.Hash,
		eq:     cfg.Eq,
		same:   cfg.SameOrEq(),
		m:      cfg.Meter,
		n0:     4,
		target: target,
	}
	t.dir = make([]*item[E], t.n0)
	return t
}

// Len returns the number of entries.
func (t *Table[E]) Len() int { return t.size }

func (t *Table[E]) addr(h uint64) int {
	mask := uint64(t.n0) << t.level
	b := int(h % mask)
	if b < t.split {
		b = int(h % (mask * 2))
	}
	return b
}

// avgChain is the average overflow chain length — the growth criterion.
func (t *Table[E]) avgChain() float64 {
	return float64(t.size) / float64(len(t.dir))
}

// Insert adds e; false when unique and a key-equal entry exists.
func (t *Table[E]) Insert(e E) bool {
	t.m.AddHash(1)
	h := t.hash(e)
	s := t.addr(h)
	if t.cfg.Unique {
		for n := t.dir[s]; n != nil; n = n.next {
			t.m.AddNode(1)
			t.m.AddCompare(1)
			if t.eq(n.e, e) {
				return false
			}
		}
	}
	t.m.AddAlloc(1)
	t.dir[s] = &item[E]{e: e, next: t.dir[s]}
	t.size++
	for t.avgChain() > float64(t.target) {
		t.splitOne()
	}
	return true
}

// splitOne splits the directory slot at the split pointer.
func (t *Table[E]) splitOne() {
	mask2 := (uint64(t.n0) << t.level) * 2
	old := t.dir[t.split]
	t.dir[t.split] = nil
	t.dir = append(t.dir, nil)
	newIdx := len(t.dir) - 1
	for n := old; n != nil; {
		next := n.next
		t.m.AddHash(1)
		t.m.AddMove(1)
		if int(t.hash(n.e)%mask2) == t.split {
			n.next = t.dir[t.split]
			t.dir[t.split] = n
		} else {
			n.next = t.dir[newIdx]
			t.dir[newIdx] = n
		}
		n = next
	}
	t.split++
	if t.split == t.n0<<t.level {
		t.level++
		t.split = 0
	}
}

// contractOne undoes the most recent split.
func (t *Table[E]) contractOne() {
	if len(t.dir) <= t.n0 {
		return
	}
	if t.split == 0 {
		t.level--
		t.split = t.n0 << t.level
	}
	t.split--
	last := t.dir[len(t.dir)-1]
	t.dir = t.dir[:len(t.dir)-1]
	for n := last; n != nil; {
		next := n.next
		n.next = t.dir[t.split]
		t.dir[t.split] = n
		t.m.AddMove(1)
		n = next
	}
}

// Delete removes the entry identical to e. The directory contracts when
// the average chain length falls well below target (hysteresis at half),
// so a static population — the query-mix case — causes no reorganization.
func (t *Table[E]) Delete(e E) bool {
	t.m.AddHash(1)
	s := t.addr(t.hash(e))
	var prev *item[E]
	for n := t.dir[s]; n != nil; prev, n = n, n.next {
		t.m.AddNode(1)
		t.m.AddCompare(1)
		if t.same(n.e, e) {
			if prev == nil {
				t.dir[s] = n.next
			} else {
				prev.next = n.next
			}
			t.size--
			for len(t.dir) > t.n0 && t.avgChain() < float64(t.target)/2 {
				t.contractOne()
			}
			return true
		}
	}
	return false
}

// SearchKey returns an entry in bucket h satisfying match. Each data
// reference traverses a pointer — the overhead the paper observed once
// chains grow long.
func (t *Table[E]) SearchKey(h uint64, match func(E) bool) (E, bool) {
	for n := t.dir[t.addr(h)]; n != nil; n = n.next {
		t.m.AddNode(1)
		t.m.AddCompare(1)
		if match(n.e) {
			return n.e, true
		}
	}
	var zero E
	return zero, false
}

// SearchKeyAll visits every entry in bucket h satisfying match.
func (t *Table[E]) SearchKeyAll(h uint64, match func(E) bool, fn func(E) bool) {
	for n := t.dir[t.addr(h)]; n != nil; n = n.next {
		t.m.AddNode(1)
		t.m.AddCompare(1)
		if match(n.e) && !fn(n.e) {
			return
		}
	}
}

// Scan visits all entries in unspecified order.
func (t *Table[E]) Scan(fn func(E) bool) {
	for _, head := range t.dir {
		for n := head; n != nil; n = n.next {
			if !fn(n.e) {
				return
			}
		}
	}
}

// Stats reports the directory plus one slot and one next pointer per
// single-item node — 4 bytes of pointer overhead per data item under the
// paper model, as §3.2.3 notes.
func (t *Table[E]) Stats() index.Stats {
	s := index.Stats{Entries: t.size, DirSlots: len(t.dir)}
	for _, head := range t.dir {
		for n := head; n != nil; n = n.next {
			s.Nodes++
			s.EntrySlots++
			s.ChildPtrs++
		}
	}
	return s
}

// DirSize exposes the directory size for tests.
func (t *Table[E]) DirSize() int { return len(t.dir) }
