// Package exthash implements Extendible Hashing [FNP79] as studied in
// §3.2: a directory of 2^globalDepth bucket pointers that doubles when a
// full bucket cannot split locally. Search cost is flat and small; the
// risk is directory blowup — the paper observed that small node sizes made
// some buckets fill early, "causing the directory to double repeatedly and
// thus use large amounts of storage".
package exthash

import (
	"repro/internal/index"
	"repro/internal/meter"
)

// DefaultNodeSize is the default bucket capacity.
const DefaultNodeSize = 8

// maxGlobalDepth bounds directory doubling; a bucket whose entries all
// share maxGlobalDepth low hash bits (e.g. mass duplicates) grows past its
// nominal capacity instead of splitting forever.
const maxGlobalDepth = 22

// Table is an extendible hash table. The zero value is not usable; call
// New.
type Table[E any] struct {
	cfg      index.Config[E]
	hash     func(E) uint64
	eq       func(a, b E) bool
	same     func(a, b E) bool
	m        *meter.Counters
	dir      []*bucket[E]
	global   uint
	size     int
	nodeSize int
}

type bucket[E any] struct {
	items []E
	local uint
	// frozen marks a bucket that proved unsplittable (hash-identical
	// entries or directory at its depth cap); it grows past its nominal
	// capacity instead of retrying the split on every insert.
	frozen bool
}

// New creates an empty table with one bucket.
func New[E any](cfg index.Config[E]) *Table[E] {
	if cfg.Hash == nil || cfg.Eq == nil {
		panic("exthash: Config.Hash and Config.Eq are required")
	}
	ns := cfg.NodeSize
	if ns <= 0 {
		ns = DefaultNodeSize
	}
	t := &Table[E]{
		cfg:      cfg,
		hash:     cfg.Hash,
		eq:       cfg.Eq,
		same:     cfg.SameOrEq(),
		m:        cfg.Meter,
		nodeSize: ns,
	}
	t.dir = []*bucket[E]{{items: make([]E, 0, ns)}}
	return t
}

// Len returns the number of entries.
func (t *Table[E]) Len() int { return t.size }

func (t *Table[E]) bucketFor(h uint64) *bucket[E] {
	return t.dir[h&((1<<t.global)-1)]
}

// Insert adds e; false when unique and a key-equal entry exists.
func (t *Table[E]) Insert(e E) bool {
	t.m.AddHash(1)
	h := t.hash(e)
	b := t.bucketFor(h)
	if t.cfg.Unique {
		for _, x := range b.items {
			t.m.AddCompare(1)
			if t.eq(x, e) {
				return false
			}
		}
	}
	for len(b.items) >= t.nodeSize && !b.frozen {
		if !t.splitOrGrow(b, h) {
			// Depth-capped or hash-identical: overflow in place, and stop
			// re-testing this bucket on every later insert.
			b.frozen = true
			break
		}
		b = t.bucketFor(h)
	}
	b.items = append(b.items, e)
	t.m.AddMove(1)
	t.size++
	return true
}

// splitOrGrow splits bucket b (doubling the directory if needed). It
// returns false when the directory is depth-capped, in which case the
// bucket simply grows.
func (t *Table[E]) splitOrGrow(b *bucket[E], h uint64) bool {
	// A bucket of hash-identical entries (mass duplicates) can never be
	// separated by more bits; let it grow rather than double the directory
	// to its depth cap.
	if len(b.items) > 0 {
		h0 := t.hash(b.items[0])
		allSame := true
		for _, x := range b.items[1:] {
			t.m.AddHash(1)
			if t.hash(x) != h0 {
				allSame = false
				break
			}
		}
		if allSame {
			return false
		}
	}
	if b.local == t.global {
		if t.global >= maxGlobalDepth {
			return false
		}
		// Double the directory; both halves alias the same buckets.
		t.m.AddAlloc(1)
		ndir := make([]*bucket[E], len(t.dir)*2)
		copy(ndir, t.dir)
		copy(ndir[len(t.dir):], t.dir)
		t.dir = ndir
		t.global++
	}
	// Split b on the bit below its new local depth.
	t.m.AddAlloc(1)
	bit := uint64(1) << b.local
	b.local++
	nb := &bucket[E]{local: b.local, items: make([]E, 0, t.nodeSize)}
	keep := b.items[:0]
	for _, x := range b.items {
		t.m.AddHash(1)
		t.m.AddMove(1)
		if t.hash(x)&bit != 0 {
			nb.items = append(nb.items, x)
		} else {
			keep = append(keep, x)
		}
	}
	b.items = keep
	// Redirect the directory aliases whose new bit is set: they are the
	// slots congruent to the bucket's canonical index with that bit on,
	// spaced 2*bit apart.
	base := (h & (bit - 1)) | bit
	for i := base; i < uint64(len(t.dir)); i += bit * 2 {
		t.dir[i] = nb
	}
	return true
}

// Delete removes the entry identical to e. Buckets are not merged on
// shrink (directory contraction is a known elaboration of [FNP79] that
// the study did not model).
func (t *Table[E]) Delete(e E) bool {
	t.m.AddHash(1)
	b := t.bucketFor(t.hash(e))
	for i, x := range b.items {
		t.m.AddCompare(1)
		if t.same(x, e) {
			b.items[i] = b.items[len(b.items)-1]
			b.items = b.items[:len(b.items)-1]
			t.m.AddMove(1)
			t.size--
			return true
		}
	}
	return false
}

// SearchKey returns an entry in bucket h satisfying match.
func (t *Table[E]) SearchKey(h uint64, match func(E) bool) (E, bool) {
	b := t.bucketFor(h)
	t.m.AddNode(1)
	for _, x := range b.items {
		t.m.AddCompare(1)
		if match(x) {
			return x, true
		}
	}
	var zero E
	return zero, false
}

// SearchKeyAll visits every entry in bucket h satisfying match.
func (t *Table[E]) SearchKeyAll(h uint64, match func(E) bool, fn func(E) bool) {
	b := t.bucketFor(h)
	t.m.AddNode(1)
	for _, x := range b.items {
		t.m.AddCompare(1)
		if match(x) && !fn(x) {
			return
		}
	}
}

// Scan visits all entries in unspecified order, each exactly once even
// though several directory slots may alias one bucket.
func (t *Table[E]) Scan(fn func(E) bool) {
	for i, b := range t.dir {
		// A bucket with local depth d is aliased by 2^(global-d) slots;
		// its canonical slot is the one equal to its low d bits.
		if i != int(uint64(i)&((1<<b.local)-1)) {
			continue
		}
		for _, x := range b.items {
			if !fn(x) {
				return
			}
		}
	}
}

// Stats reports the directory plus per-bucket slots; aliased buckets are
// counted once.
func (t *Table[E]) Stats() index.Stats {
	s := index.Stats{Entries: t.size, DirSlots: len(t.dir)}
	for i, b := range t.dir {
		if i != int(uint64(i)&((1<<b.local)-1)) {
			continue
		}
		s.Nodes++
		s.EntrySlots += cap(b.items)
		s.ControlWords++
	}
	return s
}

// GlobalDepth exposes the directory depth for tests.
func (t *Table[E]) GlobalDepth() uint { return t.global }
