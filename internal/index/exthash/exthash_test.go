package exthash

import (
	"fmt"
	"testing"

	"repro/internal/index"
	"repro/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.RunHashed(t,
		func(cfg index.Config[indextest.Entry]) index.Hashed[indextest.Entry] {
			return New(cfg)
		},
		indextest.HashedOptions{
			Validate: func(impl index.Hashed[indextest.Entry]) error {
				return impl.(*Table[indextest.Entry]).checkInvariants()
			},
		})
}

// checkInvariants verifies directory aliasing: every slot points at a
// bucket whose local depth bits match the slot index.
func (t *Table[E]) checkInvariants() error {
	for i, b := range t.dir {
		if b == nil {
			return errf("nil bucket at slot %d", i)
		}
		if b.local > t.global {
			return errf("bucket local depth %d exceeds global %d", b.local, t.global)
		}
		canon := int(uint64(i) & ((1 << b.local) - 1))
		if t.dir[canon] != b {
			return errf("slot %d and its canonical alias %d disagree", i, canon)
		}
	}
	if len(t.dir) != 1<<t.global {
		return errf("directory size %d != 2^%d", len(t.dir), t.global)
	}
	return nil
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

func intTable(nodeSize int) *Table[int64] {
	return New(index.Config[int64]{
		Hash:     func(e int64) uint64 { return indextest.HashKey(e) },
		Eq:       func(a, b int64) bool { return a == b },
		NodeSize: nodeSize,
	})
}

func TestDirectoryDoubles(t *testing.T) {
	tb := intTable(4)
	for i := int64(0); i < 10000; i++ {
		tb.Insert(i)
	}
	if tb.GlobalDepth() < 8 {
		t.Fatalf("directory depth %d too shallow for 10k entries at node size 4", tb.GlobalDepth())
	}
	if err := tb.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMassDuplicatesDoNotBlowUpDirectory(t *testing.T) {
	// 20k hash-identical entries (duplicate join keys) must not double the
	// directory to its cap; the bucket overflows in place instead.
	tb := New(index.Config[int64]{
		Hash:     func(e int64) uint64 { return 42 }, // all collide
		Eq:       func(a, b int64) bool { return a == b },
		NodeSize: 4,
	})
	for i := int64(0); i < 20000; i++ {
		tb.Insert(i)
	}
	if tb.GlobalDepth() > 4 {
		t.Fatalf("duplicates drove directory to depth %d", tb.GlobalDepth())
	}
	n := 0
	tb.SearchKeyAll(42, func(int64) bool { return true }, func(int64) bool { n++; return true })
	if n != 20000 {
		t.Fatalf("found %d of 20000 colliding entries", n)
	}
}

func TestSmallNodesInflateStorage(t *testing.T) {
	// §3.2.2: extendible hashing "tended to use the largest amount of
	// storage for small node sizes" because unlucky buckets double the
	// whole directory.
	small := intTable(2)
	large := intTable(50)
	for i := int64(0); i < 30000; i++ {
		small.Insert(i)
		large.Insert(i)
	}
	fs := index.PaperModel.Factor(small.Stats())
	fl := index.PaperModel.Factor(large.Stats())
	if fs <= fl {
		t.Fatalf("small-node factor %.2f not larger than large-node %.2f", fs, fl)
	}
}
