package index

// Optional batch capabilities. Batch-at-a-time execution (see
// internal/storage/batch.go) wants the index layer to hand entries out in
// blocks instead of one indirect callback per entry: a full scan that
// invokes fn once per 256-entry block costs ~1/256 of the call dispatch,
// and the block itself stays cache-resident while the operator's inner
// loop runs over it.
//
// These are capability interfaces, not extensions of Ordered/Hashed: an
// index that implements them is discovered by type assertion, and callers
// fall back to the per-entry methods otherwise. The three structures the
// engine uses on hot query paths — T Trees, sorted arrays, and Chained
// Bucket Hashing — implement them; the other five structures of §3.2 keep
// the per-entry contract only.
//
// Metering contract: the batched entry points record exactly the same
// §3.1 operation counts as their per-entry equivalents (AddNode per node
// touched, AddCompare per comparison). Tests assert that serial and
// parallel plans — and now per-entry and batched plans — report identical
// comparison totals, so a batched scan must not be "cheaper" on the meter
// than the loop it replaces.

// BatchScanner is an optional capability of indexes that can hand out
// their entries in blocks. ScanBatches visits all entries in the index's
// natural order (ascending for ordered structures, unspecified for hash
// structures), invoking fn with successive blocks until fn returns false.
//
// buf, when non-nil, is the caller's scratch block; implementations that
// must gather entries (node-structured indexes) fill it and hand it to fn,
// reusing it between calls. Implementations with contiguous storage
// (sorted arrays) may ignore buf and hand out subslices of their own
// storage — callers must not retain or mutate the block after fn returns.
type BatchScanner[E any] interface {
	ScanBatches(buf []E, fn func(block []E) bool)
}

// OrderedBatcher is an optional capability of ordered indexes: SearchAllAppend
// appends every entry matching pos to out and returns the extended slice.
// It is SearchAll without the per-entry callback — the caller gets one
// contiguous block of matches to iterate over.
type OrderedBatcher[E any] interface {
	SearchAllAppend(pos Pos[E], out []E) []E
}

// HashedBatcher is an optional capability of hash indexes: SearchKeyAppend
// appends every entry in bucket h satisfying match to out and returns the
// extended slice.
type HashedBatcher[E any] interface {
	SearchKeyAppend(h uint64, match func(E) bool, out []E) []E
}

// ScanOrderedBatches hands out idx's entries in blocks of cap(buf)
// (BatchSize-sized when buf comes from storage.GetBatch). It uses the
// index's native ScanBatches when available and otherwise gathers entries
// from ScanAsc into buf, flushing each time it fills. fn must not retain
// the block.
func ScanOrderedBatches[E any](idx Ordered[E], buf []E, fn func(block []E) bool) {
	if bs, ok := idx.(BatchScanner[E]); ok {
		bs.ScanBatches(buf, fn)
		return
	}
	gatherScan(idx.ScanAsc, buf, fn)
}

// ScanHashedBatches is ScanOrderedBatches for hash indexes (entry order
// unspecified).
func ScanHashedBatches[E any](idx Hashed[E], buf []E, fn func(block []E) bool) {
	if bs, ok := idx.(BatchScanner[E]); ok {
		bs.ScanBatches(buf, fn)
		return
	}
	gatherScan(idx.Scan, buf, fn)
}

// gatherScan adapts a per-entry scan into block handoffs: entries are
// gathered into buf and flushed each time it fills. It is the generic
// fallback for the five index structures without a native ScanBatches.
func gatherScan[E any](scan func(fn func(E) bool), buf []E, fn func(block []E) bool) {
	if cap(buf) == 0 {
		buf = make([]E, 0, 256)
	}
	buf = buf[:0]
	stop := false
	scan(func(e E) bool {
		buf = append(buf, e)
		if len(buf) == cap(buf) {
			if !fn(buf) {
				stop = true
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if !stop && len(buf) > 0 {
		fn(buf)
	}
}

// SearchAllAppend appends every entry of idx matching pos to out, using
// the native OrderedBatcher capability when present and a SearchAll
// gather otherwise.
func SearchAllAppend[E any](idx Ordered[E], pos Pos[E], out []E) []E {
	if ob, ok := idx.(OrderedBatcher[E]); ok {
		return ob.SearchAllAppend(pos, out)
	}
	return searchAllGather(idx, pos, out)
}

// searchAllGather is the SearchAll fallback. It lives in its own function
// so the closure's captured variables heap-allocate only on this cold
// path, not at SearchAllAppend's entry.
func searchAllGather[E any](idx Ordered[E], pos Pos[E], out []E) []E {
	idx.SearchAll(pos, func(e E) bool {
		out = append(out, e)
		return true
	})
	return out
}

// SearchKeyAppend appends every entry of idx in bucket h satisfying match
// to out, using the native HashedBatcher capability when present and a
// SearchKeyAll gather otherwise.
func SearchKeyAppend[E any](idx Hashed[E], h uint64, match func(E) bool, out []E) []E {
	if hb, ok := idx.(HashedBatcher[E]); ok {
		return hb.SearchKeyAppend(h, match, out)
	}
	return searchKeyGather(idx, h, match, out)
}

// searchKeyGather is the SearchKeyAll fallback, split out so its closure
// cell is not allocated on the capability fast path.
func searchKeyGather[E any](idx Hashed[E], h uint64, match func(E) bool, out []E) []E {
	idx.SearchKeyAll(h, match, func(e E) bool {
		out = append(out, e)
		return true
	})
	return out
}
