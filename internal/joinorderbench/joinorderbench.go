// Package joinorderbench measures the multi-join planner: the same
// four-relation star — a large fact table joined through three
// dimensions of very different selectivity — executed in the naive
// as-written left-deep order and in the cost-forecasted DP order.
//
// The query is deliberately written worst-first: the full-coverage
// dimension leads, so the left-deep order builds a hash table over the
// entire fact table and pushes every fact row through the remaining
// stages before the selective dimensions cut anything. The DP order
// streams the fact table instead and applies the most selective
// dimension first. The experiment asserts that both orders join to the
// identical result cardinality — a planner that gets faster by
// dropping rows is a correctness bug, not a win — and panics if the DP
// order is not at least 2x faster at the million-row point.
//
// The fact table's foreign-key columns carry no hash index on purpose:
// a pre-built index would let the executor reuse it as the build side
// and hide the cost difference the order decision is about.
//
// The experiment lives outside internal/bench because it exercises the
// public Database API, which internal/bench cannot import (the
// engine's own tests import internal/bench); it registers itself at
// init time, like internal/obsbench.
package joinorderbench

import (
	"fmt"
	"time"

	mmdb "repro"
	"repro/internal/bench"
)

func init() {
	bench.Register(bench.Experiment{
		ID:      "multijoin",
		Exhibit: "Extension — cost-forecasted join ordering vs naive left-deep",
		Run:     MultiJoinOrderSweep,
	})
}

// MultiJoinOrderSweep times the as-written left-deep order against the
// planner's DP order on the skewed star at two fact cardinalities.
func MultiJoinOrderSweep(env bench.Env) []bench.Series {
	s := bench.Series{
		ID:     "multijoin-order",
		Title:  "Join ordering — naive as-written left-deep vs cost-forecasted DP",
		XLabel: "fact rows",
		YLabel: "seconds",
		Names:  []string{"as-written leftdeep", "dp order"},
	}
	for _, base := range []int{250000, 1000000} {
		// Round so the dimension coverages divide the key domain exactly
		// and the expected cardinality is a closed form.
		domain := env.N(base) / 200 * 20
		if domain < 20 {
			domain = 20
		}
		n := domain * 10
		db := buildStar(n, domain)
		q := func() *mmdb.Query {
			return db.Query("dima").
				Join("fact", "id", "da").
				Join("dimb", "fact.db_", "id").
				Join("dimc", "fact.dc", "id")
		}
		wantRows := n / 20 // keys are uniform; dimc keeps 1 in 20

		left, err := q().JoinOrder(mmdb.JoinOrderLeftDeep).Run()
		if err != nil {
			panic(err)
		}
		dp, err := q().Run()
		if err != nil {
			panic(err)
		}
		if left.Len() != wantRows || dp.Len() != wantRows {
			panic(fmt.Sprintf("joinorderbench: cardinality mismatch at n=%d: leftdeep=%d dp=%d want=%d",
				n, left.Len(), dp.Len(), wantRows))
		}

		tLeft := timeBest(func() {
			if _, err := q().JoinOrder(mmdb.JoinOrderLeftDeep).Run(); err != nil {
				panic(err)
			}
		})
		tDP := timeBest(func() {
			if _, err := q().Run(); err != nil {
				panic(err)
			}
		})
		s.Add(fmt.Sprint(n), tLeft, tDP)
		s.Notes = append(s.Notes, fmt.Sprintf(
			"n=%d: cardinality asserted %d rows on both orders; dp %.2fx faster", n, wantRows, tLeft/tDP))
		if base >= 1000000 && env.Scale >= 1 && tDP*2 > tLeft {
			panic(fmt.Sprintf("joinorderbench: dp order only %.2fx faster than left-deep at n=%d (want >=2x)",
				tLeft/tDP, n))
		}
	}
	return []bench.Series{s}
}

// buildStar creates the star: fact(n rows, keys uniform over domain),
// dima covering the whole domain, dimb a tenth of it, dimc a twentieth.
func buildStar(n, domain int) *mmdb.Database {
	db, err := mmdb.Open(mmdb.Options{})
	if err != nil {
		panic(err)
	}
	dim := func(name string, rows int) {
		tb, err := db.CreateTable(name, []mmdb.Field{
			{Name: "id", Type: mmdb.TypeInt},
			{Name: "payload", Type: mmdb.TypeInt},
		}, "id", mmdb.TTree)
		if err != nil {
			panic(err)
		}
		for i := 0; i < rows; i++ {
			if _, err := tb.Insert(mmdb.Int(int64(i)), mmdb.Int(int64(i)*3)); err != nil {
				panic(err)
			}
		}
	}
	dim("dima", domain)
	dim("dimb", domain/10)
	dim("dimc", domain/20)
	fact, err := db.CreateTable("fact", []mmdb.Field{
		{Name: "id", Type: mmdb.TypeInt},
		{Name: "da", Type: mmdb.TypeInt},
		{Name: "db_", Type: mmdb.TypeInt},
		{Name: "dc", Type: mmdb.TypeInt},
		{Name: "v", Type: mmdb.TypeInt},
	}, "id", mmdb.TTree)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		k := mmdb.Int(int64(i % domain))
		if _, err := fact.Insert(mmdb.Int(int64(i)), k, k, k, mmdb.Int(int64(i)*7)); err != nil {
			panic(err)
		}
	}
	return db
}

// timeBest measures f, repeating up to three times while runs stay
// under 100ms, and keeps the minimum (the steady state, not the noise).
func timeBest(f func()) float64 {
	best := timeIt(f)
	for rep := 0; rep < 2 && best < 0.1; rep++ {
		if t := timeIt(f); t < best {
			best = t
		}
	}
	return best
}

func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}
