package parallel

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/storage"
)

// buildRel creates a relation with schema (val int, seq int).
func buildRel(t testing.TB, ids *storage.IDGen, name string, values []int64) *storage.Relation {
	t.Helper()
	schema := storage.MustSchema(
		storage.FieldDef{Name: "val", Type: storage.Int},
		storage.FieldDef{Name: "seq", Type: storage.Int},
	)
	rel, err := storage.NewRelation(name, schema, storage.Config{}, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if _, err := rel.Insert([]storage.Value{storage.IntValue(v), storage.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

func modVals(n int, mod int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i) % mod
	}
	return out
}

func TestRunPipelineParallelMatchesSerial(t *testing.T) {
	ids := storage.NewIDGen()
	av, bv, cv := modVals(20000, 64), modVals(512, 64), modVals(64, 64)
	ra := buildRel(t, ids, "a", av)
	rb := buildRel(t, ids, "b", bv)
	rc := buildRel(t, ids, "c", cv)
	var m meter.Counters
	tb := exec.BuildStageTable(RelationSource{Rel: rb}, 0, 0, &m)
	tc := exec.BuildStageTable(RelationSource{Rel: rc}, 0, 0, &m)
	desc := storage.Descriptor{Sources: []string{"a", "b", "c"}}
	mkSpec := func(mm *meter.Counters) exec.PipelineSpec {
		return exec.PipelineSpec{
			Slots:      3,
			DriverSlot: 0,
			Stages: []exec.StageSpec{
				{Table: tb, BuildField: 0, BuildSlot: 1, ProbeSlot: 0, ProbeField: 0},
				{Table: tc, BuildField: 0, BuildSlot: 2, ProbeSlot: 1, ProbeField: 0},
			},
			Meter: mm,
		}
	}
	var ms meter.Counters
	serialOut, serialStages, serialN := RunPipeline(RelationSource{Rel: ra}, mkSpec(&ms), desc, 0, 1)
	for _, w := range []int{2, 4, 8} {
		var mp meter.Counters
		parOut, parStages, parN := RunPipeline(RelationSource{Rel: ra}, mkSpec(&mp), desc, 0, w)
		if parN != serialN || parOut.Len() != serialOut.Len() {
			t.Fatalf("w=%d: %d rows, serial %d", w, parN, serialN)
		}
		for k := range serialStages {
			if parStages[k] != serialStages[k] {
				t.Fatalf("w=%d: stage %d rows %d, serial %d", w, k, parStages[k], serialStages[k])
			}
		}
		// Counters must fold to the same totals (same probes and
		// comparisons, just spread over workers).
		if mp.HashCalls != ms.HashCalls || mp.Comparisons != ms.Comparisons {
			t.Fatalf("w=%d: counters hash=%d cmp=%d, serial hash=%d cmp=%d",
				w, mp.HashCalls, mp.Comparisons, ms.HashCalls, ms.Comparisons)
		}
		// Same multiset: compare sorted (val, aseq, bseq, cseq) sets.
		count := map[[3]int64]int{}
		serialOut.Scan(func(_ int, row storage.Row) bool {
			count[[3]int64{row[0].Field(1).Int(), row[1].Field(1).Int(), row[2].Field(1).Int()}]++
			return true
		})
		parOut.Scan(func(_ int, row storage.Row) bool {
			count[[3]int64{row[0].Field(1).Int(), row[1].Field(1).Int(), row[2].Field(1).Int()}]--
			return true
		})
		for k, v := range count {
			if v != 0 {
				t.Fatalf("w=%d: multiset mismatch at %v (%+d)", w, k, v)
			}
		}
	}
}

func TestRunPipelineDiscardAndEmpty(t *testing.T) {
	ids := storage.NewIDGen()
	ra := buildRel(t, ids, "a", modVals(10000, 16))
	rb := buildRel(t, ids, "b", modVals(160, 16))
	var m meter.Counters
	tb := exec.BuildStageTable(RelationSource{Rel: rb}, 0, 0, &m)
	desc := storage.Descriptor{Sources: []string{"a", "b"}}
	spec := exec.PipelineSpec{
		Slots:      2,
		DriverSlot: 0,
		Stages:     []exec.StageSpec{{Table: tb, BuildField: 0, BuildSlot: 1, ProbeSlot: 0, ProbeField: 0}},
		Discard:    true,
		Meter:      &m,
	}
	out, _, n := RunPipeline(RelationSource{Rel: ra}, spec, desc, 0, 4)
	if out != nil {
		t.Fatal("discard produced a list")
	}
	if want := 10000 * 10; n != want {
		t.Fatalf("discard count %d, want %d", n, want)
	}
	// Empty driver.
	re := buildRel(t, ids, "e", nil)
	spec.Discard = false
	out2, _, n2 := RunPipeline(RelationSource{Rel: re}, spec, desc, 0, 4)
	if n2 != 0 || out2 == nil || out2.Len() != 0 {
		t.Fatalf("empty driver: n=%d out=%v", n2, out2)
	}
}

func TestRunPipelineLimitDelegatesSerial(t *testing.T) {
	ids := storage.NewIDGen()
	ra := buildRel(t, ids, "a", modVals(5000, 8))
	rb := buildRel(t, ids, "b", modVals(80, 8))
	var m meter.Counters
	tb := exec.BuildStageTable(RelationSource{Rel: rb}, 0, 0, &m)
	desc := storage.Descriptor{Sources: []string{"a", "b"}}
	spec := exec.PipelineSpec{
		Slots:      2,
		DriverSlot: 0,
		Stages:     []exec.StageSpec{{Table: tb, BuildField: 0, BuildSlot: 1, ProbeSlot: 0, ProbeField: 0}},
		Limit:      13,
		Meter:      &m,
	}
	out, _, n := RunPipeline(RelationSource{Rel: ra}, spec, desc, 0, 8)
	if n != 13 || out.Len() != 13 {
		t.Fatalf("limit 13: n=%d out=%d", n, out.Len())
	}
}
