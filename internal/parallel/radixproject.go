package parallel

import (
	"math"
	"slices"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/radix"
	"repro/internal/sched"
	"repro/internal/storage"
)

// RadixProjectHash is the cache-conscious duplicate elimination: rows
// are radix-partitioned on their projected-key hash (stable scatter —
// ascending row order survives within every partition), each partition
// is deduplicated locally with a flat open-addressing table of row
// indices instead of one global chained structure, and survivors are
// merged back into first-occurrence input order. The per-partition
// tables are partition-sized, so dedup of a huge list runs against
// L2-resident state; the hash-first filter means full key comparisons
// run only on 64-bit hash collisions — overwhelmingly true duplicates.
//
// The output is bit-identical to exec.ProjectHash's: the first
// occurrence of every distinct key, in input order. A nil/empty radix
// plan or a tiny list delegates to the partitioned ProjectHash (which
// itself delegates to the serial §3.4 operator at workers <= 1).
func RadixProjectHash(sq *sched.Query, list *storage.TempList, m *meter.Counters, pg *obs.Progress, workers int, bits []uint) (*storage.TempList, radix.Stats) {
	pl := radix.Plan{Bits: bits}
	n := list.Len()
	if pl.Fanout() <= 1 || n < 2 || n > math.MaxInt32-1 {
		return ProjectHash(sq, list, m, pg, workers), radix.Stats{}
	}
	w := Degree(workers)

	// Phase 1 — hash every row's projected key, parallel over static
	// contiguous ranges (each worker writes a disjoint span).
	entries := make([]radix.RowEntry, n)
	m.Add(run(sq, pg, "radix distinct", w, w, func(widx int, sc *scratch) {
		lo, hi := n*widx/w, n*(widx+1)/w
		sc.rows += int64(hi - lo)
		for i := lo; i < hi; i++ {
			entries[i] = radix.RowEntry{H: exec.KeyHash(list.RowValues(i), &sc.ctr), P: int32(i)}
		}
	}))

	// Phase 2 — stable radix partition on the hash's top bits.
	pp := radix.GetRowPartitioner()
	pe, offs := pp.Partition(entries, pl, m)
	stats := radix.StatsOf(pl, offs)

	// Phase 3 — partition-local dedup, partitions as morsels. The flat
	// table stores row indices shifted by one so the zero slot means
	// empty; rows arrive in ascending index order (stable scatter), so
	// the first insertion of a key is the serial scan's first occurrence.
	fanout := pl.Fanout()
	survivors := make([][]int32, fanout)
	m.Add(run(sq, pg, "radix distinct", w, fanout, func(p int, sc *scratch) {
		seg := pe[offs[p]:offs[p+1]]
		if len(seg) == 0 {
			return
		}
		sc.rows += int64(len(seg))
		need := 8
		for need < 2*len(seg) {
			need <<= 1
		}
		slots := make([]radix.RowEntry, need)
		mask := uint64(need - 1)
		keep := make([]int32, 0, len(seg))
		for _, e := range seg {
			s := e.H & mask
			dup := false
			for slots[s].P != 0 {
				if slots[s].H == e.H &&
					exec.KeysEqual(list.RowValues(int(slots[s].P-1)), list.RowValues(int(e.P)), &sc.ctr) {
					dup = true
					break
				}
				s = (s + 1) & mask
			}
			if dup {
				continue
			}
			slots[s] = radix.RowEntry{H: e.H, P: e.P + 1}
			keep = append(keep, e.P)
		}
		survivors[p] = keep
	}))
	radix.PutRowPartitioner(pp)

	// Phase 4 — restore input order: per-partition survivor lists are
	// each ascending; one sort over the concatenation restores the
	// global first-occurrence order, and the output is exact-fit.
	total := 0
	for _, s := range survivors {
		total += len(s)
	}
	order := make([]int32, 0, total)
	for _, s := range survivors {
		order = append(order, s...)
	}
	// slices.Sort on the plain int32 slice: the old sort.Slice paid a
	// closure call per comparison plus an interface-header allocation.
	slices.Sort(order)
	out := storage.MustTempListHint(list.Descriptor(), total)
	for _, i := range order {
		out.Append(list.Row(int(i)))
	}
	return out, stats
}
