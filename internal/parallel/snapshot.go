package parallel

import (
	"repro/internal/exec"
	"repro/internal/storage"
)

// SnapshotSource adapts a published relation snapshot (storage.Snapshot)
// into a Chunked source at partition granularity — the lock-free
// counterpart of RelationSource. The snapshot's clone arrays are
// immutable, so scans are zero-copy (blocks are subslices of the arrays
// themselves) and need no locks at all; row order is identical to a
// locked partition scan of the relation at the snapshot's epoch.
type SnapshotSource struct{ Snap *storage.Snapshot }

// Len returns the snapshot's tuple count.
func (s SnapshotSource) Len() int { return s.Snap.Rows() }

// Scan visits every snapshot tuple in partition order.
func (s SnapshotSource) Scan(fn func(*storage.Tuple) bool) {
	for i := 0; i < s.Snap.NumParts(); i++ {
		for _, t := range s.Snap.Part(i) {
			if !fn(t) {
				return
			}
		}
	}
}

// ScanBatches implements exec.BatchSource zero-copy over the clone
// arrays. fn must not retain or mutate a block.
func (s SnapshotSource) ScanBatches(buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	for i := 0; i < s.Snap.NumParts(); i++ {
		if !scanPartBatches(s.Snap.Part(i), fn) {
			return
		}
	}
}

// Chunks groups the snapshot's partition arrays into at most n
// contiguous runs of near-equal partition count, mirroring
// RelationSource.Chunks so the parallel scan's morsel boundaries (and so
// its output order) match the locked path's.
func (s SnapshotSource) Chunks(n int) []exec.Source {
	np := s.Snap.NumParts()
	if np == 0 {
		return nil
	}
	if n > np {
		n = np
	}
	out := make([]exec.Source, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := np*i/n, np*(i+1)/n
		run := make(snapshotRun, 0, hi-lo)
		for j := lo; j < hi; j++ {
			run = append(run, s.Snap.Part(j))
		}
		out = append(out, run)
	}
	return out
}

// snapshotRun is a contiguous run of snapshot partition arrays.
type snapshotRun [][]*storage.Tuple

func (r snapshotRun) Len() int {
	n := 0
	for _, part := range r {
		n += len(part)
	}
	return n
}

func (r snapshotRun) Scan(fn func(*storage.Tuple) bool) {
	for _, part := range r {
		for _, t := range part {
			if !fn(t) {
				return
			}
		}
	}
}

// ScanBatches implements exec.BatchSource zero-copy; blocks are
// subslices of the immutable clone arrays.
func (r snapshotRun) ScanBatches(buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	for _, part := range r {
		if !scanPartBatches(part, fn) {
			return
		}
	}
}

func scanPartBatches(part []*storage.Tuple, fn func(storage.TupleBatch) bool) bool {
	for len(part) > storage.BatchSize {
		if !fn(part[:storage.BatchSize:storage.BatchSize]) {
			return false
		}
		part = part[storage.BatchSize:]
	}
	if len(part) > 0 {
		return fn(part[:len(part):len(part)])
	}
	return true
}
