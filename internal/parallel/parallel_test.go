package parallel

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/storage"
	"repro/internal/workload"
)

// buildRelation creates a relation with schema (val int, seq int) holding
// the given join-column values, split across many small partitions so the
// partition-granularity morsels actually fan out.
func buildRelation(t testing.TB, ids *storage.IDGen, name string, values []int64) *storage.Relation {
	t.Helper()
	schema := storage.MustSchema(
		storage.FieldDef{Name: "val", Type: storage.Int},
		storage.FieldDef{Name: "seq", Type: storage.Int},
	)
	rel, err := storage.NewRelation(name, schema, storage.Config{SlotsPerPartition: 64}, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if _, err := rel.Insert([]storage.Value{storage.IntValue(v), storage.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

func buildValues(t testing.TB, n int, dupPct, sigma float64, seed int64) []int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	col, err := workload.Build(workload.Spec{Cardinality: n, DuplicatePct: dupPct, Sigma: sigma}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return col.Values
}

// joinResultSet canonicalizes a join result for comparison: a multiset of
// (outer val, outer seq, inner val, inner seq).
func joinResultSet(t testing.TB, l *storage.TempList) map[[4]int64]int {
	t.Helper()
	out := map[[4]int64]int{}
	l.Scan(func(_ int, row storage.Row) bool {
		k := [4]int64{
			row[0].Field(0).Int(), row[0].Field(1).Int(),
			row[1].Field(0).Int(), row[1].Field(1).Int(),
		}
		out[k]++
		return true
	})
	return out
}

func sameResults(t testing.TB, name string, a, b map[[4]int64]int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d distinct rows vs %d", name, len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("%s: row %v count %d vs %d", name, k, v, b[k])
		}
	}
}

func TestDegree(t *testing.T) {
	if got := Degree(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Degree(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Degree(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Degree(-1) = %d", got)
	}
	if got := Degree(3); got != 3 {
		t.Fatalf("Degree(3) = %d", got)
	}
}

// TestParallelSelectScanMatchesSerial: the morsel-driven scan must produce
// exactly the serial scan's rows in exactly the serial scan's order, and
// the folded per-worker counters must equal the serial count.
func TestParallelSelectScanMatchesSerial(t *testing.T) {
	vals := buildValues(t, 10000, 30, workload.Moderate, 41)
	ids := storage.NewIDGen()
	rel := buildRelation(t, ids, "r", vals)
	pred := func(tp *storage.Tuple) bool { return tp.Field(0).Int()%3 == 0 }

	for _, src := range []struct {
		name string
		mk   func() exec.Source
	}{
		{"relation", func() exec.Source { return RelationSource{Rel: rel} }},
		{"list", func() exec.Source {
			l := storage.MustTempList(storage.Descriptor{Sources: []string{"r"}})
			rel.ScanPhysical(func(tp *storage.Tuple) bool { l.Append(storage.Row{tp}); return true })
			return ListSource{List: l}
		}},
	} {
		t.Run(src.name, func(t *testing.T) {
			var sm, pm meter.Counters
			serial := exec.SelectScan(src.mk(), pred,
				exec.SelectSpec{RelName: "r", Schema: rel.Schema(), Meter: &sm})
			par := SelectScan(src.mk(), pred,
				exec.SelectSpec{RelName: "r", Schema: rel.Schema(), Meter: &pm}, 4)
			if par.Len() != serial.Len() {
				t.Fatalf("parallel %d rows, serial %d", par.Len(), serial.Len())
			}
			for i := 0; i < serial.Len(); i++ {
				if par.Row(i)[0] != serial.Row(i)[0] {
					t.Fatalf("row %d: parallel order diverges from serial", i)
				}
			}
			if pm.Comparisons != sm.Comparisons {
				t.Fatalf("parallel compares %d, serial %d", pm.Comparisons, sm.Comparisons)
			}
		})
	}
}

// TestParallelHashJoinMatchesSerial: partitioned-build hash join must emit
// exactly the serial join's row multiset, on duplicate-heavy and
// near-unique key distributions alike.
func TestParallelHashJoinMatchesSerial(t *testing.T) {
	for _, c := range []struct {
		name       string
		n1, n2     int
		dup        float64
		sigma      float64
		workers    int
	}{
		{"unique", 4000, 4000, 0, workload.NearUniform, 4},
		{"dups-skewed", 3000, 3000, 60, workload.Skewed, 4},
		{"small-outer", 200, 5000, 20, workload.Moderate, 8},
		{"more-workers-than-chunks", 50, 50, 0, workload.NearUniform, 16},
	} {
		t.Run(c.name, func(t *testing.T) {
			v1 := buildValues(t, c.n1, c.dup, c.sigma, 43)
			v2 := buildValues(t, c.n2, c.dup, c.sigma, 47)
			ids := storage.NewIDGen()
			r1 := buildRelation(t, ids, "r1", v1)
			r2 := buildRelation(t, ids, "r2", v2)
			spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}

			var sm, pm meter.Counters
			serial := exec.HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &sm))
			par := HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &pm), c.workers)
			sameResults(t, "hash", joinResultSet(t, serial), joinResultSet(t, par))
			if serial.Len() > 0 && pm.HashCalls == 0 {
				t.Fatal("parallel join folded no worker hash counts into the caller's meter")
			}
		})
	}
}

// TestParallelSortMergeJoinMatchesSerial: the MPSM range-partitioned join
// must emit the serial join's multiset, and — like the serial sort-merge —
// in globally non-decreasing key order.
func TestParallelSortMergeJoinMatchesSerial(t *testing.T) {
	for _, c := range []struct {
		name    string
		n1, n2  int
		dup     float64
		sigma   float64
		workers int
	}{
		{"unique", 4000, 4000, 0, workload.NearUniform, 4},
		{"dups-skewed", 3000, 3000, 60, workload.Skewed, 4},
		{"heavy-dups", 2000, 2000, 95, workload.Skewed, 8},
	} {
		t.Run(c.name, func(t *testing.T) {
			v1 := buildValues(t, c.n1, c.dup, c.sigma, 53)
			v2 := buildValues(t, c.n2, c.dup, c.sigma, 59)
			ids := storage.NewIDGen()
			r1 := buildRelation(t, ids, "r1", v1)
			r2 := buildRelation(t, ids, "r2", v2)
			spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}

			var sm, pm meter.Counters
			serial := exec.SortMergeJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &sm))
			par := SortMergeJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &pm), c.workers)
			sameResults(t, "sortmerge", joinResultSet(t, serial), joinResultSet(t, par))
			if pm.Comparisons == 0 && serial.Len() > 0 {
				t.Fatal("parallel join folded no worker comparisons into the caller's meter")
			}
			prev := int64(-1 << 62)
			par.Scan(func(i int, row storage.Row) bool {
				v := row[0].Field(0).Int()
				if v < prev {
					t.Fatalf("row %d: key %d after %d — range order broken", i, v, prev)
				}
				prev = v
				return true
			})
		})
	}
}

// TestParallelProjectHashIdenticalToSerial: the partitioned distinct must
// be bit-identical to the serial operator — same surviving rows, same
// (first-occurrence) order.
func TestParallelProjectHashIdenticalToSerial(t *testing.T) {
	for _, dupPct := range []float64{0, 50, 95} {
		vals := buildValues(t, 5000, dupPct, workload.Skewed, 61)
		ids := storage.NewIDGen()
		rel := buildRelation(t, ids, "r", vals)
		list := storage.MustTempList(storage.Descriptor{
			Sources: []string{"r"},
			Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
		})
		rel.ScanPhysical(func(tp *storage.Tuple) bool { list.Append(storage.Row{tp}); return true })

		var sm, pm meter.Counters
		serial := exec.ProjectHash(list, &sm)
		par := ProjectHash(nil, list, &pm, nil, 4)
		if par.Len() != serial.Len() {
			t.Fatalf("dup=%v: parallel kept %d rows, serial %d", dupPct, par.Len(), serial.Len())
		}
		for i := 0; i < serial.Len(); i++ {
			if par.Row(i)[0] != serial.Row(i)[0] {
				t.Fatalf("dup=%v row %d: parallel output not identical to serial", dupPct, i)
			}
		}
		if pm.HashCalls != sm.HashCalls {
			t.Fatalf("dup=%v: parallel hashed %d keys, serial %d", dupPct, pm.HashCalls, sm.HashCalls)
		}
	}
}

// TestParallelDiscardAndRowsOut: Discard mode counts without
// materializing, and RowsOut is written, in both parallel joins.
func TestParallelDiscardAndRowsOut(t *testing.T) {
	vals := buildValues(t, 3000, 50, workload.Moderate, 67)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", vals)
	r2 := buildRelation(t, ids, "r2", vals)
	want := exec.HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2},
		exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}).Len()

	for name, join := range map[string]func(spec exec.JoinSpec) *storage.TempList{
		"hash": func(spec exec.JoinSpec) *storage.TempList {
			return HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, spec, 4)
		},
		"sortmerge": func(spec exec.JoinSpec) *storage.TempList {
			return SortMergeJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, spec, 4)
		},
	} {
		var rows int
		spec := exec.JoinSpec{
			OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0,
			Discard: true, RowsOut: &rows,
		}
		l := join(spec)
		if l.Len() != 0 {
			t.Fatalf("%s: discarded join materialized %d rows", name, l.Len())
		}
		if rows != want {
			t.Fatalf("%s: RowsOut=%d, want %d", name, rows, want)
		}
	}
}

// TestParallelLimitFallsBackToSerial: a Limit is an inherently sequential
// early exit; the parallel entry points must delegate and still honor it.
func TestParallelLimitFallsBackToSerial(t *testing.T) {
	vals := buildValues(t, 3000, 0, workload.NearUniform, 71)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", vals)
	r2 := buildRelation(t, ids, "r2", vals)
	var rows int
	spec := exec.JoinSpec{
		OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0,
		Limit: 7, RowsOut: &rows,
	}
	if l := HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, spec, 4); l.Len() != 7 || rows != 7 {
		t.Fatalf("hash limit: %d rows, RowsOut=%d, want 7/7", l.Len(), rows)
	}
	rows = 0
	if l := SortMergeJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, spec, 4); l.Len() != 7 || rows != 7 {
		t.Fatalf("sortmerge limit: %d rows, RowsOut=%d, want 7/7", l.Len(), rows)
	}
}

// TestParallelNilMeterAndEmptyInputs: every parallel operator must accept
// a nil meter and empty inputs on either side without panicking.
func TestParallelNilMeterAndEmptyInputs(t *testing.T) {
	vals := buildValues(t, 3000, 20, workload.Moderate, 73)
	ids := storage.NewIDGen()
	full := buildRelation(t, ids, "f", vals)
	empty := buildRelation(t, ids, "e", nil)
	spec := exec.JoinSpec{OuterName: "f", InnerName: "e", OuterField: 0, InnerField: 0} // Meter nil

	for name, n := range map[string]int{
		"hash-empty-inner":      HashJoin(RelationSource{Rel: full}, RelationSource{Rel: empty}, spec, 4).Len(),
		"hash-empty-outer":      HashJoin(RelationSource{Rel: empty}, RelationSource{Rel: full}, spec, 4).Len(),
		"hash-empty-both":       HashJoin(RelationSource{Rel: empty}, RelationSource{Rel: empty}, spec, 4).Len(),
		"sortmerge-empty-inner": SortMergeJoin(RelationSource{Rel: full}, RelationSource{Rel: empty}, spec, 4).Len(),
		"sortmerge-empty-outer": SortMergeJoin(RelationSource{Rel: empty}, RelationSource{Rel: full}, spec, 4).Len(),
	} {
		if n != 0 {
			t.Errorf("%s: %d rows, want 0", name, n)
		}
	}
	// Nil meter on the non-empty paths too.
	selSpec := exec.SelectSpec{RelName: "f", Schema: full.Schema()}
	if got := SelectScan(RelationSource{Rel: full}, func(*storage.Tuple) bool { return true }, selSpec, 4).Len(); got != full.Cardinality() {
		t.Fatalf("nil-meter scan kept %d of %d", got, full.Cardinality())
	}
	joinSpec := exec.JoinSpec{OuterName: "f", InnerName: "f", OuterField: 0, InnerField: 0}
	if HashJoin(RelationSource{Rel: full}, RelationSource{Rel: full}, joinSpec, 4).Len() == 0 {
		t.Fatal("nil-meter hash self-join empty")
	}
	if SortMergeJoin(RelationSource{Rel: full}, RelationSource{Rel: full}, joinSpec, 4).Len() == 0 {
		t.Fatal("nil-meter sortmerge self-join empty")
	}
	// Empty + nil meter projection.
	l := storage.MustTempList(storage.Descriptor{Sources: []string{"f"},
		Cols: []storage.ColRef{{Source: 0, Field: 0, Name: "val"}}})
	if ProjectHash(nil, l, nil, nil, 4).Len() != 0 {
		t.Fatal("projection of empty list not empty")
	}
}

// TestWorkersOneIsExactlySerial: the workers<=1 delegation must preserve
// the serial operators' exact §3.1 counters.
func TestWorkersOneIsExactlySerial(t *testing.T) {
	vals := buildValues(t, 2000, 30, workload.Moderate, 79)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", vals)
	r2 := buildRelation(t, ids, "r2", vals)
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}

	var sm, pm meter.Counters
	exec.HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &sm))
	HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &pm), 1)
	if sm != pm {
		t.Fatalf("workers=1 hash join counters diverge:\nserial   %v\nparallel %v", &sm, &pm)
	}
	sm, pm = meter.Counters{}, meter.Counters{}
	exec.SortMergeJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &sm))
	SortMergeJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &pm), 1)
	if sm != pm {
		t.Fatalf("workers=1 sort-merge counters diverge:\nserial   %v\nparallel %v", &sm, &pm)
	}
}

func withMeter(s exec.JoinSpec, m *meter.Counters) exec.JoinSpec {
	s.Meter = m
	return s
}
