package parallel

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestRadixHashJoinMatchesSerial: the radix-partitioned join must emit
// exactly the serial chained-bucket join's match multiset across data
// shapes, worker counts, and pass structures.
func TestRadixHashJoinMatchesSerial(t *testing.T) {
	for _, c := range []struct {
		name    string
		n1, n2  int
		dup     float64
		sigma   float64
		bits    []uint
		workers int
	}{
		{"unique-1pass", 4000, 4000, 0, workload.NearUniform, []uint{4}, 4},
		{"unique-2pass", 4000, 4000, 0, workload.NearUniform, []uint{3, 3}, 4},
		{"dups-skewed", 3000, 3000, 60, workload.Skewed, []uint{5}, 4},
		{"heavy-dups-multipass", 2000, 2000, 95, workload.Skewed, []uint{2, 2, 2}, 8},
		{"small-outer", 200, 5000, 20, workload.Moderate, []uint{4}, 4},
		{"serial-worker", 3000, 3000, 30, workload.Moderate, []uint{4}, 1},
		{"wide-fanout", 3000, 3000, 0, workload.NearUniform, []uint{8}, 4},
	} {
		t.Run(c.name, func(t *testing.T) {
			v1 := buildValues(t, c.n1, c.dup, c.sigma, 71)
			v2 := buildValues(t, c.n2, c.dup, c.sigma, 73)
			ids := storage.NewIDGen()
			r1 := buildRelation(t, ids, "r1", v1)
			r2 := buildRelation(t, ids, "r2", v2)
			spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}

			var sm, pm meter.Counters
			serial := exec.HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &sm))
			par, stats := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &pm), c.bits, c.workers)
			sameResults(t, "radix", joinResultSet(t, serial), joinResultSet(t, par))
			if stats.Passes != len(c.bits) {
				t.Fatalf("stats.Passes = %d, want %d", stats.Passes, len(c.bits))
			}
			if stats.Rows != c.n2 {
				t.Fatalf("stats.Rows = %d, want build cardinality %d", stats.Rows, c.n2)
			}
			if pm.RadixPasses != int64(2*len(c.bits)) {
				t.Fatalf("meter RadixPasses = %d, want %d (both sides)", pm.RadixPasses, 2*len(c.bits))
			}
			if pm.Partitions == 0 || pm.HashCalls == 0 {
				t.Fatalf("meter not folded: partitions=%d hash=%d", pm.Partitions, pm.HashCalls)
			}
			// One hash per tuple per side — partitioning, placement, and
			// probing all reuse it.
			if want := int64(c.n1 + c.n2); pm.HashCalls != want {
				t.Fatalf("HashCalls = %d, want exactly one per tuple = %d", pm.HashCalls, want)
			}
		})
	}
}

// All join keys equal: every entry lands in one hot partition, the
// write-combining path must stream it without overflow, and the result
// is the full cross product.
func TestRadixHashJoinAllEqualKeys(t *testing.T) {
	n := 300
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = 7
	}
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", vals)
	r2 := buildRelation(t, ids, "r2", vals)
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	var m meter.Counters
	res, stats := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, withMeter(spec, &m), []uint{4, 4}, 4)
	if res.Len() != n*n {
		t.Fatalf("all-equal join emitted %d rows, want %d", res.Len(), n*n)
	}
	if stats.MaxPart != n {
		t.Fatalf("stats.MaxPart = %d, want the whole build side %d", stats.MaxPart, n)
	}
	if skew := stats.Skew(); skew != float64(stats.Fanout) {
		t.Fatalf("Skew = %v, want fanout %d (single hot partition)", skew, stats.Fanout)
	}
}

// Zero-row sides must be safe and empty on both orientations.
func TestRadixHashJoinZeroRows(t *testing.T) {
	ids := storage.NewIDGen()
	full := buildRelation(t, ids, "full", buildValues(t, 500, 0, workload.NearUniform, 79))
	empty := buildRelation(t, ids, "empty", nil)
	for _, c := range []struct {
		name         string
		outer, inner *storage.Relation
	}{
		{"empty-build", full, empty},
		{"empty-probe", empty, full},
		{"both-empty", empty, empty},
	} {
		rows := -1
		spec := exec.JoinSpec{OuterName: "o", InnerName: "i", OuterField: 0, InnerField: 0, RowsOut: &rows}
		res, _ := RadixHashJoin(RelationSource{Rel: c.outer}, RelationSource{Rel: c.inner}, spec, []uint{4}, 4)
		if res.Len() != 0 || rows != 0 {
			t.Fatalf("%s: emitted %d rows, RowsOut=%d", c.name, res.Len(), rows)
		}
	}
}

// A Limit is an inherently sequential early exit: the radix join must
// delegate to the serial operator and honor it exactly.
func TestRadixHashJoinLimitDelegates(t *testing.T) {
	vals := buildValues(t, 2000, 40, workload.Moderate, 83)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", vals)
	r2 := buildRelation(t, ids, "r2", vals)
	rows := 0
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0, Limit: 17, RowsOut: &rows}
	res, stats := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, spec, []uint{4}, 4)
	if res.Len() != 17 || rows != 17 {
		t.Fatalf("limit join emitted %d rows, RowsOut=%d, want 17", res.Len(), rows)
	}
	if stats.Fanout != 0 {
		t.Fatalf("limit join reported radix stats %+v, want zero (serial delegation)", stats)
	}
}

// Discard counts matches without materializing; RowsOut still reports.
func TestRadixHashJoinDiscard(t *testing.T) {
	vals := buildValues(t, 3000, 50, workload.Moderate, 89)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", vals)
	r2 := buildRelation(t, ids, "r2", vals)
	want := 0
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0, RowsOut: &want}
	exec.HashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, spec)

	got := 0
	dspec := spec
	dspec.Discard = true
	dspec.RowsOut = &got
	res, _ := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, dspec, []uint{4}, 4)
	if res.Len() != 0 {
		t.Fatalf("discard join materialized %d rows", res.Len())
	}
	if got != want {
		t.Fatalf("discard RowsOut = %d, serial join emitted %d", got, want)
	}
}

// TestRadixProjectHashIdenticalToSerial: the radix distinct must be
// bit-identical to the serial §3.4 operator — same survivors, same
// first-occurrence order — across duplicate mixes and pass structures.
func TestRadixProjectHashIdenticalToSerial(t *testing.T) {
	for _, c := range []struct {
		name string
		dup  float64
		bits []uint
	}{
		{"unique", 0, []uint{4}},
		{"half-dups", 50, []uint{3, 3}},
		{"heavy-dups", 95, []uint{6}},
	} {
		t.Run(c.name, func(t *testing.T) {
			vals := buildValues(t, 5000, c.dup, workload.Skewed, 97)
			ids := storage.NewIDGen()
			rel := buildRelation(t, ids, "r", vals)
			list := storage.MustTempList(storage.Descriptor{
				Sources: []string{"r"},
				Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
			})
			rel.ScanPhysical(func(tp *storage.Tuple) bool { list.Append(storage.Row{tp}); return true })

			var sm, pm meter.Counters
			serial := exec.ProjectHash(list, &sm)
			par, stats := RadixProjectHash(nil, list, &pm, nil, 4, c.bits)
			if par.Len() != serial.Len() {
				t.Fatalf("radix kept %d rows, serial %d", par.Len(), serial.Len())
			}
			for i := 0; i < serial.Len(); i++ {
				if par.Row(i)[0] != serial.Row(i)[0] {
					t.Fatalf("row %d: radix distinct output not identical to serial", i)
				}
			}
			if pm.HashCalls != sm.HashCalls {
				t.Fatalf("radix hashed %d keys, serial %d", pm.HashCalls, sm.HashCalls)
			}
			if stats.Passes != len(c.bits) || stats.Rows != list.Len() {
				t.Fatalf("stats = %+v", stats)
			}
		})
	}
}

// Degenerate distinct inputs: all-equal rows collapse to one survivor
// through the single hot partition; empty and single-row lists delegate.
func TestRadixProjectHashDegenerate(t *testing.T) {
	ids := storage.NewIDGen()
	vals := make([]int64, 1000)
	rel := buildRelation(t, ids, "r", vals)
	list := storage.MustTempList(storage.Descriptor{
		Sources: []string{"r"},
		Cols:    []storage.ColRef{{Source: 0, Field: 0, Name: "val"}},
	})
	rel.ScanPhysical(func(tp *storage.Tuple) bool { list.Append(storage.Row{tp}); return true })
	var m meter.Counters
	out, stats := RadixProjectHash(nil, list, &m, nil, 4, []uint{4, 2})
	if out.Len() != 1 {
		t.Fatalf("all-equal distinct kept %d rows, want 1", out.Len())
	}
	if out.Row(0)[0] != list.Row(0)[0] {
		t.Fatal("survivor is not the first occurrence")
	}
	if stats.MaxPart != 1000 {
		t.Fatalf("MaxPart = %d, want hot partition of 1000", stats.MaxPart)
	}

	emptyList := storage.MustTempList(storage.Descriptor{Sources: []string{"r"}, Cols: []storage.ColRef{{Source: 0, Field: 0, Name: "val"}}})
	if res, _ := RadixProjectHash(nil, emptyList, nil, nil, 4, []uint{4}); res.Len() != 0 {
		t.Fatal("empty list distinct not empty")
	}
}

// Nil meters must be safe end to end on the radix paths.
func TestRadixNilMeter(t *testing.T) {
	vals := buildValues(t, 1000, 30, workload.Moderate, 101)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", vals)
	r2 := buildRelation(t, ids, "r2", vals)
	spec := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	if res, _ := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, spec, []uint{3}, 4); res.Len() == 0 {
		t.Fatal("nil-meter radix join emitted nothing")
	}
}
