package parallel

import "testing"

// TestClampDegree exercises the compat-mode degree clamp: with the
// shared pool disabled, N concurrent queries divide their resolved
// degree by N instead of oversubscribing the machine N times over.
func TestClampDegree(t *testing.T) {
	if got := ClampDegree(8); got != 8 {
		t.Fatalf("idle clamp: ClampDegree(8) = %d, want 8", got)
	}

	rel1 := EnterQuery()
	if got := ClampDegree(8); got != 8 {
		t.Fatalf("single query must be unaffected: got %d, want 8", got)
	}

	rel2 := EnterQuery()
	if got := ClampDegree(8); got != 4 {
		t.Fatalf("two queries: ClampDegree(8) = %d, want 4", got)
	}
	if got := ClampDegree(1); got != 1 {
		t.Fatalf("serial stays serial: got %d, want 1", got)
	}

	var rels []func()
	for i := 0; i < 14; i++ {
		rels = append(rels, EnterQuery())
	}
	if got := ClampDegree(8); got != 1 {
		t.Fatalf("16 queries floor at 1: got %d", got)
	}
	for _, r := range rels {
		r()
	}
	rel2()
	if got := ClampDegree(8); got != 8 {
		t.Fatalf("after release, single query clamps nothing: got %d", got)
	}
	rel1()
	if got := ClampDegree(8); got != 8 {
		t.Fatalf("after all releases: got %d, want 8", got)
	}
}
