package parallel

import (
	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/radix"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// RadixHashJoin is the cache-conscious counterpart of the chained-bucket
// hash join: both sides are multi-pass radix-partitioned on the top bits
// of the join-key hash (internal/radix's histogram-then-scatter kernel
// with write-combining buffers), then every partition pair is processed
// independently — build a flat open-addressing table over the inner
// partition, sized to stay L2-resident, and probe it with the outer
// partition's entries straight out of the partitioned array. Partition
// pairs are fanned out across the worker pool as morsels; workers=1 runs
// the same partitioned algorithm serially, which is still a win at scale
// because the cache behavior, not the parallelism, is the point.
//
// Key hashes are computed once per tuple and reused for partitioning,
// table placement, and the probe's hash-first filter — the full key
// comparison runs only on 64-bit hash equality, so cold tuples are
// rarely touched for non-matches. Equal keys hash equal, so matches can
// never cross partitions.
//
// Output rows are grouped by partition (within one partition, outer scan
// order); the match multiset is identical to the serial join's. A Limit
// (inherently sequential early exit) or an empty side delegates to the
// serial exec.HashJoin. Returns the result list plus the build side's
// partitioning stats for traces and EXPLAIN ANALYZE.
func RadixHashJoin(outer, inner exec.Source, spec exec.JoinSpec, bits []uint, workers int) (*storage.TempList, radix.Stats) {
	pl := radix.Plan{Bits: bits}
	if spec.Limit > 0 || pl.Fanout() <= 1 {
		return exec.HashJoin(outer, inner, spec), radix.Stats{}
	}
	w := Degree(workers)
	innerC, outerC := AsChunked(inner), AsChunked(outer)
	ni, no := innerC.Len(), outerC.Len()
	if ni == 0 || no == 0 {
		return exec.HashJoin(outerC, innerC, spec), radix.Stats{}
	}

	// Phase 1 — hash both sides into entry arrays: one storage.Hash per
	// tuple, reused by every later phase. Chunks are contiguous in source
	// order, so each worker writes a disjoint range of the entry array.
	ie := hashEntries(spec.Sched, innerC, ni, spec.InnerField, spec.Meter, spec.Prog, w)
	oe := hashEntries(spec.Sched, outerC, no, spec.OuterField, spec.Meter, spec.Prog, w)

	// Phase 2 — radix-partition both sides with pooled kernel scratch.
	// The two partitioners stay live until the probe phase finishes
	// (their internal buffers may hold the partitioned layouts).
	pi := radix.GetTuplePartitioner()
	po := radix.GetTuplePartitioner()
	ie, ioffs := pi.Partition(ie, pl, spec.Meter)
	oe, ooffs := po.Partition(oe, pl, spec.Meter)
	stats := radix.StatsOf(pl, ioffs)

	// Phase 3 — per-partition build + probe, partition pairs as morsels.
	// Each pair touches only its two partition extents and its own flat
	// table, so a pair's working set is the L2-sized footprint the plan
	// chose the radix bits for.
	fanout := pl.Fanout()
	desc := exec.PairDescriptor(spec.OuterName, spec.InnerName, spec.Cols)
	results := make([]*storage.TempList, fanout)
	counts := make([]int, fanout)
	fi, fo := spec.InnerField, spec.OuterField
	spec.Meter.Add(run(spec.Sched, spec.Prog, "radix join", w, fanout, func(p int, sc *scratch) {
		blo, bhi := ioffs[p], ioffs[p+1]
		plo, phi := ooffs[p], ooffs[p+1]
		if blo == bhi || plo == phi {
			return // nothing to build or nothing to probe: no matches
		}
		sc.rows += int64((bhi - blo) + (phi - plo))
		tbl := radix.GetTable()
		if tbl.Reset(bhi - blo) {
			sc.ctr.AddAlloc(1)
		}
		for _, e := range ie[blo:bhi] {
			tbl.Insert(e.H, e.P)
		}
		sc.ctr.AddMove(int64(bhi - blo))
		var local *storage.TempList
		if !spec.Discard {
			local = storage.MustTempList(desc)
		}
		// One match closure per morsel, capturing the mutable probe key —
		// a per-tuple closure literal would heap-allocate on every probe.
		var ko storage.Value
		match := func(i *storage.Tuple) bool {
			sc.ctr.AddCompare(1)
			return storage.Equal(tupleindex.KeyOf(i, fi), ko)
		}
		n := 0
		matches := sc.keep
		probe := oe[plo:phi]
		sc.ctr.AddBatch(int64(1 + len(probe)/storage.BatchSize))
		for j := range probe {
			o := probe[j].P
			ko = tupleindex.KeyOf(o, fo)
			matches = tbl.ProbeAppend(probe[j].H, match, matches[:0])
			n += len(matches)
			if local != nil {
				for _, i := range matches {
					local.AppendPair(o, i)
				}
			}
		}
		sc.keep = matches
		radix.PutTable(tbl)
		results[p] = local
		counts[p] = n
	}))
	radix.PutTuplePartitioner(pi)
	radix.PutTuplePartitioner(po)

	if spec.RowsOut != nil {
		total := 0
		for _, n := range counts {
			total += n
		}
		*spec.RowsOut = total
	}
	parts := results[:0]
	for _, r := range results {
		if r != nil {
			parts = append(parts, r)
		}
	}
	if spec.Discard {
		return storage.MustTempList(desc), stats
	}
	return mergeListsRecycle(desc, parts), stats
}

// hashEntries materializes a side into (hash, tuple) entries, one
// storage.Hash call per tuple, parallel over contiguous chunks.
func hashEntries(sq *sched.Query, src Chunked, n, field int, m *meter.Counters, pg *obs.Progress, w int) []radix.TupleEntry {
	es := make([]radix.TupleEntry, n)
	chunks := src.Chunks(w * morselsPerWorker)
	offs := make([]int, len(chunks)+1)
	for i, c := range chunks {
		offs[i+1] = offs[i] + c.Len()
	}
	m.Add(run(sq, pg, "radix join", w, len(chunks), func(c int, sc *scratch) {
		i := offs[c]
		exec.ScanBatches(chunks[c], sc.buf, func(block storage.TupleBatch) bool {
			sc.ctr.AddBatch(1)
			sc.ctr.AddHash(int64(len(block)))
			sc.rows += int64(len(block))
			for _, t := range block {
				es[i] = radix.TupleEntry{H: storage.Hash(tupleindex.KeyOf(t, field)), P: t}
				i++
			}
			return true
		})
	}))
	return es
}
