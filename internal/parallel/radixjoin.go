package parallel

import (
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/radix"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// RadixHashJoin is the cache-conscious counterpart of the chained-bucket
// hash join: both sides are multi-pass radix-partitioned on the top bits
// of the join-key hash (internal/radix's histogram-then-scatter kernel
// with write-combining buffers), then every partition pair is processed
// independently — build a flat open-addressing table over the inner
// partition, sized to stay L2-resident, and probe it with the outer
// partition's entries straight out of the partitioned array. Partition
// pairs are fanned out across the worker pool as morsels; workers=1 runs
// the same partitioned algorithm serially, which is still a win at scale
// because the cache behavior, not the parallelism, is the point.
//
// Key hashes are computed once per tuple and reused for partitioning,
// table placement, and the probe's hash-first filter — the full key
// comparison runs only on 64-bit hash equality, so cold tuples are
// rarely touched for non-matches. Equal keys hash equal, so matches can
// never cross partitions.
//
// Output rows are grouped by partition (within one partition, outer scan
// order); the match multiset is identical to the serial join's. A Limit
// (inherently sequential early exit) or an empty side delegates to the
// serial exec.HashJoin. Returns the result list plus the build side's
// partitioning stats for traces and EXPLAIN ANALYZE.
func RadixHashJoin(outer, inner exec.Source, spec exec.JoinSpec, bits []uint, workers int) (*storage.TempList, radix.Stats) {
	pl := radix.Plan{Bits: bits}
	if spec.Limit > 0 || pl.Fanout() <= 1 {
		return exec.HashJoin(outer, inner, spec), radix.Stats{}
	}
	w := Degree(workers)
	innerC, outerC := AsChunked(inner), AsChunked(outer)
	ni, no := innerC.Len(), outerC.Len()
	if ni == 0 || no == 0 {
		return exec.HashJoin(outerC, innerC, spec), radix.Stats{}
	}

	// Phase 1 — hash both sides into entry arrays: one storage.Hash per
	// tuple, reused by every later phase. Chunks are contiguous in source
	// order, so each worker writes a disjoint range of the entry array.
	ie := hashEntries(spec.Sched, innerC, ni, spec.InnerField, spec.Meter, spec.Prog, w)
	oe := hashEntries(spec.Sched, outerC, no, spec.OuterField, spec.Meter, spec.Prog, w)

	// Phase 2 — radix-partition both sides with pooled kernel scratch.
	// The two partitioners stay live until the probe phase finishes
	// (their internal buffers may hold the partitioned layouts).
	pi := radix.GetTuplePartitioner()
	po := radix.GetTuplePartitioner()
	ie, ioffs := pi.Partition(ie, pl, spec.Meter)
	oe, ooffs := po.Partition(oe, pl, spec.Meter)
	stats := radix.StatsOf(pl, ioffs)

	// Phase 3 — per-partition build + probe, partition pairs as morsels.
	// Each pair touches only its two partition extents and its own flat
	// table, so a pair's working set is the L2-sized footprint the plan
	// chose the radix bits for. Under a memory reservation (spec.Mem)
	// each pair runs the dynamic-hybrid protocol instead: decide roles,
	// grant the table, and degrade (reverse, re-split, force) when the
	// grant or the forecast is wrong — see joinPair.
	fanout := pl.Fanout()
	desc := exec.PairDescriptor(spec.OuterName, spec.InnerName, spec.Cols)
	results := make([]*storage.TempList, fanout)
	counts := make([]int, fanout)
	var reversals, resplits atomic.Int64
	skip := pl.TotalBits()
	spec.Meter.Add(run(spec.Sched, spec.Prog, "radix join", w, fanout, func(p int, sc *scratch) {
		blo, bhi := ioffs[p], ioffs[p+1]
		plo, phi := ooffs[p], ooffs[p+1]
		if blo == bhi || plo == phi {
			return // nothing to build or nothing to probe: no matches
		}
		var local *storage.TempList
		if !spec.Discard {
			local = storage.MustTempList(desc)
		}
		st := pairState{
			spec:      &spec,
			sc:        sc,
			local:     local,
			reversals: &reversals,
			resplits:  &resplits,
		}
		counts[p] = st.joinPair(ie[blo:bhi], oe[plo:phi], skip, 0)
		results[p] = local
	}))
	radix.PutTuplePartitioner(pi)
	radix.PutTuplePartitioner(po)
	stats.Reversed = int(reversals.Load())
	stats.Repartitions = int(resplits.Load())
	spec.Mem.NoteReversal(reversals.Load())
	spec.Mem.NoteRepartition(resplits.Load())

	if spec.RowsOut != nil {
		total := 0
		for _, n := range counts {
			total += n
		}
		*spec.RowsOut = total
	}
	parts := results[:0]
	for _, r := range results {
		if r != nil {
			parts = append(parts, r)
		}
	}
	if spec.Discard {
		return storage.MustTempList(desc), stats
	}
	return mergeListsRecycle(desc, parts), stats
}

// Dynamic-hybrid degradation bounds (Jahangiri/Carey/Freytag's
// graceful-degradation order, adapted to a pure in-memory engine:
// reverse roles, re-split fat partitions, and only then overcommit).
const (
	// maxResplitDepth bounds recursive repartitioning: each round
	// consumes up to DefaultRadixMaxPassBits more hash bits, so three
	// rounds on top of a clamped 2-bit plan reach 26 bits of fanout —
	// past any real partition before the bound ever fires, but a hard
	// stop against adversarial hash distributions.
	maxResplitDepth = 3
	// minResplitRows is the build size below which a refused grant is
	// forced instead of re-split: the table is already tiny, so the
	// refusal is transient concurrency pressure, not fatness.
	minResplitRows = 256
	// minChildTableBytes floors the re-split target so a starved budget
	// still produces usefully sized children rather than fanout-per-row.
	minChildTableBytes = 32 << 10
	// maxChildTableBytes caps the re-split target at the L2 working set
	// the radix plan aims for in the first place.
	maxChildTableBytes = 256 << 10
)

// pairState carries one morsel's context through the recursive
// partition-pair protocol.
type pairState struct {
	spec      *exec.JoinSpec
	sc        *scratch
	local     *storage.TempList
	reversals *atomic.Int64
	resplits  *atomic.Int64
}

// joinPair joins one partition pair, inner × outer, in original
// orientation (output rows are always (outer, inner) regardless of
// build role). skip is how many top hash bits this pair's partition
// path has consumed; depth counts re-split rounds.
//
// The budgeted protocol, in degradation order:
//  1. Role reversal — build over the smaller extent. The planner chose
//     the inner side from pre-partition cardinality forecasts; the
//     histograms are ground truth, and under skew a "small" side's
//     partition can dwarf its sibling.
//  2. Grant-before-build — the flat table's exact footprint is granted
//     before construction. A refused grant on a splittable partition
//     triggers recursive repartitioning: both extents re-scatter on the
//     next hash digits and each child pair re-enters the protocol
//     (roles re-decided per child, grants re-tried per child).
//  3. Forced overcommit — a partition that cannot shrink (all-equal
//     hashes, bits exhausted, depth bound) builds at whatever size it
//     is, recorded in the manager's forced counter.
//
// With no reservation (spec.Mem == nil) the pre-budget fast path runs:
// build inner, probe outer, no accounting.
func (st *pairState) joinPair(inner, outer []radix.TupleEntry, skip uint, depth int) int {
	if len(inner) == 0 || len(outer) == 0 {
		return 0
	}
	spec := st.spec
	if spec.Mem == nil {
		return st.buildProbe(inner, outer, false)
	}
	build, probe, reversed := inner, outer, false
	if !spec.NoDefense && len(outer) < len(inner) {
		build, probe, reversed = outer, inner, true
	}
	need := radix.TableBytes(len(build))
	if !spec.Mem.TryGrant(need) {
		if !spec.NoDefense && depth < maxResplitDepth && len(build) >= minResplitRows {
			if extra := st.resplitBits(len(build), skip); extra > 0 {
				if n, ok := st.resplitAndJoin(inner, outer, skip, extra, depth); ok {
					return n
				}
			}
		}
		// Unsplittable (all-equal hashes, hash bits exhausted, depth
		// bound, or already tiny): build at full size, recorded.
		spec.Mem.Force(need)
	}
	if reversed {
		st.reversals.Add(1)
	}
	n := st.buildProbe(build, probe, reversed)
	spec.Mem.Release(need)
	return n
}

// resplitBits sizes one re-split round: enough extra radix bits that a
// child's build table fits the current budget slack (clamped to
// [minChildTableBytes, maxChildTableBytes]), capped by the per-pass
// write-combining budget and the hash bits this pair has left. 0 means
// re-splitting cannot help.
func (st *pairState) resplitBits(buildRows int, skip uint) uint {
	maxExtra := uint(64) - skip
	if maxExtra > 8 { // one pass, DefaultRadixMaxPassBits
		maxExtra = 8
	}
	target := st.spec.Mem.Available()
	if target > maxChildTableBytes {
		target = maxChildTableBytes
	}
	if target < minChildTableBytes {
		target = minChildTableBytes
	}
	// A table over n rows is ≤ 4n·16 bytes (power-of-two rounding of 2n
	// slots), so n ≤ target/64 is guaranteed to fit.
	rowsPerChild := int(target / 64)
	if rowsPerChild < 1 {
		rowsPerChild = 1
	}
	var extra uint
	for extra < maxExtra && buildRows>>extra > rowsPerChild {
		extra++
	}
	return extra
}

// resplitAndJoin re-scatters both extents on the next `extra` hash
// digits below skip and joins each child pair recursively. It reports
// false — pair not joined — when the scatter made no progress (every
// entry of both sides landed in one child: all-equal hashes), in which
// case the caller falls through to the forced path. The re-scatter is
// done with pooled kernel scratch; the refined layouts are copied back
// into the parent extents so the scratch can be released before
// recursing (children re-split with their own pooled partitioners).
func (st *pairState) resplitAndJoin(inner, outer []radix.TupleEntry, skip, extra uint, depth int) (int, bool) {
	cpl := radix.Plan{Bits: []uint{extra}}
	pr := radix.GetTuplePartitioner()
	ires, irel := pr.PartitionFrom(inner, cpl, skip, st.spec.Meter)
	if len(ires) > 0 && &ires[0] != &inner[0] {
		copy(inner, ires)
	}
	ioffs := append(make([]int, 0, len(irel)), irel...)
	ores, orel := pr.PartitionFrom(outer, cpl, skip, st.spec.Meter)
	if len(ores) > 0 && &ores[0] != &outer[0] {
		copy(outer, ores)
	}
	ooffs := append(make([]int, 0, len(orel)), orel...)
	radix.PutTuplePartitioner(pr)

	maxI, maxO := 0, 0
	for c := 0; c < cpl.Fanout(); c++ {
		if n := ioffs[c+1] - ioffs[c]; n > maxI {
			maxI = n
		}
		if n := ooffs[c+1] - ooffs[c]; n > maxO {
			maxO = n
		}
	}
	if maxI == len(inner) && maxO == len(outer) {
		return 0, false // nothing split: identical hashes straight down
	}
	st.resplits.Add(1)
	total := 0
	for c := 0; c < cpl.Fanout(); c++ {
		total += st.joinPair(inner[ioffs[c]:ioffs[c+1]], outer[ooffs[c]:ooffs[c+1]], skip+extra, depth+1)
	}
	return total, true
}

// buildProbe builds the flat table over build and probes it with probe,
// emitting (outer, inner) oriented rows: with reversed=false the build
// side is the inner relation, with reversed=true the roles are swapped
// and emission un-swaps them.
func (st *pairState) buildProbe(build, probe []radix.TupleEntry, reversed bool) int {
	sc := st.sc
	sc.rows += int64(len(build) + len(probe))
	tbl := radix.GetTable()
	if tbl.Reset(len(build)) {
		sc.ctr.AddAlloc(1)
	}
	for _, e := range build {
		tbl.Insert(e.H, e.P)
	}
	sc.ctr.AddMove(int64(len(build)))
	fb, fp := st.spec.InnerField, st.spec.OuterField
	if reversed {
		fb, fp = st.spec.OuterField, st.spec.InnerField
	}
	// One match closure per call, capturing the mutable probe key — a
	// per-tuple closure literal would heap-allocate on every probe.
	var ko storage.Value
	match := func(b *storage.Tuple) bool {
		sc.ctr.AddCompare(1)
		return storage.Equal(tupleindex.KeyOf(b, fb), ko)
	}
	n := 0
	matches := sc.keep
	sc.ctr.AddBatch(int64(1 + len(probe)/storage.BatchSize))
	for j := range probe {
		t := probe[j].P
		ko = tupleindex.KeyOf(t, fp)
		matches = tbl.ProbeAppend(probe[j].H, match, matches[:0])
		n += len(matches)
		if st.local != nil {
			if reversed {
				for _, b := range matches {
					st.local.AppendPair(b, t)
				}
			} else {
				for _, b := range matches {
					st.local.AppendPair(t, b)
				}
			}
		}
	}
	sc.keep = matches
	radix.PutTable(tbl)
	return n
}

// hashEntries materializes a side into (hash, tuple) entries, one
// storage.Hash call per tuple, parallel over contiguous chunks.
func hashEntries(sq *sched.Query, src Chunked, n, field int, m *meter.Counters, pg *obs.Progress, w int) []radix.TupleEntry {
	es := make([]radix.TupleEntry, n)
	chunks := src.Chunks(w * morselsPerWorker)
	offs := make([]int, len(chunks)+1)
	for i, c := range chunks {
		offs[i+1] = offs[i] + c.Len()
	}
	m.Add(run(sq, pg, "radix join", w, len(chunks), func(c int, sc *scratch) {
		i := offs[c]
		exec.ScanBatches(chunks[c], sc.buf, func(block storage.TupleBatch) bool {
			sc.ctr.AddBatch(1)
			sc.ctr.AddHash(int64(len(block)))
			sc.rows += int64(len(block))
			for _, t := range block {
				es[i] = radix.TupleEntry{H: storage.Hash(tupleindex.KeyOf(t, field)), P: t}
				i++
			}
			return true
		})
	}))
	return es
}
