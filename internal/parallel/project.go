package parallel

import (
	"slices"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
)

// keyedRow is one temp-list row routed to a hash partition: its original
// row index (for restoring first-occurrence order), its projected key,
// and the key's hash.
type keyedRow struct {
	idx  int
	hash uint64
	key  []storage.Value
}

// ProjectHash is the partitioned parallel counterpart of
// exec.ProjectHash (§3.4 Hashing): rows are hash-partitioned on their
// projected key, each partition is duplicate-eliminated privately with
// the same |partition|/2-slot chained table the serial operator uses, and
// the surviving first occurrences are merged back into ascending row
// order — so the output is bit-identical to the serial operator's
// (first occurrence of each distinct key, in input order).
//
// workers <= 1 or a list too small to chunk delegates to the serial
// operator.
func ProjectHash(sq *sched.Query, list *storage.TempList, m *meter.Counters, pg *obs.Progress, workers int) *storage.TempList {
	w := Degree(workers)
	if w <= 1 || list.Len() < 2 {
		return exec.ProjectHash(list, m)
	}
	n := list.Len()
	nparts := w

	// Phase 1 — key extraction + partitioning. Workers own static
	// contiguous row ranges in worker order, so each bucket's rows stay in
	// ascending row-index order and concatenating buckets in worker order
	// preserves it.
	buckets := make([][][]keyedRow, w)
	m.Add(run(sq, pg, "distinct", w, w, func(widx int, sc *scratch) {
		lo, hi := n*widx/w, n*(widx+1)/w
		sc.rows += int64(hi - lo)
		local := make([][]keyedRow, nparts)
		for i := lo; i < hi; i++ {
			key := list.RowValues(i)
			h := exec.KeyHash(key, &sc.ctr)
			p := partOf(h, nparts)
			local[p] = append(local[p], keyedRow{idx: i, hash: h, key: key})
		}
		buckets[widx] = local
	}))

	// Phase 2 — per-partition duplicate elimination. Worker p owns
	// partition p: a private chained table sized at half the partition's
	// rows (the serial §3.4 sizing), first occurrence wins. Rows arrive in
	// ascending index order, so "first" matches the serial scan.
	survivors := make([][]int, nparts)
	m.Add(run(sq, pg, "distinct", w, nparts, func(p int, sc *scratch) {
		count := 0
		for widx := range buckets {
			count += len(buckets[widx][p])
		}
		if count == 0 {
			return
		}
		sc.rows += int64(count)
		nslots := count / 2
		if nslots < 1 {
			nslots = 1
		}
		type entry struct {
			key  []storage.Value
			next *entry
		}
		slots := make([]*entry, nslots)
		keep := make([]int, 0, count)
		for widx := range buckets {
			for _, r := range buckets[widx][p] {
				s := r.hash % uint64(nslots)
				dup := false
				for e := slots[s]; e != nil; e = e.next {
					if exec.KeysEqual(e.key, r.key, &sc.ctr) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				slots[s] = &entry{key: r.key, next: slots[s]}
				keep = append(keep, r.idx)
			}
		}
		survivors[p] = keep
	}))

	// Phase 3 — restore input order: merge the per-partition survivor
	// indices (each already ascending) and emit the surviving rows.
	total := 0
	for _, s := range survivors {
		total += len(s)
	}
	order := make([]int, 0, total)
	for _, s := range survivors {
		order = append(order, s...)
	}
	// slices.Sort on the plain int slice: no comparator closure, no
	// interface-header allocation on this hot merge path (the old
	// sort.Ints boxed the slice through sort.Interface).
	slices.Sort(order)
	// The survivor count is known exactly here, so the output list is
	// presized and never grows while emitting.
	out := storage.MustTempListHint(list.Descriptor(), total)
	for _, i := range order {
		out.Append(list.Row(i))
	}
	return out
}
