package parallel

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/sortutil"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// splitterSampleFactor bounds the sample the range splitters are drawn
// from: a few dozen evenly spaced keys per worker are enough to balance
// ranges on the distributions the paper studies.
const splitterSampleFactor = 32

// SortMergeJoin is the MPSM-style parallel sort-merge join (after
// Albutiu, Kemper & Neumann): both sides are range-partitioned on
// splitters sampled from the inner's key distribution, then each worker
// sorts its own outer and inner runs locally and merge-joins them — the
// sorts are private, so there is no global sort or merge barrier across
// workers. Equal keys always land in the same range (partitioning is by
// strict key intervals), so the result is exactly the serial join's row
// set, emitted in ascending key-range order like the serial sort-merge.
//
// workers <= 1, a Limit (inherently sequential early exit), or an empty
// side all delegate to the serial exec.SortMergeJoin.
func SortMergeJoin(outer, inner exec.Source, spec exec.JoinSpec, workers int) *storage.TempList {
	w := Degree(workers)
	if w <= 1 || spec.Limit > 0 {
		return exec.SortMergeJoin(outer, inner, spec)
	}
	to := exec.Tuples(outer)
	ti := exec.Tuples(inner)
	if len(to) == 0 || len(ti) == 0 {
		return exec.SortMergeJoin(SliceSource(to), SliceSource(ti), spec)
	}

	fo, fi := spec.OuterField, spec.InnerField
	splitters := sampleSplitters(ti, fi, w, spec.Meter)
	nparts := len(splitters) + 1

	// Phase 1 — range-partition both sides in parallel. Each morsel
	// classifies its tuples into private per-range buckets; worker r later
	// concatenates the buckets of range r in morsel order.
	outerBuckets := classifyRanges(spec.Sched, to, fo, splitters, w, spec.Meter, spec.Prog)
	innerBuckets := classifyRanges(spec.Sched, ti, fi, splitters, w, spec.Meter, spec.Prog)

	// Phase 2 — per-range local sort + merge. Worker r owns key range r:
	// it gathers the range's tuples, sorts both runs locally (the same
	// append + quicksort build the serial join uses), and merges. No
	// cross-worker coordination: ranges are disjoint and cover the key
	// space.
	desc := exec.PairDescriptor(spec.OuterName, spec.InnerName, spec.Cols)
	results := make([]*storage.TempList, nparts)
	counts := make([]int, nparts)
	spec.Meter.Add(run(spec.Sched, spec.Prog, "sortmerge join", w, nparts, func(r int, sc *scratch) {
		outerRun := gatherRange(outerBuckets, r)
		innerRun := gatherRange(innerBuckets, r)
		if len(outerRun) == 0 || len(innerRun) == 0 {
			results[r] = storage.MustTempList(desc)
			return
		}
		sc.rows += int64(len(outerRun) + len(innerRun))
		// Run formation uses the spec's sort substrate: the faithful
		// append+quicksort build, or the normalized-key radix kernel when
		// the planner (or the SortMethod knob) selected it.
		build := tupleindex.BuildArray
		if spec.SortMethod == plan.SortRadixKey {
			build = tupleindex.BuildArrayRadix
		}
		ao := build(tupleindex.Options{Field: fo, Meter: &sc.ctr}, outerRun)
		ai := build(tupleindex.Options{Field: fi, Meter: &sc.ctr}, innerRun)
		sub := spec
		sub.Meter = &sc.ctr
		sub.RowsOut = &counts[r]
		sub.Parallelism = 1
		results[r] = exec.MergeJoinArrays(ao, ai, sub)
	}))

	if spec.RowsOut != nil {
		total := 0
		for _, n := range counts {
			total += n
		}
		*spec.RowsOut = total
	}
	return mergeListsRecycle(desc, results)
}

// sampleSplitters draws up to w-1 range splitters from evenly spaced keys
// of the tuples, so each of the w ranges holds roughly the same share of
// the key distribution. Duplicate sample keys may yield fewer (even zero)
// splitters — empty ranges are harmless.
func sampleSplitters(tuples []*storage.Tuple, field, w int, m *meter.Counters) []storage.Value {
	samples := w * splitterSampleFactor
	if samples > len(tuples) {
		samples = len(tuples)
	}
	keys := make([]storage.Value, 0, samples)
	for s := 0; s < samples; s++ {
		keys = append(keys, tupleindex.KeyOf(tuples[len(tuples)*s/samples], field))
	}
	// The splitter sort runs through the metered sort substrate so its
	// comparisons land in the same §3.1 counters as every other sort —
	// an unmetered sort.Slice here made EXPLAIN ANALYZE under-report the
	// MPSM join's comparison count by the sample-sort work.
	sortutil.SortMetered(keys, storage.Compare, m)
	splitters := make([]storage.Value, 0, w-1)
	for r := 1; r < w; r++ {
		k := keys[len(keys)*r/w]
		// Strictly increasing splitters only: equal keys must share a range.
		if len(splitters) == 0 || storage.Compare(splitters[len(splitters)-1], k) < 0 {
			splitters = append(splitters, k)
		}
	}
	return splitters
}

// classifyRanges scatters tuples into per-morsel, per-range buckets:
// range r holds the keys in [splitter[r-1], splitter[r]). The returned
// buckets[morsel][range] slices are each written by exactly one worker.
func classifyRanges(sq *sched.Query, tuples []*storage.Tuple, field int, splitters []storage.Value, w int, m *meter.Counters, pg *obs.Progress) [][][]*storage.Tuple {
	nparts := len(splitters) + 1
	chunks := SliceSource(tuples).Chunks(w * morselsPerWorker)
	buckets := make([][][]*storage.Tuple, len(chunks))
	m.Add(run(sq, pg, "sortmerge join", w, len(chunks), func(c int, sc *scratch) {
		local := make([][]*storage.Tuple, nparts)
		exec.ScanBatches(chunks[c], sc.buf, func(block storage.TupleBatch) bool {
			sc.ctr.AddBatch(1)
			sc.rows += int64(len(block))
			for _, t := range block {
				k := tupleindex.KeyOf(t, field)
				r := sort.Search(len(splitters), func(i int) bool {
					sc.ctr.AddCompare(1)
					return storage.Compare(splitters[i], k) > 0
				})
				local[r] = append(local[r], t)
			}
			return true
		})
		buckets[c] = local
	}))
	return buckets
}

// gatherRange concatenates one key range's buckets in morsel order.
func gatherRange(buckets [][][]*storage.Tuple, r int) []*storage.Tuple {
	n := 0
	for c := range buckets {
		n += len(buckets[c][r])
	}
	out := make([]*storage.Tuple, 0, n)
	for c := range buckets {
		out = append(out, buckets[c][r]...)
	}
	return out
}
