package parallel

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/storage"
)

// SelectScan is the morsel-driven parallel counterpart of
// exec.SelectScan. Morsels are batches: workers receive whole
// storage.TupleBatch blocks — chunk ranges of a partitionable source, or
// pooled blocks streamed through a channel for opaque sources — filter
// each block into a survivors block, and block-copy the survivors into
// private temp lists. Per-morsel lists are concatenated in morsel order
// (recycling their arena chunks), so the output row order is exactly the
// serial scan's. workers <= 1 delegates to the serial operator.
func SelectScan(src exec.Source, pred func(*storage.Tuple) bool, spec exec.SelectSpec, workers int) *storage.TempList {
	w := Degree(workers)
	if w <= 1 {
		return exec.SelectScan(src, pred, spec)
	}
	desc := exec.SingleDescriptor(spec.RelName, spec.Schema)
	if c, ok := src.(Chunked); ok {
		chunks := c.Chunks(w * morselsPerWorker)
		if len(chunks) <= 1 {
			return exec.SelectScan(src, pred, spec)
		}
		results := make([]*storage.TempList, len(chunks))
		total := run(spec.Sched, spec.Prog, "scan", w, len(chunks), func(m int, sc *scratch) {
			local := storage.MustTempListHint(desc, chunks[m].Len())
			keep := sc.keep
			exec.ScanBatches(chunks[m], sc.buf, func(block storage.TupleBatch) bool {
				sc.ctr.AddCompare(int64(len(block)))
				sc.ctr.AddBatch(1)
				sc.rows += int64(len(block))
				keep = keep[:0]
				for _, t := range block {
					if pred(t) {
						keep = append(keep, t)
					}
				}
				local.AppendBatch(keep)
				return true
			})
			sc.keep = keep
			results[m] = local
		})
		spec.Meter.Add(total)
		return mergeListsRecycle(desc, results)
	}
	if spec.Sched.Pooled() {
		// Opaque sources have no partition structure to morselize, so the
		// pooled path materializes once (the same extra pass AsChunked pays
		// elsewhere) and rescans the slice as scheduler morsels — pool
		// workers must never block in a streaming channel hand-off.
		return SelectScan(SliceSource(exec.Tuples(src)), pred, spec, workers)
	}
	return streamSelect(src, pred, spec, desc, w)
}

// seqList tags a per-batch partial result with the batch's stream
// position so the final merge can restore source order.
type seqList struct {
	seq  int
	list *storage.TempList
}

// streamSelect is the batch pipeline for sources with no partition
// structure: a single producer drains the source into pooled batches and
// hands whole blocks to the workers through a channel; each worker
// filters its blocks into per-batch lists tagged with the block's stream
// position; the partial lists are merged in stream order, so the output
// equals the serial scan's row for row. The channel moves one pointer per
// 256 tuples — the batch layer's amortization applied to the worker
// hand-off itself.
func streamSelect(src exec.Source, pred func(*storage.Tuple) bool, spec exec.SelectSpec, desc storage.Descriptor, w int) *storage.TempList {
	type seqBatch struct {
		seq   int
		block storage.TupleBatch
	}
	batches := make(chan seqBatch, w)
	outs := make([][]seqList, w)
	pg := spec.Prog
	var shared meter.SharedCounters
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(widx int) {
			defer wg.Done()
			sc := getScratch()
			drain := func() {
				var mine []seqList
				var wrows int64
				for sb := range batches {
					if spec.Sched.Cancelled() {
						// Keep draining so the producer never blocks, but do
						// no further work — morsel-boundary cancellation.
						storage.PutBatch(sb.block)
						continue
					}
					sc.ctr.AddCompare(int64(len(sb.block)))
					sc.ctr.AddBatch(1)
					wrows += int64(len(sb.block))
					pg.AddRows(int64(len(sb.block)))
					keep := sc.keep[:0]
					for _, t := range sb.block {
						if pred(t) {
							keep = append(keep, t)
						}
					}
					sc.keep = keep
					// No size hint: an unhinted list draws full pooled chunks,
					// which MergeListsRecycle returns to the pool — the whole
					// stream runs on recycled blocks.
					local := storage.MustTempList(desc)
					local.AppendBatch(keep)
					mine = append(mine, seqList{seq: sb.seq, list: local})
					storage.PutBatch(sb.block)
				}
				outs[widx] = mine
				if pg != nil {
					pg.WorkerDone(wrows)
				}
			}
			if pg != nil {
				pg.WorkerStart()
				pprof.Do(context.Background(),
					pprof.Labels("mmdb_query", pg.Label(), "mmdb_op", "scan"),
					func(context.Context) { drain() })
			} else {
				drain()
			}
			shared.Add(sc.ctr)
			putScratch(sc)
		}(i)
	}

	// Producer: drain the source block-wise. Blocks handed out by the
	// source may be zero-copy views of its own storage, so each is copied
	// into a pooled batch the consumer owns (and recycles).
	seq := 0
	buf := storage.GetBatch()
	exec.ScanBatches(src, buf, func(block storage.TupleBatch) bool {
		owned := append(storage.GetBatch(), block...)
		batches <- seqBatch{seq: seq, block: owned}
		seq++
		return true
	})
	storage.PutBatch(buf)
	close(batches)
	wg.Wait()
	spec.Meter.Add(shared.Snapshot())

	parts := make([]seqList, 0, seq)
	for _, mine := range outs {
		parts = append(parts, mine...)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].seq < parts[j].seq })
	lists := make([]*storage.TempList, len(parts))
	for i, p := range parts {
		lists[i] = p.list
	}
	return mergeListsRecycle(desc, lists)
}
