package parallel

import (
	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/storage"
)

// SelectScan is the morsel-driven parallel counterpart of
// exec.SelectScan: workers pull chunks of the source (relation partitions
// or temp-list row ranges) from a shared cursor, filter them with pred
// into private temp lists, and the per-morsel lists are concatenated in
// morsel order — so the output row order is exactly the serial scan's.
// workers <= 1 delegates to the serial operator.
func SelectScan(src exec.Source, pred func(*storage.Tuple) bool, spec exec.SelectSpec, workers int) *storage.TempList {
	w := Degree(workers)
	if w <= 1 {
		return exec.SelectScan(src, pred, spec)
	}
	desc := exec.SingleDescriptor(spec.RelName, spec.Schema)
	chunks := AsChunked(src).Chunks(w * morselsPerWorker)
	if len(chunks) <= 1 {
		return exec.SelectScan(src, pred, spec)
	}
	results := make([]*storage.TempList, len(chunks))
	total := run(w, len(chunks), func(m int, ctr *meter.Counters) {
		local := storage.MustTempList(desc)
		chunks[m].Scan(func(t *storage.Tuple) bool {
			ctr.AddCompare(1)
			if pred(t) {
				local.Append(storage.Row{t})
			}
			return true
		})
		results[m] = local
	})
	spec.Meter.Add(total)
	return mergeLists(desc, results)
}
