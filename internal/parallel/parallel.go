// Package parallel is the partition-parallel execution layer over the
// serial operators of internal/exec. The paper's cost model (§3.1) counts
// comparisons and data movement because disk I/O is gone; on modern
// hardware the next bottleneck is a single core, so every operator here
// splits its input into independent partitions, runs the serial algorithm
// per partition on its own worker, and merges per-worker results — no
// shared mutable state, no locks on the hot path.
//
// The designs follow the multi-core literature the roadmap points at:
//
//   - Scans are morsel-driven: workers pull fixed-size chunks (relation
//     partitions or temp-list row ranges) from a shared atomic cursor, so
//     skew in one morsel never idles the other workers.
//   - The hash join uses a partitioned build (Jahangiri & Carey's robust
//     dynamic hybrid hash design point): the build side is hash-partitioned
//     on the join key, each worker builds a private chained-bucket table
//     for its partition, and probes route each outer tuple to exactly one
//     immutable table — no shared mutable buckets.
//   - The sort-merge join is MPSM-style (Albutiu, Kemper & Neumann): both
//     sides are range-partitioned on sampled splitters, then each worker
//     sorts and merge-joins its key range locally — there is no global
//     sort or merge barrier across workers.
//   - Duplicate-eliminating projection hash-partitions rows on their
//     projected key, dedups each partition privately, and restores the
//     serial first-occurrence order by a final index merge.
//
// Every operator takes an explicit worker count; a count of 1 delegates
// to the serial exec implementation, byte-for-byte preserving the paper's
// algorithms (and their §3.1 counters) for the reproduction experiments.
// Per-worker §3.1 counters are accumulated privately and folded through a
// meter.SharedCounters into the caller's meter, so parallel runs report
// total work the same way serial runs do.
package parallel

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Degree resolves a requested parallelism: n <= 0 means "use every
// core" (GOMAXPROCS); anything else is taken as given.
func Degree(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// activeQueries counts queries currently executing with parallel
// operators enabled. It only matters when the shared scheduler pool is
// disabled (the compat per-query-goroutine mode): there, N concurrent
// queries each spawning Degree(0)≈GOMAXPROCS workers oversubscribe the
// machine N×, so the resolved degree is divided by this count instead.
// With the pool enabled the pool itself bounds total workers and the
// clamp is unnecessary.
var activeQueries atomic.Int32

// EnterQuery registers one active query for the compat-mode degree
// clamp and returns its release. Callers pair the two around query
// execution; the count is only consulted by ClampDegree.
func EnterQuery() (release func()) {
	activeQueries.Add(1)
	return func() { activeQueries.Add(-1) }
}

// ClampDegree divides an already-resolved degree by the number of
// currently active queries (itself included), floored at one — the
// compat-mode fix for concurrent queries multiplying GOMAXPROCS. A
// single active query is unaffected.
func ClampDegree(n int) int {
	if active := int(activeQueries.Load()); active > 1 && n > 1 {
		n /= active
		if n < 1 {
			n = 1
		}
	}
	return n
}

// morselsPerWorker oversubscribes morsels so a slow morsel (skewed
// partition, cache-cold region) does not stall the whole scan: workers
// that finish early pull the remaining morsels.
const morselsPerWorker = 4

// scratch is per-worker scratch state: a private §3.1 counter block plus
// two tuple-batch blocks (an input block and a survivors block) recycled
// through scratchPool, so spinning up a worker allocates nothing on a
// warm pool. The batches stay worker-private for the worker's lifetime —
// morsel bodies slice them but never retain them.
type scratch struct {
	ctr  meter.Counters
	buf  storage.TupleBatch
	keep storage.TupleBatch
	// rows is the morsel body's rows-processed tally; run flushes it to
	// the query's live Progress after every morsel and zeroes it, so
	// progress is visible at morsel granularity without an atomic per row.
	rows int64
	// wrows accumulates the flushed rows across the morsels this scratch
	// served in one pooled run — the per-"worker" total the Progress
	// max-rows gauge folds, with the scratch standing in for the worker.
	wrows int64
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{buf: storage.GetBatch(), keep: storage.GetBatch()}
	},
}

// getScratch returns zeroed per-worker scratch from the pool.
func getScratch() *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.ctr.Reset()
	sc.rows = 0
	sc.wrows = 0
	return sc
}

// putScratch clears the scratch batches (so pooled scratch does not pin
// dead tuples) and recycles it.
func putScratch(sc *scratch) {
	for i := range sc.buf[:cap(sc.buf)] {
		sc.buf[:cap(sc.buf)][i] = nil
	}
	for i := range sc.keep[:cap(sc.keep)] {
		sc.keep[:cap(sc.keep)][i] = nil
	}
	sc.buf, sc.keep = sc.buf[:0], sc.keep[:0]
	scratchPool.Put(sc)
}

// run executes n independent morsels at degree w. With a pooled sq the
// morsels are submitted as one task set to the shared scheduler; without
// one (nil handle, or the pool disabled) it falls back to per-run worker
// goroutines pulling from a shared atomic cursor — the compat mode, and
// the mode the parallel package's own unit tests exercise. Either way
// each concurrent executor owns pooled private scratch — its
// meter.Counters for §3.1 operation counts plus reusable tuple batches —
// so per-worker setup does not allocate, and the counters are folded
// through a SharedCounters into the returned total. fn must not touch
// state shared between morsels and must not retain sc's batches past the
// morsel.
//
// pg, when non-nil, is the owning query's live Progress: workers raise
// its saturation gauges, flush sc.rows after every morsel, fold their
// row totals into the max-rows-per-worker gauge, and run under pprof
// labels (mmdb_query=<id>, mmdb_op=<op>) so CPU profiles attribute
// worker time to queries. A nil pg skips all of it — the labels, the
// gauges, and the context — so the disabled path stays allocation-free.
//
// Cancellation is observed at morsel boundaries on both paths: a
// cancelled sq stops the compat cursor loop, and the pool discards the
// set's unclaimed morsels.
func run(sq *sched.Query, pg *obs.Progress, op string, w, n int, fn func(morsel int, sc *scratch)) meter.Counters {
	if n == 0 {
		return meter.Counters{}
	}
	if w > n {
		w = n
	}
	if sq.Pooled() {
		return runPooled(sq, pg, op, w, n, fn)
	}
	var shared meter.SharedCounters
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			sc := getScratch()
			loop := func() {
				var wrows int64
				for {
					m := int(cursor.Add(1)) - 1
					if m >= n || sq.Cancelled() {
						break
					}
					fn(m, sc)
					if d := sc.rows; d != 0 {
						sc.rows = 0
						wrows += d
						pg.AddRows(d)
					}
				}
				if pg != nil {
					pg.WorkerDone(wrows)
				}
			}
			if pg != nil {
				pg.WorkerStart()
				pprof.Do(context.Background(),
					pprof.Labels("mmdb_query", pg.Label(), "mmdb_op", op),
					func(context.Context) { loop() })
			} else {
				loop()
			}
			shared.Add(sc.ctr)
			putScratch(sc)
		}()
	}
	wg.Wait()
	return shared.Snapshot()
}

// runPooled is run's shared-scheduler path: the n morsels become one
// task set with claim limit w. Scratch is associated per concurrent
// executor rather than per goroutine — a small free list capped at w,
// created lazily, stands in for the compat path's per-worker scratch —
// so counter folding, progress gauges, and warm-batch reuse all survive
// the move off private goroutines. Work stealing can push instantaneous
// concurrency slightly above w; the excess executor briefly blocks on
// the free list, which is safe (every holder returns its scratch at
// morsel end) and keeps the per-"worker" gauge semantics intact.
func runPooled(sq *sched.Query, pg *obs.Progress, op string, w, n int, fn func(morsel int, sc *scratch)) meter.Counters {
	var shared meter.SharedCounters
	var mu sync.Mutex
	scratches := make([]*scratch, 0, w)
	free := make(chan *scratch, w)
	var labels pprof.LabelSet
	if pg != nil {
		labels = pprof.Labels("mmdb_query", pg.Label(), "mmdb_op", op)
	}
	st := sq.Run(w, n, func(m int) {
		var sc *scratch
		select {
		case sc = <-free:
		default:
			mu.Lock()
			if len(scratches) < w {
				sc = getScratch()
				scratches = append(scratches, sc)
				mu.Unlock()
				pg.WorkerStart()
			} else {
				mu.Unlock()
				sc = <-free
			}
		}
		body := func() {
			fn(m, sc)
			if d := sc.rows; d != 0 {
				sc.rows = 0
				sc.wrows += d
				pg.AddRows(d)
			}
		}
		if pg != nil {
			pprof.Do(context.Background(), labels, func(context.Context) { body() })
		} else {
			body()
		}
		free <- sc
	})
	// Every executed morsel returned its scratch before the set
	// completed, so the free list holds exactly the scratches created.
	for range scratches {
		<-free
	}
	for _, sc := range scratches {
		pg.WorkerDone(sc.wrows)
		shared.Add(sc.ctr)
		putScratch(sc)
	}
	pg.AddSched(st.Steals, st.Wait)
	return shared.Snapshot()
}

// Chunked is a tuple source divisible into independently scannable
// chunks. Chunks(n) returns up to n sources that together cover the
// original exactly once, in source order.
type Chunked interface {
	exec.Source
	Chunks(n int) []exec.Source
}

// RelationSource adapts a relation into a Chunked source at partition
// granularity (§2.1's unit of recovery and locking doubles as the
// morsel). The caller must hold at least a shared lock on the relation.
type RelationSource struct{ Rel *storage.Relation }

// Len returns the live tuple count.
func (s RelationSource) Len() int { return s.Rel.Cardinality() }

// Scan visits every live tuple in partition order.
func (s RelationSource) Scan(fn func(*storage.Tuple) bool) { s.Rel.ScanPhysical(fn) }

// Chunks groups the relation's partitions into at most n contiguous runs
// of near-equal partition count.
func (s RelationSource) Chunks(n int) []exec.Source {
	parts := s.Rel.Partitions()
	if len(parts) == 0 {
		return nil
	}
	if n > len(parts) {
		n = len(parts)
	}
	out := make([]exec.Source, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := len(parts)*i/n, len(parts)*(i+1)/n
		out = append(out, partitionRun(parts[lo:hi]))
	}
	return out
}

// partitionRun is a contiguous run of relation partitions as a Source.
type partitionRun []*storage.Partition

// Len returns the live tuple count of the run.
func (r partitionRun) Len() int {
	n := 0
	for _, p := range r {
		n += p.Live()
	}
	return n
}

// Scan visits the run's live tuples in partition order.
func (r partitionRun) Scan(fn func(*storage.Tuple) bool) {
	for _, p := range r {
		if !p.Scan(fn) {
			return
		}
	}
}

// ListSource adapts one column of a temp list into a Chunked source —
// the pipeline where a selection result feeds a parallel join.
type ListSource struct {
	List   *storage.TempList
	Column int
}

// Len returns the row count.
func (s ListSource) Len() int { return s.List.Len() }

// Scan visits the column's tuples in row order.
func (s ListSource) Scan(fn func(*storage.Tuple) bool) {
	exec.ListColumn{List: s.List, Column: s.Column}.Scan(fn)
}

// Chunks splits the rows into at most n near-equal contiguous ranges.
func (s ListSource) Chunks(n int) []exec.Source {
	total := s.List.Len()
	if total == 0 {
		return nil
	}
	if n > total {
		n = total
	}
	out := make([]exec.Source, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := total*i/n, total*(i+1)/n
		out = append(out, listRange{list: s.List, col: s.Column, lo: lo, hi: hi})
	}
	return out
}

// listRange is rows [lo, hi) of one temp-list column.
type listRange struct {
	list   *storage.TempList
	col    int
	lo, hi int
}

func (r listRange) Len() int { return r.hi - r.lo }

func (r listRange) Scan(fn func(*storage.Tuple) bool) {
	for i := r.lo; i < r.hi; i++ {
		if !fn(r.list.Row(i)[r.col]) {
			return
		}
	}
}

// SliceSource is a materialized tuple slice as a Chunked source — the
// fallback for sources with no native partition structure.
type SliceSource []*storage.Tuple

// Len returns the slice length.
func (s SliceSource) Len() int { return len(s) }

// Scan visits the tuples in slice order.
func (s SliceSource) Scan(fn func(*storage.Tuple) bool) {
	for _, t := range s {
		if !fn(t) {
			return
		}
	}
}

// ScanBatches implements exec.BatchSource zero-copy: blocks are subslices
// of the materialized slice itself. fn must not retain or mutate a block.
func (s SliceSource) ScanBatches(buf storage.TupleBatch, fn func(storage.TupleBatch) bool) {
	rest := []*storage.Tuple(s)
	for len(rest) > storage.BatchSize {
		if !fn(rest[:storage.BatchSize:storage.BatchSize]) {
			return
		}
		rest = rest[storage.BatchSize:]
	}
	if len(rest) > 0 {
		fn(rest[:len(rest):len(rest)])
	}
}

// Chunks splits the slice into at most n near-equal contiguous ranges.
func (s SliceSource) Chunks(n int) []exec.Source {
	if len(s) == 0 {
		return nil
	}
	if n > len(s) {
		n = len(s)
	}
	out := make([]exec.Source, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := len(s)*i/n, len(s)*(i+1)/n
		out = append(out, s[lo:hi])
	}
	return out
}

// AsChunked returns src itself when it is already Chunked, and otherwise
// materializes it into a SliceSource (one extra pass — the same pass the
// serial hash and sort-merge joins already pay to build their structures).
func AsChunked(src exec.Source) Chunked {
	if c, ok := src.(Chunked); ok {
		return c
	}
	return SliceSource(exec.Tuples(src))
}

// mergeLists combines per-morsel partial lists in morsel order; it
// panics only on programmer error (mismatched descriptors).
func mergeLists(desc storage.Descriptor, parts []*storage.TempList) *storage.TempList {
	out, err := storage.MergeLists(desc, parts)
	if err != nil {
		panic(err)
	}
	return out
}

// mergeListsRecycle is mergeLists for parts the operator owns outright:
// each part's arena chunks go back to the storage chunk pool as soon as
// its rows are copied out, so a w-worker operator's transient lists stop
// costing w× the result's memory. Parts must have no outstanding views.
func mergeListsRecycle(desc storage.Descriptor, parts []*storage.TempList) *storage.TempList {
	out, err := storage.MergeListsRecycle(desc, parts)
	if err != nil {
		panic(err)
	}
	return out
}

// partOf routes a 64-bit key hash to one of n partitions. It uses the
// upper half of the hash so it stays decorrelated from the chained-bucket
// tables' slot choice (h mod nslots), which leans on the lower bits.
func partOf(h uint64, n int) int {
	return int((h >> 32) % uint64(n))
}
