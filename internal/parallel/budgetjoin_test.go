package parallel

import (
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/storage"
	"repro/internal/workload"
)

// budgetedSpec wires a fresh reservation on a manager of the given
// budget into a join spec over column 0 of both sides.
func budgetedSpec(r *mem.Reservation) exec.JoinSpec {
	return exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0, Mem: r}
}

// TestBudgetedJoinMatchesUnbudgeted: across budgets from generous to
// starved, the budgeted join's match multiset must be identical to the
// unbudgeted run — degradation may reorder rows, never change them —
// and all granted bytes must return to the manager.
func TestBudgetedJoinMatchesUnbudgeted(t *testing.T) {
	v1 := buildValues(t, 6000, 30, workload.Moderate, 103)
	v2 := buildValues(t, 6000, 30, workload.Moderate, 107)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", v1)
	r2 := buildRelation(t, ids, "r2", v2)
	base := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	ref, _ := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, base, []uint{3}, 4)
	want := joinResultSet(t, ref)

	for _, budget := range []int64{64 << 20, 1 << 20, 64 << 10, 4 << 10} {
		m := mem.NewManager(budget)
		r := m.Reserve()
		got, stats := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, budgetedSpec(r), []uint{3}, 4)
		sameResults(t, "budgeted", want, joinResultSet(t, got))
		if held := r.Held(); held != 0 {
			t.Fatalf("budget %d: join leaked %d granted bytes", budget, held)
		}
		r.Close()
		if s := m.Snapshot(); s.Granted != 0 {
			t.Fatalf("budget %d: manager still shows %d granted", budget, s.Granted)
		}
		if budget <= 4<<10 && stats.Repartitions == 0 && m.Snapshot().Forced == 0 {
			t.Fatalf("budget %d: starved join neither re-split nor forced (stats %+v)", budget, stats)
		}
	}
}

// TestBudgetedJoinResplitFires: a budget smaller than a single
// partition's table must trigger recursive repartitioning, and the
// result must still match the unbudgeted run exactly.
func TestBudgetedJoinResplitFires(t *testing.T) {
	// Unique keys: partitions are balanced, each ~2000 rows → 64 KiB
	// tables; a 16 KiB budget cannot hold one.
	v1 := buildValues(t, 8000, 0, workload.NearUniform, 109)
	v2 := buildValues(t, 8000, 0, workload.NearUniform, 113)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", v1)
	r2 := buildRelation(t, ids, "r2", v2)
	base := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	ref, _ := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, base, []uint{2}, 2)

	m := mem.NewManager(16 << 10)
	r := m.Reserve()
	defer r.Close()
	got, stats := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, budgetedSpec(r), []uint{2}, 2)
	sameResults(t, "resplit", joinResultSet(t, ref), joinResultSet(t, got))
	if stats.Repartitions == 0 {
		t.Fatalf("16KiB budget over 64KiB partitions did not re-split: %+v", stats)
	}
	if s := m.Snapshot(); s.Repartitions != int64(stats.Repartitions) {
		t.Fatalf("manager repartitions %d != stats %d", s.Repartitions, stats.Repartitions)
	}
}

// TestBudgetedJoinReversalFires: when the forecast build side's
// partitions dwarf the probe side's, the defense must flip roles —
// and emit rows in the original (outer, inner) orientation regardless.
func TestBudgetedJoinReversalFires(t *testing.T) {
	// Inner (forecast build) 20000 rows, outer only 500: every pair's
	// outer extent is smaller, so every built pair should reverse.
	v1 := buildValues(t, 500, 0, workload.NearUniform, 127)
	v2 := buildValues(t, 20000, 40, workload.Skewed, 131)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", v1)
	r2 := buildRelation(t, ids, "r2", v2)
	base := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	ref, _ := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, base, []uint{3}, 4)

	m := mem.NewManager(32 << 20)
	r := m.Reserve()
	defer r.Close()
	got, stats := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, budgetedSpec(r), []uint{3}, 4)
	sameResults(t, "reversal", joinResultSet(t, ref), joinResultSet(t, got))
	if stats.Reversed == 0 {
		t.Fatalf("tiny-outer join never reversed roles: %+v", stats)
	}
	if s := m.Snapshot(); s.Reversals != int64(stats.Reversed) {
		t.Fatalf("manager reversals %d != stats %d", s.Reversals, stats.Reversed)
	}
}

// TestBudgetedJoinAllEqualKeys: a partition of identical keys cannot be
// split by any number of extra bits. The recursive path must detect the
// lack of progress, force the grant (recorded), and still produce the
// full cross product.
func TestBudgetedJoinAllEqualKeys(t *testing.T) {
	n := 2000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = 7
	}
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", vals)
	r2 := buildRelation(t, ids, "r2", vals)

	m := mem.NewManager(8 << 10) // far below the 2000-row table
	r := m.Reserve()
	defer r.Close()
	res, stats := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, budgetedSpec(r), []uint{4}, 4)
	if res.Len() != n*n {
		t.Fatalf("all-equal budgeted join emitted %d rows, want %d", res.Len(), n*n)
	}
	if m.Snapshot().Forced == 0 {
		t.Fatal("unsplittable partition did not record a forced overcommit")
	}
	if r.Held() != 0 {
		t.Fatalf("leaked %d granted bytes", r.Held())
	}
	// The reversal check compares extents, both n here; no reversal.
	if stats.Reversed != 0 {
		t.Fatalf("equal extents reversed: %+v", stats)
	}
}

// TestBudgetedJoinNoDefense: NoDefense keeps grant accounting off the
// degradation paths — no reversals, no re-splits, forced overcommits
// for oversized tables — while results stay correct. This is the A/B
// baseline the skew bench measures the defenses against.
func TestBudgetedJoinNoDefense(t *testing.T) {
	v1 := buildValues(t, 6000, 0, workload.NearUniform, 137)
	v2 := buildValues(t, 6000, 0, workload.NearUniform, 139)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", v1)
	r2 := buildRelation(t, ids, "r2", v2)
	base := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	ref, _ := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, base, []uint{2}, 2)

	m := mem.NewManager(8 << 10)
	r := m.Reserve()
	defer r.Close()
	spec := budgetedSpec(r)
	spec.NoDefense = true
	got, stats := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, spec, []uint{2}, 2)
	sameResults(t, "nodefense", joinResultSet(t, ref), joinResultSet(t, got))
	if stats.Reversed != 0 || stats.Repartitions != 0 {
		t.Fatalf("NoDefense ran defenses: %+v", stats)
	}
	if m.Snapshot().Forced == 0 {
		t.Fatal("NoDefense under a starved budget should force grants")
	}
}

// TestBudgetedJoinConcurrentQueries: several budgeted joins race on one
// small manager (run under -race in CI). Every query must finish with
// the correct multiset and the manager must drain to zero.
func TestBudgetedJoinConcurrentQueries(t *testing.T) {
	v1 := buildValues(t, 4000, 20, workload.Moderate, 149)
	v2 := buildValues(t, 4000, 20, workload.Moderate, 151)
	ids := storage.NewIDGen()
	r1 := buildRelation(t, ids, "r1", v1)
	r2 := buildRelation(t, ids, "r2", v2)
	base := exec.JoinSpec{OuterName: "r1", InnerName: "r2", OuterField: 0, InnerField: 0}
	ref, _ := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, base, []uint{3}, 2)
	want := joinResultSet(t, ref)

	m := mem.NewManager(64 << 10)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for q := 0; q < 8; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := m.Reserve()
			defer r.Close()
			got, _ := RadixHashJoin(RelationSource{Rel: r1}, RelationSource{Rel: r2}, budgetedSpec(r), []uint{3}, 2)
			set := joinResultSet(t, got)
			if len(set) != len(want) {
				errs <- "concurrent budgeted join lost rows"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if s := m.Snapshot(); s.Granted != 0 || s.Waiting != 0 {
		t.Fatalf("manager not drained: %+v", s)
	}
}
