package parallel

import (
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/storage"
)

// opaqueSource hides any partition structure so SelectScan must take the
// channel-based batch pipeline (streamSelect) instead of chunking.
type opaqueSource struct{ tuples []*storage.Tuple }

func (s opaqueSource) Len() int { return len(s.tuples) }
func (s opaqueSource) Scan(fn func(*storage.Tuple) bool) {
	for _, t := range s.tuples {
		if !fn(t) {
			return
		}
	}
}

// TestPooledRecyclingUnderRace hammers the pooled batches and arena
// chunks from several concurrent queries — stream selects (pooled blocks
// through channels), partitioned hash joins, and projections — while each
// result is verified and released back to the pools. Run under -race this
// checks that recycled blocks are never handed to two owners at once and
// that cleared pool entries don't alias live results.
func TestPooledRecyclingUnderRace(t *testing.T) {
	n := 3*storage.BatchSize + 57
	ids := storage.NewIDGen()
	vals := buildValues(t, n, 50, 0.2, 42)
	rel := buildRelation(t, ids, "race_r", vals)
	inner := buildRelation(t, ids, "race_s", vals)
	tuples := exec.Tuples(RelationSource{Rel: rel})
	median := vals[len(vals)/2]
	pred := func(tp *storage.Tuple) bool { return tp.Field(0).Int() < median }

	selSpec := exec.SelectSpec{RelName: "race_r", Schema: rel.Schema()}
	wantSel := exec.SelectScan(RelationSource{Rel: rel}, pred, selSpec).Len()
	joinSpec := exec.JoinSpec{OuterName: "race_r", InnerName: "race_s",
		OuterField: 0, InnerField: 0, Discard: true}
	var wantJoin int
	ws := joinSpec
	ws.RowsOut = &wantJoin
	exec.HashJoin(SliceSource(tuples), RelationSource{Rel: inner}, ws)

	const goroutines = 4
	const rounds = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stream select: opaque source, pooled blocks through a channel.
				out := SelectScan(opaqueSource{tuples: tuples}, pred, selSpec, 4)
				if out.Len() != wantSel {
					t.Errorf("g%d r%d: stream select %d rows, want %d", g, r, out.Len(), wantSel)
					return
				}
				// Chunked select: morsels over relation partitions.
				out2 := SelectScan(RelationSource{Rel: rel}, pred, selSpec, 4)
				if out2.Len() != wantSel {
					t.Errorf("g%d r%d: chunked select %d rows, want %d", g, r, out2.Len(), wantSel)
					return
				}
				// Partitioned hash join with per-worker scratch.
				var got int
				js := joinSpec
				js.RowsOut = &got
				HashJoin(SliceSource(tuples), RelationSource{Rel: inner}, js, 4)
				if got != wantJoin {
					t.Errorf("g%d r%d: join %d rows, want %d", g, r, got, wantJoin)
					return
				}
				// Release recycles the arena chunks back to the shared pools
				// while other goroutines are drawing from them.
				out.Release()
				out2.Release()
			}
		}(g)
	}
	wg.Wait()
}
