package parallel

import (
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/storage"
)

// RunPipeline executes a multi-join pipeline over the driver source:
// serially for one worker (or under a Limit, whose early exit does not
// decompose), morsel-parallel otherwise. The build-side hash tables in
// spec.Stages are immutable by the time this runs, so workers share
// them; each worker gets a pipeline clone with private buffers and a
// private partial list, and the partials merge in morsel order so the
// output row order is deterministic for a given chunking.
//
// Returns the result list (nil when spec.Discard), per-stage emitted
// row counts (the actuals for the planner's forecast audit), and the
// total emitted rows. §3.1 counters fold into spec.Meter on all paths.
func RunPipeline(driver Chunked, spec exec.PipelineSpec, desc storage.Descriptor, hint, workers int) (*storage.TempList, []int64, int) {
	stageRows := make([]int64, len(spec.Stages))
	if workers <= 1 || spec.Limit > 0 {
		var out *storage.TempList
		if !spec.Discard {
			if hint > 0 {
				out = storage.MustTempListHint(desc, hint)
			} else {
				out = storage.MustTempList(desc)
			}
		}
		spec.Out = out
		p := exec.NewPipeline(spec)
		defer p.Release()
		buf := storage.GetBatch()
		exec.ScanBatches(driver, buf, func(block storage.TupleBatch) bool {
			return p.Feed(block)
		})
		p.Flush()
		storage.PutBatch(buf)
		for k := range stageRows {
			stageRows[k] = int64(p.StageRows(k))
		}
		return out, stageRows, p.Emitted()
	}

	chunks := driver.Chunks(workers * morselsPerWorker)
	if len(chunks) == 0 {
		if spec.Discard {
			return nil, stageRows, 0
		}
		return storage.MustTempList(desc), stageRows, 0
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}

	// A fixed free list of clones, one per worker: at most `workers`
	// morsels run at once, so a receive never blocks. Clones share the
	// stage tables; Prog stays nil on them (the morsel runner reports
	// progress) and the meter is rearmed per morsel to the worker's
	// private counter block.
	free := make(chan *exec.Pipeline, workers)
	for i := 0; i < workers; i++ {
		free <- exec.NewPipeline(cloneSpec(spec))
	}

	parts := make([]*storage.TempList, len(chunks))
	var emitted atomic.Int64
	meterTotal := run(spec.Sched, spec.Prog, "multijoin", workers, len(chunks), func(i int, sc *scratch) {
		p := <-free
		var part *storage.TempList
		if !spec.Discard {
			part = storage.MustTempList(desc)
		}
		p.Rearm(part, &sc.ctr)
		exec.ScanBatches(chunks[i], sc.buf, func(block storage.TupleBatch) bool {
			sc.rows += int64(len(block))
			return p.Feed(block)
		})
		p.Flush()
		parts[i] = part
		for k := range stageRows {
			atomic.AddInt64(&stageRows[k], int64(p.StageRows(k)))
		}
		emitted.Add(int64(p.Emitted()))
		free <- p
	})
	for i := 0; i < workers; i++ {
		(<-free).Release()
	}
	spec.Meter.Add(meterTotal)

	if spec.Discard {
		return nil, stageRows, int(emitted.Load())
	}
	live := parts[:0]
	for _, pt := range parts {
		if pt != nil {
			live = append(live, pt)
		}
	}
	out := mergeListsRecycle(desc, live)
	return out, stageRows, out.Len()
}

// cloneSpec strips the per-run fields a worker clone must own privately.
func cloneSpec(spec exec.PipelineSpec) exec.PipelineSpec {
	spec.Out = nil
	spec.Meter = nil
	spec.Prog = nil
	return spec
}
