package parallel

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/storage"
)

// aggList builds a (grp int, val int) list; ~10% NULL values.
func aggList(t testing.TB, n int, groups int, seed int64) *storage.TempList {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fields := []storage.FieldDef{
		{Name: "grp", Type: storage.Int},
		{Name: "val", Type: storage.Int},
	}
	rel, err := storage.NewRelation("a", storage.MustSchema(fields...), storage.Config{}, storage.NewIDGen())
	if err != nil {
		t.Fatal(err)
	}
	cols := []storage.ColRef{
		{Source: 0, Field: 0, Name: "grp"},
		{Source: 0, Field: 1, Name: "val"},
	}
	list := storage.MustTempListHint(storage.Descriptor{Sources: []string{"a"}, Cols: cols}, n)
	for i := 0; i < n; i++ {
		val := storage.NullValue
		if rng.Intn(10) != 0 {
			val = storage.IntValue(int64(rng.Intn(10000) - 5000))
		}
		tp, err := rel.Insert([]storage.Value{storage.IntValue(int64(rng.Intn(groups))), val})
		if err != nil {
			t.Fatal(err)
		}
		list.AppendOne(tp)
	}
	return list
}

func canonicalAgg(list *storage.TempList, specs []agg.Spec, res agg.Result) map[int64][]string {
	out := make(map[int64][]string, res.Groups())
	for g := 0; g < res.Groups(); g++ {
		finals := make([]string, len(specs))
		for s := range specs {
			finals[s] = fmt.Sprint(agg.Final(specs[s].Kind, res.Cells[g*len(specs)+s]))
		}
		out[list.Value(int(res.Reps[g]), 0).Int()] = finals
	}
	return out
}

// TestParallelHashAggMatchesSerial: the partial-aggregate + barrier-merge
// path must produce the identical group → finals mapping as the serial
// grouper, at every worker count.
func TestParallelHashAggMatchesSerial(t *testing.T) {
	specs := []agg.Spec{
		{Kind: agg.Count, Col: -1, Name: "COUNT(*)"},
		{Kind: agg.Count, Col: 1, Name: "COUNT(val)"},
		{Kind: agg.Sum, Col: 1, Name: "SUM(val)"},
		{Kind: agg.Min, Col: 1, Name: "MIN(val)"},
		{Kind: agg.Max, Col: 1, Name: "MAX(val)"},
		{Kind: agg.Avg, Col: 1, Name: "AVG(val)"},
	}
	list := aggList(t, 20000, 300, 5)
	gcols := []int{0}
	var sm meter.Counters
	sg := agg.Get()
	want := canonicalAgg(list, specs, sg.Run(list, gcols, specs, nil, &sm))
	agg.Put(sg)
	for _, w := range []int{1, 2, 4, 8} {
		var pm meter.Counters
		pg := agg.Get()
		got := canonicalAgg(list, specs, HashAgg(nil, nil, pg, list, gcols, specs, nil, w, &pm))
		agg.Put(pg)
		if len(got) != len(want) {
			t.Fatalf("w=%d: %d groups, want %d", w, len(got), len(want))
		}
		for k, wv := range want {
			if fmt.Sprint(got[k]) != fmt.Sprint(wv) {
				t.Fatalf("w=%d group %d: %v, want %v", w, k, got[k], wv)
			}
		}
		if pm.Groups != int64(len(want)) {
			t.Fatalf("w=%d: Groups=%d, want %d (workers' local tallies must not double-count)", w, pm.Groups, len(want))
		}
	}
}

// TestParallelTopKMatchesSerial: per-worker heaps + final merge equal the
// serial bounded heap exactly (the ordinal tie-break makes order fully
// deterministic).
func TestParallelTopKMatchesSerial(t *testing.T) {
	list := aggList(t, 12000, 500, 9)
	keys := []exec.OrderKey{{Col: 1, Desc: true}, {Col: 0}}
	for _, k := range []int{1, 10, 100} {
		var sm meter.Counters
		want := exec.TopKRows(list, keys, k, &sm)
		for _, w := range []int{1, 2, 4, 8} {
			var pm meter.Counters
			got := TopK(nil, nil, list, keys, k, w, &pm)
			if len(got) != len(want) {
				t.Fatalf("w=%d k=%d: %d rows, want %d", w, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("w=%d k=%d row %d: %d, want %d", w, k, i, got[i], want[i])
				}
			}
		}
	}
}
