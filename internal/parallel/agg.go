package parallel

import (
	"repro/internal/agg"
	"repro/internal/exec"
	"repro/internal/meter"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
)

// Parallel grouped aggregation: partial-aggregate, then merge. Every
// aggregate the engine supports (COUNT/SUM/MIN/MAX/AVG) is decomposable,
// so each worker folds its contiguous row chunk into a private flat
// agg table — no shared mutable state, no locks — and the partials merge
// through one table at the barrier (agg.Grouper.MergeInto). The merge
// touches one entry per (worker, group), so for G groups and W workers
// it costs O(W·G) — independent of the input cardinality the workers
// just split.

// HashAgg aggregates list grouped by groupCols on w workers. w <= 1 (or
// a small input) delegates to the serial grouper, which applies the
// radix-partitioned plan in bits; the parallel path uses per-worker flat
// tables (each worker's chunk is 1/w of the input, so its table is
// proportionally smaller — the same cache effect the radix plan buys
// serially). The result aliases g's scratch, exactly like g.Run.
func HashAgg(sq *sched.Query, pg *obs.Progress, g *agg.Grouper, list *storage.TempList, groupCols []int, specs []agg.Spec, bits []uint, w int, m *meter.Counters) agg.Result {
	n := list.Len()
	if w <= 1 || n == 0 {
		return g.Run(list, groupCols, specs, bits, m)
	}
	partials := make([]agg.Result, w)
	workers := make([]*agg.Grouper, w)
	folded := run(sq, pg, "agg", w, w, func(chunk int, sc *scratch) {
		lo, hi := n*chunk/w, n*(chunk+1)/w
		wg := agg.Get()
		workers[chunk] = wg
		partials[chunk] = wg.RunRange(list, lo, hi, groupCols, specs, &sc.ctr)
		sc.rows += int64(hi - lo)
	})
	// Barrier: all partials complete. Fold worker counters, then merge
	// the per-worker group tables into the caller's grouper. The serial
	// run counts Groups once per distinct group; here each worker counted
	// its local groups, so only the merge's Groups tally stands.
	folded.Groups = 0
	m.Add(folded)
	res := g.MergeInto(list, groupCols, specs, partials, m)
	for _, wg := range workers {
		agg.Put(wg)
	}
	return res
}

// TopK returns the first k row ordinals of list in ORDER BY order using
// w workers: each worker streams its contiguous chunk through a private
// bounded heap, and the surviving ≤ w×k candidates merge through one
// final heap. w <= 1 delegates to the serial operator; the output is
// identical (the ordinal tie-break makes the order deterministic) either
// way.
func TopK(sq *sched.Query, pg *obs.Progress, list *storage.TempList, keys []exec.OrderKey, k, w int, m *meter.Counters) []int32 {
	n := list.Len()
	if w <= 1 || n == 0 || k <= 0 {
		return exec.TopKRows(list, keys, k, m)
	}
	cands := make([][]int32, w)
	folded := run(sq, pg, "topk", w, w, func(chunk int, sc *scratch) {
		lo, hi := n*chunk/w, n*(chunk+1)/w
		cands[chunk] = exec.TopKRowsRange(list, keys, k, lo, hi, &sc.ctr)
		sc.rows += int64(hi - lo)
	})
	m.Add(folded)
	return exec.TopKMergeRows(list, keys, k, cands, m)
}
