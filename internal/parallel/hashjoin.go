package parallel

import (
	"repro/internal/exec"
	"repro/internal/index/chainhash"
	"repro/internal/storage"
	"repro/internal/tupleindex"
)

// HashJoin is the partitioned-build parallel hash join (after Jahangiri &
// Carey's partitioned design point): the inner (build) side is
// hash-partitioned on the join key across the workers, each worker builds
// a private chained-bucket table for exactly one partition — no shared
// mutable buckets anywhere — and the probe phase routes each outer tuple
// to the single immutable table its hash selects. Per-morsel result lists
// are concatenated in morsel order, so the output row order equals the
// serial hash join's outer-scan order (the order of matches within one
// probe may differ when the build side has duplicates).
//
// workers <= 1, a Limit (inherently sequential early exit), or an input
// too small to chunk all delegate to the serial exec.HashJoin.
func HashJoin(outer, inner exec.Source, spec exec.JoinSpec, workers int) *storage.TempList {
	w := Degree(workers)
	if w <= 1 || spec.Limit > 0 {
		return exec.HashJoin(outer, inner, spec)
	}
	innerC, outerC := AsChunked(inner), AsChunked(outer)
	if innerC.Len() == 0 || outerC.Len() == 0 {
		return exec.HashJoin(outerC, innerC, spec)
	}

	ns := spec.NodeSize
	if ns <= 0 {
		ns = chainhash.DefaultNodeSize
	}
	nparts := w
	fi, fo := spec.InnerField, spec.OuterField

	// Phase 1 — partition the build side: each worker hashes its chunk's
	// join keys and scatters tuple pointers into private per-partition
	// buckets. buckets[chunk][part] is written by exactly one worker.
	innerChunks := innerC.Chunks(w)
	buckets := make([][][]*storage.Tuple, len(innerChunks))
	spec.Meter.Add(run(spec.Sched, spec.Prog, "hash join", w, len(innerChunks), func(m int, sc *scratch) {
		local := make([][]*storage.Tuple, nparts)
		exec.ScanBatches(innerChunks[m], sc.buf, func(block storage.TupleBatch) bool {
			sc.ctr.AddHash(int64(len(block)))
			sc.ctr.AddBatch(1)
			sc.rows += int64(len(block))
			for _, t := range block {
				h := storage.Hash(tupleindex.KeyOf(t, fi))
				p := partOf(h, nparts)
				local[p] = append(local[p], t)
			}
			return true
		})
		buckets[m] = local
	}))

	// Phase 2 — build: worker p owns partition p outright and builds its
	// chained-bucket table, sized for exactly the partition's cardinality
	// (the §3.3.4 fixed-k sizing, same as the serial join). The meter is
	// detached afterwards: the tables are shared read-only during probing
	// and a live private counter would be a data race.
	tables := make([]*chainhash.Table[*storage.Tuple], nparts)
	spec.Meter.Add(run(spec.Sched, spec.Prog, "hash join", w, nparts, func(p int, sc *scratch) {
		count := 0
		for m := range buckets {
			count += len(buckets[m][p])
		}
		sc.rows += int64(count)
		tbl := tupleindex.NewChainHash(tupleindex.Options{
			Field:    fi,
			NodeSize: ns,
			Capacity: maxInt(count, 1),
			Meter:    &sc.ctr,
		})
		for m := range buckets {
			for _, t := range buckets[m][p] {
				tbl.Insert(t)
			}
		}
		tbl.SetMeter(nil)
		tables[p] = tbl
	}))

	// Phase 3 — probe: morsel-driven over the outer; every worker probes
	// the immutable partition tables and emits into a private list.
	desc := exec.PairDescriptor(spec.OuterName, spec.InnerName, spec.Cols)
	outerChunks := outerC.Chunks(w * morselsPerWorker)
	results := make([]*storage.TempList, len(outerChunks))
	counts := make([]int, len(outerChunks))
	spec.Meter.Add(run(spec.Sched, spec.Prog, "hash join", w, len(outerChunks), func(m int, sc *scratch) {
		local := storage.MustTempList(desc)
		n := 0
		matches := sc.keep
		// One match closure per morsel, capturing the mutable probe key —
		// a per-tuple closure literal would heap-allocate on every probe.
		var ko storage.Value
		match := func(i *storage.Tuple) bool {
			sc.ctr.AddCompare(1)
			return storage.Equal(tupleindex.KeyOf(i, fi), ko)
		}
		exec.ScanBatches(outerChunks[m], sc.buf, func(block storage.TupleBatch) bool {
			sc.ctr.AddBatch(1)
			sc.rows += int64(len(block))
			for _, o := range block {
				ko = tupleindex.KeyOf(o, fo)
				sc.ctr.AddHash(1)
				h := storage.Hash(ko)
				matches = tables[partOf(h, nparts)].SearchKeyAppend(h, match, matches[:0])
				n += len(matches)
				if !spec.Discard {
					for _, i := range matches {
						local.AppendPair(o, i)
					}
				}
			}
			return true
		})
		sc.keep = matches
		results[m] = local
		counts[m] = n
	}))

	if spec.RowsOut != nil {
		total := 0
		for _, n := range counts {
			total += n
		}
		*spec.RowsOut = total
	}
	return mergeListsRecycle(desc, results)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
