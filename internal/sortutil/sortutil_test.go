package sortutil

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/meter"
)

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func TestSortEmptyAndSingle(t *testing.T) {
	var empty []int
	Sort(empty, intCmp)
	one := []int{42}
	Sort(one, intCmp)
	if one[0] != 42 {
		t.Fatalf("single-element sort corrupted slice: %v", one)
	}
}

func TestSortSmallFixed(t *testing.T) {
	cases := [][]int{
		{2, 1},
		{3, 1, 2},
		{1, 2, 3},
		{3, 2, 1},
		{5, 5, 5, 5},
		{9, 1, 8, 2, 7, 3, 6, 4, 5},
		{1, 1, 2, 2, 0, 0, 3, 3},
	}
	for _, c := range cases {
		in := append([]int(nil), c...)
		want := append([]int(nil), c...)
		sort.Ints(want)
		Sort(in, intCmp)
		if !equal(in, want) {
			t.Errorf("Sort(%v) = %v, want %v", c, in, want)
		}
	}
}

func TestSortMatchesStdlibRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(200) // plenty of duplicates
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		Sort(in, intCmp)
		if !equal(in, want) {
			t.Fatalf("trial %d: mismatch for n=%d", trial, n)
		}
	}
}

func TestSortPropertySortedPermutation(t *testing.T) {
	f := func(in []int16) bool {
		s := make([]int, len(in))
		counts := map[int]int{}
		for i, v := range in {
			s[i] = int(v)
			counts[int(v)]++
		}
		Sort(s, intCmp)
		if !IsSorted(s, intCmp) {
			return false
		}
		for _, v := range s {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortCutoffVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := make([]int, 5000)
	for i := range in {
		in[i] = rng.Intn(1000)
	}
	want := append([]int(nil), in...)
	sort.Ints(want)
	for _, cutoff := range []int{-5, 0, 1, 2, 5, 10, 25, 100, 10000} {
		s := append([]int(nil), in...)
		SortCutoff(s, intCmp, cutoff, nil)
		if !equal(s, want) {
			t.Errorf("cutoff %d: sort incorrect", cutoff)
		}
	}
}

func TestSortAdversarialShapes(t *testing.T) {
	const n = 4096
	shapes := map[string]func(i int) int{
		"ascending":  func(i int) int { return i },
		"descending": func(i int) int { return n - i },
		"constant":   func(i int) int { return 7 },
		"sawtooth":   func(i int) int { return i % 17 },
		"organpipe": func(i int) int {
			if i < n/2 {
				return i
			}
			return n - i
		},
	}
	for name, gen := range shapes {
		s := make([]int, n)
		for i := range s {
			s[i] = gen(i)
		}
		want := append([]int(nil), s...)
		sort.Ints(want)
		var m meter.Counters
		SortMetered(s, intCmp, &m)
		if !equal(s, want) {
			t.Errorf("%s: incorrect sort", name)
		}
		// Median-of-three quicksort should stay well below quadratic on
		// these classic adversarial shapes: n^2 comparisons would be ~16M.
		if m.Comparisons > 40*int64(n)*13 { // generous n log n bound
			t.Errorf("%s: %d comparisons looks quadratic", name, m.Comparisons)
		}
	}
}

func TestSortStabilityNotRequiredButDeterministic(t *testing.T) {
	a := []int{3, 1, 2}
	b := []int{3, 1, 2}
	Sort(a, intCmp)
	Sort(b, intCmp)
	if !equal(a, b) {
		t.Fatal("same input sorted differently")
	}
}

func TestSearchFindsFirstNotLess(t *testing.T) {
	s := []int{1, 3, 3, 3, 5, 9}
	cases := []struct {
		key  int
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 4}, {5, 4}, {6, 5}, {9, 5}, {10, 6},
	}
	for _, c := range cases {
		got := Search(s, func(e int) int { return intCmp(e, c.key) }, nil)
		if got != c.want {
			t.Errorf("Search(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestSearchLastFindsLastNotGreater(t *testing.T) {
	s := []int{1, 3, 3, 3, 5, 9}
	cases := []struct {
		key  int
		want int
	}{
		{0, -1}, {1, 0}, {2, 0}, {3, 3}, {4, 3}, {5, 4}, {8, 4}, {9, 5}, {10, 5},
	}
	for _, c := range cases {
		got := SearchLast(s, func(e int) int { return intCmp(e, c.key) }, nil)
		if got != c.want {
			t.Errorf("SearchLast(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestSearchEmpty(t *testing.T) {
	if got := Search(nil, func(e int) int { return 0 }, nil); got != 0 {
		t.Fatalf("Search(empty) = %d", got)
	}
	if got := SearchLast(nil, func(e int) int { return 0 }, nil); got != -1 {
		t.Fatalf("SearchLast(empty) = %d", got)
	}
}

func TestSearchPropertyAgreesWithSortSearch(t *testing.T) {
	f := func(in []uint8, key uint8) bool {
		s := make([]int, len(in))
		for i, v := range in {
			s[i] = int(v)
		}
		sort.Ints(s)
		k := int(key)
		got := Search(s, func(e int) int { return intCmp(e, k) }, nil)
		want := sort.SearchInts(s, k)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterCountsSomething(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := make([]int, 1000)
	for i := range s {
		s[i] = rng.Int()
	}
	var m meter.Counters
	SortMetered(s, intCmp, &m)
	if m.Comparisons == 0 {
		t.Fatal("metered sort recorded no comparisons")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{1, 2, 2, 3}, intCmp) {
		t.Error("sorted slice reported unsorted")
	}
	if IsSorted([]int{2, 1}, intCmp) {
		t.Error("unsorted slice reported sorted")
	}
	if !IsSorted([]int{}, intCmp) || !IsSorted([]int{5}, intCmp) {
		t.Error("trivial slices must be sorted")
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkSortRandom10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]int, 10000)
	for i := range base {
		base[i] = rng.Int()
	}
	s := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(s, base)
		Sort(s, intCmp)
	}
}
