// Package sortutil implements the sorting substrate used by the Sort Merge
// join and the Sort Scan duplicate-elimination methods.
//
// The paper sorted its array indices "using quicksort with an insertion
// sort for subarrays of ten elements or less" and notes (footnote 5) that
// 10 was measured to be the optimal cutoff. Sort is that algorithm; the
// cutoff is a parameter so the ablation benchmark can sweep it.
package sortutil

import "repro/internal/meter"

// DefaultCutoff is the quicksort-to-insertion-sort switch point the paper
// measured to be optimal.
const DefaultCutoff = 10

// Sort sorts s in place with quicksort, switching to insertion sort for
// subarrays of DefaultCutoff elements or fewer. cmp follows the usual
// negative/zero/positive contract.
func Sort[E any](s []E, cmp func(a, b E) int) {
	SortCutoff(s, cmp, DefaultCutoff, nil)
}

// SortMetered is Sort with operation counting.
func SortMetered[E any](s []E, cmp func(a, b E) int, m *meter.Counters) {
	SortCutoff(s, cmp, DefaultCutoff, m)
}

// SortCutoff sorts s in place, switching from quicksort to insertion sort
// for subarrays of cutoff elements or fewer. A cutoff below 1 is treated
// as 1 (pure quicksort down to single elements). m may be nil.
func SortCutoff[E any](s []E, cmp func(a, b E) int, cutoff int, m *meter.Counters) {
	if cutoff < 1 {
		cutoff = 1
	}
	quicksort(s, cmp, cutoff, m)
}

func quicksort[E any](s []E, cmp func(a, b E) int, cutoff int, m *meter.Counters) {
	for len(s) > cutoff && len(s) > 1 {
		j := partition(s, cmp, m)
		// Recurse into the smaller half to bound stack depth at O(log n).
		if j+1 < len(s)-j-1 {
			quicksort(s[:j+1], cmp, cutoff, m)
			s = s[j+1:]
		} else {
			quicksort(s[j+1:], cmp, cutoff, m)
			s = s[:j+1]
		}
	}
	insertionSort(s, cmp, m)
}

// partition uses Hoare's scheme with a median-of-three pivot. Hoare
// partitioning splits runs of equal keys evenly between the halves, which
// keeps quicksort O(n log n) on the high-duplicate inputs the projection
// workloads produce (Lomuto degrades quadratically there). Returns j such
// that s[:j+1] <= pivot <= s[j+1:], with 0 <= j < len(s)-1.
func partition[E any](s []E, cmp func(a, b E) int, m *meter.Counters) int {
	hi := len(s) - 1
	mid := hi / 2
	// Order s[0], s[mid], s[hi]; the median becomes the pivot at s[0].
	m.AddCompare(3)
	if cmp(s[mid], s[0]) < 0 {
		s[mid], s[0] = s[0], s[mid]
		m.AddMove(2)
	}
	if cmp(s[hi], s[0]) < 0 {
		s[hi], s[0] = s[0], s[hi]
		m.AddMove(2)
	}
	if cmp(s[mid], s[hi]) < 0 {
		// Median of the three is s[mid]; move it to the pivot slot.
		s[0], s[mid] = s[mid], s[0]
		m.AddMove(2)
	} else {
		s[0], s[hi] = s[hi], s[0]
		m.AddMove(2)
	}
	pivot := s[0]
	i, j := -1, len(s)
	for {
		for {
			i++
			m.AddCompare(1)
			if cmp(s[i], pivot) >= 0 {
				break
			}
		}
		for {
			j--
			m.AddCompare(1)
			if cmp(s[j], pivot) <= 0 {
				break
			}
		}
		if i >= j {
			return j
		}
		s[i], s[j] = s[j], s[i]
		m.AddMove(2)
	}
}

func insertionSort[E any](s []E, cmp func(a, b E) int, m *meter.Counters) {
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i - 1
		for j >= 0 {
			m.AddCompare(1)
			if cmp(s[j], e) <= 0 {
				break
			}
			s[j+1] = s[j]
			m.AddMove(1)
			j--
		}
		s[j+1] = e
		m.AddMove(1)
	}
}

// IsSorted reports whether s is in nondecreasing order under cmp.
func IsSorted[E any](s []E, cmp func(a, b E) int) bool {
	for i := 1; i < len(s); i++ {
		if cmp(s[i-1], s[i]) > 0 {
			return false
		}
	}
	return true
}

// Search returns the smallest index i in [0, len(s)] such that
// pos(s[i]) <= 0, i.e. the first element not less than the key encoded in
// pos, using binary search. pos returns <0 when the probed element is less
// than the key, 0 on equal, >0 when greater — the mirror of a cmp(key, e)
// call partially applied with the key. Returns len(s) if every element is
// less than the key.
func Search[E any](s []E, pos func(e E) int, m *meter.Counters) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m.AddCompare(1)
		if pos(s[mid]) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SearchLast returns the largest index i in [-1, len(s)-1] such that
// pos(s[i]) <= 0 under the same pos contract as Search; that is, the last
// element not greater than the key. Returns -1 if every element exceeds
// the key.
func SearchLast[E any](s []E, pos func(e E) int, m *meter.Counters) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m.AddCompare(1)
		if pos(s[mid]) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}
