package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	col, err := Build(Spec{Cardinality: 10000, DuplicatePct: 50, Sigma: NearUniform}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Values) != 10000 {
		t.Fatalf("values = %d", len(col.Values))
	}
	if len(col.Distinct) != 5000 {
		t.Fatalf("distinct = %d, want 5000 at 50%% duplicates", len(col.Distinct))
	}
	// Every value in Values comes from Distinct, and every distinct value
	// occurs at least once.
	set := map[int64]int{}
	for _, v := range col.Distinct {
		set[v] = 0
	}
	for _, v := range col.Values {
		if _, ok := set[v]; !ok {
			t.Fatal("value outside the distinct pool")
		}
		set[v]++
	}
	for v, c := range set {
		if c == 0 {
			t.Fatalf("distinct value %d never used", v)
		}
	}
}

func TestBuildZeroDuplicatesIsAllUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	col, err := Build(Spec{Cardinality: 1000, DuplicatePct: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Distinct) != 1000 {
		t.Fatalf("distinct = %d", len(col.Distinct))
	}
	seen := map[int64]bool{}
	for _, v := range col.Values {
		if seen[v] {
			t.Fatal("duplicate found in a zero-duplicates column")
		}
		seen[v] = true
	}
}

func TestBuildHundredPercentDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	col, err := Build(Spec{Cardinality: 500, DuplicatePct: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Distinct) != 1 {
		t.Fatalf("distinct = %d, want 1", len(col.Distinct))
	}
	for _, v := range col.Values {
		if v != col.Distinct[0] {
			t.Fatal("stray value")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Build(Spec{Cardinality: 0}, rng); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := Build(Spec{Cardinality: 10, DuplicatePct: 150}, rng); err == nil {
		t.Error("duplicate pct > 100 accepted")
	}
	if _, err := BuildDerived(Spec{Cardinality: 10}, Column{}, -1, rng); err == nil {
		t.Error("negative selectivity accepted")
	}
}

func TestGraph3DistributionShapes(t *testing.T) {
	// Reproduce Graph 3's qualitative shapes with 100 unique values.
	rng := rand.New(rand.NewSource(5))
	top10 := func(sigma float64) float64 {
		counts := Occurrences(100, 20000, sigma, rng)
		cdf := DuplicateCDF(counts, 10)
		return cdf[0].TuplePct // tuples covered by the top 10% of values
	}
	skew, mod, uni := top10(Skewed), top10(Moderate), top10(NearUniform)
	if skew < 55 {
		t.Errorf("σ=0.1: top 10%% of values cover %.1f%% of tuples; Graph 3 shows a steep curve", skew)
	}
	if uni > 35 {
		t.Errorf("σ=0.8: top 10%% of values cover %.1f%% of tuples; Graph 3 is near-uniform", uni)
	}
	if !(skew > mod && mod > uni) {
		t.Errorf("skew ordering violated: %.1f, %.1f, %.1f", skew, mod, uni)
	}
}

func TestOccurrencesInvariants(t *testing.T) {
	f := func(uSeed, totalSeed uint16, sigmaSeed uint8) bool {
		u := 1 + int(uSeed)%500
		total := u + int(totalSeed)%2000
		sigma := 0.05 + float64(sigmaSeed)/255.0
		rng := rand.New(rand.NewSource(int64(uSeed)*7 + int64(totalSeed)))
		counts := Occurrences(u, total, sigma, rng)
		if len(counts) != u {
			return false
		}
		sum := 0
		for _, c := range counts {
			if c < 1 {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedSemijoinSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base, err := Build(Spec{Cardinality: 30000, DuplicatePct: 50, Sigma: NearUniform}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []float64{0, 25, 50, 75, 100} {
		col, err := BuildDerived(Spec{Cardinality: 30000, DuplicatePct: 50, Sigma: NearUniform}, base, want, rng)
		if err != nil {
			t.Fatal(err)
		}
		got := SemijoinSelectivity(col, base)
		// Near-uniform duplicates: tuple-level selectivity tracks the
		// value-level parameter within a few points.
		if got < want-6 || got > want+6 {
			t.Errorf("semijoin %v%%: measured %.1f%%", want, got)
		}
		// Fresh values must not collide with base values.
		if want == 0 && got != 0 {
			t.Errorf("0%% selectivity produced %.1f%% matches", got)
		}
	}
}

func TestDerivedUsesBaseValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, _ := Build(Spec{Cardinality: 100, DuplicatePct: 0}, rng)
	col, err := BuildDerived(Spec{Cardinality: 100, DuplicatePct: 0}, base, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	inBase := map[int64]bool{}
	for _, v := range base.Distinct {
		inBase[v] = true
	}
	for _, v := range col.Values {
		if !inBase[v] {
			t.Fatal("100% selectivity produced a value outside the base")
		}
	}
}

func TestUniquePoolExcludes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	first := UniquePool(1000, rng, nil)
	exclude := map[int64]bool{}
	for _, v := range first {
		exclude[v] = true
	}
	second := UniquePool(1000, rng, exclude)
	for _, v := range second {
		if exclude[v] {
			t.Fatal("excluded value reappeared")
		}
	}
}

func TestDuplicateCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := Occurrences(200, 5000, Skewed, rng)
	cdf := DuplicateCDF(counts, 20)
	if len(cdf) != 20 {
		t.Fatalf("points = %d", len(cdf))
	}
	prevV, prevT := 0.0, 0.0
	for _, p := range cdf {
		if p.ValuePct < prevV || p.TuplePct < prevT {
			t.Fatal("CDF not monotone")
		}
		if p.TuplePct < p.ValuePct-0.001 {
			t.Fatal("CDF below the diagonal: descending sort broken")
		}
		prevV, prevT = p.ValuePct, p.TuplePct
	}
	last := cdf[len(cdf)-1]
	if last.ValuePct != 100 || last.TuplePct < 99.999 {
		t.Fatalf("CDF does not end at (100,100): %+v", last)
	}
}

func TestComposeShuffles(t *testing.T) {
	// Not a statistical test — just ensure values are not emitted in
	// grouped order, which would bias merge-join style algorithms.
	rng := rand.New(rand.NewSource(10))
	distinct := []int64{1, 2, 3, 4, 5}
	counts := []int{100, 100, 100, 100, 100}
	vals := Compose(distinct, counts, rng)
	if len(vals) != 500 {
		t.Fatalf("len=%d", len(vals))
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			runs++
		}
	}
	if runs < 100 {
		t.Fatalf("only %d runs in shuffled output", runs)
	}
}

func TestUpdateSpecStream(t *testing.T) {
	const rows = 1000
	next := UpdateSpec{Rows: rows}.Stream(rand.New(rand.NewSource(7)))
	counts := make([]int, rows)
	const draws = 20000
	for i := 0; i < draws; i++ {
		idx := next()
		if idx < 0 || idx >= rows {
			t.Fatalf("index %d out of [0,%d)", idx, rows)
		}
		counts[idx]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform would give each row draws/rows = 20 hits; Zipf must
	// concentrate writes far beyond that on the hottest row.
	if max < 10*draws/rows {
		t.Fatalf("hottest row took %d/%d draws; stream not skewed", max, draws)
	}
}

func TestBuildZipfShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	col, err := BuildZipf(ZipfSpec{Cardinality: 100000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Values) != 100000 {
		t.Fatalf("generated %d values", len(col.Values))
	}
	counts := map[int64]int{}
	for _, v := range col.Values {
		if v < 0 || v >= 100000 {
			t.Fatalf("key %d outside default domain", v)
		}
		counts[v]++
	}
	if len(counts) != len(col.Distinct) {
		t.Fatalf("Distinct has %d values, saw %d", len(col.Distinct), len(counts))
	}
	// s=1.2 over a 100k domain concentrates >10% of tuples on the
	// hottest key (the analytic mass is ~18%); near-uniform data would
	// put ~0.001% there, so the margin is enormous.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < len(col.Values)/10 {
		t.Fatalf("hottest key holds %d/%d tuples; not Zipf-skewed", max, len(col.Values))
	}

	if _, err := BuildZipf(ZipfSpec{}, rng); err == nil {
		t.Fatal("zero cardinality accepted")
	}
}
