// Package workload implements the relation-generation procedure of
// §3.3.1. Test relations vary three parameters: cardinality, the number of
// join-column duplicate values (as a percentage of |R|) with their
// distribution, and the semijoin selectivity (the percentage of values in
// the larger relation that participate in the join).
//
// Duplicate counts follow the paper's procedure: a specified number of
// unique values is generated (from a random source, or drawn from the
// larger relation), and the number of occurrences of each value is
// determined by random sampling from a truncated normal distribution with
// a variable standard deviation — σ = 0.1 is the paper's skewed
// distribution, 0.4 moderately skewed, 0.8 near-uniform (Graph 3).
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// The three duplicate distributions of Graph 3.
const (
	Skewed      = 0.1
	Moderate    = 0.4
	NearUniform = 0.8
)

// Spec describes one generated join column.
type Spec struct {
	Cardinality  int     // |R|
	DuplicatePct float64 // duplicate values as a percentage of |R| (0-100)
	Sigma        float64 // truncated-normal σ; defaults to NearUniform
}

func (s Spec) sigma() float64 {
	if s.Sigma <= 0 {
		return NearUniform
	}
	return s.Sigma
}

// uniqueCount is the number of distinct values for the spec: a duplicate
// percentage of d means d% of the tuples carry repeated values, so
// |R|·(1-d/100) values are distinct (minimum 1).
func (s Spec) uniqueCount() int {
	u := int(float64(s.Cardinality) * (1 - s.DuplicatePct/100))
	if u < 1 {
		u = 1
	}
	if u > s.Cardinality {
		u = s.Cardinality
	}
	return u
}

// Column is a generated join column: the tuple values in insertion order
// plus the distinct value set.
type Column struct {
	Values   []int64
	Distinct []int64
}

// Build generates a column per the spec.
func Build(spec Spec, rng *rand.Rand) (Column, error) {
	if spec.Cardinality <= 0 {
		return Column{}, fmt.Errorf("workload: cardinality %d", spec.Cardinality)
	}
	if spec.DuplicatePct < 0 || spec.DuplicatePct > 100 {
		return Column{}, fmt.Errorf("workload: duplicate percentage %v", spec.DuplicatePct)
	}
	u := spec.uniqueCount()
	distinct := UniquePool(u, rng, nil)
	counts := Occurrences(u, spec.Cardinality, spec.sigma(), rng)
	return Column{Values: Compose(distinct, counts, rng), Distinct: distinct}, nil
}

// BuildDerived generates a column whose distinct values partially come
// from a base column — the paper's construction for the smaller join
// relation: "the smaller relation was built with a specified number of
// values from the larger relation" to control semijoin selectivity.
// semijoinPct percent of the distinct values are sampled from base's
// distinct values; the rest are fresh values guaranteed absent from base.
func BuildDerived(spec Spec, base Column, semijoinPct float64, rng *rand.Rand) (Column, error) {
	if spec.Cardinality <= 0 {
		return Column{}, fmt.Errorf("workload: cardinality %d", spec.Cardinality)
	}
	if semijoinPct < 0 || semijoinPct > 100 {
		return Column{}, fmt.Errorf("workload: semijoin selectivity %v", semijoinPct)
	}
	u := spec.uniqueCount()
	fromBase := int(float64(u) * semijoinPct / 100)
	if fromBase > len(base.Distinct) {
		fromBase = len(base.Distinct)
	}
	distinct := make([]int64, 0, u)
	// Sample without replacement from the base's distinct values.
	perm := rng.Perm(len(base.Distinct))
	for _, p := range perm[:fromBase] {
		distinct = append(distinct, base.Distinct[p])
	}
	// Fresh values must not collide with the base (they would silently
	// raise the selectivity).
	exclude := make(map[int64]bool, len(base.Distinct))
	for _, v := range base.Distinct {
		exclude[v] = true
	}
	distinct = append(distinct, UniquePool(u-fromBase, rng, exclude)...)
	counts := Occurrences(len(distinct), spec.Cardinality, spec.sigma(), rng)
	return Column{Values: Compose(distinct, counts, rng), Distinct: distinct}, nil
}

// UniquePool returns n distinct random values, none of which appear in
// exclude.
func UniquePool(n int, rng *rand.Rand, exclude map[int64]bool) []int64 {
	out := make([]int64, 0, n)
	seen := make(map[int64]bool, n)
	for len(out) < n {
		v := rng.Int63()
		if seen[v] || exclude[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// Occurrences distributes total occurrences over u values: every value
// occurs at least once, and each remaining occurrence goes to the value
// whose rank is drawn from a truncated normal with the given σ. Small σ
// concentrates duplicates on few values (the skewed curve of Graph 3).
func Occurrences(u, total int, sigma float64, rng *rand.Rand) []int {
	counts := make([]int, u)
	for i := range counts {
		counts[i] = 1
	}
	for extra := total - u; extra > 0; extra-- {
		counts[truncNormalRank(u, sigma, rng)]++
	}
	return counts
}

// truncNormalRank samples a value rank in [0, u) from |N(0, σ)| truncated
// at 1.
func truncNormalRank(u int, sigma float64, rng *rand.Rand) int {
	for {
		z := rng.NormFloat64() * sigma
		if z < 0 {
			z = -z
		}
		if z < 1 {
			return int(z * float64(u))
		}
	}
}

// Compose expands (value, count) pairs into a shuffled tuple-value list.
func Compose(distinct []int64, counts []int, rng *rand.Rand) []int64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]int64, 0, total)
	for i, v := range distinct {
		for c := 0; c < counts[i]; c++ {
			out = append(out, v)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// CDFPoint is one point of the Graph 3 curve: the top ValuePct percent of
// values (by occurrence count) cover TuplePct percent of the tuples.
type CDFPoint struct {
	ValuePct float64
	TuplePct float64
}

// DuplicateCDF computes the Graph 3 distribution curve from per-value
// occurrence counts.
func DuplicateCDF(counts []int, points int) []CDFPoint {
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, c := range sorted {
		total += c
	}
	if total == 0 || len(sorted) == 0 || points < 2 {
		return nil
	}
	out := make([]CDFPoint, 0, points)
	cum, next := 0, 0
	for p := 1; p <= points; p++ {
		target := len(sorted) * p / points
		for next < target {
			cum += sorted[next]
			next++
		}
		out = append(out, CDFPoint{
			ValuePct: 100 * float64(target) / float64(len(sorted)),
			TuplePct: 100 * float64(cum) / float64(total),
		})
	}
	return out
}

// SemijoinSelectivity measures the fraction (percent) of a's tuples whose
// value appears in b — the quantity the paper's Test 6 varies.
func SemijoinSelectivity(a, b Column) float64 {
	inB := make(map[int64]bool, len(b.Distinct))
	for _, v := range b.Distinct {
		inB[v] = true
	}
	n := 0
	for _, v := range a.Values {
		if inB[v] {
			n++
		}
	}
	if len(a.Values) == 0 {
		return 0
	}
	return 100 * float64(n) / float64(len(a.Values))
}

// ZipfSpec describes a Zipf-skewed join column — the adversarial
// counterpart of the paper's truncated-normal duplicate procedure. A
// Zipf exponent of 1.2 over a million-key domain puts roughly 18% of
// the tuples on the single hottest key and ~44% on the top ten: the
// workload that blows one radix partition past any cache-sized table
// and makes the dynamic-hybrid defenses (role reversal, recursive
// re-splitting) earn their keep.
type ZipfSpec struct {
	Cardinality int // tuples generated
	// S is the Zipf exponent (> 1; larger = more skew). 0 selects 1.2.
	S float64
	// Domain is the key domain [0, Domain). 0 selects Cardinality, so a
	// same-size uniform relation covers every generated key.
	Domain int
}

// BuildZipf generates a column of Zipf-distributed keys per the spec.
func BuildZipf(spec ZipfSpec, rng *rand.Rand) (Column, error) {
	if spec.Cardinality <= 0 {
		return Column{}, fmt.Errorf("workload: cardinality %d", spec.Cardinality)
	}
	s := spec.S
	if s <= 1 {
		s = 1.2
	}
	domain := spec.Domain
	if domain <= 0 {
		domain = spec.Cardinality
	}
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	values := make([]int64, spec.Cardinality)
	seen := make(map[int64]bool)
	for i := range values {
		v := int64(z.Uint64())
		values[i] = v
		seen[v] = true
	}
	distinct := make([]int64, 0, len(seen))
	for v := range seen {
		distinct = append(distinct, v)
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	return Column{Values: values, Distinct: distinct}, nil
}

// UpdateSpec describes a skewed point-update stream — the OLTP half of a
// mixed reader/writer workload. Row indices are drawn from a Zipf
// distribution over [0, Rows): a small set of hot rows absorbs most of
// the writes, the realistic worst case for snapshot republication (the
// same partitions stay permanently dirty).
type UpdateSpec struct {
	Rows int // table cardinality the indices address
	// S is the Zipf exponent (> 1; larger = more skew). 0 selects the
	// default 1.2 — roughly "10% of rows take ~80% of writes".
	S float64
	// V is the Zipf value offset (>= 1). 0 selects 1.
	V float64
}

// Stream returns a generator of row indices in [0, spec.Rows) following
// the spec's Zipf distribution, driven by rng.
func (u UpdateSpec) Stream(rng *rand.Rand) func() int {
	s, v := u.S, u.V
	if s <= 1 {
		s = 1.2
	}
	if v < 1 {
		v = 1
	}
	z := rand.NewZipf(rng, s, v, uint64(u.Rows-1))
	return func() int { return int(z.Uint64()) }
}
