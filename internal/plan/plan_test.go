package plan

import "testing"

func TestSelectionPreferenceOrder(t *testing.T) {
	cases := []struct {
		in   SelectionInput
		want AccessPath
	}{
		{SelectionInput{Op: Eq, HasHash: true, HasTree: true}, PathHashLookup},
		{SelectionInput{Op: Eq, HasHash: false, HasTree: true}, PathTreeLookup},
		{SelectionInput{Op: Eq}, PathSequentialScan},
		{SelectionInput{Op: Lt, HasHash: true, HasTree: true}, PathTreeRange},
		{SelectionInput{Op: Ge, HasHash: true}, PathSequentialScan}, // hash cannot range
		{SelectionInput{Op: Ne, HasHash: true, HasTree: true}, PathSequentialScan},
	}
	for _, c := range cases {
		if got := ChooseSelection(c.in); got != c.want {
			t.Errorf("ChooseSelection(%+v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJoinPreferenceOrder(t *testing.T) {
	cases := []struct {
		name string
		in   JoinInput
		want JoinMethod
	}{
		{"precomputed beats everything",
			JoinInput{Equijoin: true, HasPrecomputed: true, OuterTree: true, InnerTree: true, DuplicatePct: -1, SemijoinPct: -1},
			JoinPrecomputed},
		{"both trees: tree merge",
			JoinInput{Equijoin: true, OuterTree: true, InnerTree: true, DuplicatePct: -1, SemijoinPct: -1},
			JoinTreeMerge},
		{"no indices: hash join",
			JoinInput{Equijoin: true, OuterCard: 30000, InnerCard: 30000, DuplicatePct: -1, SemijoinPct: -1},
			JoinHash},
		{"exception 1: small outer, inner tree",
			JoinInput{Equijoin: true, InnerTree: true, OuterCard: 10000, InnerCard: 30000, DuplicatePct: -1, SemijoinPct: -1},
			JoinTree},
		{"exception 1 boundary: outer over half",
			JoinInput{Equijoin: true, InnerTree: true, OuterCard: 20000, InnerCard: 30000, DuplicatePct: -1, SemijoinPct: -1},
			JoinHash},
		{"existing inner hash index wins over tree join",
			JoinInput{Equijoin: true, InnerTree: true, InnerHash: true, OuterCard: 1000, InnerCard: 30000, DuplicatePct: -1, SemijoinPct: -1},
			JoinHash},
		{"exception 2: high dup skewed, no trees",
			JoinInput{Equijoin: true, DuplicatePct: 70, SemijoinPct: 100, SkewedDups: true},
			JoinSortMerge},
		{"exception 2: 70% uniform dups below the 80% crossover",
			JoinInput{Equijoin: true, DuplicatePct: 70, SemijoinPct: 100},
			JoinHash},
		{"exception 2 with trees available: tree merge",
			JoinInput{Equijoin: true, OuterTree: true, InnerTree: true, DuplicatePct: 90, SemijoinPct: 100},
			JoinTreeMerge},
		{"non-equijoin uses tree join",
			JoinInput{Equijoin: false, InnerTree: true, DuplicatePct: -1, SemijoinPct: -1},
			JoinTree},
		{"non-equijoin without tree: nested loops",
			JoinInput{Equijoin: false, DuplicatePct: -1, SemijoinPct: -1},
			JoinNestedLoops},
	}
	for _, c := range cases {
		if got := ChooseJoin(c.in); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, p := range []AccessPath{PathHashLookup, PathTreeLookup, PathTreeRange, PathSequentialScan} {
		if p.String() == "" || p.String() == "?" {
			t.Errorf("AccessPath(%d) has no name", p)
		}
	}
	for _, j := range []JoinMethod{JoinPrecomputed, JoinTreeMerge, JoinTree, JoinHash, JoinSortMerge, JoinNestedLoops} {
		if j.String() == "" {
			t.Errorf("JoinMethod(%d) has no name", j)
		}
	}
	for _, o := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		if o.String() == "?" {
			t.Errorf("CmpOp(%d) has no name", o)
		}
	}
}

func TestChooseRadixBits(t *testing.T) {
	cfg := RadixConfig{}
	// Below the crossover: the paper-faithful chained-bucket path.
	if got := ChooseRadixBits(DefaultRadixMinBuildRows-1, cfg); got != nil {
		t.Fatalf("below crossover chose radix bits %v", got)
	}
	sum := func(bits []uint) uint {
		var s uint
		for _, b := range bits {
			s += b
		}
		return s
	}
	// At 1M build rows × 32 B/row = 32 MiB of table, a 256 KiB target
	// needs fan-out ≥ 128 → 7 bits, one pass.
	bits := ChooseRadixBits(1<<20, cfg)
	if sum(bits) != 7 || len(bits) != 1 {
		t.Fatalf("1M rows: bits = %v, want one 7-bit pass", bits)
	}
	// 1G rows would want 17 bits → clamped to MaxBits 14, split 7+7.
	bits = ChooseRadixBits(1<<30, cfg)
	if sum(bits) != DefaultRadixMaxBits || len(bits) != 2 {
		t.Fatalf("1G rows: bits = %v, want 14 total over 2 passes", bits)
	}
	for _, b := range bits {
		if b > DefaultRadixMaxPassBits {
			t.Fatalf("pass width %d exceeds cap %d", b, DefaultRadixMaxPassBits)
		}
	}
	// A small L2 target forces multi-pass plans sooner.
	bits = ChooseRadixBits(1<<20, RadixConfig{L2Bytes: 16 << 10, MaxPassBits: 6})
	if sum(bits) != 11 || len(bits) != 2 {
		t.Fatalf("small-L2: bits = %v, want 11 bits over 2 near-equal passes", bits)
	}
	if bits[0] != 6 || bits[1] != 5 {
		t.Fatalf("small-L2 split = %v, want [6 5]", bits)
	}
}

func TestForceRadixBits(t *testing.T) {
	// Forcing radix on a tiny build still partitions (minimum 2 bits).
	bits := ForceRadixBits(100, RadixConfig{})
	if len(bits) != 1 || bits[0] != 2 {
		t.Fatalf("forced tiny build: bits = %v, want [2]", bits)
	}
	// And the forced plan matches the chooser's above the crossover.
	a := ChooseRadixBits(1<<20, RadixConfig{})
	b := ForceRadixBits(1<<20, RadixConfig{})
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("forced %v != chosen %v above crossover", b, a)
	}
}

func TestRadixConfigClamps(t *testing.T) {
	c := RadixConfig{MaxBits: 40, MaxPassBits: 32}.withDefaults()
	if c.MaxBits != 16 || c.MaxPassBits != 16 {
		t.Fatalf("withDefaults did not clamp to the kernel cap: %+v", c)
	}
	if JoinRadixHash.String() != "Radix Hash Join" {
		t.Fatalf("JoinRadixHash.String() = %q", JoinRadixHash.String())
	}
}

func TestBudgetedRadixBits(t *testing.T) {
	var cfg RadixConfig
	base := ChooseRadixBits(1<<20, cfg)
	if base == nil {
		t.Fatal("1M rows should be over the radix crossover")
	}
	// No budget: pass-through, not clamped.
	bits, clamped := BudgetedRadixBits(1<<20, cfg, 0)
	if clamped || len(bits) != len(base) {
		t.Fatalf("unbudgeted = %v clamped=%v, want %v", bits, clamped, base)
	}
	// Huge budget: plan unchanged.
	bits, clamped = BudgetedRadixBits(1<<20, cfg, 1<<30)
	if clamped {
		t.Fatalf("1GiB budget clamped a %v plan to %v", base, bits)
	}
	// 64 KiB budget: staging allowance 64Ki/8/2048 = 4 partitions → 2 bits.
	bits, clamped = BudgetedRadixBits(1<<20, cfg, 64<<10)
	if !clamped {
		t.Fatal("64KiB budget did not clamp a 1M-row plan")
	}
	var total uint
	for _, b := range bits {
		total += b
	}
	if total != 2 {
		t.Fatalf("64KiB budget: total bits = %d (%v), want 2", total, bits)
	}
	// Below the crossover the chained join runs budget or not.
	if bits, clamped = BudgetedRadixBits(100, cfg, 64<<10); bits != nil || clamped {
		t.Fatalf("tiny build: %v %v", bits, clamped)
	}
	// Clamp floor: even a 1-byte budget keeps 2 bits of fanout.
	bits, _ = BudgetedRadixBits(1<<20, cfg, 1)
	total = 0
	for _, b := range bits {
		total += b
	}
	if total != 2 {
		t.Fatalf("floor: total bits = %d", total)
	}
}

func TestClampRadixBitsPassSplit(t *testing.T) {
	// A clamped width wider than MaxPassBits must re-split into passes.
	bits, clamped := ClampRadixBits([]uint{8, 6}, RadixConfig{MaxPassBits: 4}, 8<<20)
	if !clamped {
		t.Fatal("8MiB budget should clamp a 14-bit plan")
	}
	var total uint
	for _, b := range bits {
		total += b
		if b > 4 {
			t.Fatalf("pass wider than cap: %v", bits)
		}
	}
	// 8Mi/8/2048 = 512 partitions → 9 bits.
	if total != 9 {
		t.Fatalf("total = %d (%v), want 9", total, bits)
	}
}

func TestBudgetedAggBits(t *testing.T) {
	var cfg AggConfig
	method, bits, clamped := BudgetedAggBits(1<<20, cfg, 0)
	if method != AggRadixPartitioned || clamped {
		t.Fatalf("unbudgeted: %v %v %v", method, bits, clamped)
	}
	method, bits2, clamped := BudgetedAggBits(1<<20, cfg, 64<<10)
	if method != AggRadixPartitioned || !clamped {
		t.Fatalf("64KiB budget: %v %v %v", method, bits2, clamped)
	}
	var total uint
	for _, b := range bits2 {
		total += b
	}
	if total != 2 {
		t.Fatalf("clamped agg bits = %v", bits2)
	}
	// Below the crossover: flat table regardless of budget.
	if m, b, c := BudgetedAggBits(10, cfg, 1); m != AggFlatTable || b != nil || c {
		t.Fatalf("tiny input: %v %v %v", m, b, c)
	}
}
