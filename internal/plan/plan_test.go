package plan

import "testing"

func TestSelectionPreferenceOrder(t *testing.T) {
	cases := []struct {
		in   SelectionInput
		want AccessPath
	}{
		{SelectionInput{Op: Eq, HasHash: true, HasTree: true}, PathHashLookup},
		{SelectionInput{Op: Eq, HasHash: false, HasTree: true}, PathTreeLookup},
		{SelectionInput{Op: Eq}, PathSequentialScan},
		{SelectionInput{Op: Lt, HasHash: true, HasTree: true}, PathTreeRange},
		{SelectionInput{Op: Ge, HasHash: true}, PathSequentialScan}, // hash cannot range
		{SelectionInput{Op: Ne, HasHash: true, HasTree: true}, PathSequentialScan},
	}
	for _, c := range cases {
		if got := ChooseSelection(c.in); got != c.want {
			t.Errorf("ChooseSelection(%+v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJoinPreferenceOrder(t *testing.T) {
	cases := []struct {
		name string
		in   JoinInput
		want JoinMethod
	}{
		{"precomputed beats everything",
			JoinInput{Equijoin: true, HasPrecomputed: true, OuterTree: true, InnerTree: true, DuplicatePct: -1, SemijoinPct: -1},
			JoinPrecomputed},
		{"both trees: tree merge",
			JoinInput{Equijoin: true, OuterTree: true, InnerTree: true, DuplicatePct: -1, SemijoinPct: -1},
			JoinTreeMerge},
		{"no indices: hash join",
			JoinInput{Equijoin: true, OuterCard: 30000, InnerCard: 30000, DuplicatePct: -1, SemijoinPct: -1},
			JoinHash},
		{"exception 1: small outer, inner tree",
			JoinInput{Equijoin: true, InnerTree: true, OuterCard: 10000, InnerCard: 30000, DuplicatePct: -1, SemijoinPct: -1},
			JoinTree},
		{"exception 1 boundary: outer over half",
			JoinInput{Equijoin: true, InnerTree: true, OuterCard: 20000, InnerCard: 30000, DuplicatePct: -1, SemijoinPct: -1},
			JoinHash},
		{"existing inner hash index wins over tree join",
			JoinInput{Equijoin: true, InnerTree: true, InnerHash: true, OuterCard: 1000, InnerCard: 30000, DuplicatePct: -1, SemijoinPct: -1},
			JoinHash},
		{"exception 2: high dup skewed, no trees",
			JoinInput{Equijoin: true, DuplicatePct: 70, SemijoinPct: 100, SkewedDups: true},
			JoinSortMerge},
		{"exception 2: 70% uniform dups below the 80% crossover",
			JoinInput{Equijoin: true, DuplicatePct: 70, SemijoinPct: 100},
			JoinHash},
		{"exception 2 with trees available: tree merge",
			JoinInput{Equijoin: true, OuterTree: true, InnerTree: true, DuplicatePct: 90, SemijoinPct: 100},
			JoinTreeMerge},
		{"non-equijoin uses tree join",
			JoinInput{Equijoin: false, InnerTree: true, DuplicatePct: -1, SemijoinPct: -1},
			JoinTree},
		{"non-equijoin without tree: nested loops",
			JoinInput{Equijoin: false, DuplicatePct: -1, SemijoinPct: -1},
			JoinNestedLoops},
	}
	for _, c := range cases {
		if got := ChooseJoin(c.in); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, p := range []AccessPath{PathHashLookup, PathTreeLookup, PathTreeRange, PathSequentialScan} {
		if p.String() == "" || p.String() == "?" {
			t.Errorf("AccessPath(%d) has no name", p)
		}
	}
	for _, j := range []JoinMethod{JoinPrecomputed, JoinTreeMerge, JoinTree, JoinHash, JoinSortMerge, JoinNestedLoops} {
		if j.String() == "" {
			t.Errorf("JoinMethod(%d) has no name", j)
		}
	}
	for _, o := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		if o.String() == "?" {
			t.Errorf("CmpOp(%d) has no name", o)
		}
	}
}
