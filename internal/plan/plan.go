// Package plan implements the simplified query optimization the paper's
// conclusions promise (§4): "query optimization in MM-DBMS should be
// simpler than in conventional database systems, as the cost formulas are
// less complicated... there is a more definite ordering of preference".
//
// Selection: a hash lookup (exact match only) is always faster than a tree
// lookup, which is always faster than a sequential scan.
//
// Join: a precomputed join is always faster than the other methods; a Tree
// Merge join is nearly always preferred when the T Tree indices already
// exist. Otherwise Hash Join, with the two exceptions of §3.3.5: a Tree
// Join when an index exists on the larger (inner) relation and the outer
// is less than half its size, and Sort Merge when the semijoin selectivity
// and duplicate percentage are both high. Non-equijoins use the ordering
// of the data (Tree Join).
//
// Projection: hashing is the dominant duplicate-elimination method.
package plan

import "fmt"

// CmpOp is a selection predicate operator.
type CmpOp int

// Predicate operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

// AccessPath is a selection strategy.
type AccessPath int

// The three access paths of §4.
const (
	PathHashLookup AccessPath = iota
	PathTreeLookup
	PathTreeRange
	PathSequentialScan
)

// String names the path.
func (p AccessPath) String() string {
	switch p {
	case PathHashLookup:
		return "hash lookup"
	case PathTreeLookup:
		return "tree lookup"
	case PathTreeRange:
		return "tree range scan"
	default:
		return "sequential scan"
	}
}

// SelectionInput describes the available paths for a selection.
type SelectionInput struct {
	Op      CmpOp
	HasHash bool // hash index on the predicate column
	HasTree bool // order-preserving index on the predicate column
}

// ChooseSelection picks the access path by the §4 preference order.
func ChooseSelection(in SelectionInput) AccessPath {
	switch in.Op {
	case Eq:
		if in.HasHash {
			return PathHashLookup // exact match: hash always fastest
		}
		if in.HasTree {
			return PathTreeLookup
		}
	case Lt, Le, Gt, Ge:
		// Range predicates can use the ordering of the data; hash
		// structures are excluded from range queries (§3.2.2).
		if in.HasTree {
			return PathTreeRange
		}
	case Ne:
		// "not equals" cannot make use of ordering (§3.3.5).
	}
	return PathSequentialScan
}

// JoinMethod is a join strategy.
type JoinMethod int

// The join methods of §3.3 plus the precomputed join of §2.1.
const (
	JoinPrecomputed JoinMethod = iota
	JoinTreeMerge
	JoinTree
	JoinHash
	JoinSortMerge
	JoinNestedLoops
	// JoinRadixHash is the cache-conscious upgrade of JoinHash: both
	// sides radix-partitioned on the join-key hash, each partition pair
	// joined through a flat L2-resident open-addressing table. Not part
	// of the paper's §3.3 ordering — the cost-based crossover below
	// decides when the build is large enough for cache effects to
	// dominate, and the paper-faithful chained-bucket join runs
	// otherwise.
	JoinRadixHash
)

// String names the method as the paper does.
func (j JoinMethod) String() string {
	switch j {
	case JoinPrecomputed:
		return "precomputed join"
	case JoinTreeMerge:
		return "Tree Merge join"
	case JoinTree:
		return "Tree Join"
	case JoinHash:
		return "Hash Join"
	case JoinSortMerge:
		return "Sort Merge join"
	case JoinRadixHash:
		return "Radix Hash Join"
	default:
		return "nested loops join"
	}
}

// JoinInput describes a candidate equijoin.
type JoinInput struct {
	Equijoin       bool // false for <, <=, >, >= joins
	HasPrecomputed bool // outer carries a tuple-pointer FK to inner
	OuterTree      bool // T Tree exists on the outer join column
	InnerTree      bool // T Tree exists on the inner join column
	InnerHash      bool // hash index exists on the inner join column
	OuterCard      int
	InnerCard      int
	// Statistics for the Sort Merge exception; negative when unknown.
	DuplicatePct float64
	SemijoinPct  float64
	SkewedDups   bool
}

// ChooseJoin picks the join method by the §3.3.5 summary rules.
func ChooseJoin(in JoinInput) JoinMethod {
	if in.HasPrecomputed {
		return JoinPrecomputed
	}
	if !in.Equijoin {
		// Non-equijoins other than "not equals" use the ordering of the
		// data: "the Tree Join should be used for such joins".
		if in.InnerTree {
			return JoinTree
		}
		return JoinNestedLoops
	}
	// Exception (2): both semijoin selectivity and duplicate percentage
	// high — Sort Merge, particularly under a skewed distribution. The
	// crossover thresholds come from Tests 4 and 5: ~60% duplicates
	// (skewed) / ~80% (uniform) when indices would have to be built.
	if in.DuplicatePct >= 0 && in.SemijoinPct >= 80 {
		threshold := 80.0
		if in.SkewedDups {
			threshold = 60.0
		}
		if in.DuplicatePct >= threshold {
			if in.OuterTree && in.InnerTree {
				return JoinTreeMerge // satisfactory and already built
			}
			return JoinSortMerge
		}
	}
	if in.OuterTree && in.InnerTree {
		return JoinTreeMerge
	}
	// An existing hash index on the inner is always at least as good as
	// building one.
	if in.InnerHash {
		return JoinHash
	}
	// Exception (1): an index on the larger (inner) relation and an outer
	// less than half its size — Tree Join beats building a hash table.
	if in.InnerTree && in.OuterCard*2 < in.InnerCard {
		return JoinTree
	}
	return JoinHash
}

// Explain renders a one-line plan description.
func Explain(kind string, choice fmt.Stringer, why string) string {
	return fmt.Sprintf("%s: %s (%s)", kind, choice, why)
}

// MinRowsPerWorker is the floor under which an operator is not worth
// splitting: below a few thousand rows per worker, goroutine spawn and
// result merging cost more than the work they spread out, and the paper's
// serial algorithms (whose §3.1 counts the experiments reproduce) should
// run untouched.
const MinRowsPerWorker = 2048

// ChooseWorkers resolves the degree of parallelism for an operator over
// the given row count: the requested degree, capped so every worker gets
// at least MinRowsPerWorker rows. requested <= 1 (or any small input)
// yields 1 — the exact serial path.
func ChooseWorkers(requested, rows int) int {
	if requested <= 1 {
		return 1
	}
	maxW := rows / MinRowsPerWorker
	if maxW < 1 {
		return 1
	}
	if requested < maxW {
		return requested
	}
	return maxW
}

// DefaultBatchSize is the tuple-pointer block size batch-at-a-time
// operators move between stages: 256 pointers is 2 KiB on a 64-bit
// layout, small enough to stay L1/L2-resident through an operator's
// inner loop and large enough to amortize per-block dispatch to ~1/256
// of a call per tuple. It matches storage.BatchSize (the arena chunk row
// count), so a temp-list chunk doubles as a scan block.
const DefaultBatchSize = 256

// RadixConfig parameterizes the cache-conscious radix execution paths.
// The zero value means "use the defaults" — every field is normalized
// through withDefaults before use, so callers can set only what they
// care about.
type RadixConfig struct {
	// L2Bytes is the target per-partition working set: the radix plan
	// fans out until one partition's flat build table (16-byte slots at
	// load factor 1/2 → 32 bytes per build row) fits in this budget.
	// Default 256 KiB — a conservative slice of a modern per-core L2.
	L2Bytes int
	// EntryBytes is the in-table footprint per build row used by the
	// sizing model. Default 32 (two 16-byte open-addressing slots).
	EntryBytes int
	// MaxPassBits caps one pass's fan-out so the write-combining
	// staging area and the TLB reach of the scatter stay bounded.
	// Default 8 (256 partitions per pass).
	MaxPassBits uint
	// MaxBits caps the total radix width across passes. Default 14
	// (16384 partitions) — past that, per-partition bookkeeping beats
	// the locality it buys.
	MaxBits uint
	// MinBuildRows is the crossover below which the paper-faithful
	// chained-bucket join runs instead: small builds fit in cache
	// anyway, and §4/§5's reproductions must execute the original
	// algorithms. Default 131072 rows (≈ 4 MiB of chained table).
	MinBuildRows int
}

// Default radix parameters (see RadixConfig field docs).
const (
	DefaultRadixL2Bytes      = 256 << 10
	DefaultRadixEntryBytes   = 32
	DefaultRadixMaxPassBits  = 8
	DefaultRadixMaxBits      = 14
	DefaultRadixMinBuildRows = 128 << 10
)

// withDefaults fills zero fields with the package defaults.
func (c RadixConfig) withDefaults() RadixConfig {
	if c.L2Bytes <= 0 {
		c.L2Bytes = DefaultRadixL2Bytes
	}
	if c.EntryBytes <= 0 {
		c.EntryBytes = DefaultRadixEntryBytes
	}
	if c.MaxPassBits == 0 {
		c.MaxPassBits = DefaultRadixMaxPassBits
	}
	if c.MaxBits == 0 {
		c.MaxBits = DefaultRadixMaxBits
	}
	if c.MaxBits > 16 {
		c.MaxBits = 16 // the kernel's hard MaxBits cap
	}
	if c.MaxPassBits > c.MaxBits {
		c.MaxPassBits = c.MaxBits
	}
	if c.MinBuildRows == 0 {
		c.MinBuildRows = DefaultRadixMinBuildRows
	}
	return c
}

// ChooseRadixBits is the cost-based pass/bit chooser: given the
// estimated build cardinality it returns the per-pass radix widths
// (most significant bits first), or nil when the build is below the
// crossover and the paper-faithful chained-bucket join should run.
//
// The model: the build table costs EntryBytes per row, so fitting one
// partition in L2Bytes needs a fan-out of buildRows·EntryBytes/L2Bytes,
// i.e. total bits = ceil(log2(that)), clamped to MaxBits. The bits are
// split into ceil(total/MaxPassBits) passes of near-equal width so no
// single scatter fans out past its write-combining budget — each extra
// pass costs one more sequential sweep over the data (RadixPasses ×
// rows extra DataMoves), which is why the splitter uses as few passes
// as the per-pass cap allows.
func ChooseRadixBits(buildRows int, cfg RadixConfig) []uint {
	c := cfg.withDefaults()
	if buildRows < c.MinBuildRows {
		return nil
	}
	return forcedRadixBits(buildRows, c)
}

// ForceRadixBits sizes a radix plan for the given build cardinality
// ignoring the crossover — the "always radix" knob. Tiny builds still
// get a minimal 2-bit plan so the forced path genuinely partitions.
func ForceRadixBits(buildRows int, cfg RadixConfig) []uint {
	return forcedRadixBits(buildRows, cfg.withDefaults())
}

func forcedRadixBits(buildRows int, c RadixConfig) []uint {
	need := 1
	if buildRows > 0 {
		// ceil(buildRows·EntryBytes / L2Bytes)
		need = (buildRows*c.EntryBytes + c.L2Bytes - 1) / c.L2Bytes
	}
	var total uint
	for 1<<total < need {
		total++
	}
	if total < 2 {
		total = 2
	}
	if total > c.MaxBits {
		total = c.MaxBits
	}
	passes := (total + c.MaxPassBits - 1) / c.MaxPassBits
	bits := make([]uint, 0, passes)
	for p := uint(0); p < passes; p++ {
		// Near-equal split, wider passes first.
		b := (total + passes - p - 1) / (passes - p)
		bits = append(bits, b)
		total -= b
	}
	return bits
}

// Budget-clamped planning. When a memory grant is in force the radix
// fanout cannot be chosen from cache geometry alone: every unit of
// fanout costs write-combining staging on both sides of the join
// (WCBlock entries × 16 bytes × 2 sides = 2 KiB per partition held hot
// through the whole scatter), and a query squeezed to a small grant
// must not burn it on scatter scratch that the build tables then starve
// for. The clamp bounds the staging to a fraction of the budget and
// lets the dynamic defenses (recursive repartitioning, role reversal)
// fix up the fat partitions a narrow plan produces — bounded scratch
// traded for extra passes over only the partitions that need them,
// which is the Jahangiri/Carey/Freytag degradation order.

// budgetStagingDivisor is the fraction of the grant the scatter's
// write-combining staging may occupy: 1/8, leaving the rest for build
// tables and result buffers.
const budgetStagingDivisor = 8

// stagingBytesPerPartition is the two-sided write-combining cost of one
// unit of fanout: WCBlock (64) staged 16-byte entries per side.
const stagingBytesPerPartition = 2 * 64 * 16

// budgetMaxBits returns the widest total radix width whose staging fits
// budget/budgetStagingDivisor, floored at 2 bits (below that the plan
// is not a partitioning plan at all — the dynamic defenses need some
// fanout to work with).
func budgetMaxBits(budget int64) uint {
	allow := budget / budgetStagingDivisor / stagingBytesPerPartition
	var total uint
	for total < MaxRadixHardBits && int64(1)<<(total+1) <= allow {
		total++
	}
	if total < 2 {
		total = 2
	}
	return total
}

// MaxRadixHardBits mirrors the kernel's hard fanout cap.
const MaxRadixHardBits = 16

// BudgetedRadixBits is ChooseRadixBits under a memory grant of budget
// bytes: the cache-geometry plan, with its total width clamped so the
// scatter staging fits budget/8. The boolean reports whether the clamp
// actually narrowed the plan — true is the signal query tracing audits
// as a budget-forced decision. budget <= 0 means unbudgeted and defers
// entirely to ChooseRadixBits.
func BudgetedRadixBits(buildRows int, cfg RadixConfig, budget int64) ([]uint, bool) {
	return ClampRadixBits(ChooseRadixBits(buildRows, cfg), cfg, budget)
}

// ClampRadixBits narrows an existing radix plan to the widest total
// width whose scatter staging fits budget/8, re-splitting the clamped
// width into passes under the config's per-pass cap. It reports whether
// the plan actually narrowed. nil plans and budget <= 0 pass through
// untouched.
func ClampRadixBits(bits []uint, cfg RadixConfig, budget int64) ([]uint, bool) {
	if budget <= 0 || bits == nil {
		return bits, false
	}
	maxTotal := budgetMaxBits(budget)
	var total uint
	for _, b := range bits {
		total += b
	}
	if total <= maxTotal {
		return bits, false
	}
	return splitPasses(maxTotal, cfg.withDefaults().MaxPassBits), true
}

// splitPasses splits total bits into near-equal passes of at most
// maxPassBits each, wider passes first (the forcedRadixBits rule).
func splitPasses(total, maxPassBits uint) []uint {
	passes := (total + maxPassBits - 1) / maxPassBits
	bits := make([]uint, 0, passes)
	for p := uint(0); p < passes; p++ {
		b := (total + passes - p - 1) / (passes - p)
		bits = append(bits, b)
		total -= b
	}
	return bits
}

// SortMethod is a sort-substrate strategy for the sort-based operators
// (Sort Merge join array builds, Sort Scan duplicate elimination, MPSM
// run formation, bulk index builds).
type SortMethod int

const (
	// SortQuick is the paper-faithful §3.1 comparator quicksort with the
	// insertion-sort cutoff — the zero value, so every path that does not
	// opt in keeps the exact algorithm (and §3.1 operation counts) the
	// paper measured.
	SortQuick SortMethod = iota
	// SortRadixKey is the cache-conscious upgrade: encode each sort key
	// into a fixed-width order-preserving binary prefix (internal/sortkey)
	// and MSD-radix-sort the (prefix, pointer) pairs through write-
	// combining scatter buffers, falling back to comparator sorting on
	// short runs and equal-prefix ties. Same output order, different
	// work: sequential byte scatter instead of N·log N indirect
	// comparator calls.
	SortRadixKey
)

// String names the sort method.
func (s SortMethod) String() string {
	switch s {
	case SortRadixKey:
		return "radix-key sort"
	default:
		return "quicksort"
	}
}

// SortConfig parameterizes the sort-method crossover. The zero value
// means "all defaults"; it is passed through withDefaults before use.
type SortConfig struct {
	// MinRows is the input cardinality below which the comparator
	// quicksort runs: small sorts are cache-resident either way, the
	// radix kernel's key-encoding sweep and 256-bucket scatter setup
	// don't pay for themselves, and — deliberately — the paper-scale
	// exhibits (≤30k tuples) stay on the faithful §3.1 algorithm.
	MinRows int
	// PrefixBytes is the decisive-prefix width assumed by the crossover;
	// keys wider than this (composite keys, long strings) pay comparator
	// tie-breaks on equal prefixes, so the crossover doubles.
	PrefixBytes int
	// RunCutoff is the kernel's comparator-fallback run length,
	// surfaced for documentation; the kernel's own constant governs.
	RunCutoff int
}

// Default sort-crossover parameters (see SortConfig field docs).
const (
	DefaultSortMinRows     = 64 << 10
	DefaultSortPrefixBytes = 8
	DefaultSortRunCutoff   = 64
)

func (c SortConfig) withDefaults() SortConfig {
	if c.MinRows == 0 {
		c.MinRows = DefaultSortMinRows
	}
	if c.PrefixBytes == 0 {
		c.PrefixBytes = DefaultSortPrefixBytes
	}
	if c.RunCutoff == 0 {
		c.RunCutoff = DefaultSortRunCutoff
	}
	return c
}

// ChooseSortMethod picks the sort substrate for a sort of rows elements
// whose encoded keys are keyBytes wide (8 for every fixed-width single
// column; larger for composite keys and the crossover treats them as
// tie-break-heavy). The model mirrors ChooseRadixBits: below the
// crossover the comparator quicksort is cache-resident and unbeatable,
// above it the radix kernel's ~1 scatter pass per populated prefix byte
// replaces N·log N indirect comparator calls. Paper-scale inputs (the
// exhibits top out at 30k tuples) always land on SortQuick, keeping the
// faithful §3.1 path byte-identical.
func ChooseSortMethod(rows, keyBytes int, cfg SortConfig) SortMethod {
	c := cfg.withDefaults()
	min := c.MinRows
	if keyBytes > c.PrefixBytes {
		// Wide keys tie-break through the comparator on every equal
		// prefix; demand a bigger input before switching.
		min *= 2
	}
	if rows < min {
		return SortQuick
	}
	return SortRadixKey
}

// ChooseBatchSize resolves the effective block size for a query:
// requested <= 0 means the default; tiny inputs shrink the block to the
// input size so a two-row query does not carry a 256-slot block around.
// The resolved size is a planning/accounting figure — pooled blocks are
// physically DefaultBatchSize and operators simply stop filling them
// early — so EXPLAIN ANALYZE can report the block size a query ran with.
func ChooseBatchSize(requested, rows int) int {
	bs := requested
	if bs <= 0 {
		bs = DefaultBatchSize
	}
	if rows > 0 && rows < bs {
		bs = rows
	}
	if bs < 1 {
		bs = 1
	}
	return bs
}
