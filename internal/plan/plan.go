// Package plan implements the simplified query optimization the paper's
// conclusions promise (§4): "query optimization in MM-DBMS should be
// simpler than in conventional database systems, as the cost formulas are
// less complicated... there is a more definite ordering of preference".
//
// Selection: a hash lookup (exact match only) is always faster than a tree
// lookup, which is always faster than a sequential scan.
//
// Join: a precomputed join is always faster than the other methods; a Tree
// Merge join is nearly always preferred when the T Tree indices already
// exist. Otherwise Hash Join, with the two exceptions of §3.3.5: a Tree
// Join when an index exists on the larger (inner) relation and the outer
// is less than half its size, and Sort Merge when the semijoin selectivity
// and duplicate percentage are both high. Non-equijoins use the ordering
// of the data (Tree Join).
//
// Projection: hashing is the dominant duplicate-elimination method.
package plan

import "fmt"

// CmpOp is a selection predicate operator.
type CmpOp int

// Predicate operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

// AccessPath is a selection strategy.
type AccessPath int

// The three access paths of §4.
const (
	PathHashLookup AccessPath = iota
	PathTreeLookup
	PathTreeRange
	PathSequentialScan
)

// String names the path.
func (p AccessPath) String() string {
	switch p {
	case PathHashLookup:
		return "hash lookup"
	case PathTreeLookup:
		return "tree lookup"
	case PathTreeRange:
		return "tree range scan"
	default:
		return "sequential scan"
	}
}

// SelectionInput describes the available paths for a selection.
type SelectionInput struct {
	Op      CmpOp
	HasHash bool // hash index on the predicate column
	HasTree bool // order-preserving index on the predicate column
}

// ChooseSelection picks the access path by the §4 preference order.
func ChooseSelection(in SelectionInput) AccessPath {
	switch in.Op {
	case Eq:
		if in.HasHash {
			return PathHashLookup // exact match: hash always fastest
		}
		if in.HasTree {
			return PathTreeLookup
		}
	case Lt, Le, Gt, Ge:
		// Range predicates can use the ordering of the data; hash
		// structures are excluded from range queries (§3.2.2).
		if in.HasTree {
			return PathTreeRange
		}
	case Ne:
		// "not equals" cannot make use of ordering (§3.3.5).
	}
	return PathSequentialScan
}

// JoinMethod is a join strategy.
type JoinMethod int

// The join methods of §3.3 plus the precomputed join of §2.1.
const (
	JoinPrecomputed JoinMethod = iota
	JoinTreeMerge
	JoinTree
	JoinHash
	JoinSortMerge
	JoinNestedLoops
)

// String names the method as the paper does.
func (j JoinMethod) String() string {
	switch j {
	case JoinPrecomputed:
		return "precomputed join"
	case JoinTreeMerge:
		return "Tree Merge join"
	case JoinTree:
		return "Tree Join"
	case JoinHash:
		return "Hash Join"
	case JoinSortMerge:
		return "Sort Merge join"
	default:
		return "nested loops join"
	}
}

// JoinInput describes a candidate equijoin.
type JoinInput struct {
	Equijoin       bool // false for <, <=, >, >= joins
	HasPrecomputed bool // outer carries a tuple-pointer FK to inner
	OuterTree      bool // T Tree exists on the outer join column
	InnerTree      bool // T Tree exists on the inner join column
	InnerHash      bool // hash index exists on the inner join column
	OuterCard      int
	InnerCard      int
	// Statistics for the Sort Merge exception; negative when unknown.
	DuplicatePct float64
	SemijoinPct  float64
	SkewedDups   bool
}

// ChooseJoin picks the join method by the §3.3.5 summary rules.
func ChooseJoin(in JoinInput) JoinMethod {
	if in.HasPrecomputed {
		return JoinPrecomputed
	}
	if !in.Equijoin {
		// Non-equijoins other than "not equals" use the ordering of the
		// data: "the Tree Join should be used for such joins".
		if in.InnerTree {
			return JoinTree
		}
		return JoinNestedLoops
	}
	// Exception (2): both semijoin selectivity and duplicate percentage
	// high — Sort Merge, particularly under a skewed distribution. The
	// crossover thresholds come from Tests 4 and 5: ~60% duplicates
	// (skewed) / ~80% (uniform) when indices would have to be built.
	if in.DuplicatePct >= 0 && in.SemijoinPct >= 80 {
		threshold := 80.0
		if in.SkewedDups {
			threshold = 60.0
		}
		if in.DuplicatePct >= threshold {
			if in.OuterTree && in.InnerTree {
				return JoinTreeMerge // satisfactory and already built
			}
			return JoinSortMerge
		}
	}
	if in.OuterTree && in.InnerTree {
		return JoinTreeMerge
	}
	// An existing hash index on the inner is always at least as good as
	// building one.
	if in.InnerHash {
		return JoinHash
	}
	// Exception (1): an index on the larger (inner) relation and an outer
	// less than half its size — Tree Join beats building a hash table.
	if in.InnerTree && in.OuterCard*2 < in.InnerCard {
		return JoinTree
	}
	return JoinHash
}

// Explain renders a one-line plan description.
func Explain(kind string, choice fmt.Stringer, why string) string {
	return fmt.Sprintf("%s: %s (%s)", kind, choice, why)
}

// MinRowsPerWorker is the floor under which an operator is not worth
// splitting: below a few thousand rows per worker, goroutine spawn and
// result merging cost more than the work they spread out, and the paper's
// serial algorithms (whose §3.1 counts the experiments reproduce) should
// run untouched.
const MinRowsPerWorker = 2048

// ChooseWorkers resolves the degree of parallelism for an operator over
// the given row count: the requested degree, capped so every worker gets
// at least MinRowsPerWorker rows. requested <= 1 (or any small input)
// yields 1 — the exact serial path.
func ChooseWorkers(requested, rows int) int {
	if requested <= 1 {
		return 1
	}
	maxW := rows / MinRowsPerWorker
	if maxW < 1 {
		return 1
	}
	if requested < maxW {
		return requested
	}
	return maxW
}

// DefaultBatchSize is the tuple-pointer block size batch-at-a-time
// operators move between stages: 256 pointers is 2 KiB on a 64-bit
// layout, small enough to stay L1/L2-resident through an operator's
// inner loop and large enough to amortize per-block dispatch to ~1/256
// of a call per tuple. It matches storage.BatchSize (the arena chunk row
// count), so a temp-list chunk doubles as a scan block.
const DefaultBatchSize = 256

// ChooseBatchSize resolves the effective block size for a query:
// requested <= 0 means the default; tiny inputs shrink the block to the
// input size so a two-row query does not carry a 256-slot block around.
// The resolved size is a planning/accounting figure — pooled blocks are
// physically DefaultBatchSize and operators simply stop filling them
// early — so EXPLAIN ANALYZE can report the block size a query ran with.
func ChooseBatchSize(requested, rows int) int {
	bs := requested
	if bs <= 0 {
		bs = DefaultBatchSize
	}
	if rows > 0 && rows < bs {
		bs = rows
	}
	if bs < 1 {
		bs = 1
	}
	return bs
}
