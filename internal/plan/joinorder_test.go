package plan

import "testing"

func isPerm(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order %v: want %d relations", order, n)
	}
	seen := make([]bool, n)
	for _, r := range order {
		if r < 0 || r >= n || seen[r] {
			t.Fatalf("order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[r] = true
	}
}

// chainGraph is the bench shape: a big fact table joined through a
// chain of selective dimensions — each dimension covers only ~10% of
// its key domain, so every join step shrinks the fact stream. (With
// cardinality-preserving FK joins the model correctly prefers building
// the fact table instead; selectivity is what makes streaming win.)
func chainGraph() JoinGraph {
	return JoinGraph{
		Rels: []JoinGraphRel{
			{Name: "fact", Rows: 1 << 20},
			{Name: "d1", Rows: 410},
			{Name: "d2", Rows: 26},
			{Name: "d3", Rows: 2},
		},
		Edges: []JoinGraphEdge{
			{A: 0, B: 1, NDVA: 4096, NDVB: 410},
			{A: 1, B: 2, NDVA: 256, NDVB: 26},
			{A: 2, B: 3, NDVA: 16, NDVB: 2},
		},
	}
}

func TestChooseJoinOrderChainStreamsFact(t *testing.T) {
	g := chainGraph()
	res := ChooseJoinOrder(g, RadixConfig{})
	isPerm(t, res.Order, 4)
	if res.Algorithm != "dp" {
		t.Fatalf("algorithm = %q, want dp", res.Algorithm)
	}
	if res.Order[0] != 0 {
		t.Errorf("driver = %s, want fact streamed (never built): order %v",
			g.Rels[res.Order[0]].Name, res.Order)
	}
	// The as-written worst case (d3 first, fact built last) must price
	// strictly higher — that gap is what the bench turns into wall time.
	worst := ForecastOrder(g, RadixConfig{}, []int{3, 2, 1, 0})
	if worst.Cost <= res.Cost {
		t.Errorf("worst-order cost %.0f not above planned cost %.0f", worst.Cost, res.Cost)
	}
	if len(res.EstRows) != 4 || res.EstRows[0] != float64(1<<20) {
		t.Errorf("EstRows = %v, want driver cardinality first", res.EstRows)
	}
}

func TestChooseJoinOrderStar(t *testing.T) {
	g := JoinGraph{
		Rels: []JoinGraphRel{
			{Name: "fact", Rows: 500000},
			{Name: "d1", Rows: 1000},
			{Name: "d2", Rows: 100},
			{Name: "d3", Rows: 10},
		},
		Edges: []JoinGraphEdge{
			{A: 0, B: 1, NDVA: 1000, NDVB: 1000},
			{A: 0, B: 2, NDVA: 100, NDVB: 100},
			{A: 0, B: 3, NDVA: 10, NDVB: 10},
		},
	}
	res := ChooseJoinOrder(g, RadixConfig{})
	isPerm(t, res.Order, 4)
	if res.Order[0] != 0 {
		t.Errorf("star driver = %v, want the fact table", res.Order)
	}
}

func TestChooseJoinOrderCyclicCountsAllEdges(t *testing.T) {
	g := JoinGraph{
		Rels: []JoinGraphRel{
			{Name: "a", Rows: 10000},
			{Name: "b", Rows: 10000},
			{Name: "c", Rows: 10000},
		},
		Edges: []JoinGraphEdge{
			{A: 0, B: 1, NDVA: 100, NDVB: 100},
			{A: 1, B: 2, NDVA: 100, NDVB: 100},
			{A: 0, B: 2, NDVA: 100, NDVB: 100},
		},
	}
	res := ChooseJoinOrder(g, RadixConfig{})
	isPerm(t, res.Order, 3)
	// The closing edge of the triangle applies at the final step, so the
	// cyclic forecast must be tighter than the same graph without it.
	open := g
	open.Edges = g.Edges[:2]
	openRes := ForecastOrder(open, RadixConfig{}, res.Order)
	if res.EstRows[2] >= openRes.EstRows[2] {
		t.Errorf("cyclic final estimate %.0f not below acyclic %.0f",
			res.EstRows[2], openRes.EstRows[2])
	}
}

func TestChooseJoinOrderGreedyBeyondDPMax(t *testing.T) {
	n := DPMaxRels + 2
	g := JoinGraph{}
	for i := 0; i < n; i++ {
		g.Rels = append(g.Rels, JoinGraphRel{Name: "r", Rows: 1000 * (i + 1)})
		if i > 0 {
			g.Edges = append(g.Edges, JoinGraphEdge{A: i - 1, B: i, NDVA: 100, NDVB: 100})
		}
	}
	res := ChooseJoinOrder(g, RadixConfig{})
	isPerm(t, res.Order, n)
	if res.Algorithm != "greedy" {
		t.Fatalf("algorithm = %q, want greedy for %d relations", res.Algorithm, n)
	}
}

func TestChooseJoinOrderDisconnectedFallsBack(t *testing.T) {
	g := JoinGraph{
		Rels: []JoinGraphRel{{Name: "a", Rows: 10}, {Name: "b", Rows: 20}},
	}
	res := ChooseJoinOrder(g, RadixConfig{})
	isPerm(t, res.Order, 2)
	if res.Algorithm != "as-written" {
		t.Fatalf("algorithm = %q, want as-written for a disconnected graph", res.Algorithm)
	}
	if res.Order[0] != 0 || res.Order[1] != 1 {
		t.Fatalf("as-written order = %v", res.Order)
	}
}

func TestChooseJoinOrderNeverBeatenByForecast(t *testing.T) {
	g := chainGraph()
	chosen := ChooseJoinOrder(g, RadixConfig{})
	perms := [][]int{
		{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 0, 2, 3}, {2, 1, 0, 3}, {0, 3, 2, 1},
	}
	for _, p := range perms {
		// Skip orders with cross-product prefixes: the DP excludes them,
		// and the forecast prices them optimistically (selectivity 1).
		if p[0] == 0 && p[1] != 1 {
			continue
		}
		f := ForecastOrder(g, RadixConfig{}, p)
		if f.Cost < chosen.Cost {
			t.Errorf("forecast order %v cost %.0f beats DP choice %v cost %.0f",
				p, f.Cost, chosen.Order, chosen.Cost)
		}
	}
}
