package plan

import "math"

// Join-order planning for n-way join graphs.
//
// The executor runs every multi-join as a left-deep pipeline: the first
// relation in the order (the driver) is streamed in batches through a
// sequence of hash tables, one built over each remaining relation. Join
// order therefore decides two things: which relation is never built
// (the driver — streaming is much cheaper than building), and how large
// the intermediate stream is at each probe. Following Liu & Blanas
// ("Forecasting the cost of processing multi-join queries via hashing"),
// both are forecast from per-relation cardinalities and join-column
// distinct-value estimates alone — in main memory there is no I/O noise
// to hide behind, so these two inputs predict hash-join cost well.
//
// For graphs of up to DPMaxRels relations the planner enumerates
// left-deep orders exactly with dynamic programming over connected
// subgraphs; larger graphs fall back to a greedy min-cost-edge
// expansion. Disconnected graphs (no ON-chain linking every relation)
// fall back to the as-written order.

// DPMaxRels is the largest join graph the exact DP enumerator handles;
// beyond it the O(2^n · n) subset sweep stops being free and the greedy
// expansion takes over.
const DPMaxRels = 8

// JoinGraphRel is one relation in a join graph. Rows is the estimated
// cardinality entering the join — after local predicates for the
// filtered relation, the raw table cardinality otherwise.
type JoinGraphRel struct {
	Name string
	Rows int
}

// JoinGraphEdge is one equijoin predicate between relations A and B.
// NDVA/NDVB are distinct-value estimates for the two join columns; zero
// or negative means unknown, which the model treats as "unique keys"
// (NDV = row count) — the conservative choice that never inflates an
// intermediate forecast.
type JoinGraphEdge struct {
	A, B       int
	NDVA, NDVB float64
}

// JoinGraph is the planning view of an n-way join: relations plus the
// equijoin predicates connecting them. Cyclic graphs are allowed; every
// edge inside the joined subset contributes its selectivity.
type JoinGraph struct {
	Rels  []JoinGraphRel
	Edges []JoinGraphEdge
}

// JoinOrderResult is a chosen (or forecast) join order. Order lists
// relation indices driver-first; EstRows[i] is the forecast cardinality
// of the intermediate after joining Order[:i+1] (EstRows[0] is the
// driver's own cardinality). Cost is the model's total in abstract
// data-move units — comparable across orders of the same graph only.
type JoinOrderResult struct {
	Order     []int
	EstRows   []float64
	Cost      float64
	Algorithm string // "dp", "greedy", or "as-written"
}

// ChooseJoinOrder picks a join order for the graph: exact DP for small
// graphs, greedy beyond DPMaxRels, as-written when the graph is
// disconnected. The result always covers every relation exactly once.
func ChooseJoinOrder(g JoinGraph, cfg RadixConfig) JoinOrderResult {
	c := cfg.withDefaults()
	n := len(g.Rels)
	switch n {
	case 0:
		return JoinOrderResult{Algorithm: "as-written"}
	case 1:
		r := forecast(g, c, []int{0})
		r.Algorithm = "as-written"
		return r
	}
	if n <= DPMaxRels {
		if order, ok := dpOrder(g, c); ok {
			r := forecast(g, c, order)
			r.Algorithm = "dp"
			return r
		}
	} else if order, ok := greedyOrder(g, c); ok {
		r := forecast(g, c, order)
		r.Algorithm = "greedy"
		return r
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	r := forecast(g, c, order)
	r.Algorithm = "as-written"
	return r
}

// ForecastOrder prices a caller-supplied order (the as-written or a
// forced order) with the same model the enumerator uses, so EXPLAIN and
// the decision audit can report forecast rows for any execution order.
func ForecastOrder(g JoinGraph, cfg RadixConfig, order []int) JoinOrderResult {
	r := forecast(g, cfg.withDefaults(), order)
	r.Algorithm = "as-written"
	return r
}

// hashBuildCost models inserting rows build rows into a hash table.
// Each insert is ~2 data moves (hash + link); past the radix crossover
// the table no longer fits in cache and the partitioning passes
// ChooseRadixBits would schedule each add one more sequential sweep.
func hashBuildCost(rows float64, c RadixConfig) float64 {
	if rows <= 0 {
		return 0
	}
	passes := float64(len(ChooseRadixBits(int(rows), c)))
	return rows * (2 + passes)
}

// hashProbeCost models probing a build-side table of buildRows with
// probes input rows. A table past the L2 budget misses cache on
// (roughly) every bucket dereference, doubling the per-probe cost —
// the same working-set threshold the radix-bits chooser targets.
func hashProbeCost(probes, buildRows float64, c RadixConfig) float64 {
	if probes <= 0 {
		return 0
	}
	spill := 1.0
	if buildRows*float64(c.EntryBytes) > float64(c.L2Bytes) {
		spill = 2.0
	}
	return probes * spill
}

func relRows(g JoinGraph, i int) float64 {
	if r := g.Rels[i].Rows; r > 0 {
		return float64(r)
	}
	return 0
}

// edgeSel is the forecast selectivity of one equijoin edge: 1/max NDV
// of the two join columns, with unknown NDVs defaulting to the side's
// cardinality (unique keys).
func edgeSel(g JoinGraph, e JoinGraphEdge) float64 {
	na, nb := e.NDVA, e.NDVB
	if na <= 0 {
		na = math.Max(relRows(g, e.A), 1)
	}
	if nb <= 0 {
		nb = math.Max(relRows(g, e.B), 1)
	}
	d := math.Max(na, nb)
	if d < 1 {
		d = 1
	}
	return 1 / d
}

// selInto multiplies the selectivities of every edge linking rel to the
// joined set mask. connected reports whether at least one edge does.
func selInto(g JoinGraph, rel int, mask uint32) (sel float64, connected bool) {
	sel = 1
	for _, e := range g.Edges {
		other := -1
		switch {
		case e.A == rel && mask&(1<<uint(e.B)) != 0:
			other = e.B
		case e.B == rel && mask&(1<<uint(e.A)) != 0:
			other = e.A
		}
		if other >= 0 {
			sel *= edgeSel(g, e)
			connected = true
		}
	}
	return sel, connected
}

// stepCost prices extending an intermediate of curRows rows by joining
// relation rel (selectivity sel into the current set): build rel's hash
// table, probe it with the stream, and emit the forecast output.
func stepCost(g JoinGraph, c RadixConfig, curRows float64, rel int, sel float64) (cost, outRows float64) {
	br := relRows(g, rel)
	outRows = curRows * br * sel
	cost = hashBuildCost(br, c) + hashProbeCost(curRows, br, c) + outRows
	return cost, outRows
}

// forecast walks an order through the cost model, producing per-step
// intermediate estimates and the total cost. Steps not connected to the
// joined prefix are priced as cross products (selectivity 1).
func forecast(g JoinGraph, c RadixConfig, order []int) JoinOrderResult {
	res := JoinOrderResult{Order: order, EstRows: make([]float64, len(order))}
	if len(order) == 0 {
		return res
	}
	cur := relRows(g, order[0])
	res.EstRows[0] = cur
	res.Cost = cur // streaming the driver costs one pass over it
	var mask uint32 = 1 << uint(order[0])
	for i := 1; i < len(order); i++ {
		rel := order[i]
		sel, _ := selInto(g, rel, mask)
		cost, out := stepCost(g, c, cur, rel, sel)
		res.Cost += cost
		cur = out
		res.EstRows[i] = cur
		mask |= 1 << uint(rel)
	}
	return res
}

// dpOrder enumerates left-deep orders exactly: dp over subsets, where a
// subset may only be extended by a relation connected to it (no cross
// products). Returns ok=false when the graph is disconnected and no
// order covers every relation.
func dpOrder(g JoinGraph, c RadixConfig) ([]int, bool) {
	n := len(g.Rels)
	size := 1 << uint(n)
	const inf = math.MaxFloat64
	cost := make([]float64, size)
	rows := make([]float64, size)
	last := make([]int8, size)
	prev := make([]uint32, size)
	for i := range cost {
		cost[i] = inf
	}
	for i := 0; i < n; i++ {
		m := 1 << uint(i)
		cost[m] = relRows(g, i)
		rows[m] = relRows(g, i)
		last[m] = int8(i)
	}
	for mask := 1; mask < size; mask++ {
		if cost[mask] == inf {
			continue
		}
		for r := 0; r < n; r++ {
			bit := 1 << uint(r)
			if mask&bit != 0 {
				continue
			}
			sel, connected := selInto(g, r, uint32(mask))
			if !connected {
				continue
			}
			sc, out := stepCost(g, c, rows[mask], r, sel)
			next := mask | bit
			if total := cost[mask] + sc; total < cost[next] {
				cost[next] = total
				rows[next] = out
				last[next] = int8(r)
				prev[next] = uint32(mask)
			}
		}
	}
	full := size - 1
	if cost[full] == inf {
		return nil, false
	}
	order := make([]int, n)
	for m, i := full, n-1; i >= 0; i-- {
		order[i] = int(last[m])
		m = int(prev[m])
	}
	return order, true
}

// greedyOrder seeds the order with the cheapest single join (trying
// both driver choices for every edge) and then repeatedly appends the
// connected relation with the lowest step cost. O(n · edges) per step.
func greedyOrder(g JoinGraph, c RadixConfig) ([]int, bool) {
	n := len(g.Rels)
	if len(g.Edges) == 0 {
		return nil, false
	}
	bestCost := math.MaxFloat64
	var bestDriver, bestBuild int
	for _, e := range g.Edges {
		for _, pair := range [2][2]int{{e.A, e.B}, {e.B, e.A}} {
			driver, build := pair[0], pair[1]
			sel := edgeSel(g, e)
			sc, _ := stepCost(g, c, relRows(g, driver), build, sel)
			if total := relRows(g, driver) + sc; total < bestCost {
				bestCost = total
				bestDriver, bestBuild = driver, build
			}
		}
	}
	order := []int{bestDriver, bestBuild}
	var mask uint32 = 1<<uint(bestDriver) | 1<<uint(bestBuild)
	cur := forecast(g, c, order).EstRows[1]
	for len(order) < n {
		best := -1
		bestSC, bestOut := math.MaxFloat64, 0.0
		for r := 0; r < n; r++ {
			if mask&(1<<uint(r)) != 0 {
				continue
			}
			sel, connected := selInto(g, r, mask)
			if !connected {
				continue
			}
			sc, out := stepCost(g, c, cur, r, sel)
			if sc < bestSC {
				best, bestSC, bestOut = r, sc, out
			}
		}
		if best < 0 {
			return nil, false // disconnected remainder
		}
		order = append(order, best)
		mask |= 1 << uint(best)
		cur = bestOut
	}
	return order, true
}
