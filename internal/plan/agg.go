package plan

// Grouped aggregation and top-k are post-paper operators, but they are
// planned with the same discipline as the radix join and the sort engine:
// a cost-based crossover decides between the cache-resident simple shape
// and the partitioned cache-conscious shape, and every choice is recorded
// as a decision-audit record so EXPLAIN ANALYZE can compare the estimate
// it rested on against what actually happened.

// AggMethod is a grouped-aggregation execution shape.
type AggMethod int

const (
	// AggFlatTable runs the whole input through one flat open-addressing
	// aggregation table — the degenerate single-partition plan. Correct at
	// any scale; fastest when the table (groups × slot footprint) stays
	// cache-resident.
	AggFlatTable AggMethod = iota
	// AggRadixPartitioned radix-partitions the input on the group-key hash
	// first (internal/radix), then aggregates each partition through its
	// own flat table. Groups cannot cross partitions, so each table is a
	// fraction of the whole and stays L2-resident — the same
	// partition-then-flat-table shape as the radix hash join.
	AggRadixPartitioned
)

// String names the method.
func (m AggMethod) String() string {
	switch m {
	case AggRadixPartitioned:
		return "radix-partitioned hash agg"
	default:
		return "flat-table hash agg"
	}
}

// AggConfig parameterizes the aggregation crossover. The zero value means
// "all defaults"; it is passed through withDefaults before use.
type AggConfig struct {
	// L2Bytes is the target per-partition aggregation-table working set.
	// Default 256 KiB, matching the radix join's budget.
	L2Bytes int
	// GroupBytes is the assumed in-table footprint per distinct group:
	// a 16-byte open-addressing slot at load factor 1/2 plus the
	// aggregate-state row it points at. Default 64. The chooser sizes for
	// the worst case (every input row its own group) because group
	// cardinality is unknown before execution — the decision audit
	// records how far off that was.
	GroupBytes int
	// MaxPassBits caps one partitioning pass's fan-out. Default 8.
	MaxPassBits uint
	// MaxBits caps the total radix width. Default 14.
	MaxBits uint
	// MinRows is the input cardinality below which the single flat table
	// runs: small inputs build a cache-resident table anyway and the
	// partitioning sweep would be pure overhead. Default 131072 rows.
	MinRows int
}

// Default aggregation parameters (see AggConfig field docs).
const (
	DefaultAggGroupBytes = 64
	DefaultAggMinRows    = 128 << 10
)

func (c AggConfig) withDefaults() AggConfig {
	if c.L2Bytes <= 0 {
		c.L2Bytes = DefaultRadixL2Bytes
	}
	if c.GroupBytes <= 0 {
		c.GroupBytes = DefaultAggGroupBytes
	}
	if c.MaxPassBits == 0 {
		c.MaxPassBits = DefaultRadixMaxPassBits
	}
	if c.MaxBits == 0 {
		c.MaxBits = DefaultRadixMaxBits
	}
	if c.MaxBits > 16 {
		c.MaxBits = 16
	}
	if c.MaxPassBits > c.MaxBits {
		c.MaxPassBits = c.MaxBits
	}
	if c.MinRows == 0 {
		c.MinRows = DefaultAggMinRows
	}
	return c
}

// ChooseAggMethod picks the aggregation shape for rows input rows and, for
// the partitioned shape, the per-pass radix widths (most significant bits
// first, the same contract as ChooseRadixBits). Below the crossover it
// returns (AggFlatTable, nil): one table, no partitioning sweep. Above it,
// enough bits that one partition's worst-case table fits the L2 budget.
func ChooseAggMethod(rows int, cfg AggConfig) (AggMethod, []uint) {
	c := cfg.withDefaults()
	if rows < c.MinRows {
		return AggFlatTable, nil
	}
	bits := forcedRadixBits(rows, RadixConfig{
		L2Bytes:      c.L2Bytes,
		EntryBytes:   c.GroupBytes,
		MaxPassBits:  c.MaxPassBits,
		MaxBits:      c.MaxBits,
		MinBuildRows: 1,
	})
	return AggRadixPartitioned, bits
}

// BudgetedAggBits is ChooseAggMethod under a memory grant of budget
// bytes: the same shape decision, with a partitioned plan's width
// clamped by ClampRadixBits. The boolean reports whether the budget
// narrowed the plan. budget <= 0 defers entirely to ChooseAggMethod.
func BudgetedAggBits(rows int, cfg AggConfig, budget int64) (AggMethod, []uint, bool) {
	method, bits := ChooseAggMethod(rows, cfg)
	if method != AggRadixPartitioned {
		return method, bits, false
	}
	c := cfg.withDefaults()
	bits, clamped := ClampRadixBits(bits, RadixConfig{MaxPassBits: c.MaxPassBits}, budget)
	return method, bits, clamped
}

// TopKMethod is an ORDER BY execution shape.
type TopKMethod int

const (
	// TopKFullSort sorts the entire input (quicksort or radix-key sort by
	// ChooseSortMethod) and cuts the prefix. The only shape for unbounded
	// ORDER BY; also best when k is a large fraction of n.
	TopKFullSort TopKMethod = iota
	// TopKHeap streams the input through a bounded k-element max-heap:
	// rows past the heap's threshold are rejected with one comparison, so
	// the expected work is n + O(k·log k·log n) instead of sorting all n.
	TopKHeap
)

// String names the method.
func (m TopKMethod) String() string {
	switch m {
	case TopKHeap:
		return "bounded-heap top-k"
	default:
		return "full sort"
	}
}

// TopKConfig parameterizes the heap-vs-sort crossover. Zero value means
// "all defaults".
type TopKConfig struct {
	// HeapDivisor: the heap runs when k <= rows/HeapDivisor — the heap's
	// per-survivor sift (log k moves) only wins while the threshold
	// rejects the vast majority of rows in one comparison. Default 8.
	HeapDivisor int
	// MaxHeapK caps the heap size; past it the sift constant and the
	// heap's cache footprint lose to the radix sort's sequential passes
	// even at favorable ratios. Default 65536.
	MaxHeapK int
}

// Default top-k parameters (see TopKConfig field docs).
const (
	DefaultTopKHeapDivisor = 8
	DefaultTopKMaxHeapK    = 64 << 10
)

func (c TopKConfig) withDefaults() TopKConfig {
	if c.HeapDivisor <= 0 {
		c.HeapDivisor = DefaultTopKHeapDivisor
	}
	if c.MaxHeapK <= 0 {
		c.MaxHeapK = DefaultTopKMaxHeapK
	}
	return c
}

// ChooseTopK picks the ORDER BY shape: a bounded heap when a LIMIT k is
// present and small relative to the input (k ≤ rows/HeapDivisor, k ≤
// MaxHeapK), the full sort otherwise. k <= 0 means no limit.
func ChooseTopK(rows, k int, cfg TopKConfig) TopKMethod {
	c := cfg.withDefaults()
	if k <= 0 || k > c.MaxHeapK {
		return TopKFullSort
	}
	if rows/c.HeapDivisor < k {
		return TopKFullSort
	}
	return TopKHeap
}
