package plan

import "testing"

func TestChooseAggMethod(t *testing.T) {
	// Below the crossover: one flat table, no partitioning sweep.
	if m, bits := ChooseAggMethod(1000, AggConfig{}); m != AggFlatTable || bits != nil {
		t.Fatalf("small input: %v %v, want flat/nil", m, bits)
	}
	if m, _ := ChooseAggMethod(DefaultAggMinRows-1, AggConfig{}); m != AggFlatTable {
		t.Fatalf("just under MinRows: %v, want flat", m)
	}
	// At and above the crossover: partitioned, with enough bits that one
	// partition's worst-case table fits the L2 budget.
	m, bits := ChooseAggMethod(1<<20, AggConfig{})
	if m != AggRadixPartitioned || len(bits) == 0 {
		t.Fatalf("1M rows: %v %v, want partitioned with bits", m, bits)
	}
	var total uint
	for _, b := range bits {
		if b == 0 || b > DefaultRadixMaxPassBits {
			t.Fatalf("pass width %d out of (0, %d]", b, DefaultRadixMaxPassBits)
		}
		total += b
	}
	if total > DefaultRadixMaxBits {
		t.Fatalf("total bits %d exceed cap %d", total, DefaultRadixMaxBits)
	}
	// rows/2^total * GroupBytes must fit the budget.
	perPart := (1 << 20 >> total) * DefaultAggGroupBytes
	if perPart > DefaultRadixL2Bytes && total < DefaultRadixMaxBits {
		t.Fatalf("partition working set %d exceeds L2 budget with bits to spare", perPart)
	}
	// MinRows=1 forces partitioning for any input — the test hook.
	if m, _ := ChooseAggMethod(100, AggConfig{MinRows: 1}); m != AggRadixPartitioned {
		t.Fatalf("MinRows=1: %v, want partitioned", m)
	}
}

func TestChooseTopK(t *testing.T) {
	cases := []struct {
		rows, k int
		want    TopKMethod
	}{
		{1 << 20, 0, TopKFullSort},          // no limit → full sort
		{1 << 20, -1, TopKFullSort},         // no limit
		{1 << 20, 10, TopKHeap},             // tiny k over huge input
		{1 << 20, 64 << 10, TopKHeap},       // exactly MaxHeapK, ratio fine
		{1 << 20, 64<<10 + 1, TopKFullSort}, // past the heap-size cap
		{100, 50, TopKFullSort},             // k > rows/8 → sort
		{800, 100, TopKHeap},                // k == rows/8 boundary
		{799, 100, TopKFullSort},            // one row short of the ratio
	}
	for _, c := range cases {
		if got := ChooseTopK(c.rows, c.k, TopKConfig{}); got != c.want {
			t.Fatalf("ChooseTopK(%d, %d) = %v, want %v", c.rows, c.k, got, c.want)
		}
	}
	// Knobs steer the crossover.
	if got := ChooseTopK(1000, 500, TopKConfig{HeapDivisor: 2}); got != TopKHeap {
		t.Fatalf("HeapDivisor=2: %v, want heap", got)
	}
	if got := ChooseTopK(1<<20, 100, TopKConfig{MaxHeapK: 50}); got != TopKFullSort {
		t.Fatalf("MaxHeapK=50: %v, want sort", got)
	}
}

func TestAggTopKStringers(t *testing.T) {
	if AggFlatTable.String() == "" || AggRadixPartitioned.String() == "" ||
		TopKFullSort.String() == "" || TopKHeap.String() == "" {
		t.Fatal("empty method name")
	}
	if AggFlatTable.String() == AggRadixPartitioned.String() {
		t.Fatal("agg methods share a name")
	}
	if TopKFullSort.String() == TopKHeap.String() {
		t.Fatal("top-k methods share a name")
	}
}
