package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/meter"
)

// Snapshot is a point-in-time copy of every metric the registry tracks.
// It is a plain value: safe to retain, diff, and serialize.
type Snapshot struct {
	Queries       int64            `json:"queries"`
	QueriesByPlan map[string]int64 `json:"queries_by_plan,omitempty"`
	RowsScanned   int64            `json:"rows_scanned"`
	RowsReturned  int64            `json:"rows_returned"`
	IndexProbes   map[string]int64 `json:"index_probes,omitempty"`

	LockWaits    int64         `json:"lock_waits"`
	LockWaitTime time.Duration `json:"lock_wait_nanos"`
	Deadlocks    int64         `json:"deadlocks"`

	TxnBegins  int64 `json:"txn_begins"`
	TxnCommits int64 `json:"txn_commits"`
	TxnAborts  int64 `json:"txn_aborts"`

	LogAppends int64 `json:"log_appends"`
	LogWords   int64 `json:"log_words"`
	LogFlushes int64 `json:"log_flushes"`

	Ops meter.Counters `json:"ops"`

	QueryLatency HistogramSnapshot `json:"query_latency"`

	// Plan-vs-actual audit: mispredictions per decision name, and the
	// radix partition-skew distribution.
	PlanMispredicts map[string]int64       `json:"plan_mispredicts,omitempty"`
	RadixSkew       FloatHistogramSnapshot `json:"radix_skew"`

	// Sched is the morsel scheduler's saturation snapshot, present when
	// the database runs on a work-stealing pool (SetSchedSource wired).
	Sched *SchedStats `json:"sched,omitempty"`

	// Mem is the memory grant manager's snapshot, present when the
	// database runs with a memory budget (SetMemSource wired).
	Mem *MemStats `json:"mem,omitempty"`

	// Tables carries the per-relation statistics snapshots the join-order
	// planner runs on. The registry itself does not track these — the
	// engine's Database.Stats() fills them in from storage, so they are
	// present even when metrics are disabled.
	Tables []TableStat `json:"tables,omitempty"`
}

// TableStat is one relation's sampled statistics (see Snapshot.Tables):
// the exact row count, per-column distinct-value estimates in schema
// order, and how many rows the last refresh sampled. Plain data, so obs
// carries no storage dependency.
type TableStat struct {
	Name        string    `json:"name"`
	Rows        int       `json:"rows"`
	NDV         []float64 `json:"ndv,omitempty"`
	SampledRows int       `json:"sampled_rows,omitempty"`
}

// Snapshot copies the registry's current state. Safe on a nil receiver
// (returns the zero Snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var sched *SchedStats
	if r.schedSource != nil {
		s := r.schedSource()
		sched = &s
	}
	var gm *MemStats
	if r.memSource != nil {
		m := r.memSource()
		gm = &m
	}
	return Snapshot{
		Sched:         sched,
		Mem:           gm,
		Queries:       r.queries.Load(),
		QueriesByPlan: r.planShapes.snapshot(),
		RowsScanned:   r.rowsScanned.Load(),
		RowsReturned:  r.rowsReturned.Load(),
		IndexProbes:   r.indexProbes.snapshot(),
		LockWaits:     r.lockWaits.Load(),
		LockWaitTime:  time.Duration(r.lockWaitNanos.Load()),
		Deadlocks:     r.deadlocks.Load(),
		TxnBegins:     r.txnBegins.Load(),
		TxnCommits:    r.txnCommits.Load(),
		TxnAborts:     r.txnAborts.Load(),
		LogAppends:    r.logAppends.Load(),
		LogWords:      r.logWords.Load(),
		LogFlushes:    r.logFlushes.Load(),
		Ops:             r.ops.Snapshot(),
		QueryLatency:    r.queryLatency.Snapshot(),
		PlanMispredicts: r.planMispredicts.snapshot(),
		RadixSkew:       r.radixSkew.Snapshot(),
	}
}

// String renders the snapshot as an aligned human-readable block — the
// shell's \stats output.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries           %d (scanned=%d returned=%d, mean latency %s)\n",
		s.Queries, s.RowsScanned, s.RowsReturned, s.QueryLatency.Mean())
	for _, k := range sortedKeys(s.QueriesByPlan) {
		fmt.Fprintf(&b, "  plan %-24s %d\n", k, s.QueriesByPlan[k])
	}
	for _, k := range sortedKeys(s.IndexProbes) {
		fmt.Fprintf(&b, "  probes %-22s %d\n", k, s.IndexProbes[k])
	}
	for _, k := range sortedKeys(s.PlanMispredicts) {
		fmt.Fprintf(&b, "  mispredict %-18s %d\n", k, s.PlanMispredicts[k])
	}
	if s.RadixSkew.Count > 0 {
		fmt.Fprintf(&b, "radix skew        n=%d mean=%.2f max=%.2f\n",
			s.RadixSkew.Count, s.RadixSkew.Mean(), s.RadixSkew.Max)
	}
	if s.Sched != nil {
		fmt.Fprintf(&b, "scheduler         workers=%d queue=%d busy=%d steals=%d parks=%d\n",
			s.Sched.Workers, s.Sched.QueueDepth, s.Sched.Busy, s.Sched.Steals, s.Sched.Parks)
	}
	if s.Mem != nil {
		fmt.Fprintf(&b, "memory budget     total=%d granted=%d waiting=%d forced=%d reversals=%d repartitions=%d\n",
			s.Mem.Total, s.Mem.Granted, s.Mem.Waiting, s.Mem.Forced, s.Mem.Reversals, s.Mem.Repartitions)
	}
	fmt.Fprintf(&b, "transactions      begin=%d commit=%d abort=%d\n", s.TxnBegins, s.TxnCommits, s.TxnAborts)
	fmt.Fprintf(&b, "locks             waits=%d wait time=%s deadlocks=%d\n", s.LockWaits, s.LockWaitTime, s.Deadlocks)
	fmt.Fprintf(&b, "log               appends=%d words=%d flushes=%d\n", s.LogAppends, s.LogWords, s.LogFlushes)
	fmt.Fprintf(&b, "ops (§3.1)        %s", s.Ops.String())
	return b.String()
}

// Sub returns the element-wise difference s - prev (histograms excluded;
// the latency snapshot is carried from s). Useful for per-interval or
// per-experiment deltas.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := s
	d.Queries -= prev.Queries
	d.RowsScanned -= prev.RowsScanned
	d.RowsReturned -= prev.RowsReturned
	d.LockWaits -= prev.LockWaits
	d.LockWaitTime -= prev.LockWaitTime
	d.Deadlocks -= prev.Deadlocks
	d.TxnBegins -= prev.TxnBegins
	d.TxnCommits -= prev.TxnCommits
	d.TxnAborts -= prev.TxnAborts
	d.LogAppends -= prev.LogAppends
	d.LogWords -= prev.LogWords
	d.LogFlushes -= prev.LogFlushes
	d.Ops = s.Ops
	d.Ops.Comparisons -= prev.Ops.Comparisons
	d.Ops.DataMoves -= prev.Ops.DataMoves
	d.Ops.HashCalls -= prev.Ops.HashCalls
	d.Ops.NodesVisited -= prev.Ops.NodesVisited
	d.Ops.Allocations -= prev.Ops.Allocations
	d.Ops.Rotations -= prev.Ops.Rotations
	d.Ops.Batches -= prev.Ops.Batches
	d.Ops.RadixPasses -= prev.Ops.RadixPasses
	d.Ops.Partitions -= prev.Ops.Partitions
	d.QueriesByPlan = subMap(s.QueriesByPlan, prev.QueriesByPlan)
	d.IndexProbes = subMap(s.IndexProbes, prev.IndexProbes)
	d.PlanMispredicts = subMap(s.PlanMispredicts, prev.PlanMispredicts)
	return d
}

func subMap(cur, prev map[string]int64) map[string]int64 {
	if len(cur) == 0 {
		return nil
	}
	out := make(map[string]int64, len(cur))
	for k, v := range cur {
		if n := v - prev[k]; n != 0 {
			out[k] = n
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WritePrometheus writes the registry's state in the Prometheus text
// exposition format (metric names under the mmdb_ prefix). Safe on a nil
// receiver (writes nothing but a comment).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "# mmdb metrics disabled")
		return
	}
	s := r.Snapshot()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("mmdb_queries_total", "Queries executed.", s.Queries)
	counter("mmdb_rows_scanned_total", "Base-relation tuples fetched by queries.", s.RowsScanned)
	counter("mmdb_rows_returned_total", "Result rows returned by queries.", s.RowsReturned)
	labeled := func(name, help, label string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, k := range sortedKeys(m) {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, m[k])
		}
	}
	labeled("mmdb_queries_by_plan_total", "Queries by plan shape.", "plan", s.QueriesByPlan)
	labeled("mmdb_index_probes_total", "Index probes by structure kind.", "kind", s.IndexProbes)
	labeled("mmdb_plan_mispredict_total", "Cost-model decisions whose estimate error crossed the audit threshold.", "decision", s.PlanMispredicts)
	counter("mmdb_lock_waits_total", "Lock requests that had to queue.", s.LockWaits)
	counter("mmdb_lock_wait_nanoseconds_total", "Total time spent waiting for locks.", int64(s.LockWaitTime))
	counter("mmdb_deadlocks_total", "Deadlock-victim aborts.", s.Deadlocks)
	counter("mmdb_txn_begins_total", "Transactions begun.", s.TxnBegins)
	counter("mmdb_txn_commits_total", "Transactions committed.", s.TxnCommits)
	counter("mmdb_txn_aborts_total", "Transactions aborted.", s.TxnAborts)
	counter("mmdb_log_appends_total", "Records appended to the stable log buffer.", s.LogAppends)
	counter("mmdb_log_words_total", "4-byte words written to the stable log buffer.", s.LogWords)
	counter("mmdb_log_flushes_total", "Commit releases to the active log device.", s.LogFlushes)
	counter("mmdb_ops_comparisons_total", "Key/value comparisons (paper §3.1).", s.Ops.Comparisons)
	counter("mmdb_ops_data_moves_total", "Element copies or shifts (paper §3.1).", s.Ops.DataMoves)
	counter("mmdb_ops_hash_calls_total", "Hash function evaluations (paper §3.1).", s.Ops.HashCalls)
	counter("mmdb_ops_nodes_visited_total", "Index nodes touched (paper §3.1).", s.Ops.NodesVisited)
	counter("mmdb_ops_allocations_total", "Index nodes or buckets allocated (paper §3.1).", s.Ops.Allocations)
	counter("mmdb_ops_rotations_total", "Tree rebalance rotations (paper §3.1).", s.Ops.Rotations)
	counter("mmdb_ops_batches_total", "Tuple-pointer batches handed between operators.", s.Ops.Batches)
	counter("mmdb_ops_radix_passes_total", "Radix partitioning passes executed.", s.Ops.RadixPasses)
	counter("mmdb_ops_partitions_total", "Radix partitions produced (fan-out total).", s.Ops.Partitions)

	// Morsel-scheduler saturation, present only when the database runs on
	// a work-stealing pool.
	if s.Sched != nil {
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		gauge("mmdb_sched_workers", "Morsel-scheduler worker goroutines.", int64(s.Sched.Workers))
		gauge("mmdb_sched_queue_depth", "Morsels accepted but not yet started.", s.Sched.QueueDepth)
		gauge("mmdb_sched_busy_workers", "Workers executing a morsel right now.", s.Sched.Busy)
		counter("mmdb_sched_steals_total", "Morsels executed by a worker other than the enqueuer.", s.Sched.Steals)
		counter("mmdb_sched_park_total", "Times a scheduler worker went idle.", s.Sched.Parks)
	}

	// Memory grant manager, present only when a budget is configured.
	if s.Mem != nil {
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		gauge("mmdb_mem_budget_bytes", "Configured engine memory budget.", s.Mem.Total)
		gauge("mmdb_mem_granted", "Bytes currently granted across all reservations.", s.Mem.Granted)
		gauge("mmdb_mem_waiting", "Reservations blocked waiting for a grant.", s.Mem.Waiting)
		counter("mmdb_mem_forced_total", "Grants that overcommitted past the budget.", s.Mem.Forced)
		counter("mmdb_mem_reversals_total", "Radix join build/probe role reversals.", s.Mem.Reversals)
		counter("mmdb_mem_repartitions_total", "Fat-partition recursive re-splits.", s.Mem.Repartitions)
	}

	// Histogram in cumulative Prometheus form.
	h := s.QueryLatency
	fmt.Fprintf(w, "# HELP mmdb_query_seconds Query wall time.\n# TYPE mmdb_query_seconds histogram\n")
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.N
		le := "+Inf"
		if b.Le != 0 {
			le = fmt.Sprintf("%g", b.Le.Seconds())
		}
		fmt.Fprintf(w, "mmdb_query_seconds_bucket{le=%q} %d\n", le, cum)
	}
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].Le != 0 {
		fmt.Fprintf(w, "mmdb_query_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	}
	fmt.Fprintf(w, "mmdb_query_seconds_sum %g\n", h.Sum.Seconds())
	fmt.Fprintf(w, "mmdb_query_seconds_count %d\n", h.Count)

	// Radix partition skew: histogram plus a max gauge, so the worst
	// partitioning since start is alertable without quantile math.
	sk := s.RadixSkew
	fmt.Fprintf(w, "# HELP mmdb_radix_skew Radix partition skew (max partition over mean; 1 = balanced).\n# TYPE mmdb_radix_skew histogram\n")
	cum = 0
	for _, b := range sk.Buckets {
		cum += b.N
		le := "+Inf"
		if b.Le != 0 {
			le = fmt.Sprintf("%g", b.Le)
		}
		fmt.Fprintf(w, "mmdb_radix_skew_bucket{le=%q} %d\n", le, cum)
	}
	if len(sk.Buckets) == 0 || sk.Buckets[len(sk.Buckets)-1].Le != 0 {
		fmt.Fprintf(w, "mmdb_radix_skew_bucket{le=\"+Inf\"} %d\n", cum)
	}
	fmt.Fprintf(w, "mmdb_radix_skew_sum %g\n", sk.Sum)
	fmt.Fprintf(w, "mmdb_radix_skew_count %d\n", sk.Count)
	fmt.Fprintf(w, "# HELP mmdb_radix_skew_max Largest radix partition skew observed.\n# TYPE mmdb_radix_skew_max gauge\nmmdb_radix_skew_max %g\n", sk.Max)
}

// Handler returns an HTTP handler exposing the registry: Prometheus text
// format by default, the JSON snapshot (expvar-style) with ?format=json.
// Safe on a nil receiver.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
}

// Expvar returns the registry as an expvar.Func for callers that publish
// into the process-wide expvar map, e.g.
//
//	expvar.Publish("mmdb", reg.Expvar())
//
// (Publishing is left to the caller because expvar panics on duplicate
// names — one process may open several databases.)
func (r *Registry) Expvar() expvar.Func {
	return expvar.Func(func() any { return r.Snapshot() })
}
